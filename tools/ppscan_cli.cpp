// ppscan_cli — the library's command-line front end.
//
//   ppscan_cli generate --type er|ba|rmat|lfr --out g.txt [generator flags]
//   ppscan_cli stats    <graph> [--triangles] [--histogram]
//   ppscan_cli convert  <graph> --out <file>      (.txt <-> .bin by suffix)
//   ppscan_cli cluster  <graph> [--eps 0.5] [--mu 5] [--algorithm ppSCAN]
//                       [--threads N] [--kernel auto] [--out result.txt]
//                       [--timeout-ms T] [--mem-budget-mb M] [--stall-ms S]
//                       [--numa auto|off|interleave] [--hugepages]
//
// Run governance: --timeout-ms / --mem-budget-mb / --stall-ms bound a
// cluster or query run; SIGINT/SIGTERM trip the same cooperative cancel
// token. A limited run that stops early still writes its partial result
// (undecided vertices keep the 'U' role) and exits nonzero:
//   124 deadline expired, 125 memory budget exceeded, 126 watchdog stall,
//   130 cancelled by signal. `validate --partial` certifies such a result.
//   ppscan_cli classify <graph> <result.txt> [--threads N]
//   ppscan_cli query    <graph> [--eps 0.2,0.5] [--mu 2,5] [--threads N]
//                       (builds a GS*-Index once, then answers the grid)
//
// Graph files: text edge lists ("u v" per line, SNAP style) or the binary
// CSR snapshot format; the suffix ".bin"/".csrbin" selects binary.
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_support/algorithms.hpp"
#include "bench_support/metrics.hpp"
#include "concurrent/topology.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "obs/trace_json.hpp"
#include "graph/edge_list_io.hpp"
#include "graph/graph_placement.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "index/gs_index.hpp"
#include "scan/classification.hpp"
#include "scan/result_io.hpp"
#include "scan/validate_result.hpp"
#include "serve/query_service.hpp"
#include "serve/retry_policy.hpp"
#include "serve/serving_metrics.hpp"
#include "util/env.hpp"
#include "util/flags.hpp"
#include "util/graph_io_error.hpp"
#include "util/report.hpp"
#include "util/timer.hpp"

namespace {

using namespace ppscan;

/// Process-wide cancel token tripped by SIGINT/SIGTERM. CancelToken::trip
/// is a single lock-free CAS, so calling it from the handler is
/// async-signal-safe; the governed run drains at its next poll.
CancelToken g_signal_cancel;

extern "C" void handle_cancel_signal(int) {
  g_signal_cancel.trip(AbortReason::UserCancelled);
}

/// Installs the cancellation handlers around a governed run; restores the
/// default disposition on destruction so a second signal kills the process
/// the ordinary way once the run is over.
class ScopedCancelSignals {
 public:
  ScopedCancelSignals() {
    std::signal(SIGINT, handle_cancel_signal);
    std::signal(SIGTERM, handle_cancel_signal);
  }
  ~ScopedCancelSignals() {
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
  }
};

/// Shell exit code of an aborted run: 124 mirrors timeout(1), 130 is the
/// shell's 128+SIGINT convention, 125/126 label the library-specific
/// budget and watchdog aborts, 70 is sysexits.h EX_SOFTWARE for a
/// firewall-contained internal exception.
int abort_exit_code(AbortReason reason) {
  switch (reason) {
    case AbortReason::None: return 0;
    case AbortReason::DeadlineExpired: return 124;
    case AbortReason::BudgetExceeded: return 125;
    case AbortReason::Stalled: return 126;
    case AbortReason::UserCancelled: return 130;
    case AbortReason::Exception: return 70;
  }
  return 1;
}

/// Reads the governance flags shared by cluster and query.
RunLimits parse_limits(const Flags& flags) {
  RunLimits limits;
  limits.deadline = std::chrono::milliseconds(flags.get_int("timeout-ms", 0));
  limits.memory_budget_bytes =
      static_cast<std::uint64_t>(flags.get_int("mem-budget-mb", 0)) * 1024 *
      1024;
  limits.stall_timeout =
      std::chrono::milliseconds(flags.get_int("stall-ms", 0));
  // Deterministic test hook (undocumented in --help on purpose).
  limits.cancel_at_phase =
      static_cast<int>(flags.get_int("cancel-at-phase", -1));
  return limits;
}

bool is_binary_path(const std::string& path) {
  const auto ends_with = [&](const std::string& suffix) {
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
               0;
  };
  return ends_with(".bin") || ends_with(".csrbin");
}

CsrGraph load_graph(const std::string& path) {
  return is_binary_path(path) ? read_csr_binary(path)
                              : read_edge_list_text(path);
}

/// Strict μ parser: the old std::atoi path silently turned "abc", "-3" or
/// "0" into clustering with μ=0. μ must be a positive 32-bit integer.
std::uint32_t parse_mu(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    throw std::invalid_argument("--mu must be an integer, got '" + text +
                                "'");
  }
  if (errno == ERANGE || value <= 0 ||
      value > static_cast<long long>(
                  std::numeric_limits<std::uint32_t>::max())) {
    throw std::invalid_argument("--mu must be in [1, 2^32): '" + text + "'");
  }
  return static_cast<std::uint32_t>(value);
}

void save_graph(const CsrGraph& graph, const std::string& path) {
  if (is_binary_path(path)) {
    write_csr_binary(graph, path);
  } else {
    write_edge_list_text(graph, path);
  }
}

/// Dataset label for metrics rows: the graph file's stem ("web-uk" from
/// "data/web-uk.bin").
std::string file_stem(const std::string& path) {
  const auto slash = path.find_last_of("/\\");
  const auto begin = slash == std::string::npos ? 0 : slash + 1;
  const auto dot = path.find_last_of('.');
  const auto end = (dot == std::string::npos || dot <= begin) ? path.size()
                                                              : dot;
  return path.substr(begin, end - begin);
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const auto comma = text.find(',', begin);
    const auto end = comma == std::string::npos ? text.size() : comma;
    if (end > begin) out.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

int cmd_generate(const Flags& flags) {
  const auto type = flags.get_string("type", "lfr");
  const auto out = flags.get_string("out", "");
  if (out.empty()) {
    std::cerr << "generate: --out is required\n";
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto n = static_cast<VertexId>(flags.get_int("n", 10000));

  CsrGraph graph;
  if (type == "er") {
    const auto m = static_cast<EdgeId>(
        flags.get_int("m", static_cast<std::int64_t>(n) * 8));
    graph = erdos_renyi(n, m, seed);
  } else if (type == "ba") {
    const auto m = static_cast<VertexId>(flags.get_int("edges-per-vertex", 8));
    graph = barabasi_albert(n, m, seed);
  } else if (type == "rmat") {
    RmatParams p;
    p.scale = static_cast<int>(flags.get_int("scale", 14));
    p.edge_factor = flags.get_double("edge-factor", 16);
    graph = rmat(p, seed);
  } else if (type == "lfr") {
    LfrParams p;
    p.n = n;
    p.avg_degree = flags.get_double("avg-degree", 20);
    p.mixing = flags.get_double("mixing", 0.2);
    p.min_community = static_cast<VertexId>(flags.get_int("min-community", 16));
    p.max_community =
        static_cast<VertexId>(flags.get_int("max-community", 512));
    graph = lfr_like(p, seed);
  } else {
    std::cerr << "generate: unknown --type '" << type
              << "' (er|ba|rmat|lfr)\n";
    return 2;
  }
  save_graph(graph, out);
  std::cout << "generated " << type << ": " << compute_stats(graph).to_string()
            << " -> " << out << "\n";
  return 0;
}

int cmd_stats(const Flags& flags) {
  if (flags.positionals().size() < 2) {
    std::cerr << "stats: missing graph file\n";
    return 2;
  }
  const auto graph = load_graph(flags.positionals()[1]);
  const auto stats = compute_stats(graph, flags.get_bool("triangles", false));
  std::cout << stats.to_string() << "\n";
  if (flags.get_bool("histogram", false)) {
    const auto hist = degree_histogram(graph);
    Table table({"degree-bucket", "vertices"});
    for (std::size_t k = 0; k < hist.size(); ++k) {
      table.add_row({"[" + std::to_string(1u << k) + ", " +
                         std::to_string(2u << k) + ")",
                     Table::fmt(hist[k])});
    }
    table.print(std::cout, "log2-degree histogram");
  }
  return 0;
}

int cmd_convert(const Flags& flags) {
  if (flags.positionals().size() < 2 || !flags.has("out")) {
    std::cerr << "convert: usage: convert <graph> --out <file>\n";
    return 2;
  }
  const auto graph = load_graph(flags.positionals()[1]);
  save_graph(graph, flags.get_string("out", ""));
  std::cout << "wrote " << flags.get_string("out", "") << " ("
            << graph.num_vertices() << " vertices, " << graph.num_edges()
            << " edges)\n";
  return 0;
}

int cmd_cluster(const Flags& flags) {
  if (flags.positionals().size() < 2) {
    std::cerr << "cluster: missing graph file\n";
    return 2;
  }
  auto graph = load_graph(flags.positionals()[1]);
  const auto params = ScanParams::make(flags.get_string("eps", "0.5"),
                                       parse_mu(flags.get_string("mu", "5")));
  AlgorithmConfig config;
  config.num_threads =
      static_cast<int>(flags.get_int("threads", default_threads()));
  config.kernel = parse_intersect_kind(flags.get_string("kernel", "auto"));
  config.limits = parse_limits(flags);
  config.cancel = &g_signal_cancel;
  const auto algorithm = flags.get_string("algorithm", "ppSCAN");

  // NUMA policy: --numa shapes both the CSR page placement (here) and the
  // executor (inside the run); --hugepages asks for 2 MB THP backing
  // independently of the node policy. Everything degrades gracefully —
  // the report line says what actually happened (docs/numa.md).
  config.numa = parse_numa_mode(flags.get_string("numa", "off"));
  NumaTopology topology;
  std::string placement_label = "default";
  const bool hugepages = flags.get_bool("hugepages", false);
  if (config.numa != NumaMode::Off || hugepages) {
    topology = detect_topology();
    config.topology = &topology;
    PlacementOptions popts;
    popts.hugepages = hugepages;
    popts.topology = &topology;
    popts.placement = config.numa == NumaMode::Auto ? GraphPlacement::Sharded
                      : config.numa == NumaMode::Interleave
                          ? GraphPlacement::Interleave
                          : GraphPlacement::Default;
    const PlacementReport placed = graph.apply_placement(popts);
    if (placed.applied) placement_label = to_string(popts.placement);
    std::cout << "numa: mode=" << to_string(config.numa) << " nodes="
              << topology.num_nodes() << " placement=" << placement_label
              << (placed.hugepages_advised ? " hugepages=on" : "")
              << (placed.fallback_reason.empty()
                      ? ""
                      : " (" + placed.fallback_reason + ")")
              << "\n";
  }

  // Per-worker event tracing, exported in Chrome/Perfetto trace format.
  const auto trace_out = flags.get_string("trace-out", "");
  std::unique_ptr<obs::TraceCollector> collector;
  if (!trace_out.empty()) {
    if (!obs::kTraceEnabled) {
      std::cerr << "cluster: warning: tracing was compiled out "
                   "(PPSCAN_TRACE=OFF); " << trace_out
                << " will contain no events\n";
    }
    collector =
        std::make_unique<obs::TraceCollector>(config.num_threads);
    config.trace = collector.get();
  }

  const ScopedCancelSignals signals;
  const auto run = run_algorithm(algorithm, graph, params, config);
  std::cout << algorithm << " eps=" << params.eps.to_double()
            << " mu=" << params.mu << ": " << run.result.num_clusters()
            << " clusters, " << run.result.num_cores() << " cores in "
            << run.stats.total_seconds << " s ("
            << run.stats.compsim_invocations << " intersections)\n";
  if (run.partial()) {
    const RunAborted info{run.stats.abort_reason, run.stats.abort_phase,
                          run.stats.abort_bytes, run.stats.abort_worker,
                          run.stats.abort_detail};
    std::cout << "PARTIAL: " << info.describe() << "; "
              << run.stats.phases_completed
              << " phases completed, undecided vertices left Unknown\n";
  }

  const auto out = flags.get_string("out", "");
  if (!out.empty()) {
    write_scan_result(run.result, out);
    std::cout << "result -> " << out << "\n";
  }

  if (collector) {
    std::ofstream stream(trace_out);
    if (!stream) {
      std::cerr << "cluster: cannot open " << trace_out << " for writing\n";
      return 1;
    }
    write_chrome_trace(stream, *collector);
    std::cout << "trace -> " << trace_out
              << " (load in ui.perfetto.dev or chrome://tracing)\n";
  }

  const auto metrics_out = flags.get_string("metrics-json", "");
  if (!metrics_out.empty()) {
    auto report = make_metrics_report(
        "ppscan_cli", algorithm, file_stem(flags.positionals()[1]),
        flags.get_string("eps", "0.5"), params.mu,
        static_cast<std::uint64_t>(config.num_threads),
        to_string(resolve_kernel(config.kernel)), graph, run);
    report.placement = placement_label;
    const auto row = obs::metrics_to_json(report);
    // The emitter and the schema validator are kept in lockstep; a
    // violation here is a bug, not a user error.
    const auto violation = obs::validate_metrics_json(row);
    if (!violation.empty()) {
      std::cerr << "cluster: internal error: metrics row fails its own "
                   "schema: " << violation << "\n";
      return 1;
    }
    std::ofstream stream(metrics_out);
    if (!stream) {
      std::cerr << "cluster: cannot open " << metrics_out
                << " for writing\n";
      return 1;
    }
    stream << row.dump(2) << "\n";
    std::cout << "metrics -> " << metrics_out << " (schema v"
              << obs::kMetricsSchemaVersion << ")\n";
  }
  return abort_exit_code(run.stats.abort_reason);
}

int cmd_classify(const Flags& flags) {
  if (flags.positionals().size() < 3) {
    std::cerr << "classify: usage: classify <graph> <result.txt>\n";
    return 2;
  }
  const auto graph = load_graph(flags.positionals()[1]);
  const auto result = read_scan_result(flags.positionals()[2]);
  if (result.roles.size() != graph.num_vertices()) {
    std::cerr << "classify: result has " << result.roles.size()
              << " vertices but graph has " << graph.num_vertices() << "\n";
    return 1;
  }
  const auto classes = classify_hubs_outliers_parallel(
      graph, result,
      static_cast<int>(flags.get_int("threads", default_threads())));
  std::uint64_t members = 0, hubs = 0, outliers = 0;
  for (const auto c : classes) {
    if (c == VertexClass::Member) ++members;
    if (c == VertexClass::Hub) ++hubs;
    if (c == VertexClass::Outlier) ++outliers;
  }
  std::cout << "members " << members << "\nhubs " << hubs << "\noutliers "
            << outliers << "\n";
  if (flags.get_bool("list-hubs", false)) {
    std::cout << "hub-vertices:";
    for (VertexId u = 0; u < graph.num_vertices(); ++u) {
      if (classes[u] == VertexClass::Hub) std::cout << ' ' << u;
    }
    std::cout << "\n";
  }
  return 0;
}

/// `validate <graph>` with no result file: load the graph with full
/// ingestion checks, run the complete invariant pass (including arc
/// symmetry), and print a one-line verdict. Exit 0 = OK, 1 = invalid.
int cmd_validate_graph(const std::string& path) {
  try {
    const auto graph = load_graph(path);
    graph.validate();
    std::cout << "OK: " << path << ": " << graph.num_vertices()
              << " vertices, " << graph.num_edges()
              << " edges, CSR invariants hold\n";
    return 0;
  } catch (const GraphIoError& e) {
    std::cout << "INVALID: " << e.what() << "\n";
    return 1;
  }
}

int cmd_validate(const Flags& flags) {
  if (flags.positionals().size() < 2) {
    std::cerr << "validate: usage: validate <graph> [<result.txt> "
                 "[--eps E] [--mu M]]\n";
    return 2;
  }
  if (flags.positionals().size() == 2) {
    return cmd_validate_graph(flags.positionals()[1]);
  }
  const auto graph = load_graph(flags.positionals()[1]);
  const auto result = read_scan_result(flags.positionals()[2]);
  const auto params = ScanParams::make(flags.get_string("eps", "0.5"),
                                       parse_mu(flags.get_string("mu", "5")));
  const bool partial = flags.get_bool("partial", false);
  const auto report = validate_scan_result(
      graph, params, result,
      partial ? ValidateMode::Partial : ValidateMode::Full);
  if (report.ok) {
    std::cout << "VALID: result satisfies the SCAN definitions for eps="
              << params.eps.to_double() << " mu=" << params.mu
              << (partial ? " (partial mode)" : "") << "\n";
    return 0;
  }
  std::cout << "INVALID: " << report.first_error << "\n";
  return 1;
}

int cmd_query(const Flags& flags) {
  if (flags.positionals().size() < 2) {
    std::cerr << "query: missing graph file\n";
    return 2;
  }
  const auto graph = load_graph(flags.positionals()[1]);
  GsIndex::BuildOptions build;
  build.num_threads =
      static_cast<int>(flags.get_int("threads", default_threads()));
  build.limits = parse_limits(flags);
  build.cancel = &g_signal_cancel;
  const ScopedCancelSignals signals;
  WallTimer build_timer;
  const GsIndex index(graph, build);
  if (!index.complete()) {
    std::cout << "index construction aborted: "
              << index.build_stats().abort.describe() << "\n";
    return abort_exit_code(index.build_stats().abort.reason);
  }
  std::cout << "index built in " << build_timer.elapsed_s() << " s ("
            << index.memory_bytes() / (1024 * 1024) << " MiB)\n";

  Table table({"eps", "mu", "clusters", "cores", "query(s)"});
  for (const auto& eps : split_list(flags.get_string("eps", "0.2,0.5,0.8"))) {
    for (const auto& mu_text : split_list(flags.get_string("mu", "2,5"))) {
      const auto params = ScanParams::make(eps, parse_mu(mu_text));
      const auto run = index.query(params);
      table.add_row({eps, mu_text,
                     Table::fmt(std::uint64_t{run.result.num_clusters()}),
                     Table::fmt(run.result.num_cores()),
                     Table::fmt(run.stats.total_seconds)});
    }
  }
  table.print(std::cout, "GS*-Index query grid");
  return 0;
}

/// `serve <graph>`: build the index once, start a QueryService and answer
/// the queries read from stdin ("<eps> <mu>" per line, EOF ends the
/// session). Every line is submitted before the first answer is collected,
/// so the batch actually exercises the concurrent path; answers print in
/// submission order. --metrics-json writes the serving row (queries[] +
/// latency_histogram + queries_per_second).
int cmd_serve(const Flags& flags) {
  if (flags.positionals().size() < 2) {
    std::cerr << "serve: missing graph file\n";
    return 2;
  }
  const auto graph = load_graph(flags.positionals()[1]);
  const auto threads =
      static_cast<int>(flags.get_int("threads", default_threads()));
  GsIndex::BuildOptions build;
  build.num_threads = threads;
  build.cancel = &g_signal_cancel;
  const ScopedCancelSignals signals;
  WallTimer build_timer;
  const GsIndex index(graph, build);
  if (!index.complete()) {
    std::cout << "index construction aborted: "
              << index.build_stats().abort.describe() << "\n";
    return abort_exit_code(index.build_stats().abort.reason);
  }
  std::cout << "index built in " << build_timer.elapsed_s() << " s ("
            << index.memory_bytes() / (1024 * 1024) << " MiB); serving on "
            << threads << " threads, one \"<eps> <mu>\" query per line\n";

  serve::ServiceOptions options;
  options.num_threads = threads;
  options.queue_capacity =
      static_cast<std::size_t>(flags.get_int("queue", 1024));
  options.max_batch = static_cast<std::size_t>(flags.get_int("batch", 32));
  options.cache_results = !flags.get_bool("no-cache", false);
  options.default_limits = parse_limits(flags);
  options.shed_target_delay =
      std::chrono::milliseconds(flags.get_int("shed-target-ms", 0));
  options.breaker_failure_threshold =
      static_cast<std::uint32_t>(flags.get_int("breaker-threshold", 0));
  options.breaker_cooldown =
      std::chrono::milliseconds(flags.get_int("breaker-cooldown-ms", 100));
  options.degraded_serving = flags.get_bool("degraded", false);
  options.numa = parse_numa_mode(flags.get_string("numa", "off"));
  NumaTopology topology;
  if (options.numa == NumaMode::Auto) {
    topology = detect_topology();
    options.topology = &topology;
  }
  // Live telemetry (docs/observability.md, "Live telemetry"): the stats
  // publisher backs both the windowed /metrics families and the stderr
  // heartbeat, so a metrics port without an explicit cadence gets the
  // 1-second default.
  const long metrics_port = flags.get_int("metrics-port", -1);
  const long stats_interval_ms = flags.get_int("stats-interval-ms", 0);
  if (stats_interval_ms > 0) {
    options.stats_interval = std::chrono::milliseconds(stats_interval_ms);
  } else if (metrics_port >= 0) {
    options.stats_interval = std::chrono::milliseconds(1000);
  }
  const auto flight_out = flags.get_string("flight-out", "");
  options.flight_dump_path = flight_out;
  serve::QueryService service(index, options);

  std::unique_ptr<obs::ExpositionServer> exposition;
  if (metrics_port >= 0) {
    exposition = std::make_unique<obs::ExpositionServer>(
        static_cast<std::uint16_t>(metrics_port),
        [&service] { return serve::exposition_text(service.snapshot()); });
    // The smoke tests (and any local scraper) read the resolved port off
    // this line, so ephemeral --metrics-port 0 stays scriptable.
    std::cerr << "[serve] metrics exposition on 127.0.0.1:"
              << exposition->port() << "\n";
  }
  if (!flight_out.empty()) {
    obs::install_flight_signal_dump(service.flight(), flight_out.c_str());
  }

  // Satellite heartbeat: one stderr line per publisher interval, only
  // when --stats-interval-ms asked for it.
  std::atomic<bool> heartbeat_stop{false};
  std::thread heartbeat;
  if (stats_interval_ms > 0) {
    heartbeat = std::thread([&service, &heartbeat_stop, stats_interval_ms] {
      while (!heartbeat_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(stats_interval_ms));
        if (heartbeat_stop.load(std::memory_order_relaxed)) break;
        const auto s = service.snapshot();
        const double qps =
            s.interval_seconds > 0
                ? static_cast<double>(s.interval_completed) /
                      s.interval_seconds
                : 0;
        std::cerr << "[serve] qps=" << qps
                  << " p99w=" << s.window.quantile_ms(0.99) << "ms shed="
                  << s.shed_queue_full + s.shed_overload + s.shed_breaker
                  << " breaker=" << s.breaker_state << "\n";
      }
    });
  }

  // Submit the whole session up front, then collect in submission order —
  // the point of the service is concurrent execution, not lockstep.
  // With a shed target or breaker configured the session goes through the
  // gated non-blocking path (try_submit_ex + RetryPolicy), so the CLI
  // exercises the same admission machinery the open-loop clients use;
  // otherwise blocking submit() provides plain backpressure.
  const bool gated = options.shed_target_delay.count() > 0 ||
                     options.breaker_failure_threshold > 0;
  std::vector<ScanParams> params;
  std::vector<std::future<serve::QueryResponse>> futures;
  std::vector<serve::AdmissionOutcome> outcomes;
  WallTimer serve_timer;
  std::string eps_text, mu_text;
  while (std::cin >> eps_text >> mu_text) {
    const auto p = ScanParams::make(eps_text, parse_mu(mu_text));
    params.push_back(p);
    if (!gated) {
      futures.push_back(service.submit(p));
      outcomes.push_back(serve::AdmissionOutcome::Admitted);
      continue;
    }
    serve::RetryPolicy retry;
    std::future<serve::QueryResponse> future;
    serve::AdmissionResult admission;
    for (;;) {
      admission =
          service.try_submit_ex(p, options.default_limits, &future);
      if (admission.admitted() || !retry.should_retry()) break;
      std::this_thread::sleep_for(retry.next_delay(admission.retry_after));
    }
    futures.push_back(std::move(future));
    outcomes.push_back(admission.outcome);
  }
  Table table({"id", "eps", "mu", "clusters", "cores", "latency(ms)",
               "cache", "abort"});
  for (std::size_t i = 0; i < futures.size(); ++i) {
    if (outcomes[i] != serve::AdmissionOutcome::Admitted) {
      table.add_row({"-", std::to_string(params[i].eps.to_double()),
                     Table::fmt(std::uint64_t{params[i].mu}), "-", "-", "-",
                     "-", to_string(outcomes[i])});
      continue;
    }
    const serve::QueryResponse r = futures[i].get();
    table.add_row({Table::fmt(r.id),
                   std::to_string(params[i].eps.to_double()),
                   Table::fmt(std::uint64_t{params[i].mu}),
                   Table::fmt(std::uint64_t{r.run->result.num_clusters()}),
                   Table::fmt(r.run->result.num_cores()),
                   Table::fmt(r.latency_seconds * 1e3),
                   r.degraded    ? "degraded"
                   : r.cache_hit ? "hit"
                                 : "miss",
                   // The query's own outcome — preserved by the ladder
                   // even when the served (substituted) run is complete.
                   to_string(r.classified_reason)});
  }
  const double elapsed = serve_timer.elapsed_s();
  if (heartbeat.joinable()) {
    heartbeat_stop.store(true, std::memory_order_relaxed);
    heartbeat.join();
  }
  service.stop();
  if (exposition) exposition->stop();
  // The recorder dies with the service at end of scope; disarm the global
  // handler before that happens.
  if (!flight_out.empty()) obs::install_flight_signal_dump(nullptr, nullptr);
  table.print(std::cout, "QueryService session");

  const auto snap = service.snapshot();
  std::cout << "served " << snap.completed << " queries in " << elapsed
            << " s (" << snap.cache_hits << " cache hits, " << snap.partial
            << " partial); p50=" << snap.latency.quantile_ms(0.5)
            << " ms p99=" << snap.latency.quantile_ms(0.99) << " ms\n";
  std::cout << "resilience: " << snap.exceptions << " exceptions, "
            << snap.shed_queue_full + snap.shed_overload + snap.shed_breaker
            << " shed (" << snap.shed_queue_full << " queue-full, "
            << snap.shed_overload << " overload, " << snap.shed_breaker
            << " breaker), " << snap.degraded_hits
            << " degraded; breaker " << snap.breaker_state << " ("
            << snap.breaker_transitions << " transitions)\n";

  const auto metrics_out = flags.get_string("metrics-json", "");
  if (!metrics_out.empty()) {
    const auto report = serve::make_serving_report(
        "ppscan_cli", file_stem(flags.positionals()[1]),
        flags.get_string("eps", "stdin"), graph, snap, elapsed);
    auto row = obs::metrics_to_json(report);
    if (elapsed > 0) {
      row.set("queries_per_second",
              obs::JsonValue::number(
                  static_cast<double>(snap.completed) / elapsed));
    }
    const auto violation = obs::validate_metrics_json(row);
    if (!violation.empty()) {
      std::cerr << "serve: internal error: metrics row fails its own "
                   "schema: " << violation << "\n";
      return 1;
    }
    std::vector<obs::JsonValue> rows;
    rows.push_back(std::move(row));
    const auto doc = obs::metrics_file_envelope("serving", std::move(rows));
    std::ofstream stream(metrics_out);
    if (!stream) {
      std::cerr << "serve: cannot open " << metrics_out << " for writing\n";
      return 1;
    }
    stream << doc.dump(2) << "\n";
    std::cout << "metrics -> " << metrics_out << " (schema v"
              << obs::kMetricsSchemaVersion << ")\n";
  }
  return 0;
}

void usage() {
  std::cerr
      << "usage: ppscan_cli <command> [args]\n"
         "commands:\n"
         "  generate --type er|ba|rmat|lfr --out <file> [params]\n"
         "  stats <graph> [--triangles] [--histogram]\n"
         "  convert <graph> --out <file>\n"
         "  cluster <graph> [--eps E] [--mu M] [--algorithm A] [--out R]\n"
         "          [--timeout-ms T] [--mem-budget-mb M] [--stall-ms S]\n"
         "          [--numa auto|off|interleave]  topology-aware execution\n"
         "          [--hugepages]                 2 MB THP-backed CSR\n"
         "          (limits / SIGINT yield a partial result; exit codes:\n"
         "           124 deadline, 125 budget, 126 stall, 130 cancelled)\n"
         "          [--trace-out trace.json]   per-worker Perfetto trace\n"
         "          [--metrics-json row.json]  schema-v2 metrics row\n"
         "  classify <graph> <result>\n"
         "  validate <graph>                 (check CSR invariants)\n"
         "  validate <graph> <result> [--eps E] [--mu M] [--partial]\n"
         "  query <graph> [--eps list] [--mu list] [--timeout-ms T]\n"
         "  serve <graph> [--threads N] [--queue C] [--batch B] [--no-cache]\n"
         "        [--timeout-ms T] [--numa auto|off|interleave]\n"
         "        [--metrics-json file]   (reads \"<eps> <mu>\" per stdin\n"
         "        line; concurrent QueryService over one GS*-Index)\n"
         "        [--shed-target-ms D]    CoDel-style overload shedding\n"
         "        [--breaker-threshold N] circuit breaker after N failures\n"
         "        [--breaker-cooldown-ms C] open -> half-open probe delay\n"
         "        [--degraded]            nearest cached answer when doomed\n"
         "        (shed/breaker flags switch submission to the gated\n"
         "         try_submit_ex path with client-side retry/backoff;\n"
         "         see docs/resilience.md)\n"
         "        [--metrics-port P]      /metrics + /healthz on\n"
         "                                127.0.0.1:P (0 = ephemeral; the\n"
         "                                bound port prints to stderr)\n"
         "        [--stats-interval-ms M] windowed-stats publisher cadence\n"
         "                                + one stderr heartbeat line per\n"
         "                                interval (default off)\n"
         "        [--flight-out FILE]     flight-recorder JSON on stop,\n"
         "                                breaker-open, and fatal signals\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const Flags flags(argc, argv);
  const std::string command = flags.positionals().empty()
                                  ? ""
                                  : flags.positionals().front();
  try {
    if (command == "generate") return cmd_generate(flags);
    if (command == "stats") return cmd_stats(flags);
    if (command == "convert") return cmd_convert(flags);
    if (command == "cluster") return cmd_cluster(flags);
    if (command == "classify") return cmd_classify(flags);
    if (command == "validate") return cmd_validate(flags);
    if (command == "query") return cmd_query(flags);
    if (command == "serve") return cmd_serve(flags);
    usage();
    return 2;
  } catch (const ppscan::GraphIoError& e) {
    std::cerr << "ppscan_cli " << command
              << ": invalid graph input: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "ppscan_cli " << command << ": " << e.what() << "\n";
    return 1;
  }
}
