#!/usr/bin/env python3
"""ppscan_lint — concurrency-protocol and repo-invariant checker.

Generic static analysis (clang-tidy, see .clang-tidy) cannot check the
invariants this repository's lock-free layer actually relies on: *which*
memory orders each std::atomic member is allowed to use, and the phase /
ownership protocol that makes a relaxed operation correct in one place and a
bug in another. This linter encodes those invariants:

  protocol-missing    every std::atomic / AtomicArray / unique_ptr<atomic[]>
                      member in the configured paths must carry a
                      `// protocol: <discipline>` annotation naming its
                      ordering discipline (disciplines are defined in
                      atomics_protocol.toml).
  protocol-unknown    the annotation names a discipline the config does not
                      define.
  protocol-order      a load/store/RMW/CAS/wait call site on an annotated
                      member uses a memory_order outside the discipline's
                      allowed set (the implicit default — seq_cst for
                      std::atomic, relaxed for the AtomicArray wrapper — is
                      checked too, so an accidental bare `.load()` on a
                      relaxed counter is caught).
  protocol-ambiguous  two members share a name but declare different
                      disciplines — call sites are resolved by receiver
                      name, so this must be an error, not a guess.
  protocol-docs       an annotated member is missing from the protocol table
                      in docs/memory_model.md (keeps the docs complete).
  banned-api          rand()/srand()/time(nullptr)/naked new[] in phase-body
                      code (config-driven pattern list).
  vertexid-narrowing  `static_cast<VertexId>(...)` of a size-like 64-bit
                      expression at a graph boundary; use
                      ppscan::checked_vertex_cast, which asserts the value
                      fits.
  order-assert        functions listed in the config (the similarity-reuse
                      core-checking paths, Algorithm 3) must contain their
                      declared `u < v` order-constraint assertion.
  trace-hotpath       PPSCAN_TRACE_* / PPSCAN_FAULT_* macros in the
                      configured hot paths (the setops kernels): even
                      compiled-out trace hooks and fault points are
                      forbidden where a null-check or function call would
                      sit inside the per-element intersection loops.

A second pass (config: lock_protocol.toml) enforces the blocking-side lock
discipline that complements clang's -Wthread-safety (which checks
guard/capability use but has no reliable whole-program lock ordering):

  lock-raw            std::mutex / lock_guard / unique_lock / ... in the
                      configured paths; raw primitives are invisible to
                      -Wthread-safety — use CheckedMutex/CheckedLock from
                      util/thread_safety.hpp.
  lock-unannotated    a CheckedMutex member without a `// guards:` comment
                      naming the state it protects.
  lock-undeclared     a CheckedMutex not registered in lock_protocol.toml
                      ([[locks]]) — every mutex needs a lock-order level —
                      or a registered lock with no declaration left in the
                      tree.
  lock-ambiguous      two CheckedMutex declarations share a name; the order
                      checker resolves locks by name, so this is an error.
  lock-order          an acquisition edge (lexical nesting, a call made
                      while a lock is held — via a transitive may-acquire
                      closure — or a PPSCAN_REQUIRES-derived hold) that
                      violates the strictly-increasing level hierarchy,
                      including self-deadlocks on the non-recursive
                      CheckedMutex.
  lock-hotpath        any mutex use in lock-free hot-path directories, or a
                      direct acquisition inside the functions listed in
                      [[hotpath_functions]] (the executor claim path).
  lock-docs           a mutex missing from the "Mutexes and guards" table
                      in docs/memory_model.md.

Engine: a comment/string-aware tokenizer (no dependencies beyond the
standard library). When the optional libclang python bindings are installed,
`--verify-with-libclang` cross-validates the declaration scan against a real
AST walk; the bindings are NOT required — this tool must run anywhere the
repo builds.

Per-site waivers: `// lint-ok: <rule>` on the offending line or the line
directly above suppresses that rule at that site. Waivers are counted in the
summary so they stay visible.

Output: `file:line: [rule] message` — clickable in CI logs and editors.
Exit codes: 0 clean, 1 findings, 2 configuration/usage error.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import re
import sys
import tomllib

# --------------------------------------------------------------------------
# Source model: comment/string-aware scan
# --------------------------------------------------------------------------


@dataclasses.dataclass
class SourceFile:
    """One scanned file: raw text, code with comments/strings blanked
    (offsets and newlines preserved), and per-line comment text."""

    path: str
    text: str
    code: str  # comments and string literals replaced by spaces
    comments: dict[int, str]  # 1-based line -> concatenated comment text

    def line_of(self, offset: int) -> int:
        return self.text.count("\n", 0, offset) + 1


def blank_comments_and_strings(text: str) -> tuple[str, dict[int, str]]:
    """Replaces comments and string/char literals with spaces (newlines kept)
    and collects comment text per line. Handles //, /* */, "", '', and
    R"delim( )delim" raw strings."""
    out: list[str] = []
    comments: dict[int, str] = {}
    i, n = 0, len(text)
    line = 1

    def add_comment(ln: int, s: str) -> None:
        comments[ln] = comments.get(ln, "") + " " + s

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            out.append("\n")
            line += 1
            i += 1
        elif c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            add_comment(line, text[i:j])
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            chunk = text[i : j + 2]
            for k, part in enumerate(chunk.split("\n")):
                add_comment(line + k, part)
            out.append("".join("\n" if ch == "\n" else " " for ch in chunk))
            line += chunk.count("\n")
            i = j + 2
        elif c == 'R' and nxt == '"':
            m = re.match(r'R"([^ ()\\\t\n]*)\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i + m.end())
                j = n if j < 0 else j + len(close)
                chunk = text[i:j]
                out.append("".join("\n" if ch == "\n" else " " for ch in chunk))
                line += chunk.count("\n")
                i = j
            else:
                out.append(c)
                i += 1
        elif c in ('"', "'"):
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out), comments


def load_source(path: pathlib.Path, root: pathlib.Path) -> SourceFile:
    text = path.read_text(encoding="utf-8", errors="replace")
    code, comments = blank_comments_and_strings(text)
    return SourceFile(str(path.relative_to(root)), text, code, comments)


# --------------------------------------------------------------------------
# Findings
# --------------------------------------------------------------------------


@dataclasses.dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def waived(src: SourceFile, line: int, rule: str) -> bool:
    for ln in (line, line - 1):
        comment = src.comments.get(ln, "")
        m = re.search(r"lint-ok:\s*([A-Za-z0-9_,\- ]+)", comment)
        if m and rule in [r.strip() for r in m.group(1).split(",")]:
            return True
    return False


# --------------------------------------------------------------------------
# Config
# --------------------------------------------------------------------------

ORDER_NAMES = {"relaxed", "consume", "acquire", "release", "acq_rel", "seq_cst"}


@dataclasses.dataclass
class Discipline:
    name: str
    summary: str
    allowed: dict[str, set[str]]  # op-kind -> allowed orders
    cas_failure: set[str]
    dynamic: bool  # allow non-literal (forwarded) order arguments


@dataclasses.dataclass
class Config:
    disciplines: dict[str, Discipline]
    protocol_paths: list[str]
    exclude_paths: list[str]
    docs_file: str | None
    banned: list[dict]
    narrowing_paths: list[str]
    narrowing_hints: list[str]
    required_asserts: list[dict]
    trace_hotpath_paths: list[str]


def load_config(path: pathlib.Path) -> Config:
    try:
        data = tomllib.loads(path.read_text(encoding="utf-8"))
    except (OSError, tomllib.TOMLDecodeError) as exc:
        raise SystemExit(f"ppscan_lint: cannot read config {path}: {exc}")

    disciplines: dict[str, Discipline] = {}
    for name, spec in data.get("disciplines", {}).items():
        allowed = {}
        for op in ("load", "store", "rmw", "cas", "wait"):
            orders = set(spec.get(op, []))
            bad = orders - ORDER_NAMES
            if bad:
                raise SystemExit(
                    f"ppscan_lint: discipline {name}: unknown order(s) {bad}")
            allowed[op] = orders
        cas_failure = set(spec.get("cas_failure",
                                   allowed["cas"] | {"relaxed", "acquire"}))
        disciplines[name] = Discipline(
            name=name,
            summary=spec.get("summary", ""),
            allowed=allowed,
            cas_failure=cas_failure,
            dynamic=bool(spec.get("dynamic", False)),
        )
    protocol = data.get("protocol", {})
    narrowing = data.get("narrowing", {})
    trace = data.get("trace", {})
    return Config(
        disciplines=disciplines,
        protocol_paths=protocol.get("paths", ["src/"]),
        exclude_paths=data.get("exclude_paths", []),
        docs_file=protocol.get("docs_file"),
        banned=data.get("banned", []),
        narrowing_paths=narrowing.get("paths", ["src/"]),
        narrowing_hints=narrowing.get(
            "hints", [r"\.size\s*\(\)", r"\bEdgeId\b", r"\bsize_t\b",
                      r"\buint64_t\b", r"\.num_arcs\s*\(\)"]),
        required_asserts=data.get("required_asserts", []),
        trace_hotpath_paths=trace.get("hotpath_paths", []),
    )


# --------------------------------------------------------------------------
# Declaration scan: atomic members and their protocol annotations
# --------------------------------------------------------------------------


@dataclasses.dataclass
class AtomicDecl:
    path: str
    line: int
    name: str
    kind: str  # "atomic" (std::atomic / unique_ptr<atomic[]>) | "wrapper"
    discipline: str | None  # None = unannotated


# Anchors for declarations whose type carries atomics. `unique_ptr<...>` is
# only kept when its template arguments mention std::atomic.
DECL_ANCHOR = re.compile(
    r"\b(?:std\s*::\s*)?(atomic|atomic_flag|unique_ptr|AtomicArray)\s*<")
IDENT = re.compile(r"[A-Za-z_]\w*")


def balance(code: str, start: int, open_ch: str, close_ch: str) -> int:
    """Index one past the matching close bracket, or -1."""
    depth = 0
    for i in range(start, len(code)):
        c = code[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def find_decls(src: SourceFile) -> list[AtomicDecl]:
    decls: list[AtomicDecl] = []
    code = src.code
    for m in DECL_ANCHOR.finditer(code):
        head = m.group(1)
        lt = code.index("<", m.end() - 1)
        end = balance(code, lt, "<", ">")
        if end < 0:
            continue
        inner = code[lt:end]
        if head == "unique_ptr" and "atomic" not in inner:
            continue
        # Reject anchors that are themselves nested inside another template
        # argument list (e.g. the atomic< inside make_unique<...> or
        # unique_ptr<...> — the outer anchor reports the declaration).
        before = code[max(0, m.start() - 64):m.start()]
        if re.search(r"[<,]\s*(?:std\s*::\s*)?$", before):
            continue
        j = end
        while j < len(code) and code[j] in " \t\n*&":
            if code[j] in "*&":  # pointer/reference to atomic: not a member
                j = -1
                break
            j += 1
        if j < 0 or j >= len(code):
            continue
        ident = IDENT.match(code, j)
        if not ident:
            continue
        k = ident.end()
        while k < len(code) and code[k] in " \t\n":
            k += 1
        if k < len(code) and code[k] == "{":
            k = balance(code, k, "{", "}")
            if k < 0:
                continue
            while k < len(code) and code[k] in " \t\n":
                k += 1
        if k >= len(code) or code[k] not in ";=":
            continue  # function declaration, ctor call, etc.
        line = src.line_of(m.start())
        kind = "wrapper" if head == "AtomicArray" else "atomic"
        decls.append(AtomicDecl(src.path, line, ident.group(0), kind,
                                find_protocol_annotation(src, line)))
    return decls


def find_protocol_annotation(src: SourceFile, decl_line: int) -> str | None:
    """`protocol: <name>` trailing on the declaration line or in the
    contiguous comment block directly above it."""
    candidates = [decl_line]
    ln = decl_line - 1
    while ln > 0 and src.comments.get(ln):
        candidates.append(ln)
        ln -= 1
    for ln in candidates:
        m = re.search(r"protocol:\s*([A-Za-z0-9_\-]+)", src.comments.get(ln, ""))
        if m:
            return m.group(1)
    return None


# --------------------------------------------------------------------------
# Call-site scan: memory orders vs declared discipline
# --------------------------------------------------------------------------

OP_CALL = re.compile(
    r"(?:\.|->)\s*(load|store|exchange|compare_exchange_strong|"
    r"compare_exchange_weak|compare_exchange|fetch_add|fetch_sub|fetch_or|"
    r"fetch_and|fetch_xor|wait)\s*\(")

# op -> (kind, 0-based index of the memory_order argument) per receiver kind
ORDER_ARG_ATOMIC = {
    "load": ("load", 0), "store": ("store", 1), "exchange": ("rmw", 1),
    "fetch_add": ("rmw", 1), "fetch_sub": ("rmw", 1), "fetch_or": ("rmw", 1),
    "fetch_and": ("rmw", 1), "fetch_xor": ("rmw", 1), "wait": ("wait", 1),
    "compare_exchange_strong": ("cas", 2), "compare_exchange_weak": ("cas", 2),
}
ORDER_ARG_WRAPPER = {
    "load": ("load", 1), "store": ("store", 2), "fetch_add": ("rmw", 2),
    "compare_exchange": ("cas", 3),
}
ORDER_TOKEN = re.compile(
    r"^(?:std\s*::\s*)?memory_order(?:_|\s*::\s*)"
    r"(relaxed|consume|acquire|release|acq_rel|seq_cst)$")


def receiver_before(code: str, dot: int) -> str | None:
    """Identifier owning the access chain ending at `dot` (the `.`/`->`),
    skipping one trailing [index] or () group: `data_[i].load`, `w->hb.load`."""
    i = dot - 1
    while i >= 0 and code[i] in " \t\n":
        i -= 1
    if i >= 0 and code[i] in ")]":
        close = code[i]
        open_ch = "(" if close == ")" else "["
        depth = 0
        while i >= 0:
            if code[i] == close:
                depth += 1
            elif code[i] == open_ch:
                depth -= 1
                if depth == 0:
                    i -= 1
                    break
            i -= 1
        while i >= 0 and code[i] in " \t\n":
            i -= 1
    end = i + 1
    while i >= 0 and (code[i].isalnum() or code[i] == "_"):
        i -= 1
    name = code[i + 1:end]
    return name if name else None


def split_args(argtext: str) -> list[str]:
    args, depth, cur = [], 0, []
    for ch in argtext:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if ch == "," and depth == 0:
            args.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        args.append(tail)
    return args


def classify_order(arg: str | None, default: str) -> str:
    """Returns an order name, or 'dynamic' for a forwarded/non-literal order."""
    if arg is None:
        return default
    m = ORDER_TOKEN.match(arg.strip())
    return m.group(1) if m else "dynamic"


def check_call_sites(src: SourceFile, registry: dict[str, AtomicDecl],
                     cfg: Config) -> list[Finding]:
    findings: list[Finding] = []
    code = src.code
    for m in OP_CALL.finditer(code):
        op = m.group(1)
        recv = receiver_before(code, m.start())
        decl = registry.get(recv) if recv else None
        if decl is None or decl.discipline not in cfg.disciplines:
            continue
        disc = cfg.disciplines[decl.discipline]
        table = ORDER_ARG_WRAPPER if decl.kind == "wrapper" else ORDER_ARG_ATOMIC
        if op not in table:
            continue
        kind, order_idx = table[op]
        close = balance(code, m.end() - 1, "(", ")")
        if close < 0:
            continue
        args = split_args(code[m.end():close - 1])
        default = "relaxed" if decl.kind == "wrapper" else "seq_cst"
        line = src.line_of(m.start())
        if waived(src, line, "protocol-order"):
            continue

        def bad(kind_label: str, order: str, allowed: set[str]) -> None:
            findings.append(Finding(
                src.path, line, "protocol-order",
                f"{recv}.{op}: {kind_label} order '{order}' not allowed by "
                f"protocol '{disc.name}' (allowed: "
                f"{', '.join(sorted(allowed)) or 'none'})"))

        order = classify_order(
            args[order_idx] if len(args) > order_idx else None, default)
        allowed = disc.allowed[kind]
        if order == "dynamic":
            if not disc.dynamic:
                bad(kind, "<non-literal>", allowed)
        elif order not in allowed:
            bad(kind, order, allowed)
        if kind == "cas":
            if len(args) > order_idx + 1:
                fail = classify_order(args[order_idx + 1], default)
            else:
                # [atomics.types.operations]: the one-order CAS derives its
                # failure order from the success order (release -> relaxed,
                # acq_rel -> acquire, otherwise the same).
                fail = {"release": "relaxed", "acq_rel": "acquire"}.get(
                    order, order)
            if fail == "dynamic":
                if not disc.dynamic:
                    bad("cas-failure", "<non-literal>", disc.cas_failure)
            elif fail not in disc.cas_failure and fail != "dynamic":
                bad("cas-failure", fail, disc.cas_failure)
    return findings


# --------------------------------------------------------------------------
# Simple pattern rules: banned APIs, VertexId narrowing
# --------------------------------------------------------------------------


def check_banned(src: SourceFile, cfg: Config) -> list[Finding]:
    findings = []
    for rule in cfg.banned:
        if not path_in(src.path, rule.get("paths", ["src/"])):
            continue
        for m in re.finditer(rule["pattern"], src.code):
            line = src.line_of(m.start())
            if waived(src, line, "banned-api"):
                continue
            findings.append(Finding(src.path, line, "banned-api",
                                    f"{rule['name']}: {rule['message']}"))
    return findings


NARROW_CAST = re.compile(r"static_cast\s*<\s*VertexId\s*>\s*\(")


def check_narrowing(src: SourceFile, cfg: Config) -> list[Finding]:
    if not path_in(src.path, cfg.narrowing_paths):
        return []
    findings = []
    hints = [re.compile(h) for h in cfg.narrowing_hints]
    for m in NARROW_CAST.finditer(src.code):
        close = balance(src.code, m.end() - 1, "(", ")")
        if close < 0:
            continue
        arg = src.code[m.end():close - 1]
        if not any(h.search(arg) for h in hints):
            continue
        line = src.line_of(m.start())
        if waived(src, line, "vertexid-narrowing"):
            continue
        findings.append(Finding(
            src.path, line, "vertexid-narrowing",
            "size-like value narrowed with a raw static_cast<VertexId>; use "
            "ppscan::checked_vertex_cast (util/types.hpp), which asserts the "
            "value is representable"))
    return findings


TRACE_MACRO = re.compile(r"\bPPSCAN_(?:TRACE|FAULT)_[A-Z0-9_]+\s*\(")


def check_trace_hotpath(src: SourceFile, cfg: Config) -> list[Finding]:
    """Trace hooks and fault points are banned from the configured hot
    paths. Even with PPSCAN_TRACE=OFF / PPSCAN_FAULTS=OFF the macros still
    evaluate to a statement, and with them ON the null-check + clock read
    (or the fault-registry lookup) lands inside per-element kernel loops
    whose cost model the paper's figures depend on. Instrument the *caller*
    (phase body / task wrapper), never the kernel."""
    if not path_in(src.path, cfg.trace_hotpath_paths):
        return []
    findings = []
    for m in TRACE_MACRO.finditer(src.code):
        line = src.line_of(m.start())
        # The macro's own definition site is not a use.
        line_start = src.code.rfind("\n", 0, m.start()) + 1
        if re.match(r"\s*#\s*define\b", src.code[line_start:m.start()]):
            continue
        if waived(src, line, "trace-hotpath"):
            continue
        findings.append(Finding(
            src.path, line, "trace-hotpath",
            "PPSCAN_TRACE_*/PPSCAN_FAULT_* macro in a trace-free hot path; "
            "record the event (or place the fault site) in the calling "
            "phase body instead (see docs/observability.md)"))
    return findings


# --------------------------------------------------------------------------
# Required order-constraint assertions (Algorithm 3 contract)
# --------------------------------------------------------------------------


def check_required_asserts(sources: dict[str, SourceFile],
                           cfg: Config) -> list[Finding]:
    findings = []
    for req in cfg.required_asserts:
        src = sources.get(req["file"])
        if src is None:
            findings.append(Finding(req["file"], 1, "order-assert",
                                    "file listed in [[required_asserts]] was "
                                    "not scanned (moved or deleted?)"))
            continue
        fn = req["function"]
        body = None
        body_line = 1
        for m in re.finditer(r"\b" + re.escape(fn) + r"\s*\(", src.code):
            close = balance(src.code, m.end() - 1, "(", ")")
            if close < 0:
                continue
            k = close
            while k < len(src.code) and src.code[k] in " \t\n":
                k += 1
            if k < len(src.code) and src.code[k] == "{":
                end = balance(src.code, k, "{", "}")
                if end > 0:
                    body = src.code[k:end]
                    body_line = src.line_of(m.start())
                    break
        if body is None:
            findings.append(Finding(
                req["file"], 1, "order-assert",
                f"function '{fn}' (with a body) not found; update "
                "[[required_asserts]] if it moved"))
            continue
        if not re.search(req["pattern"], body):
            findings.append(Finding(
                req["file"], body_line, "order-assert",
                f"'{fn}' must assert its order constraint "
                f"(pattern /{req['pattern']}/): {req.get('reason', '')}"))
    return findings


# --------------------------------------------------------------------------
# Docs completeness
# --------------------------------------------------------------------------


def check_docs(decls: list[AtomicDecl], cfg: Config,
               root: pathlib.Path) -> list[Finding]:
    if not cfg.docs_file:
        return []
    docs_path = root / cfg.docs_file
    if not docs_path.is_file():
        return [Finding(cfg.docs_file, 1, "protocol-docs",
                        "protocol docs file missing")]
    docs = docs_path.read_text(encoding="utf-8")
    findings = []
    for d in decls:
        if d.discipline and f"`{d.name}`" not in docs:
            findings.append(Finding(
                d.path, d.line, "protocol-docs",
                f"atomic member `{d.name}` is annotated but missing from the "
                f"protocol table in {cfg.docs_file}"))
    return findings


# --------------------------------------------------------------------------
# Lock-discipline pass (lock_protocol.toml)
# --------------------------------------------------------------------------


@dataclasses.dataclass
class LockSpec:
    name: str
    level: int  # lower = acquired first (outermost); edges must go up
    summary: str


@dataclasses.dataclass
class LockConfig:
    paths: list[str]
    exclude_paths: list[str]
    docs_file: str | None
    locks: dict[str, LockSpec]
    hotpath_paths: list[str]
    hotpath_functions: list[dict]
    call_aliases: dict[str, str]  # macro name -> function it expands to


def load_lock_config(path: pathlib.Path) -> LockConfig:
    try:
        data = tomllib.loads(path.read_text(encoding="utf-8"))
    except (OSError, tomllib.TOMLDecodeError) as exc:
        raise SystemExit(f"ppscan_lint: cannot read lock config {path}: {exc}")
    locks: dict[str, LockSpec] = {}
    for spec in data.get("locks", []):
        name = spec["name"]
        if name in locks:
            raise SystemExit(f"ppscan_lint: lock config lists '{name}' twice")
        locks[name] = LockSpec(name=name, level=int(spec["level"]),
                               summary=spec.get("summary", ""))
    lock = data.get("lock", {})
    hotpath = data.get("hotpath", {})
    return LockConfig(
        paths=lock.get("paths", ["src/"]),
        exclude_paths=data.get("exclude_paths", []),
        docs_file=lock.get("docs_file"),
        locks=locks,
        hotpath_paths=hotpath.get("paths", []),
        hotpath_functions=data.get("hotpath_functions", []),
        call_aliases=data.get("call_aliases", {}),
    )


@dataclasses.dataclass
class LockDecl:
    path: str
    line: int
    name: str
    guarded: bool  # has a `// guards:` comment


@dataclasses.dataclass
class LockSite:
    """One acquisition: a CheckedLock declaration or an explicit .lock().
    The lock is treated as held from `offset` to the close of the innermost
    enclosing brace block (`scope_end`) — RAII lifetime, and a safe
    over-approximation for manual lock()/unlock() pairs."""

    path: str
    line: int
    offset: int
    scope_end: int
    name: str


@dataclasses.dataclass
class FuncDef:
    name: str
    line: int
    body_start: int  # offset of the opening '{'
    body_end: int  # one past the closing '}'
    requires: list[str]  # identifiers from PPSCAN_REQUIRES(...)


LOCK_DECL = re.compile(
    r"\b(?:ppscan\s*::\s*)?CheckedMutex\s+([A-Za-z_]\w*)\s*[;={]")
RAW_LOCK = re.compile(
    r"\bstd\s*::\s*(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b")
LOCK_GUARD_DECL = re.compile(r"\bCheckedLock\s+[A-Za-z_]\w*\s*\(")
LOCK_METHOD_CALL = re.compile(r"(?:\.|->)\s*lock\s*\(")
HOTPATH_LOCK = re.compile(
    r"\bCheckedMutex\b|\bCheckedLock\b|"
    r"\bstd\s*::\s*(?:recursive_|timed_|shared_)*mutex\b|"
    r"\bstd\s*::\s*(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b|"
    r"(?:\.|->)\s*lock\s*\(")
# A call not reached through `.`/`->`/`::` — the receiver-less calls the
# intra-repo call graph is built from. Template-qualified calls (f<T>())
# are rare enough here to ignore; missing one only loses a may-acquire
# edge, never invents one.
CALL_SITE = re.compile(r"(?<![\w~.:>])([A-Za-z_]\w*)\s*\(")
# Unlike CALL_SITE this must accept `Class::name(` — qualified method
# definitions — so only a preceding word char or '~' blocks the match.
FUNC_ANCHOR = re.compile(r"(?<![\w~])(~?[A-Za-z_]\w*)\s*\(")
CPP_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "static_assert", "alignas", "throw", "new", "delete",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "assert", "defined", "do", "else", "case", "goto", "co_await",
    "co_return", "co_yield", "requires", "noexcept", "operator",
}
FUNC_SPECIFIERS = {"const", "noexcept", "override", "final", "mutable",
                   "volatile", "try", "constexpr", "inline"}


def find_guards_annotation(src: SourceFile, decl_line: int) -> bool:
    """`guards: <what>` trailing on the declaration line or in the
    contiguous comment block directly above it (mirrors `protocol:`)."""
    candidates = [decl_line]
    ln = decl_line - 1
    while ln > 0 and src.comments.get(ln):
        candidates.append(ln)
        ln -= 1
    return any(re.search(r"guards:\s*\S", src.comments.get(ln, ""))
               for ln in candidates)


def enclosing_scope_end(code: str, offset: int) -> int:
    """Offset of the '}' closing the innermost block containing `offset`
    (end of text if at namespace/file scope)."""
    depth = 0
    for i in range(offset, len(code)):
        c = code[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth < 0:
                return i
    return len(code)


def _skip_ctor_init_list(code: str, k: int) -> int:
    """From just after the ':' introducing a constructor initializer list,
    returns the offset of the body '{', or -1 if this isn't one."""
    n = len(code)
    while True:
        while k < n and code[k] in " \t\n":
            k += 1
        m = IDENT.match(code, k)
        if not m:
            return -1
        k = m.end()
        while True:  # qualified-id and template-argument tail
            while k < n and code[k] in " \t\n":
                k += 1
            if code.startswith("::", k):
                m = IDENT.match(code, k + 2)
                if not m:
                    return -1
                k = m.end()
                continue
            if k < n and code[k] == "<":
                k = balance(code, k, "<", ">")
                if k < 0:
                    return -1
                continue
            break
        if k >= n or code[k] not in "({":
            return -1
        k = balance(code, k, code[k], ")" if code[k] == "(" else "}")
        if k < 0:
            return -1
        while k < n and code[k] in " \t\n":
            k += 1
        if k < n and code[k] == ",":
            k += 1
            continue
        return k if k < n and code[k] == "{" else -1


def extract_functions(src: SourceFile) -> list[FuncDef]:
    """Function definitions (free functions, methods, constructors,
    destructors) by bare name: `name(params) specifiers... { body }`.
    Tolerates cv/ref/noexcept specifiers, PPSCAN_* attribute macros
    (capturing PPSCAN_REQUIRES arguments), and constructor initializer
    lists. Lambdas are not extracted — their acquisitions attribute to the
    enclosing named function, which is what the order checker wants."""
    code = src.code
    n = len(code)
    out: list[FuncDef] = []
    for m in FUNC_ANCHOR.finditer(code):
        name = m.group(1)
        if name in CPP_KEYWORDS:
            continue
        close = balance(code, m.end() - 1, "(", ")")
        if close < 0:
            continue
        k = close
        requires: list[str] = []
        body_start = -1
        while 0 <= k < n:
            while k < n and code[k] in " \t\n":
                k += 1
            if k >= n:
                break
            c = code[k]
            if c == "{":
                body_start = k
                break
            if c == ":":
                body_start = _skip_ctor_init_list(code, k + 1)
                break
            if c in "-&*>":  # ref-qualifiers, trailing-return arrows
                k += 1
                continue
            w = IDENT.match(code, k)
            if not w:
                break
            word = w.group(0)
            k2 = w.end()
            while k2 < n and code[k2] in " \t\n":
                k2 += 1
            if k2 < n and code[k2] == "(":
                pe = balance(code, k2, "(", ")")
                if pe < 0:
                    break
                if word == "PPSCAN_REQUIRES":
                    requires.extend(
                        re.findall(r"[A-Za-z_]\w*", code[k2 + 1:pe - 1]))
                k = pe
                continue
            if word in FUNC_SPECIFIERS or word.startswith("PPSCAN_"):
                k = w.end()
                continue
            break
        if body_start < 0:
            continue
        body_end = balance(code, body_start, "{", "}")
        if body_end < 0:
            continue
        out.append(FuncDef(name, src.line_of(m.start()), body_start,
                           body_end, requires))
    return out


def find_lock_sites(src: SourceFile, known: set[str]) -> list[LockSite]:
    sites: list[LockSite] = []
    code = src.code
    for m in LOCK_GUARD_DECL.finditer(code):
        close = balance(code, m.end() - 1, "(", ")")
        if close < 0:
            continue
        # Last identifier of the argument: `reg.registry_mu` -> registry_mu.
        idents = re.findall(r"[A-Za-z_]\w*", code[m.end():close - 1])
        if not idents:
            continue
        sites.append(LockSite(src.path, src.line_of(m.start()), m.start(),
                              enclosing_scope_end(code, m.start()),
                              idents[-1]))
    for m in LOCK_METHOD_CALL.finditer(code):
        recv = receiver_before(code, m.start())
        if recv and recv in known:
            sites.append(LockSite(src.path, src.line_of(m.start()), m.start(),
                                  enclosing_scope_end(code, m.start()), recv))
    sites.sort(key=lambda s: s.offset)
    return sites


def calls_in(code: str, begin: int, end: int, table: set[str],
             aliases: dict[str, str]) -> list[tuple[str, int]]:
    out: list[tuple[str, int]] = []
    for m in CALL_SITE.finditer(code, begin, end):
        name = aliases.get(m.group(1), m.group(1))
        if name in table:
            out.append((name, m.start(1)))
    return out


def run_lock_lint(cfg: LockConfig, sources: dict[str, SourceFile],
                  root: pathlib.Path, check_docs_table: bool) -> list[Finding]:
    findings: list[Finding] = []
    lock_sources = [s for s in sources.values()
                    if path_in(s.path, cfg.paths)
                    and not path_in(s.path, cfg.exclude_paths)]

    # -- declarations, raw primitives ------------------------------------
    decls: list[LockDecl] = []
    for src in lock_sources:
        for m in LOCK_DECL.finditer(src.code):
            line = src.line_of(m.start())
            decls.append(LockDecl(src.path, line, m.group(1),
                                  find_guards_annotation(src, line)))
        for m in RAW_LOCK.finditer(src.code):
            line = src.line_of(m.start())
            if waived(src, line, "lock-raw"):
                continue
            findings.append(Finding(
                src.path, line, "lock-raw",
                f"raw std::{m.group(1)} is invisible to -Wthread-safety; "
                "use CheckedMutex/CheckedLock (util/thread_safety.hpp)"))

    by_name: dict[str, LockDecl] = {}
    for d in decls:
        src = sources[d.path]
        prior = by_name.get(d.name)
        if prior is not None:
            if not waived(src, d.line, "lock-ambiguous"):
                findings.append(Finding(
                    d.path, d.line, "lock-ambiguous",
                    f"mutex '{d.name}' is also declared at "
                    f"{prior.path}:{prior.line}; the lock-order checker "
                    "resolves locks by name — rename one of them"))
            continue
        by_name[d.name] = d
        if not d.guarded and not waived(src, d.line, "lock-unannotated"):
            findings.append(Finding(
                d.path, d.line, "lock-unannotated",
                f"CheckedMutex '{d.name}' has no `// guards:` comment "
                "naming the state it protects"))
        if d.name not in cfg.locks and not waived(src, d.line,
                                                  "lock-undeclared"):
            findings.append(Finding(
                d.path, d.line, "lock-undeclared",
                f"CheckedMutex '{d.name}' is not registered in "
                "tools/lint/lock_protocol.toml ([[locks]]); every mutex "
                "needs a lock-order level"))
    for name in sorted(set(cfg.locks) - set(by_name)):
        findings.append(Finding(
            "tools/lint/lock_protocol.toml", 1, "lock-undeclared",
            f"config registers lock '{name}' but no CheckedMutex with that "
            "name exists in the scanned tree (renamed or deleted?)"))

    # -- functions, acquisitions, may-acquire closure --------------------
    known = set(by_name) | set(cfg.locks)
    funcs_by_file = {s.path: extract_functions(s) for s in lock_sources}
    sites_by_file = {s.path: find_lock_sites(s, known) for s in lock_sources}

    table: dict[str, dict] = {}
    for src in lock_sources:
        for fn in funcs_by_file[src.path]:
            table.setdefault(fn.name, {"direct": set(), "callees": set()})
    site_owner: dict[tuple[str, int], str] = {}
    for src in lock_sources:
        funcs = funcs_by_file[src.path]
        for site in sites_by_file[src.path]:
            inner = None
            for fn in funcs:
                if fn.body_start <= site.offset < fn.body_end and (
                        inner is None or fn.body_start > inner.body_start):
                    inner = fn
            if inner is not None:
                table[inner.name]["direct"].add(site.name)
                site_owner[(src.path, site.offset)] = inner.name
    names = set(table)
    for src in lock_sources:
        for fn in funcs_by_file[src.path]:
            for callee, _ in calls_in(src.code, fn.body_start, fn.body_end,
                                      names, cfg.call_aliases):
                if callee != fn.name:
                    table[fn.name]["callees"].add(callee)
    # Functions are merged by bare name across the tree (no overload or
    # class resolution) — a conservative over-approximation: it can invent
    # may-acquire edges, never lose them.
    may: dict[str, set[str]] = {f: set(e["direct"]) for f, e in table.items()}
    changed = True
    while changed:
        changed = False
        for f, e in table.items():
            before = len(may[f])
            for c in e["callees"]:
                may[f] |= may[c]
            changed = changed or len(may[f]) != before

    # -- ordered-acquisition edges ---------------------------------------
    # (outer, inner, path, line, how)
    edges: list[tuple[str, str, str, int, str]] = []
    for src in lock_sources:
        sites = sites_by_file[src.path]
        for i, a in enumerate(sites):
            for b in sites[i + 1:]:
                if b.offset >= a.scope_end:
                    break
                edges.append((a.name, b.name, src.path, b.line,
                              "nested acquisition"))
            for callee, off in calls_in(src.code, a.offset, a.scope_end,
                                        set(may), cfg.call_aliases):
                for inner_lock in may[callee]:
                    edges.append((a.name, inner_lock, src.path,
                                  src.line_of(off),
                                  f"call to {callee}() while held"))
        for fn in funcs_by_file[src.path]:
            reqs = sorted({t for t in fn.requires if t in known})
            if not reqs:
                continue
            for site in sites_by_file[src.path]:
                if fn.body_start <= site.offset < fn.body_end:
                    for r in reqs:
                        edges.append((r, site.name, src.path, site.line,
                                      f"inside {fn.name}() "
                                      f"[PPSCAN_REQUIRES({r})]"))
            for callee, off in calls_in(src.code, fn.body_start, fn.body_end,
                                        set(may), cfg.call_aliases):
                for inner_lock in may[callee]:
                    for r in reqs:
                        edges.append((r, inner_lock, src.path,
                                      src.line_of(off),
                                      f"call to {callee}() inside "
                                      f"{fn.name}() [PPSCAN_REQUIRES({r})]"))

    seen_edges: set[tuple[str, str, str, int]] = set()
    for outer, inner, path, line, how in edges:
        key = (outer, inner, path, line)
        if key in seen_edges:
            continue
        seen_edges.add(key)
        src = sources.get(path)
        if src is not None and waived(src, line, "lock-order"):
            continue
        lo = cfg.locks.get(outer)
        li = cfg.locks.get(inner)
        if lo is None or li is None:
            continue  # lock-undeclared already reported the missing level
        if outer == inner:
            findings.append(Finding(
                path, line, "lock-order",
                f"'{inner}' acquired while already held ({how}); "
                "CheckedMutex is not recursive — this self-deadlocks"))
        elif lo.level >= li.level:
            findings.append(Finding(
                path, line, "lock-order",
                f"lock-order inversion: '{inner}' (level {li.level}) "
                f"acquired while '{outer}' (level {lo.level}) is held "
                f"({how}); tools/lint/lock_protocol.toml requires strictly "
                "increasing levels"))

    # -- hot paths --------------------------------------------------------
    for src in lock_sources:
        if not path_in(src.path, cfg.hotpath_paths):
            continue
        for m in HOTPATH_LOCK.finditer(src.code):
            line = src.line_of(m.start())
            if waived(src, line, "lock-hotpath"):
                continue
            findings.append(Finding(
                src.path, line, "lock-hotpath",
                "mutex use in a lock-free hot path; the setops kernels and "
                "the executor claim path must stay blocking-free — move "
                "the lock to the calling phase body"))
    for spec in cfg.hotpath_functions:
        src = sources.get(spec["file"])
        if src is None:
            findings.append(Finding(
                spec["file"], 1, "lock-hotpath",
                "file listed in [[hotpath_functions]] was not scanned "
                "(moved or deleted?)"))
            continue
        banned = set(spec.get("functions", []))
        present = {f.name for f in funcs_by_file.get(spec["file"], [])}
        for want in sorted(banned - present):
            findings.append(Finding(
                spec["file"], 1, "lock-hotpath",
                f"function '{want}' listed in [[hotpath_functions]] not "
                "found; update tools/lint/lock_protocol.toml if it moved"))
        for site in sites_by_file.get(spec["file"], []):
            owner = site_owner.get((site.path, site.offset))
            if owner in banned and not waived(src, site.line, "lock-hotpath"):
                findings.append(Finding(
                    site.path, site.line, "lock-hotpath",
                    f"'{site.name}' acquired inside {owner}(), which is on "
                    "the lock-free executor claim path "
                    "([[hotpath_functions]]); hand the work to the phase "
                    "body instead"))

    # -- docs table -------------------------------------------------------
    if check_docs_table and cfg.docs_file:
        docs_path = root / cfg.docs_file
        if not docs_path.is_file():
            findings.append(Finding(cfg.docs_file, 1, "lock-docs",
                                    "lock docs file missing"))
        else:
            docs = docs_path.read_text(encoding="utf-8")
            if not re.search(r"(?im)^#+\s+mutexes and guards\b", docs):
                findings.append(Finding(
                    cfg.docs_file, 1, "lock-docs",
                    'missing the "Mutexes and guards" section the lock '
                    "table lives in"))
            for name in sorted(set(by_name) | set(cfg.locks)):
                if f"`{name}`" not in docs:
                    d = by_name.get(name)
                    findings.append(Finding(
                        d.path if d else cfg.docs_file,
                        d.line if d else 1, "lock-docs",
                        f"mutex `{name}` is missing from the Mutexes-and-"
                        f"guards table in {cfg.docs_file}"))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h", ".cxx"}


def path_in(path: str, prefixes: list[str]) -> bool:
    for p in prefixes:
        base = p.rstrip("/")
        if path == base or path.startswith(base + "/"):
            return True
    return False


def collect_files(root: pathlib.Path, cfg: Config,
                  lock_cfg: LockConfig | None = None) -> list[pathlib.Path]:
    scopes = set(cfg.protocol_paths) | set(cfg.narrowing_paths) | \
        set(cfg.trace_hotpath_paths)
    for rule in cfg.banned:
        scopes |= set(rule.get("paths", ["src/"]))
    if lock_cfg is not None:
        scopes |= set(lock_cfg.paths) | set(lock_cfg.hotpath_paths)
    files: list[pathlib.Path] = []
    seen: set[pathlib.Path] = set()
    for scope in sorted(scopes):
        base = root / scope
        if not base.exists():
            continue
        candidates = [base] if base.is_file() else sorted(base.rglob("*"))
        for p in candidates:
            if p.suffix not in SOURCE_SUFFIXES or p in seen:
                continue
            rel = str(p.relative_to(root))
            if path_in(rel, cfg.exclude_paths):
                continue
            seen.add(p)
            files.append(p)
    return files


def run_lint(cfg: Config, root: pathlib.Path,
             check_docs_table: bool = True,
             lock_cfg: LockConfig | None = None) -> list[Finding]:
    sources: dict[str, SourceFile] = {}
    for path in collect_files(root, cfg, lock_cfg):
        src = load_source(path, root)
        sources[src.path] = src

    findings: list[Finding] = []
    decls: list[AtomicDecl] = []
    for src in sources.values():
        if path_in(src.path, cfg.protocol_paths):
            decls.extend(find_decls(src))

    registry: dict[str, AtomicDecl] = {}
    for d in decls:
        src = sources[d.path]
        if d.discipline is None:
            if not waived(src, d.line, "protocol-missing"):
                findings.append(Finding(
                    d.path, d.line, "protocol-missing",
                    f"atomic member '{d.name}' has no `// protocol:` "
                    "annotation naming its ordering discipline"))
            continue
        if d.discipline not in cfg.disciplines:
            findings.append(Finding(
                d.path, d.line, "protocol-unknown",
                f"'{d.name}' names discipline '{d.discipline}', which "
                "atomics_protocol.toml does not define"))
            continue
        prior = registry.get(d.name)
        if prior and prior.discipline != d.discipline:
            findings.append(Finding(
                d.path, d.line, "protocol-ambiguous",
                f"'{d.name}' declared with discipline '{d.discipline}' here "
                f"but '{prior.discipline}' at {prior.path}:{prior.line}; "
                "call sites resolve by receiver name — rename one member"))
            continue
        registry[d.name] = d

    for src in sources.values():
        if path_in(src.path, cfg.protocol_paths):
            findings.extend(check_call_sites(src, registry, cfg))
        findings.extend(check_banned(src, cfg))
        findings.extend(check_narrowing(src, cfg))
        findings.extend(check_trace_hotpath(src, cfg))
    findings.extend(check_required_asserts(sources, cfg))
    if check_docs_table:
        findings.extend(check_docs(decls, cfg, root))
    if lock_cfg is not None:
        findings.extend(run_lock_lint(lock_cfg, sources, root,
                                      check_docs_table))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def verify_with_libclang(cfg: Config, root: pathlib.Path) -> int:
    """Optional cross-validation: every std::atomic field libclang sees must
    be in the tokenizer's declaration registry. Requires the clang python
    bindings; returns the number of declarations the tokenizer missed."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        print("ppscan_lint: libclang python bindings unavailable; "
              "skipping AST cross-validation (tokenizer engine is "
              "authoritative)", file=sys.stderr)
        return 0
    index = cindex.Index.create()
    missed = 0
    tokenizer_decls = set()
    for path in collect_files(root, cfg):
        src = load_source(path, root)
        if path_in(src.path, cfg.protocol_paths):
            for d in find_decls(src):
                tokenizer_decls.add((d.path, d.name))
    for path in collect_files(root, cfg):
        rel = str(path.relative_to(root))
        if not path_in(rel, cfg.protocol_paths) or path.suffix != ".hpp":
            continue
        tu = index.parse(str(path), args=["-std=c++20", f"-I{root}/src"])
        for cur in tu.cursor.walk_preorder():
            if cur.kind == cindex.CursorKind.FIELD_DECL and \
                    "atomic" in cur.type.spelling and \
                    cur.location.file and \
                    str(cur.location.file) == str(path):
                if (rel, cur.spelling) not in tokenizer_decls:
                    print(f"{rel}:{cur.location.line}: [libclang-verify] "
                          f"field '{cur.spelling}' missed by tokenizer",
                          file=sys.stderr)
                    missed += 1
    return missed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--config", default=None,
                        help="config TOML (default: tools/lint/"
                             "atomics_protocol.toml under --root)")
    parser.add_argument("--lock-config", default=None,
                        help="lock-discipline config TOML (default: tools/"
                             "lint/lock_protocol.toml under --root)")
    parser.add_argument("--no-docs-check", action="store_true",
                        help="skip the protocol-docs and lock-docs "
                             "completeness rules")
    parser.add_argument("--verify-with-libclang", action="store_true",
                        help="cross-validate the declaration scan with the "
                             "optional clang python bindings")
    args = parser.parse_args(argv)

    root = pathlib.Path(args.root).resolve()
    config_path = pathlib.Path(args.config) if args.config else \
        root / "tools" / "lint" / "atomics_protocol.toml"
    if not config_path.is_file():
        print(f"ppscan_lint: config not found: {config_path}", file=sys.stderr)
        return 2
    cfg = load_config(config_path)
    lock_config_path = pathlib.Path(args.lock_config) if args.lock_config \
        else root / "tools" / "lint" / "lock_protocol.toml"
    if not lock_config_path.is_file():
        print(f"ppscan_lint: lock config not found: {lock_config_path}",
              file=sys.stderr)
        return 2
    lock_cfg = load_lock_config(lock_config_path)

    findings = run_lint(cfg, root, check_docs_table=not args.no_docs_check,
                        lock_cfg=lock_cfg)
    for f in findings:
        print(f)
    if args.verify_with_libclang:
        if verify_with_libclang(cfg, root) > 0:
            return 1
    if findings:
        print(f"ppscan_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("ppscan_lint: clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
