#!/usr/bin/env bash
# clang-format gate. By default checks files changed relative to a base ref
# (CI passes the PR base SHA); --all checks the whole tree.
#
# Usage: check_format.sh [--all | --base <git-ref>] [clang-format-binary]
#
# Exit codes: 0 clean, 1 needs formatting, 2 usage error,
#             77 clang-format unavailable (ctest SKIP_RETURN_CODE).
set -u -o pipefail

MODE="all"
BASE=""
FMT="${CLANG_FORMAT:-clang-format}"
while [ $# -gt 0 ]; do
  case "$1" in
    --all) MODE="all"; shift ;;
    --base) MODE="base"; BASE="${2:?--base needs a ref}"; shift 2 ;;
    *) FMT="$1"; shift ;;
  esac
done

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
cd "$ROOT" || exit 2

if ! command -v "$FMT" >/dev/null 2>&1; then
  echo "check_format: '$FMT' not found; skipping (install clang-format or" \
       "set CLANG_FORMAT; CI runs the pinned version)" >&2
  exit 77
fi

# A shallow CI checkout (fetch-depth 1) may not contain the base ref at
# all, and `git diff` against a missing commit exits non-zero — which the
# mapfile would silently swallow as "no files changed", passing the gate
# without checking anything. Detect that up front and fall back to the
# full-tree check instead.
if [ "$MODE" = "base" ]; then
  if ! git rev-parse --quiet --verify "$BASE^{commit}" >/dev/null 2>&1; then
    SHALLOW="$(git rev-parse --is-shallow-repository 2>/dev/null || echo unknown)"
    echo "check_format: base ref '$BASE' not present in this checkout" \
         "(shallow: $SHALLOW); falling back to the full-tree check" >&2
    MODE="all"
  fi
fi

if [ "$MODE" = "base" ]; then
  mapfile -t FILES < <(git diff --name-only --diff-filter=ACMR "$BASE" -- \
                         '*.cpp' '*.hpp' | grep -E '^(src|tools|bench|tests)/')
else
  mapfile -t FILES < <(git ls-files '*.cpp' '*.hpp' |
                         grep -E '^(src|tools|bench|tests)/' |
                         grep -v '^tools/lint/testdata/')
fi

if [ "${#FILES[@]}" -eq 0 ]; then
  echo "check_format: no files to check"
  exit 0
fi

echo "check_format: $("$FMT" --version) over ${#FILES[@]} files"

STATUS=0
for f in "${FILES[@]}"; do
  if ! "$FMT" --dry-run --Werror --style=file "$f" 2>/dev/null; then
    echo "$f:1: [format] differs from .clang-format (run: $FMT -i $f)"
    STATUS=1
  fi
done

if [ "$STATUS" -eq 0 ]; then
  echo "check_format: clean"
fi
exit "$STATUS"
