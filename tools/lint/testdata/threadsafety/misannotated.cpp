// Deliberately violates its own thread-safety annotations. Never built by
// CMake; tools/lint/check_thread_safety.sh compiles it with
// -Wthread-safety and FAILS the gate if clang stays silent — guarding the
// CI step against quietly losing the warning flag (wrong -I path, macro
// compiled out, warning group renamed, ...).
//
// Expected diagnostics, all in the -Wthread-safety group:
//   - read_unlocked / bump_unlocked touch counter_ without holding mu_
//   - leaky_lock lets a CheckedLock-free mutex acquisition escape

#include "util/thread_safety.hpp"

namespace ppscan {
namespace lint_selfcheck {

class Misannotated {
 public:
  int read_unlocked() const { return counter_; }

  void bump_unlocked() { ++counter_; }

  void leaky_lock() {
    mu_.lock();  // never released: -Wthread-safety expected-at-end error
  }

 private:
  mutable CheckedMutex mu_;
  int counter_ PPSCAN_GUARDED_BY(mu_) = 0;
};

// Anchor the class so the TU is not empty even if the analysis changes.
int touch(const Misannotated& m) { return m.read_unlocked(); }

}  // namespace lint_selfcheck
}  // namespace ppscan
