// Known-bad: banned APIs in phase code -> banned-api (rand, time-as-seed,
// naked new[]).
#include <cstdlib>
#include <ctime>

namespace ppscan {

int roll_unseeded() { return rand() % 6; }

unsigned clock_seed() { return static_cast<unsigned>(time(nullptr)); }

int* scratch_buffer(int n) { return new int[static_cast<unsigned>(n)]; }

}  // namespace ppscan
