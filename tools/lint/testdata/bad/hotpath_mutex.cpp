// Known-bad hot-path locking. The test lists this file as a hotpath
// directory (every mutex token fires) AND lists claim_fast in
// [[hotpath_functions]] (its direct acquisition fires separately).

#include "util/thread_safety.hpp"

namespace ppscan_lint_testdata {

// guards: hot_state_ — must not exist in a hot path at all.
CheckedMutex hot_mu_;
int hot_state_ PPSCAN_GUARDED_BY(hot_mu_) = 0;

int claim_fast() {
  CheckedLock lock(hot_mu_);
  return ++hot_state_;
}

}  // namespace ppscan_lint_testdata
