// trace-hotpath: a PPSCAN_TRACE_* (or PPSCAN_FAULT_*) macro inside a
// trace-free hot path (the real scopes are configured under
// [trace].hotpath_paths).
#include <cstdint>

namespace ppscan {

struct Collector;
#define PPSCAN_TRACE_MASTER_EVENT(tc, kind, name, arg) \
  do { (void)sizeof(tc); } while (0)
#define PPSCAN_FAULT_POINT(site) ((void)0)

std::uint32_t intersect_count(const std::uint32_t* a, std::uint32_t na,
                              const std::uint32_t* b, std::uint32_t nb,
                              Collector* tc) {
  std::uint32_t count = 0;
  std::uint32_t i = 0, j = 0;
  while (i < na && j < nb) {
    PPSCAN_TRACE_MASTER_EVENT(tc, KernelDispatch, "merge", 0);  // BAD
    PPSCAN_FAULT_POINT("setops.merge");  // BAD
    const std::uint32_t x = a[i], y = b[j];
    count += (x == y);
    i += (x <= y);
    j += (y <= x);
  }
  return count;
}

}  // namespace ppscan
