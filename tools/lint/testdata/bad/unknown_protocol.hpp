// Known-bad: annotation names a discipline the config does not define
// -> protocol-unknown.
#pragma once

#include <atomic>

namespace ppscan {

class Mislabeled {
 private:
  std::atomic<int> state_{0};  // protocol: totally-ordered-magic
};

}  // namespace ppscan
