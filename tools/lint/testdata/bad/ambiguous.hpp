// Known-bad: two members share a name but declare different disciplines;
// call-site checking resolves by receiver name, so this is ambiguous
// -> protocol-ambiguous.
#pragma once

#include <atomic>

namespace ppscan {

class WriterSide {
 private:
  std::atomic<int> shared_{0};  // protocol: relaxed-counter
};

class ReaderSide {
 private:
  std::atomic<int> shared_{0};  // protocol: release-acquire
};

}  // namespace ppscan
