// Known-bad: atomic member with no protocol annotation -> protocol-missing.
#pragma once

#include <atomic>
#include <cstdint>

namespace ppscan {

class Unannotated {
 private:
  std::atomic<std::uint64_t> counter_{0};
};

}  // namespace ppscan
