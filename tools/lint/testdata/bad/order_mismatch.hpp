// Known-bad: call-site memory orders violating the declared discipline
// -> protocol-order (three distinct sites: default seq_cst load on a
// relaxed counter, release fetch_add on a relaxed counter, and a CAS
// failure order stronger than the discipline allows).
#pragma once

#include <atomic>
#include <cstdint>

namespace ppscan {

class WrongOrders {
 public:
  void bump() { hits_.fetch_add(1, std::memory_order_release); }
  [[nodiscard]] std::uint64_t hits() const { return hits_.load(); }

  bool claim() {
    bool expected = false;
    return flag_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel,
                                         std::memory_order_seq_cst);
  }

 private:
  std::atomic<std::uint64_t> hits_{0};  // protocol: relaxed-counter
  std::atomic<bool> flag_{false};       // protocol: cancel-token
};

}  // namespace ppscan
