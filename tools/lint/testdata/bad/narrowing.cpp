// Known-bad: unchecked VertexId narrowing at a graph boundary
// -> vertexid-narrowing.
#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace ppscan {

VertexId count_rows(const std::vector<int>& offsets) {
  return static_cast<VertexId>(offsets.size() - 1);
}

}  // namespace ppscan
