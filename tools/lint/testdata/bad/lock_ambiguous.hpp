#pragma once
// Known-bad duplicate lock name: the order checker resolves locks by name
// repo-wide, so two CheckedMutex members called dup_mu_ must raise
// lock-ambiguous at the second declaration.

#include "util/thread_safety.hpp"

namespace ppscan_lint_testdata {

struct FirstOwner {
  // guards: a_ — the first claimant of the name.
  CheckedMutex dup_mu_;
  int a_ PPSCAN_GUARDED_BY(dup_mu_) = 0;
};

struct SecondOwner {
  // guards: b_ — same name, different lock: ambiguous.
  CheckedMutex dup_mu_;
  int b_ PPSCAN_GUARDED_BY(dup_mu_) = 0;
};

}  // namespace ppscan_lint_testdata
