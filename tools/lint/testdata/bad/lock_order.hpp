#pragma once
// Known-bad lock ordering. The test registers bad_outer_mu at level 10 and
// bad_inner_mu at level 20; the lock-order rule must fire on all three
// shapes below — lexical inversion, inversion through the may-acquire call
// closure, and a self-deadlock on the non-recursive CheckedMutex.

#include "util/thread_safety.hpp"

namespace ppscan_lint_testdata {

// guards: ordered_count_ — the outer (level 10) half of the pair.
inline CheckedMutex bad_outer_mu;
// guards: inverted_count_ — the inner (level 20) half of the pair.
inline CheckedMutex bad_inner_mu;

inline void helper_locks_outer() {
  CheckedLock lock(bad_outer_mu);
}

inline void inverted_lexically() {
  CheckedLock inner(bad_inner_mu);
  CheckedLock outer(bad_outer_mu);  // level 10 taken under level 20
}

inline void inverted_through_call() {
  CheckedLock inner(bad_inner_mu);
  helper_locks_outer();  // callee takes level 10 under level 20
}

inline void self_deadlock() {
  CheckedLock first(bad_outer_mu);
  CheckedLock again(bad_outer_mu);  // CheckedMutex is not recursive
}

}  // namespace ppscan_lint_testdata
