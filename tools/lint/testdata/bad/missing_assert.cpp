// Known-bad: a similarity-reuse path whose required order-constraint assert
// is absent -> order-assert (driven by a [[required_asserts]] entry the
// self-test runner points at this file).
#include "util/types.hpp"

namespace ppscan {

void mirror_arc(VertexId u, VertexId v, bool ordered) {
  // Missing: assert(!ordered || u < v);
  (void)u;
  (void)v;
  (void)ordered;
}

}  // namespace ppscan
