#pragma once
// Known-bad blocking primitives: a raw std::mutex and std::lock_guard
// (invisible to -Wthread-safety -> lock-raw), a CheckedMutex with no
// `// guards:` comment (lock-unannotated), and one that is annotated but
// not registered in the lock table (lock-undeclared).

#include <mutex>

#include "util/thread_safety.hpp"

namespace ppscan_lint_testdata {

struct RawUser {
  void touch() {
    std::lock_guard<std::mutex> hold(raw_mu_);
    ++touched_;
  }

  std::mutex raw_mu_;
  int touched_ = 0;

  CheckedMutex unannotated_mu_;

  // guards: nothing yet — deliberately absent from the lock table.
  CheckedMutex unregistered_mu_;
};

}  // namespace ppscan_lint_testdata
