// Known-good counterpart to bad/missing_assert.cpp: the order-constraint
// assertion is present, so the order-assert rule stays silent.
#include <cassert>

#include "util/types.hpp"

namespace ppscan {

void mirror_arc(VertexId u, VertexId v, bool ordered) {
  assert(!ordered || u < v);
  (void)u;
  (void)v;
}

}  // namespace ppscan
