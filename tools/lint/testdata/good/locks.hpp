#pragma once
// Known-good lock discipline: every CheckedMutex carries a `// guards:`
// comment, is registered in the test's lock table, and every acquisition
// edge runs strictly downhill (outer level 10 -> inner level 20),
// including one derived through PPSCAN_REQUIRES. The lock self-test pins
// this file to zero findings.

#include "util/thread_safety.hpp"

namespace ppscan_lint_testdata {

class Coordinator {
 public:
  void drain();

 private:
  void spill_locked() PPSCAN_REQUIRES(good_outer_mu);

  // guards: staged_ — batches parked between refill and drain.
  CheckedMutex good_outer_mu;
  int staged_ PPSCAN_GUARDED_BY(good_outer_mu) = 0;

  // guards: spilled_ — overflow counter; leaf lock, never holds another.
  CheckedMutex good_inner_mu;
  int spilled_ PPSCAN_GUARDED_BY(good_inner_mu) = 0;
};

inline void Coordinator::drain() {
  CheckedLock outer(good_outer_mu);
  staged_ = 0;
  CheckedLock inner(good_inner_mu);  // 10 -> 20: legal nesting
  spilled_ += 1;
}

inline void Coordinator::spill_locked() PPSCAN_REQUIRES(good_outer_mu) {
  staged_ -= 1;
  CheckedLock inner(good_inner_mu);  // REQUIRES-derived 10 -> 20: legal
  spilled_ += 1;
}

}  // namespace ppscan_lint_testdata
