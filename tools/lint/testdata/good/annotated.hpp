// Known-good: every rule should stay silent on this file.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace ppscan {

class GoodCounters {
 public:
  void bump() { hits_.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }

  void publish(int v) {
    payload_ = v;
    ready_.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool consume(int& out) const {
    if (!ready_.load(std::memory_order_acquire)) return false;
    out = payload_;
    return true;
  }

 private:
  std::atomic<std::uint64_t> hits_{0};  // protocol: relaxed-counter
  // protocol: release-acquire — payload_ is published before the flag flips.
  std::atomic<bool> ready_{false};
  int payload_ = 0;
};

inline VertexId count_vertices(const std::vector<int>& xs) {
  return checked_vertex_cast(xs.size());
}

}  // namespace ppscan
