// A trace macro in a hot-path scope is allowed only with an explicit
// per-site waiver; this file keeps the waiver path itself under test.
#include <cstdint>

namespace ppscan {

struct Collector;
#define PPSCAN_TRACE_MASTER_EVENT(tc, kind, name, arg) \
  do { (void)sizeof(tc); } while (0)

void dispatch_marker(Collector* tc) {
  // Outside the per-element loop: one event per kernel call, not per item.
  PPSCAN_TRACE_MASTER_EVENT(tc, KernelDispatch, "pivot", 0);  // lint-ok: trace-hotpath
}

}  // namespace ppscan
