#!/usr/bin/env python3
"""Self-tests for ppscan_lint: every rule must fire on its known-bad snippet
and stay silent on the known-good set.

Runs the real engine with the real discipline definitions from
atomics_protocol.toml, re-scoped onto tools/lint/testdata. Exit 0 iff all
tests pass, so `ctest -L lint` can gate on it directly.
"""

from __future__ import annotations

import dataclasses
import importlib.util
import pathlib
import sys
import unittest

LINT_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = LINT_DIR.parent.parent
GOOD = "tools/lint/testdata/good"
BAD = "tools/lint/testdata/bad"

spec = importlib.util.spec_from_file_location(
    "ppscan_lint", LINT_DIR / "ppscan_lint.py")
ppscan_lint = importlib.util.module_from_spec(spec)
sys.modules["ppscan_lint"] = ppscan_lint
spec.loader.exec_module(ppscan_lint)


def scoped_config(paths, *, docs_file=None, required_asserts=()):
    """The shipped config with every rule's scope rewritten to `paths`."""
    cfg = ppscan_lint.load_config(LINT_DIR / "atomics_protocol.toml")
    banned = [dict(rule, paths=list(paths)) for rule in cfg.banned]
    return dataclasses.replace(
        cfg,
        protocol_paths=list(paths),
        narrowing_paths=list(paths),
        exclude_paths=[],
        banned=banned,
        docs_file=docs_file,
        required_asserts=list(required_asserts),
        trace_hotpath_paths=list(paths),
    )


def lint(paths, **kwargs):
    check_docs = kwargs.get("docs_file") is not None
    cfg = scoped_config(paths, **kwargs)
    return ppscan_lint.run_lint(cfg, REPO_ROOT, check_docs_table=check_docs)


def rules_in(findings, path_suffix):
    return sorted({f.rule for f in findings if f.path.endswith(path_suffix)})


class KnownGoodTest(unittest.TestCase):
    def test_good_tree_is_silent(self):
        findings = lint([GOOD], docs_file=f"{GOOD}/docs_table.md",
                        required_asserts=[{
                            "file": f"{GOOD}/has_assert.cpp",
                            "function": "mirror_arc",
                            "pattern":
                                r"assert\(\s*!ordered\s*\|\|\s*u\s*<\s*v\s*\)",
                            "reason": "order-constraint assert required",
                        }])
        self.assertEqual([], [str(f) for f in findings])


class KnownBadTest(unittest.TestCase):
    def setUp(self):
        self.findings = lint([BAD])

    def test_protocol_missing_fires(self):
        self.assertIn("protocol-missing",
                      rules_in(self.findings, "missing_annotation.hpp"))

    def test_protocol_unknown_fires(self):
        self.assertIn("protocol-unknown",
                      rules_in(self.findings, "unknown_protocol.hpp"))

    def test_protocol_ambiguous_fires(self):
        self.assertIn("protocol-ambiguous",
                      rules_in(self.findings, "ambiguous.hpp"))

    def test_protocol_order_fires_per_site(self):
        hits = [f for f in self.findings
                if f.path.endswith("order_mismatch.hpp")
                and f.rule == "protocol-order"]
        messages = "\n".join(f.message for f in hits)
        # Three distinct violations: release rmw, defaulted seq_cst load,
        # and an over-strong CAS failure order.
        self.assertGreaterEqual(len(hits), 3, messages)
        self.assertIn("fetch_add", messages)
        self.assertIn("load", messages)
        self.assertIn("cas-failure", messages)

    def test_banned_api_fires_for_each_api(self):
        hits = [f for f in self.findings
                if f.path.endswith("banned_api.cpp") and f.rule == "banned-api"]
        self.assertGreaterEqual(len(hits), 3,
                                "\n".join(str(f) for f in hits))

    def test_vertexid_narrowing_fires(self):
        self.assertIn("vertexid-narrowing",
                      rules_in(self.findings, "narrowing.cpp"))

    def test_trace_hotpath_fires(self):
        # The fixture plants one PPSCAN_TRACE_* use and one
        # PPSCAN_FAULT_POINT use; both must fire (macro *definitions* in
        # the same file must not).
        hits = [f for f in self.findings
                if f.path.endswith("trace_hotpath.cpp")
                and f.rule == "trace-hotpath"]
        self.assertEqual(len(hits), 2,
                         "\n".join(str(f) for f in hits))

    def test_order_assert_fires_when_missing(self):
        findings = lint([BAD], required_asserts=[{
            "file": f"{BAD}/missing_assert.cpp",
            "function": "mirror_arc",
            "pattern": r"assert\(\s*!ordered\s*\|\|\s*u\s*<\s*v\s*\)",
            "reason": "order-constraint assert required",
        }])
        self.assertIn("order-assert",
                      rules_in(findings, "missing_assert.cpp"))

    def test_protocol_docs_fires_when_member_undocumented(self):
        # Point the docs check at a table that lacks the bad tree's members.
        findings = lint([BAD], docs_file=f"{GOOD}/docs_table.md")
        self.assertIn("protocol-docs", {f.rule for f in findings})


class WaiverTest(unittest.TestCase):
    def test_lint_ok_waives_a_single_site(self):
        waived = REPO_ROOT / GOOD / "_waived_tmp.hpp"
        waived.write_text(
            "#pragma once\n#include <atomic>\n"
            "namespace ppscan {\nstruct W {\n"
            "  std::atomic<int> x_{0};  // lint-ok: protocol-missing\n"
            "};\n}  // namespace ppscan\n",
            encoding="utf-8")
        try:
            findings = lint([GOOD])
            self.assertEqual([], rules_in(findings, "_waived_tmp.hpp"))
        finally:
            waived.unlink()


class RepoTreeTest(unittest.TestCase):
    def test_shipped_tree_is_clean(self):
        cfg = ppscan_lint.load_config(LINT_DIR / "atomics_protocol.toml")
        findings = ppscan_lint.run_lint(cfg, REPO_ROOT, check_docs_table=True)
        self.assertEqual([], [str(f) for f in findings])


if __name__ == "__main__":
    sys.exit(unittest.main(verbosity=2))
