#!/usr/bin/env python3
"""Self-tests for ppscan_lint: every rule must fire on its known-bad snippet
and stay silent on the known-good set.

Runs the real engine with the real discipline definitions from
atomics_protocol.toml, re-scoped onto tools/lint/testdata. Exit 0 iff all
tests pass, so `ctest -L lint` can gate on it directly.
"""

from __future__ import annotations

import dataclasses
import importlib.util
import pathlib
import re
import sys
import unittest

LINT_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = LINT_DIR.parent.parent
GOOD = "tools/lint/testdata/good"
BAD = "tools/lint/testdata/bad"

spec = importlib.util.spec_from_file_location(
    "ppscan_lint", LINT_DIR / "ppscan_lint.py")
ppscan_lint = importlib.util.module_from_spec(spec)
sys.modules["ppscan_lint"] = ppscan_lint
spec.loader.exec_module(ppscan_lint)


def scoped_config(paths, *, docs_file=None, required_asserts=()):
    """The shipped config with every rule's scope rewritten to `paths`."""
    cfg = ppscan_lint.load_config(LINT_DIR / "atomics_protocol.toml")
    banned = [dict(rule, paths=list(paths)) for rule in cfg.banned]
    return dataclasses.replace(
        cfg,
        protocol_paths=list(paths),
        narrowing_paths=list(paths),
        exclude_paths=[],
        banned=banned,
        docs_file=docs_file,
        required_asserts=list(required_asserts),
        trace_hotpath_paths=list(paths),
    )


def lint(paths, **kwargs):
    check_docs = kwargs.get("docs_file") is not None
    cfg = scoped_config(paths, **kwargs)
    return ppscan_lint.run_lint(cfg, REPO_ROOT, check_docs_table=check_docs)


def rules_in(findings, path_suffix):
    return sorted({f.rule for f in findings if f.path.endswith(path_suffix)})


class KnownGoodTest(unittest.TestCase):
    def test_good_tree_is_silent(self):
        findings = lint([GOOD], docs_file=f"{GOOD}/docs_table.md",
                        required_asserts=[{
                            "file": f"{GOOD}/has_assert.cpp",
                            "function": "mirror_arc",
                            "pattern":
                                r"assert\(\s*!ordered\s*\|\|\s*u\s*<\s*v\s*\)",
                            "reason": "order-constraint assert required",
                        }])
        self.assertEqual([], [str(f) for f in findings])


class KnownBadTest(unittest.TestCase):
    def setUp(self):
        self.findings = lint([BAD])

    def test_protocol_missing_fires(self):
        self.assertIn("protocol-missing",
                      rules_in(self.findings, "missing_annotation.hpp"))

    def test_protocol_unknown_fires(self):
        self.assertIn("protocol-unknown",
                      rules_in(self.findings, "unknown_protocol.hpp"))

    def test_protocol_ambiguous_fires(self):
        self.assertIn("protocol-ambiguous",
                      rules_in(self.findings, "ambiguous.hpp"))

    def test_protocol_order_fires_per_site(self):
        hits = [f for f in self.findings
                if f.path.endswith("order_mismatch.hpp")
                and f.rule == "protocol-order"]
        messages = "\n".join(f.message for f in hits)
        # Three distinct violations: release rmw, defaulted seq_cst load,
        # and an over-strong CAS failure order.
        self.assertGreaterEqual(len(hits), 3, messages)
        self.assertIn("fetch_add", messages)
        self.assertIn("load", messages)
        self.assertIn("cas-failure", messages)

    def test_banned_api_fires_for_each_api(self):
        hits = [f for f in self.findings
                if f.path.endswith("banned_api.cpp") and f.rule == "banned-api"]
        self.assertGreaterEqual(len(hits), 3,
                                "\n".join(str(f) for f in hits))

    def test_vertexid_narrowing_fires(self):
        self.assertIn("vertexid-narrowing",
                      rules_in(self.findings, "narrowing.cpp"))

    def test_trace_hotpath_fires(self):
        # The fixture plants one PPSCAN_TRACE_* use and one
        # PPSCAN_FAULT_POINT use; both must fire (macro *definitions* in
        # the same file must not).
        hits = [f for f in self.findings
                if f.path.endswith("trace_hotpath.cpp")
                and f.rule == "trace-hotpath"]
        self.assertEqual(len(hits), 2,
                         "\n".join(str(f) for f in hits))

    def test_order_assert_fires_when_missing(self):
        findings = lint([BAD], required_asserts=[{
            "file": f"{BAD}/missing_assert.cpp",
            "function": "mirror_arc",
            "pattern": r"assert\(\s*!ordered\s*\|\|\s*u\s*<\s*v\s*\)",
            "reason": "order-constraint assert required",
        }])
        self.assertIn("order-assert",
                      rules_in(findings, "missing_assert.cpp"))

    def test_protocol_docs_fires_when_member_undocumented(self):
        # Point the docs check at a table that lacks the bad tree's members.
        findings = lint([BAD], docs_file=f"{GOOD}/docs_table.md")
        self.assertIn("protocol-docs", {f.rule for f in findings})


class WaiverTest(unittest.TestCase):
    def test_lint_ok_waives_a_single_site(self):
        waived = REPO_ROOT / GOOD / "_waived_tmp.hpp"
        waived.write_text(
            "#pragma once\n#include <atomic>\n"
            "namespace ppscan {\nstruct W {\n"
            "  std::atomic<int> x_{0};  // lint-ok: protocol-missing\n"
            "};\n}  // namespace ppscan\n",
            encoding="utf-8")
        try:
            findings = lint([GOOD])
            self.assertEqual([], rules_in(findings, "_waived_tmp.hpp"))
        finally:
            waived.unlink()


def lock_sources_for(paths):
    sources = {}
    for rel in paths:
        base = REPO_ROOT / rel
        files = [base] if base.is_file() else sorted(base.rglob("*"))
        for p in files:
            if p.suffix in ppscan_lint.SOURCE_SUFFIXES:
                src = ppscan_lint.load_source(p, REPO_ROOT)
                sources[src.path] = src
    return sources


def lock_lint(paths, locks, *, docs_file=None, hotpath_paths=(),
              hotpath_functions=()):
    """Run only the lock pass, with a synthetic lock table."""
    cfg = ppscan_lint.LockConfig(
        paths=list(paths), exclude_paths=[], docs_file=docs_file,
        locks={name: ppscan_lint.LockSpec(name, level, "")
               for name, level in locks.items()},
        hotpath_paths=list(hotpath_paths),
        hotpath_functions=list(hotpath_functions),
        call_aliases={})
    return ppscan_lint.run_lock_lint(cfg, lock_sources_for(paths), REPO_ROOT,
                                     check_docs_table=docs_file is not None)


BAD_LOCKS = {"bad_outer_mu": 10, "bad_inner_mu": 20, "dup_mu_": 30,
             "unannotated_mu_": 30, "hot_mu_": 40}


class LockKnownGoodTest(unittest.TestCase):
    def test_good_locks_are_silent(self):
        findings = lock_lint([f"{GOOD}/locks.hpp"],
                             {"good_outer_mu": 10, "good_inner_mu": 20},
                             docs_file=f"{GOOD}/lock_docs.md")
        self.assertEqual([], [str(f) for f in findings])


class LockKnownBadTest(unittest.TestCase):
    def setUp(self):
        self.findings = lock_lint([BAD], BAD_LOCKS)

    def test_lock_raw_fires(self):
        hits = [f for f in self.findings
                if f.path.endswith("raw_mutex.hpp") and f.rule == "lock-raw"]
        # The std::mutex member plus the lock_guard line (which names both
        # std::lock_guard and std::mutex).
        self.assertGreaterEqual(len(hits), 3,
                                "\n".join(str(f) for f in hits))

    def test_lock_unannotated_fires(self):
        hits = [f for f in self.findings if f.rule == "lock-unannotated"]
        self.assertEqual(["unannotated_mu_"],
                         sorted(re.search(r"'(\w+)'", f.message).group(1)
                                for f in hits))

    def test_lock_undeclared_fires(self):
        self.assertIn("lock-undeclared",
                      rules_in(self.findings, "raw_mutex.hpp"))

    def test_lock_undeclared_fires_for_vanished_decl(self):
        findings = lock_lint([BAD], dict(BAD_LOCKS, ghost_mu=60))
        hits = [f for f in findings if f.rule == "lock-undeclared"
                and "ghost_mu" in f.message]
        self.assertEqual(1, len(hits))

    def test_lock_ambiguous_fires(self):
        self.assertIn("lock-ambiguous",
                      rules_in(self.findings, "lock_ambiguous.hpp"))

    def test_lock_order_fires_per_shape(self):
        hits = [f for f in self.findings
                if f.path.endswith("lock_order.hpp")
                and f.rule == "lock-order"]
        messages = "\n".join(f.message for f in hits)
        self.assertGreaterEqual(len(hits), 3, messages)
        self.assertIn("nested acquisition", messages)  # lexical inversion
        self.assertIn("call to helper_locks_outer()", messages)  # via closure
        self.assertIn("self-deadlocks", messages)  # non-recursive reacquire

    def test_lock_hotpath_fires_for_path_and_function(self):
        findings = lock_lint(
            [BAD], BAD_LOCKS,
            hotpath_paths=[f"{BAD}/hotpath_mutex.cpp"],
            hotpath_functions=[{"file": f"{BAD}/hotpath_mutex.cpp",
                                "functions": ["claim_fast"]}])
        hits = [f for f in findings if f.rule == "lock-hotpath"]
        messages = "\n".join(f.message for f in hits)
        self.assertIn("lock-free hot path", messages)  # path-scoped tokens
        self.assertIn("claim_fast", messages)  # function-scoped acquisition

    def test_lock_docs_fires_when_mutex_undocumented(self):
        findings = lock_lint([BAD], BAD_LOCKS,
                             docs_file=f"{GOOD}/lock_docs.md")
        self.assertIn("lock-docs", {f.rule for f in findings})


class LockWaiverTest(unittest.TestCase):
    def test_lint_ok_waives_a_single_site(self):
        waived = REPO_ROOT / GOOD / "_waived_lock_tmp.hpp"
        waived.write_text(
            "#pragma once\n#include <mutex>\n"
            "namespace ppscan_lint_testdata {\nstruct W {\n"
            "  std::mutex special_mu_;  // lint-ok: lock-raw\n"
            "};\n}  // namespace ppscan_lint_testdata\n",
            encoding="utf-8")
        try:
            findings = lock_lint([GOOD], {"good_outer_mu": 10,
                                          "good_inner_mu": 20})
            self.assertEqual([], rules_in(findings, "_waived_lock_tmp.hpp"))
        finally:
            waived.unlink()


class RepoTreeTest(unittest.TestCase):
    def test_shipped_tree_is_clean(self):
        cfg = ppscan_lint.load_config(LINT_DIR / "atomics_protocol.toml")
        findings = ppscan_lint.run_lint(cfg, REPO_ROOT, check_docs_table=True)
        self.assertEqual([], [str(f) for f in findings])

    def test_shipped_tree_is_clean_with_lock_pass(self):
        cfg = ppscan_lint.load_config(LINT_DIR / "atomics_protocol.toml")
        lock_cfg = ppscan_lint.load_lock_config(
            LINT_DIR / "lock_protocol.toml")
        findings = ppscan_lint.run_lint(cfg, REPO_ROOT, check_docs_table=True,
                                        lock_cfg=lock_cfg)
        self.assertEqual([], [str(f) for f in findings])


if __name__ == "__main__":
    sys.exit(unittest.main(verbosity=2))
