#!/usr/bin/env bash
# clang-tidy gate over the CMake-exported compilation database.
#
# Usage: run_clang_tidy.sh <build-dir> [clang-tidy-binary]
#
# Exit codes: 0 clean, 1 findings, 2 usage/config error,
#             77 clang-tidy unavailable (ctest SKIP_RETURN_CODE — the gate
#             is enforced in CI, where the toolchain is pinned; local
#             environments without clang-tidy skip instead of failing).
set -u -o pipefail

BUILD_DIR="${1:-build}"
TIDY="${2:-${CLANG_TIDY:-clang-tidy}}"
ROOT="$(cd "$(dirname "$0")/../.." && pwd)"

if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: '$TIDY' not found; skipping (install clang-tidy or" \
       "set CLANG_TIDY; CI runs the pinned version)" >&2
  exit 77
fi

DB="$BUILD_DIR/compile_commands.json"
if [ ! -f "$DB" ]; then
  echo "run_clang_tidy: $DB missing — configure with" \
       "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the repo default)" >&2
  exit 2
fi

# Every first-party TU in the database; third-party/system entries (if any
# ever appear) are excluded by the path filter.
mapfile -t FILES < <(python3 - "$DB" <<'EOF'
import json, sys
db = json.load(open(sys.argv[1]))
seen = set()
for entry in db:
    f = entry["file"]
    if "/src/" in f or "/tools/" in f or "/bench/" in f:
        if f not in seen:
            seen.add(f)
            print(f)
EOF
)

if [ "${#FILES[@]}" -eq 0 ]; then
  echo "run_clang_tidy: no first-party files in $DB" >&2
  exit 2
fi

echo "run_clang_tidy: $("$TIDY" --version | head -n 1) over ${#FILES[@]} files"

STATUS=0
# -warnings-as-errors is set in .clang-tidy (WarningsAsErrors: '*');
# --quiet keeps output to `file:line: check-name` findings only.
"$TIDY" -p "$BUILD_DIR" --quiet "${FILES[@]}" || STATUS=1

if [ "$STATUS" -eq 0 ]; then
  echo "run_clang_tidy: clean"
fi
exit "$STATUS"
