#!/usr/bin/env python3
"""Validates a Prometheus text-exposition (v0.0.4) scrape.

Used two ways:

  check_exposition.py <file>     validate one scrape (the CI serving smoke
                                 pipes a live /metrics body through this)
  check_exposition.py --self-test
                                 run over testdata/exposition: every good/
                                 file must pass, every bad/ file must fail

Checks enforced (the contract serve::exposition_text must keep, see
docs/observability.md "Live telemetry"):

  * every sample's metric belongs to a family announced by `# HELP` and
    `# TYPE` lines *before* the first sample of that family;
  * metric names match the Prometheus grammar
    [a-zA-Z_:][a-zA-Z0-9_:]* and ppscan families carry the
    `ppscan_serve_` prefix;
  * TYPE is one of counter|gauge|histogram|summary|untyped;
  * counter family names end in `_total`;
  * histogram families expose `_bucket{le=...}` samples with
    non-decreasing counts over non-decreasing bounds, a final `le="+Inf"`
    bucket, a `_sum` sample, and a `_count` sample equal to the +Inf
    bucket;
  * no duplicate samples (same name + label set twice).
"""

import argparse
import pathlib
import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def family_of(sample_name, types):
    """Maps a sample name to its family: histogram samples drop their
    _bucket/_sum/_count suffix when the base family is a histogram."""
    for suffix in HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return sample_name


def parse_le(labels):
    match = re.search(r'le="([^"]*)"', labels or "")
    if match is None:
        return None
    text = match.group(1)
    return float("inf") if text == "+Inf" else float(text)


def check_exposition(text):
    """Returns a list of violation strings (empty = valid)."""
    errors = []
    helps = {}
    types = {}
    seen_samples = set()
    histograms = {}  # family -> {"buckets": [(le, v)], "sum": x, "count": x}

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                errors.append(f"line {lineno}: HELP line missing text")
                continue
            name = parts[2]
            if not METRIC_NAME_RE.match(name):
                errors.append(f"line {lineno}: invalid metric name '{name}'")
            if name in helps:
                errors.append(f"line {lineno}: duplicate HELP for '{name}'")
            helps[name] = parts[3]
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"line {lineno}: malformed TYPE line")
                continue
            name, mtype = parts[2], parts[3]
            if mtype not in VALID_TYPES:
                errors.append(
                    f"line {lineno}: unknown metric type '{mtype}'")
            if name in types:
                errors.append(f"line {lineno}: duplicate TYPE for '{name}'")
            types[name] = mtype
            if mtype == "counter" and not name.endswith("_total"):
                errors.append(
                    f"line {lineno}: counter '{name}' must end in _total")
            continue
        if line.startswith("#"):
            continue  # free-form comment

        match = SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = match.group("name")
        labels = match.group("labels")
        value_text = match.group("value")
        try:
            value = float(value_text)
        except ValueError:
            errors.append(
                f"line {lineno}: non-numeric value {value_text!r}")
            continue

        family = family_of(name, types)
        if family not in types:
            errors.append(
                f"line {lineno}: sample '{name}' has no preceding # TYPE")
        if family not in helps:
            errors.append(
                f"line {lineno}: sample '{name}' has no preceding # HELP")

        key = (name, labels or "")
        if key in seen_samples:
            errors.append(
                f"line {lineno}: duplicate sample '{name}{{{labels or ''}}}'")
        seen_samples.add(key)

        if types.get(family) == "histogram":
            hist = histograms.setdefault(
                family, {"buckets": [], "sum": None, "count": None})
            if name.endswith("_bucket"):
                bound = parse_le(labels)
                if bound is None:
                    errors.append(
                        f"line {lineno}: histogram bucket without le label")
                else:
                    hist["buckets"].append((lineno, bound, value))
            elif name.endswith("_sum"):
                hist["sum"] = value
            elif name.endswith("_count"):
                hist["count"] = value

    for family, hist in histograms.items():
        buckets = hist["buckets"]
        if not buckets:
            errors.append(f"histogram '{family}' has no _bucket samples")
            continue
        prev_bound, prev_value = None, None
        for lineno, bound, value in buckets:
            if prev_bound is not None and bound < prev_bound:
                errors.append(
                    f"line {lineno}: histogram '{family}' le bounds not "
                    "non-decreasing")
            if prev_value is not None and value < prev_value:
                errors.append(
                    f"line {lineno}: histogram '{family}' cumulative counts "
                    "decrease")
            prev_bound, prev_value = bound, value
        if buckets[-1][1] != float("inf"):
            errors.append(f"histogram '{family}' missing le=\"+Inf\" bucket")
        if hist["sum"] is None:
            errors.append(f"histogram '{family}' missing _sum sample")
        if hist["count"] is None:
            errors.append(f"histogram '{family}' missing _count sample")
        elif buckets[-1][1] == float("inf") and hist["count"] != buckets[-1][2]:
            errors.append(
                f"histogram '{family}' _count={hist['count']:g} != +Inf "
                f"bucket {buckets[-1][2]:g}")
    return errors


def self_test(testdata):
    failures = []
    good = sorted((testdata / "good").glob("*.txt"))
    bad = sorted((testdata / "bad").glob("*.txt"))
    if not good or not bad:
        print(f"self-test: no testdata under {testdata}", file=sys.stderr)
        return 1
    for path in good:
        errors = check_exposition(path.read_text())
        if errors:
            failures.append(f"{path.name} (good) unexpectedly failed: "
                            + "; ".join(errors))
    for path in bad:
        errors = check_exposition(path.read_text())
        if not errors:
            failures.append(f"{path.name} (bad) unexpectedly passed")
    for failure in failures:
        print(f"self-test: {failure}", file=sys.stderr)
    print(f"self-test: {len(good)} good + {len(bad)} bad files, "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", nargs="?", help="exposition text to check")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the known-good/known-bad testdata")
    args = parser.parse_args()

    if args.self_test:
        here = pathlib.Path(__file__).resolve().parent
        return self_test(here / "testdata" / "exposition")
    if args.file is None:
        parser.error("either a file or --self-test is required")
    text = (sys.stdin.read() if args.file == "-"
            else pathlib.Path(args.file).read_text())
    errors = check_exposition(text)
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"check_exposition: {len(errors)} violation(s)",
              file=sys.stderr)
        return 1
    print("check_exposition: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
