#!/usr/bin/env bash
# Clang Thread Safety Analysis gate: -Wthread-safety -Werror over every
# src/ TU (headers are checked through their includers). GCC does not
# implement the analysis, so this gate needs clang; environments without
# one skip (77) and CI enforces with the pinned clang-18.
#
# Usage: check_thread_safety.sh [clang++-binary]
#
# Exit codes: 0 clean, 1 violations (or the misannotated canary NOT
#             caught), 2 usage/config error,
#             77 clang++ unavailable (ctest SKIP_RETURN_CODE).
set -u -o pipefail

CXX="${1:-${CLANGXX:-}}"
if [ -z "$CXX" ]; then
  for c in clang++-18 clang++; do
    if command -v "$c" >/dev/null 2>&1; then CXX="$c"; break; fi
  done
fi
if [ -z "${CXX:-}" ] || ! command -v "$CXX" >/dev/null 2>&1; then
  echo "check_thread_safety: 'clang++-18'/'clang++' not found; skipping" \
       "(install clang or set CLANGXX; CI runs the pinned clang-18)" >&2
  exit 77
fi

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
cd "$ROOT" || exit 2

# -fsyntax-only links nothing, but <omp.h> (task_scheduler.hpp) is missing
# on machines without libomp headers. -idirafter a stub keeps the gate
# self-contained; a real omp.h anywhere on the include path still wins.
STUB="$(mktemp -d)"
trap 'rm -rf "$STUB"' EXIT
cat > "$STUB/omp.h" <<'EOF'
/* Minimal stand-in for <omp.h> for -fsyntax-only runs without libomp.
   Only declarations the repo actually uses belong here. */
#pragma once
extern "C" {
int omp_get_max_threads(void);
int omp_get_num_threads(void);
int omp_get_thread_num(void);
void omp_set_num_threads(int);
}
EOF

# Both feature gates ON so the annotated fault/trace code is analyzed too.
FLAGS=(-std=c++20 -fsyntax-only -Isrc -idirafter "$STUB"
       -DPPSCAN_TRACE_ENABLED=1 -DPPSCAN_FAULTS_ENABLED=1
       -Wthread-safety -Werror=thread-safety)

echo "check_thread_safety: $("$CXX" --version | head -1)"

STATUS=0
CHECKED=0
while IFS= read -r tu; do
  if ! "$CXX" "${FLAGS[@]}" "$tu"; then
    echo "$tu:1: [thread-safety] -Wthread-safety violations (see above)"
    STATUS=1
  fi
  CHECKED=$((CHECKED + 1))
done < <(git ls-files 'src/*.cpp' | sort -u)

if [ "$CHECKED" -eq 0 ]; then
  echo "check_thread_safety: no src/ TUs found (run from a git checkout)" >&2
  exit 2
fi

# Negative control: the deliberately misannotated TU must fail to compile.
# If clang accepts it, the flag set above has silently stopped checking
# anything (wrong include path, renamed warning group, macros compiled
# out, ...) and the gate itself is broken.
CANARY="tools/lint/testdata/threadsafety/misannotated.cpp"
if "$CXX" "${FLAGS[@]}" "$CANARY" 2>/dev/null; then
  echo "$CANARY:1: [thread-safety] canary compiled clean — the" \
       "-Wthread-safety gate is not catching violations"
  STATUS=1
fi

if [ "$STATUS" -eq 0 ]; then
  echo "check_thread_safety: clean ($CHECKED TUs, canary caught)"
fi
exit "$STATUS"
