#include "graph/graph_stats.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/fixtures.hpp"
#include "graph/graph_builder.hpp"

namespace ppscan {
namespace {

TEST(GraphStats, CliqueStats) {
  const auto g = make_clique(6);
  const auto s = compute_stats(g, /*with_triangles=*/true);
  EXPECT_EQ(s.num_vertices, 6u);
  EXPECT_EQ(s.num_edges, 15u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 5.0);
  EXPECT_EQ(s.max_degree, 5u);
  EXPECT_EQ(s.isolated_vertices, 0u);
  // C(6,3) = 20 triangles.
  EXPECT_EQ(s.triangles, 20u);
}

TEST(GraphStats, PathHasNoTriangles) {
  const auto s = compute_stats(make_path(10), true);
  EXPECT_EQ(s.triangles, 0u);
  EXPECT_EQ(s.max_degree, 2u);
}

TEST(GraphStats, StarStats) {
  const auto s = compute_stats(make_star(9), true);
  EXPECT_EQ(s.max_degree, 8u);
  EXPECT_EQ(s.triangles, 0u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0 * 8 / 9);
}

TEST(GraphStats, CountsIsolatedVertices) {
  const auto g = GraphBuilder::from_edges({{0, 1}}, 5);
  const auto s = compute_stats(g);
  EXPECT_EQ(s.isolated_vertices, 3u);
}

TEST(GraphStats, TriangleCountOnKnownGraph) {
  // Two triangles sharing edge (0,1): {0,1,2} and {0,1,3}.
  const auto g = GraphBuilder::from_edges({{0, 1}, {0, 2}, {1, 2}, {0, 3},
                                           {1, 3}});
  EXPECT_EQ(compute_stats(g, true).triangles, 2u);
}

TEST(GraphStats, EmptyGraph) {
  const auto s = compute_stats(GraphBuilder::from_edges({}, 0));
  EXPECT_EQ(s.num_vertices, 0u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 0.0);
}

TEST(GraphStats, ToStringMentionsCounts) {
  const auto s = compute_stats(make_clique(4));
  const auto text = s.to_string();
  EXPECT_NE(text.find("|V|=4"), std::string::npos);
  EXPECT_NE(text.find("|E|=6"), std::string::npos);
}

TEST(DegreeHistogram, BucketsSumToVertexCount) {
  const auto g = make_star(100);
  const auto hist = degree_histogram(g);
  const auto total = std::accumulate(hist.begin(), hist.end(),
                                     std::uint64_t{0});
  EXPECT_EQ(total, g.num_vertices());
}

TEST(DegreeHistogram, StarHasOneHighBucketEntry) {
  const auto hist = degree_histogram(make_star(100));
  // 99 leaves with degree 1 in bucket 0; the hub (degree 99) in bucket 6.
  EXPECT_EQ(hist[0], 99u);
  ASSERT_GE(hist.size(), 7u);
  EXPECT_EQ(hist[6], 1u);
}

}  // namespace
}  // namespace ppscan
