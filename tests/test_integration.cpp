// End-to-end scenarios across modules: generate → persist → reload →
// cluster with every algorithm → classify hubs/outliers, plus a ground-truth
// community-recovery check on an easy planted-partition instance.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <map>

#include "bench_support/algorithms.hpp"
#include "core/ppscan.hpp"
#include "graph/edge_list_io.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "scan/scan_common.hpp"

namespace ppscan {
namespace {

namespace fs = std::filesystem;

TEST(Integration, GenerateSaveLoadClusterPipeline) {
  LfrParams p;
  p.n = 1500;
  p.avg_degree = 16;
  p.mixing = 0.2;
  const auto g = lfr_like(p, 2026);

  const fs::path dir = fs::temp_directory_path() /
                       ("ppscan-int-" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const auto text_path = (dir / "g.txt").string();
  const auto bin_path = (dir / "g.bin").string();
  write_edge_list_text(g, text_path);
  write_csr_binary(g, bin_path);

  const auto from_text = read_edge_list_text(text_path);
  const auto from_bin = read_csr_binary(bin_path);
  ASSERT_EQ(from_text.dst(), g.dst());
  ASSERT_EQ(from_bin.dst(), g.dst());

  const auto params = ScanParams::make("0.5", 4);
  PpScanOptions options;
  options.num_threads = 4;
  const auto direct = ppscan(g, params, options);
  const auto via_text = ppscan(from_text, params, options);
  const auto via_bin = ppscan(from_bin, params, options);
  EXPECT_TRUE(results_equivalent(direct.result, via_text.result));
  EXPECT_TRUE(results_equivalent(direct.result, via_bin.result));

  const auto classes = classify_hubs_outliers(g, direct.result);
  ASSERT_EQ(classes.size(), g.num_vertices());

  fs::remove_all(dir);
}

TEST(Integration, PpScanRecoversPlantedCommunities) {
  // Dense, well-separated communities: with a forgiving ε and µ, ppSCAN's
  // clusters should align with the planted partition for most vertices.
  LfrParams p;
  p.n = 1000;
  p.avg_degree = 24;
  p.mixing = 0.08;
  p.min_community = 40;
  p.max_community = 120;
  std::vector<VertexId> truth;
  const auto g = lfr_like(p, 404, &truth);

  PpScanOptions options;
  options.num_threads = 4;
  const auto run = ppscan(g, ScanParams::make("0.4", 4), options);
  const auto clusters = run.result.canonical_clusters();
  ASSERT_GT(clusters.size(), 1u);

  // For every found cluster, its members should be dominated by one planted
  // community (purity check).
  std::uint64_t pure = 0, total = 0;
  for (const auto& cluster : clusters) {
    std::map<VertexId, std::uint64_t> votes;
    for (const VertexId v : cluster) ++votes[truth[v]];
    std::uint64_t best = 0;
    for (const auto& [cid, count] : votes) best = std::max(best, count);
    pure += best;
    total += cluster.size();
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(pure) / static_cast<double>(total), 0.9);
}

TEST(Integration, AllAlgorithmsAgreeOnAMidSizedGraph) {
  LfrParams p;
  p.n = 2500;
  p.avg_degree = 18;
  p.mixing = 0.25;
  const auto g = lfr_like(p, 606);
  const auto params = ScanParams::make("0.6", 5);

  AlgorithmConfig config;
  config.num_threads = 4;
  const auto baseline = run_algorithm("pSCAN", g, params, config);
  for (const auto& name : algorithm_names()) {
    const auto run = run_algorithm(name, g, params, config);
    EXPECT_TRUE(results_equivalent(baseline.result, run.result))
        << name << ": "
        << describe_result_difference(baseline.result, run.result);
  }
}

TEST(Integration, HubAndOutlierCountsAreStableAcrossAlgorithms) {
  LfrParams p;
  p.n = 900;
  p.avg_degree = 12;
  p.mixing = 0.3;
  const auto g = lfr_like(p, 808);
  const auto params = ScanParams::make("0.5", 3);

  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> counts;
  AlgorithmConfig config;
  config.num_threads = 2;
  for (const auto& name : algorithm_names()) {
    const auto run = run_algorithm(name, g, params, config);
    const auto classes = classify_hubs_outliers(g, run.result);
    std::uint64_t hubs = 0, outliers = 0;
    for (const auto c : classes) {
      if (c == VertexClass::Hub) ++hubs;
      if (c == VertexClass::Outlier) ++outliers;
    }
    counts[name] = {hubs, outliers};
  }
  const auto expected = counts["pSCAN"];
  for (const auto& [name, pair] : counts) {
    EXPECT_EQ(pair, expected) << name;
  }
}

TEST(Integration, EpsilonMonotonicity) {
  // Raising ε can only shrink the set of similar edges, hence cores: the
  // core count must be non-increasing in ε (for fixed µ).
  LfrParams p;
  p.n = 1200;
  p.avg_degree = 20;
  const auto g = lfr_like(p, 909);
  std::uint64_t previous = g.num_vertices() + 1;
  for (const char* eps : {"0.1", "0.3", "0.5", "0.7", "0.9"}) {
    const auto run = ppscan(g, ScanParams::make(eps, 4));
    EXPECT_LE(run.result.num_cores(), previous) << "eps=" << eps;
    previous = run.result.num_cores();
  }
}

TEST(Integration, MuMonotonicity) {
  // Raising µ can only demote cores (for fixed ε).
  LfrParams p;
  p.n = 1200;
  p.avg_degree = 20;
  const auto g = lfr_like(p, 910);
  std::uint64_t previous = g.num_vertices() + 1;
  for (const std::uint32_t mu : {1u, 2u, 5u, 10u, 15u}) {
    const auto run = ppscan(g, ScanParams::make("0.4", mu));
    EXPECT_LE(run.result.num_cores(), previous) << "mu=" << mu;
    previous = run.result.num_cores();
  }
}

}  // namespace
}  // namespace ppscan
