// Concurrency and correctness tests for serve::QueryService: N client
// threads hammering one shared immutable index must each get answers
// bit-identical to a fresh single-threaded GsIndex::query — the serving
// layer adds batching, pooled scratch and caching but must never change a
// result. Runs under TSan in CI (the `serve` label), so the submission
// queue, the futex epochs and the stats mutex are exercised adversarially.
#include "serve/query_service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "index/gs_index.hpp"

namespace ppscan {
namespace {

using serve::QueryResponse;
using serve::QueryService;
using serve::ServiceOptions;

/// Bit-identical, not merely equivalent: the service must return the very
/// vectors a fresh single-threaded query produces, cluster-id convention
/// included.
void expect_identical(const ScanResult& got, const ScanResult& want,
                      const ScanParams& params) {
  const std::string label = "eps=" + std::to_string(params.eps.num) + "/" +
                            std::to_string(params.eps.den) +
                            " mu=" + std::to_string(params.mu);
  ASSERT_EQ(got.roles, want.roles) << label;
  ASSERT_EQ(got.core_cluster_id, want.core_cluster_id) << label;
  ASSERT_EQ(got.noncore_memberships, want.noncore_memberships) << label;
}

std::vector<ScanParams> mixed_workload() {
  std::vector<ScanParams> grid;
  for (const std::uint64_t num : {1, 2, 3, 4}) {
    for (const std::uint32_t mu : {2u, 3u, 5u}) {
      ScanParams p;
      p.eps = EpsRational{num, 5};
      p.mu = mu;
      grid.push_back(p);
    }
  }
  return grid;
}

TEST(QueryService, ConcurrentMixedQueriesMatchSingleThreadedQuery) {
  const auto g = erdos_renyi(1500, 12000, 7);
  const GsIndex index(g);
  const auto grid = mixed_workload();

  // Ground truth from the ungoverned single-caller path, computed before
  // any concurrency exists.
  std::map<std::pair<std::uint64_t, std::uint32_t>, ScanResult> expected;
  for (const auto& params : grid) {
    expected[{params.eps.num, params.mu}] = index.query(params).result;
  }

  ServiceOptions options;
  options.num_threads = 4;
  options.cache_results = false;  // every query runs, concurrently
  QueryService service(index, options);

  constexpr int kClients = 4;
  constexpr int kRounds = 3;  // each client sweeps the grid thrice
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        // Stagger the sweep so concurrent batches mix parameters.
        for (std::size_t i = 0; i < grid.size(); ++i) {
          const auto& params = grid[(i + static_cast<std::size_t>(c)) %
                                    grid.size()];
          const QueryResponse response = service.submit(params).get();
          if (response.run == nullptr ||
              response.run->stats.abort_reason != AbortReason::None) {
            failures[c] = "ungoverned query did not complete";
            return;
          }
          const auto& want = expected.at({params.eps.num, params.mu});
          const auto& got = response.run->result;
          if (got.roles != want.roles ||
              got.core_cluster_id != want.core_cluster_id ||
              got.noncore_memberships != want.noncore_memberships) {
            failures[c] = "answer diverged from single-threaded query";
            return;
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(failures[c], "") << "client " << c;

  const auto snap = service.snapshot();
  const std::uint64_t total = kClients * kRounds * grid.size();
  EXPECT_EQ(snap.submitted, total);
  EXPECT_EQ(snap.completed, total);
  EXPECT_EQ(snap.cache_hits, 0u);
  EXPECT_EQ(snap.partial, 0u);
  EXPECT_EQ(snap.latency.total, total);
  // The aggregated funnel keeps the library invariant.
  EXPECT_EQ(snap.counters.arcs_touched,
            snap.counters.arcs_predicate_pruned +
                snap.counters.sims_computed + snap.counters.sims_reused);
  EXPECT_GT(snap.counters.arcs_touched, 0u);
  EXPECT_EQ(snap.counters.sims_computed, 0u);  // index queries never intersect
}

TEST(QueryService, CacheHitsAliasTheStoredRunAndAreCounted) {
  const auto g = erdos_renyi(800, 6400, 13);
  const GsIndex index(g);
  ServiceOptions options;
  options.num_threads = 2;
  QueryService service(index, options);

  const auto params = ScanParams::make("0.4", 3);
  const QueryResponse first = service.submit(params).get();
  const QueryResponse second = service.submit(params).get();
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  // A hit aliases the memoized run rather than copying or recomputing it.
  EXPECT_EQ(first.run.get(), second.run.get());
  EXPECT_EQ(second.execute_seconds, 0.0);

  const auto snap = service.snapshot();
  EXPECT_EQ(snap.cache_hits, 1u);
  ASSERT_EQ(snap.recent.size(), 2u);
  // The ring carries precomputed result-shape fields, identical across the
  // miss and the hit.
  EXPECT_EQ(snap.recent[0].num_clusters, snap.recent[1].num_clusters);
  EXPECT_EQ(snap.recent[0].num_cores, snap.recent[1].num_cores);
  EXPECT_EQ(snap.recent[1].cache_hit, true);
  EXPECT_EQ(snap.recent[0].eps, "2/5");
}

TEST(QueryService, CancelAtPhaseReturnsClassifiedPartial) {
  const auto g = erdos_renyi(600, 4800, 17);
  const GsIndex index(g);
  ServiceOptions options;
  options.num_threads = 2;
  options.cache_results = true;
  QueryService service(index, options);

  const auto params = ScanParams::make("0.3", 2);
  RunLimits limits;
  limits.cancel_at_phase = 2;  // QCoreTest completes, QCoreCluster never runs
  const QueryResponse partial = service.submit(params, limits).get();
  ASSERT_NE(partial.run, nullptr);
  EXPECT_TRUE(partial.run->partial());
  EXPECT_EQ(partial.run->stats.abort_reason, AbortReason::UserCancelled);
  EXPECT_EQ(partial.run->stats.abort_phase, "QCoreCluster");
  EXPECT_EQ(partial.run->stats.phases_completed, 1u);
  // The decided portion is final: every role classified, no clustering yet.
  for (const Role role : partial.run->result.roles) {
    EXPECT_NE(role, Role::Unknown);
  }
  EXPECT_TRUE(partial.run->result.noncore_memberships.empty());

  // Partials are never memoized and the pooled scratch is reusable: the
  // same parameters now run to completion and match a fresh query.
  const QueryResponse full = service.submit(params).get();
  ASSERT_NE(full.run, nullptr);
  EXPECT_FALSE(full.cache_hit);
  EXPECT_FALSE(full.run->partial());
  expect_identical(full.run->result, index.query(params).result, params);

  const auto snap = service.snapshot();
  EXPECT_EQ(snap.partial, 1u);
}

TEST(QueryService, DeadlinedQueriesReturnClassifiedPartials) {
  // Heavy enough that the cold queries ahead of the deadlined one exceed
  // its 1 ms budget regardless of scheduling (32 × ~0.1 ms even in the
  // fastest Release build, far more under TSan); the trip lands either at
  // admission or mid-run, both classified DeadlineExpired.
  const auto g = erdos_renyi(4000, 48000, 11);
  const GsIndex index(g);
  ServiceOptions options;
  options.num_threads = 1;
  options.cache_results = false;
  QueryService service(index, options);

  std::vector<std::future<QueryResponse>> warm;
  for (std::uint64_t i = 0; i < 32; ++i) {
    ScanParams p;
    p.eps = EpsRational{(i % 8) + 1, 10};
    p.mu = 2;
    warm.push_back(service.submit(p));
  }
  RunLimits limits;
  limits.deadline = std::chrono::milliseconds(1);
  auto deadlined = service.submit(ScanParams::make("0.5", 3), limits);

  for (auto& f : warm) {
    const QueryResponse r = f.get();
    ASSERT_NE(r.run, nullptr);
    EXPECT_FALSE(r.run->partial());
  }
  const QueryResponse r = deadlined.get();
  ASSERT_NE(r.run, nullptr);
  EXPECT_TRUE(r.run->partial());
  EXPECT_EQ(r.run->stats.abort_reason, AbortReason::DeadlineExpired);
  EXPECT_FALSE(r.run->stats.abort_phase.empty());
  // A partial is still a classified result over the whole vertex set.
  EXPECT_EQ(r.run->result.roles.size(), g.num_vertices());
  EXPECT_EQ(r.run->result.core_cluster_id.size(), g.num_vertices());
  EXPECT_GE(r.latency_seconds * 1e3, 1.0);  // the budget was truly spent

  const auto snap = service.snapshot();
  EXPECT_GE(snap.partial, 1u);
}

TEST(QueryService, TrySubmitShedsLoadWhenSaturated) {
  const auto g = erdos_renyi(4000, 48000, 19);
  const GsIndex index(g);
  ServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 2;
  options.max_batch = 1;
  options.cache_results = false;
  QueryService service(index, options);

  std::vector<std::future<QueryResponse>> admitted;
  bool saw_rejection = false;
  for (int i = 0; i < 5000 && !saw_rejection; ++i) {
    ScanParams p;
    p.eps = EpsRational{static_cast<std::uint64_t>(i % 99) + 1, 100};
    p.mu = 2;
    std::future<QueryResponse> f;
    if (service.try_submit(p, RunLimits{}, &f)) {
      admitted.push_back(std::move(f));
    } else {
      saw_rejection = true;
    }
  }
  // A 2-slot queue behind a single worker running multi-ms queries cannot
  // absorb a microsecond-cadence producer.
  EXPECT_TRUE(saw_rejection);
  // Every admitted request is still answered.
  for (auto& f : admitted) {
    const QueryResponse r = f.get();
    ASSERT_NE(r.run, nullptr);
  }
  const auto snap = service.snapshot();
  EXPECT_GE(snap.rejected, 1u);
  EXPECT_EQ(snap.submitted, admitted.size());
  EXPECT_EQ(snap.completed, admitted.size());
}

TEST(QueryService, StopDrainsQueuedRequestsAndRefusesNewOnes) {
  const auto g = erdos_renyi(1000, 8000, 23);
  const GsIndex index(g);
  ServiceOptions options;
  options.num_threads = 2;
  options.cache_results = false;
  QueryService service(index, options);

  std::vector<std::future<QueryResponse>> pending;
  for (std::uint64_t i = 0; i < 16; ++i) {
    ScanParams p;
    p.eps = EpsRational{(i % 9) + 1, 10};
    p.mu = 2;
    pending.push_back(service.submit(p));
  }
  service.stop();
  // Lossless shutdown: everything that reached the queue is answered.
  for (auto& f : pending) {
    const QueryResponse r = f.get();
    ASSERT_NE(r.run, nullptr);
    EXPECT_FALSE(r.run->partial());
  }
  EXPECT_THROW(service.submit(ScanParams::make("0.5", 2)),
               serve::ServiceStoppedError);
  service.stop();  // idempotent

  const auto snap = service.snapshot();
  EXPECT_EQ(snap.submitted, 16u);
  EXPECT_EQ(snap.completed, 16u);
}

TEST(QueryService, RefusesAnAbortedIndexConstruction) {
  const auto g = erdos_renyi(500, 4000, 29);
  GsIndex::BuildOptions build;
  build.limits.memory_budget_bytes = 1;  // construction cannot charge a byte
  const GsIndex aborted(g, build);
  ASSERT_FALSE(aborted.complete());
  EXPECT_THROW(QueryService(aborted, ServiceOptions{}), std::logic_error);
}

}  // namespace
}  // namespace ppscan
