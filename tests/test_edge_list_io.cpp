#include "graph/edge_list_io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "graph/generators.hpp"
#include "graph/graph_builder.hpp"

namespace ppscan {
namespace {

namespace fs = std::filesystem;

class EdgeListIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ppscan-io-test-" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

TEST_F(EdgeListIoTest, TextRoundTrip) {
  const auto g = erdos_renyi(50, 200, 1);
  write_edge_list_text(g, path("g.txt"));
  const auto loaded = read_edge_list_text(path("g.txt"));
  EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  EXPECT_EQ(loaded.dst(), g.dst());
  EXPECT_EQ(loaded.offsets(), g.offsets());
}

TEST_F(EdgeListIoTest, TextReaderSkipsComments) {
  std::ofstream out(path("c.txt"));
  out << "# comment\n% another comment\n0 1\n\n1 2\n";
  out.close();
  const auto g = read_edge_list_text(path("c.txt"));
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST_F(EdgeListIoTest, TextReaderHandlesDuplicatesAndSelfLoops) {
  std::ofstream out(path("d.txt"));
  out << "0 1\n1 0\n2 2\n0 1\n";
  out.close();
  const auto g = read_edge_list_text(path("d.txt"));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_NO_THROW(g.validate());
}

TEST_F(EdgeListIoTest, TextReaderRejectsMissingFile) {
  EXPECT_THROW(read_edge_list_text(path("nope.txt")), std::runtime_error);
}

TEST_F(EdgeListIoTest, TextReaderRejectsGarbage) {
  std::ofstream out(path("bad.txt"));
  out << "hello world\n";
  out.close();
  EXPECT_THROW(read_edge_list_text(path("bad.txt")), std::runtime_error);
}

TEST_F(EdgeListIoTest, TextReaderRejectsLineWithOneEndpoint) {
  std::ofstream out(path("half.txt"));
  out << "42\n";
  out.close();
  EXPECT_THROW(read_edge_list_text(path("half.txt")), std::runtime_error);
}

TEST_F(EdgeListIoTest, BinaryRoundTrip) {
  const auto g = erdos_renyi(100, 500, 2);
  write_csr_binary(g, path("g.bin"));
  const auto loaded = read_csr_binary(path("g.bin"));
  EXPECT_EQ(loaded.offsets(), g.offsets());
  EXPECT_EQ(loaded.dst(), g.dst());
}

TEST_F(EdgeListIoTest, BinaryRejectsBadMagic) {
  std::ofstream out(path("bad.bin"), std::ios::binary);
  out << "NOTMAGIC plus some bytes that are long enough for a header";
  out.close();
  EXPECT_THROW(read_csr_binary(path("bad.bin")), std::runtime_error);
}

TEST_F(EdgeListIoTest, BinaryRejectsTruncatedFile) {
  const auto g = erdos_renyi(50, 100, 3);
  write_csr_binary(g, path("t.bin"));
  // Truncate the body.
  const auto full = fs::file_size(path("t.bin"));
  fs::resize_file(path("t.bin"), full / 2);
  EXPECT_THROW(read_csr_binary(path("t.bin")), std::runtime_error);
}

TEST_F(EdgeListIoTest, EmptyGraphRoundTrips) {
  const auto g = GraphBuilder::from_edges({}, 4);
  write_csr_binary(g, path("e.bin"));
  const auto loaded = read_csr_binary(path("e.bin"));
  EXPECT_EQ(loaded.num_vertices(), 4u);
  EXPECT_EQ(loaded.num_edges(), 0u);
}

TEST_F(EdgeListIoTest, DefaultConstructedGraphRoundTrips) {
  // A default CsrGraph has no offset array at all; the writer must still
  // emit a well-formed zero-vertex file.
  const CsrGraph g;
  write_csr_binary(g, path("zero.bin"));
  const auto loaded = read_csr_binary(path("zero.bin"));
  EXPECT_EQ(loaded.num_vertices(), 0u);
  EXPECT_EQ(loaded.num_edges(), 0u);
}

TEST_F(EdgeListIoTest, SingleVertexRoundTrips) {
  const auto g = GraphBuilder::from_edges({}, 1);
  write_csr_binary(g, path("one.bin"));
  const auto loaded = read_csr_binary(path("one.bin"));
  EXPECT_EQ(loaded.num_vertices(), 1u);
  EXPECT_EQ(loaded.num_edges(), 0u);
  EXPECT_TRUE(loaded.neighbors(0).empty());
}

TEST_F(EdgeListIoTest, IsolatedVerticesAtBothEndsOfIdRangeRoundTrip) {
  // Vertices 0..2 and 7..9 are isolated; only the middle of the id range
  // has edges. Offsets must stay flat (not collapse) through a round trip.
  const auto g = GraphBuilder::from_edges({{3, 4}, {4, 5}, {5, 6}}, 10);
  write_csr_binary(g, path("iso.bin"));
  const auto loaded = read_csr_binary(path("iso.bin"));
  EXPECT_EQ(loaded.num_vertices(), 10u);
  EXPECT_EQ(loaded.num_edges(), 3u);
  EXPECT_EQ(loaded.degree(0), 0u);
  EXPECT_EQ(loaded.degree(9), 0u);
  EXPECT_EQ(loaded.offsets(), g.offsets());
  EXPECT_EQ(loaded.dst(), g.dst());
}

TEST_F(EdgeListIoTest, HeaderFieldsAre64BitLittleEndian) {
  // An arc count above 2^16 exercises more than two bytes of the 64-bit
  // arcs field; verify both header fields occupy 8 bytes on disk so
  // graphs beyond 2^32 arcs stay representable.
  const auto g = erdos_renyi(2000, 40000, 4);
  ASSERT_GT(g.num_arcs(), std::uint64_t{1} << 16);
  write_csr_binary(g, path("h.bin"));

  std::ifstream in(path("h.bin"), std::ios::binary);
  char header[24];
  in.read(header, sizeof(header));
  ASSERT_TRUE(in.good());
  std::uint64_t n = 0, arcs = 0;
  std::memcpy(&n, header + 8, sizeof(n));
  std::memcpy(&arcs, header + 16, sizeof(arcs));
  EXPECT_EQ(n, g.num_vertices());
  EXPECT_EQ(arcs, g.num_arcs());
  EXPECT_EQ(fs::file_size(path("h.bin")),
            24u + (n + 1) * sizeof(EdgeId) + arcs * sizeof(VertexId));
}

TEST_F(EdgeListIoTest, TextReaderRejectsNegativeIds) {
  std::ofstream out(path("neg.txt"));
  out << "0 1\n-1 2\n";
  out.close();
  EXPECT_THROW(read_edge_list_text(path("neg.txt")), std::runtime_error);
}

TEST_F(EdgeListIoTest, TextReaderRejectsIdsBeyondVertexRange) {
  std::ofstream out(path("big.txt"));
  out << "4294967296 1\n";  // 2^32 silently wrapped to 0 before validation
  out.close();
  EXPECT_THROW(read_edge_list_text(path("big.txt")), std::runtime_error);
}

TEST_F(EdgeListIoTest, TextReaderRejectsTrailingGarbage) {
  std::ofstream out(path("trail.txt"));
  out << "0 1 2\n";
  out.close();
  EXPECT_THROW(read_edge_list_text(path("trail.txt")), std::runtime_error);
}

TEST_F(EdgeListIoTest, TextReaderAcceptsWindowsLineEndings) {
  std::ofstream out(path("crlf.txt"), std::ios::binary);
  out << "0 1\r\n1 2\r\n";
  out.close();
  const auto g = read_edge_list_text(path("crlf.txt"));
  EXPECT_EQ(g.num_edges(), 2u);
}

}  // namespace
}  // namespace ppscan
