#include "util/atomic_array.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ppscan {
namespace {

TEST(AtomicArray, InitializesToGivenValue) {
  AtomicArray<int> arr(16, 7);
  ASSERT_EQ(arr.size(), 16u);
  for (std::size_t i = 0; i < arr.size(); ++i) {
    EXPECT_EQ(arr.load(i), 7);
  }
}

TEST(AtomicArray, DefaultConstructedIsEmpty) {
  AtomicArray<int> arr;
  EXPECT_TRUE(arr.empty());
  EXPECT_EQ(arr.size(), 0u);
}

TEST(AtomicArray, StoreLoadRoundTrip) {
  AtomicArray<std::uint32_t> arr(4);
  arr.store(2, 99);
  EXPECT_EQ(arr.load(2), 99u);
  EXPECT_EQ(arr.load(1), 0u);
}

TEST(AtomicArray, CompareExchangeSemantics) {
  AtomicArray<int> arr(1, 5);
  int expected = 4;
  EXPECT_FALSE(arr.compare_exchange(0, expected, 9));
  EXPECT_EQ(expected, 5);  // failure loads the live value
  EXPECT_TRUE(arr.compare_exchange(0, expected, 9));
  EXPECT_EQ(arr.load(0), 9);
}

TEST(AtomicArray, FetchAddAccumulatesAcrossThreads) {
  AtomicArray<std::uint64_t> arr(1, 0);
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) arr.fetch_add(0, 1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(arr.load(0), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(AtomicArray, AssignReplacesContents) {
  AtomicArray<int> arr(4, 1);
  arr.assign(2, 3);
  ASSERT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr.load(0), 3);
  EXPECT_EQ(arr.load(1), 3);
}

}  // namespace
}  // namespace ppscan
