#include "bench_support/datasets.hpp"

#include <gtest/gtest.h>

#include "graph/graph_stats.hpp"

namespace ppscan {
namespace {

// Datasets load at a tiny scale so the suite stays fast; shape properties
// (degrees, skew) must hold at any scale.
constexpr double kTestScale = 0.05;

TEST(Datasets, RegistryListsPaperStandIns) {
  const auto real = real_world_datasets();
  ASSERT_EQ(real.size(), 4u);
  EXPECT_EQ(real[0].name, "orkut-sim");
  EXPECT_EQ(real[3].name, "friendster-sim");
  const auto roll = roll_datasets();
  ASSERT_EQ(roll.size(), 4u);
  EXPECT_EQ(roll[0].name, "roll-d40");
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW(load_dataset("no-such-graph", 1.0), std::invalid_argument);
  EXPECT_THROW(load_dataset("roll-d41", 1.0), std::invalid_argument);
}

TEST(Datasets, OrkutSimHasHighAverageDegree) {
  const auto g = load_dataset("orkut-sim", kTestScale);
  const auto s = compute_stats(g);
  EXPECT_NEAR(s.avg_degree, 76, 15);
  EXPECT_NO_THROW(g.validate());
}

TEST(Datasets, WebbaseSimIsSparseAndSkewed) {
  const auto g = load_dataset("webbase-sim", kTestScale);
  const auto s = compute_stats(g);
  EXPECT_LT(s.avg_degree, 15);
  EXPECT_GT(s.max_degree, 20 * s.avg_degree);
}

TEST(Datasets, TwitterSimIsSkewed) {
  const auto g = load_dataset("twitter-sim", kTestScale);
  const auto s = compute_stats(g);
  EXPECT_GT(s.max_degree, 10 * s.avg_degree);
}

TEST(Datasets, RollDegreesMatchNames) {
  for (const int d : {40, 80}) {
    const auto g = load_dataset("roll-d" + std::to_string(d), kTestScale);
    const auto s = compute_stats(g);
    EXPECT_NEAR(s.avg_degree, d, d * 0.15) << "roll-d" << d;
  }
}

TEST(Datasets, RollGraphsShareTheEdgeBudget) {
  const auto a = compute_stats(load_dataset("roll-d40", kTestScale));
  const auto b = compute_stats(load_dataset("roll-d80", kTestScale));
  // Same |E| by design (Table 2), within generator slack.
  const double ratio = static_cast<double>(a.num_edges) /
                       static_cast<double>(b.num_edges);
  EXPECT_NEAR(ratio, 1.0, 0.2);
}

TEST(Datasets, ScaleGrowsTheGraph) {
  const auto small = load_dataset("livejournal-sim", 0.02);
  const auto large = load_dataset("livejournal-sim", 0.06);
  EXPECT_GT(large.num_edges(), 2 * small.num_edges());
}

TEST(Datasets, CachedLoadIsIdentical) {
  // Second load must hit the binary cache and reproduce the same graph.
  const auto first = load_dataset("twitter-sim", kTestScale);
  const auto second = load_dataset("twitter-sim", kTestScale);
  EXPECT_EQ(first.offsets(), second.offsets());
  EXPECT_EQ(first.dst(), second.dst());
}

}  // namespace
}  // namespace ppscan
