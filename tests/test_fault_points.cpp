// Unit tests for the fault-point registry (util/fault_point.hpp): arming,
// env-style parsing, the probability/skip/max gates, determinism of the
// per-site RNG, and counter bookkeeping. Most tests GTEST_SKIP in default
// builds — the macro compiles to ((void)0) with PPSCAN_FAULTS=OFF, which
// the first test asserts directly.
#include "util/fault_point.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

namespace ppscan {
namespace {

/// Hits `site` once and reports whether it threw (any type).
bool hit_fires(const char* site) {
  (void)site;  // the macro compiles away with PPSCAN_FAULTS=OFF
  try {
    PPSCAN_FAULT_POINT(site);
  } catch (...) {
    return true;
  }
  return false;
}

TEST(FaultPoints, CompiledOutBuildsAreInert) {
  if (fault::compiled_in()) GTEST_SKIP() << "PPSCAN_FAULTS=ON build";
  // Arming is accepted (the stubs keep callers link-compatible) but the
  // macro is a no-op and nothing ever fires.
  fault::arm("off.site", fault::Spec{});
  EXPECT_FALSE(hit_fires("off.site"));
  EXPECT_EQ(fault::fire_count("off.site"), 0u);
  EXPECT_TRUE(fault::fired_sites().empty());
  EXPECT_EQ(fault::arm_from_string("garbage with no colon"), "");
}

class ArmedFaultPoints : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::compiled_in()) {
      GTEST_SKIP() << "fault points compiled out (PPSCAN_FAULTS=OFF)";
    }
    fault::reset();
  }
  void TearDown() override { fault::reset(); }
};

TEST_F(ArmedFaultPoints, UnarmedSitePassesSilently) {
  EXPECT_FALSE(hit_fires("never.armed"));
  EXPECT_EQ(fault::fire_count("never.armed"), 0u);
}

TEST_F(ArmedFaultPoints, ThrowActionFiresARuntimeErrorNamingTheSite) {
  fault::arm("unit.throw", fault::Spec{});
  try {
    PPSCAN_FAULT_POINT("unit.throw");
    FAIL() << "armed site did not fire";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fault-point unit.throw"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(fault::fire_count("unit.throw"), 1u);
  const auto fired = fault::fired_sites();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], "unit.throw");
}

TEST_F(ArmedFaultPoints, BadAllocActionThrowsBadAlloc) {
  fault::Spec spec;
  spec.action = fault::Action::BadAlloc;
  fault::arm("unit.oom", spec);
  EXPECT_THROW(PPSCAN_FAULT_POINT("unit.oom"), std::bad_alloc);
  EXPECT_EQ(fault::fire_count("unit.oom"), 1u);
}

TEST_F(ArmedFaultPoints, SleepActionBlocksTheCaller) {
  fault::Spec spec;
  spec.action = fault::Action::Sleep;
  spec.sleep_ms = 30;
  fault::arm("unit.sleep", spec);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_NO_THROW(PPSCAN_FAULT_POINT("unit.sleep"));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 25);  // small tolerance for coarse clocks
  EXPECT_EQ(fault::fire_count("unit.sleep"), 1u);
}

TEST_F(ArmedFaultPoints, SkipFirstAndMaxFiresGateTheSite) {
  fault::Spec spec;
  spec.skip_first = 2;
  spec.max_fires = 1;
  fault::arm("unit.window", spec);
  EXPECT_FALSE(hit_fires("unit.window"));  // skipped
  EXPECT_FALSE(hit_fires("unit.window"));  // skipped
  EXPECT_TRUE(hit_fires("unit.window"));   // fires
  EXPECT_FALSE(hit_fires("unit.window"));  // max_fires reached
  EXPECT_EQ(fault::fire_count("unit.window"), 1u);
}

TEST_F(ArmedFaultPoints, ProbabilityDrawIsDeterministicPerSeed) {
  fault::Spec spec;
  spec.probability = 0.5;
  spec.seed = 1234;
  const auto pattern = [&] {
    fault::arm("unit.coin", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(hit_fires("unit.coin"));
    return fired;
  };
  const auto first = pattern();
  const auto second = pattern();  // re-arming reseeds the site RNG
  EXPECT_EQ(first, second);
  // A fair-ish coin over 64 draws fires at least once and passes at least
  // once; anything else means the gate is stuck.
  std::size_t fires = 0;
  for (const bool f : first) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, first.size());
}

TEST_F(ArmedFaultPoints, ArmFromStringArmsEveryEntry) {
  const auto err = fault::arm_from_string(
      "list.a:throw;list.b:sleep-ms=1:max=1;list.c:bad-alloc:skip=1");
  ASSERT_EQ(err, "");
  EXPECT_TRUE(hit_fires("list.a"));
  EXPECT_FALSE(hit_fires("list.c"));  // skip=1 lets the first hit pass
  EXPECT_TRUE(hit_fires("list.c"));
  EXPECT_NO_THROW(PPSCAN_FAULT_POINT("list.b"));
  EXPECT_FALSE(hit_fires("list.b"));  // max=1 spent
  EXPECT_EQ(fault::fire_count("list.b"), 1u);
}

TEST_F(ArmedFaultPoints, ArmFromStringReportsTheFirstParseError) {
  EXPECT_NE(fault::arm_from_string("no-colon-at-all"), "");
  EXPECT_NE(fault::arm_from_string("site:frobnicate"), "");
  EXPECT_NE(fault::arm_from_string("site:throw:p=2.0"), "");
  EXPECT_NE(fault::arm_from_string("site:throw:p=abc"), "");
  EXPECT_NE(fault::arm_from_string("site:throw:mystery=1"), "");
  EXPECT_NE(fault::arm_from_string("site:"), "");
  // Nothing half-armed from the failed lists.
  EXPECT_FALSE(hit_fires("site"));
}

TEST_F(ArmedFaultPoints, ResetDisarmsAndZeroesCounters) {
  fault::arm("unit.reset", fault::Spec{});
  EXPECT_TRUE(hit_fires("unit.reset"));
  fault::reset();
  EXPECT_FALSE(hit_fires("unit.reset"));
  EXPECT_EQ(fault::fire_count("unit.reset"), 0u);
  EXPECT_TRUE(fault::fired_sites().empty());
}

}  // namespace
}  // namespace ppscan
