// Golden regression anchors.
//
// Every generator and algorithm in the library is deterministic, so these
// exact outputs — cluster census and intersection counts on fixed
// (graph, seed, ε, µ) points — must never drift. A change here means either
// the PRNG stream, a generator, the similarity arithmetic, or a pruning
// rule changed semantics; all of those invalidate cached datasets and
// published numbers and deserve a deliberate decision, not a silent pass.
#include <gtest/gtest.h>

#include "core/ppscan.hpp"
#include "graph/generators.hpp"

namespace ppscan {
namespace {

struct Census {
  std::uint64_t cores;
  std::size_t clusters;
  std::size_t memberships;
  std::uint64_t invocations;
};

Census census(const CsrGraph& g, const char* eps, std::uint32_t mu) {
  const auto run = ppscan(g, ScanParams::make(eps, mu));
  return {run.result.num_cores(), run.result.num_clusters(),
          run.result.noncore_memberships.size(),
          run.stats.compsim_invocations};
}

void expect_census(const Census& got, const Census& want) {
  EXPECT_EQ(got.cores, want.cores);
  EXPECT_EQ(got.clusters, want.clusters);
  EXPECT_EQ(got.memberships, want.memberships);
  EXPECT_EQ(got.invocations, want.invocations);
}

TEST(GoldenRegression, ErdosRenyi500) {
  const auto g = erdos_renyi(500, 3000, 42);
  // Sparse uniform graphs have almost no triangles: no cores is correct.
  expect_census(census(g, "0.3", 3), {0, 0, 0, 2718});
  expect_census(census(g, "0.5", 3), {0, 0, 0, 2698});
}

TEST(GoldenRegression, LfrCommunity1000) {
  LfrParams p;
  p.n = 1000;
  p.avg_degree = 16;
  p.mixing = 0.2;
  const auto g = lfr_like(p, 7);
  expect_census(census(g, "0.4", 4), {46, 6, 13, 6679});
  expect_census(census(g, "0.6", 4), {17, 2, 12, 6718});
}

TEST(GoldenRegression, Rmat4096) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 8;
  const auto g = rmat(p, 5);
  expect_census(census(g, "0.5", 5), {0, 0, 0, 11426});
}

TEST(GoldenRegression, GeneratorEdgeCountsPinned) {
  EXPECT_EQ(erdos_renyi(500, 3000, 42).num_edges(), 3000u);
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 8;
  EXPECT_EQ(rmat(p, 5).num_edges(), 26720u);
  LfrParams q;
  q.n = 1000;
  q.avg_degree = 16;
  q.mixing = 0.2;
  EXPECT_EQ(lfr_like(q, 7).num_edges(), 7949u);
}

}  // namespace
}  // namespace ppscan
