// Unit tests for the governance primitives: CancelToken trip semantics,
// RunGovernor deadline/budget/phase bookkeeping, and the abort taxonomy.
#include "concurrent/run_governor.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace ppscan {
namespace {

using std::chrono::milliseconds;

TEST(CancelToken, FirstTripWinsAndLaterTripsAreIgnored) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), AbortReason::None);

  EXPECT_TRUE(token.trip(AbortReason::UserCancelled));
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), AbortReason::UserCancelled);

  // A later deadline trip must not overwrite the root cause.
  EXPECT_FALSE(token.trip(AbortReason::DeadlineExpired));
  EXPECT_EQ(token.reason(), AbortReason::UserCancelled);

  token.reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.trip(AbortReason::DeadlineExpired));
  EXPECT_EQ(token.reason(), AbortReason::DeadlineExpired);
}

TEST(RunGovernor, UngovernedDefaultsNeverStop) {
  RunGovernor governor;
  EXPECT_FALSE(governor.should_stop());
  EXPECT_FALSE(governor.poll_deadline());
  for (int i = 0; i < 5000; ++i) EXPECT_FALSE(governor.checkpoint());
  // No budget: any charge succeeds but is still accounted.
  EXPECT_TRUE(governor.try_charge(1ull << 40, "huge"));
  EXPECT_EQ(governor.bytes_charged(), 1ull << 40);
  EXPECT_EQ(governor.peak_bytes(), 1ull << 40);
  EXPECT_EQ(governor.abort_info().reason, AbortReason::None);
}

TEST(RunGovernor, ExternalTokenIsSharedAndLabeledWithCurrentPhase) {
  CancelToken token;
  RunGovernor governor(RunLimits{}, &token);
  governor.enter_phase("CheckCore");
  EXPECT_FALSE(governor.should_stop());

  // External trip (the signal-handler path): the trip site cannot name a
  // phase, so abort_info falls back to the phase active at report time.
  token.trip(AbortReason::UserCancelled);
  EXPECT_TRUE(governor.should_stop());
  EXPECT_TRUE(governor.checkpoint());
  const RunAborted info = governor.abort_info();
  EXPECT_EQ(info.reason, AbortReason::UserCancelled);
  EXPECT_EQ(info.phase, "CheckCore");
}

TEST(RunGovernor, DeadlineTripsOnPoll) {
  RunLimits limits;
  limits.deadline = milliseconds(5);
  RunGovernor governor(limits);
  governor.enter_phase("PruneSim");
  EXPECT_FALSE(governor.poll_deadline());
  std::this_thread::sleep_for(milliseconds(10));
  EXPECT_TRUE(governor.poll_deadline());
  const RunAborted info = governor.abort_info();
  EXPECT_EQ(info.reason, AbortReason::DeadlineExpired);
  EXPECT_EQ(info.phase, "PruneSim");
  EXPECT_NE(info.describe().find("deadline-expired"), std::string::npos);
}

TEST(RunGovernor, ChargeAccountingTracksPeakAndUncharge) {
  RunLimits limits;
  limits.memory_budget_bytes = 1000;
  RunGovernor governor(limits);
  EXPECT_TRUE(governor.try_charge(600, "a"));
  EXPECT_TRUE(governor.try_charge(300, "b"));
  EXPECT_EQ(governor.bytes_charged(), 900u);
  governor.uncharge(600);
  EXPECT_EQ(governor.bytes_charged(), 300u);
  // Peak is high-water, not current.
  EXPECT_EQ(governor.peak_bytes(), 900u);
  // Room freed by the uncharge is usable again.
  EXPECT_TRUE(governor.try_charge(600, "c"));
  EXPECT_FALSE(governor.should_stop());
}

TEST(RunGovernor, OvershootTripsBudgetAndRollsBackTheCharge) {
  RunLimits limits;
  limits.memory_budget_bytes = 1000;
  RunGovernor governor(limits);
  governor.enter_phase("Alloc");
  EXPECT_TRUE(governor.try_charge(900, "fits"));
  EXPECT_FALSE(governor.try_charge(200, "overshoots"));
  EXPECT_TRUE(governor.should_stop());
  // The failed charge must not stay on the books.
  EXPECT_EQ(governor.bytes_charged(), 900u);
  const RunAborted info = governor.abort_info();
  EXPECT_EQ(info.reason, AbortReason::BudgetExceeded);
  EXPECT_EQ(info.bytes, 200u);
  EXPECT_EQ(info.phase, "Alloc");
  EXPECT_NE(info.describe().find("200 bytes requested"), std::string::npos);
}

TEST(RunGovernor, BadAllocRecordsBudgetTripWithoutAnExplicitBudget) {
  RunGovernor governor;  // no budget set
  governor.enter_phase("SimArray");
  governor.record_alloc_failure(1ull << 44, "sim array");
  EXPECT_TRUE(governor.should_stop());
  const RunAborted info = governor.abort_info();
  EXPECT_EQ(info.reason, AbortReason::BudgetExceeded);
  EXPECT_EQ(info.bytes, 1ull << 44);
  EXPECT_EQ(info.phase, "SimArray");
}

TEST(RunGovernor, PhaseBookkeepingCountsOnlyFinishedPhases) {
  RunGovernor governor;
  EXPECT_EQ(governor.phase_ordinal(), 0);
  EXPECT_STREQ(governor.current_phase(), "");
  governor.enter_phase("One");
  governor.finish_phase();
  governor.enter_phase("Two");
  EXPECT_EQ(governor.phase_ordinal(), 2);
  EXPECT_EQ(governor.phases_completed(), 1);
  EXPECT_STREQ(governor.current_phase(), "Two");
}

TEST(RunGovernor, CancelAtPhaseHookTripsOnEntry) {
  RunLimits limits;
  limits.cancel_at_phase = 2;
  EXPECT_TRUE(limits.any_set());
  RunGovernor governor(limits);

  governor.enter_phase("One");
  EXPECT_FALSE(governor.should_stop()) << "phases before the hook run";
  governor.finish_phase();

  governor.enter_phase("Two");
  EXPECT_TRUE(governor.should_stop()) << "hook trips on entering phase 2";
  const RunAborted info = governor.abort_info();
  EXPECT_EQ(info.reason, AbortReason::UserCancelled);
  EXPECT_EQ(info.phase, "Two");
  EXPECT_EQ(governor.phases_completed(), 1);
}

TEST(RunGovernor, StallRecordNamesWorkerAndPhase) {
  RunLimits limits;
  limits.stall_timeout = milliseconds(50);
  RunGovernor governor(limits);
  EXPECT_TRUE(governor.supervised());
  EXPECT_TRUE(governor.watchdog_enabled());
  governor.enter_phase("ClusterCore");
  governor.record_stall(3);
  const RunAborted info = governor.abort_info();
  EXPECT_EQ(info.reason, AbortReason::Stalled);
  EXPECT_EQ(info.worker, 3);
  EXPECT_EQ(info.phase, "ClusterCore");
  EXPECT_NE(info.describe().find("worker 3"), std::string::npos);
}

TEST(RunGovernor, DefaultLimitsGovernNothing) {
  RunLimits limits;
  EXPECT_FALSE(limits.any_set());
  RunGovernor governor(limits);
  EXPECT_FALSE(governor.supervised());
  EXPECT_FALSE(governor.watchdog_enabled());
}

}  // namespace
}  // namespace ppscan
