// Differential fuzzing: random graphs × random (ε, µ) × every algorithm,
// every kernel, the GS*-Index, and permutation-equivariance — all checked
// against the brute-force oracle in one loop. Catches interaction bugs the
// per-module suites cannot (e.g. a kernel edge case that only appears with
// a particular pruning state).
#include <gtest/gtest.h>

#include "bench_support/algorithms.hpp"
#include "core/ppscan.hpp"
#include "graph/generators.hpp"
#include "index/gs_index.hpp"
#include "scan/relabel.hpp"
#include "support/reference_scan.hpp"
#include "util/rng.hpp"

namespace ppscan {
namespace {

CsrGraph random_graph(Rng& rng) {
  switch (rng.next_below(4)) {
    case 0: {
      const auto n = static_cast<VertexId>(20 + rng.next_below(150));
      const EdgeId max_m = static_cast<EdgeId>(n) * (n - 1) / 2;
      const EdgeId m = 1 + rng.next_below(std::min<EdgeId>(max_m, n * 6));
      return erdos_renyi(n, m, rng.next_u64());
    }
    case 1: {
      const auto m = static_cast<VertexId>(1 + rng.next_below(6));
      const auto n = static_cast<VertexId>(m + 2 + rng.next_below(150));
      return barabasi_albert(n, m, rng.next_u64());
    }
    case 2: {
      RmatParams p;
      p.scale = 6 + static_cast<int>(rng.next_below(3));
      p.edge_factor = 2 + static_cast<double>(rng.next_below(8));
      return rmat(p, rng.next_u64());
    }
    default: {
      LfrParams p;
      p.n = static_cast<VertexId>(60 + rng.next_below(200));
      p.avg_degree = 4 + static_cast<double>(rng.next_below(16));
      p.mixing = 0.05 + 0.4 * rng.next_double();
      p.min_community = 5;
      p.max_community = 50;
      return lfr_like(p, rng.next_u64());
    }
  }
}

ScanParams random_params(Rng& rng) {
  // Random rational ε in (0,1] with denominators that produce awkward
  // thresholds (ties, near-integers).
  const std::uint64_t den = 2 + rng.next_below(999);
  const std::uint64_t num = 1 + rng.next_below(den);
  ScanParams params;
  params.eps = {num, den};
  params.mu = static_cast<std::uint32_t>(1 + rng.next_below(8));
  return params;
}

TEST(DifferentialFuzz, AllImplementationsAgreeWithTheOracle) {
  Rng rng(0xf0226d);
  constexpr int kRounds = 80;
  for (int round = 0; round < kRounds; ++round) {
    const auto graph = random_graph(rng);
    const auto params = random_params(rng);
    const auto expected = testing::reference_scan(graph, params);
    const std::string context =
        "round " + std::to_string(round) + " |V|=" +
        std::to_string(graph.num_vertices()) + " |E|=" +
        std::to_string(graph.num_edges()) + " eps=" +
        std::to_string(params.eps.num) + "/" + std::to_string(params.eps.den) +
        " mu=" + std::to_string(params.mu);

    AlgorithmConfig config;
    config.num_threads = 1 + static_cast<int>(rng.next_below(6));
    for (const auto& name : algorithm_names()) {
      const auto run = run_algorithm(name, graph, params, config);
      ASSERT_TRUE(results_equivalent(expected, run.result))
          << name << " @ " << context << ": "
          << describe_result_difference(expected, run.result);
    }

    // Every intersection kernel through ppSCAN.
    for (const auto kind :
         {IntersectKind::MergeEarlyStop, IntersectKind::PivotScalar,
          IntersectKind::PivotAvx2, IntersectKind::PivotAvx512}) {
      if (!kernel_supported(kind)) continue;
      PpScanOptions options;
      options.num_threads = config.num_threads;
      options.kernel = kind;
      options.use_reverse_index = (round % 2) == 0;
      const auto run = ppscan(graph, params, options);
      ASSERT_TRUE(results_equivalent(expected, run.result))
          << "ppSCAN/" << to_string(kind) << " @ " << context;
    }

    // Index queries.
    const GsIndex index(graph);
    ASSERT_TRUE(results_equivalent(expected, index.query(params).result))
        << "GsIndex @ " << context;

    // Permutation equivariance through a random relabeling.
    std::vector<VertexId> perm(graph.num_vertices());
    for (VertexId i = 0; i < graph.num_vertices(); ++i) perm[i] = i;
    for (VertexId i = graph.num_vertices(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.next_below(i)]);
    }
    const auto relabeling = make_relabeling(std::move(perm));
    const auto relabeled_run =
        ppscan(apply_relabeling(graph, relabeling), params);
    const auto mapped =
        map_result_to_original(relabeled_run.result, relabeling);
    ASSERT_TRUE(results_equivalent(expected, mapped))
        << "relabeled ppSCAN @ " << context;
  }
}

}  // namespace
}  // namespace ppscan
