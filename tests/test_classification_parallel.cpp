#include "scan/classification.hpp"

#include <gtest/gtest.h>

#include "core/ppscan.hpp"
#include "graph/generators.hpp"
#include "support/random_graphs.hpp"

namespace ppscan {
namespace {

TEST(ClassificationParallel, MatchesSequentialOnPropertySuite) {
  for (const auto& g : testing::property_test_graphs(9001, 2)) {
    for (const auto& params : testing::parameter_grid()) {
      const auto run = ppscan(g, params);
      const auto sequential = classify_hubs_outliers(g, run.result);
      for (const int threads : {1, 4}) {
        const auto parallel =
            classify_hubs_outliers_parallel(g, run.result, threads);
        ASSERT_EQ(parallel, sequential)
            << "threads=" << threads << " eps=" << params.eps.to_double()
            << " mu=" << params.mu;
      }
    }
  }
}

TEST(ClassificationParallel, LargeCommunityGraph) {
  LfrParams p;
  p.n = 5000;
  p.avg_degree = 16;
  p.mixing = 0.35;
  const auto g = lfr_like(p, 17);
  const auto run = ppscan(g, ScanParams::make("0.5", 4));
  const auto sequential = classify_hubs_outliers(g, run.result);
  const auto parallel = classify_hubs_outliers_parallel(g, run.result, 8);
  EXPECT_EQ(parallel, sequential);
}

TEST(ClassificationParallel, AllOutliersWhenNoClusters) {
  const auto g = erdos_renyi(200, 400, 3);
  ScanResult empty;
  empty.roles.assign(g.num_vertices(), Role::NonCore);
  empty.core_cluster_id.assign(g.num_vertices(), kInvalidVertex);
  const auto classes = classify_hubs_outliers_parallel(g, empty, 4);
  for (const auto c : classes) EXPECT_EQ(c, VertexClass::Outlier);
}

}  // namespace
}  // namespace ppscan
