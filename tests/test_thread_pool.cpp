#include "concurrent/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <vector>

namespace ppscan {
namespace {

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleIsABarrier) {
  ThreadPool pool(2);
  std::atomic<bool> slow_done{false};
  pool.submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    slow_done.store(true);
  });
  pool.wait_idle();
  EXPECT_TRUE(slow_done.load());
}

TEST(ThreadPool, ReusableAcrossPhases) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int phase = 0; phase < 5; ++phase) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (phase + 1) * 20);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 30; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
    // No wait_idle: the destructor must let queued tasks finish, not drop
    // them, because phases rely on submitted work eventually running.
  }
  EXPECT_EQ(counter.load(), 30);
}

TEST(ThreadPool, TasksCanSubmitNestedWork) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ManyTasksAcrossManyThreads) {
  ThreadPool pool(8);
  std::atomic<std::uint64_t> sum{0};
  constexpr int kTasks = 2000;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(static_cast<std::uint64_t>(i)); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(),
            static_cast<std::uint64_t>(kTasks) * (kTasks - 1) / 2);
}

}  // namespace
}  // namespace ppscan
