#include "graph/fixtures.hpp"

#include <gtest/gtest.h>

namespace ppscan {
namespace {

TEST(Fixtures, Clique) {
  const auto g = make_clique(7);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 21u);
  for (VertexId u = 0; u < 7; ++u) EXPECT_EQ(g.degree(u), 6u);
  EXPECT_NO_THROW(g.validate());
}

TEST(Fixtures, Path) {
  const auto g = make_path(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.degree(4), 1u);
}

TEST(Fixtures, Cycle) {
  const auto g = make_cycle(6);
  EXPECT_EQ(g.num_edges(), 6u);
  for (VertexId u = 0; u < 6; ++u) EXPECT_EQ(g.degree(u), 2u);
  EXPECT_TRUE(g.has_edge(5, 0));
  EXPECT_THROW(make_cycle(2), std::invalid_argument);
}

TEST(Fixtures, Star) {
  const auto g = make_star(8);
  EXPECT_EQ(g.degree(0), 7u);
  for (VertexId u = 1; u < 8; ++u) EXPECT_EQ(g.degree(u), 1u);
}

TEST(Fixtures, TwoCliquesBridge) {
  const auto g = make_two_cliques_bridge(4);
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 2u * 6 + 1);
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_FALSE(g.has_edge(0, 7));
}

TEST(Fixtures, CliqueChain) {
  const auto g = make_clique_chain(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 6 + 2);
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_TRUE(g.has_edge(7, 8));
  EXPECT_FALSE(g.has_edge(3, 8));
}

TEST(Fixtures, ScanPaperExampleShape) {
  const auto g = make_scan_paper_example();
  EXPECT_EQ(g.num_vertices(), 14u);
  EXPECT_NO_THROW(g.validate());
  // Vertex 6 bridges the groups; vertex 13 hangs off vertex 12.
  EXPECT_TRUE(g.has_edge(5, 6));
  EXPECT_TRUE(g.has_edge(6, 7));
  EXPECT_EQ(g.degree(13), 1u);
}

}  // namespace
}  // namespace ppscan
