#include "concurrent/task_scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace ppscan {
namespace {

struct Harness {
  explicit Harness(VertexId n) : visited(n) {
    for (auto& v : visited) v.store(0);
  }
  std::vector<std::atomic<int>> visited;
};

TEST(TaskScheduler, VisitsEveryVertexExactlyOnce) {
  constexpr VertexId n = 10000;
  ThreadPool pool(4);
  Harness h(n);
  schedule_vertex_tasks(
      pool, n, [](VertexId) { return 10; }, [](VertexId) { return true; },
      [&](VertexId u) { h.visited[u].fetch_add(1); });
  for (VertexId u = 0; u < n; ++u) {
    EXPECT_EQ(h.visited[u].load(), 1) << "vertex " << u;
  }
}

TEST(TaskScheduler, SkipsVerticesNotNeedingWork) {
  constexpr VertexId n = 1000;
  ThreadPool pool(2);
  Harness h(n);
  schedule_vertex_tasks(
      pool, n, [](VertexId) { return 1; },
      [](VertexId u) { return u % 3 == 0; },
      [&](VertexId u) { h.visited[u].fetch_add(1); });
  for (VertexId u = 0; u < n; ++u) {
    EXPECT_EQ(h.visited[u].load(), u % 3 == 0 ? 1 : 0);
  }
}

TEST(TaskScheduler, DegreeThresholdControlsTaskCount) {
  constexpr VertexId n = 1024;
  ThreadPool pool(2);
  SchedulerOptions options;
  options.kind = SchedulerKind::DegreeSum;
  options.degree_threshold = 100;
  Harness h(n);
  const auto stats = schedule_vertex_tasks(
      pool, n, [](VertexId) { return 10; }, [](VertexId) { return true; },
      [&](VertexId u) { h.visited[u].fetch_add(1); }, options);
  // 1024 vertices of degree 10 → a task every ~11 vertices.
  EXPECT_GE(stats.tasks_submitted, 80u);
  EXPECT_LE(stats.tasks_submitted, 110u);
}

TEST(TaskScheduler, HighDegreeVertexGetsItsOwnTask) {
  // One huge-degree vertex must immediately flush a task.
  constexpr VertexId n = 10;
  ThreadPool pool(2);
  SchedulerOptions options;
  options.degree_threshold = 100;
  std::atomic<std::uint64_t> count{0};
  const auto stats = schedule_vertex_tasks(
      pool, n, [](VertexId u) { return u == 5 ? 1000u : 1u; },
      [](VertexId) { return true; }, [&](VertexId) { count.fetch_add(1); },
      options);
  EXPECT_EQ(count.load(), n);
  EXPECT_GE(stats.tasks_submitted, 2u);
}

TEST(TaskScheduler, StaticRangePolicyCoversAllVertices) {
  constexpr VertexId n = 997;  // prime, to catch off-by-one in range math
  ThreadPool pool(4);
  SchedulerOptions options;
  options.kind = SchedulerKind::StaticRange;
  Harness h(n);
  const auto stats = schedule_vertex_tasks(
      pool, n, [](VertexId) { return 1; }, [](VertexId) { return true; },
      [&](VertexId u) { h.visited[u].fetch_add(1); }, options);
  for (VertexId u = 0; u < n; ++u) EXPECT_EQ(h.visited[u].load(), 1);
  EXPECT_EQ(stats.tasks_submitted, 4u);
}

TEST(TaskScheduler, FixedChunkPolicyCoversAllVertices) {
  constexpr VertexId n = 1000;
  ThreadPool pool(4);
  SchedulerOptions options;
  options.kind = SchedulerKind::FixedChunk;
  options.chunk_size = 64;
  Harness h(n);
  const auto stats = schedule_vertex_tasks(
      pool, n, [](VertexId) { return 1; }, [](VertexId) { return true; },
      [&](VertexId u) { h.visited[u].fetch_add(1); }, options);
  for (VertexId u = 0; u < n; ++u) EXPECT_EQ(h.visited[u].load(), 1);
  EXPECT_EQ(stats.tasks_submitted, (n + 63) / 64);
}

TEST(TaskScheduler, EmptyVertexRange) {
  ThreadPool pool(2);
  const auto stats = schedule_vertex_tasks(
      pool, 0, [](VertexId) { return 1; }, [](VertexId) { return true; },
      [](VertexId) { FAIL() << "no vertex should be visited"; });
  EXPECT_EQ(stats.tasks_submitted, 0u);
}

TEST(TaskScheduler, NothingNeedsWork) {
  ThreadPool pool(2);
  std::atomic<int> visits{0};
  schedule_vertex_tasks(
      pool, 100, [](VertexId) { return 1; }, [](VertexId) { return false; },
      [&](VertexId) { visits.fetch_add(1); });
  EXPECT_EQ(visits.load(), 0);
}

TEST(TaskScheduler, PredicateReTestedInsideTask) {
  // A vertex whose predicate flips between bundling and execution is
  // skipped by the worker-side re-test (vertices settled by other tasks).
  constexpr VertexId n = 100;
  ThreadPool pool(1);
  std::vector<std::atomic<bool>> todo(n);
  for (auto& t : todo) t.store(true);
  std::atomic<int> visits{0};
  schedule_vertex_tasks(
      pool, n, [](VertexId) { return 1; },
      [&](VertexId u) { return todo[u].load(); },
      [&](VertexId u) {
        visits.fetch_add(1);
        // Settle the next 5 vertices, emulating role propagation.
        for (VertexId v = u + 1; v < std::min<VertexId>(u + 6, n); ++v) {
          todo[v].store(false);
        }
      });
  // Every visited vertex was still pending; far fewer than n visits happen.
  EXPECT_GT(visits.load(), 0);
  EXPECT_LE(visits.load(), static_cast<int>(n));
}

TEST(TaskScheduler, OmpDynamicPolicyCoversAllVertices) {
  constexpr VertexId n = 997;
  ThreadPool pool(4);
  SchedulerOptions options;
  options.kind = SchedulerKind::OmpDynamic;
  Harness h(n);
  schedule_vertex_tasks(
      pool, n, [](VertexId) { return 1; },
      [](VertexId u) { return u % 2 == 0; },
      [&](VertexId u) { h.visited[u].fetch_add(1); }, options);
  for (VertexId u = 0; u < n; ++u) {
    EXPECT_EQ(h.visited[u].load(), u % 2 == 0 ? 1 : 0);
  }
}

TEST(TaskScheduler, ExecutorRuntimeVisitsEveryVertexExactlyOnce) {
  constexpr VertexId n = 10000;
  Executor executor(4);
  Harness h(n);
  for (const auto kind : {SchedulerKind::DegreeSum, SchedulerKind::StaticRange,
                          SchedulerKind::FixedChunk}) {
    for (auto& v : h.visited) v.store(0);
    SchedulerOptions options;
    options.kind = kind;
    options.degree_threshold = 100;
    schedule_vertex_tasks(
        executor, n, [](VertexId) { return 10; },
        [](VertexId) { return true; },
        [&](VertexId u) { h.visited[u].fetch_add(1); }, options);
    for (VertexId u = 0; u < n; ++u) {
      ASSERT_EQ(h.visited[u].load(), 1)
          << "vertex " << u << " kind " << to_string(kind);
    }
  }
}

TEST(TaskScheduler, ExecutorRuntimeReusesScratch) {
  constexpr VertexId n = 5000;
  Executor executor(4);
  std::vector<TaskRange> scratch;
  Harness h(n);
  for (int round = 0; round < 3; ++round) {
    for (auto& v : h.visited) v.store(0);
    SchedulerOptions options;
    options.degree_threshold = 50;
    const auto stats = schedule_vertex_tasks(
        executor, n, [](VertexId) { return 5; },
        [](VertexId) { return true; },
        [&](VertexId u) { h.visited[u].fetch_add(1); }, options, &scratch);
    EXPECT_GT(stats.tasks_submitted, 1u);
    EXPECT_EQ(scratch.size(), stats.tasks_submitted);
    for (VertexId u = 0; u < n; ++u) ASSERT_EQ(h.visited[u].load(), 1);
  }
}

TEST(TaskScheduler, ExecutorRuntimeOmpDynamicBypass) {
  constexpr VertexId n = 997;
  Executor executor(4);
  SchedulerOptions options;
  options.kind = SchedulerKind::OmpDynamic;
  Harness h(n);
  schedule_vertex_tasks(
      executor, n, [](VertexId) { return 1; },
      [](VertexId u) { return u % 2 == 0; },
      [&](VertexId u) { h.visited[u].fetch_add(1); }, options);
  for (VertexId u = 0; u < n; ++u) {
    EXPECT_EQ(h.visited[u].load(), u % 2 == 0 ? 1 : 0);
  }
}

TEST(TaskScheduler, StaticRangeEmptyVertexRange) {
  // n == 0 must produce no tasks and no zero-width ranges on either
  // runtime (the static-range width math is where the division/stride
  // hazards live; see bundle_ranges).
  SchedulerOptions options;
  options.kind = SchedulerKind::StaticRange;
  {
    ThreadPool pool(4);
    const auto stats = schedule_vertex_tasks(
        pool, 0, [](VertexId) { return 1; }, [](VertexId) { return true; },
        [](VertexId) { FAIL() << "no vertex should be visited"; }, options);
    EXPECT_EQ(stats.tasks_submitted, 0u);
  }
  {
    Executor executor(4);
    const auto stats = schedule_vertex_tasks(
        executor, 0, [](VertexId) { return 1; }, [](VertexId) { return true; },
        [](VertexId) { FAIL() << "no vertex should be visited"; }, options);
    EXPECT_EQ(stats.tasks_submitted, 0u);
  }
}

TEST(TaskScheduler, StaticRangeFewerVerticesThanThreads) {
  // n < num_threads: width clamps to 1, giving n unit tasks — every vertex
  // covered exactly once, no zero-width ranges.
  constexpr VertexId n = 3;
  SchedulerOptions options;
  options.kind = SchedulerKind::StaticRange;
  {
    ThreadPool pool(8);
    Harness h(n);
    const auto stats = schedule_vertex_tasks(
        pool, n, [](VertexId) { return 1; }, [](VertexId) { return true; },
        [&](VertexId u) { h.visited[u].fetch_add(1); }, options);
    for (VertexId u = 0; u < n; ++u) EXPECT_EQ(h.visited[u].load(), 1);
    EXPECT_EQ(stats.tasks_submitted, n);
  }
  {
    Executor executor(8);
    Harness h(n);
    const auto stats = schedule_vertex_tasks(
        executor, n, [](VertexId) { return 1; }, [](VertexId) { return true; },
        [&](VertexId u) { h.visited[u].fetch_add(1); }, options);
    for (VertexId u = 0; u < n; ++u) EXPECT_EQ(h.visited[u].load(), 1);
    EXPECT_EQ(stats.tasks_submitted, n);
  }
}

TEST(SchedulerKindParsing, RoundTrip) {
  for (const auto kind : {SchedulerKind::DegreeSum, SchedulerKind::StaticRange,
                          SchedulerKind::FixedChunk,
                          SchedulerKind::OmpDynamic}) {
    EXPECT_EQ(parse_scheduler_kind(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_scheduler_kind("bogus"), std::invalid_argument);
}

TEST(RuntimeKindParsing, RoundTrip) {
  for (const auto kind : {RuntimeKind::WorkSteal, RuntimeKind::MutexPool}) {
    EXPECT_EQ(parse_runtime_kind(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_runtime_kind("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace ppscan
