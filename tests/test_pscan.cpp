#include "scan/pscan.hpp"

#include <gtest/gtest.h>

#include "graph/fixtures.hpp"
#include "graph/generators.hpp"
#include "graph/graph_builder.hpp"
#include "scan/scan_original.hpp"
#include "support/random_graphs.hpp"
#include "support/reference_scan.hpp"

namespace ppscan {
namespace {

using testing::property_test_graphs;
using testing::reference_scan;

TEST(Pscan, MatchesReferenceOnPropertySuite) {
  for (const auto& g : property_test_graphs(2002)) {
    for (const auto& params : testing::parameter_grid()) {
      const auto expected = reference_scan(g, params);
      const auto run = pscan(g, params);
      EXPECT_TRUE(results_equivalent(expected, run.result))
          << "eps=" << params.eps.to_double() << " mu=" << params.mu << ": "
          << describe_result_difference(expected, run.result);
    }
  }
}

TEST(Pscan, StaticOrderAblationStillExact) {
  PscanOptions options;
  options.dynamic_ed_order = false;
  for (const auto& g : property_test_graphs(2003, 1)) {
    const auto params = ScanParams::make("0.5", 2);
    const auto expected = reference_scan(g, params);
    const auto run = pscan(g, params, options);
    EXPECT_TRUE(results_equivalent(expected, run.result))
        << describe_result_difference(expected, run.result);
  }
}

TEST(Pscan, AnyKernelGivesSameResult) {
  const auto g = property_test_graphs(2004, 1).front();
  const auto params = ScanParams::make("0.4", 2);
  const auto baseline = pscan(g, params);
  for (const auto kind :
       {IntersectKind::PivotScalar, IntersectKind::PivotAvx2,
        IntersectKind::PivotAvx512, IntersectKind::Auto}) {
    if (!kernel_supported(kind)) continue;
    PscanOptions options;
    options.kernel = kind;
    const auto run = pscan(g, params, options);
    EXPECT_TRUE(results_equivalent(baseline.result, run.result))
        << to_string(kind);
  }
}

TEST(Pscan, PrunesWorkComparedToScan) {
  // On a community graph with moderate ε, pSCAN must intersect far fewer
  // arcs than exhaustive SCAN (Figure 1's motivation).
  LfrParams p;
  p.n = 2000;
  p.avg_degree = 24;
  p.mixing = 0.2;
  const auto g = lfr_like(p, 99);
  const auto params = ScanParams::make("0.6", 5);
  const auto scan_run = scan_original(g, params);
  const auto pscan_run = pscan(g, params);
  ASSERT_TRUE(results_equivalent(scan_run.result, pscan_run.result));
  EXPECT_LT(pscan_run.stats.compsim_invocations,
            scan_run.stats.compsim_invocations / 2);
}

TEST(Pscan, InvocationsNeverExceedEdgeCount) {
  // Similarity reuse guarantees at most one intersection per edge.
  for (const auto& g : property_test_graphs(2005, 1)) {
    for (const auto& params : testing::parameter_grid()) {
      const auto run = pscan(g, params);
      EXPECT_LE(run.stats.compsim_invocations, g.num_edges());
    }
  }
}

TEST(Pscan, CliqueNeedsAlmostNoComputation) {
  // All-equal degrees in a clique at small ε: the required overlap is ≤ 2,
  // so predicate pruning decides every edge without a single intersection.
  const auto g = make_clique(32);
  const auto run = pscan(g, ScanParams::make("0.05", 2));
  EXPECT_EQ(run.stats.compsim_invocations, 0u);
  EXPECT_EQ(run.result.num_clusters(), 1u);
}

TEST(Pscan, BreakdownTimersFillWhenRequested) {
  PscanOptions options;
  options.collect_breakdown = true;
  LfrParams p;
  p.n = 500;
  p.avg_degree = 16;
  const auto g = lfr_like(p, 7);
  const auto run = pscan(g, ScanParams::make("0.5", 4), options);
  EXPECT_GE(run.stats.total_seconds, 0.0);
  // Pruning bookkeeping always runs; similarity may be zero if everything
  // was pruned, but not negative.
  EXPECT_GE(run.stats.similarity_seconds, 0.0);
  EXPECT_GT(run.stats.pruning_seconds, 0.0);
}

TEST(Pscan, EmptyAndTinyGraphs) {
  const auto empty = GraphBuilder::from_edges({}, 2);
  EXPECT_EQ(pscan(empty, ScanParams::make("0.5", 1)).result.num_clusters(),
            0u);
  const auto single_edge = GraphBuilder::from_edges({{0, 1}});
  const auto run = pscan(single_edge, ScanParams::make("0.5", 1));
  // Each endpoint has one ε-similar neighbor (σ = 1 for twin leaves).
  EXPECT_EQ(run.result.num_clusters(), 1u);
}

}  // namespace
}  // namespace ppscan
