#include "util/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ppscan {
namespace {

TEST(Table, PrintsHeaderAndRows) {
  Table table({"dataset", "runtime"});
  table.add_row({"orkut-sim", "1.234"});
  table.add_row({"twitter-sim", "5.678"});
  std::ostringstream os;
  table.print(os, "Figure X");
  const std::string out = os.str();
  EXPECT_NE(out.find("== Figure X =="), std::string::npos);
  EXPECT_NE(out.find("dataset"), std::string::npos);
  EXPECT_NE(out.find("orkut-sim"), std::string::npos);
  EXPECT_NE(out.find("5.678"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table table({"a", "b", "c"});
  table.add_row({"only-one"});
  std::ostringstream os;
  table.print(os, "t");
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(Table, FmtDouble) {
  EXPECT_EQ(Table::fmt(1.23456, 3), "1.235");
  EXPECT_EQ(Table::fmt(2.0, 1), "2.0");
}

TEST(Table, FmtIntegers) {
  EXPECT_EQ(Table::fmt(std::uint64_t{12345}), "12345");
  EXPECT_EQ(Table::fmt(std::int64_t{-7}), "-7");
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table table({"x", "y"});
  table.add_row({"longcellvalue", "1"});
  std::ostringstream os;
  table.print(os, "t");
  // The header row must be padded at least as wide as the longest cell.
  const std::string out = os.str();
  const auto header_pos = out.find("x ");
  ASSERT_NE(header_pos, std::string::npos);
  const auto newline = out.find('\n', header_pos);
  const auto y_pos = out.find('y', header_pos);
  ASSERT_NE(y_pos, std::string::npos);
  EXPECT_LT(y_pos, newline);
  EXPECT_GE(y_pos - header_pos, std::string("longcellvalue").size());
}

}  // namespace
}  // namespace ppscan
