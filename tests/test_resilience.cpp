// Fault containment & overload resilience (docs/resilience.md).
//
// Three layers under test, adversarially where possible:
//   * The Executor's exception firewall — a throwing task body becomes a
//     classified governed trip (AbortReason::Exception) or, ungoverned, the
//     first exception rethrown at the master's barrier; workers survive and
//     the executor stays reusable either way.
//   * The QueryService's per-query firewall, shedding ladder, circuit
//     breaker and degradation ladder — a poisoned query fails alone while
//     concurrent queries keep returning answers bit-identical to a fresh
//     single-threaded GsIndex::query.
//   * The fault-point chaos harness (PPSCAN_FAULTS=ON builds): per-phase
//     injected throws and a probabilistic soak. Fault-armed tests
//     GTEST_SKIP in default builds; everything else always runs.
//
// Runs under TSan and ASan/UBSan in CI (the `serve` label).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "concurrent/executor.hpp"
#include "concurrent/run_governor.hpp"
#include "graph/generators.hpp"
#include "index/gs_index.hpp"
#include "obs/metrics_json.hpp"
#include "serve/query_service.hpp"
#include "serve/retry_policy.hpp"
#include "serve/serving_metrics.hpp"
#include "util/fault_point.hpp"

namespace ppscan {
namespace {

using serve::AdmissionOutcome;
using serve::QueryResponse;
using serve::QueryService;
using serve::ServiceOptions;

std::vector<TaskRange> unit_ranges(VertexId count) {
  std::vector<TaskRange> tasks;
  tasks.reserve(count);
  for (VertexId i = 0; i < count; ++i) tasks.push_back({i, i + 1});
  return tasks;
}

void expect_identical(const ScanResult& got, const ScanResult& want,
                      const ScanParams& params) {
  const std::string label = "eps=" + std::to_string(params.eps.num) + "/" +
                            std::to_string(params.eps.den) +
                            " mu=" + std::to_string(params.mu);
  ASSERT_EQ(got.roles, want.roles) << label;
  ASSERT_EQ(got.core_cluster_id, want.core_cluster_id) << label;
  ASSERT_EQ(got.noncore_memberships, want.noncore_memberships) << label;
}

// ---------------------------------------------------------------------------
// Executor firewall — no fault points needed, the test supplies the throw.
// ---------------------------------------------------------------------------

TEST(ExecutorFirewall, GovernedThrowBecomesClassifiedTrip) {
  Executor executor(3);
  RunGovernor governor;  // ungoverned limits, but installed: trips classify
  executor.install_governor(&governor);
  const auto tasks = unit_ranges(2000);
  std::atomic<int> ran{0};
  executor.run(tasks.data(), tasks.size(), [&](VertexId beg, VertexId) {
    if (beg == 1017) throw std::runtime_error("poisoned task body");
    ran.fetch_add(1);
  });
  executor.install_governor(nullptr);

  const auto info = governor.abort_info();
  EXPECT_EQ(info.reason, AbortReason::Exception);
  EXPECT_NE(info.detail.find("poisoned task body"), std::string::npos)
      << info.detail;
  const auto stats = executor.stats();
  EXPECT_EQ(stats.tasks_failed, 1u);
  // The trip cancels the run cooperatively: remaining ranges drain as
  // skipped, and the firewall never double-counts the thrower as executed.
  EXPECT_EQ(stats.tasks_executed + stats.tasks_skipped + stats.tasks_failed,
            tasks.size());

  // The executor is reusable after a contained failure.
  std::atomic<int> after{0};
  executor.run(tasks.data(), 100, [&](VertexId, VertexId) {
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), 100);
}

TEST(ExecutorFirewall, UngovernedThrowRethrownAtBarrierAfterSiblings) {
  Executor executor(3);
  constexpr VertexId n = 2000;
  const auto tasks = unit_ranges(n);
  std::vector<std::atomic<int>> visited(n);
  for (auto& v : visited) v.store(0);
  try {
    executor.run(tasks.data(), tasks.size(), [&](VertexId beg, VertexId) {
      if (beg == 421) throw std::runtime_error("ungoverned poison");
      visited[beg].fetch_add(1);
    });
    FAIL() << "wait_idle did not rethrow the task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "ungoverned poison");
  }
  // No governor, so nothing cancels the phase: every sibling ran to
  // completion before the barrier rethrew.
  for (VertexId u = 0; u < n; ++u) {
    if (u == 421) continue;
    ASSERT_EQ(visited[u].load(), 1) << "vertex " << u;
  }
  EXPECT_EQ(executor.stats().tasks_failed, 1u);

  // Reusable: the failure flag was consumed by the rethrow.
  std::atomic<int> after{0};
  executor.run(tasks.data(), 50, [&](VertexId, VertexId) {
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), 50);
}

TEST(ExecutorFirewall, FirstUngovernedFailureWinsWhenSeveralThrow) {
  Executor executor(4);
  const auto tasks = unit_ranges(3000);
  EXPECT_THROW(
      executor.run(tasks.data(), tasks.size(),
                   [&](VertexId beg, VertexId) {
                     if (beg % 500 == 0) {
                       throw std::runtime_error("multi poison");
                     }
                   }),
      std::runtime_error);
  EXPECT_EQ(executor.stats().tasks_failed, 6u);  // 0,500,...,2500 all threw
  // Still alive.
  executor.run(tasks.data(), 10, [&](VertexId, VertexId) {});
}

TEST(ExecutorFirewall, NonStdExceptionIsClassifiedToo) {
  Executor executor(2);
  RunGovernor governor;
  executor.install_governor(&governor);
  const auto tasks = unit_ranges(100);
  executor.run(tasks.data(), tasks.size(), [&](VertexId beg, VertexId) {
    if (beg == 7) throw 42;  // not derived from std::exception
  });
  executor.install_governor(nullptr);
  const auto info = governor.abort_info();
  EXPECT_EQ(info.reason, AbortReason::Exception);
  EXPECT_NE(info.detail.find("non-std"), std::string::npos) << info.detail;
}

// ---------------------------------------------------------------------------
// QueryService resilience — no fault points needed.
// ---------------------------------------------------------------------------

TEST(QueryServiceResilience, StoppedServiceThrowsTypedRefusal) {
  const auto g = erdos_renyi(400, 3200, 31);
  const GsIndex index(g);
  QueryService service(index, ServiceOptions{});
  service.stop();
  const auto params = ScanParams::make("0.5", 2);
  EXPECT_THROW(service.submit(params), serve::ServiceStoppedError);
  std::future<QueryResponse> out;
  EXPECT_THROW(service.try_submit(params, RunLimits{}, &out),
               serve::ServiceStoppedError);
  EXPECT_THROW(service.try_submit_ex(params, RunLimits{}, &out),
               serve::ServiceStoppedError);
}

// Regression for the stop() vs futex-parked producer race: a producer
// blocked on backpressure when stop() lands must be woken and given either
// a delivered future or a ServiceStoppedError — never a hang (the ctest
// TIMEOUT converts a regression into a failure).
TEST(QueryServiceResilience, ParkedProducerIsWokenByStop) {
  const auto g = erdos_renyi(4000, 48000, 37);
  const GsIndex index(g);
  ServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 2;
  options.max_batch = 1;
  options.cache_results = false;
  QueryService service(index, options);

  std::atomic<int> delivered{0};
  std::atomic<int> refused{0};
  std::thread producer([&] {
    std::vector<std::future<QueryResponse>> futures;
    for (int i = 0; i < 64; ++i) {
      ScanParams p;
      p.eps = EpsRational{static_cast<std::uint64_t>(i % 19) + 1, 20};
      p.mu = 2;
      try {
        futures.push_back(service.submit(p));  // parks once the queue fills
      } catch (const serve::ServiceStoppedError&) {
        refused.fetch_add(1);
      }
    }
    for (auto& f : futures) {
      const QueryResponse r = f.get();  // every admitted future resolves
      if (r.run != nullptr) delivered.fetch_add(1);
    }
  });
  // Let the producer hit backpressure (slow multi-ms queries behind a
  // 2-slot queue), then stop underneath it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.stop();
  producer.join();
  EXPECT_GT(delivered.load(), 0);
  EXPECT_EQ(delivered.load() + refused.load(), 64);
  const auto snap = service.snapshot();
  EXPECT_EQ(snap.completed, static_cast<std::uint64_t>(delivered.load()));
}

TEST(QueryServiceResilience, OverloadShedsWithRetryAfterHint) {
  const auto g = erdos_renyi(4000, 48000, 41);
  const GsIndex index(g);
  ServiceOptions options;
  options.num_threads = 1;
  options.max_batch = 1;
  options.cache_results = false;
  options.shed_target_delay = std::chrono::milliseconds(1);
  obs::TraceCollector trace(options.num_threads);
  options.trace = &trace;
  QueryService service(index, options);

  // Feed faster than one worker can drain, pausing briefly every few
  // submissions so the dispatcher gets to drain *something* and publish
  // the observed sojourn — the signal the CoDel gate sheds on. (A pure
  // burst would hit queue-full before the first sojourn update.)
  std::vector<std::future<QueryResponse>> admitted;
  std::uint64_t overloaded = 0;
  std::chrono::milliseconds max_hint{0};
  for (int i = 0; i < 600 && overloaded < 8; ++i) {
    ScanParams p;
    p.eps = EpsRational{static_cast<std::uint64_t>(i % 97) + 1, 100};
    p.mu = 2;
    std::future<QueryResponse> f;
    const auto result = service.try_submit_ex(p, RunLimits{}, &f);
    if (result.admitted()) {
      admitted.push_back(std::move(f));
    } else if (result.outcome == AdmissionOutcome::Overloaded) {
      overloaded += 1;
      max_hint = std::max(max_hint, result.retry_after);
    }
    if (i % 4 == 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // A single worker running multi-ms queries cannot keep the observed
  // sojourn under 1 ms against a microsecond-cadence producer.
  EXPECT_GE(overloaded, 1u);
  EXPECT_GE(max_hint.count(), 1);  // the hint reflects observed congestion
  for (auto& f : admitted) {
    ASSERT_NE(f.get().run, nullptr);  // accepted work is still answered
  }
  const auto snap = service.snapshot();
  EXPECT_GE(snap.shed_overload, overloaded);
  EXPECT_GE(snap.retries_advised, overloaded);
  EXPECT_GE(snap.rejected, snap.shed_overload);  // total stays the superset

  // Every shed is also a trace event (stop() above is the happens-before
  // edge snapshot() needs; Marks land in the collector's master slot).
  service.stop();
  std::uint64_t shed_marks = 0;
  for (const auto& e : trace.buffer(trace.master_slot()).snapshot()) {
    if (e.kind == obs::TraceEventKind::Mark &&
        std::string_view(e.name) == "serve.shed.overload") {
      shed_marks += 1;
    }
  }
  if (obs::kTraceEnabled) {
    EXPECT_GE(shed_marks, overloaded);
  }
}

TEST(QueryServiceResilience, DegradationLadderServesNearestCachedRun) {
  const auto g = erdos_renyi(1200, 9600, 43);
  const GsIndex index(g);
  ServiceOptions options;
  options.num_threads = 2;
  options.cache_results = true;
  options.degraded_serving = true;
  obs::TraceCollector trace(options.num_threads);
  options.trace = &trace;
  QueryService service(index, options);

  // Warm the cache with a completed neighbor.
  const auto warm_params = ScanParams::make("0.5", 3);
  const QueryResponse warm = service.submit(warm_params).get();
  ASSERT_FALSE(warm.run->partial());

  // Doom a nearby query deterministically (the cancel-at-phase test hook
  // trips it mid-run, timing-independent): instead of its classified
  // partial, the ladder serves the nearest cached complete run, flagged.
  RunLimits limits;
  limits.cancel_at_phase = 2;
  const QueryResponse doomed =
      service.submit(ScanParams::make("0.45", 3), limits).get();

  ASSERT_NE(doomed.run, nullptr);
  EXPECT_TRUE(doomed.degraded);
  EXPECT_FALSE(doomed.run->partial());  // stale-but-whole, never partial
  // The served run *is* the cached neighbor (the cache's only entry).
  EXPECT_EQ(doomed.run.get(), warm.run.get());
  // ...while the reason the real answer was unavailable is preserved.
  EXPECT_EQ(doomed.classified_reason, AbortReason::UserCancelled);
  const auto snap = service.snapshot();
  EXPECT_GE(snap.degraded_hits, 1u);
  bool recorded_degraded = false;
  for (const auto& r : snap.recent) recorded_degraded |= r.degraded;
  EXPECT_TRUE(recorded_degraded);

  // Degradation is a substitution, not an answer: the doomed parameters
  // were never cached, so asking again (un-doomed) runs for real.
  const QueryResponse real = service.submit(ScanParams::make("0.45", 3)).get();
  EXPECT_FALSE(real.cache_hit);
  EXPECT_FALSE(real.degraded);
  expect_identical(real.run->result,
                   index.query(ScanParams::make("0.45", 3)).result,
                   ScanParams::make("0.45", 3));

  // The substitution also left a trace event (read after stop() joins the
  // dispatcher — the snapshot's required happens-before edge).
  service.stop();
  bool degraded_mark = false;
  for (const auto& e : trace.buffer(trace.master_slot()).snapshot()) {
    if (e.kind == obs::TraceEventKind::Mark &&
        std::string_view(e.name) == "serve.degraded") {
      degraded_mark = true;
      EXPECT_EQ(e.arg, doomed.id);
    }
  }
  if (obs::kTraceEnabled) {
    EXPECT_TRUE(degraded_mark);
  }
}

TEST(QueryServiceResilience, ServingMetricsRowCarriesResilienceBlock) {
  const auto g = erdos_renyi(600, 4800, 47);
  const GsIndex index(g);
  QueryService service(index, ServiceOptions{});
  service.submit(ScanParams::make("0.5", 2)).get();
  service.submit(ScanParams::make("0.5", 2)).get();  // cache hit
  service.stop();

  const auto report = serve::make_serving_report(
      "test_resilience", "er600", "0.5", g, service.snapshot(), 0.1);
  ASSERT_TRUE(report.has_resilience);
  EXPECT_EQ(report.resilience.breaker_state, "closed");
  const auto row = obs::metrics_to_json(report);
  EXPECT_EQ(obs::validate_metrics_json(row), "");
  // Round-trip keeps the block.
  const auto back = obs::metrics_from_json(row);
  EXPECT_TRUE(back.has_resilience);
  EXPECT_EQ(back.resilience.exceptions, report.resilience.exceptions);
  EXPECT_EQ(back.queries.size(), report.queries.size());
}

TEST(RetryPolicy, BackoffGrowsHonorsHintAndCaps) {
  serve::RetryOptions opts;
  opts.base_delay = std::chrono::milliseconds(5);
  opts.multiplier = 2.0;
  opts.max_delay = std::chrono::milliseconds(40);
  opts.jitter = 0.0;  // exact arithmetic for this test
  opts.max_attempts = 4;
  serve::RetryPolicy policy(opts);

  EXPECT_TRUE(policy.should_retry());
  EXPECT_EQ(policy.next_delay().count(), 5);
  EXPECT_EQ(policy.next_delay().count(), 10);
  // The service hint dominates a smaller backoff...
  EXPECT_EQ(policy.next_delay(std::chrono::milliseconds(25)).count(), 25);
  // ...and the cap dominates everything.
  EXPECT_EQ(policy.next_delay(std::chrono::milliseconds(500)).count(), 40);
  EXPECT_FALSE(policy.should_retry());  // 4 attempts spent
  policy.reset();
  EXPECT_TRUE(policy.should_retry());
  EXPECT_EQ(policy.next_delay().count(), 5);  // ladder restarted
}

TEST(RetryPolicy, JitterStaysInsideTheConfiguredBand) {
  serve::RetryOptions opts;
  opts.base_delay = std::chrono::milliseconds(100);
  opts.multiplier = 1.0;  // constant base so the band is easy to check
  opts.max_delay = std::chrono::milliseconds(1000);
  opts.jitter = 0.5;
  opts.max_attempts = 0;  // unlimited
  serve::RetryPolicy a(opts, /*seed=*/7);
  serve::RetryPolicy b(opts, /*seed=*/7);
  bool varied = false;
  std::int64_t previous = -1;
  for (int i = 0; i < 32; ++i) {
    const auto d = a.next_delay().count();
    EXPECT_GE(d, 50);
    EXPECT_LE(d, 150);
    EXPECT_EQ(d, b.next_delay().count());  // same seed, same sequence
    varied |= (previous >= 0 && d != previous);
    previous = d;
  }
  EXPECT_TRUE(varied);  // jitter actually jitters
}

// ---------------------------------------------------------------------------
// Fault-point chaos — PPSCAN_FAULTS=ON builds only.
// ---------------------------------------------------------------------------

class FaultArmed : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::compiled_in()) {
      GTEST_SKIP() << "fault points compiled out (PPSCAN_FAULTS=OFF)";
    }
    fault::reset();
  }
  void TearDown() override {
    if (fault::compiled_in()) fault::reset();
  }
};

// The tentpole containment property, per fault site: with exactly one
// injected throw armed, exactly one of ~120 concurrent queries fails
// (classified AbortReason::Exception, detail naming the fault point) and
// every other query returns a result bit-identical to a fresh
// single-threaded GsIndex::query. The service keeps serving afterward.
TEST_F(FaultArmed, OnePoisonedQueryFailsAloneInEachPhase) {
  const auto g = erdos_renyi(1200, 9600, 53);
  const GsIndex index(g);
  std::map<std::pair<std::uint64_t, std::uint32_t>, ScanResult> expected;
  for (std::uint64_t num = 1; num <= 6; ++num) {
    ScanParams p;
    p.eps = EpsRational{num, 10};
    p.mu = 2;
    expected[{num, 2}] = index.query(p).result;
  }

  const char* kSites[] = {"executor.task",      "serve.execute",
                          "index.qcoretest",    "index.qcorecluster",
                          "index.qlabelcores",  "index.qmembership"};
  for (const char* site : kSites) {
    SCOPED_TRACE(site);
    fault::reset();
    fault::Spec spec;
    spec.max_fires = 1;
    fault::arm(site, spec);

    ServiceOptions options;
    options.num_threads = 4;
    options.cache_results = false;
    QueryService service(index, options);

    constexpr int kQueries = 120;
    std::vector<ScanParams> params;
    std::vector<std::future<QueryResponse>> futures;
    for (int i = 0; i < kQueries; ++i) {
      ScanParams p;
      p.eps = EpsRational{static_cast<std::uint64_t>(i % 6) + 1, 10};
      p.mu = 2;
      params.push_back(p);
      futures.push_back(service.submit(p));
    }

    int exceptions = 0;
    for (int i = 0; i < kQueries; ++i) {
      const QueryResponse r = futures[i].get();
      ASSERT_NE(r.run, nullptr);
      if (r.run->stats.abort_reason == AbortReason::Exception) {
        exceptions += 1;
        EXPECT_NE(r.run->stats.abort_detail.find("fault-point"),
                  std::string::npos)
            << r.run->stats.abort_detail;
        continue;
      }
      ASSERT_EQ(r.run->stats.abort_reason, AbortReason::None);
      expect_identical(r.run->result,
                       expected.at({params[i].eps.num, params[i].mu}),
                       params[i]);
    }
    EXPECT_EQ(exceptions, 1);
    EXPECT_EQ(fault::fire_count(site), 1u);
    EXPECT_EQ(service.snapshot().exceptions, 1u);

    // Still serving, and bit-identically so.
    const auto after = service.submit(params[0]).get();
    ASSERT_EQ(after.run->stats.abort_reason, AbortReason::None);
    expect_identical(after.run->result,
                     expected.at({params[0].eps.num, params[0].mu}),
                     params[0]);
  }
}

TEST_F(FaultArmed, BreakerOpensOnConsecutiveFailuresAndProbesClosed) {
  const auto g = erdos_renyi(800, 6400, 59);
  const GsIndex index(g);
  ServiceOptions options;
  options.num_threads = 2;
  options.cache_results = false;
  options.breaker_failure_threshold = 3;
  options.breaker_cooldown = std::chrono::milliseconds(50);
  QueryService service(index, options);

  fault::arm("serve.execute", fault::Spec{});  // every execution throws

  // Three consecutive classified failures trip the breaker.
  for (int i = 0; i < 3; ++i) {
    std::future<QueryResponse> f;
    const auto result = service.try_submit_ex(
        ScanParams::make("0.5", 2 + i), RunLimits{}, &f);
    ASSERT_TRUE(result.admitted()) << "attempt " << i;
    const QueryResponse r = f.get();
    EXPECT_EQ(r.classified_reason, AbortReason::Exception);
  }
  {
    std::future<QueryResponse> f;
    const auto refused =
        service.try_submit_ex(ScanParams::make("0.5", 7), RunLimits{}, &f);
    EXPECT_EQ(refused.outcome, AdmissionOutcome::BreakerOpen);
    EXPECT_GE(refused.retry_after.count(), 1);
  }
  {
    const auto snap = service.snapshot();
    EXPECT_EQ(snap.breaker_state, "open");
    EXPECT_GE(snap.breaker_transitions, 1u);
    EXPECT_GE(snap.shed_breaker, 1u);
    EXPECT_EQ(snap.exceptions, 3u);
  }

  // Heal the fault, wait out the cooldown: the half-open probe succeeds
  // and the breaker closes.
  fault::reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  std::future<QueryResponse> probe;
  const auto admitted =
      service.try_submit_ex(ScanParams::make("0.5", 9), RunLimits{}, &probe);
  ASSERT_TRUE(admitted.admitted());  // the probe slot
  const QueryResponse healed = probe.get();
  EXPECT_EQ(healed.classified_reason, AbortReason::None);
  EXPECT_EQ(service.snapshot().breaker_state, "closed");

  // Back to normal service.
  std::future<QueryResponse> f;
  EXPECT_TRUE(
      service.try_submit_ex(ScanParams::make("0.5", 11), RunLimits{}, &f)
          .admitted());
  ASSERT_NE(f.get().run, nullptr);
}

// Regression: a half-open probe can be answered by execute()'s *second*
// cache probe (another query cached the same (ε, µ) between the probe's
// admission and its execution). The cache-hit delivery used to skip
// breaker bookkeeping entirely, leaving breaker_probe_in_flight_ set — the
// breaker wedged half-open forever and every later non-cached admission
// was refused BreakerOpen with no probe left to settle it.
TEST_F(FaultArmed, BreakerProbeAnsweredFromCacheDoesNotWedgeHalfOpen) {
  const auto g = erdos_renyi(400, 3200, 67);
  const GsIndex index(g);
  ServiceOptions options;
  options.num_threads = 1;
  options.max_batch = 1;  // the dispatcher serializes: warm, then probe
  options.cache_results = true;
  options.breaker_failure_threshold = 1;
  options.breaker_cooldown = std::chrono::milliseconds(25);
  QueryService service(index, options);

  // One classified failure opens the breaker.
  {
    fault::Spec spec;
    spec.max_fires = 1;
    fault::arm("serve.execute", spec);
    std::future<QueryResponse> f;
    ASSERT_TRUE(
        service.try_submit_ex(ScanParams::make("0.5", 2), RunLimits{}, &f)
            .admitted());
    EXPECT_EQ(f.get().classified_reason, AbortReason::Exception);
    EXPECT_EQ(service.snapshot().breaker_state, "open");
  }
  fault::reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Occupy the dispatcher with a slow *blocking* query (submit() bypasses
  // the breaker by contract) for a fresh (ε, µ)...
  {
    fault::Spec slow;
    slow.action = fault::Action::Sleep;
    slow.sleep_ms = 500;
    slow.max_fires = 1;
    fault::arm("serve.execute", slow);
  }
  auto warm = service.submit(ScanParams::make("0.5", 3));
  // ...and admit the same parameters non-blocking while it runs. This
  // admission misses the cache (the warm run has not finished yet), so it
  // passes the gate and becomes the half-open probe — but by the time the
  // dispatcher executes it the warm run has been cached, so the probe
  // resolves as a cache hit.
  std::future<QueryResponse> probe;
  ASSERT_TRUE(
      service.try_submit_ex(ScanParams::make("0.5", 3), RunLimits{}, &probe)
          .admitted());
  EXPECT_EQ(warm.get().classified_reason, AbortReason::None);
  const QueryResponse probe_r = probe.get();
  ASSERT_NE(probe_r.run, nullptr);
  EXPECT_TRUE(probe_r.cache_hit);  // the scenario under test actually ran

  // The probe slot must have been released: a fresh, uncached non-blocking
  // admission is the *new* probe (still half-open), not a BreakerOpen
  // refusal; its success closes the breaker.
  std::future<QueryResponse> next;
  const auto result =
      service.try_submit_ex(ScanParams::make("0.5", 4), RunLimits{}, &next);
  EXPECT_TRUE(result.admitted()) << to_string(result.outcome);
  EXPECT_EQ(next.get().classified_reason, AbortReason::None);
  EXPECT_EQ(service.snapshot().breaker_state, "closed");
}

// Probabilistic soak: several sites armed at low probability (from
// PPSCAN_FAULT when the chaos lane sets it, else a built-in mix), many
// clients, every future must resolve and the service must stay coherent.
TEST_F(FaultArmed, ChaosSoakEveryFutureResolves) {
  // reset() in SetUp marked the env consumed, so re-arm explicitly; honor
  // the lane's spec when present so CI can steer the mix.
  const char* env = std::getenv("PPSCAN_FAULT");
  const std::string spec =
      (env != nullptr && env[0] != '\0')
          ? env
          : "serve.execute:throw:p=0.10;index.qcoretest:throw:p=0.05;"
            "index.qmembership:bad-alloc:p=0.05;serve.dispatcher:sleep-ms=1:"
            "p=0.02";
  ASSERT_EQ(fault::arm_from_string(spec), "") << spec;

  const auto g = erdos_renyi(1000, 8000, 61);
  const GsIndex index(g);
  ServiceOptions options;
  options.num_threads = 4;
  options.cache_results = false;
  QueryService service(index, options);

  constexpr int kClients = 4;
  constexpr int kPerClient = 40;
  std::atomic<int> delivered{0};
  std::atomic<int> refused{0};
  std::atomic<int> exceptions{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        ScanParams p;
        p.eps = EpsRational{static_cast<std::uint64_t>((c + i) % 8) + 1, 10};
        p.mu = 2;
        QueryResponse r;
        try {
          r = service.submit(p).get();
        } catch (...) {
          // A lane-supplied PPSCAN_FAULT may arm serve.admission, which
          // fires in the *client's* stack — a refusal, not a delivery.
          refused.fetch_add(1);
          continue;
        }
        if (r.run == nullptr) continue;
        delivered.fetch_add(1);
        if (r.run->stats.abort_reason == AbortReason::Exception) {
          exceptions.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(delivered.load() + refused.load(), kClients * kPerClient);
  const auto snap = service.snapshot();
  EXPECT_EQ(snap.completed, static_cast<std::uint64_t>(delivered.load()));
  EXPECT_EQ(snap.exceptions, static_cast<std::uint64_t>(exceptions.load()));
  // The soak only proves something if chaos actually happened; with the
  // built-in mix (p=0.10 over 160 queries) a zero is astronomically
  // unlikely, and fired_sites() pinpoints a dead registry immediately.
  EXPECT_FALSE(fault::fired_sites().empty());

  // Recovery: disarm and verify bit-identical service.
  fault::reset();
  const auto p = ScanParams::make("0.5", 2);
  const QueryResponse clean = service.submit(p).get();
  ASSERT_EQ(clean.run->stats.abort_reason, AbortReason::None);
  expect_identical(clean.run->result, index.query(p).result, p);
}

}  // namespace
}  // namespace ppscan
