#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph_stats.hpp"

namespace ppscan {
namespace {

TEST(ErdosRenyi, ExactEdgeCount) {
  const auto g = erdos_renyi(100, 400, 7);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 400u);
  EXPECT_NO_THROW(g.validate());
}

TEST(ErdosRenyi, DeterministicInSeed) {
  const auto a = erdos_renyi(80, 300, 5);
  const auto b = erdos_renyi(80, 300, 5);
  EXPECT_EQ(a.dst(), b.dst());
  const auto c = erdos_renyi(80, 300, 6);
  EXPECT_NE(a.dst(), c.dst());
}

TEST(ErdosRenyi, FullDensitySupported) {
  const auto g = erdos_renyi(10, 45, 1);  // complete graph
  EXPECT_EQ(g.num_edges(), 45u);
  for (VertexId u = 0; u < 10; ++u) EXPECT_EQ(g.degree(u), 9u);
}

TEST(ErdosRenyi, RejectsImpossibleEdgeCount) {
  EXPECT_THROW(erdos_renyi(10, 46, 1), std::invalid_argument);
  EXPECT_THROW(erdos_renyi(1, 0, 1), std::invalid_argument);
}

TEST(BarabasiAlbert, AverageDegreeNearTarget) {
  const auto g = barabasi_albert(5000, 8, 3);
  const auto s = compute_stats(g);
  // Average degree converges to 2m = 16 (slightly less from dedup).
  EXPECT_NEAR(s.avg_degree, 16.0, 1.0);
  EXPECT_NO_THROW(g.validate());
}

TEST(BarabasiAlbert, ProducesSkewedDegrees) {
  const auto g = barabasi_albert(5000, 4, 11);
  const auto s = compute_stats(g);
  // Preferential attachment: the max degree is far above the average.
  EXPECT_GT(s.max_degree, 5 * s.avg_degree);
}

TEST(BarabasiAlbert, Deterministic) {
  const auto a = barabasi_albert(500, 3, 9);
  const auto b = barabasi_albert(500, 3, 9);
  EXPECT_EQ(a.dst(), b.dst());
}

TEST(BarabasiAlbert, EveryLateVertexHasAtLeastM) {
  const auto g = barabasi_albert(300, 5, 2);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_GE(g.degree(u), 5u) << "vertex " << u;
  }
}

TEST(BarabasiAlbert, RejectsBadParams) {
  EXPECT_THROW(barabasi_albert(5, 5, 1), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(10, 0, 1), std::invalid_argument);
}

TEST(Rmat, ProducesRequestedScale) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 8;
  const auto g = rmat(p, 4);
  EXPECT_EQ(g.num_vertices(), 1u << 12);
  // Dedup and self-loop removal lose some attempts but most survive.
  EXPECT_GT(g.num_edges(), static_cast<EdgeId>(0.5 * 8 * (1 << 12)));
  EXPECT_NO_THROW(g.validate());
}

TEST(Rmat, SkewedTowardHubs) {
  RmatParams p;
  p.scale = 13;
  p.edge_factor = 8;
  const auto g = rmat(p, 21);
  const auto s = compute_stats(g);
  EXPECT_GT(s.max_degree, 10 * s.avg_degree);
}

TEST(Rmat, Deterministic) {
  RmatParams p;
  p.scale = 10;
  const auto a = rmat(p, 5);
  const auto b = rmat(p, 5);
  EXPECT_EQ(a.dst(), b.dst());
}

TEST(Rmat, RejectsBadQuadrantProbabilities) {
  RmatParams p;
  p.a = 0.9;
  p.b = 0.2;  // sum > 1
  EXPECT_THROW(rmat(p, 1), std::invalid_argument);
  RmatParams q;
  q.scale = 0;
  EXPECT_THROW(rmat(q, 1), std::invalid_argument);
}

TEST(LfrLike, HitsEdgeBudgetApproximately) {
  LfrParams p;
  p.n = 5000;
  p.avg_degree = 20;
  p.mixing = 0.2;
  const auto g = lfr_like(p, 8);
  const auto s = compute_stats(g);
  EXPECT_NEAR(s.avg_degree, 20.0, 3.0);
  EXPECT_NO_THROW(g.validate());
}

TEST(LfrLike, GroundTruthCoversAllVertices) {
  LfrParams p;
  p.n = 2000;
  std::vector<VertexId> truth;
  const auto g = lfr_like(p, 9, &truth);
  ASSERT_EQ(truth.size(), g.num_vertices());
  const VertexId max_cid = *std::max_element(truth.begin(), truth.end());
  EXPECT_GT(max_cid, 0u);  // more than one community
}

TEST(LfrLike, CommunitySizesWithinBounds) {
  LfrParams p;
  p.n = 3000;
  p.min_community = 20;
  p.max_community = 100;
  std::vector<VertexId> truth;
  lfr_like(p, 10, &truth);
  std::vector<VertexId> sizes(*std::max_element(truth.begin(), truth.end()) +
                              1);
  for (const VertexId c : truth) ++sizes[c];
  for (std::size_t c = 0; c + 1 < sizes.size(); ++c) {
    EXPECT_GE(sizes[c], p.min_community);
    EXPECT_LE(sizes[c], p.max_community);
  }
  // The last community may be truncated by n but never oversized.
  EXPECT_LE(sizes.back(), p.max_community);
}

TEST(LfrLike, MostEdgesAreIntraCommunity) {
  LfrParams p;
  p.n = 4000;
  p.avg_degree = 16;
  p.mixing = 0.2;
  std::vector<VertexId> truth;
  const auto g = lfr_like(p, 12, &truth);
  EdgeId intra = 0, inter = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) {
      if (u < v) (truth[u] == truth[v] ? intra : inter) += 1;
    }
  }
  const double inter_fraction =
      static_cast<double>(inter) / static_cast<double>(intra + inter);
  EXPECT_NEAR(inter_fraction, p.mixing, 0.08);
}

TEST(LfrLike, Deterministic) {
  LfrParams p;
  p.n = 1000;
  const auto a = lfr_like(p, 13);
  const auto b = lfr_like(p, 13);
  EXPECT_EQ(a.dst(), b.dst());
}

TEST(LfrLike, RejectsBadParams) {
  LfrParams p;
  p.mixing = 1.5;
  EXPECT_THROW(lfr_like(p, 1), std::invalid_argument);
  LfrParams q;
  q.min_community = 1;
  EXPECT_THROW(lfr_like(q, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ppscan
