// Cross-thread tests for AtomicArray, written to put its memory-ordering
// contract in front of ThreadSanitizer (this binary is in the CI tsan
// job's run list). Three protocols from docs/memory_model.md are driven
// end to end:
//
//   release-acquire — a non-atomic payload published via a release store
//     of a per-slot flag and consumed after an acquire load; under TSan a
//     missing edge here is a reported race, not a flaky read.
//   cancel-token / CAS claim — each slot claimed by exactly one thread via
//     compare_exchange, the claim ordering the claimant's write.
//   relaxed-counter — contended fetch_add whose total must be exact.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "util/atomic_array.hpp"

namespace ppscan {
namespace {

TEST(AtomicArrayMt, ReleaseStorePublishesPayloadToAcquireLoad) {
  constexpr std::size_t kSlots = 1024;
  constexpr int kProducers = 4;

  std::vector<std::uint64_t> payload(kSlots, 0);  // non-atomic on purpose
  AtomicArray<std::uint32_t> ready(kSlots, 0);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = static_cast<std::size_t>(p); i < kSlots;
           i += kProducers) {
        payload[i] = 1000 + i;  // plain store, published by the flag below
        ready.store(i, 1, std::memory_order_release);
      }
    });
  }

  std::thread consumer([&] {
    for (std::size_t i = 0; i < kSlots; ++i) {
      while (ready.load(i, std::memory_order_acquire) == 0) {
        std::this_thread::yield();
      }
      // The acquire load of the flag orders the payload read after the
      // producer's plain store — TSan verifies the edge exists.
      EXPECT_EQ(payload[i], 1000 + i);
    }
  });

  for (auto& t : producers) t.join();
  consumer.join();
}

TEST(AtomicArrayMt, CompareExchangeClaimsEachSlotExactlyOnce) {
  constexpr std::size_t kSlots = 512;
  constexpr int kThreads = 8;

  AtomicArray<std::int32_t> owner(kSlots, -1);
  std::vector<std::uint64_t> claims(kThreads, 0);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kSlots; ++i) {
        std::int32_t expected = -1;
        if (owner.compare_exchange(i, expected, t,
                                   std::memory_order_acq_rel)) {
          ++claims[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::uint64_t total = 0;
  for (const auto c : claims) total += c;
  EXPECT_EQ(total, kSlots);  // every slot claimed exactly once
  for (std::size_t i = 0; i < kSlots; ++i) {
    const auto winner = owner.load(i);
    EXPECT_GE(winner, 0);
    EXPECT_LT(winner, kThreads);
  }
}

TEST(AtomicArrayMt, RelaxedFetchAddTotalsAreExactUnderContention) {
  constexpr std::size_t kCounters = 16;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 20000;

  AtomicArray<std::uint64_t> counters(kCounters, 0);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Deterministic per-thread stride keeps every counter contended.
      std::size_t i = static_cast<std::size_t>(t) % kCounters;
      for (std::uint64_t n = 0; n < kAddsPerThread; ++n) {
        counters.fetch_add(i, 1, std::memory_order_relaxed);
        i = (i + 1) % kCounters;
      }
    });
  }
  for (auto& t : threads) t.join();

  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kCounters; ++i) total += counters.load(i);
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

}  // namespace
}  // namespace ppscan
