#include "scan/scan_common.hpp"

#include <gtest/gtest.h>

namespace ppscan {
namespace {

ScanResult tiny_result() {
  // 5 vertices: cores 0,1 in cluster 0; core 3 in cluster 3; non-core 2
  // belongs to both clusters; vertex 4 unclustered.
  ScanResult r;
  r.roles = {Role::Core, Role::Core, Role::NonCore, Role::Core,
             Role::NonCore};
  r.core_cluster_id = {0, 0, kInvalidVertex, 3, kInvalidVertex};
  r.noncore_memberships = {{2, 0}, {2, 3}, {2, 0}};  // duplicate on purpose
  return r;
}

TEST(ScanResult, NormalizeDeduplicatesMemberships) {
  auto r = tiny_result();
  r.normalize();
  EXPECT_EQ(r.noncore_memberships.size(), 2u);
}

TEST(ScanResult, CanonicalClustersMergeCoresAndNonCores) {
  auto r = tiny_result();
  r.normalize();
  const auto clusters = r.canonical_clusters();
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(clusters[1], (std::vector<VertexId>{2, 3}));
}

TEST(ScanResult, CountsCores) {
  EXPECT_EQ(tiny_result().num_cores(), 3u);
}

TEST(ScanResult, NumClusters) {
  EXPECT_EQ(tiny_result().num_clusters(), 2u);
}

TEST(ResultsEquivalent, IgnoresClusterIdNumbering) {
  auto a = tiny_result();
  auto b = tiny_result();
  // Renumber b's clusters: 0 → 7, 3 → 1.
  b.core_cluster_id = {7, 7, kInvalidVertex, 1, kInvalidVertex};
  b.noncore_memberships = {{2, 7}, {2, 1}};
  a.normalize();
  b.normalize();
  EXPECT_TRUE(results_equivalent(a, b));
}

TEST(ResultsEquivalent, DetectsRoleDifference) {
  auto a = tiny_result();
  auto b = tiny_result();
  b.roles[4] = Role::Core;
  EXPECT_FALSE(results_equivalent(a, b));
  EXPECT_NE(describe_result_difference(a, b).find("role of vertex 4"),
            std::string::npos);
}

TEST(ResultsEquivalent, DetectsMembershipDifference) {
  auto a = tiny_result();
  auto b = tiny_result();
  b.noncore_memberships = {{2, 0}};  // drop the membership in cluster 3
  a.normalize();
  b.normalize();
  EXPECT_FALSE(results_equivalent(a, b));
  EXPECT_FALSE(describe_result_difference(a, b).empty());
}

TEST(ResultsEquivalent, EmptyDifferenceWhenEqual) {
  auto a = tiny_result();
  auto b = tiny_result();
  a.normalize();
  b.normalize();
  EXPECT_TRUE(describe_result_difference(a, b).empty());
}

TEST(ScanParams, MakeParsesEps) {
  const auto p = ScanParams::make("0.4", 7);
  EXPECT_EQ(p.mu, 7u);
  EXPECT_DOUBLE_EQ(p.eps.to_double(), 0.4);
}

}  // namespace
}  // namespace ppscan
