#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ppscan {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroBoundReturnsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversSmallRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.next_below(8)];
  }
  for (const int c : counts) {
    // Each bucket should hold 12.5% +- 1.5% of the draws.
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.125, 0.015);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    min = std::min(min, x);
    max = std::max(max, x);
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(Rng, NextBoolMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  // Regression anchor: generator output must never change across platforms
  // or refactors, or every cached dataset silently changes.
  SplitMix64 sm(0);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(first, sm.next());
}

TEST(Rng, StreamHasNoShortCycle) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    seen.insert(rng.next_u64());
  }
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace ppscan
