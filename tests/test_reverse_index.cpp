#include "graph/reverse_index.hpp"

#include <gtest/gtest.h>

#include "core/ppscan.hpp"
#include "graph/fixtures.hpp"
#include "graph/generators.hpp"
#include "support/random_graphs.hpp"
#include "support/reference_scan.hpp"

namespace ppscan {
namespace {

TEST(ReverseArcIndex, MatchesBinarySearchOnRandomGraphs) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto g = erdos_renyi(150, 800, seed);
    const ReverseArcIndex index(g);
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (EdgeId e = g.offset_begin(u); e < g.offset_end(u); ++e) {
        ASSERT_EQ(index.reverse(e), g.reverse_arc(u, e));
      }
    }
  }
}

TEST(ReverseArcIndex, IsAnInvolution) {
  const auto g = barabasi_albert(200, 4, 9);
  const ReverseArcIndex index(g);
  for (EdgeId e = 0; e < g.num_arcs(); ++e) {
    EXPECT_EQ(index.reverse(index.reverse(e)), e);
    EXPECT_NE(index.reverse(e), e);
  }
}

TEST(ReverseArcIndex, SkewedGraph) {
  // Hubs exercise the cursor logic over long neighbor ranges.
  RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  const auto g = rmat(p, 13);
  const ReverseArcIndex index(g);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (EdgeId e = g.offset_begin(u); e < g.offset_end(u); ++e) {
      ASSERT_EQ(g.dst()[index.reverse(e)], u);
    }
  }
}

TEST(ReverseArcIndex, EmptyAndDefaultStates) {
  const ReverseArcIndex empty;
  EXPECT_TRUE(empty.empty());
  const auto g = make_clique(3);
  const ReverseArcIndex built(g);
  EXPECT_FALSE(built.empty());
  EXPECT_EQ(built.memory_bytes(), g.num_arcs() * sizeof(EdgeId));
}

TEST(ReverseArcIndex, PpScanResultUnchanged) {
  for (const auto& g : testing::property_test_graphs(8001, 1)) {
    const auto params = ScanParams::make("0.5", 3);
    PpScanOptions with_index;
    with_index.use_reverse_index = true;
    with_index.num_threads = 4;
    const auto a = ppscan(g, params);
    const auto b = ppscan(g, params, with_index);
    EXPECT_TRUE(results_equivalent(a.result, b.result))
        << describe_result_difference(a.result, b.result);
  }
}

}  // namespace
}  // namespace ppscan
