// Round-trip and schema tests for the machine-readable metrics
// (obs/metrics_json.hpp): an emitted row must validate against the
// documented v2 schema and survive emit → dump → parse → reconstruct with
// every field intact; the negative cases pin the validator's messages to
// actual violations rather than accidents of field order.
#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/metrics_json.hpp"

namespace ppscan::obs {
namespace {

MetricsReport sample_report() {
  MetricsReport r;
  r.tool = "ppscan_cli";
  r.algorithm = "ppSCAN";
  r.dataset = "livejournal-sim";
  r.eps = "0.6";
  r.mu = 5;
  r.threads = 16;
  r.kernel = "avx2";
  r.runtime_kind = "worksteal";
  r.num_vertices = 4000000;
  r.num_edges = 34000000;
  r.total_seconds = 12.5;
  r.similarity_seconds = 8.25;
  r.pruning_seconds = 1.75;
  r.stage_prune_seconds = 2.0;
  r.stage_check_seconds = 7.0;
  r.stage_core_cluster_seconds = 2.5;
  r.stage_noncore_cluster_seconds = 1.0;
  r.busy_seconds = 180.0;
  r.idle_seconds = 20.0;
  r.compsim_invocations = 29000000;
  r.tasks_submitted = 5000;
  r.tasks_executed = 5000;
  r.steals = 321;
  r.numa_mode = "auto";
  r.placement = "sharded";
  r.numa_nodes = 2;
  r.steals_same_node = 300;
  r.steals_remote = 21;
  r.remote_misses = 7;
  r.per_node = {{0, 8, 160, 9, 3}, {1, 8, 140, 12, 4}};
  r.num_clusters = 12345;
  r.num_cores = 987654;
  r.abort_reason = "none";
  r.abort_phase = "";
  r.phases_completed = 7;
  r.peak_governed_bytes = 1ull << 30;
  r.counters.arcs_touched = 68000000;
  r.counters.arcs_predicate_pruned = 10000000;
  r.counters.sims_computed = 29000000;
  r.counters.sims_reused = 29000000;
  r.counters.core_early_exits = 3000000;
  r.counters.uf_unions = 900000;
  r.counters.uf_finds = 4000000;
  r.counters.uf_find_steps = 4100000;
  return r;
}

// A serving row on top of the base report: queries[] plus a consistent
// latency histogram (bucket counts summing to count, as the validator
// requires).
MetricsReport serving_report() {
  MetricsReport r = sample_report();
  r.algorithm = "GsIndex-serve";
  QueryRowMetrics q0;
  q0.id = 0;
  q0.eps = "3/5";
  q0.mu = 5;
  q0.latency_ms = 4.25;
  q0.queue_ms = 0.5;
  q0.execute_ms = 3.5;
  q0.num_clusters = 12345;
  q0.num_cores = 987654;
  q0.abort_reason = "none";
  q0.cache_hit = false;
  QueryRowMetrics q1;
  q1.id = 1;
  q1.eps = "1/5";
  q1.mu = 2;
  q1.latency_ms = 0.031;
  q1.queue_ms = 0.02;
  q1.execute_ms = 0.0;
  q1.num_clusters = 12345;
  q1.num_cores = 987654;
  q1.abort_reason = "deadline";
  q1.cache_hit = true;
  r.queries = {q0, q1};
  r.latency.count = 2;
  r.latency.p50_ms = 0.032;
  r.latency.p90_ms = 4.25;
  r.latency.p99_ms = 4.25;
  r.latency.max_ms = 4.25;
  r.latency.sum_ms = 4.281;
  r.latency.buckets = {{32.0, 1}, {8192.0, 1}};
  return r;
}

TEST(MetricsJson, EmittedRowValidatesAgainstSchema) {
  const auto row = metrics_to_json(sample_report());
  EXPECT_EQ(validate_metrics_json(row), "");
}

TEST(MetricsJson, RoundTripPreservesEveryField) {
  const MetricsReport original = sample_report();
  // Through the full pipeline: emit, serialize, parse, reconstruct.
  const auto parsed = JsonValue::parse(metrics_to_json(original).dump(2));
  const MetricsReport back = metrics_from_json(parsed);

  EXPECT_EQ(back.tool, original.tool);
  EXPECT_EQ(back.algorithm, original.algorithm);
  EXPECT_EQ(back.dataset, original.dataset);
  EXPECT_EQ(back.eps, original.eps);
  EXPECT_EQ(back.mu, original.mu);
  EXPECT_EQ(back.threads, original.threads);
  EXPECT_EQ(back.kernel, original.kernel);
  EXPECT_EQ(back.runtime_kind, original.runtime_kind);
  EXPECT_EQ(back.num_vertices, original.num_vertices);
  EXPECT_EQ(back.num_edges, original.num_edges);
  EXPECT_DOUBLE_EQ(back.total_seconds, original.total_seconds);
  EXPECT_DOUBLE_EQ(back.similarity_seconds, original.similarity_seconds);
  EXPECT_DOUBLE_EQ(back.pruning_seconds, original.pruning_seconds);
  EXPECT_DOUBLE_EQ(back.stage_prune_seconds, original.stage_prune_seconds);
  EXPECT_DOUBLE_EQ(back.stage_check_seconds, original.stage_check_seconds);
  EXPECT_DOUBLE_EQ(back.stage_core_cluster_seconds,
                   original.stage_core_cluster_seconds);
  EXPECT_DOUBLE_EQ(back.stage_noncore_cluster_seconds,
                   original.stage_noncore_cluster_seconds);
  EXPECT_DOUBLE_EQ(back.busy_seconds, original.busy_seconds);
  EXPECT_DOUBLE_EQ(back.idle_seconds, original.idle_seconds);
  EXPECT_EQ(back.compsim_invocations, original.compsim_invocations);
  EXPECT_EQ(back.tasks_submitted, original.tasks_submitted);
  EXPECT_EQ(back.tasks_executed, original.tasks_executed);
  EXPECT_EQ(back.steals, original.steals);
  EXPECT_EQ(back.numa_mode, original.numa_mode);
  EXPECT_EQ(back.placement, original.placement);
  EXPECT_EQ(back.numa_nodes, original.numa_nodes);
  EXPECT_EQ(back.steals_same_node, original.steals_same_node);
  EXPECT_EQ(back.steals_remote, original.steals_remote);
  EXPECT_EQ(back.remote_misses, original.remote_misses);
  ASSERT_EQ(back.per_node.size(), original.per_node.size());
  for (std::size_t i = 0; i < back.per_node.size(); ++i) {
    EXPECT_EQ(back.per_node[i].node, original.per_node[i].node);
    EXPECT_EQ(back.per_node[i].workers, original.per_node[i].workers);
    EXPECT_EQ(back.per_node[i].steals_same_node,
              original.per_node[i].steals_same_node);
    EXPECT_EQ(back.per_node[i].steals_remote,
              original.per_node[i].steals_remote);
    EXPECT_EQ(back.per_node[i].remote_misses,
              original.per_node[i].remote_misses);
  }
  EXPECT_EQ(back.num_clusters, original.num_clusters);
  EXPECT_EQ(back.num_cores, original.num_cores);
  EXPECT_EQ(back.abort_reason, original.abort_reason);
  EXPECT_EQ(back.abort_phase, original.abort_phase);
  EXPECT_EQ(back.phases_completed, original.phases_completed);
  EXPECT_EQ(back.peak_governed_bytes, original.peak_governed_bytes);
  EXPECT_EQ(back.counters.arcs_touched, original.counters.arcs_touched);
  EXPECT_EQ(back.counters.arcs_predicate_pruned,
            original.counters.arcs_predicate_pruned);
  EXPECT_EQ(back.counters.sims_computed, original.counters.sims_computed);
  EXPECT_EQ(back.counters.sims_reused, original.counters.sims_reused);
  EXPECT_EQ(back.counters.core_early_exits,
            original.counters.core_early_exits);
  EXPECT_EQ(back.counters.uf_unions, original.counters.uf_unions);
  EXPECT_EQ(back.counters.uf_finds, original.counters.uf_finds);
  EXPECT_EQ(back.counters.uf_find_steps, original.counters.uf_find_steps);
}

TEST(MetricsJson, FileEnvelopeValidates) {
  const auto doc =
      metrics_file_json("fig2", {sample_report(), sample_report()});
  EXPECT_EQ(validate_metrics_file_json(doc), "");
  // And survives serialization.
  EXPECT_EQ(validate_metrics_file_json(JsonValue::parse(doc.dump())), "");
  EXPECT_EQ(doc.at("figure").as_string(), "fig2");
  EXPECT_EQ(doc.at("rows").size(), 2u);
}

TEST(MetricsJson, MissingKeyIsReported) {
  auto row = metrics_to_json(sample_report());
  auto broken = JsonValue::object();
  for (const auto& [key, value] : row.members()) {
    if (key != "steals") broken.set(key, value);
  }
  const auto violation = validate_metrics_json(broken);
  EXPECT_NE(violation.find("steals"), std::string::npos) << violation;
}

TEST(MetricsJson, WrongTypeIsReported) {
  auto row = metrics_to_json(sample_report());
  row.set("threads", JsonValue::string("sixteen"));
  const auto violation = validate_metrics_json(row);
  EXPECT_NE(violation.find("threads"), std::string::npos) << violation;
}

TEST(MetricsJson, WrongSchemaVersionIsReported) {
  auto row = metrics_to_json(sample_report());
  row.set("schema_version", JsonValue::number_u64(99));
  const auto violation = validate_metrics_json(row);
  EXPECT_NE(violation.find("schema_version"), std::string::npos) << violation;
}

TEST(MetricsJson, BrokenFunnelInvariantIsReported) {
  MetricsReport r = sample_report();
  r.counters.arcs_touched += 1;  // pruned + computed + reused no longer adds up
  const auto violation = validate_metrics_json(metrics_to_json(r));
  EXPECT_NE(violation.find("arcs_touched"), std::string::npos) << violation;
}

TEST(MetricsJson, BrokenStealSplitIsReported) {
  MetricsReport r = sample_report();
  r.steals_remote += 1;  // same_node + remote no longer equals steals
  const auto violation = validate_metrics_json(metrics_to_json(r));
  EXPECT_NE(violation.find("steal split"), std::string::npos) << violation;
}

TEST(MetricsJson, MalformedPerNodeEntryIsReported) {
  auto row = metrics_to_json(sample_report());
  auto arr = JsonValue::array();
  auto entry = JsonValue::object();
  entry.set("node", JsonValue::number_u64(0));  // the other keys are missing
  arr.push(std::move(entry));
  row.set("per_node", std::move(arr));
  const auto violation = validate_metrics_json(row);
  EXPECT_NE(violation.find("per_node"), std::string::npos) << violation;
}

TEST(MetricsJson, ServingBlockIsOmittedWhenEmpty) {
  const auto row = metrics_to_json(sample_report());
  EXPECT_FALSE(row.has("queries"));
  EXPECT_FALSE(row.has("latency_histogram"));
}

TEST(MetricsJson, ServingRowValidatesAndRoundTrips) {
  const MetricsReport original = serving_report();
  const auto row = metrics_to_json(original);
  ASSERT_TRUE(row.has("queries"));
  ASSERT_TRUE(row.has("latency_histogram"));
  EXPECT_EQ(validate_metrics_json(row), "");

  const MetricsReport back =
      metrics_from_json(JsonValue::parse(row.dump(2)));
  ASSERT_EQ(back.queries.size(), original.queries.size());
  for (std::size_t i = 0; i < back.queries.size(); ++i) {
    EXPECT_EQ(back.queries[i].id, original.queries[i].id);
    EXPECT_EQ(back.queries[i].eps, original.queries[i].eps);
    EXPECT_EQ(back.queries[i].mu, original.queries[i].mu);
    EXPECT_DOUBLE_EQ(back.queries[i].latency_ms,
                     original.queries[i].latency_ms);
    EXPECT_EQ(back.queries[i].num_clusters, original.queries[i].num_clusters);
    EXPECT_EQ(back.queries[i].num_cores, original.queries[i].num_cores);
    EXPECT_EQ(back.queries[i].abort_reason, original.queries[i].abort_reason);
    EXPECT_EQ(back.queries[i].cache_hit, original.queries[i].cache_hit);
    EXPECT_DOUBLE_EQ(back.queries[i].queue_ms, original.queries[i].queue_ms);
    EXPECT_DOUBLE_EQ(back.queries[i].execute_ms,
                     original.queries[i].execute_ms);
  }
  EXPECT_EQ(back.latency.count, original.latency.count);
  EXPECT_DOUBLE_EQ(back.latency.sum_ms, original.latency.sum_ms);
  EXPECT_DOUBLE_EQ(back.latency.p50_ms, original.latency.p50_ms);
  EXPECT_DOUBLE_EQ(back.latency.p90_ms, original.latency.p90_ms);
  EXPECT_DOUBLE_EQ(back.latency.p99_ms, original.latency.p99_ms);
  EXPECT_DOUBLE_EQ(back.latency.max_ms, original.latency.max_ms);
  ASSERT_EQ(back.latency.buckets.size(), original.latency.buckets.size());
  for (std::size_t i = 0; i < back.latency.buckets.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.latency.buckets[i].le_us,
                     original.latency.buckets[i].le_us);
    EXPECT_EQ(back.latency.buckets[i].count,
              original.latency.buckets[i].count);
  }
}

TEST(MetricsJson, MalformedQueryRowIsReported) {
  auto row = metrics_to_json(serving_report());
  auto queries = JsonValue::array();
  auto entry = JsonValue::object();
  entry.set("id", JsonValue::number_u64(0));  // every other key missing
  queries.push(std::move(entry));
  row.set("queries", std::move(queries));
  const auto violation = validate_metrics_json(row);
  EXPECT_NE(violation.find("queries[0]"), std::string::npos) << violation;
}

TEST(MetricsJson, QueryRowWithoutCacheHitIsReported) {
  auto row = metrics_to_json(serving_report());
  // Rebuild queries[] without the boolean field.
  auto queries = JsonValue::array();
  const auto& original = row.at("queries").at(0);
  auto entry = JsonValue::object();
  for (const auto& [key, value] : original.members()) {
    if (key != "cache_hit") entry.set(key, value);
  }
  queries.push(std::move(entry));
  row.set("queries", std::move(queries));
  const auto violation = validate_metrics_json(row);
  EXPECT_NE(violation.find("cache_hit"), std::string::npos) << violation;
}

TEST(MetricsJson, QueueSplitExceedingLatencyIsReported) {
  // The sanity check behind the queue_ms/execute_ms split: the parts may
  // not exceed the whole (beyond the documented delivery-overhead slack).
  MetricsReport r = serving_report();
  r.queries[0].queue_ms = 3.0;
  r.queries[0].execute_ms = 2.0;  // 5.0 > 4.25 * 1.05 + 0.5
  const auto violation = validate_metrics_json(metrics_to_json(r));
  EXPECT_NE(violation.find("queue_ms"), std::string::npos) << violation;
}

TEST(MetricsJson, QueueSplitIsAdditiveOptional) {
  // Rows emitted before the split existed (committed BENCH files) carry
  // neither key and must keep validating — the v2 schema is unchanged.
  auto row = metrics_to_json(serving_report());
  auto queries = JsonValue::array();
  for (std::size_t i = 0; i < row.at("queries").size(); ++i) {
    const auto& original = row.at("queries").at(i);
    auto entry = JsonValue::object();
    for (const auto& [key, value] : original.members()) {
      if (key != "queue_ms" && key != "execute_ms") entry.set(key, value);
    }
    queries.push(std::move(entry));
  }
  row.set("queries", std::move(queries));
  auto histogram = JsonValue::object();
  for (const auto& [key, value] : row.at("latency_histogram").members()) {
    if (key != "sum_ms") histogram.set(key, value);
  }
  row.set("latency_histogram", std::move(histogram));
  EXPECT_EQ(validate_metrics_json(row), "");
  // And the reconstruction defaults the absent fields to zero.
  const MetricsReport back = metrics_from_json(row);
  EXPECT_DOUBLE_EQ(back.queries[0].queue_ms, 0.0);
  EXPECT_DOUBLE_EQ(back.queries[0].execute_ms, 0.0);
  EXPECT_DOUBLE_EQ(back.latency.sum_ms, 0.0);
}

TEST(MetricsJson, NonNumericQueueSplitIsReported) {
  auto row = metrics_to_json(serving_report());
  auto queries = JsonValue::array();
  auto entry = JsonValue::object();
  for (const auto& [key, value] : row.at("queries").at(0).members()) {
    if (key == "queue_ms")
      entry.set(key, JsonValue::string("fast"));
    else
      entry.set(key, value);
  }
  queries.push(std::move(entry));
  row.set("queries", std::move(queries));
  const auto violation = validate_metrics_json(row);
  EXPECT_NE(violation.find("queue_ms"), std::string::npos) << violation;
}

TEST(MetricsJson, InconsistentHistogramBucketsAreReported) {
  MetricsReport r = serving_report();
  r.latency.buckets[0].count += 1;  // sum no longer equals count
  const auto violation = validate_metrics_json(metrics_to_json(r));
  EXPECT_NE(violation.find("bucket counts sum"), std::string::npos)
      << violation;
}

TEST(MetricsJson, ExtraRowKeysAreIgnoredByValidator) {
  // Harnesses decorate rows with derived figures (queries_per_second etc.)
  // via metrics_file_envelope; the validator must not reject them.
  auto row = metrics_to_json(serving_report());
  row.set("queries_per_second", JsonValue::number(1234.5));
  EXPECT_EQ(validate_metrics_json(row), "");
  std::vector<JsonValue> rows;
  rows.push_back(std::move(row));
  const auto doc = metrics_file_envelope("serving", std::move(rows));
  EXPECT_EQ(validate_metrics_file_json(doc), "");
  EXPECT_EQ(doc.at("figure").as_string(), "serving");
  EXPECT_TRUE(doc.at("rows").at(0).has("queries_per_second"));
}

TEST(MetricsJson, ParserRejectsGarbage) {
  EXPECT_THROW(JsonValue::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
}

}  // namespace
}  // namespace ppscan::obs
