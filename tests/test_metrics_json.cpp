// Round-trip and schema tests for the machine-readable metrics
// (obs/metrics_json.hpp): an emitted row must validate against the
// documented v2 schema and survive emit → dump → parse → reconstruct with
// every field intact; the negative cases pin the validator's messages to
// actual violations rather than accidents of field order.
#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/metrics_json.hpp"

namespace ppscan::obs {
namespace {

MetricsReport sample_report() {
  MetricsReport r;
  r.tool = "ppscan_cli";
  r.algorithm = "ppSCAN";
  r.dataset = "livejournal-sim";
  r.eps = "0.6";
  r.mu = 5;
  r.threads = 16;
  r.kernel = "avx2";
  r.runtime_kind = "worksteal";
  r.num_vertices = 4000000;
  r.num_edges = 34000000;
  r.total_seconds = 12.5;
  r.similarity_seconds = 8.25;
  r.pruning_seconds = 1.75;
  r.stage_prune_seconds = 2.0;
  r.stage_check_seconds = 7.0;
  r.stage_core_cluster_seconds = 2.5;
  r.stage_noncore_cluster_seconds = 1.0;
  r.busy_seconds = 180.0;
  r.idle_seconds = 20.0;
  r.compsim_invocations = 29000000;
  r.tasks_submitted = 5000;
  r.tasks_executed = 5000;
  r.steals = 321;
  r.numa_mode = "auto";
  r.placement = "sharded";
  r.numa_nodes = 2;
  r.steals_same_node = 300;
  r.steals_remote = 21;
  r.remote_misses = 7;
  r.per_node = {{0, 8, 160, 9, 3}, {1, 8, 140, 12, 4}};
  r.num_clusters = 12345;
  r.num_cores = 987654;
  r.abort_reason = "none";
  r.abort_phase = "";
  r.phases_completed = 7;
  r.peak_governed_bytes = 1ull << 30;
  r.counters.arcs_touched = 68000000;
  r.counters.arcs_predicate_pruned = 10000000;
  r.counters.sims_computed = 29000000;
  r.counters.sims_reused = 29000000;
  r.counters.core_early_exits = 3000000;
  r.counters.uf_unions = 900000;
  r.counters.uf_finds = 4000000;
  r.counters.uf_find_steps = 4100000;
  return r;
}

TEST(MetricsJson, EmittedRowValidatesAgainstSchema) {
  const auto row = metrics_to_json(sample_report());
  EXPECT_EQ(validate_metrics_json(row), "");
}

TEST(MetricsJson, RoundTripPreservesEveryField) {
  const MetricsReport original = sample_report();
  // Through the full pipeline: emit, serialize, parse, reconstruct.
  const auto parsed = JsonValue::parse(metrics_to_json(original).dump(2));
  const MetricsReport back = metrics_from_json(parsed);

  EXPECT_EQ(back.tool, original.tool);
  EXPECT_EQ(back.algorithm, original.algorithm);
  EXPECT_EQ(back.dataset, original.dataset);
  EXPECT_EQ(back.eps, original.eps);
  EXPECT_EQ(back.mu, original.mu);
  EXPECT_EQ(back.threads, original.threads);
  EXPECT_EQ(back.kernel, original.kernel);
  EXPECT_EQ(back.runtime_kind, original.runtime_kind);
  EXPECT_EQ(back.num_vertices, original.num_vertices);
  EXPECT_EQ(back.num_edges, original.num_edges);
  EXPECT_DOUBLE_EQ(back.total_seconds, original.total_seconds);
  EXPECT_DOUBLE_EQ(back.similarity_seconds, original.similarity_seconds);
  EXPECT_DOUBLE_EQ(back.pruning_seconds, original.pruning_seconds);
  EXPECT_DOUBLE_EQ(back.stage_prune_seconds, original.stage_prune_seconds);
  EXPECT_DOUBLE_EQ(back.stage_check_seconds, original.stage_check_seconds);
  EXPECT_DOUBLE_EQ(back.stage_core_cluster_seconds,
                   original.stage_core_cluster_seconds);
  EXPECT_DOUBLE_EQ(back.stage_noncore_cluster_seconds,
                   original.stage_noncore_cluster_seconds);
  EXPECT_DOUBLE_EQ(back.busy_seconds, original.busy_seconds);
  EXPECT_DOUBLE_EQ(back.idle_seconds, original.idle_seconds);
  EXPECT_EQ(back.compsim_invocations, original.compsim_invocations);
  EXPECT_EQ(back.tasks_submitted, original.tasks_submitted);
  EXPECT_EQ(back.tasks_executed, original.tasks_executed);
  EXPECT_EQ(back.steals, original.steals);
  EXPECT_EQ(back.numa_mode, original.numa_mode);
  EXPECT_EQ(back.placement, original.placement);
  EXPECT_EQ(back.numa_nodes, original.numa_nodes);
  EXPECT_EQ(back.steals_same_node, original.steals_same_node);
  EXPECT_EQ(back.steals_remote, original.steals_remote);
  EXPECT_EQ(back.remote_misses, original.remote_misses);
  ASSERT_EQ(back.per_node.size(), original.per_node.size());
  for (std::size_t i = 0; i < back.per_node.size(); ++i) {
    EXPECT_EQ(back.per_node[i].node, original.per_node[i].node);
    EXPECT_EQ(back.per_node[i].workers, original.per_node[i].workers);
    EXPECT_EQ(back.per_node[i].steals_same_node,
              original.per_node[i].steals_same_node);
    EXPECT_EQ(back.per_node[i].steals_remote,
              original.per_node[i].steals_remote);
    EXPECT_EQ(back.per_node[i].remote_misses,
              original.per_node[i].remote_misses);
  }
  EXPECT_EQ(back.num_clusters, original.num_clusters);
  EXPECT_EQ(back.num_cores, original.num_cores);
  EXPECT_EQ(back.abort_reason, original.abort_reason);
  EXPECT_EQ(back.abort_phase, original.abort_phase);
  EXPECT_EQ(back.phases_completed, original.phases_completed);
  EXPECT_EQ(back.peak_governed_bytes, original.peak_governed_bytes);
  EXPECT_EQ(back.counters.arcs_touched, original.counters.arcs_touched);
  EXPECT_EQ(back.counters.arcs_predicate_pruned,
            original.counters.arcs_predicate_pruned);
  EXPECT_EQ(back.counters.sims_computed, original.counters.sims_computed);
  EXPECT_EQ(back.counters.sims_reused, original.counters.sims_reused);
  EXPECT_EQ(back.counters.core_early_exits,
            original.counters.core_early_exits);
  EXPECT_EQ(back.counters.uf_unions, original.counters.uf_unions);
  EXPECT_EQ(back.counters.uf_finds, original.counters.uf_finds);
  EXPECT_EQ(back.counters.uf_find_steps, original.counters.uf_find_steps);
}

TEST(MetricsJson, FileEnvelopeValidates) {
  const auto doc =
      metrics_file_json("fig2", {sample_report(), sample_report()});
  EXPECT_EQ(validate_metrics_file_json(doc), "");
  // And survives serialization.
  EXPECT_EQ(validate_metrics_file_json(JsonValue::parse(doc.dump())), "");
  EXPECT_EQ(doc.at("figure").as_string(), "fig2");
  EXPECT_EQ(doc.at("rows").size(), 2u);
}

TEST(MetricsJson, MissingKeyIsReported) {
  auto row = metrics_to_json(sample_report());
  auto broken = JsonValue::object();
  for (const auto& [key, value] : row.members()) {
    if (key != "steals") broken.set(key, value);
  }
  const auto violation = validate_metrics_json(broken);
  EXPECT_NE(violation.find("steals"), std::string::npos) << violation;
}

TEST(MetricsJson, WrongTypeIsReported) {
  auto row = metrics_to_json(sample_report());
  row.set("threads", JsonValue::string("sixteen"));
  const auto violation = validate_metrics_json(row);
  EXPECT_NE(violation.find("threads"), std::string::npos) << violation;
}

TEST(MetricsJson, WrongSchemaVersionIsReported) {
  auto row = metrics_to_json(sample_report());
  row.set("schema_version", JsonValue::number_u64(99));
  const auto violation = validate_metrics_json(row);
  EXPECT_NE(violation.find("schema_version"), std::string::npos) << violation;
}

TEST(MetricsJson, BrokenFunnelInvariantIsReported) {
  MetricsReport r = sample_report();
  r.counters.arcs_touched += 1;  // pruned + computed + reused no longer adds up
  const auto violation = validate_metrics_json(metrics_to_json(r));
  EXPECT_NE(violation.find("arcs_touched"), std::string::npos) << violation;
}

TEST(MetricsJson, BrokenStealSplitIsReported) {
  MetricsReport r = sample_report();
  r.steals_remote += 1;  // same_node + remote no longer equals steals
  const auto violation = validate_metrics_json(metrics_to_json(r));
  EXPECT_NE(violation.find("steal split"), std::string::npos) << violation;
}

TEST(MetricsJson, MalformedPerNodeEntryIsReported) {
  auto row = metrics_to_json(sample_report());
  auto arr = JsonValue::array();
  auto entry = JsonValue::object();
  entry.set("node", JsonValue::number_u64(0));  // the other keys are missing
  arr.push(std::move(entry));
  row.set("per_node", std::move(arr));
  const auto violation = validate_metrics_json(row);
  EXPECT_NE(violation.find("per_node"), std::string::npos) << violation;
}

TEST(MetricsJson, ParserRejectsGarbage) {
  EXPECT_THROW(JsonValue::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
}

}  // namespace
}  // namespace ppscan::obs
