// Topology-aware executor (hierarchical stealing): worker→node assignment,
// the same-node-victims-first property of every worker's deterministic
// steal order, shard-aligned phase execution, the steal-locality counter
// invariants, and end-to-end ppSCAN equivalence between numa=auto (on an
// emulated 2-node topology) and numa=off. All properties are exercised
// under PPSCAN_NUMA_NODES-style emulation so they hold — and run under
// TSan — on a single-socket CI box.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "concurrent/executor.hpp"
#include "concurrent/topology.hpp"
#include "core/ppscan.hpp"
#include "graph/fixtures.hpp"
#include "scan/scan_common.hpp"

namespace ppscan {
namespace {

/// Emulated topology over synthetic CPU ids — node structure without any
/// assumption about the machine the test runs on.
NumaTopology two_nodes(int cpus = 8) {
  std::vector<int> ids;
  for (int c = 0; c < cpus; ++c) ids.push_back(c);
  return emulated_topology(2, ids);
}

std::vector<TaskRange> unit_ranges(VertexId count) {
  std::vector<TaskRange> tasks;
  tasks.reserve(count);
  for (VertexId i = 0; i < count; ++i) tasks.push_back({i, i + 1});
  return tasks;
}

TEST(ExecutorNuma, WorkersAssignedRoundRobinAcrossNodes) {
  Executor executor(6, two_nodes(), /*pin_workers=*/false);
  ASSERT_EQ(executor.num_nodes(), 2);
  for (int w = 0; w < 6; ++w) {
    EXPECT_EQ(executor.worker_node(w), w % 2) << "worker " << w;
  }
}

TEST(ExecutorNuma, NodeCountClampedToThreadCount) {
  // One worker cannot populate two nodes; the executor degrades to
  // uniform instead of leaving a node workerless.
  Executor executor(1, two_nodes(), /*pin_workers=*/false);
  EXPECT_EQ(executor.num_nodes(), 1);
  EXPECT_EQ(executor.worker_node(0), 0);
}

TEST(ExecutorNuma, UniformExecutorHasSingleNode) {
  Executor executor(4);
  EXPECT_EQ(executor.num_nodes(), 1);
  // Every victim is "same-node": the steal order's same-node prefix is
  // the whole ring.
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(executor.same_node_victims(w), executor.steal_order(w).size());
  }
}

// The property the hierarchical steal order exists for: every same-node
// victim precedes every remote victim, and the scan covers each other
// worker exactly once.
TEST(ExecutorNuma, SameNodeVictimsPrecedeRemoteOnes) {
  constexpr int kThreads = 8;
  Executor executor(kThreads, two_nodes(), /*pin_workers=*/false);
  ASSERT_EQ(executor.num_nodes(), 2);
  for (int w = 0; w < kThreads; ++w) {
    const std::vector<int>& order = executor.steal_order(w);
    ASSERT_EQ(order.size(), static_cast<std::size_t>(kThreads - 1));
    const std::size_t same = executor.same_node_victims(w);
    std::vector<bool> seen(kThreads, false);
    seen[static_cast<std::size_t>(w)] = true;  // self never scanned
    for (std::size_t i = 0; i < order.size(); ++i) {
      const int victim = order[i];
      ASSERT_GE(victim, 0);
      ASSERT_LT(victim, kThreads);
      EXPECT_FALSE(seen[static_cast<std::size_t>(victim)])
          << "victim " << victim << " scanned twice by worker " << w;
      seen[static_cast<std::size_t>(victim)] = true;
      if (i < same) {
        EXPECT_EQ(executor.worker_node(victim), executor.worker_node(w))
            << "remote victim inside the same-node prefix of worker " << w;
      } else {
        EXPECT_NE(executor.worker_node(victim), executor.worker_node(w))
            << "same-node victim after the prefix of worker " << w;
      }
    }
  }
}

TEST(ExecutorNuma, ShardedRunCoversEveryRangeExactlyOnce) {
  constexpr VertexId n = 20000;
  Executor executor(4, two_nodes(), /*pin_workers=*/false);
  ASSERT_EQ(executor.num_nodes(), 2);
  std::vector<std::atomic<int>> visited(n);
  for (auto& v : visited) v.store(0);
  const auto tasks = unit_ranges(n);
  // Deliberately unbalanced shards: node 0 owns 3/4 of the tasks, so
  // node 1's workers must steal (mostly remotely) to finish the phase.
  const std::size_t node_task_begin[] = {0, (3 * tasks.size()) / 4,
                                         tasks.size()};
  executor.run_sharded(tasks.data(), tasks.size(), node_task_begin,
                       [&](VertexId beg, VertexId end) {
                         for (VertexId u = beg; u < end; ++u) {
                           visited[u].fetch_add(1);
                         }
                       });
  for (VertexId u = 0; u < n; ++u) {
    ASSERT_EQ(visited[u].load(), 1) << "vertex " << u;
  }
  const ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.tasks_executed, static_cast<std::uint64_t>(n));
}

TEST(ExecutorNuma, StealCountersSplitConsistently) {
  constexpr VertexId n = 50000;
  Executor executor(4, two_nodes(), /*pin_workers=*/false);
  const auto tasks = unit_ranges(n);
  const std::size_t node_task_begin[] = {0, tasks.size() / 2, tasks.size()};
  for (int round = 0; round < 3; ++round) {
    executor.run_sharded(tasks.data(), tasks.size(), node_task_begin,
                         [&](VertexId, VertexId) {});
  }
  const ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.steals, stats.steals_same_node + stats.steals_remote);
  ASSERT_EQ(stats.per_node.size(), 2u);
  std::uint64_t same = 0, remote = 0, misses = 0, workers = 0;
  for (const obs::NodeCounters& node : stats.per_node) {
    same += node.steals_same_node;
    remote += node.steals_remote;
    misses += node.remote_misses;
    workers += node.workers;
  }
  EXPECT_EQ(same, stats.steals_same_node);
  EXPECT_EQ(remote, stats.steals_remote);
  EXPECT_EQ(misses, stats.remote_misses);
  EXPECT_EQ(workers, 4u);
}

TEST(ExecutorNuma, UniformExecutorNeverCountsRemote) {
  constexpr VertexId n = 50000;
  Executor executor(4);
  const auto tasks = unit_ranges(n);
  executor.run(tasks.data(), tasks.size(), [&](VertexId, VertexId) {});
  const ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.steals_remote, 0u);
  EXPECT_EQ(stats.remote_misses, 0u);
  EXPECT_EQ(stats.steals_same_node, stats.steals);
}

// End to end: numa=auto on an emulated two-node topology must produce the
// same clustering as numa=off — sharding and hierarchical stealing change
// memory traffic, never results.
TEST(ExecutorNuma, PpscanAutoMatchesOffOnEmulatedTopology) {
  const CsrGraph graph = make_clique_chain(6, 8);
  const ScanParams params = ScanParams::make("0.5", 3);

  PpScanOptions off;
  off.num_threads = 4;
  const ScanRun base = ppscan(graph, params, off);

  const NumaTopology topo = two_nodes();
  PpScanOptions numa;
  numa.num_threads = 4;
  numa.numa = NumaMode::Auto;
  numa.topology = &topo;
  const ScanRun run = ppscan(graph, params, numa);

  EXPECT_TRUE(results_equivalent(base.result, run.result))
      << describe_result_difference(base.result, run.result);
  EXPECT_EQ(run.stats.numa_mode, "auto");
  EXPECT_EQ(run.stats.numa_nodes, 2u);
  EXPECT_EQ(run.stats.steals,
            run.stats.steals_same_node + run.stats.steals_remote);
  ASSERT_EQ(run.stats.per_node.size(), 2u);
  EXPECT_EQ(base.stats.numa_mode, "off");
  EXPECT_EQ(base.stats.numa_nodes, 1u);
}

}  // namespace
}  // namespace ppscan
