#include "scan/relabel.hpp"

#include <gtest/gtest.h>

#include "core/ppscan.hpp"
#include "graph/fixtures.hpp"
#include "graph/generators.hpp"
#include "support/random_graphs.hpp"
#include "support/reference_scan.hpp"
#include "util/rng.hpp"

namespace ppscan {
namespace {

TEST(Relabel, DegreeOrderIsNonIncreasing) {
  const auto g = barabasi_albert(300, 4, 3);
  const auto r = degree_descending_order(g);
  const auto relabeled = apply_relabeling(g, r);
  for (VertexId u = 0; u + 1 < relabeled.num_vertices(); ++u) {
    EXPECT_GE(relabeled.degree(u), relabeled.degree(u + 1));
  }
}

TEST(Relabel, RoundTripsThroughInverse) {
  const auto g = erdos_renyi(100, 400, 5);
  const auto r = degree_descending_order(g);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_EQ(r.to_old[r.to_new[u]], u);
    EXPECT_EQ(r.to_new[r.to_old[u]], u);
  }
}

TEST(Relabel, PreservesGraphStructure) {
  const auto g = erdos_renyi(80, 300, 7);
  const auto r = degree_descending_order(g);
  const auto relabeled = apply_relabeling(g, r);
  EXPECT_EQ(relabeled.num_edges(), g.num_edges());
  EXPECT_NO_THROW(relabeled.validate());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_EQ(relabeled.degree(r.to_new[u]), g.degree(u));
    for (const VertexId v : g.neighbors(u)) {
      EXPECT_TRUE(relabeled.has_edge(r.to_new[u], r.to_new[v]));
    }
  }
}

TEST(Relabel, MakeRelabelingValidatesBijection) {
  EXPECT_NO_THROW(make_relabeling({2, 0, 1}));
  EXPECT_THROW(make_relabeling({0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(make_relabeling({0, 3, 1}), std::invalid_argument);
}

TEST(Relabel, ClusteringIsPermutationEquivariant) {
  // ppSCAN(relabel(G)) mapped back must equal ppSCAN(G) — for the degree
  // order and for random permutations.
  Rng rng(11);
  for (const auto& g : testing::property_test_graphs(7001, 1)) {
    const auto params = ScanParams::make("0.5", 3);
    const auto direct = ppscan(g, params);

    std::vector<Relabeling> relabelings{degree_descending_order(g)};
    std::vector<VertexId> shuffled(g.num_vertices());
    for (VertexId i = 0; i < g.num_vertices(); ++i) shuffled[i] = i;
    for (VertexId i = g.num_vertices(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.next_below(i)]);
    }
    relabelings.push_back(make_relabeling(shuffled));

    for (const auto& r : relabelings) {
      const auto relabeled_graph = apply_relabeling(g, r);
      const auto relabeled_run = ppscan(relabeled_graph, params);
      const auto mapped = map_result_to_original(relabeled_run.result, r);
      EXPECT_TRUE(results_equivalent(direct.result, mapped))
          << describe_result_difference(direct.result, mapped);
    }
  }
}

TEST(Relabel, MappedResultMatchesReferenceOnOriginal) {
  const auto g = make_clique_chain(4, 6);
  const auto params = ScanParams::make("0.6", 3);
  const auto r = degree_descending_order(g);
  const auto run = ppscan(apply_relabeling(g, r), params);
  const auto mapped = map_result_to_original(run.result, r);
  const auto expected = testing::reference_scan(g, params);
  EXPECT_TRUE(results_equivalent(expected, mapped));
}

TEST(Relabel, SizeMismatchRejected) {
  const auto g = make_clique(4);
  Relabeling r = degree_descending_order(make_clique(5));
  EXPECT_THROW(apply_relabeling(g, r), std::invalid_argument);
}

}  // namespace
}  // namespace ppscan
