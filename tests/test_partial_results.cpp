// Partial-result invariants of governed runs, per algorithm.
//
// The governance contract (scan_common.hpp): whatever a cut-short run
// *decided* is final and agrees with an unconstrained run, whatever it did
// not decide is explicitly undecided (Role::Unknown, kInvalidVertex ids).
// The cancel_at_phase hook makes this deterministic — phases before the
// hook complete at their barriers, the hooked phase and everything after
// never execute — so we can sweep the cut point across every phase of
// every algorithm and diff against the full run.
#include <gtest/gtest.h>

#include <stdexcept>

#include "bench_support/algorithms.hpp"
#include "graph/generators.hpp"
#include "index/gs_index.hpp"
#include "scan/validate_result.hpp"

namespace ppscan {
namespace {

struct AlgorithmPhases {
  const char* name;
  int phases;
};

// Phase counts match the enter_phase() calls in each implementation.
constexpr AlgorithmPhases kAlgorithms[] = {
    {"SCAN", 1},     {"pSCAN", 2},  {"anySCAN", 3},
    {"SCAN-XP", 5},  {"ppSCAN", 7},
};

CsrGraph community_graph(std::uint32_t n, std::uint64_t seed) {
  LfrParams lfr;
  lfr.n = n;
  lfr.avg_degree = 12;
  lfr.mixing = 0.2;
  lfr.min_community = 8;
  lfr.max_community = 40;
  return lfr_like(lfr, seed);
}

void expect_decided_prefix_agrees(const ScanResult& partial,
                                  const ScanResult& full,
                                  const std::string& label) {
  ASSERT_EQ(partial.roles.size(), full.roles.size()) << label;
  for (std::size_t v = 0; v < partial.roles.size(); ++v) {
    if (partial.roles[v] == Role::Unknown) continue;
    EXPECT_EQ(partial.roles[v], full.roles[v])
        << label << ": decided role of vertex " << v
        << " disagrees with the unconstrained run";
  }
}

TEST(PartialResults, CancelAtEveryPhaseKeepsTheDecidedPrefix) {
  const CsrGraph graph = community_graph(300, 20260806);
  const ScanParams params = ScanParams::make("0.4", 3);
  for (const AlgorithmPhases& algo : kAlgorithms) {
    AlgorithmConfig unconstrained;
    unconstrained.num_threads = 4;
    const ScanRun full =
        run_algorithm(algo.name, graph, params, unconstrained);
    ASSERT_FALSE(full.partial()) << algo.name;

    for (int k = 1; k <= algo.phases; ++k) {
      AlgorithmConfig config;
      config.num_threads = 4;
      config.limits.cancel_at_phase = k;
      const ScanRun run = run_algorithm(algo.name, graph, params, config);
      const std::string label =
          std::string(algo.name) + " cancelled at phase " +
          std::to_string(k);

      EXPECT_TRUE(run.partial()) << label;
      EXPECT_EQ(run.stats.abort_reason, AbortReason::UserCancelled) << label;
      EXPECT_EQ(run.stats.phases_completed,
                static_cast<std::uint32_t>(k - 1))
          << label;
      expect_decided_prefix_agrees(run.result, full.result, label);
      const ValidationReport report = validate_scan_result(
          graph, params, run.result, ValidateMode::Partial);
      EXPECT_TRUE(report.ok) << label << ": " << report.first_error;
    }

    // A hook past the last phase never fires: the run must complete and
    // match the unconstrained result exactly (governance is a no-op).
    AlgorithmConfig config;
    config.num_threads = 4;
    config.limits.cancel_at_phase = algo.phases + 1;
    const ScanRun run = run_algorithm(algo.name, graph, params, config);
    EXPECT_FALSE(run.partial()) << algo.name;
    EXPECT_TRUE(results_equivalent(run.result, full.result))
        << algo.name << ": "
        << describe_result_difference(run.result, full.result);
  }
}

TEST(PartialResults, TinyMemoryBudgetAbortsBeforeDecidingAnything) {
  const CsrGraph graph = community_graph(300, 7);
  const ScanParams params = ScanParams::make("0.4", 3);
  for (const AlgorithmPhases& algo : kAlgorithms) {
    AlgorithmConfig config;
    config.num_threads = 2;
    config.limits.memory_budget_bytes = 1;  // nothing fits
    const ScanRun run = run_algorithm(algo.name, graph, params, config);
    EXPECT_TRUE(run.partial()) << algo.name;
    EXPECT_EQ(run.stats.abort_reason, AbortReason::BudgetExceeded)
        << algo.name;
    EXPECT_GT(run.stats.abort_bytes, 0u) << algo.name;
    ASSERT_EQ(run.result.roles.size(), graph.num_vertices()) << algo.name;
    for (std::size_t v = 0; v < run.result.roles.size(); ++v) {
      ASSERT_EQ(run.result.roles[v], Role::Unknown)
          << algo.name << ": vertex " << v
          << " decided despite the state arrays never being allocated";
    }
    EXPECT_EQ(run.result.num_cores(), 0u) << algo.name;
    const ValidationReport report = validate_scan_result(
        graph, params, run.result, ValidateMode::Partial);
    EXPECT_TRUE(report.ok) << algo.name << ": " << report.first_error;
  }
}

TEST(PartialResults, PreTrippedExternalTokenReturnsImmediately) {
  const CsrGraph graph = community_graph(300, 11);
  const ScanParams params = ScanParams::make("0.5", 4);
  for (const AlgorithmPhases& algo : kAlgorithms) {
    CancelToken token;
    token.trip(AbortReason::UserCancelled);
    AlgorithmConfig config;
    config.num_threads = 2;
    config.cancel = &token;
    const ScanRun run = run_algorithm(algo.name, graph, params, config);
    EXPECT_TRUE(run.partial()) << algo.name;
    EXPECT_EQ(run.stats.abort_reason, AbortReason::UserCancelled)
        << algo.name;
    EXPECT_EQ(run.stats.phases_completed, 0u) << algo.name;
    for (const Role role : run.result.roles) {
      ASSERT_EQ(role, Role::Unknown) << algo.name;
    }
  }
}

TEST(PartialResults, DeadlinePartialStillValidates) {
  // Non-deterministic cut point (the wall clock decides), so the test
  // certifies whichever outcome occurred: a completed run must pass full
  // validation, an aborted one must pass partial validation — the point is
  // that a deadline can never yield an *inconsistent* result.
  const CsrGraph graph = community_graph(20000, 99);
  const ScanParams params = ScanParams::make("0.5", 4);
  AlgorithmConfig config;
  config.num_threads = 4;
  config.limits.deadline = std::chrono::milliseconds(1);
  const ScanRun run = run_algorithm("ppSCAN", graph, params, config);
  if (run.partial()) {
    EXPECT_EQ(run.stats.abort_reason, AbortReason::DeadlineExpired);
    const ValidationReport report = validate_scan_result(
        graph, params, run.result, ValidateMode::Partial);
    EXPECT_TRUE(report.ok) << report.first_error;
  } else {
    const ValidationReport report =
        validate_scan_result(graph, params, run.result);
    EXPECT_TRUE(report.ok) << report.first_error;
  }
}

TEST(PartialResults, AbortedGsIndexConstructionRefusesQueries) {
  const CsrGraph graph = community_graph(300, 13);
  const ScanParams params = ScanParams::make("0.4", 3);

  CancelToken token;
  token.trip(AbortReason::UserCancelled);
  GsIndex::BuildOptions options;
  options.num_threads = 2;
  options.cancel = &token;
  const GsIndex aborted(graph, options);
  EXPECT_FALSE(aborted.complete());
  EXPECT_EQ(aborted.build_stats().abort.reason, AbortReason::UserCancelled);
  // An incomplete neighbor order would answer wrongly, not partially —
  // refusal is the only sound behavior.
  EXPECT_THROW((void)aborted.query(params), std::logic_error);

  const GsIndex complete(graph, GsIndex::BuildOptions{});
  ASSERT_TRUE(complete.complete());
  const ScanRun from_index = complete.query(params);
  const ScanRun online = run_algorithm("ppSCAN", graph, params, {});
  EXPECT_TRUE(results_equivalent(from_index.result, online.result))
      << describe_result_difference(from_index.result, online.result);
}

}  // namespace
}  // namespace ppscan
