#include "index/gs_index.hpp"

#include <gtest/gtest.h>

#include "core/ppscan.hpp"
#include "graph/fixtures.hpp"
#include "graph/generators.hpp"
#include "graph/graph_builder.hpp"
#include "support/random_graphs.hpp"
#include "support/reference_scan.hpp"

namespace ppscan {
namespace {

using testing::property_test_graphs;
using testing::reference_scan;

TEST(GsIndex, QueryMatchesReferenceAcrossTheGrid) {
  for (const auto& g : property_test_graphs(6001, 2)) {
    const GsIndex index(g);
    for (const auto& params : testing::parameter_grid()) {
      const auto expected = reference_scan(g, params);
      const auto run = index.query(params);
      EXPECT_TRUE(results_equivalent(expected, run.result))
          << "eps=" << params.eps.to_double() << " mu=" << params.mu << ": "
          << describe_result_difference(expected, run.result);
    }
  }
}

TEST(GsIndex, ParallelConstructionMatchesSequential) {
  const auto g = erdos_renyi(400, 3000, 19);
  GsIndex::BuildOptions sequential;
  GsIndex::BuildOptions parallel;
  parallel.num_threads = 4;
  const GsIndex a(g, sequential);
  const GsIndex b(g, parallel);
  const auto params = ScanParams::make("0.5", 3);
  EXPECT_TRUE(results_equivalent(a.query(params).result,
                                 b.query(params).result));
}

TEST(GsIndex, CountKernelChoiceDoesNotChangeTheIndex) {
  const auto g = erdos_renyi(300, 2500, 23);
  for (const auto kind : {IntersectKind::MergeEarlyStop,
                          IntersectKind::PivotAvx2,
                          IntersectKind::PivotAvx512}) {
    if (!kernel_supported(kind)) continue;
    GsIndex::BuildOptions options;
    options.count_kernel = kind;
    const GsIndex index(g, options);
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (EdgeId e = g.offset_begin(u); e < g.offset_end(u); ++e) {
        const VertexId v = g.dst()[e];
        const auto expected = static_cast<std::uint32_t>(
            intersect_count_merge(g.neighbors(u), g.neighbors(v)) + 2);
        ASSERT_EQ(index.arc_overlap(e), expected)
            << to_string(kind) << " arc (" << u << "," << v << ")";
      }
    }
  }
}

TEST(GsIndex, ConstructionDoesOneIntersectionPerEdge) {
  const auto g = erdos_renyi(200, 1200, 29);
  const GsIndex index(g);
  EXPECT_EQ(index.build_stats().intersections, g.num_edges());
  EXPECT_GT(index.build_stats().construction_seconds, 0.0);
}

TEST(GsIndex, MemoryFootprintIsPerArc) {
  const auto g = erdos_renyi(100, 600, 31);
  const GsIndex index(g);
  // overlap (u32) + neighbor-order dst (u32) + cn (u32) + degree product
  // (u64) per arc slot; the sort-time slot permutation is transient.
  EXPECT_EQ(index.memory_bytes(),
            g.num_arcs() * (sizeof(std::uint32_t) + sizeof(VertexId) +
                            sizeof(std::uint32_t) + sizeof(std::uint64_t)));
}

TEST(GsIndex, QueryCountsThePruningFunnel) {
  // Index queries answer every similarity from the stored neighbor order,
  // so the funnel must balance as pure reuse: nothing pruned, nothing
  // computed, and the invariant pruned + computed + reused == touched must
  // hold non-vacuously (it used to be all zeros).
  const auto g = erdos_renyi(300, 2400, 37);
  const GsIndex index(g);
  for (const auto& params : testing::parameter_grid()) {
    const auto run = index.query(params);
    const auto& c = run.stats.counters;
    EXPECT_EQ(c.arcs_predicate_pruned + c.sims_computed + c.sims_reused,
              c.arcs_touched)
        << "eps=" << params.eps.to_double() << " mu=" << params.mu;
    EXPECT_EQ(c.sims_computed, 0u);
    EXPECT_EQ(c.arcs_predicate_pruned, 0u);
    // Every vertex with degree >= mu pays at least the core-test entry.
    EXPECT_GT(c.arcs_touched, 0u);
    if (run.result.num_cores() > 0) {
      EXPECT_GT(c.uf_finds, 0u);
      EXPECT_EQ(c.uf_finds, 2 * run.result.num_cores());
    }
  }
}

TEST(GsIndex, PooledScratchReturnsIdenticalAnswers) {
  // serve::QueryService reuses one QueryScratch per worker across many
  // queries; reuse must never leak state between (ε, µ) combinations.
  const auto g = erdos_renyi(250, 1800, 41);
  const GsIndex index(g);
  GsIndex::QueryScratch scratch;
  for (const auto& params : testing::parameter_grid()) {
    const auto pooled = index.query(params, scratch, nullptr);
    const auto fresh = index.query(params);
    EXPECT_TRUE(results_equivalent(fresh.result, pooled.result))
        << describe_result_difference(fresh.result, pooled.result);
    EXPECT_EQ(fresh.stats.counters.arcs_touched,
              pooled.stats.counters.arcs_touched);
  }
}

TEST(GsIndex, GovernedQueryReturnsClassifiedPartial) {
  const auto g = erdos_renyi(300, 2400, 43);
  const GsIndex index(g);
  const auto params = ScanParams::make("0.4", 3);
  GsIndex::QueryScratch scratch;

  // Trip on entry to phase 2 (QCoreCluster): every role is decided, no
  // cluster ids were assigned yet.
  {
    RunLimits limits;
    limits.cancel_at_phase = 2;
    RunGovernor governor(limits, nullptr);
    const auto run = index.query(params, scratch, &governor);
    EXPECT_TRUE(run.partial());
    EXPECT_EQ(run.stats.abort_reason, AbortReason::UserCancelled);
    EXPECT_EQ(run.stats.abort_phase, "QCoreCluster");
    EXPECT_EQ(run.stats.phases_completed, 1u);
    for (const auto role : run.result.roles) {
      EXPECT_NE(role, Role::Unknown);
    }
    for (const auto cid : run.result.core_cluster_id) {
      EXPECT_EQ(cid, kInvalidVertex);
    }
    EXPECT_TRUE(run.result.noncore_memberships.empty());
  }

  // Trip on entry to phase 1: nothing was decided at all.
  {
    RunLimits limits;
    limits.cancel_at_phase = 1;
    RunGovernor governor(limits, nullptr);
    const auto run = index.query(params, scratch, &governor);
    EXPECT_TRUE(run.partial());
    EXPECT_EQ(run.stats.abort_phase, "QCoreTest");
    for (const auto role : run.result.roles) {
      EXPECT_EQ(role, Role::Unknown);
    }
  }

  // The scratch is still good for a full query afterwards.
  const auto full = index.query(params, scratch, nullptr);
  EXPECT_FALSE(full.partial());
  EXPECT_TRUE(results_equivalent(full.result, index.query(params).result));
}

TEST(GsIndex, ManyQueriesAgainstPpScan) {
  // The index's reason to exist: repeated (ε, µ) queries. Each must agree
  // with a fresh ppSCAN run.
  LfrParams p;
  p.n = 800;
  p.avg_degree = 14;
  const auto g = lfr_like(p, 67);
  GsIndex::BuildOptions options;
  options.num_threads = 2;
  const GsIndex index(g, options);
  for (const char* eps : {"0.25", "0.45", "0.65", "0.85"}) {
    for (const std::uint32_t mu : {2u, 5u, 8u}) {
      const auto params = ScanParams::make(eps, mu);
      const auto from_index = index.query(params);
      const auto online = ppscan(g, params);
      EXPECT_TRUE(
          results_equivalent(from_index.result, online.result))
          << "eps=" << eps << " mu=" << mu;
    }
  }
}

TEST(GsIndex, CliqueAndPathEdgeCases) {
  const auto clique = make_clique(6);
  const GsIndex clique_index(clique);
  const auto run = clique_index.query(ScanParams::make("0.5", 2));
  EXPECT_EQ(run.result.num_clusters(), 1u);

  const auto path = make_path(8);
  const GsIndex path_index(path);
  const auto path_run = path_index.query(ScanParams::make("0.9", 2));
  EXPECT_EQ(path_run.result.num_clusters(), 0u);
}

TEST(GsIndex, EmptyGraph) {
  const auto g = GraphBuilder::from_edges({}, 5);
  const GsIndex index(g);
  const auto run = index.query(ScanParams::make("0.5", 1));
  EXPECT_EQ(run.result.num_clusters(), 0u);
  EXPECT_EQ(run.result.num_cores(), 0u);
}

}  // namespace
}  // namespace ppscan
