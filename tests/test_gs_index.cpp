#include "index/gs_index.hpp"

#include <gtest/gtest.h>

#include "core/ppscan.hpp"
#include "graph/fixtures.hpp"
#include "graph/generators.hpp"
#include "graph/graph_builder.hpp"
#include "support/random_graphs.hpp"
#include "support/reference_scan.hpp"

namespace ppscan {
namespace {

using testing::property_test_graphs;
using testing::reference_scan;

TEST(GsIndex, QueryMatchesReferenceAcrossTheGrid) {
  for (const auto& g : property_test_graphs(6001, 2)) {
    const GsIndex index(g);
    for (const auto& params : testing::parameter_grid()) {
      const auto expected = reference_scan(g, params);
      const auto run = index.query(params);
      EXPECT_TRUE(results_equivalent(expected, run.result))
          << "eps=" << params.eps.to_double() << " mu=" << params.mu << ": "
          << describe_result_difference(expected, run.result);
    }
  }
}

TEST(GsIndex, ParallelConstructionMatchesSequential) {
  const auto g = erdos_renyi(400, 3000, 19);
  GsIndex::BuildOptions sequential;
  GsIndex::BuildOptions parallel;
  parallel.num_threads = 4;
  const GsIndex a(g, sequential);
  const GsIndex b(g, parallel);
  const auto params = ScanParams::make("0.5", 3);
  EXPECT_TRUE(results_equivalent(a.query(params).result,
                                 b.query(params).result));
}

TEST(GsIndex, CountKernelChoiceDoesNotChangeTheIndex) {
  const auto g = erdos_renyi(300, 2500, 23);
  for (const auto kind : {IntersectKind::MergeEarlyStop,
                          IntersectKind::PivotAvx2,
                          IntersectKind::PivotAvx512}) {
    if (!kernel_supported(kind)) continue;
    GsIndex::BuildOptions options;
    options.count_kernel = kind;
    const GsIndex index(g, options);
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (EdgeId e = g.offset_begin(u); e < g.offset_end(u); ++e) {
        const VertexId v = g.dst()[e];
        const auto expected = static_cast<std::uint32_t>(
            intersect_count_merge(g.neighbors(u), g.neighbors(v)) + 2);
        ASSERT_EQ(index.arc_overlap(e), expected)
            << to_string(kind) << " arc (" << u << "," << v << ")";
      }
    }
  }
}

TEST(GsIndex, ConstructionDoesOneIntersectionPerEdge) {
  const auto g = erdos_renyi(200, 1200, 29);
  const GsIndex index(g);
  EXPECT_EQ(index.build_stats().intersections, g.num_edges());
  EXPECT_GT(index.build_stats().construction_seconds, 0.0);
}

TEST(GsIndex, MemoryFootprintIsPerArc) {
  const auto g = erdos_renyi(100, 600, 31);
  const GsIndex index(g);
  EXPECT_EQ(index.memory_bytes(),
            g.num_arcs() * (sizeof(std::uint32_t) + sizeof(EdgeId)));
}

TEST(GsIndex, ManyQueriesAgainstPpScan) {
  // The index's reason to exist: repeated (ε, µ) queries. Each must agree
  // with a fresh ppSCAN run.
  LfrParams p;
  p.n = 800;
  p.avg_degree = 14;
  const auto g = lfr_like(p, 67);
  GsIndex::BuildOptions options;
  options.num_threads = 2;
  const GsIndex index(g, options);
  for (const char* eps : {"0.25", "0.45", "0.65", "0.85"}) {
    for (const std::uint32_t mu : {2u, 5u, 8u}) {
      const auto params = ScanParams::make(eps, mu);
      const auto from_index = index.query(params);
      const auto online = ppscan(g, params);
      EXPECT_TRUE(
          results_equivalent(from_index.result, online.result))
          << "eps=" << eps << " mu=" << mu;
    }
  }
}

TEST(GsIndex, CliqueAndPathEdgeCases) {
  const auto clique = make_clique(6);
  const GsIndex clique_index(clique);
  const auto run = clique_index.query(ScanParams::make("0.5", 2));
  EXPECT_EQ(run.result.num_clusters(), 1u);

  const auto path = make_path(8);
  const GsIndex path_index(path);
  const auto path_run = path_index.query(ScanParams::make("0.9", 2));
  EXPECT_EQ(path_run.result.num_clusters(), 0u);
}

TEST(GsIndex, EmptyGraph) {
  const auto g = GraphBuilder::from_edges({}, 5);
  const GsIndex index(g);
  const auto run = index.query(ScanParams::make("0.5", 1));
  EXPECT_EQ(run.result.num_clusters(), 0u);
  EXPECT_EQ(run.result.num_cores(), 0u);
}

}  // namespace
}  // namespace ppscan
