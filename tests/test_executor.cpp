#include "concurrent/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ppscan {
namespace {

/// Builds `count` unit ranges [i, i+1) — one task per index.
std::vector<TaskRange> unit_ranges(VertexId count) {
  std::vector<TaskRange> tasks;
  tasks.reserve(count);
  for (VertexId i = 0; i < count; ++i) tasks.push_back({i, i + 1});
  return tasks;
}

TEST(Executor, RejectsNonPositiveThreadCount) {
  EXPECT_THROW(Executor(0), std::invalid_argument);
  EXPECT_THROW(Executor(-3), std::invalid_argument);
}

TEST(Executor, FlatRunCoversEveryRangeExactlyOnce) {
  constexpr VertexId n = 20000;
  Executor executor(4);
  std::vector<std::atomic<int>> visited(n);
  for (auto& v : visited) v.store(0);
  const auto tasks = unit_ranges(n);
  executor.run(tasks.data(), tasks.size(), [&](VertexId beg, VertexId end) {
    for (VertexId u = beg; u < end; ++u) visited[u].fetch_add(1);
  });
  for (VertexId u = 0; u < n; ++u) {
    ASSERT_EQ(visited[u].load(), 1) << "vertex " << u;
  }
}

TEST(Executor, EmptyRunReturnsImmediately) {
  Executor executor(2);
  executor.run(nullptr, 0, [](VertexId, VertexId) {
    FAIL() << "no range should execute";
  });
}

TEST(Executor, RawFunctionPointerApi) {
  Executor executor(2);
  std::atomic<std::uint64_t> sum{0};
  const auto tasks = unit_ranges(100);
  executor.run(
      tasks.data(), tasks.size(),
      [](void* ctx, VertexId beg, VertexId end) {
        for (VertexId u = beg; u < end; ++u) {
          static_cast<std::atomic<std::uint64_t>*>(ctx)->fetch_add(u);
        }
      },
      &sum);
  EXPECT_EQ(sum.load(), 99ull * 100 / 2);
}

TEST(Executor, StreamingSubmitThenWaitIdle) {
  Executor executor(3);
  constexpr VertexId n = 5000;
  std::vector<std::atomic<int>> visited(n);
  for (auto& v : visited) v.store(0);
  auto body = [&](VertexId beg, VertexId end) {
    for (VertexId u = beg; u < end; ++u) visited[u].fetch_add(1);
  };
  using B = decltype(body);
  executor.begin_phase(
      [](void* ctx, VertexId beg, VertexId end) {
        (*static_cast<B*>(ctx))(beg, end);
      },
      &body);
  for (VertexId u = 0; u < n; u += 7) {
    executor.submit({u, std::min<VertexId>(u + 7, n)});
  }
  executor.wait_idle();
  for (VertexId u = 0; u < n; ++u) ASSERT_EQ(visited[u].load(), 1);
}

TEST(Executor, ReusableAcrossManyPhases) {
  Executor executor(4);
  constexpr int kPhases = 50;
  constexpr VertexId n = 512;
  const auto tasks = unit_ranges(n);
  std::atomic<std::uint64_t> total{0};
  for (int p = 0; p < kPhases; ++p) {
    executor.run(tasks.data(), tasks.size(), [&](VertexId beg, VertexId end) {
      total.fetch_add(end - beg);
    });
    // The barrier makes per-phase totals exact, not just eventually
    // consistent.
    ASSERT_EQ(total.load(), static_cast<std::uint64_t>(n) * (p + 1));
  }
}

TEST(Executor, NestedSubmitFromInsideTask) {
  Executor executor(4);
  constexpr VertexId n = 1000;
  std::vector<std::atomic<int>> visited(n);
  for (auto& v : visited) v.store(0);
  // Seed tasks carry wide ranges; each splits itself into unit submits
  // instead of executing directly.
  auto body = [&](VertexId beg, VertexId end) {
    if (end - beg > 1) {
      for (VertexId u = beg; u < end; ++u) executor.submit({u, u + 1});
      return;
    }
    visited[beg].fetch_add(1);
  };
  std::vector<TaskRange> seeds;
  for (VertexId u = 0; u < n; u += 100) seeds.push_back({u, u + 100});
  executor.run(seeds.data(), seeds.size(), body);
  for (VertexId u = 0; u < n; ++u) ASSERT_EQ(visited[u].load(), 1);
}

TEST(Executor, CurrentWorkerIdentifiesWorkers) {
  Executor executor(3);
  EXPECT_EQ(executor.current_worker(), -1);  // master thread
  std::atomic<int> bad{0};
  const auto tasks = unit_ranges(1000);
  executor.run(tasks.data(), tasks.size(), [&](VertexId, VertexId) {
    const int w = executor.current_worker();
    if (w < 0 || w >= 3) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(executor.current_worker(), -1);
}

TEST(Executor, TwoExecutorsDoNotConfuseWorkerIds) {
  Executor a(2);
  Executor b(2);
  std::atomic<int> bad{0};
  const auto tasks = unit_ranges(200);
  a.run(tasks.data(), tasks.size(), [&](VertexId, VertexId) {
    // Inside an `a` worker, `b` must disown the thread.
    if (b.current_worker() != -1) bad.fetch_add(1);
    if (a.current_worker() < 0) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Executor, StatsCountTasksExactly) {
  Executor executor(4);
  constexpr VertexId n = 3000;
  const auto tasks = unit_ranges(n);
  executor.run(tasks.data(), tasks.size(), [](VertexId, VertexId) {});
  executor.run(tasks.data(), tasks.size(), [](VertexId, VertexId) {});
  const auto stats = executor.stats();
  EXPECT_EQ(stats.tasks_executed, 2ull * n);
  EXPECT_GE(stats.busy_seconds, 0.0);
  EXPECT_GE(stats.idle_seconds, 0.0);
}

TEST(Executor, SkewedLoadProducesSteals) {
  // Worker 0's segment starts with a long task; while it sleeps there, the
  // other workers drain their segments and must steal the remainder of
  // worker 0's. (Whoever claims the long task first, its remaining segment
  // is drained by non-owners.)
  Executor executor(4);
  constexpr VertexId n = 64;
  const auto tasks = unit_ranges(n);
  executor.run(tasks.data(), tasks.size(), [&](VertexId beg, VertexId) {
    if (beg == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });
  EXPECT_GT(executor.stats().steals, 0u);
  EXPECT_EQ(executor.stats().tasks_executed, n);
}

TEST(Executor, SingleThreadExecutesEverything) {
  Executor executor(1);
  constexpr VertexId n = 4096;
  std::vector<std::atomic<int>> visited(n);
  for (auto& v : visited) v.store(0);
  const auto tasks = unit_ranges(n);
  executor.run(tasks.data(), tasks.size(), [&](VertexId beg, VertexId end) {
    for (VertexId u = beg; u < end; ++u) visited[u].fetch_add(1);
  });
  for (VertexId u = 0; u < n; ++u) ASSERT_EQ(visited[u].load(), 1);
  EXPECT_EQ(executor.stats().steals, 0u);
}

TEST(Executor, DestructorDrainsSubmittedWork) {
  std::atomic<int> done{0};
  {
    Executor executor(2);
    auto body = [&](VertexId, VertexId) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    };
    using B = decltype(body);
    executor.begin_phase(
        [](void* ctx, VertexId beg, VertexId end) {
          (*static_cast<B*>(ctx))(beg, end);
        },
        &body);
    for (VertexId u = 0; u < 20; ++u) executor.submit({u, u + 1});
    // No wait_idle(): the destructor must finish the 20 tasks before the
    // body (and `done`) go out of scope — parity with the legacy pool.
  }
  EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace ppscan
