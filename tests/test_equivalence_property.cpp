// The library's central property: every algorithm — SCAN, pSCAN, SCAN-XP,
// anySCAN-lite, ppSCAN under any configuration — produces the same roles and
// clusters as the brute-force reference, on a randomized graph/parameter
// grid. This is the cross-algorithm suite DESIGN.md §6 calls for.
#include <gtest/gtest.h>

#include "bench_support/algorithms.hpp"
#include "support/random_graphs.hpp"
#include "support/reference_scan.hpp"

namespace ppscan {
namespace {

using testing::reference_scan;

struct Case {
  std::string algorithm;
  int threads;
};

class AlgorithmEquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(AlgorithmEquivalenceTest, MatchesReferenceAcrossGraphsAndParams) {
  const auto& [algorithm, threads] = GetParam();
  AlgorithmConfig config;
  config.num_threads = threads;
  for (const auto& g : testing::property_test_graphs(5001, 2)) {
    for (const auto& params : testing::parameter_grid()) {
      const auto expected = reference_scan(g, params);
      const auto run = run_algorithm(algorithm, g, params, config);
      ASSERT_TRUE(results_equivalent(expected, run.result))
          << algorithm << " eps=" << params.eps.to_double()
          << " mu=" << params.mu << ": "
          << describe_result_difference(expected, run.result);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgorithmEquivalenceTest,
    ::testing::Values(Case{"SCAN", 1}, Case{"pSCAN", 1}, Case{"anySCAN", 4},
                      Case{"SCAN-XP", 4}, Case{"ppSCAN", 4},
                      Case{"ppSCAN-NO", 4}),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name = info.param.algorithm + "_t" +
                         std::to_string(info.param.threads);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(AlgorithmRegistry, ListsThePaperAlgorithms) {
  const auto names = algorithm_names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names.front(), "SCAN");
  EXPECT_EQ(names.back(), "ppSCAN-NO");
}

TEST(AlgorithmRegistry, RejectsUnknownName) {
  const auto g = testing::property_test_graphs(5002, 1).front();
  EXPECT_THROW(run_algorithm("turboSCAN", g, ScanParams::make("0.5", 2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace ppscan
