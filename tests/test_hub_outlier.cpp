#include <gtest/gtest.h>

#include <algorithm>

#include "graph/fixtures.hpp"
#include "graph/graph_builder.hpp"
#include "scan/scan_common.hpp"
#include "support/reference_scan.hpp"

namespace ppscan {
namespace {

using testing::reference_scan;

TEST(HubOutlier, ClusterMembersAreMembers) {
  const auto g = make_clique(6);
  const auto result = reference_scan(g, ScanParams::make("0.5", 2));
  const auto classes = classify_hubs_outliers(g, result);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_EQ(classes[u], VertexClass::Member);
  }
}

TEST(HubOutlier, BridgeVertexBetweenTwoClustersIsHub) {
  // Two 5-cliques, plus vertex 10 adjacent to one vertex of each clique:
  // 10 is unclustered but touches two clusters → hub.
  EdgeList edges;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) {
      edges.emplace_back(u, v);
      edges.emplace_back(5 + u, 5 + v);
    }
  }
  edges.emplace_back(0, 10);
  edges.emplace_back(5, 10);
  const auto g = GraphBuilder::from_edges(edges, 11);
  const auto params = ScanParams::make("0.7", 3);
  const auto result = reference_scan(g, params);
  ASSERT_TRUE(result.roles[10] == Role::NonCore);
  const auto classes = classify_hubs_outliers(g, result);
  // The two cliques are separate clusters.
  ASSERT_EQ(result.num_clusters(), 2u);
  EXPECT_EQ(classes[10], VertexClass::Hub);
}

TEST(HubOutlier, DanglingVertexIsOutlier) {
  // A 5-clique with a pendant path: the path end touches at most one
  // cluster, so it is an outlier.
  EdgeList edges;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) edges.emplace_back(u, v);
  }
  edges.emplace_back(4, 5);
  edges.emplace_back(5, 6);
  const auto g = GraphBuilder::from_edges(edges, 7);
  const auto result = reference_scan(g, ScanParams::make("0.8", 3));
  const auto classes = classify_hubs_outliers(g, result);
  EXPECT_EQ(classes[6], VertexClass::Outlier);
}

TEST(HubOutlier, IsolatedVertexIsOutlier) {
  const auto g = GraphBuilder::from_edges({{0, 1}, {0, 2}, {1, 2}}, 4);
  const auto result = reference_scan(g, ScanParams::make("0.5", 2));
  const auto classes = classify_hubs_outliers(g, result);
  EXPECT_EQ(classes[3], VertexClass::Outlier);
}

TEST(HubOutlier, NonCoreInsideAClusterIsMember) {
  // Clique chain: the joint vertices may be non-core yet still belong to a
  // cluster via a similar core neighbor.
  const auto g = make_clique_chain(3, 5);
  const auto params = ScanParams::make("0.6", 3);
  const auto result = reference_scan(g, params);
  const auto classes = classify_hubs_outliers(g, result);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const bool in_cluster =
        result.roles[u] == Role::Core ||
        std::any_of(result.noncore_memberships.begin(),
                    result.noncore_memberships.end(),
                    [u](const auto& p) { return p.first == u; });
    if (in_cluster) {
      EXPECT_EQ(classes[u], VertexClass::Member) << "vertex " << u;
    } else {
      EXPECT_NE(classes[u], VertexClass::Member) << "vertex " << u;
    }
  }
}

TEST(HubOutlier, NeighborInTwoClustersMakesHub) {
  // Vertex h's single neighbor b is a non-core belonging to two clusters;
  // by Definition 2.10 h's neighborhood spans two clusters → hub.
  // Build: two 4-cliques sharing border non-core b; h attached to b.
  EdgeList edges;
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) {
      edges.emplace_back(u, v);          // clique A: 0..3
      edges.emplace_back(4 + u, 4 + v);  // clique B: 4..7
    }
  }
  const VertexId b = 8, h = 9;
  edges.emplace_back(0, b);
  edges.emplace_back(4, b);
  edges.emplace_back(b, h);
  const auto g = GraphBuilder::from_edges(edges, 10);
  // Pick parameters making 0 and 4 cores similar to b, but b non-core.
  const auto params = ScanParams::make("0.55", 3);
  const auto result = reference_scan(g, params);
  const auto classes = classify_hubs_outliers(g, result);
  // Validate the scenario premises before the actual assertion.
  std::size_t b_memberships = 0;
  for (const auto& [v, cid] : result.noncore_memberships) {
    if (v == b) ++b_memberships;
  }
  if (b_memberships >= 2 && classes[h] != VertexClass::Member) {
    EXPECT_EQ(classes[h], VertexClass::Hub);
  }
}

}  // namespace
}  // namespace ppscan
