// Stress tests for the work-stealing executor, sized for ThreadSanitizer:
// they run in the `tsan` CI job (with no OpenMP in the binary — TSan cannot
// see libgomp's internal synchronization), so iteration counts are chosen to
// finish in seconds under TSan's ~10x slowdown while still exercising
// thousands of claim/steal/park transitions.
#include "concurrent/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

namespace ppscan {
namespace {

TEST(ExecutorStress, ManyTinyTasksAcrossManyPhases) {
  Executor executor(4);
  constexpr int kPhases = 300;
  constexpr VertexId kTasks = 128;
  std::vector<TaskRange> tasks;
  for (VertexId i = 0; i < kTasks; ++i) tasks.push_back({i, i + 1});
  std::atomic<std::uint64_t> sum{0};
  for (int p = 0; p < kPhases; ++p) {
    executor.run(tasks.data(), tasks.size(),
                 [&](VertexId beg, VertexId) { sum.fetch_add(beg); });
  }
  constexpr std::uint64_t per_phase =
      static_cast<std::uint64_t>(kTasks - 1) * kTasks / 2;
  EXPECT_EQ(sum.load(), per_phase * kPhases);
  EXPECT_EQ(executor.stats().tasks_executed,
            static_cast<std::uint64_t>(kPhases) * kTasks);
}

TEST(ExecutorStress, WaitIdleReuseWithStreamingSubmits) {
  Executor executor(4);
  constexpr int kPhases = 200;
  constexpr VertexId kTasks = 64;
  std::atomic<std::uint64_t> executed{0};
  auto body = [&](VertexId, VertexId) { executed.fetch_add(1); };
  using B = decltype(body);
  for (int p = 0; p < kPhases; ++p) {
    executor.begin_phase(
        [](void* ctx, VertexId beg, VertexId end) {
          (*static_cast<B*>(ctx))(beg, end);
        },
        &body);
    for (VertexId u = 0; u < kTasks; ++u) executor.submit({u, u + 1});
    executor.wait_idle();
    ASSERT_EQ(executed.load(),
              static_cast<std::uint64_t>(p + 1) * kTasks);
  }
}

TEST(ExecutorStress, AlternatingFlatAndStreamingPhases) {
  // Flat-array claiming and deque submits share phase/pending state; making
  // them alternate catches cross-phase tag bugs (a stale segment cursor
  // must never validate against a later phase's state).
  Executor executor(4);
  constexpr int kRounds = 150;
  constexpr VertexId kTasks = 96;
  std::vector<TaskRange> tasks;
  for (VertexId i = 0; i < kTasks; ++i) tasks.push_back({i, i + 1});
  std::atomic<std::uint64_t> executed{0};
  auto body = [&](VertexId, VertexId) { executed.fetch_add(1); };
  using B = decltype(body);
  const RangeFn trampoline = [](void* ctx, VertexId beg, VertexId end) {
    (*static_cast<B*>(ctx))(beg, end);
  };
  for (int r = 0; r < kRounds; ++r) {
    executor.run(tasks.data(), tasks.size(), trampoline, &body);
    executor.begin_phase(trampoline, &body);
    for (VertexId u = 0; u < kTasks; ++u) executor.submit({u, u + 1});
    executor.wait_idle();
    ASSERT_EQ(executed.load(),
              static_cast<std::uint64_t>(r + 1) * kTasks * 2);
  }
}

TEST(ExecutorStress, NestedSubmitFanOut) {
  // Each seed task fans out into unit submits from inside workers,
  // exercising concurrent owner-push/thief-steal on the Chase-Lev deques.
  Executor executor(4);
  constexpr int kRounds = 50;
  constexpr VertexId kLeaves = 512;
  std::atomic<std::uint64_t> leaves{0};
  auto body = [&](VertexId beg, VertexId end) {
    if (end - beg > 1) {
      const VertexId mid = beg + (end - beg) / 2;
      executor.submit({beg, mid});
      executor.submit({mid, end});
      return;
    }
    leaves.fetch_add(1);
  };
  for (int r = 0; r < kRounds; ++r) {
    const TaskRange root{0, kLeaves};
    executor.run(&root, 1, body);
    ASSERT_EQ(leaves.load(), static_cast<std::uint64_t>(r + 1) * kLeaves);
  }
}

TEST(ExecutorStress, SteadyStealPressure) {
  // Repeated dense phases on more workers than cores keep every cursor
  // contended (fast workers finish their segment and raid the laggards'),
  // verifying the claim CAS and exactly-once delivery under steal pressure.
  Executor executor(4);
  constexpr int kRounds = 100;
  constexpr VertexId kTasks = 256;
  std::vector<TaskRange> tasks;
  for (VertexId i = 0; i < kTasks; ++i) tasks.push_back({i, i + 1});
  std::vector<std::atomic<std::uint8_t>> visited(kTasks);
  for (int r = 0; r < kRounds; ++r) {
    for (auto& v : visited) v.store(0);
    executor.run(tasks.data(), tasks.size(), [&](VertexId beg, VertexId) {
      visited[beg].fetch_add(1);
    });
    for (VertexId i = 0; i < kTasks; ++i) {
      ASSERT_EQ(visited[i].load(), 1) << "round " << r << " task " << i;
    }
  }
}

}  // namespace
}  // namespace ppscan
