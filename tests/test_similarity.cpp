#include "setops/similarity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace ppscan {
namespace {

TEST(EpsRational, ParsesPlainDecimal) {
  const auto e = EpsRational::parse("0.2");
  EXPECT_EQ(e.num, 1u);
  EXPECT_EQ(e.den, 5u);
}

TEST(EpsRational, ParsesWithoutLeadingZero) {
  const auto e = EpsRational::parse(".5");
  EXPECT_EQ(e.num, 1u);
  EXPECT_EQ(e.den, 2u);
}

TEST(EpsRational, ParsesOne) {
  const auto e = EpsRational::parse("1");
  EXPECT_EQ(e.num, 1u);
  EXPECT_EQ(e.den, 1u);
}

TEST(EpsRational, ParsesLongDecimal) {
  const auto e = EpsRational::parse("0.35");
  EXPECT_EQ(e.num, 7u);
  EXPECT_EQ(e.den, 20u);
}

TEST(EpsRational, RejectsOutOfRange) {
  EXPECT_THROW(EpsRational::parse("0"), std::invalid_argument);
  EXPECT_THROW(EpsRational::parse("0.0"), std::invalid_argument);
  EXPECT_THROW(EpsRational::parse("1.5"), std::invalid_argument);
}

TEST(EpsRational, RejectsMalformed) {
  EXPECT_THROW(EpsRational::parse(""), std::invalid_argument);
  EXPECT_THROW(EpsRational::parse("0..5"), std::invalid_argument);
  EXPECT_THROW(EpsRational::parse("0.x"), std::invalid_argument);
  EXPECT_THROW(EpsRational::parse("0.1234567890123"), std::invalid_argument);
}

TEST(EpsRational, RejectsIntegerOverflowInsteadOfWrapping) {
  // num = num * 10 + d wraps at 20 digits; a wrapped value could land in
  // (0, den] and sneak past the range check as a bogus ε.
  EXPECT_THROW(EpsRational::parse("18446744073709551616"),  // 2^64
               std::invalid_argument);
  EXPECT_THROW(EpsRational::parse("99999999999999999999999999"),
               std::invalid_argument);
  // 2^64 + 1 written with a decimal point: wraps to num=1, den=10 ⇒ 0.1.
  EXPECT_THROW(EpsRational::parse("1844674407370955161.6"),
               std::invalid_argument);
}

TEST(EpsRational, FromDoubleApproximates) {
  const auto e = EpsRational::from_double(0.25);
  EXPECT_DOUBLE_EQ(e.to_double(), 0.25);
  EXPECT_THROW(EpsRational::from_double(0.0), std::invalid_argument);
  EXPECT_THROW(EpsRational::from_double(1.1), std::invalid_argument);
}

TEST(Similarity, MatchesDefinitionOnSmallCases) {
  // d_u = d_v = 3: threshold ε·√16 = 4ε. With ε = 0.5 → need cn ≥ 2.
  const auto eps = EpsRational::parse("0.5");
  EXPECT_TRUE(similarity_holds(eps, 2, 3, 3));
  EXPECT_FALSE(similarity_holds(eps, 1, 3, 3));
}

TEST(Similarity, BoundaryIsInclusive) {
  // ε = 0.5, d_u = d_v = 7: threshold = 0.5·√64 = 4 exactly; cn = 4 is Sim.
  const auto eps = EpsRational::parse("0.5");
  EXPECT_TRUE(similarity_holds(eps, 4, 7, 7));
  EXPECT_FALSE(similarity_holds(eps, 3, 7, 7));
}

TEST(MinCommonNeighbors, IsTheSmallestSatisfyingCount) {
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto du = static_cast<VertexId>(rng.next_below(500));
    const auto dv = static_cast<VertexId>(rng.next_below(500));
    EpsRational eps{1 + rng.next_below(99), 100};
    const std::uint32_t need = min_common_neighbors(eps, du, dv);
    EXPECT_TRUE(similarity_holds(eps, need, du, dv));
    if (need > 0) {
      EXPECT_FALSE(similarity_holds(eps, need - 1, du, dv));
    }
  }
}

TEST(MinCommonNeighbors, AgreesWithCeilFormulaAwayFromTies) {
  Rng rng(123);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto du = static_cast<VertexId>(rng.next_below(2000));
    const auto dv = static_cast<VertexId>(rng.next_below(2000));
    EpsRational eps{1 + rng.next_below(9), 10};
    const double exact = eps.to_double() *
                         std::sqrt(static_cast<double>(du + 1) *
                                   static_cast<double>(dv + 1));
    const std::uint32_t need = min_common_neighbors(eps, du, dv);
    // min_cn is the ceiling of the exact threshold (ties resolve downward
    // because the predicate is >=).
    EXPECT_GE(static_cast<double>(need) + 1e-9, exact);
    EXPECT_LE(static_cast<double>(need) - 1.0 - 1e-9, exact);
  }
}

TEST(MinCommonNeighbors, ExactOnHugeDegrees) {
  // 128-bit arithmetic must survive degrees near the 32-bit limit.
  const EpsRational eps{999'999, 1'000'000};
  const VertexId big = 2'000'000'000;
  const std::uint32_t need = min_common_neighbors(eps, big, big);
  EXPECT_TRUE(similarity_holds(eps, need, big, big));
  EXPECT_FALSE(similarity_holds(eps, need - 1, big, big));
}

TEST(PredicatePrune, SimWhenThresholdAtMostTwo) {
  // Tiny degrees: ε·√((1+1)(1+1)) = 2ε ≤ 2 → adjacency alone suffices.
  EXPECT_EQ(predicate_prune(EpsRational::parse("0.9"), 1, 1),
            PruneOutcome::Sim);
}

TEST(PredicatePrune, NSimWhenDegreeGapTooLarge) {
  // d_u = 1 caps the intersection at 2 < need for a high-degree partner.
  EXPECT_EQ(predicate_prune(EpsRational::parse("0.8"), 1, 1000),
            PruneOutcome::NSim);
}

TEST(PredicatePrune, UnknownInBetween) {
  EXPECT_EQ(predicate_prune(EpsRational::parse("0.5"), 20, 20),
            PruneOutcome::Unknown);
}

TEST(PredicatePrune, ConsistentWithPredicateExtremes) {
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto du = static_cast<VertexId>(rng.next_below(100));
    const auto dv = static_cast<VertexId>(rng.next_below(100));
    EpsRational eps{1 + rng.next_below(99), 100};
    const auto outcome = predicate_prune(eps, du, dv);
    // cn for adjacent vertices lies in [2, min+1]; Sim/NSim prunes must
    // agree with the predicate at the corresponding extreme.
    if (outcome == PruneOutcome::Sim) {
      EXPECT_TRUE(similarity_holds(eps, 2, du, dv));
    } else if (outcome == PruneOutcome::NSim) {
      EXPECT_FALSE(
          similarity_holds(eps, std::min(du, dv) + 1, du, dv));
    }
  }
}

}  // namespace
}  // namespace ppscan
