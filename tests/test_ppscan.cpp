#include "core/ppscan.hpp"

#include <gtest/gtest.h>

#include "graph/fixtures.hpp"
#include "graph/generators.hpp"
#include "graph/graph_builder.hpp"
#include "scan/pscan.hpp"
#include "support/random_graphs.hpp"
#include "support/reference_scan.hpp"

namespace ppscan {
namespace {

using testing::property_test_graphs;
using testing::reference_scan;

TEST(PpScan, MatchesReferenceSingleThreaded) {
  for (const auto& g : property_test_graphs(3001)) {
    for (const auto& params : testing::parameter_grid()) {
      const auto expected = reference_scan(g, params);
      const auto run = ppscan(g, params);
      EXPECT_TRUE(results_equivalent(expected, run.result))
          << "eps=" << params.eps.to_double() << " mu=" << params.mu << ": "
          << describe_result_difference(expected, run.result);
    }
  }
}

TEST(PpScan, MatchesReferenceMultiThreaded) {
  PpScanOptions options;
  options.num_threads = 4;
  for (const auto& g : property_test_graphs(3002, 2)) {
    for (const auto& params : testing::parameter_grid()) {
      const auto expected = reference_scan(g, params);
      const auto run = ppscan(g, params, options);
      EXPECT_TRUE(results_equivalent(expected, run.result))
          << "eps=" << params.eps.to_double() << " mu=" << params.mu << ": "
          << describe_result_difference(expected, run.result);
    }
  }
}

struct PpScanConfig {
  int threads;
  IntersectKind kernel;
  SchedulerKind scheduler;
};

class PpScanConfigTest : public ::testing::TestWithParam<PpScanConfig> {};

TEST_P(PpScanConfigTest, DeterministicAcrossConfigurations) {
  // The clustering result must be identical no matter the thread count,
  // kernel, or scheduling policy — the central determinism claim.
  const auto config = GetParam();
  if (!kernel_supported(config.kernel)) {
    GTEST_SKIP() << "kernel unsupported";
  }
  LfrParams p;
  p.n = 800;
  p.avg_degree = 14;
  p.mixing = 0.25;
  const auto g = lfr_like(p, 55);
  const auto params = ScanParams::make("0.5", 4);
  const auto expected = reference_scan(g, params);

  PpScanOptions options;
  options.num_threads = config.threads;
  options.kernel = config.kernel;
  options.scheduler.kind = config.scheduler;
  const auto run = ppscan(g, params, options);
  EXPECT_TRUE(results_equivalent(expected, run.result))
      << describe_result_difference(expected, run.result);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PpScanConfigTest,
    ::testing::Values(
        PpScanConfig{1, IntersectKind::MergeEarlyStop, SchedulerKind::DegreeSum},
        PpScanConfig{1, IntersectKind::PivotScalar, SchedulerKind::DegreeSum},
        PpScanConfig{1, IntersectKind::PivotAvx2, SchedulerKind::DegreeSum},
        PpScanConfig{1, IntersectKind::PivotAvx512, SchedulerKind::DegreeSum},
        PpScanConfig{2, IntersectKind::Auto, SchedulerKind::DegreeSum},
        PpScanConfig{4, IntersectKind::Auto, SchedulerKind::DegreeSum},
        PpScanConfig{8, IntersectKind::Auto, SchedulerKind::DegreeSum},
        PpScanConfig{4, IntersectKind::Auto, SchedulerKind::StaticRange},
        PpScanConfig{4, IntersectKind::Auto, SchedulerKind::FixedChunk},
        PpScanConfig{4, IntersectKind::Auto, SchedulerKind::OmpDynamic},
        PpScanConfig{4, IntersectKind::PivotAvx512, SchedulerKind::StaticRange},
        PpScanConfig{3, IntersectKind::PivotAvx2, SchedulerKind::FixedChunk}),
    [](const ::testing::TestParamInfo<PpScanConfig>& info) {
      return "t" + std::to_string(info.param.threads) + "_" +
             to_string(info.param.kernel) + "_" +
             to_string(info.param.scheduler);
    });

struct AblationConfig {
  bool predicate;
  bool minmax;
  bool unionfind;
};

class PpScanAblationTest : public ::testing::TestWithParam<AblationConfig> {};

TEST_P(PpScanAblationTest, PruningSwitchesNeverChangeTheResult) {
  const auto config = GetParam();
  PpScanOptions options;
  options.num_threads = 4;
  options.predicate_pruning = config.predicate;
  options.minmax_pruning = config.minmax;
  options.unionfind_pruning = config.unionfind;
  for (const auto& g : property_test_graphs(3003, 1)) {
    const auto params = ScanParams::make("0.4", 3);
    const auto expected = reference_scan(g, params);
    const auto run = ppscan(g, params, options);
    EXPECT_TRUE(results_equivalent(expected, run.result))
        << describe_result_difference(expected, run.result);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSwitchCombinations, PpScanAblationTest,
    ::testing::Values(AblationConfig{false, false, false},
                      AblationConfig{true, false, false},
                      AblationConfig{false, true, false},
                      AblationConfig{false, false, true},
                      AblationConfig{true, true, false},
                      AblationConfig{true, false, true},
                      AblationConfig{false, true, true},
                      AblationConfig{true, true, true}),
    [](const ::testing::TestParamInfo<AblationConfig>& info) {
      std::string name;
      name += info.param.predicate ? "P" : "p";
      name += info.param.minmax ? "M" : "m";
      name += info.param.unionfind ? "U" : "u";
      return name;
    });

TEST(PpScan, InvocationsNeverExceedEdgeCount) {
  // Theorem 4.1: each edge is intersected at most once.
  PpScanOptions options;
  options.num_threads = 4;
  for (const auto& g : property_test_graphs(3004, 1)) {
    for (const auto& params : testing::parameter_grid()) {
      const auto run = ppscan(g, params, options);
      EXPECT_LE(run.stats.compsim_invocations, g.num_edges());
    }
  }
}

TEST(PpScan, InvocationCountComparableToPscan) {
  // Figure 4's claim: ppSCAN does a similar amount of set-intersection work
  // as pSCAN (we allow a modest band).
  LfrParams p;
  p.n = 3000;
  p.avg_degree = 20;
  const auto g = lfr_like(p, 77);
  for (const char* eps : {"0.2", "0.5", "0.8"}) {
    const auto params = ScanParams::make(eps, 5);
    const auto pp = ppscan(g, params);
    const auto ps = pscan(g, params);
    EXPECT_LE(pp.stats.compsim_invocations,
              ps.stats.compsim_invocations * 3 / 2 + 100)
        << "eps=" << eps;
  }
}

TEST(PpScan, NoPruningIntersectsExactlyEveryEdge) {
  // With predicate and min-max pruning disabled nothing is settled early —
  // except the ed < µ degree rule that is structural in PruneSim, which
  // µ = 1 disarms for every non-isolated vertex. The core-checking phase
  // then computes each edge exactly once (u < v ownership) and nothing is
  // left for the later phases.
  PpScanOptions options;
  options.num_threads = 4;
  options.predicate_pruning = false;
  options.minmax_pruning = false;
  for (const auto& g : property_test_graphs(3007, 1)) {
    const auto run = ppscan(g, ScanParams::make("0.5", 1), options);
    EXPECT_EQ(run.stats.compsim_invocations, g.num_edges());
  }
}

TEST(PpScan, PruningOnlyEverReducesInvocations) {
  LfrParams p;
  p.n = 1500;
  p.avg_degree = 18;
  const auto g = lfr_like(p, 21);
  for (const char* eps : {"0.2", "0.5", "0.8"}) {
    const auto params = ScanParams::make(eps, 5);
    PpScanOptions off;
    off.predicate_pruning = false;
    off.minmax_pruning = false;
    off.unionfind_pruning = false;
    const auto baseline = ppscan(g, params, off);
    const auto pruned = ppscan(g, params);
    EXPECT_LE(pruned.stats.compsim_invocations,
              baseline.stats.compsim_invocations)
        << "eps=" << eps;
  }
}

TEST(PpScan, StageTimersPopulated) {
  LfrParams p;
  p.n = 1000;
  p.avg_degree = 16;
  const auto g = lfr_like(p, 5);
  const auto run = ppscan(g, ScanParams::make("0.3", 3));
  EXPECT_GT(run.stats.stage_prune_seconds, 0.0);
  EXPECT_GT(run.stats.stage_check_seconds, 0.0);
  EXPECT_GT(run.stats.stage_core_cluster_seconds, 0.0);
  EXPECT_GT(run.stats.stage_noncore_cluster_seconds, 0.0);
  EXPECT_GE(run.stats.total_seconds,
            run.stats.stage_prune_seconds + run.stats.stage_check_seconds);
  EXPECT_GT(run.stats.tasks_submitted, 0u);
}

TEST(PpScan, RunToRunDeterminism) {
  PpScanOptions options;
  options.num_threads = 8;
  const auto g = erdos_renyi(500, 3000, 42);
  const auto params = ScanParams::make("0.5", 3);
  const auto first = ppscan(g, params, options);
  for (int i = 0; i < 5; ++i) {
    const auto again = ppscan(g, params, options);
    EXPECT_TRUE(results_equivalent(first.result, again.result));
  }
}

TEST(PpScan, EmptyGraphAndIsolatedVertices) {
  const auto g = GraphBuilder::from_edges({{0, 1}}, 6);
  const auto run = ppscan(g, ScanParams::make("0.5", 1));
  for (VertexId u = 2; u < 6; ++u) {
    EXPECT_EQ(run.result.roles[u], Role::NonCore);
  }
  EXPECT_EQ(run.result.num_clusters(), 1u);  // the twin-leaf edge pair
}

TEST(PpScan, MuLargerThanAnyDegreeYieldsNoCores) {
  const auto g = make_clique(8);
  const auto run = ppscan(g, ScanParams::make("0.5", 20));
  EXPECT_EQ(run.result.num_cores(), 0u);
  EXPECT_EQ(run.result.num_clusters(), 0u);
  // Everything was settled by PruneSim's ed < µ rule — zero intersections.
  EXPECT_EQ(run.stats.compsim_invocations, 0u);
}

TEST(PpScan, EpsilonOneOnlyAcceptsTwins) {
  // ε = 1 requires Γ(u) = Γ(v); in a clique every pair qualifies.
  const auto g = make_clique(5);
  const auto run = ppscan(g, ScanParams::make("1", 2));
  EXPECT_EQ(run.result.num_clusters(), 1u);
  // In a path, no adjacent pair has identical closed neighborhoods.
  const auto path = make_path(6);
  const auto path_run = ppscan(path, ScanParams::make("1", 1));
  EXPECT_EQ(path_run.result.num_clusters(), 0u);
}

}  // namespace
}  // namespace ppscan
