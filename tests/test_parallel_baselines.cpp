#include <gtest/gtest.h>

#include "graph/fixtures.hpp"
#include "graph/generators.hpp"
#include "graph/graph_builder.hpp"
#include "scan/anyscan_lite.hpp"
#include "scan/scanxp.hpp"
#include "support/random_graphs.hpp"
#include "support/reference_scan.hpp"

namespace ppscan {
namespace {

using testing::property_test_graphs;
using testing::reference_scan;

TEST(ScanXp, MatchesReferenceOnPropertySuite) {
  ScanXpOptions options;
  options.num_threads = 4;
  for (const auto& g : property_test_graphs(4001)) {
    for (const auto& params : testing::parameter_grid()) {
      const auto expected = reference_scan(g, params);
      const auto run = scanxp(g, params, options);
      EXPECT_TRUE(results_equivalent(expected, run.result))
          << "eps=" << params.eps.to_double() << " mu=" << params.mu << ": "
          << describe_result_difference(expected, run.result);
    }
  }
}

TEST(ScanXp, ExhaustiveIntersectsEveryEdgeOnce) {
  // SCAN-XP has no pruning: exactly |E| intersections, regardless of ε.
  const auto g = erdos_renyi(300, 1500, 12);
  for (const char* eps : {"0.2", "0.8"}) {
    const auto run = scanxp(g, ScanParams::make(eps, 5));
    EXPECT_EQ(run.stats.compsim_invocations, g.num_edges());
  }
}

TEST(ScanXp, CountKernelChoiceDoesNotChangeResult) {
  const auto g = erdos_renyi(250, 2000, 14);
  const auto params = ScanParams::make("0.45", 3);
  ScanXpOptions scalar;
  scalar.count_kernel = IntersectKind::PivotScalar;  // maps to merge count
  const auto baseline = scanxp(g, params, scalar);
  for (const auto kind : {IntersectKind::PivotAvx2,
                          IntersectKind::PivotAvx512, IntersectKind::Auto}) {
    if (!kernel_supported(kind)) continue;
    ScanXpOptions options;
    options.count_kernel = kind;
    options.num_threads = 2;
    const auto run = scanxp(g, params, options);
    EXPECT_TRUE(results_equivalent(baseline.result, run.result))
        << to_string(kind);
    EXPECT_EQ(run.stats.compsim_invocations, g.num_edges());
  }
}

TEST(ScanXp, ThreadCountDoesNotChangeResult) {
  const auto g = property_test_graphs(4002, 1).front();
  const auto params = ScanParams::make("0.5", 3);
  const auto one = scanxp(g, params, {.num_threads = 1});
  for (const int t : {2, 4, 8}) {
    const auto many = scanxp(g, params, {.num_threads = t});
    EXPECT_TRUE(results_equivalent(one.result, many.result));
  }
}

TEST(AnyScanLite, MatchesReferenceOnPropertySuite) {
  AnyScanLiteOptions options;
  options.num_threads = 4;
  options.block_size = 64;  // force several block iterations
  for (const auto& g : property_test_graphs(4003)) {
    for (const auto& params : testing::parameter_grid()) {
      const auto expected = reference_scan(g, params);
      const auto run = anyscan_lite(g, params, options);
      EXPECT_TRUE(results_equivalent(expected, run.result))
          << "eps=" << params.eps.to_double() << " mu=" << params.mu << ": "
          << describe_result_difference(expected, run.result);
    }
  }
}

TEST(AnyScanLite, RedundancyIsBounded) {
  // No cross-vertex reuse means up to 2 intersections per edge from role
  // computing plus completion work for cores — but never more than 2|E|.
  const auto g = erdos_renyi(400, 3000, 9);
  for (const char* eps : {"0.3", "0.6"}) {
    const auto run = anyscan_lite(g, ScanParams::make(eps, 4));
    EXPECT_LE(run.stats.compsim_invocations, 2 * g.num_edges());
  }
}

TEST(AnyScanLite, BlockSizeDoesNotChangeResult) {
  const auto g = property_test_graphs(4004, 1).front();
  const auto params = ScanParams::make("0.4", 2);
  AnyScanLiteOptions a;
  a.block_size = 16;
  AnyScanLiteOptions b;
  b.block_size = 100000;
  const auto run_a = anyscan_lite(g, params, a);
  const auto run_b = anyscan_lite(g, params, b);
  EXPECT_TRUE(results_equivalent(run_a.result, run_b.result));
}

TEST(ParallelBaselines, AgreeWithEachOtherOnCommunityGraph) {
  LfrParams p;
  p.n = 1200;
  p.avg_degree = 18;
  p.mixing = 0.25;
  const auto g = lfr_like(p, 31);
  const auto params = ScanParams::make("0.55", 4);
  const auto xp = scanxp(g, params, {.num_threads = 4});
  AnyScanLiteOptions al;
  al.num_threads = 4;
  const auto any = anyscan_lite(g, params, al);
  EXPECT_TRUE(results_equivalent(xp.result, any.result))
      << describe_result_difference(xp.result, any.result);
}

}  // namespace
}  // namespace ppscan
