#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>

#include "util/env.hpp"
#include "util/timer.hpp"

namespace ppscan {
namespace {

TEST(WallTimer, ElapsedIsMonotoneNonNegative) {
  WallTimer timer;
  const double first = timer.elapsed_s();
  EXPECT_GE(first, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double second = timer.elapsed_s();
  EXPECT_GE(second, first);
  EXPECT_GE(second, 0.004);
}

TEST(WallTimer, ResetRestarts) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  timer.reset();
  EXPECT_LT(timer.elapsed_s(), 0.009);
}

TEST(WallTimer, MillisecondsMatchSeconds) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double s = timer.elapsed_s();
  const double ms = timer.elapsed_ms();
  EXPECT_NEAR(ms, s * 1e3, 5.0);
}

TEST(ScopedAccumTimer, AccumulatesAcrossScopes) {
  double sink = 0;
  for (int i = 0; i < 3; ++i) {
    ScopedAccumTimer timer(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  EXPECT_GE(sink, 0.008);
}

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST(Env, BenchScaleReadsEnvironment) {
  EnvGuard guard("PPSCAN_SCALE", "2.5");
  EXPECT_DOUBLE_EQ(bench_scale(), 2.5);
}

TEST(Env, BenchScaleRejectsNonPositive) {
  EnvGuard guard("PPSCAN_SCALE", "-3");
  EXPECT_DOUBLE_EQ(bench_scale(), 1.0);
  EnvGuard guard2("PPSCAN_SCALE", "garbage");
  EXPECT_DOUBLE_EQ(bench_scale(), 1.0);
}

TEST(Env, DefaultThreadsReadsEnvironment) {
  EnvGuard guard("PPSCAN_THREADS", "7");
  EXPECT_EQ(default_threads(), 7);
}

TEST(Env, DefaultThreadsFallsBackToHardware) {
  EnvGuard guard("PPSCAN_THREADS", "0");
  EXPECT_GE(default_threads(), 1);
}

}  // namespace
}  // namespace ppscan
