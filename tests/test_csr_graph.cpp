#include "graph/csr_graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/fixtures.hpp"
#include "graph/graph_builder.hpp"
#include "util/graph_io_error.hpp"

namespace ppscan {
namespace {

CsrGraph triangle_plus_tail() {
  // 0-1-2 triangle with a tail 2-3.
  return GraphBuilder::from_edges({{0, 1}, {1, 2}, {0, 2}, {2, 3}});
}

TEST(CsrGraph, BasicCounts) {
  const auto g = triangle_plus_tail();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.num_arcs(), 8u);
}

TEST(CsrGraph, Degrees) {
  const auto g = triangle_plus_tail();
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(CsrGraph, NeighborsAreSorted) {
  const auto g = triangle_plus_tail();
  const auto n2 = g.neighbors(2);
  ASSERT_EQ(n2.size(), 3u);
  EXPECT_EQ(n2[0], 0u);
  EXPECT_EQ(n2[1], 1u);
  EXPECT_EQ(n2[2], 3u);
}

TEST(CsrGraph, ArcIndexFindsExistingEdges) {
  const auto g = triangle_plus_tail();
  const EdgeId e = g.arc_index(2, 3);
  ASSERT_NE(e, CsrGraph::kInvalidEdge);
  EXPECT_EQ(g.dst()[e], 3u);
}

TEST(CsrGraph, ArcIndexRejectsMissingEdges) {
  const auto g = triangle_plus_tail();
  EXPECT_EQ(g.arc_index(0, 3), CsrGraph::kInvalidEdge);
  EXPECT_EQ(g.arc_index(3, 0), CsrGraph::kInvalidEdge);
}

TEST(CsrGraph, ReverseArcRoundTrip) {
  const auto g = make_clique(6);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (EdgeId e = g.offset_begin(u); e < g.offset_end(u); ++e) {
      const EdgeId rev = g.reverse_arc(u, e);
      ASSERT_NE(rev, CsrGraph::kInvalidEdge);
      EXPECT_EQ(g.dst()[rev], u);
      // The reverse of the reverse is the original arc.
      EXPECT_EQ(g.reverse_arc(g.dst()[e], rev), e);
    }
  }
}

TEST(CsrGraph, HasEdgeSymmetry) {
  const auto g = triangle_plus_tail();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(1, 3));
}

TEST(CsrGraph, EmptyGraph) {
  const CsrGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(CsrGraph, ValidateAcceptsWellFormed) {
  EXPECT_NO_THROW(triangle_plus_tail().validate());
  EXPECT_NO_THROW(make_clique(5).validate());
}

template <typename Fn>
GraphIoErrorKind thrown_kind(Fn&& fn) {
  try {
    fn();
  } catch (const GraphIoError& e) {
    return e.kind();
  }
  throw std::logic_error("expected a GraphIoError");
}

TEST(CsrGraph, ValidateRejectsSelfLoop) {
  // Build raw arrays with a self loop at vertex 0.
  std::vector<EdgeId> offsets{0, 1, 2};
  std::vector<VertexId> dst{0, 0};
  const CsrGraph g(std::move(offsets), std::move(dst));
  EXPECT_EQ(thrown_kind([&] { g.validate(); }), GraphIoErrorKind::kSelfLoop);
}

TEST(CsrGraph, ValidateRejectsUnsortedNeighbors) {
  std::vector<EdgeId> offsets{0, 2, 3, 4};
  std::vector<VertexId> dst{2, 1, 0, 0};
  const CsrGraph g(std::move(offsets), std::move(dst));
  EXPECT_EQ(thrown_kind([&] { g.validate(); }),
            GraphIoErrorKind::kUnsortedNeighbors);
}

TEST(CsrGraph, ValidateRejectsNonMonotoneOffsets) {
  std::vector<EdgeId> offsets{0, 2, 1, 2};
  std::vector<VertexId> dst{1, 2};
  const CsrGraph g(std::move(offsets), std::move(dst));
  EXPECT_EQ(thrown_kind([&] { g.validate(); }),
            GraphIoErrorKind::kNonMonotoneOffsets);
}

TEST(CsrGraph, ValidateRejectsOutOfRangeNeighbor) {
  std::vector<EdgeId> offsets{0, 1, 2};
  std::vector<VertexId> dst{9, 0};
  const CsrGraph g(std::move(offsets), std::move(dst));
  EXPECT_EQ(thrown_kind([&] { g.validate(); }),
            GraphIoErrorKind::kNeighborOutOfRange);
}

TEST(CsrGraph, ValidateRejectsAsymmetricArc) {
  std::vector<EdgeId> offsets{0, 1, 1};
  std::vector<VertexId> dst{1};
  const CsrGraph g(std::move(offsets), std::move(dst));
  EXPECT_EQ(thrown_kind([&] { g.validate(); }),
            GraphIoErrorKind::kAsymmetricArc);
  // The structural linear pass (what the loaders run) has no symmetry
  // check, so it accepts this graph.
  EXPECT_NO_THROW(g.validate(/*check_symmetry=*/false));
}

TEST(CsrGraph, ConstructorRejectsMalformedOffsets) {
  EXPECT_EQ(thrown_kind([] {
              // Offsets claim 3 arcs, dst provides 1.
              const CsrGraph g(std::vector<EdgeId>{0, 3},
                               std::vector<VertexId>{1});
            }),
            GraphIoErrorKind::kMalformedOffsets);
}

TEST(CsrGraph, IsolatedVertexHasEmptyNeighbors) {
  const auto g = GraphBuilder::from_edges({{0, 1}}, 3);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_TRUE(g.neighbors(2).empty());
}

}  // namespace
}  // namespace ppscan
