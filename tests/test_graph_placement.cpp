// CSR placement (graph/graph_placement.hpp): edge-balanced shard
// boundaries, and the in-place guarantee of apply_placement() — whatever
// policy/topology/hugepage combination is requested, the offsets/dst
// vectors keep their exact contents (placement moves pages, never data)
// and the CSR invariants still hold. Round-trips run against an emulated
// topology so they exercise the sharding logic on any machine.
#include "graph/graph_placement.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "concurrent/topology.hpp"
#include "graph/csr_graph.hpp"
#include "graph/fixtures.hpp"
#include "graph/generators.hpp"

namespace ppscan {
namespace {

NumaTopology two_nodes() { return emulated_topology(2, {0, 1, 2, 3}); }

TEST(EdgeBalancedBoundaries, SingleShardHasNoBoundary) {
  const CsrGraph graph = make_clique(8);
  EXPECT_TRUE(edge_balanced_boundaries(graph.offsets(), 1).empty());
  EXPECT_TRUE(edge_balanced_boundaries(graph.offsets(), 0).empty());
}

TEST(EdgeBalancedBoundaries, BalancesEdgeMassNotVertexCount) {
  // A star: the hub owns half the arcs, every leaf one. A 2-shard split
  // by *vertices* would put ~half the vertices in each shard; the edge-
  // balanced split must cut right after the hub.
  const CsrGraph graph = make_star(1000);
  const auto bounds = edge_balanced_boundaries(graph.offsets(), 2);
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_LE(bounds[0], 2u) << "cut should land immediately after the hub";
}

TEST(EdgeBalancedBoundaries, BoundariesAreMonotoneAndInRange) {
  const CsrGraph graph = make_clique_chain(8, 6);
  const std::size_t shards = 4;
  const auto bounds = edge_balanced_boundaries(graph.offsets(), shards);
  ASSERT_EQ(bounds.size(), shards - 1);
  VertexId prev = 0;
  for (const VertexId b : bounds) {
    EXPECT_GE(b, prev);
    EXPECT_LE(b, graph.num_vertices());
    prev = b;
  }
  // Each shard's arc mass is within one max-degree of the ideal quarter.
  const auto& offsets = graph.offsets();
  std::vector<VertexId> cuts{0};
  cuts.insert(cuts.end(), bounds.begin(), bounds.end());
  cuts.push_back(graph.num_vertices());
  const auto total = static_cast<std::uint64_t>(graph.num_arcs());
  std::uint64_t max_degree = 0;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    max_degree = std::max<std::uint64_t>(max_degree, graph.degree(u));
  }
  for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
    const std::uint64_t mass = offsets[cuts[k + 1]] - offsets[cuts[k]];
    EXPECT_LE(mass, total / shards + max_degree) << "shard " << k;
  }
}

TEST(EdgeBalancedBoundaries, MoreShardsThanEdgesCollapseAtTail) {
  const CsrGraph graph = make_path(3);  // 2 edges, 4 arcs
  const auto bounds = edge_balanced_boundaries(graph.offsets(), 8);
  ASSERT_EQ(bounds.size(), 7u);
  for (const VertexId b : bounds) {
    EXPECT_LE(b, graph.num_vertices());
  }
}

/// The in-place contract: identical vectors before and after, whatever
/// the policy.
void expect_unchanged_round_trip(const PlacementOptions& options) {
  CsrGraph graph = make_two_cliques_bridge(12);
  const std::vector<EdgeId> offsets_before = graph.offsets();
  const std::vector<VertexId> dst_before = graph.dst();
  const PlacementReport report = graph.apply_placement(options);
  (void)report;
  EXPECT_EQ(graph.offsets(), offsets_before);
  EXPECT_EQ(graph.dst(), dst_before);
  EXPECT_NO_THROW(graph.validate());
}

TEST(GraphPlacement, ShardedRoundTripLeavesContentsIntact) {
  const NumaTopology topo = two_nodes();
  PlacementOptions options;
  options.placement = GraphPlacement::Sharded;
  options.topology = &topo;
  expect_unchanged_round_trip(options);
}

TEST(GraphPlacement, InterleaveRoundTripLeavesContentsIntact) {
  const NumaTopology topo = two_nodes();
  PlacementOptions options;
  options.placement = GraphPlacement::Interleave;
  options.topology = &topo;
  expect_unchanged_round_trip(options);
}

TEST(GraphPlacement, HugepagesRoundTripLeavesContentsIntact) {
  PlacementOptions options;
  options.hugepages = true;
  expect_unchanged_round_trip(options);
}

TEST(GraphPlacement, ShardedOnEmulatedTopologyRecordsBounds) {
  CsrGraph graph = make_clique_chain(6, 8);
  const NumaTopology topo = two_nodes();
  PlacementOptions options;
  options.placement = GraphPlacement::Sharded;
  options.topology = &topo;
  const PlacementReport report = graph.apply_placement(options);
  // Emulated topologies must not mbind (the split is synthetic) but do
  // record the shard boundaries the scheduler/executor will reuse.
  EXPECT_TRUE(report.applied);
  ASSERT_EQ(report.shard_bounds.size(), 1u);
  EXPECT_EQ(report.shard_bounds,
            edge_balanced_boundaries(graph.offsets(), 2));
}

TEST(GraphPlacement, DefaultPolicyIsANoOp) {
  CsrGraph graph = make_clique(8);
  const PlacementReport report = graph.apply_placement({});
  EXPECT_FALSE(report.applied);
  EXPECT_FALSE(report.hugepages_advised);
  EXPECT_TRUE(report.shard_bounds.empty());
}

TEST(GraphPlacement, SingleNodeTopologyDegradesWithReason) {
  CsrGraph graph = make_clique(8);
  const NumaTopology topo = emulated_topology(1, {0, 1});
  PlacementOptions options;
  options.placement = GraphPlacement::Sharded;
  options.topology = &topo;
  const PlacementReport report = graph.apply_placement(options);
  EXPECT_FALSE(report.applied);
  EXPECT_FALSE(report.fallback_reason.empty());
}

TEST(GraphPlacement, NullTopologyDegradesWithReason) {
  CsrGraph graph = make_clique(8);
  PlacementOptions options;
  options.placement = GraphPlacement::Interleave;
  const PlacementReport report = graph.apply_placement(options);
  EXPECT_FALSE(report.applied);
  EXPECT_FALSE(report.fallback_reason.empty());
}

TEST(GraphPlacement, PlacementNeverChangesClusteringInputs) {
  // A larger generated graph through the full pipeline: place, then
  // verify CSR invariants (symmetry included) still hold.
  CsrGraph graph = erdos_renyi(2000, 8000, 42);
  const NumaTopology topo = two_nodes();
  PlacementOptions options;
  options.placement = GraphPlacement::Sharded;
  options.hugepages = true;
  options.topology = &topo;
  const std::vector<EdgeId> offsets_before = graph.offsets();
  const std::vector<VertexId> dst_before = graph.dst();
  graph.apply_placement(options);
  EXPECT_EQ(graph.offsets(), offsets_before);
  EXPECT_EQ(graph.dst(), dst_before);
  EXPECT_NO_THROW(graph.validate());
}

}  // namespace
}  // namespace ppscan
