#include "concurrent/union_find.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace ppscan {
namespace {

TEST(UnionFind, SingletonsInitially) {
  UnionFind uf(5);
  for (VertexId i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
  }
  EXPECT_FALSE(uf.same_set(0, 1));
}

TEST(UnionFind, UniteMerges) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.same_set(0, 1));
  EXPECT_FALSE(uf.same_set(0, 2));
  EXPECT_FALSE(uf.unite(1, 0));  // already same set
}

TEST(UnionFind, TransitiveClosure) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(1, 2);
  EXPECT_TRUE(uf.same_set(0, 3));
  EXPECT_FALSE(uf.same_set(0, 4));
}

TEST(UnionFind, ChainCompresses) {
  constexpr VertexId n = 1000;
  UnionFind uf(n);
  for (VertexId i = 0; i + 1 < n; ++i) uf.unite(i, i + 1);
  const VertexId root = uf.find(0);
  for (VertexId i = 0; i < n; ++i) EXPECT_EQ(uf.find(i), root);
}

TEST(ParallelUnionFind, SequentialSemanticsMatch) {
  Rng rng(31);
  constexpr VertexId n = 200;
  UnionFind seq(n);
  ParallelUnionFind par(n);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<VertexId>(rng.next_below(n));
    const auto b = static_cast<VertexId>(rng.next_below(n));
    EXPECT_EQ(seq.unite(a, b), par.unite(a, b));
  }
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b = a + 1; b < n; ++b) {
      EXPECT_EQ(seq.same_set(a, b), par.same_set(a, b));
    }
  }
}

TEST(ParallelUnionFind, ExactlyOneWinnerPerLink) {
  // Many threads race to unite the same pair; exactly one unite() returns
  // true per merged component.
  constexpr VertexId n = 2;
  constexpr int kThreads = 8;
  ParallelUnionFind uf(n);
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      if (uf.unite(0, 1)) winners.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(winners.load(), 1);
  EXPECT_TRUE(uf.same_set(0, 1));
}

TEST(ParallelUnionFind, ConcurrentChainStress) {
  // Threads unite interleaved chains; the final structure must be a single
  // component with n-1 successful links in total.
  constexpr VertexId n = 10000;
  constexpr int kThreads = 8;
  ParallelUnionFind uf(n);
  std::atomic<std::uint64_t> links{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (VertexId i = static_cast<VertexId>(t); i + 1 < n; i += kThreads) {
        if (uf.unite(i, i + 1)) links.fetch_add(1);
      }
      // Cross-links so every thread's chains connect.
      if (t > 0) {
        if (uf.unite(0, static_cast<VertexId>(t))) links.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const VertexId root = uf.find(0);
  for (VertexId i = 0; i < n; ++i) EXPECT_EQ(uf.find(i), root);
  EXPECT_EQ(links.load(), n - 1);
}

TEST(ParallelUnionFind, ConcurrentRandomUnitesMatchSequentialComponents) {
  // Apply the same random edge set concurrently and sequentially; the
  // resulting partitions must be identical.
  constexpr VertexId n = 3000;
  constexpr int kThreads = 8;
  Rng rng(77);
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (int i = 0; i < 6000; ++i) {
    edges.emplace_back(static_cast<VertexId>(rng.next_below(n)),
                       static_cast<VertexId>(rng.next_below(n)));
  }

  ParallelUnionFind par(n);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < edges.size();
           i += kThreads) {
        par.unite(edges[i].first, edges[i].second);
      }
    });
  }
  for (auto& t : threads) t.join();

  UnionFind seq(n);
  for (const auto& [a, b] : edges) seq.unite(a, b);

  // Compare partitions via canonical root labeling.
  std::vector<VertexId> seq_label(n), par_label(n);
  std::vector<VertexId> seq_min(n, kInvalidVertex), par_min(n, kInvalidVertex);
  for (VertexId i = 0; i < n; ++i) {
    seq_min[seq.find(i)] = std::min(seq_min[seq.find(i)], i);
    par_min[par.find(i)] = std::min(par_min[par.find(i)], i);
  }
  for (VertexId i = 0; i < n; ++i) {
    seq_label[i] = seq_min[seq.find(i)];
    par_label[i] = par_min[par.find(i)];
  }
  EXPECT_EQ(seq_label, par_label);
}

TEST(ParallelUnionFind, SameSetNeverFalsePositive) {
  // same_set(a, b) == true must imply the pair was truly united.
  constexpr VertexId n = 100;
  ParallelUnionFind uf(n);
  uf.unite(1, 2);
  uf.unite(3, 4);
  EXPECT_FALSE(uf.same_set(1, 3));
  EXPECT_TRUE(uf.same_set(2, 1));
  EXPECT_FALSE(uf.same_set(0, 99));
}

}  // namespace
}  // namespace ppscan
