#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace ppscan {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, SpaceSeparatedValue) {
  const auto flags = make({"--eps", "0.4"});
  EXPECT_EQ(flags.get_string("eps", ""), "0.4");
}

TEST(Flags, EqualsSeparatedValue) {
  const auto flags = make({"--mu=7"});
  EXPECT_EQ(flags.get_int("mu", 0), 7);
}

TEST(Flags, BooleanFlagWithoutValue) {
  const auto flags = make({"--verbose"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
}

TEST(Flags, BooleanFlagFollowedByAnotherFlag) {
  const auto flags = make({"--verbose", "--eps", "0.2"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_string("eps", ""), "0.2");
}

TEST(Flags, FallbacksWhenMissing) {
  const auto flags = make({});
  EXPECT_EQ(flags.get_string("x", "dflt"), "dflt");
  EXPECT_EQ(flags.get_int("x", 42), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("x", 1.5), 1.5);
  EXPECT_TRUE(flags.get_bool("x", true));
}

TEST(Flags, Positionals) {
  const auto flags = make({"input.txt", "--eps", "0.3", "more"});
  ASSERT_EQ(flags.positionals().size(), 2u);
  EXPECT_EQ(flags.positionals()[0], "input.txt");
  EXPECT_EQ(flags.positionals()[1], "more");
}

TEST(Flags, HasDetectsPresence) {
  const auto flags = make({"--eps=0.1"});
  EXPECT_TRUE(flags.has("eps"));
  EXPECT_FALSE(flags.has("mu"));
}

TEST(Flags, DoubleParsing) {
  const auto flags = make({"--scale", "2.5"});
  EXPECT_DOUBLE_EQ(flags.get_double("scale", 0.0), 2.5);
}

TEST(Flags, BoolAcceptsSeveralSpellings) {
  EXPECT_TRUE(make({"--a=1"}).get_bool("a", false));
  EXPECT_TRUE(make({"--a=yes"}).get_bool("a", false));
  EXPECT_TRUE(make({"--a=true"}).get_bool("a", false));
  EXPECT_FALSE(make({"--a=0"}).get_bool("a", true));
}

}  // namespace
}  // namespace ppscan
