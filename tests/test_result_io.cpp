#include "scan/result_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/ppscan.hpp"
#include "graph/generators.hpp"
#include "support/random_graphs.hpp"

namespace ppscan {
namespace {

TEST(ResultIo, RoundTripsThroughText) {
  for (const auto& g : testing::property_test_graphs(10001, 1)) {
    const auto run = ppscan(g, ScanParams::make("0.5", 3));
    std::stringstream stream;
    write_scan_result(run.result, stream);
    const auto loaded = read_scan_result(stream);
    EXPECT_TRUE(results_equivalent(run.result, loaded))
        << describe_result_difference(run.result, loaded);
    EXPECT_EQ(loaded.core_cluster_id, run.result.core_cluster_id);
  }
}

TEST(ResultIo, RejectsBadHeader) {
  std::stringstream s("NOT-A-RESULT 1\n");
  EXPECT_THROW(read_scan_result(s), std::runtime_error);
}

TEST(ResultIo, RejectsWrongVersion) {
  std::stringstream s("PPSCAN-RESULT 2\nn 0\nroles \nend\n");
  EXPECT_THROW(read_scan_result(s), std::runtime_error);
}

TEST(ResultIo, RejectsRoleLengthMismatch) {
  std::stringstream s("PPSCAN-RESULT 1\nn 3\nroles CN\nend\n");
  EXPECT_THROW(read_scan_result(s), std::runtime_error);
}

TEST(ResultIo, RejectsBadRoleChar) {
  std::stringstream s("PPSCAN-RESULT 1\nn 2\nroles CX\nend\n");
  EXPECT_THROW(read_scan_result(s), std::runtime_error);
}

TEST(ResultIo, RejectsMissingEnd) {
  std::stringstream s("PPSCAN-RESULT 1\nn 1\nroles N\n");
  EXPECT_THROW(read_scan_result(s), std::runtime_error);
}

TEST(ResultIo, RejectsCoreRecordForNonCore) {
  std::stringstream s("PPSCAN-RESULT 1\nn 2\nroles NN\ncore 0 0\nend\n");
  EXPECT_THROW(read_scan_result(s), std::runtime_error);
}

TEST(ResultIo, RejectsOutOfRangeVertex) {
  std::stringstream s("PPSCAN-RESULT 1\nn 2\nroles CN\ncore 5 0\nend\n");
  EXPECT_THROW(read_scan_result(s), std::runtime_error);
}

TEST(ResultIo, EmptyResultRoundTrips) {
  ScanResult empty;
  std::stringstream stream;
  write_scan_result(empty, stream);
  const auto loaded = read_scan_result(stream);
  EXPECT_TRUE(loaded.roles.empty());
  EXPECT_TRUE(loaded.noncore_memberships.empty());
}

TEST(ResultIo, FileRoundTrip) {
  const auto g = erdos_renyi(100, 500, 21);
  const auto run = ppscan(g, ScanParams::make("0.4", 2));
  const std::string path = ::testing::TempDir() + "ppscan_result_io_test.txt";
  write_scan_result(run.result, path);
  const auto loaded = read_scan_result(path);
  EXPECT_TRUE(results_equivalent(run.result, loaded));
  std::remove(path.c_str());
}

TEST(ResultIo, MissingFileThrows) {
  EXPECT_THROW(read_scan_result(std::string("/nonexistent/r.txt")),
               std::runtime_error);
}

}  // namespace
}  // namespace ppscan
