#include "graph/graph_builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ppscan {
namespace {

TEST(GraphBuilder, SymmetrizesEdges) {
  const auto g = GraphBuilder::from_edges({{0, 1}});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilder, DropsSelfLoops) {
  const auto g = GraphBuilder::from_edges({{0, 0}, {0, 1}, {1, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_NO_THROW(g.validate());
}

TEST(GraphBuilder, DeduplicatesParallelEdges) {
  const auto g = GraphBuilder::from_edges({{0, 1}, {1, 0}, {0, 1}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(GraphBuilder, InfersVertexCountFromEndpoints) {
  const auto g = GraphBuilder::from_edges({{3, 7}});
  EXPECT_EQ(g.num_vertices(), 8u);
}

TEST(GraphBuilder, RespectsExplicitVertexCount) {
  const auto g = GraphBuilder::from_edges({{0, 1}}, 10);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.degree(9), 0u);
}

TEST(GraphBuilder, EmptyEdgeListWithVertices) {
  const auto g = GraphBuilder::from_edges({}, 5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_NO_THROW(g.validate());
}

TEST(GraphBuilder, IncrementalAddEdge) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edges({{2, 3}, {3, 0}});
  const auto g = b.build();
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_NO_THROW(g.validate());
}

TEST(GraphBuilder, BuildsValidGraphFromMessyInput) {
  // Duplicates, self loops, reversed duplicates, arbitrary order.
  const auto g = GraphBuilder::from_edges(
      {{5, 2}, {2, 5}, {1, 1}, {0, 4}, {4, 0}, {0, 4}, {3, 1}, {1, 3}});
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_NO_THROW(g.validate());
}

TEST(ToEdgeList, RoundTripsThroughBuilder) {
  const EdgeList original = {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {1, 4}};
  const auto g = GraphBuilder::from_edges(original);
  auto extracted = to_edge_list(g);
  auto sorted_original = original;
  std::sort(sorted_original.begin(), sorted_original.end());
  std::sort(extracted.begin(), extracted.end());
  EXPECT_EQ(extracted, sorted_original);
}

TEST(ToEdgeList, EmitsEachEdgeOnce) {
  const auto g = GraphBuilder::from_edges({{0, 1}, {1, 2}});
  EXPECT_EQ(to_edge_list(g).size(), g.num_edges());
}

}  // namespace
}  // namespace ppscan
