// Drives the fault-injection corpus (tests/support/fault_injection.*)
// through the loaders: every corruption class must surface as a typed
// GraphIoError — never a crash, a silent wrong graph, or (under the
// asan-ubsan CI job, which runs this suite) a sanitizer report.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "graph/edge_list_io.hpp"
#include "graph/graph_builder.hpp"
#include "support/fault_injection.hpp"
#include "util/graph_io_error.hpp"

namespace ppscan {
namespace {

namespace fs = std::filesystem;

class GraphIoFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ppscan-fault-test-" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

CsrGraph corpus_graph() {
  // Deterministic 16-vertex ring with chords: every vertex has degree 4,
  // which satisfies the corpus generator's structural requirements.
  GraphBuilder b;
  for (VertexId u = 0; u < 16; ++u) {
    b.add_edge(u, (u + 1) % 16);
    b.add_edge(u, (u + 4) % 16);
  }
  return b.build();
}

TEST_F(GraphIoFaultTest, ValidBinaryStillLoads) {
  const auto cases =
      ppscan::testing::make_binary_fault_corpus(corpus_graph(), dir_);
  ASSERT_GE(cases.size(), 8u) << "corpus must cover >= 8 corruption classes";
  const auto loaded = read_csr_binary((dir_ / "valid.bin").string());
  EXPECT_EQ(loaded.num_vertices(), corpus_graph().num_vertices());
  EXPECT_EQ(loaded.dst(), corpus_graph().dst());
}

TEST_F(GraphIoFaultTest, EveryBinaryCorruptionRaisesTypedError) {
  const auto cases =
      ppscan::testing::make_binary_fault_corpus(corpus_graph(), dir_);
  for (const auto& c : cases) {
    try {
      read_csr_binary(c.path);
      FAIL() << c.name << ": corruption was accepted";
    } catch (const GraphIoError& e) {
      EXPECT_EQ(e.kind(), c.expected)
          << c.name << ": got " << to_string(e.kind()) << " — " << e.what();
      EXPECT_EQ(e.path(), c.path) << c.name << ": error must name the file";
    } catch (const std::exception& e) {
      FAIL() << c.name << ": untyped exception: " << e.what();
    }
  }
}

TEST_F(GraphIoFaultTest, EveryTextCorruptionRaisesTypedError) {
  const auto cases = ppscan::testing::make_text_fault_corpus(dir_);
  ASSERT_GE(cases.size(), 5u);
  for (const auto& c : cases) {
    try {
      read_edge_list_text(c.path);
      FAIL() << c.name << ": corruption was accepted";
    } catch (const GraphIoError& e) {
      EXPECT_EQ(e.kind(), c.expected)
          << c.name << ": got " << to_string(e.kind()) << " — " << e.what();
      EXPECT_EQ(e.path(), c.path) << c.name << ": error must name the file";
      EXPECT_NE(e.line(), GraphIoError::kNoLocation)
          << c.name << ": text errors must carry a line number";
    } catch (const std::exception& e) {
      FAIL() << c.name << ": untyped exception: " << e.what();
    }
  }
}

TEST_F(GraphIoFaultTest, ErrorsCarryLocationContext) {
  const auto cases =
      ppscan::testing::make_binary_fault_corpus(corpus_graph(), dir_);
  const auto find = [&](const std::string& name) {
    for (const auto& c : cases) {
      if (c.name == name) return c.path;
    }
    throw std::logic_error("missing corpus case " + name);
  };

  const auto kind_at = [](const std::string& path) {
    try {
      read_csr_binary(path);
    } catch (const GraphIoError& e) {
      return e.byte_offset();
    }
    return GraphIoError::kNoLocation;
  };
  EXPECT_EQ(kind_at(find("bad-magic")), 0u);
  EXPECT_EQ(kind_at(find("oversized-n")), 8u);
  EXPECT_EQ(kind_at(find("oversized-arcs")), 16u);

  // Text side: the line number points at the corrupt line, not the file
  // start.
  const auto text_cases = ppscan::testing::make_text_fault_corpus(dir_);
  for (const auto& c : text_cases) {
    if (c.name != "negative-first-id") continue;
    try {
      read_edge_list_text(c.path);
      FAIL();
    } catch (const GraphIoError& e) {
      EXPECT_EQ(e.line(), 2u) << e.what();
    }
  }
}

TEST_F(GraphIoFaultTest, HeaderSanityRejectsBeforeAllocation) {
  // A 24-byte file that is all header: n claims 2^60 vertices. Loading
  // must throw immediately (no multi-exabyte vector allocation attempt).
  const std::string path = (dir_ / "huge-n-tiny-file.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    out.write("PPSCANG1", 8);
    const std::uint64_t n = std::uint64_t{1} << 60;
    const std::uint64_t arcs = 0;
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(&arcs), sizeof(arcs));
  }
  try {
    read_csr_binary(path);
    FAIL();
  } catch (const GraphIoError& e) {
    EXPECT_EQ(e.kind(), GraphIoErrorKind::kOversizedHeader) << e.what();
  }
}

TEST_F(GraphIoFaultTest, ValidationSkipStillEnforcesContainerChecks) {
  // validate=false skips the CSR invariant pass but never the container
  // structure: sizes, magic, and offset endpoints are always enforced.
  const auto cases =
      ppscan::testing::make_binary_fault_corpus(corpus_graph(), dir_);
  for (const auto& c : cases) {
    const bool container_level =
        c.expected == GraphIoErrorKind::kBadMagic ||
        c.expected == GraphIoErrorKind::kTruncatedHeader ||
        c.expected == GraphIoErrorKind::kTruncatedBody ||
        c.expected == GraphIoErrorKind::kTrailingData ||
        c.expected == GraphIoErrorKind::kOversizedHeader;
    if (!container_level) continue;
    EXPECT_THROW(read_csr_binary(c.path, /*validate=*/false), GraphIoError)
        << c.name;
  }
}

TEST_F(GraphIoFaultTest, GraphBuilderRejectsReservedId) {
  GraphBuilder builder;
  builder.add_edge(kInvalidVertex, 0);
  try {
    (void)builder.build();
    FAIL() << "id 2^32-1 must not wrap n to 0";
  } catch (const GraphIoError& e) {
    EXPECT_EQ(e.kind(), GraphIoErrorKind::kVertexIdOverflow) << e.what();
  }
}

}  // namespace
}  // namespace ppscan
