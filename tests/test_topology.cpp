// NUMA topology detection (concurrent/topology.hpp): cpulist parsing,
// detection against canned sysfs fixture trees, the PPSCAN_NUMA_NODES
// emulation override, and — the satellite guarantee — that every degraded
// environment (no sysfs, malformed cpulists, empty nodes) falls back to
// the uniform single-node topology with a recorded reason, never an error.
#include "concurrent/topology.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace ppscan {
namespace {

namespace fs = std::filesystem;

/// A throwaway sysfs-style `node/` tree: write_node() lays down
/// node<i>/cpulist files, removed on destruction.
class FakeSysfs {
 public:
  FakeSysfs() {
    dir_ = fs::temp_directory_path() /
           ("ppscan_topo_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::create_directories(dir_);
  }
  ~FakeSysfs() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void write_node(int id, const std::string& cpulist) {
    const fs::path node = dir_ / ("node" + std::to_string(id));
    fs::create_directories(node);
    std::ofstream(node / "cpulist") << cpulist << "\n";
  }

  [[nodiscard]] std::string path() const { return dir_.string(); }

 private:
  static int& counter() {
    static int n = 0;
    return n;
  }
  fs::path dir_;
};

/// Scoped environment variable (restores the previous value on exit).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(NumaMode, ParsesAndPrints) {
  EXPECT_EQ(parse_numa_mode("auto"), NumaMode::Auto);
  EXPECT_EQ(parse_numa_mode("off"), NumaMode::Off);
  EXPECT_EQ(parse_numa_mode("interleave"), NumaMode::Interleave);
  EXPECT_THROW(parse_numa_mode("on"), std::invalid_argument);
  EXPECT_EQ(to_string(NumaMode::Auto), "auto");
  EXPECT_EQ(to_string(NumaMode::Off), "off");
  EXPECT_EQ(to_string(NumaMode::Interleave), "interleave");
}

TEST(ParseCpuList, AcceptsKernelShapes) {
  std::vector<int> cpus;
  ASSERT_TRUE(parse_cpu_list("0-3,7", &cpus));
  EXPECT_EQ(cpus, (std::vector<int>{0, 1, 2, 3, 7}));
  ASSERT_TRUE(parse_cpu_list("5", &cpus));
  EXPECT_EQ(cpus, (std::vector<int>{5}));
  ASSERT_TRUE(parse_cpu_list("9-10,0-1\n", &cpus));
  EXPECT_EQ(cpus, (std::vector<int>{0, 1, 9, 10}));
  // Overlaps dedupe, output is sorted.
  ASSERT_TRUE(parse_cpu_list("2-4,3,1", &cpus));
  EXPECT_EQ(cpus, (std::vector<int>{1, 2, 3, 4}));
  // A memoryless node has a blank cpulist: valid, empty.
  ASSERT_TRUE(parse_cpu_list("", &cpus));
  EXPECT_TRUE(cpus.empty());
  ASSERT_TRUE(parse_cpu_list("\n", &cpus));
  EXPECT_TRUE(cpus.empty());
}

TEST(ParseCpuList, RejectsMalformedText) {
  std::vector<int> cpus;
  EXPECT_FALSE(parse_cpu_list("3-1", &cpus));   // reversed range
  EXPECT_FALSE(parse_cpu_list("a-b", &cpus));   // not numbers
  EXPECT_FALSE(parse_cpu_list("1,,2", &cpus));  // empty token
  EXPECT_FALSE(parse_cpu_list("-1", &cpus));    // negative / half range
  EXPECT_FALSE(parse_cpu_list("2-", &cpus));
  EXPECT_FALSE(parse_cpu_list("1x", &cpus));    // trailing junk
}

TEST(DetectTopologyFrom, ReadsTwoSocketFixture) {
  FakeSysfs sysfs;
  sysfs.write_node(0, "0-3");
  sysfs.write_node(1, "4-7");
  const NumaTopology topo = detect_topology_from(sysfs.path());
  EXPECT_EQ(topo.source, "sysfs");
  EXPECT_TRUE(topo.fallback_reason.empty());
  EXPECT_FALSE(topo.emulated);
  ASSERT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.nodes[0].id, 0);
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(topo.nodes[1].id, 1);
  EXPECT_EQ(topo.nodes[1].cpus, (std::vector<int>{4, 5, 6, 7}));
  EXPECT_FALSE(topo.uniform());
}

TEST(DetectTopologyFrom, SingleNodeIsUniform) {
  FakeSysfs sysfs;
  sysfs.write_node(0, "0-7");
  const NumaTopology topo = detect_topology_from(sysfs.path());
  EXPECT_TRUE(topo.fallback_reason.empty());
  EXPECT_TRUE(topo.uniform());
  ASSERT_EQ(topo.num_nodes(), 1);
  EXPECT_EQ(topo.nodes[0].cpus.size(), 8u);
}

TEST(DetectTopologyFrom, OddCpusetShapesAreKept) {
  // Non-contiguous per-node CPU sets (SMT pairs split across sockets).
  FakeSysfs sysfs;
  sysfs.write_node(0, "0,2,4,6");
  sysfs.write_node(1, "1,3,5,7");
  const NumaTopology topo = detect_topology_from(sysfs.path());
  ASSERT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{0, 2, 4, 6}));
  EXPECT_EQ(topo.nodes[1].cpus, (std::vector<int>{1, 3, 5, 7}));
}

TEST(DetectTopologyFrom, CpulessNodeIsDropped) {
  // Memory-only nodes (CXL expanders) have an empty cpulist; the executor
  // only cares about nodes it can run workers on.
  FakeSysfs sysfs;
  sysfs.write_node(0, "0-3");
  sysfs.write_node(1, "");
  sysfs.write_node(2, "4-7");
  const NumaTopology topo = detect_topology_from(sysfs.path());
  EXPECT_TRUE(topo.fallback_reason.empty());
  ASSERT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.nodes[0].id, 0);
  EXPECT_EQ(topo.nodes[1].id, 2);
}

TEST(DetectTopologyFrom, MissingTreeFallsBack) {
  const NumaTopology topo =
      detect_topology_from("/nonexistent/ppscan/sysfs/node");
  EXPECT_EQ(topo.source, "fallback");
  EXPECT_FALSE(topo.fallback_reason.empty());
  EXPECT_TRUE(topo.uniform());
  ASSERT_EQ(topo.num_nodes(), 1);  // never empty, never a throw
}

TEST(DetectTopologyFrom, MalformedCpulistFallsBack) {
  FakeSysfs sysfs;
  sysfs.write_node(0, "0-3");
  sysfs.write_node(1, "7-4");  // reversed: damaged sysfs
  const NumaTopology topo = detect_topology_from(sysfs.path());
  EXPECT_EQ(topo.source, "fallback");
  EXPECT_NE(topo.fallback_reason.find("node1"), std::string::npos)
      << topo.fallback_reason;
  EXPECT_TRUE(topo.uniform());
}

TEST(EmulatedTopology, SplitsCpusRoundRobin) {
  const NumaTopology topo = emulated_topology(2, {0, 1, 2, 3, 4});
  EXPECT_TRUE(topo.emulated);
  EXPECT_EQ(topo.source, "env");
  ASSERT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(topo.nodes[1].cpus, (std::vector<int>{1, 3}));
}

TEST(EmulatedTopology, HonorsNodeCountWithFewCpus) {
  // More nodes than CPUs: the requested structure is kept (that is what
  // emulation is for); surplus nodes share the whole CPU set.
  const NumaTopology topo = emulated_topology(8, {0, 1});
  ASSERT_EQ(topo.num_nodes(), 8);
  for (const NumaNode& node : topo.nodes) {
    EXPECT_FALSE(node.cpus.empty());
  }
  // Degenerate node counts still yield a usable single node.
  EXPECT_EQ(emulated_topology(0, {0, 1}).num_nodes(), 1);
  EXPECT_EQ(emulated_topology(3, {}).num_nodes(), 3);
}

TEST(DetectTopology, EnvOverrideEmulatesNodes) {
  const ScopedEnv env("PPSCAN_NUMA_NODES", "2");
  const NumaTopology topo = detect_topology();
  EXPECT_TRUE(topo.emulated);
  EXPECT_EQ(topo.source, "env");
  // The requested node count is honored even on a 1-CPU box, and every
  // node owns at least one CPU (shared when CPUs are scarce).
  EXPECT_EQ(topo.num_nodes(), 2);
  for (const NumaNode& node : topo.nodes) {
    EXPECT_FALSE(node.cpus.empty());
  }
}

TEST(DetectTopology, NeverFailsOnThisMachine) {
  // Whatever this machine looks like (bare metal, container, masked
  // sysfs), detection must produce a usable topology.
  const NumaTopology topo = detect_topology();
  ASSERT_GE(topo.num_nodes(), 1);
  EXPECT_TRUE(topo.source == "sysfs" || topo.source == "env" ||
              topo.source == "fallback")
      << topo.source;
}

TEST(PinThread, EmptyListIsRejectedGracefully) {
  EXPECT_FALSE(pin_thread_to_cpus({}));
  // Pinning to our own affinity set must succeed on Linux (and is a
  // harmless no-op for the remaining tests in this binary).
  const std::vector<int> mine = affinity_cpus();
  if (!mine.empty()) {
    EXPECT_TRUE(pin_thread_to_cpus(mine));
  }
}

}  // namespace
}  // namespace ppscan
