// Cancellation and supervision tests for the work-stealing executor, sized
// for ThreadSanitizer like test_executor_stress: they run in the `tsan` CI
// job, and the asan-ubsan job runs them too (the cancellation drain and the
// watchdog touch every synchronization edge the executor has).
#include "concurrent/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "concurrent/run_governor.hpp"
#include "support/fault_injection.hpp"

namespace ppscan {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

std::vector<TaskRange> unit_tasks(VertexId count) {
  std::vector<TaskRange> tasks;
  tasks.reserve(count);
  for (VertexId i = 0; i < count; ++i) tasks.push_back({i, i + 1});
  return tasks;
}

TEST(ExecutorCancel, TripMidPhaseStressExactlyOnceAccounting) {
  // The TSan centerpiece: a task body trips the token mid-phase, 1000
  // times, with the trigger task rotating so the trip lands at a different
  // point of the claim/steal/park state machine each round. Every claimed
  // range must be counted exactly once — executed before the trip is
  // visible, skipped after — and the executor must stay reusable.
  Executor executor(4);
  constexpr int kRounds = 1000;
  constexpr VertexId kTasks = 128;
  const std::vector<TaskRange> tasks = unit_tasks(kTasks);
  std::atomic<std::uint64_t> body_runs{0};
  for (int round = 0; round < kRounds; ++round) {
    RunGovernor governor;
    executor.install_governor(&governor);
    const VertexId trigger = static_cast<VertexId>(round) % kTasks;
    executor.run(tasks.data(), tasks.size(), [&](VertexId beg, VertexId) {
      body_runs.fetch_add(1, std::memory_order_relaxed);
      if (beg == trigger) governor.token().trip(AbortReason::UserCancelled);
    });
    ASSERT_TRUE(governor.should_stop());
    executor.install_governor(nullptr);
  }
  const ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.tasks_executed + stats.tasks_skipped,
            static_cast<std::uint64_t>(kRounds) * kTasks);
  EXPECT_EQ(stats.tasks_executed, body_runs.load());
  EXPECT_GE(stats.tasks_executed, static_cast<std::uint64_t>(kRounds));
}

TEST(ExecutorCancel, PreTrippedRunSkipsEverythingAndExecutorStaysUsable) {
  RunGovernor governor;
  Executor executor(4);
  executor.install_governor(&governor);
  governor.token().trip(AbortReason::UserCancelled);

  constexpr VertexId kTasks = 256;
  const std::vector<TaskRange> tasks = unit_tasks(kTasks);
  std::atomic<std::uint64_t> body_runs{0};
  executor.run(tasks.data(), tasks.size(),
               [&](VertexId, VertexId) { body_runs.fetch_add(1); });
  EXPECT_EQ(body_runs.load(), 0u);
  EXPECT_EQ(executor.stats().tasks_skipped, kTasks);

  // A fresh ungoverned phase on the same executor runs everything.
  executor.install_governor(nullptr);
  executor.run(tasks.data(), tasks.size(),
               [&](VertexId, VertexId) { body_runs.fetch_add(1); });
  EXPECT_EQ(body_runs.load(), kTasks);
}

TEST(ExecutorCancel, StreamingSubmitsDrainAfterMidStreamTrip) {
  RunGovernor governor;
  Executor executor(4);
  executor.install_governor(&governor);

  std::atomic<std::uint64_t> body_runs{0};
  auto body = [&](VertexId, VertexId) { body_runs.fetch_add(1); };
  using B = decltype(body);
  executor.begin_phase(
      [](void* ctx, VertexId beg, VertexId end) {
        (*static_cast<B*>(ctx))(beg, end);
      },
      &body);
  constexpr VertexId kTasks = 512;
  for (VertexId u = 0; u < kTasks; ++u) {
    if (u == kTasks / 2) governor.token().trip(AbortReason::UserCancelled);
    executor.submit({u, u + 1});
  }
  executor.wait_idle();  // must not hang: tripped ranges drain as skips
  const ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.tasks_executed + stats.tasks_skipped, kTasks);
  EXPECT_EQ(stats.tasks_executed, body_runs.load());
  executor.install_governor(nullptr);
}

TEST(ExecutorCancel, DeadlineLandsMidPhaseAndSkipsTheRemainder) {
  // SlowPhaseBody never polls, so only the claim-boundary deadline check
  // (piggybacked poll in execute()) and the supervised wait tick can fire.
  RunLimits limits;
  limits.deadline = milliseconds(5);
  RunGovernor governor(limits);
  Executor executor(4);
  executor.install_governor(&governor);
  governor.enter_phase("SlowPhase");

  testing::SlowPhaseBody slow{std::chrono::microseconds(1000)};
  constexpr VertexId kTasks = 128;  // 128 x 1ms / 4 workers >> 5ms deadline
  const std::vector<TaskRange> tasks = unit_tasks(kTasks);
  executor.run(tasks.data(), tasks.size(),
               [&](VertexId beg, VertexId end) { slow(beg, end); });

  const RunAborted info = governor.abort_info();
  EXPECT_EQ(info.reason, AbortReason::DeadlineExpired);
  EXPECT_EQ(info.phase, "SlowPhase");
  const ExecutorStats stats = executor.stats();
  EXPECT_GT(stats.tasks_skipped, 0u);
  EXPECT_LT(slow.executed(), kTasks);
  EXPECT_EQ(stats.tasks_executed + stats.tasks_skipped, kTasks);
  executor.install_governor(nullptr);
}

TEST(ExecutorCancel, WatchdogDetectsHungWorkerAndNamesPhaseAndWorker) {
  // One task wedges its worker (fault-injected hang); the remaining tasks
  // finish, heartbeats freeze, and after stall_timeout of provable
  // no-progress the supervised wait must trip Stalled naming the stuck
  // phase and a stuck worker. Routing the run's own token into the hung
  // body un-wedges it on the trip, so the phase drains and run() returns.
  constexpr int kWorkers = 4;
  RunLimits limits;
  limits.stall_timeout = milliseconds(50);
  RunGovernor governor(limits);
  Executor executor(kWorkers);
  executor.install_governor(&governor);
  governor.enter_phase("HungPhase");

  testing::HungWorker hung{/*hang_task=*/0, &governor.token()};
  constexpr VertexId kTasks = 64;
  const std::vector<TaskRange> tasks = unit_tasks(kTasks);
  const auto t0 = steady_clock::now();
  executor.run(tasks.data(), tasks.size(),
               [&](VertexId beg, VertexId end) { hung(beg, end); });
  const auto elapsed = steady_clock::now() - t0;

  EXPECT_TRUE(hung.hang_started());
  const RunAborted info = governor.abort_info();
  EXPECT_EQ(info.reason, AbortReason::Stalled);
  EXPECT_EQ(info.phase, "HungPhase");
  EXPECT_GE(info.worker, 0);
  EXPECT_LT(info.worker, kWorkers);
  EXPECT_NE(info.describe().find("stalled in phase HungPhase"),
            std::string::npos);
  // The trip cannot legitimately happen before a full stall window passed.
  EXPECT_GE(elapsed, milliseconds(45));
  executor.install_governor(nullptr);
}

TEST(ExecutorCancel, HealthyRunUnderWatchdogDoesNotTrip) {
  // False-positive guard: plenty of short tasks under an armed watchdog
  // must finish clean — heartbeats advance, so the stall clock keeps
  // resetting and nothing trips.
  RunLimits limits;
  limits.stall_timeout = milliseconds(100);
  RunGovernor governor(limits);
  Executor executor(4);
  executor.install_governor(&governor);
  governor.enter_phase("Healthy");

  testing::SlowPhaseBody slow{std::chrono::microseconds(500)};
  constexpr VertexId kTasks = 64;
  const std::vector<TaskRange> tasks = unit_tasks(kTasks);
  executor.run(tasks.data(), tasks.size(),
               [&](VertexId beg, VertexId end) { slow(beg, end); });
  EXPECT_FALSE(governor.should_stop());
  EXPECT_EQ(slow.executed(), kTasks);
  executor.install_governor(nullptr);
}

TEST(ExecutorCancel, ShutdownAuditDestructorAfterTrippedRun) {
  // Destruction-order audit: the governor outlives the executor (declared
  // first), the last phase ended cancelled, workers are parked — the
  // destructor must drain and join without touching freed governor state.
  RunGovernor governor;
  {
    Executor executor(4);
    executor.install_governor(&governor);
    const std::vector<TaskRange> tasks = unit_tasks(64);
    executor.run(tasks.data(), tasks.size(), [&](VertexId beg, VertexId) {
      if (beg == 7) governor.token().trip(AbortReason::UserCancelled);
    });
    EXPECT_TRUE(governor.should_stop());
    // Executor destroyed here with the governor still installed.
  }
  EXPECT_EQ(governor.abort_info().reason, AbortReason::UserCancelled);
}

TEST(ExecutorCancel, InstallUninstallAcrossPhasesStress) {
  // Rapidly alternating governed and ungoverned phases: the governor
  // pointer is read per claim, so a stale read across the install barrier
  // would show up here (and under TSan as a race).
  Executor executor(4);
  constexpr int kRounds = 400;
  constexpr VertexId kTasks = 64;
  const std::vector<TaskRange> tasks = unit_tasks(kTasks);
  std::atomic<std::uint64_t> body_runs{0};
  for (int round = 0; round < kRounds; ++round) {
    RunGovernor governor;
    if (round % 2 == 0) executor.install_governor(&governor);
    executor.run(tasks.data(), tasks.size(),
                 [&](VertexId, VertexId) { body_runs.fetch_add(1); });
    executor.install_governor(nullptr);
  }
  EXPECT_EQ(body_runs.load(),
            static_cast<std::uint64_t>(kRounds) * kTasks);
}

}  // namespace
}  // namespace ppscan
