#include "scan/scan_original.hpp"

#include <gtest/gtest.h>

#include "graph/fixtures.hpp"
#include "graph/graph_builder.hpp"
#include "support/random_graphs.hpp"
#include "support/reference_scan.hpp"

namespace ppscan {
namespace {

using testing::property_test_graphs;
using testing::reference_scan;

TEST(ScanOriginal, CliqueIsOneCluster) {
  const auto g = make_clique(6);
  const auto run = scan_original(g, ScanParams::make("0.5", 2));
  EXPECT_EQ(run.result.num_clusters(), 1u);
  EXPECT_EQ(run.result.num_cores(), 6u);
}

TEST(ScanOriginal, PathHasNoCoresAtHighMu) {
  const auto g = make_path(10);
  const auto run = scan_original(g, ScanParams::make("0.5", 3));
  EXPECT_EQ(run.result.num_cores(), 0u);
  EXPECT_EQ(run.result.num_clusters(), 0u);
}

TEST(ScanOriginal, TwoCliquesBridgeSeparates) {
  const auto g = make_two_cliques_bridge(5);
  const auto run = scan_original(g, ScanParams::make("0.7", 3));
  EXPECT_EQ(run.result.num_clusters(), 2u);
}

TEST(ScanOriginal, AllRolesAssigned) {
  const auto g = make_scan_paper_example();
  const auto run = scan_original(g, ScanParams::make("0.6", 2));
  for (const Role r : run.result.roles) {
    EXPECT_NE(r, Role::Unknown);
  }
}

TEST(ScanOriginal, MatchesReferenceOnPropertySuite) {
  for (const auto& g : property_test_graphs(1001)) {
    for (const auto& params : testing::parameter_grid()) {
      const auto expected = reference_scan(g, params);
      const auto run = scan_original(g, params);
      EXPECT_TRUE(results_equivalent(expected, run.result))
          << "eps=" << params.eps.to_double() << " mu=" << params.mu << ": "
          << describe_result_difference(expected, run.result);
    }
  }
}

TEST(ScanOriginal, CountsInvocations) {
  const auto g = make_clique(8);
  const auto run = scan_original(g, ScanParams::make("0.5", 2));
  // Exhaustive SCAN intersects every directed arc at most once per
  // endpoint's CheckCore; on a clique where all checks run it is exactly
  // the number of arcs.
  EXPECT_GT(run.stats.compsim_invocations, 0u);
  EXPECT_LE(run.stats.compsim_invocations, g.num_arcs());
}

TEST(ScanOriginal, BreakdownTimersFillWhenRequested) {
  ScanOriginalOptions options;
  options.collect_breakdown = true;
  const auto g = make_clique(16);
  const auto run = scan_original(g, ScanParams::make("0.5", 2), options);
  EXPECT_GT(run.stats.similarity_seconds, 0.0);
  EXPECT_GE(run.stats.total_seconds, run.stats.similarity_seconds);
}

TEST(ScanOriginal, EmptyGraph) {
  const auto g = GraphBuilder::from_edges({}, 3);
  const auto run = scan_original(g, ScanParams::make("0.5", 1));
  EXPECT_EQ(run.result.num_clusters(), 0u);
  for (const Role r : run.result.roles) EXPECT_EQ(r, Role::NonCore);
}

}  // namespace
}  // namespace ppscan
