// Live-telemetry tests (docs/observability.md, "Live telemetry"): the
// windowed-histogram fold/rotate/expiry arithmetic with explicit time
// points (deterministic — no sleeps), the flight recorder's ring and its
// three dump paths against the ppscan-flight-v1 validator, the exposition
// endpoint over a real loopback socket, and the QueryService publisher
// observed through snapshot(). The final test is the adversarial one CI
// runs under TSan: eight submitters, a snapshot poller, a live scraper and
// the publisher thread all hammering one service.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "graph/generators.hpp"
#include "index/gs_index.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/windowed_histogram.hpp"
#include "serve/query_service.hpp"
#include "serve/serving_metrics.hpp"

namespace ppscan {
namespace {

using obs::FlightRecorder;
using obs::JsonValue;
using obs::LatencyHistogram;
using obs::WindowedLatency;
using serve::QueryResponse;
using serve::QueryService;
using serve::ServiceOptions;
using serve::ServiceSnapshot;

using namespace std::chrono_literals;

// --- histogram arithmetic ----------------------------------------------

TEST(LatencyHistogram, MergeAccumulatesBucketsTotalsAndSum) {
  LatencyHistogram a;
  a.record(0.5);
  a.record(2.0);
  LatencyHistogram b;
  b.record(100.0);
  a.merge(b);
  EXPECT_EQ(a.total, 3u);
  EXPECT_DOUBLE_EQ(a.sum_ms, 102.5);
  EXPECT_DOUBLE_EQ(a.max_ms, 100.0);
  std::uint64_t bucket_sum = 0;
  for (const auto c : a.counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, a.total);
}

TEST(LatencyHistogram, DeltaSinceIsTheGrowthBetweenObservations) {
  LatencyHistogram h;
  h.record(1.0);
  const LatencyHistogram baseline = h;
  h.record(4.0);
  h.record(8.0);
  const LatencyHistogram delta = h.delta_since(baseline);
  EXPECT_EQ(delta.total, 2u);
  EXPECT_DOUBLE_EQ(delta.sum_ms, 12.0);
  // No growth → empty delta.
  const LatencyHistogram none = h.delta_since(h);
  EXPECT_EQ(none.total, 0u);
  EXPECT_DOUBLE_EQ(none.sum_ms, 0.0);
}

TEST(LatencyHistogram, EmptyQuantileIsZero) {
  const LatencyHistogram empty;
  EXPECT_DOUBLE_EQ(empty.quantile_ms(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile_ms(0.99), 0.0);
}

// --- windowed fold / rotate / expiry (explicit clocks, deterministic) ---

TEST(WindowedLatency, DefaultConstructedIsInert) {
  WindowedLatency w;
  EXPECT_FALSE(w.enabled());
  LatencyHistogram lifetime;
  lifetime.record(1.0);
  const auto now = WindowedLatency::Clock::now();
  w.publish(lifetime, now);  // must be a no-op, not a crash
  EXPECT_EQ(w.publishes(), 0u);
  EXPECT_EQ(w.window(now).total, 0u);
}

TEST(WindowedLatency, PublishFoldsLifetimeDeltasIntoTheWindow) {
  WindowedLatency w(10000ms, 1000ms);
  ASSERT_TRUE(w.enabled());
  EXPECT_EQ(w.horizon(), 10000ms);

  const auto t0 = WindowedLatency::Clock::now();
  LatencyHistogram lifetime;
  lifetime.record(1.0);
  lifetime.record(2.0);
  w.publish(lifetime, t0 + 1s);
  EXPECT_EQ(w.publishes(), 1u);
  EXPECT_EQ(w.last_interval().total, 2u);
  EXPECT_EQ(w.window(t0 + 1s).total, 2u);

  lifetime.record(50.0);
  w.publish(lifetime, t0 + 2s);
  EXPECT_EQ(w.last_interval().total, 1u);  // only the new sample
  EXPECT_DOUBLE_EQ(w.last_interval().sum_ms, 50.0);
  const LatencyHistogram win = w.window(t0 + 2s);
  EXPECT_EQ(win.total, 3u);  // both intervals still inside the horizon
  EXPECT_DOUBLE_EQ(win.sum_ms, 53.0);
  // The windowed quantile sees the full fold: p99 lands in 50 ms's bucket,
  // whose upper bound is at least the sample.
  EXPECT_GE(win.quantile_ms(0.99), 50.0);
}

TEST(WindowedLatency, TrafficAgesOutOfTheWindowAtTheHorizon) {
  WindowedLatency w(10000ms, 1000ms);
  const auto t0 = WindowedLatency::Clock::now();
  LatencyHistogram lifetime;
  lifetime.record(3.0);
  w.publish(lifetime, t0);
  EXPECT_EQ(w.window(t0).total, 1u);
  EXPECT_EQ(w.window(t0 + 9999ms).total, 1u);  // still younger than horizon
  EXPECT_EQ(w.window(t0 + 10s).total, 0u);     // aged out exactly at it
  EXPECT_DOUBLE_EQ(w.window(t0 + 10s).quantile_ms(0.5), 0.0);
}

TEST(WindowedLatency, RingOverwriteKeepsOnlyAHorizonOfDeltas) {
  // 3 s horizon at 1 s cadence → 4 slots; 8 publishes must wrap cleanly
  // and the window must only ever see the last-horizon slice.
  WindowedLatency w(3000ms, 1000ms);
  const auto t0 = WindowedLatency::Clock::now();
  LatencyHistogram lifetime;
  for (int tick = 1; tick <= 8; ++tick) {
    lifetime.record(static_cast<double>(tick));
    w.publish(lifetime, t0 + std::chrono::seconds(tick));
  }
  EXPECT_EQ(w.publishes(), 8u);
  const LatencyHistogram win = w.window(t0 + 8s);
  // Slots stamped at t0+6s, +7 s, +8 s qualify (t0+5 s aged out: 8-5 ≥ 3).
  EXPECT_EQ(win.total, 3u);
  EXPECT_DOUBLE_EQ(win.sum_ms, 6.0 + 7.0 + 8.0);
}

TEST(WindowedLatency, QuietIntervalsDrainTheWindow) {
  // Empty publishes still claim slots — that is what ages traffic out
  // while the service idles, without waiting a full horizon.
  WindowedLatency w(3000ms, 1000ms);
  const auto t0 = WindowedLatency::Clock::now();
  LatencyHistogram lifetime;
  lifetime.record(1.0);
  w.publish(lifetime, t0 + 1s);
  for (int tick = 2; tick <= 6; ++tick)  // no new samples
    w.publish(lifetime, t0 + std::chrono::seconds(tick));
  EXPECT_EQ(w.last_interval().total, 0u);
  EXPECT_EQ(w.window(t0 + 6s).total, 0u);
}

// --- flight recorder ----------------------------------------------------

TEST(FlightRecorder, RingKeepsTheMostRecentEventsOldestFirst) {
  FlightRecorder recorder(4);
  EXPECT_EQ(recorder.capacity(), 4u);
  for (std::uint64_t i = 0; i < 10; ++i)
    recorder.record(FlightRecorder::EventKind::Admission, "serve.query", i);
  EXPECT_EQ(recorder.recorded(), 10u);
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, 6u + i);  // 6,7,8,9 — oldest first
    EXPECT_STREQ(events[i].label, "serve.query");
  }
}

TEST(FlightRecorder, LabelsAndDetailsAreTruncatedNotOverrun) {
  FlightRecorder recorder(2);
  const std::string long_label(100, 'L');
  const std::string long_detail(200, 'D');
  recorder.record(FlightRecorder::EventKind::Exception, long_label.c_str(), 1,
                  long_detail.c_str());
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_LT(std::string(events[0].label).size(), FlightRecorder::kLabelBytes);
  EXPECT_LT(std::string(events[0].detail).size(),
            FlightRecorder::kDetailBytes);
}

TEST(FlightRecorder, DumpJsonValidatesAndSurvivesSerialization) {
  FlightRecorder recorder(8);
  recorder.record(FlightRecorder::EventKind::Lifecycle, "serve.start");
  recorder.record(FlightRecorder::EventKind::Admission, "serve.query", 7);
  recorder.record(FlightRecorder::EventKind::Breaker, "serve.breaker.open", 0,
                  "failure streak");
  const JsonValue doc = recorder.dump_json("stop");
  std::string error;
  EXPECT_TRUE(obs::validate_flight_json(doc, &error)) << error;
  EXPECT_EQ(doc.at("schema").as_string(), "ppscan-flight-v1");
  EXPECT_EQ(doc.at("reason").as_string(), "stop");
  EXPECT_EQ(doc.at("events").size(), 3u);

  const JsonValue back = JsonValue::parse(doc.dump(2));
  EXPECT_TRUE(obs::validate_flight_json(back, &error)) << error;
}

TEST(FlightRecorder, ValidatorRejectsWrongSchemaAndMalformedEvents) {
  FlightRecorder recorder(4);
  recorder.record(FlightRecorder::EventKind::Refusal, "serve.shed", 0,
                  "overload");
  std::string error;

  JsonValue wrong_schema = recorder.dump_json("stop");
  wrong_schema.set("schema", JsonValue::string("ppscan-flight-v9"));
  EXPECT_FALSE(obs::validate_flight_json(wrong_schema, &error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;

  JsonValue bad_kind = recorder.dump_json("stop");
  auto events = JsonValue::array();
  auto entry = JsonValue::object();
  entry.set("t_ns", JsonValue::number_u64(1));
  entry.set("kind", JsonValue::string("not-a-kind"));
  entry.set("label", JsonValue::string("x"));
  entry.set("id", JsonValue::number_u64(0));
  entry.set("detail", JsonValue::string(""));
  events.push(std::move(entry));
  bad_kind.set("events", std::move(events));
  EXPECT_FALSE(obs::validate_flight_json(bad_kind, &error));
  EXPECT_NE(error.find("kind"), std::string::npos) << error;
}

TEST(FlightRecorder, DumpToFileWritesAValidDocument) {
  FlightRecorder recorder(4);
  recorder.record(FlightRecorder::EventKind::Lifecycle, "serve.start");
  char path[] = "/tmp/ppscan_flight_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  ::close(fd);
  ASSERT_TRUE(recorder.dump_to_file(path, "stop"));
  std::ifstream in(path);
  std::stringstream body;
  body << in.rdbuf();
  std::string error;
  EXPECT_TRUE(obs::validate_flight_json(JsonValue::parse(body.str()), &error))
      << error;
  std::remove(path);
}

TEST(FlightRecorder, SignalSafeDumpEmitsTheSameSchema) {
  // The crash path: no locks, no allocation — but the bytes it writes must
  // still parse and validate as ppscan-flight-v1.
  FlightRecorder recorder(4);
  recorder.record(FlightRecorder::EventKind::Lifecycle, "serve.start");
  recorder.record(FlightRecorder::EventKind::Exception, "serve.exception", 3,
                  "boom");
  char path[] = "/tmp/ppscan_flight_sig_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  recorder.dump_signal_safe(fd, "signal");
  ::close(fd);
  std::ifstream in(path);
  std::stringstream body;
  body << in.rdbuf();
  std::string error;
  const JsonValue doc = JsonValue::parse(body.str());
  EXPECT_TRUE(obs::validate_flight_json(doc, &error)) << error;
  EXPECT_EQ(doc.at("reason").as_string(), "signal");
  EXPECT_EQ(doc.at("events").size(), 2u);
  std::remove(path);
}

// --- exposition endpoint over a real loopback socket --------------------

TEST(ExpositionServer, ServesMetricsAndHealthzOnAnEphemeralPort) {
  std::atomic<int> renders{0};
  obs::ExpositionServer server(0, [&renders] {
    renders.fetch_add(1, std::memory_order_relaxed);
    std::string out;
    obs::prom_family(out, "ppscan_test_total", "A test counter", "counter");
    obs::prom_sample_u64(out, "ppscan_test_total", 42);
    return out;
  });
  ASSERT_NE(server.port(), 0);  // ephemeral request resolved

  const std::string body = obs::http_get_local(server.port(), "/metrics");
  EXPECT_NE(body.find("# TYPE ppscan_test_total counter"), std::string::npos)
      << body;
  EXPECT_NE(body.find("ppscan_test_total 42"), std::string::npos) << body;
  EXPECT_EQ(renders.load(), 1);

  EXPECT_EQ(obs::http_get_local(server.port(), "/healthz"), "ok\n");
  // /healthz must not invoke the renderer.
  EXPECT_EQ(renders.load(), 1);

  EXPECT_THROW(obs::http_get_local(server.port(), "/nope"),
               std::runtime_error);
  EXPECT_GE(server.requests_served(), 3u);

  server.stop();
  server.stop();  // idempotent
  EXPECT_THROW(obs::http_get_local(server.port(), "/healthz"),
               std::runtime_error);
}

// --- the publisher + snapshot, through a real service -------------------

ScanParams make_params(std::uint64_t num, std::uint32_t mu) {
  ScanParams p;
  p.eps = EpsRational{num, 5};
  p.mu = mu;
  return p;
}

TEST(LiveTelemetry, PublisherFillsWindowedSnapshotFields) {
  const auto g = erdos_renyi(800, 6000, 11);
  const GsIndex index(g);
  ServiceOptions options;
  options.num_threads = 2;
  options.cache_results = false;
  options.stats_interval = 25ms;
  options.window_horizon = 5000ms;
  QueryService service(index, options);

  for (const std::uint64_t num : {1, 2, 3})
    for (const std::uint32_t mu : {2u, 3u})
      ASSERT_NE(service.submit(make_params(num, mu)).get().run, nullptr);

  // The publisher folds on its own cadence; poll instead of trusting one
  // sleep (CI machines stall).
  ServiceSnapshot snap;
  for (int attempt = 0; attempt < 200; ++attempt) {
    snap = service.snapshot();
    if (snap.publishes > 0 && snap.window.total >= 6) break;
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_GT(snap.publishes, 0u);
  EXPECT_DOUBLE_EQ(snap.window_seconds, 5.0);
  EXPECT_EQ(snap.window.total, 6u);  // all six queries inside the horizon
  EXPECT_LE(snap.window.total, snap.latency.total);
  EXPECT_GT(snap.window.quantile_ms(0.99), 0.0);

  // Interval deltas never exceed the lifetime totals they derive from.
  EXPECT_LE(snap.interval_submitted, snap.submitted);
  EXPECT_LE(snap.interval_completed, snap.completed);

  // The per-query split: queue + execute ≤ latency (delivery overhead is
  // the slack the validator also allows).
  ASSERT_FALSE(snap.recent.empty());
  for (const auto& record : snap.recent) {
    EXPECT_GE(record.queue_ms, 0.0);
    EXPECT_GE(record.execute_ms, 0.0);
    EXPECT_LE(record.queue_ms + record.execute_ms,
              record.latency_ms + record.latency_ms * 0.05 + 0.5);
  }

  service.stop();
  // The shutdown tick folds the tail: the final window covers everything.
  const auto last = service.snapshot();
  EXPECT_EQ(last.window.total, last.latency.total);
}

TEST(LiveTelemetry, PublisherOffKeepsWindowedFieldsEmpty) {
  const auto g = erdos_renyi(400, 2500, 3);
  const GsIndex index(g);
  ServiceOptions options;
  options.num_threads = 1;
  QueryService service(index, options);  // stats_interval stays 0
  ASSERT_NE(service.submit(make_params(2, 3)).get().run, nullptr);
  const auto snap = service.snapshot();
  EXPECT_EQ(snap.publishes, 0u);
  EXPECT_DOUBLE_EQ(snap.window_seconds, 0.0);
  EXPECT_EQ(snap.window.total, 0u);
}

TEST(LiveTelemetry, QueryResponseCarriesTheQueueSplit) {
  const auto g = erdos_renyi(400, 2500, 5);
  const GsIndex index(g);
  ServiceOptions options;
  options.num_threads = 1;
  options.cache_results = true;
  QueryService service(index, options);
  const QueryResponse first = service.submit(make_params(3, 2)).get();
  ASSERT_NE(first.run, nullptr);
  EXPECT_GE(first.queue_seconds, 0.0);
  EXPECT_LE(first.queue_seconds + first.execute_seconds,
            first.latency_seconds + 0.05 * first.latency_seconds + 5e-4);
  // A memoized answer spends nothing executing.
  const QueryResponse hit = service.submit(make_params(3, 2)).get();
  ASSERT_TRUE(hit.cache_hit);
  EXPECT_DOUBLE_EQ(hit.execute_seconds, 0.0);
}

TEST(LiveTelemetry, ServiceFlightRecorderTracksLifecycleAndAdmissions) {
  const auto g = erdos_renyi(400, 2500, 9);
  const GsIndex index(g);
  ServiceOptions options;
  options.num_threads = 1;
  options.flight_capacity = 32;
  QueryService service(index, options);
  ASSERT_NE(service.flight(), nullptr);
  ASSERT_NE(service.submit(make_params(2, 2)).get().run, nullptr);
  service.stop();

  const auto snap = service.snapshot();
  EXPECT_GE(snap.flight_recorded, 3u);  // start, admission, stop
  bool saw_start = false, saw_admission = false, saw_stop = false;
  for (const auto& event : service.flight()->events()) {
    const std::string label = event.label;
    if (label == "serve.start") saw_start = true;
    if (label == "serve.admit") saw_admission = true;
    if (label == "serve.stop") saw_stop = true;
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_admission);
  EXPECT_TRUE(saw_stop);

  std::string error;
  EXPECT_TRUE(
      obs::validate_flight_json(service.flight()->dump_json("stop"), &error))
      << error;
}

TEST(LiveTelemetry, ExpositionTextReflectsTheSnapshot) {
  const auto g = erdos_renyi(800, 6000, 13);
  const GsIndex index(g);
  ServiceOptions options;
  options.num_threads = 2;
  options.cache_results = true;
  options.stats_interval = 25ms;
  QueryService service(index, options);
  for (int i = 0; i < 4; ++i)
    ASSERT_NE(service.submit(make_params(2, 3)).get().run, nullptr);

  ServiceSnapshot snap;
  for (int attempt = 0; attempt < 200; ++attempt) {
    snap = service.snapshot();
    if (snap.publishes > 0 && snap.window.total >= 1) break;
    std::this_thread::sleep_for(10ms);
  }
  const std::string text = serve::exposition_text(snap);

  const auto expect_line = [&text](const std::string& line) {
    EXPECT_NE(text.find(line), std::string::npos) << "missing: " << line;
  };
  expect_line("ppscan_serve_submitted_total " +
              std::to_string(snap.submitted));
  expect_line("ppscan_serve_completed_total " +
              std::to_string(snap.completed));
  expect_line("ppscan_serve_cache_hits_total " +
              std::to_string(snap.cache_hits));
  expect_line("# TYPE ppscan_serve_latency_ms histogram");
  expect_line("ppscan_serve_latency_ms_count " +
              std::to_string(snap.latency.total));
  expect_line("ppscan_serve_latency_ms_bucket{le=\"+Inf\"} " +
              std::to_string(snap.latency.total));
  expect_line("ppscan_serve_shed_total{cause=\"queue-full\"}");
  expect_line("ppscan_serve_breaker_state 0");
  expect_line("# TYPE ppscan_serve_window_latency_ms histogram");
  expect_line("ppscan_serve_window_seconds");
  expect_line("ppscan_serve_publishes_total " +
              std::to_string(snap.publishes));
  // Every HELP has a TYPE: the same invariants check_exposition.py holds
  // over the live scrape in CI.
  EXPECT_EQ(std::string::npos, text.find("\n\n"));
}

// --- the adversarial TSan target ----------------------------------------

TEST(LiveTelemetry, ConcurrentSubmittersPollerAndScraperStayConsistent) {
  const auto g = erdos_renyi(1000, 8000, 17);
  const GsIndex index(g);
  ServiceOptions options;
  options.num_threads = 4;
  options.cache_results = true;
  options.stats_interval = 10ms;  // publisher races with everything below
  options.flight_capacity = 64;
  QueryService service(index, options);

  obs::ExpositionServer exposition(
      0, [&service] { return serve::exposition_text(service.snapshot()); });

  constexpr int kSubmitters = 8;
  constexpr int kPerThread = 12;
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<bool> poll_stop{false};

  std::thread poller([&] {
    while (!poll_stop.load(std::memory_order_relaxed)) {
      const auto snap = service.snapshot();
      // Invariants that must hold on every cut, mid-flight included.
      EXPECT_LE(snap.completed, snap.submitted);
      EXPECT_LE(snap.window.total, snap.latency.total);
      EXPECT_LE(snap.interval_completed, snap.completed);
      std::this_thread::sleep_for(1ms);
    }
  });
  std::thread scraper([&] {
    while (!poll_stop.load(std::memory_order_relaxed)) {
      try {
        const std::string body =
            obs::http_get_local(exposition.port(), "/metrics");
        EXPECT_NE(body.find("ppscan_serve_submitted_total"),
                  std::string::npos);
      } catch (const std::exception&) {
        // Transient connect failures under load are fine; the scrape that
        // matters is the final one below.
      }
      std::this_thread::sleep_for(2ms);
    }
  });

  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto params =
            make_params(1 + static_cast<std::uint64_t>((t + i) % 4),
                        2 + static_cast<std::uint32_t>(i % 3));
        const QueryResponse response = service.submit(params).get();
        if (response.run != nullptr)
          delivered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : submitters) t.join();
  poll_stop.store(true, std::memory_order_relaxed);
  poller.join();
  scraper.join();

  service.stop();
  const auto snap = service.snapshot();
  const std::uint64_t total = kSubmitters * kPerThread;
  EXPECT_EQ(delivered.load(), total);
  EXPECT_EQ(snap.submitted, total);
  EXPECT_EQ(snap.completed, total);
  EXPECT_EQ(snap.latency.total, total);
  EXPECT_EQ(snap.window.total, total);  // the shutdown tick folded the tail
  EXPECT_GT(snap.publishes, 0u);
  EXPECT_GE(snap.flight_recorded, total);  // one admission event per query

  // The final scrape renders the settled counters and still lint-clean
  // families (the CI smoke runs check_exposition.py over a live body; here
  // we at least pin the totals).
  const std::string body = obs::http_get_local(exposition.port(), "/metrics");
  EXPECT_NE(
      body.find("ppscan_serve_submitted_total " + std::to_string(total)),
      std::string::npos)
      << body;
  exposition.stop();
  EXPECT_GT(exposition.requests_served(), 0u);
}

}  // namespace
}  // namespace ppscan
