// Cross-thread tests for the per-worker trace ring (obs/trace.hpp),
// written to put its single-writer protocol in front of ThreadSanitizer
// (this binary is in the CI tsan job's run list, like
// test_atomic_array_mt.cpp):
//
//   single-writer ring — each thread records only into its own
//     TraceCollector slot; thread join is the happens-before edge that
//     publishes the plain event payloads to the reader.
//   release-acquire handoff — a buffer handed from writer to reader via a
//     release store / acquire load of a flag; weakening that edge (or
//     snapshotting concurrently with record()) is a TSan-reported race.
//   phase-label handoff — set_phase's release store pairs with
//     phase_name's acquire load across threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace ppscan {
namespace {

using obs::TraceBuffer;
using obs::TraceCollector;
using obs::TraceEvent;
using obs::TraceEventKind;

TEST(TraceBufferMt, ConcurrentWritersOwnDistinctSlots) {
  if (!obs::kTraceEnabled) {
    GTEST_SKIP() << "tracing compiled out (PPSCAN_TRACE=OFF)";
  }
  constexpr int kWorkers = 8;
  constexpr std::uint64_t kEventsPerWorker = 5000;
  TraceCollector collector(kWorkers, 1 << 14);

  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      TraceBuffer& mine = collector.buffer(w);
      for (std::uint64_t i = 0; i < kEventsPerWorker; ++i) {
        mine.record(TraceEventKind::Mark, "tick", collector.now_ns(), 0,
                    (static_cast<std::uint64_t>(w) << 32) | i);
      }
    });
  }
  // The master slot has its own single writer: this thread.
  collector.emit(collector.master_slot(), TraceEventKind::PhaseBegin,
                 "phase");
  for (auto& t : threads) t.join();

  // join() above is the publication edge snapshot() requires.
  for (int w = 0; w < kWorkers; ++w) {
    const TraceBuffer& buf = collector.buffer(w);
    EXPECT_EQ(buf.recorded(), kEventsPerWorker);
    const auto events = buf.snapshot();
    ASSERT_EQ(events.size(), kEventsPerWorker);
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(events[i].arg,
                (static_cast<std::uint64_t>(w) << 32) | i);
      EXPECT_STREQ(events[i].name, "tick");
    }
  }
  EXPECT_EQ(collector.buffer(collector.master_slot()).recorded(), 1u);
  EXPECT_EQ(collector.buffer(collector.supervisor_slot()).recorded(), 0u);
}

TEST(TraceBufferMt, WrapAroundKeepsNewestEventsOldestFirst) {
  if (!obs::kTraceEnabled) {
    GTEST_SKIP() << "tracing compiled out (PPSCAN_TRACE=OFF)";
  }
  TraceBuffer buf(64);  // minimum capacity, exact power of two
  ASSERT_EQ(buf.capacity(), 64u);
  constexpr std::uint64_t kTotal = 1000;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    buf.record(TraceEventKind::Mark, "seq", i, 0, i);
  }
  EXPECT_EQ(buf.recorded(), kTotal);
  const auto events = buf.snapshot();
  ASSERT_EQ(events.size(), 64u);
  // The retained window is the newest capacity() events, oldest first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, kTotal - 64 + i);
  }
}

TEST(TraceBufferMt, CapacityRoundsUpToPowerOfTwoMinimum64) {
  if (!obs::kTraceEnabled) {
    GTEST_SKIP() << "tracing compiled out (PPSCAN_TRACE=OFF)";
  }
  EXPECT_EQ(TraceBuffer(1).capacity(), 64u);
  EXPECT_EQ(TraceBuffer(64).capacity(), 64u);
  EXPECT_EQ(TraceBuffer(65).capacity(), 128u);
  EXPECT_EQ(TraceBuffer(100).capacity(), 128u);
}

TEST(TraceBufferMt, ReleaseAcquireHandoffPublishesBufferToReader) {
  if (!obs::kTraceEnabled) {
    GTEST_SKIP() << "tracing compiled out (PPSCAN_TRACE=OFF)";
  }
  constexpr std::uint64_t kEvents = 2000;
  TraceBuffer buf(1 << 12);
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      buf.record(TraceEventKind::TaskRun, "task", i, 1, i);
    }
    // Publication edge: pairs with the acquire load below. Without it the
    // reader's snapshot of the plain payload stores is a race TSan reports.
    done.store(true, std::memory_order_release);
  });

  while (!done.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  const auto events = buf.snapshot();
  ASSERT_EQ(events.size(), kEvents);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, i);
    EXPECT_EQ(events[i].kind, TraceEventKind::TaskRun);
  }
  writer.join();
}

TEST(TraceBufferMt, PhaseLabelHandoffAcrossThreads) {
  constexpr int kReaders = 4;
  TraceCollector collector(kReaders, 64);
  EXPECT_STREQ(collector.phase_name(), "(no phase)");
  collector.set_phase("PruneSim");

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      // Acquire load pairs with the release store in set_phase.
      EXPECT_STREQ(collector.phase_name(), "PruneSim");
    });
  }
  for (auto& t : readers) t.join();
}

TEST(TraceBufferMt, CompiledOutBuffersStayEmpty) {
  if (obs::kTraceEnabled) {
    GTEST_SKIP() << "tracing compiled in; the OFF branch is covered by the "
                    "PPSCAN_TRACE=OFF CI build";
  }
  TraceBuffer buf(1 << 10);
  buf.record(TraceEventKind::Mark, "ignored", 1, 2, 3);
  EXPECT_EQ(buf.recorded(), 0u);
  EXPECT_EQ(buf.capacity(), 0u);
  EXPECT_TRUE(buf.snapshot().empty());
}

}  // namespace
}  // namespace ppscan
