#include "dynamic/dynamic_scan.hpp"

#include <gtest/gtest.h>

#include "core/ppscan.hpp"
#include "graph/fixtures.hpp"
#include "graph/generators.hpp"
#include "graph/graph_builder.hpp"
#include "support/reference_scan.hpp"
#include "util/rng.hpp"

namespace ppscan {
namespace {

/// The invariant every test leans on: after any update sequence, the
/// dynamic result equals a from-scratch run on the current graph.
void expect_matches_static(DynamicScan& dynamic, const ScanParams& params) {
  const auto graph = dynamic.snapshot();
  ASSERT_NO_THROW(graph.validate());
  const auto expected = testing::reference_scan(graph, params);
  ASSERT_TRUE(results_equivalent(expected, dynamic.result()))
      << describe_result_difference(expected, dynamic.result());
}

TEST(DynamicScan, InitialStateMatchesStatic) {
  const auto g = erdos_renyi(200, 1200, 3);
  const auto params = ScanParams::make("0.5", 3);
  DynamicScan dynamic(g, params);
  expect_matches_static(dynamic, params);
}

TEST(DynamicScan, SingleInsertionUpdatesClusters) {
  // Two cliques plus the bridge-closing edge: inserting it can merge
  // nothing (bridge vertices stay dissimilar), but the similarity flags
  // around the endpoints must all refresh correctly.
  const auto g = make_two_cliques_bridge(5);
  const auto params = ScanParams::make("0.7", 3);
  DynamicScan dynamic(g, params);
  EXPECT_TRUE(dynamic.insert_edge(4, 6));
  expect_matches_static(dynamic, params);
}

TEST(DynamicScan, InsertRejectsDuplicatesAndSelfLoops) {
  const auto g = make_clique(4);
  DynamicScan dynamic(g, ScanParams::make("0.5", 2));
  EXPECT_FALSE(dynamic.insert_edge(0, 1));
  EXPECT_FALSE(dynamic.insert_edge(2, 2));
  EXPECT_EQ(dynamic.num_edges(), 6u);
}

TEST(DynamicScan, RemoveRejectsMissing) {
  const auto g = make_path(4);
  DynamicScan dynamic(g, ScanParams::make("0.5", 1));
  EXPECT_FALSE(dynamic.remove_edge(0, 3));
  EXPECT_FALSE(dynamic.remove_edge(1, 1));
  EXPECT_EQ(dynamic.num_edges(), 3u);
}

TEST(DynamicScan, InsertThenRemoveRestoresOriginalResult) {
  const auto g = erdos_renyi(150, 900, 8);
  const auto params = ScanParams::make("0.4", 2);
  DynamicScan dynamic(g, params);
  const auto before = dynamic.result();
  EXPECT_TRUE(dynamic.insert_edge(0, 149));
  EXPECT_TRUE(dynamic.remove_edge(0, 149));
  EXPECT_TRUE(results_equivalent(before, dynamic.result()));
}

TEST(DynamicScan, GrowsVertexSetOnDemand) {
  const auto g = make_clique(4);
  const auto params = ScanParams::make("0.5", 2);
  DynamicScan dynamic(g, params);
  EXPECT_TRUE(dynamic.insert_edge(3, 10));
  EXPECT_EQ(dynamic.num_vertices(), 11u);
  expect_matches_static(dynamic, params);
}

TEST(DynamicScan, EdgeRemovalCanSplitACluster) {
  // A clique chain clustered as one piece at lenient parameters; cutting
  // the joint edge must split it.
  const auto g = make_clique_chain(2, 5);
  const auto params = ScanParams::make("0.3", 2);
  DynamicScan dynamic(g, params);
  const auto before_clusters = dynamic.result().num_clusters();
  EXPECT_TRUE(dynamic.remove_edge(4, 5));
  expect_matches_static(dynamic, params);
  EXPECT_GE(dynamic.result().num_clusters(), before_clusters);
}

TEST(DynamicScan, BuildGraphFromScratchByInsertions) {
  // Start empty; inserting every edge one by one must land on the same
  // result as the static run on the final graph.
  const auto target = lfr_like(
      [] {
        LfrParams p;
        p.n = 120;
        p.avg_degree = 10;
        p.min_community = 10;
        p.max_community = 40;
        return p;
      }(),
      99);
  const auto params = ScanParams::make("0.4", 2);
  DynamicScan dynamic(GraphBuilder::from_edges({}, target.num_vertices()),
                      params);
  for (VertexId u = 0; u < target.num_vertices(); ++u) {
    for (const VertexId v : target.neighbors(u)) {
      if (u < v) dynamic.insert_edge(u, v);
    }
  }
  expect_matches_static(dynamic, params);
  EXPECT_EQ(dynamic.num_edges(), target.num_edges());
}

TEST(DynamicScan, RandomizedUpdateStream) {
  // The main property test: a random mix of insertions and deletions, with
  // the dynamic result checked against the oracle after every batch.
  Rng rng(2718);
  const auto params = ScanParams::make("0.5", 3);
  auto base = erdos_renyi(80, 320, 31);
  DynamicScan dynamic(base, params);

  constexpr int kBatches = 15;
  constexpr int kUpdatesPerBatch = 10;
  for (int batch = 0; batch < kBatches; ++batch) {
    for (int i = 0; i < kUpdatesPerBatch; ++i) {
      const auto u = static_cast<VertexId>(rng.next_below(80));
      const auto v = static_cast<VertexId>(rng.next_below(80));
      if (u == v) continue;
      if (rng.next_bool(0.5)) {
        dynamic.insert_edge(u, v);
      } else {
        dynamic.remove_edge(u, v);
      }
    }
    expect_matches_static(dynamic, params);
  }
  EXPECT_GT(dynamic.stats().intersections, 0u);
  EXPECT_GT(dynamic.stats().cluster_rebuilds, 0u);
}

TEST(DynamicScan, UpdateCostIsLocal) {
  // An update touches only arcs incident to the endpoints: on a large
  // sparse graph the incremental recompute must stay tiny relative to a
  // full pass.
  LfrParams p;
  p.n = 4000;
  p.avg_degree = 16;
  const auto g = lfr_like(p, 55);
  DynamicScan dynamic(g, ScanParams::make("0.5", 4));
  const auto before = dynamic.stats().arcs_recomputed;
  dynamic.insert_edge(0, 2000);
  const auto touched = dynamic.stats().arcs_recomputed - before;
  // d(0) + d(2000) + the new edge's two arcs, far below |arcs| = 2|E|.
  EXPECT_LT(touched, 200u);
}

TEST(DynamicScan, ResultIsCachedBetweenReads) {
  const auto g = make_clique(6);
  DynamicScan dynamic(g, ScanParams::make("0.5", 2));
  (void)dynamic.result();
  const auto rebuilds = dynamic.stats().cluster_rebuilds;
  (void)dynamic.result();
  EXPECT_EQ(dynamic.stats().cluster_rebuilds, rebuilds);
  dynamic.insert_edge(0, 6);  // new vertex; invalidates
  (void)dynamic.result();
  EXPECT_EQ(dynamic.stats().cluster_rebuilds, rebuilds + 1);
}

}  // namespace
}  // namespace ppscan
