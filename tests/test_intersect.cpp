#include "setops/intersect.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace ppscan {
namespace {

std::vector<VertexId> random_sorted_set(Rng& rng, std::size_t size,
                                        VertexId universe) {
  std::set<VertexId> s;
  while (s.size() < size) {
    s.insert(static_cast<VertexId>(rng.next_below(universe)));
  }
  return {s.begin(), s.end()};
}

/// Ground-truth decision: |A ∩ B| + 2 >= min_cn.
bool naive_similar(const std::vector<VertexId>& a,
                   const std::vector<VertexId>& b, std::uint32_t min_cn) {
  std::vector<VertexId> common;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(common));
  return common.size() + 2 >= min_cn;
}

// ---------------------------------------------------------------------------
// Exact counting kernels.

TEST(IntersectCount, MergeOnKnownSets) {
  const std::vector<VertexId> a{1, 3, 5, 7, 9};
  const std::vector<VertexId> b{2, 3, 4, 7, 10};
  EXPECT_EQ(intersect_count_merge(a, b), 2u);
}

TEST(IntersectCount, MergeDisjointAndEmpty) {
  const std::vector<VertexId> a{1, 2, 3};
  const std::vector<VertexId> b{4, 5, 6};
  const std::vector<VertexId> empty;
  EXPECT_EQ(intersect_count_merge(a, b), 0u);
  EXPECT_EQ(intersect_count_merge(a, empty), 0u);
  EXPECT_EQ(intersect_count_merge(empty, empty), 0u);
}

TEST(IntersectCount, GallopingMatchesMergeRandomized) {
  Rng rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    const auto a = random_sorted_set(rng, 1 + rng.next_below(200), 1000);
    const auto b = random_sorted_set(rng, 1 + rng.next_below(200), 1000);
    EXPECT_EQ(intersect_count_galloping(a, b), intersect_count_merge(a, b));
  }
}

TEST(IntersectCount, GallopingOnHighlySkewedSizes) {
  Rng rng(19);
  const auto small = random_sorted_set(rng, 5, 100000);
  const auto large = random_sorted_set(rng, 5000, 100000);
  EXPECT_EQ(intersect_count_galloping(small, large),
            intersect_count_merge(small, large));
  EXPECT_EQ(intersect_count_galloping(large, small),
            intersect_count_merge(large, small));
}

TEST(IntersectCount, IdenticalSets) {
  Rng rng(23);
  const auto a = random_sorted_set(rng, 64, 1000);
  EXPECT_EQ(intersect_count_merge(a, a), a.size());
  EXPECT_EQ(intersect_count_galloping(a, a), a.size());
}

TEST(IntersectCountSimd, Avx2MatchesMergeRandomized) {
  if (!kernel_supported(IntersectKind::PivotAvx2)) {
    GTEST_SKIP() << "no AVX2";
  }
  Rng rng(71);
  for (int trial = 0; trial < 400; ++trial) {
    const auto a = random_sorted_set(rng, 1 + rng.next_below(400), 2000);
    const auto b = random_sorted_set(rng, 1 + rng.next_below(400), 2000);
    EXPECT_EQ(intersect_count_avx2(a, b), intersect_count_merge(a, b));
  }
}

TEST(IntersectCountSimd, Avx512MatchesMergeRandomized) {
  if (!kernel_supported(IntersectKind::PivotAvx512)) {
    GTEST_SKIP() << "no AVX512";
  }
  Rng rng(73);
  for (int trial = 0; trial < 400; ++trial) {
    const auto a = random_sorted_set(rng, 1 + rng.next_below(400), 2000);
    const auto b = random_sorted_set(rng, 1 + rng.next_below(400), 2000);
    EXPECT_EQ(intersect_count_avx512(a, b), intersect_count_merge(a, b));
  }
}

TEST(IntersectCountSimd, TinyAndEmptyInputs) {
  const std::vector<VertexId> empty;
  const std::vector<VertexId> tiny{3, 9};
  for (const auto kind :
       {IntersectKind::PivotAvx2, IntersectKind::PivotAvx512}) {
    if (!kernel_supported(kind)) continue;
    const auto fn = count_fn(kind);
    EXPECT_EQ(fn(empty, tiny), 0u);
    EXPECT_EQ(fn(tiny, tiny), 2u);
  }
}

TEST(IntersectCountSimd, DenseRunsAndFullOverlap) {
  std::vector<VertexId> a, b;
  for (VertexId i = 0; i < 100; ++i) a.push_back(2 * i);
  for (VertexId i = 0; i < 100; ++i) b.push_back(4 * i);
  for (const auto kind :
       {IntersectKind::PivotAvx2, IntersectKind::PivotAvx512}) {
    if (!kernel_supported(kind)) continue;
    const auto fn = count_fn(kind);
    EXPECT_EQ(fn(a, b), intersect_count_merge(a, b));
    EXPECT_EQ(fn(a, a), a.size());
  }
}

TEST(IntersectCountSimd, BlockedMergeMatchesMergeRandomized) {
  if (!kernel_supported(IntersectKind::PivotAvx2)) {
    GTEST_SKIP() << "no AVX2";
  }
  Rng rng(79);
  for (int trial = 0; trial < 400; ++trial) {
    const auto a = random_sorted_set(rng, 1 + rng.next_below(300), 1500);
    const auto b = random_sorted_set(rng, 1 + rng.next_below(300), 1500);
    EXPECT_EQ(intersect_count_blocked_simd(a, b),
              intersect_count_merge(a, b));
  }
}

TEST(IntersectCountSimd, BlockedMergeEdgeCases) {
  if (!kernel_supported(IntersectKind::PivotAvx2)) {
    GTEST_SKIP() << "no AVX2";
  }
  const std::vector<VertexId> empty;
  const std::vector<VertexId> tiny{1, 5, 9};
  const std::vector<VertexId> run{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_EQ(intersect_count_blocked_simd(empty, run), 0u);
  EXPECT_EQ(intersect_count_blocked_simd(tiny, run), 3u);
  EXPECT_EQ(intersect_count_blocked_simd(run, run), run.size());
}

TEST(IntersectDispatch, CountFnMapsScalarKindsToMerge) {
  EXPECT_EQ(count_fn(IntersectKind::MergeEarlyStop), &intersect_count_merge);
  EXPECT_EQ(count_fn(IntersectKind::PivotScalar), &intersect_count_merge);
}

// ---------------------------------------------------------------------------
// Similarity kernels — all must agree with the naive decision.

struct KernelCase {
  IntersectKind kind;
};

class SimilarKernelTest : public ::testing::TestWithParam<KernelCase> {
 protected:
  void SetUp() override {
    if (!kernel_supported(GetParam().kind)) {
      GTEST_SKIP() << "kernel not supported on this CPU";
    }
    fn_ = similar_fn(GetParam().kind);
  }
  SimilarFn fn_ = nullptr;
};

TEST_P(SimilarKernelTest, TrivialThresholds) {
  const std::vector<VertexId> a{1, 2, 3};
  const std::vector<VertexId> b{4, 5, 6};
  // min_cn <= 2 is always satisfied by adjacency itself.
  EXPECT_TRUE(fn_(a, b, 0));
  EXPECT_TRUE(fn_(a, b, 2));
  // min_cn above min(|a|,|b|)+2 can never be reached.
  EXPECT_FALSE(fn_(a, b, 6));
}

TEST_P(SimilarKernelTest, EmptyNeighborLists) {
  const std::vector<VertexId> empty;
  const std::vector<VertexId> a{1, 2, 3};
  EXPECT_TRUE(fn_(empty, a, 2));
  EXPECT_FALSE(fn_(empty, a, 3));
  EXPECT_FALSE(fn_(empty, empty, 3));
}

TEST_P(SimilarKernelTest, ExactBoundaryDecision) {
  // |A ∩ B| = 3, so cn = 5: similar iff min_cn <= 5.
  const std::vector<VertexId> a{1, 2, 3, 10, 20};
  const std::vector<VertexId> b{2, 3, 10, 30, 40};
  EXPECT_TRUE(fn_(a, b, 5));
  EXPECT_FALSE(fn_(a, b, 6));
}

TEST_P(SimilarKernelTest, RandomizedAgainstNaive) {
  Rng rng(41 + static_cast<std::uint64_t>(GetParam().kind));
  for (int trial = 0; trial < 1500; ++trial) {
    const std::size_t size_a = 1 + rng.next_below(120);
    const std::size_t size_b = 1 + rng.next_below(120);
    // Universe size controls overlap density; sweep it.
    const VertexId universe = 10 + static_cast<VertexId>(rng.next_below(400));
    const auto a = random_sorted_set(
        rng, std::min<std::size_t>(size_a, universe), universe);
    const auto b = random_sorted_set(
        rng, std::min<std::size_t>(size_b, universe), universe);
    const auto min_cn =
        static_cast<std::uint32_t>(rng.next_below(a.size() + b.size() + 4));
    EXPECT_EQ(fn_(a, b, min_cn), naive_similar(a, b, min_cn))
        << "kind=" << to_string(GetParam().kind) << " |a|=" << a.size()
        << " |b|=" << b.size() << " min_cn=" << min_cn;
  }
}

TEST_P(SimilarKernelTest, LongListsExerciseVectorPath) {
  Rng rng(53);
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = random_sorted_set(rng, 200 + rng.next_below(300), 4000);
    const auto b = random_sorted_set(rng, 200 + rng.next_below(300), 4000);
    for (const std::uint32_t min_cn : {3u, 10u, 50u, 150u, 400u}) {
      EXPECT_EQ(fn_(a, b, min_cn), naive_similar(a, b, min_cn));
    }
  }
}

TEST_P(SimilarKernelTest, SkewedSizesExerciseGallopingBehavior) {
  Rng rng(59);
  const auto small = random_sorted_set(rng, 10, 10000);
  const auto large = random_sorted_set(rng, 3000, 10000);
  for (const std::uint32_t min_cn : {3u, 5u, 8u, 12u}) {
    EXPECT_EQ(fn_(small, large, min_cn), naive_similar(small, large, min_cn));
    EXPECT_EQ(fn_(large, small, min_cn), naive_similar(large, small, min_cn));
  }
}

TEST_P(SimilarKernelTest, IdenticalListsAreMaximallySimilar) {
  Rng rng(61);
  const auto a = random_sorted_set(rng, 100, 1000);
  EXPECT_TRUE(fn_(a, a, static_cast<std::uint32_t>(a.size() + 2)));
  EXPECT_FALSE(fn_(a, a, static_cast<std::uint32_t>(a.size() + 3)));
}

TEST_P(SimilarKernelTest, ConsecutiveRunsExerciseFullVectorSkips) {
  // Dense consecutive ranges with a controlled overlap: the vector loop
  // takes whole-width skips (bit_cnt == lane count) repeatedly.
  std::vector<VertexId> a, b;
  for (VertexId i = 0; i < 200; ++i) a.push_back(i);
  for (VertexId i = 150; i < 350; ++i) b.push_back(i);
  // Overlap = 50 → cn = 52.
  EXPECT_TRUE(fn_(a, b, 52));
  EXPECT_FALSE(fn_(a, b, 53));
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, SimilarKernelTest,
    ::testing::Values(KernelCase{IntersectKind::MergeEarlyStop},
                      KernelCase{IntersectKind::PivotScalar},
                      KernelCase{IntersectKind::PivotAvx2},
                      KernelCase{IntersectKind::PivotAvx512},
                      KernelCase{IntersectKind::GallopEarlyStop}),
    [](const ::testing::TestParamInfo<KernelCase>& info) {
      return to_string(info.param.kind);
    });

// ---------------------------------------------------------------------------
// Dispatch.

TEST(IntersectDispatch, ParseRoundTrip) {
  for (const auto kind :
       {IntersectKind::MergeEarlyStop, IntersectKind::PivotScalar,
        IntersectKind::PivotAvx2, IntersectKind::PivotAvx512,
        IntersectKind::GallopEarlyStop, IntersectKind::Auto}) {
    EXPECT_EQ(parse_intersect_kind(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_intersect_kind("bogus"), std::invalid_argument);
}

TEST(IntersectDispatch, GallopCountFnAndAlwaysSupported) {
  EXPECT_TRUE(kernel_supported(IntersectKind::GallopEarlyStop));
  EXPECT_EQ(count_fn(IntersectKind::GallopEarlyStop),
            &intersect_count_galloping);
  EXPECT_EQ(similar_fn(IntersectKind::GallopEarlyStop), &similar_gallop);
}

TEST(IntersectDispatch, AutoAgreesWithNaiveOnSkewedPairs) {
  // Above the default skew threshold (64x) the Auto dispatcher takes the
  // galloping path; it must still decide identically to the ground truth.
  Rng rng(67);
  const auto fn = similar_fn(IntersectKind::Auto);
  for (int trial = 0; trial < 50; ++trial) {
    const auto small = random_sorted_set(rng, 1 + rng.next_below(6), 100000);
    const auto large = random_sorted_set(rng, 2000, 100000);
    for (const std::uint32_t min_cn : {2u, 3u, 5u, 9u}) {
      EXPECT_EQ(fn(small, large, min_cn), naive_similar(small, large, min_cn));
      EXPECT_EQ(fn(large, small, min_cn), naive_similar(large, small, min_cn));
    }
  }
}

TEST(IntersectDispatch, AutoResolvesToSupportedKernel) {
  const auto resolved = resolve_kernel(IntersectKind::Auto);
  EXPECT_NE(resolved, IntersectKind::Auto);
  EXPECT_TRUE(kernel_supported(resolved));
}

TEST(IntersectDispatch, ScalarKernelsAlwaysSupported) {
  EXPECT_TRUE(kernel_supported(IntersectKind::MergeEarlyStop));
  EXPECT_TRUE(kernel_supported(IntersectKind::PivotScalar));
}

TEST(IntersectDispatch, SimilarFnReturnsWorkingFunction) {
  const auto fn = similar_fn(IntersectKind::Auto);
  const std::vector<VertexId> a{1, 2, 3, 4};
  const std::vector<VertexId> b{2, 3, 4, 5};
  EXPECT_TRUE(fn(a, b, 5));   // cn = 3 + 2
  EXPECT_FALSE(fn(a, b, 6));
}

}  // namespace
}  // namespace ppscan
