// The pruning-funnel counters (obs/counters.hpp) across all five
// algorithms and the GS*-Index build, on known small graphs. The anchor
// invariant, enforced per algorithm:
//
//   arcs_predicate_pruned + sims_computed + sims_reused == arcs_touched
//
// plus exact totals where the algorithm's structure pins them: an
// exhaustive run decides every directed arc (touched == 2|E|), and every
// u < v mirroring scheme computes and reuses in lockstep
// (sims_computed == sims_reused).
#include <gtest/gtest.h>

#include "core/ppscan.hpp"
#include "graph/generators.hpp"
#include "index/gs_index.hpp"
#include "scan/anyscan_lite.hpp"
#include "scan/pscan.hpp"
#include "scan/scan_original.hpp"
#include "scan/scanxp.hpp"

namespace ppscan {
namespace {

void expect_funnel_invariant(const obs::AlgoCounters& c,
                             const std::string& label) {
  EXPECT_EQ(c.arcs_predicate_pruned + c.sims_computed + c.sims_reused,
            c.arcs_touched)
      << label << ": pruned=" << c.arcs_predicate_pruned
      << " computed=" << c.sims_computed << " reused=" << c.sims_reused
      << " touched=" << c.arcs_touched;
}

TEST(AlgoCounters, PpScanExhaustiveTouchesEveryArcExactlyOnce) {
  const auto g = erdos_renyi(400, 2400, 21);
  const auto params = ScanParams::make("0.5", 4);
  PpScanOptions options;
  options.num_threads = 1;
  options.minmax_pruning = false;    // no early exit in CheckCore
  options.unionfind_pruning = false;  // no same-set skip in clustering
  const auto run = ppscan(g, params, options);

  const auto& c = run.stats.counters;
  expect_funnel_invariant(c, "ppSCAN exhaustive");
  // With the early exits disabled every directed arc gets decided exactly
  // once: by the degree predicate or by an intersection mirrored via the
  // u < v ownership rule.
  EXPECT_EQ(c.arcs_touched, 2 * g.num_edges());
  EXPECT_EQ(c.sims_computed, c.sims_reused);
  EXPECT_EQ(c.sims_computed, run.stats.compsim_invocations);
  EXPECT_EQ(c.core_early_exits, 0u);
}

TEST(AlgoCounters, PpScanPrunedRunKeepsInvariantAndMergesAcrossThreads) {
  const auto g = erdos_renyi(500, 4000, 22);
  const auto params = ScanParams::make("0.4", 3);
  PpScanOptions serial;
  serial.num_threads = 1;
  const auto base = ppscan(g, params, serial);
  expect_funnel_invariant(base.stats.counters, "ppSCAN serial");
  // Pruning can only shrink the funnel, never decide an arc twice.
  EXPECT_LE(base.stats.counters.arcs_touched, 2 * g.num_edges());
  EXPECT_GT(base.stats.counters.arcs_touched, 0u);

  PpScanOptions parallel;
  parallel.num_threads = 4;
  const auto mt = ppscan(g, params, parallel);
  expect_funnel_invariant(mt.stats.counters, "ppSCAN mt");
  // The per-worker slots must merge to a complete funnel — every arc the
  // run decided shows up exactly once regardless of which worker did it.
  EXPECT_EQ(mt.stats.counters.sims_computed, mt.stats.compsim_invocations);
  EXPECT_EQ(mt.stats.counters.sims_computed,
            mt.stats.counters.sims_reused);
}

TEST(AlgoCounters, PscanFunnelMatchesItsInvocations) {
  const auto g = erdos_renyi(400, 2400, 23);
  const auto run = pscan(g, ScanParams::make("0.5", 4));
  const auto& c = run.stats.counters;
  expect_funnel_invariant(c, "pSCAN");
  EXPECT_EQ(c.sims_computed, run.stats.compsim_invocations);
  EXPECT_EQ(c.sims_computed, c.sims_reused);  // every decision is mirrored
  EXPECT_LE(c.arcs_touched, 2 * g.num_edges());
  EXPECT_EQ(run.stats.runtime_kind, "serial");
}

TEST(AlgoCounters, ScanOriginalComputesEveryTouchedArc) {
  const auto g = erdos_renyi(300, 1500, 24);
  const auto run = scan_original(g, ScanParams::make("0.5", 4));
  const auto& c = run.stats.counters;
  expect_funnel_invariant(c, "SCAN");
  // No pruning, no mirroring: the funnel is all intersections.
  EXPECT_EQ(c.arcs_predicate_pruned, 0u);
  EXPECT_EQ(c.sims_reused, 0u);
  EXPECT_EQ(c.sims_computed, c.arcs_touched);
  EXPECT_EQ(c.sims_computed, run.stats.compsim_invocations);
}

TEST(AlgoCounters, ScanXpIntersectsEachEdgeOnceAndMirrors) {
  const auto g = erdos_renyi(300, 1500, 25);
  ScanXpOptions options;
  options.num_threads = 4;
  const auto run = scanxp(g, ScanParams::make("0.5", 4), options);
  const auto& c = run.stats.counters;
  expect_funnel_invariant(c, "SCAN-XP");
  EXPECT_EQ(c.arcs_touched, 2 * g.num_edges());
  EXPECT_EQ(c.sims_computed, g.num_edges());
  EXPECT_EQ(c.sims_reused, g.num_edges());
  EXPECT_EQ(c.arcs_predicate_pruned, 0u);
  EXPECT_EQ(run.stats.runtime_kind, "worksteal");
}

TEST(AlgoCounters, AnyScanLiteCountsEachDirectionItEvaluates) {
  const auto g = erdos_renyi(300, 1500, 26);
  AnyScanLiteOptions options;
  options.num_threads = 4;
  const auto run = anyscan_lite(g, ScanParams::make("0.5", 4), options);
  const auto& c = run.stats.counters;
  expect_funnel_invariant(c, "anySCAN");
  // Per-direction evaluation without mirroring: no reuse, and the role
  // phase's min-max break means not every arc need be touched.
  EXPECT_EQ(c.sims_reused, 0u);
  EXPECT_EQ(c.sims_computed, run.stats.compsim_invocations);
  EXPECT_LE(c.arcs_touched, 2 * g.num_edges());
}

TEST(AlgoCounters, GsIndexBuildIsExhaustiveOverEdges) {
  const auto g = erdos_renyi(300, 1500, 27);
  GsIndex::BuildOptions options;
  options.num_threads = 4;
  const GsIndex index(g, options);
  ASSERT_TRUE(index.complete());
  const auto& c = index.build_stats().counters;
  expect_funnel_invariant(c, "GS-Index build");
  EXPECT_EQ(c.arcs_touched, 2 * g.num_edges());
  EXPECT_EQ(c.sims_computed, g.num_edges());
  EXPECT_EQ(c.sims_reused, g.num_edges());
  EXPECT_EQ(c.sims_computed, index.build_stats().intersections);
}

TEST(AlgoCounters, UnionFindCountersTrackClustering) {
  const auto g = erdos_renyi(400, 3200, 28);
  const auto params = ScanParams::make("0.3", 2);
  PpScanOptions options;
  options.num_threads = 2;
  const auto run = ppscan(g, params, options);
  // Each successful unite merges two sets; a clustering with k cores in
  // non-singleton sets performs at most cores-1 unions.
  const auto cores = run.result.num_cores();
  EXPECT_LE(run.stats.counters.uf_unions, cores);
  if (cores > 0) {
    // Phases 6/7 look up each core's root at least once.
    EXPECT_GE(run.stats.counters.uf_finds, cores);
  }
}

TEST(AlgoCounters, SlotsMergeSums) {
  obs::CounterSlots slots(3);
  slots.slot(0).arcs_touched = 5;
  slots.slot(1).arcs_touched = 7;
  slots.slot(2).sims_computed = 2;
  slots.slot(2).arcs_touched = 2;
  const auto merged = slots.merged();
  EXPECT_EQ(merged.arcs_touched, 14u);
  EXPECT_EQ(merged.sims_computed, 2u);
}

}  // namespace
}  // namespace ppscan
