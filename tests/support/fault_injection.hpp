// Fault-injection corpus for the graph ingestion layer.
//
// Takes a valid graph, writes it to disk, and derives one systematically
// corrupted file per failure class (truncated header/body, oversized
// header fields, non-monotone offsets, out-of-range dst, unsorted
// neighbors, self loops, ... for the binary format; negative ids, 2^32
// ids, trailing garbage, ... for the text format). Each case names the
// GraphIoErrorKind the loader must raise — the suite asserting that runs
// under the asan-ubsan CI job, so a validation gap shows up as a
// sanitizer failure rather than a silent out-of-bounds read.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "util/graph_io_error.hpp"

namespace ppscan::testing {

struct FaultCase {
  std::string name;              // corruption class, e.g. "truncated-body"
  std::string path;              // corrupted file on disk
  GraphIoErrorKind expected;     // kind the loader must throw
};

/// Writes `graph` as `dir/valid.bin` plus one corrupted variant per binary
/// corruption class. `graph` needs >= 3 vertices and a vertex of degree
/// >= 2 so neighbor-level corruptions have room to work.
std::vector<FaultCase> make_binary_fault_corpus(
    const CsrGraph& graph, const std::filesystem::path& dir);

/// Writes one malformed text edge list per text corruption class.
std::vector<FaultCase> make_text_fault_corpus(
    const std::filesystem::path& dir);

}  // namespace ppscan::testing
