// Fault injection for the tests: a corrupted-file corpus for the graph
// ingestion layer, and misbehaving task bodies (slow, hung) for the
// run-governance layer.
//
// Takes a valid graph, writes it to disk, and derives one systematically
// corrupted file per failure class (truncated header/body, oversized
// header fields, non-monotone offsets, out-of-range dst, unsorted
// neighbors, self loops, ... for the binary format; negative ids, 2^32
// ids, trailing garbage, ... for the text format). Each case names the
// GraphIoErrorKind the loader must raise — the suite asserting that runs
// under the asan-ubsan CI job, so a validation gap shows up as a
// sanitizer failure rather than a silent out-of-bounds read.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "concurrent/run_governor.hpp"
#include "graph/csr_graph.hpp"
#include "util/graph_io_error.hpp"
#include "util/types.hpp"

namespace ppscan::testing {

struct FaultCase {
  std::string name;              // corruption class, e.g. "truncated-body"
  std::string path;              // corrupted file on disk
  GraphIoErrorKind expected;     // kind the loader must throw
};

/// Writes `graph` as `dir/valid.bin` plus one corrupted variant per binary
/// corruption class. `graph` needs >= 3 vertices and a vertex of degree
/// >= 2 so neighbor-level corruptions have room to work.
std::vector<FaultCase> make_binary_fault_corpus(
    const CsrGraph& graph, const std::filesystem::path& dir);

/// Writes one malformed text edge list per text corruption class.
std::vector<FaultCase> make_text_fault_corpus(
    const std::filesystem::path& dir);

// --- Execution-runtime fault injection -------------------------------------
//
// Misbehaving task bodies for the run-governance tests. Governance is
// cooperative, so its failure modes are defined by how a phase body
// misbehaves: a body that is merely *slow* (long enough that a deadline
// lands mid-phase instead of between phases) and a body that *wedges* one
// task outright (never returns on its own — the watchdog's prey).

/// Phase body that burns ~`per_task` of wall time per executed range and
/// never polls the governor — the in-tree bodies all poll, so deadline
/// coverage against non-cooperative work needs an injected laggard.
class SlowPhaseBody {
 public:
  explicit SlowPhaseBody(std::chrono::microseconds per_task)
      : per_task_(per_task) {}

  void operator()(VertexId beg, VertexId end);

  [[nodiscard]] std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  std::chrono::microseconds per_task_;
  std::atomic<std::uint64_t> executed_{0};
};

/// Phase body that executes every range instantly except the one containing
/// `hang_task`, which blocks until release() is called or `token` trips.
/// Wiring the run's own CancelToken as `token` closes the loop for watchdog
/// tests: the stall trips the token, which un-wedges the hung task, so the
/// phase drains and the run returns a Stalled-labeled partial result
/// instead of deadlocking the test binary.
class HungWorker {
 public:
  explicit HungWorker(VertexId hang_task, const CancelToken* token = nullptr)
      : hang_task_(hang_task), token_(token) {}

  void operator()(VertexId beg, VertexId end);

  /// Manual un-wedge for tests that do not route a token.
  void release() { released_.store(true, std::memory_order_release); }

  /// True once the designated task has started hanging.
  [[nodiscard]] bool hang_started() const {
    return hang_started_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint64_t other_tasks_executed() const {
    return others_.load(std::memory_order_relaxed);
  }

 private:
  VertexId hang_task_;
  const CancelToken* token_;
  std::atomic<bool> released_{false};
  std::atomic<bool> hang_started_{false};
  std::atomic<std::uint64_t> others_{0};
};

}  // namespace ppscan::testing
