#include "support/reference_scan.hpp"

#include <algorithm>
#include <deque>
#include <vector>

namespace ppscan::testing {
namespace {

std::vector<VertexId> closed_neighborhood(const CsrGraph& graph, VertexId u) {
  std::vector<VertexId> gamma(graph.neighbors(u).begin(),
                              graph.neighbors(u).end());
  gamma.push_back(u);
  std::sort(gamma.begin(), gamma.end());
  return gamma;
}

}  // namespace

bool reference_similar(const CsrGraph& graph, const ScanParams& params,
                       VertexId u, VertexId v) {
  const auto gu = closed_neighborhood(graph, u);
  const auto gv = closed_neighborhood(graph, v);
  std::vector<VertexId> common;
  std::set_intersection(gu.begin(), gu.end(), gv.begin(), gv.end(),
                        std::back_inserter(common));
  return similarity_holds(params.eps, common.size(), graph.degree(u),
                          graph.degree(v));
}

ScanResult reference_scan(const CsrGraph& graph, const ScanParams& params) {
  const VertexId n = graph.num_vertices();
  ScanResult result;
  result.roles.assign(n, Role::Unknown);
  result.core_cluster_id.assign(n, kInvalidVertex);

  // Similarity of every edge, both directions symmetric by construction.
  std::vector<std::vector<bool>> similar(n);
  for (VertexId u = 0; u < n; ++u) {
    const auto nbrs = graph.neighbors(u);
    similar[u].resize(nbrs.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      similar[u][i] = reference_similar(graph, params, u, nbrs[i]);
    }
  }

  // Roles: core iff at least µ similar neighbors.
  for (VertexId u = 0; u < n; ++u) {
    std::uint32_t sd = 0;
    for (const bool s : similar[u]) {
      if (s) ++sd;
    }
    result.roles[u] = sd >= params.mu ? Role::Core : Role::NonCore;
  }

  // Core clusters: connected components of the similar core-core subgraph.
  std::vector<VertexId> component(n, kInvalidVertex);
  for (VertexId seed = 0; seed < n; ++seed) {
    if (result.roles[seed] != Role::Core || component[seed] != kInvalidVertex) {
      continue;
    }
    component[seed] = seed;
    std::deque<VertexId> queue{seed};
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      const auto nbrs = graph.neighbors(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId v = nbrs[i];
        if (!similar[u][i] || result.roles[v] != Role::Core) continue;
        if (component[v] == kInvalidVertex) {
          component[v] = seed;
          queue.push_back(v);
        }
      }
    }
  }
  for (VertexId u = 0; u < n; ++u) {
    if (result.roles[u] == Role::Core) {
      result.core_cluster_id[u] = component[u];
    }
  }

  // Non-core memberships: ε-similar neighbors of cores.
  for (VertexId u = 0; u < n; ++u) {
    if (result.roles[u] != Role::Core) continue;
    const auto nbrs = graph.neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      if (similar[u][i] && result.roles[v] != Role::Core) {
        result.noncore_memberships.emplace_back(v, component[u]);
      }
    }
  }

  result.normalize();
  return result;
}

}  // namespace ppscan::testing
