// Randomized graph suites shared by the property tests.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "scan/scan_common.hpp"

namespace ppscan::testing {

/// A varied batch of small random graphs (ER at several densities, scale-
/// free, planted communities, plus degenerate shapes) for property tests.
std::vector<CsrGraph> property_test_graphs(std::uint64_t seed,
                                           int count_per_family = 3);

/// Parameter grid the cross-algorithm equivalence suites sweep.
std::vector<ScanParams> parameter_grid();

}  // namespace ppscan::testing
