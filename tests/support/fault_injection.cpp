#include "support/fault_injection.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "graph/edge_list_io.hpp"
#include "util/types.hpp"

namespace ppscan::testing {
namespace {

namespace fs = std::filesystem;

// Binary layout: 8-byte magic, u64 n, u64 arcs, (n+1) u64 offsets,
// `arcs` u32 dst entries — mirrors edge_list_io.cpp.
constexpr std::size_t kVertexCountAt = 8;
constexpr std::size_t kArcCountAt = 16;
constexpr std::size_t kOffsetsAt = 24;

std::vector<char> load_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    throw std::runtime_error("fault_injection: cannot read " + path);
  }
  return bytes;
}

void store_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw std::runtime_error("fault_injection: cannot write " + path);
  }
}

void patch_u64(std::vector<char>& bytes, std::size_t at, std::uint64_t value) {
  std::memcpy(bytes.data() + at, &value, sizeof(value));
}

void patch_u32(std::vector<char>& bytes, std::size_t at, std::uint32_t value) {
  std::memcpy(bytes.data() + at, &value, sizeof(value));
}

std::size_t dst_entry_at(const CsrGraph& graph, EdgeId arc) {
  return kOffsetsAt +
         (static_cast<std::size_t>(graph.num_vertices()) + 1) * sizeof(EdgeId) +
         static_cast<std::size_t>(arc) * sizeof(VertexId);
}

void write_text(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  if (!out) {
    throw std::runtime_error("fault_injection: cannot write " + path);
  }
}

}  // namespace

std::vector<FaultCase> make_binary_fault_corpus(const CsrGraph& graph,
                                                const fs::path& dir) {
  const VertexId n = graph.num_vertices();
  if (n < 3 || graph.num_arcs() < 2) {
    throw std::invalid_argument(
        "fault corpus needs a graph with >= 3 vertices and >= 1 edge");
  }
  // A vertex (id >= 1, so a self loop is expressible) with degree >= 2, so
  // neighbor-level corruptions have a pair to work with.
  VertexId victim = kInvalidVertex;
  for (VertexId u = 1; u < n; ++u) {
    if (graph.degree(u) >= 2) {
      victim = u;
      break;
    }
  }
  if (victim == kInvalidVertex) {
    throw std::invalid_argument(
        "fault corpus needs a vertex >= 1 with degree >= 2");
  }
  if (graph.degree(0) < 1) {
    // The non-monotone-offsets case patches offsets[2] to offsets[1] - 1.
    throw std::invalid_argument("fault corpus needs degree(0) >= 1");
  }

  const std::string valid = (dir / "valid.bin").string();
  write_csr_binary(graph, valid);
  const std::vector<char> pristine = load_bytes(valid);

  std::vector<FaultCase> cases;
  const auto emit = [&](const std::string& name, GraphIoErrorKind expected,
                        const auto& mutate) {
    std::vector<char> bytes = pristine;
    mutate(bytes);
    const std::string path = (dir / (name + ".bin")).string();
    store_bytes(path, bytes);
    cases.push_back({name, path, expected});
  };

  emit("bad-magic", GraphIoErrorKind::kBadMagic,
       [](std::vector<char>& b) { b[0] = 'X'; });
  emit("truncated-header", GraphIoErrorKind::kTruncatedHeader,
       [](std::vector<char>& b) { b.resize(12); });
  emit("truncated-body", GraphIoErrorKind::kTruncatedBody,
       [](std::vector<char>& b) { b.resize(b.size() - sizeof(VertexId)); });
  emit("trailing-data", GraphIoErrorKind::kTrailingData,
       [](std::vector<char>& b) { b.insert(b.end(), 5, '\xee'); });
  // n beyond the 32-bit id space.
  emit("oversized-n", GraphIoErrorKind::kOversizedHeader,
       [](std::vector<char>& b) {
         patch_u64(b, kVertexCountAt, std::uint64_t{1} << 33);
       });
  // n inside the id space but implying a terabyte-scale offset array —
  // the "16-byte corrupt header requests terabytes" case.
  emit("oversized-n-alloc", GraphIoErrorKind::kOversizedHeader,
       [](std::vector<char>& b) {
         patch_u64(b, kVertexCountAt, std::uint64_t{1} << 31);
       });
  emit("oversized-arcs", GraphIoErrorKind::kOversizedHeader,
       [](std::vector<char>& b) {
         patch_u64(b, kArcCountAt, std::uint64_t{1} << 62);
       });
  // offsets[2] pulled below offsets[1] (vertex 0 of every corpus graph has
  // degree >= 1, so offsets[1] >= 1 and the patched value stays >= 0).
  emit("non-monotone-offsets", GraphIoErrorKind::kNonMonotoneOffsets,
       [&](std::vector<char>& b) {
         patch_u64(b, kOffsetsAt + 2 * sizeof(EdgeId),
                   graph.offsets()[1] - 1);
       });
  emit("out-of-range-dst", GraphIoErrorKind::kNeighborOutOfRange,
       [&](std::vector<char>& b) {
         patch_u32(b, dst_entry_at(graph, graph.num_arcs() - 1), n + 1000);
       });
  emit("self-loop", GraphIoErrorKind::kSelfLoop, [&](std::vector<char>& b) {
    patch_u32(b, dst_entry_at(graph, graph.offset_begin(victim)), victim);
  });
  emit("unsorted-neighbors", GraphIoErrorKind::kUnsortedNeighbors,
       [&](std::vector<char>& b) {
         const EdgeId first = graph.offset_begin(victim);
         patch_u32(b, dst_entry_at(graph, first), graph.dst()[first + 1]);
         patch_u32(b, dst_entry_at(graph, first + 1), graph.dst()[first]);
       });
  emit("duplicate-neighbor", GraphIoErrorKind::kUnsortedNeighbors,
       [&](std::vector<char>& b) {
         const EdgeId first = graph.offset_begin(victim);
         patch_u32(b, dst_entry_at(graph, first + 1), graph.dst()[first]);
       });
  return cases;
}

std::vector<FaultCase> make_text_fault_corpus(const fs::path& dir) {
  std::vector<FaultCase> cases;
  const auto emit = [&](const std::string& name, GraphIoErrorKind expected,
                        const std::string& content) {
    const std::string path = (dir / (name + ".txt")).string();
    write_text(path, content);
    cases.push_back({name, path, expected});
  };

  emit("negative-first-id", GraphIoErrorKind::kNegativeId, "0 1\n-3 2\n");
  emit("negative-second-id", GraphIoErrorKind::kNegativeId, "0 1\n3 -4\n");
  emit("id-2pow32", GraphIoErrorKind::kIdOutOfRange, "4294967296 0\n");
  emit("id-reserved-sentinel", GraphIoErrorKind::kIdOutOfRange,
       "4294967295 0\n");
  emit("id-overflows-u64", GraphIoErrorKind::kIdOutOfRange,
       "99999999999999999999999 1\n");
  emit("trailing-garbage", GraphIoErrorKind::kTrailingGarbage,
       "0 1\n1 2 oops\n");
  emit("missing-endpoint", GraphIoErrorKind::kParseError, "0 1\n42\n");
  emit("garbage-line", GraphIoErrorKind::kParseError, "hello world\n");
  return cases;
}

void SlowPhaseBody::operator()(VertexId beg, VertexId end) {
  // Busy-wait instead of sleep_for: the OS may round a sub-millisecond
  // sleep way up, and the point is a *predictable* per-task duration.
  const auto until = std::chrono::steady_clock::now() + per_task_;
  while (std::chrono::steady_clock::now() < until) {
  }
  executed_.fetch_add(end - beg, std::memory_order_relaxed);
}

void HungWorker::operator()(VertexId beg, VertexId end) {
  if (beg <= hang_task_ && hang_task_ < end) {
    hang_started_.store(true, std::memory_order_release);
    while (!released_.load(std::memory_order_acquire) &&
           (token_ == nullptr || !token_->cancelled())) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return;
  }
  others_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace ppscan::testing
