// Brute-force SCAN reference, written directly from the paper's definitions
// with none of the library's kernels or pruning — the independent oracle
// every algorithm is compared against.
#pragma once

#include "graph/csr_graph.hpp"
#include "scan/scan_common.hpp"

namespace ppscan::testing {

/// O(|V|·|E|)-ish naive SCAN: closed-neighborhood intersections via
/// std::set_intersection, roles by counting, core clusters by BFS over
/// similar core-core edges, memberships by direct enumeration.
ScanResult reference_scan(const CsrGraph& graph, const ScanParams& params);

/// Naive similarity predicate on closed neighborhoods (double sqrt with an
/// exact tie handling via the rational form).
bool reference_similar(const CsrGraph& graph, const ScanParams& params,
                       VertexId u, VertexId v);

}  // namespace ppscan::testing
