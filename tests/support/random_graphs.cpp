#include "support/random_graphs.hpp"

#include "graph/fixtures.hpp"
#include "graph/generators.hpp"

namespace ppscan::testing {

std::vector<CsrGraph> property_test_graphs(std::uint64_t seed,
                                           int count_per_family) {
  std::vector<CsrGraph> graphs;
  for (int i = 0; i < count_per_family; ++i) {
    const std::uint64_t s = seed + static_cast<std::uint64_t>(i) * 7919;
    graphs.push_back(erdos_renyi(60, 120, s));           // sparse ER
    graphs.push_back(erdos_renyi(60, 600, s + 1));       // dense ER
    graphs.push_back(barabasi_albert(120, 4, s + 2));    // scale-free
    LfrParams lfr;
    lfr.n = 150;
    lfr.avg_degree = 12;
    lfr.mixing = 0.2;
    lfr.min_community = 8;
    lfr.max_community = 40;
    graphs.push_back(lfr_like(lfr, s + 3));              // communities
  }
  // Degenerate shapes once per suite.
  graphs.push_back(make_clique(8));
  graphs.push_back(make_path(16));
  graphs.push_back(make_star(12));
  graphs.push_back(make_two_cliques_bridge(6));
  graphs.push_back(make_clique_chain(4, 5));
  graphs.push_back(make_scan_paper_example());
  return graphs;
}

std::vector<ScanParams> parameter_grid() {
  std::vector<ScanParams> grid;
  for (const char* eps : {"0.2", "0.4", "0.5", "0.6", "0.8"}) {
    for (const std::uint32_t mu : {1u, 2u, 4u}) {
      grid.push_back(ScanParams::make(eps, mu));
    }
  }
  return grid;
}

}  // namespace ppscan::testing
