#include "scan/validate_result.hpp"

#include <gtest/gtest.h>

#include "bench_support/algorithms.hpp"
#include "graph/fixtures.hpp"
#include "support/random_graphs.hpp"

namespace ppscan {
namespace {

TEST(ValidateResult, AcceptsEveryAlgorithmsOutput) {
  AlgorithmConfig config;
  config.num_threads = 2;
  for (const auto& g : testing::property_test_graphs(11001, 1)) {
    for (const auto& params : testing::parameter_grid()) {
      for (const auto& name : algorithm_names()) {
        const auto run = run_algorithm(name, g, params, config);
        const auto report = validate_scan_result(g, params, run.result);
        ASSERT_TRUE(report.ok)
            << name << " eps=" << params.eps.to_double()
            << " mu=" << params.mu << ": " << report.first_error;
      }
    }
  }
}

class ValidateResultCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    // The classic example graph: has cores, non-core members (13), a hub
    // (6) and multiple clusters — every corruption case below is reachable.
    graph_ = make_scan_paper_example();
    params_ = ScanParams::make("0.6", 2);
    good_ = run_algorithm("ppSCAN", graph_, params_).result;
    ASSERT_TRUE(validate_scan_result(graph_, params_, good_).ok);
    ASSERT_GT(good_.num_cores(), 0u);
    ASSERT_FALSE(good_.noncore_memberships.empty());
  }

  CsrGraph graph_;
  ScanParams params_;
  ScanResult good_;
};

TEST_F(ValidateResultCorruption, DetectsFlippedRole) {
  auto bad = good_;
  for (VertexId u = 0; u < graph_.num_vertices(); ++u) {
    if (bad.roles[u] == Role::NonCore) {
      bad.roles[u] = Role::Core;
      bad.core_cluster_id[u] = 0;
      break;
    }
  }
  EXPECT_FALSE(validate_scan_result(graph_, params_, bad).ok);
}

TEST_F(ValidateResultCorruption, DetectsUnknownRole) {
  auto bad = good_;
  bad.roles[0] = Role::Unknown;
  const auto report = validate_scan_result(graph_, params_, bad);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.first_error.find("Unknown"), std::string::npos);
}

TEST_F(ValidateResultCorruption, DetectsWrongClusterId) {
  auto bad = good_;
  for (VertexId u = 0; u < graph_.num_vertices(); ++u) {
    if (bad.roles[u] == Role::Core) {
      bad.core_cluster_id[u] = graph_.num_vertices() - 1;
      break;
    }
  }
  EXPECT_FALSE(validate_scan_result(graph_, params_, bad).ok);
}

TEST_F(ValidateResultCorruption, DetectsSplitCluster) {
  // Relabel one whole cluster with a bogus id: connectivity of the
  // union-find components no longer matches the min-core-id convention.
  auto bad = good_;
  const auto clusters = good_.canonical_clusters();
  ASSERT_GT(clusters.size(), 1u);
  bool split = false;
  for (const VertexId v : clusters[0]) {
    if (bad.roles[v] == Role::Core) {
      if (!split) {
        split = true;
        continue;  // first core keeps its id; the rest move
      }
      bad.core_cluster_id[v] = bad.core_cluster_id[v] + 100;
    }
  }
  EXPECT_FALSE(validate_scan_result(graph_, params_, bad).ok);
}

TEST_F(ValidateResultCorruption, DetectsExtraMembership) {
  auto bad = good_;
  bad.noncore_memberships.emplace_back(graph_.num_vertices() - 1, 0);
  bad.normalize();
  EXPECT_FALSE(validate_scan_result(graph_, params_, bad).ok);
}

TEST_F(ValidateResultCorruption, DetectsMissingMembership) {
  auto bad = good_;
  ASSERT_FALSE(bad.noncore_memberships.empty());
  bad.noncore_memberships.pop_back();
  EXPECT_FALSE(validate_scan_result(graph_, params_, bad).ok);
}

TEST_F(ValidateResultCorruption, DetectsSizeMismatch) {
  auto bad = good_;
  bad.roles.pop_back();
  EXPECT_FALSE(validate_scan_result(graph_, params_, bad).ok);
}

TEST_F(ValidateResultCorruption, DetectsCoreIdOnNonCore) {
  auto bad = good_;
  for (VertexId u = 0; u < graph_.num_vertices(); ++u) {
    if (bad.roles[u] == Role::NonCore) {
      bad.core_cluster_id[u] = 0;
      break;
    }
  }
  EXPECT_FALSE(validate_scan_result(graph_, params_, bad).ok);
}

}  // namespace
}  // namespace ppscan
