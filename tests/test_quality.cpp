#include "scan/quality.hpp"

#include <gtest/gtest.h>

#include "core/ppscan.hpp"
#include "graph/fixtures.hpp"
#include "graph/generators.hpp"
#include "graph/graph_builder.hpp"

namespace ppscan {
namespace {

TEST(PairwiseScores, PerfectClusteringScoresOne) {
  const std::vector<std::vector<VertexId>> clusters{{0, 1, 2}, {3, 4}};
  const std::vector<VertexId> truth{0, 0, 0, 1, 1};
  const auto s = pairwise_scores(clusters, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(PairwiseScores, MergedClustersLosePrecision) {
  // One cluster spanning both truth communities: 4 wrong pairs of 10.
  const std::vector<std::vector<VertexId>> clusters{{0, 1, 2, 3, 4}};
  const std::vector<VertexId> truth{0, 0, 0, 1, 1};
  const auto s = pairwise_scores(clusters, truth);
  EXPECT_DOUBLE_EQ(s.precision, 4.0 / 10.0);  // C(3,2)+C(2,2)=4 true pairs
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
}

TEST(PairwiseScores, MissingVerticesLoseRecallOnly) {
  const std::vector<std::vector<VertexId>> clusters{{0, 1}};
  const std::vector<VertexId> truth{0, 0, 0};
  const auto s = pairwise_scores(clusters, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0 / 3.0);
}

TEST(PairwiseScores, EmptyClusteringIsZero) {
  const auto s = pairwise_scores({}, {0, 0, 1});
  EXPECT_DOUBLE_EQ(s.precision, 0.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
}

TEST(Purity, PureAndImpureClusters) {
  const std::vector<VertexId> truth{0, 0, 0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(purity({{0, 1, 2}, {3, 4, 5}}, truth), 1.0);
  // Cluster {2,3}: majority 1 of 2 → (3 + 1) / 5 with the pure {0,1,2}.
  EXPECT_DOUBLE_EQ(purity({{0, 1, 2}, {2, 3}}, truth), 4.0 / 5.0);
}

TEST(Modularity, TwoCliquesScoreHigh) {
  const auto g = make_two_cliques_bridge(6);
  const auto run = ppscan(g, ScanParams::make("0.7", 3));
  ASSERT_EQ(run.result.num_clusters(), 2u);
  // Two dense communities, one crossing edge: close to 0.5.
  EXPECT_GT(modularity(g, run.result), 0.4);
}

TEST(Modularity, UnclusteredGraphIsNonPositive) {
  // No clusters at strict parameters → all singletons → Q ≤ 0.
  const auto g = make_path(10);
  const auto run = ppscan(g, ScanParams::make("0.9", 3));
  ASSERT_EQ(run.result.num_clusters(), 0u);
  EXPECT_LE(modularity(g, run.result), 0.0);
}

TEST(Conductance, IsolatedCliqueIsZero) {
  const auto g = GraphBuilder::from_edges(
      {{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}});
  EXPECT_DOUBLE_EQ(conductance(g, {0, 1, 2}), 0.0);
}

TEST(Conductance, BridgedCliqueHasOneCutEdge) {
  const auto g = make_two_cliques_bridge(4);
  // Volume of one 4-clique side: 3*4 + 1 bridge endpoint = 13; cut = 1.
  EXPECT_DOUBLE_EQ(conductance(g, {0, 1, 2, 3}), 1.0 / 13.0);
}

TEST(Conductance, WholeGraphIsZero) {
  const auto g = make_clique(5);
  std::vector<VertexId> all{0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(conductance(g, all), 0.0);
}

TEST(MeanClusterConductance, LowOnSeparatedCommunities) {
  const auto g = make_clique_chain(3, 6);
  const auto run = ppscan(g, ScanParams::make("0.6", 3));
  ASSERT_GT(run.result.num_clusters(), 1u);
  EXPECT_LT(mean_cluster_conductance(g, run.result), 0.2);
}

TEST(Quality, PlantedCommunitiesScoreWell) {
  LfrParams p;
  p.n = 2000;
  p.avg_degree = 20;
  p.mixing = 0.1;
  p.min_community = 30;
  p.max_community = 100;
  std::vector<VertexId> truth;
  const auto g = lfr_like(p, 404, &truth);
  const auto run = ppscan(g, ScanParams::make("0.3", 4));
  const auto scores = pairwise_scores(run.result.canonical_clusters(), truth);
  EXPECT_GT(scores.precision, 0.95);
  EXPECT_GT(scores.recall, 0.7);
  EXPECT_GT(purity(run.result.canonical_clusters(), truth), 0.95);
  EXPECT_GT(modularity(g, run.result), 0.5);
}

}  // namespace
}  // namespace ppscan
