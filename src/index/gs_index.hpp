// GS*-Index — a similarity index answering SCAN queries for arbitrary
// (ε, µ) without recomputing intersections (after Wen et al., "Efficient
// Structural Graph Clustering: An Index-Based Approach", VLDB 2017).
//
// The paper under reproduction cites this approach as the indexing
// alternative to ppSCAN and argues its construction cost — an exhaustive
// similarity computation over every edge — is prohibitive on massive
// graphs. This module implements the index so that trade-off can be
// measured rather than asserted (bench_index_vs_online):
//
//   * Construction intersects every edge once (parallel, SIMD exact count)
//     and sorts each vertex's neighbors by similarity descending
//     ("neighbor order").
//   * A query decides coreness in O(1) per vertex — the µ-th most similar
//     neighbor's σ against ε — and walks only ε-similar prefixes of the
//     neighbor orders for the clustering, so query time scales with the
//     result size rather than with |E|.
//
// Similarities are kept exact: per arc we store the closed-neighborhood
// overlap cn = |Γ(u)∩Γ(v)|, and σ(u,v) ≥ a/b is evaluated as
// cn²b² ≥ a²(d_u+1)(d_v+1) in 128-bit arithmetic — identical decisions to
// every other algorithm in the library.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "scan/scan_common.hpp"
#include "setops/intersect.hpp"

namespace ppscan {

class GsIndex {
 public:
  struct BuildOptions {
    int num_threads = 1;
    /// Exact-count kernel used for the exhaustive construction pass.
    IntersectKind count_kernel = IntersectKind::Auto;
    /// Run governance for the construction pass (the paper's argument
    /// against indexing is exactly that this pass is expensive — a deadline
    /// or budget makes it abortable). Default limits govern nothing.
    RunLimits limits;
    /// Optional external cancel token; not owned, may be null.
    CancelToken* cancel = nullptr;
    /// Optional trace collector (obs/trace.hpp): phase spans land on its
    /// master slot. Not owned; must be sized for at least num_threads
    /// workers and outlive the construction.
    obs::TraceCollector* trace = nullptr;
  };

  struct BuildStats {
    double construction_seconds = 0;
    std::uint64_t intersections = 0;
    /// Pruning-funnel counters for the construction pass (obs/counters.hpp).
    obs::AlgoCounters counters;
    /// Why an aborted construction stopped; reason None = built fully.
    RunAborted abort;
  };

  /// Builds the index: one exact intersection per edge plus the per-vertex
  /// similarity sort. The referenced graph must outlive the index.
  GsIndex(const CsrGraph& graph, const BuildOptions& options);
  explicit GsIndex(const CsrGraph& graph) : GsIndex(graph, BuildOptions{}) {}

  /// Answers a SCAN query; the result is bit-identical to running any of
  /// the library's SCAN algorithms with the same parameters. Throws
  /// std::logic_error when the construction was aborted (an incomplete
  /// neighbor order would answer queries wrongly, not partially).
  [[nodiscard]] ScanRun query(const ScanParams& params) const;

  /// False when a governed construction hit a limit; build_stats().abort
  /// says why. An incomplete index refuses queries.
  [[nodiscard]] bool complete() const { return complete_; }

  [[nodiscard]] const BuildStats& build_stats() const { return build_stats_; }

  /// Index memory footprint (neighbor-order arrays), for the construction
  /// cost discussion.
  [[nodiscard]] std::uint64_t memory_bytes() const;

  /// Exact closed-neighborhood overlap |Γ(u)∩Γ(v)| of arc `e` (testing).
  [[nodiscard]] std::uint32_t arc_overlap(EdgeId e) const {
    return overlap_[e];
  }

 private:
  /// σ(u, nbr_order entry) ≥ ε test via the stored overlap.
  [[nodiscard]] bool entry_similar(const EpsRational& eps, VertexId u,
                                   EdgeId slot) const;

  const CsrGraph& graph_;
  /// cn per directed arc, aligned with the CSR dst array.
  std::vector<std::uint32_t> overlap_;
  /// Neighbor order: per vertex, its arc slots re-ordered by σ descending;
  /// ordered_arcs_[off] indexes into graph.dst()/overlap_.
  std::vector<EdgeId> ordered_arcs_;
  BuildStats build_stats_;
  bool complete_ = false;
};

}  // namespace ppscan
