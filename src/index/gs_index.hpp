// GS*-Index — a similarity index answering SCAN queries for arbitrary
// (ε, µ) without recomputing intersections (after Wen et al., "Efficient
// Structural Graph Clustering: An Index-Based Approach", VLDB 2017).
//
// The paper under reproduction cites this approach as the indexing
// alternative to ppSCAN and argues its construction cost — an exhaustive
// similarity computation over every edge — is prohibitive on massive
// graphs. This module implements the index so that trade-off can be
// measured rather than asserted (bench_index_vs_online, serve/):
//
//   * Construction intersects every edge once (parallel, SIMD exact count)
//     and sorts each vertex's neighbors by similarity descending
//     ("neighbor order").
//   * A query decides coreness in O(1) per vertex — the µ-th most similar
//     neighbor's σ against ε — and walks only ε-similar prefixes of the
//     neighbor orders for the clustering, so query time scales with the
//     result size rather than with |E|. Because the neighbor order is
//     sorted by σ descending, the ε-prefix boundary of each core is found
//     by binary search (O(log d) exact tests) instead of testing every
//     prefix entry.
//
// Similarities are kept exact: per neighbor-order slot we store the
// closed-neighborhood overlap cn = |Γ(u)∩Γ(v)| and the product
// P = (d_u+1)(d_v+1), and σ(u,v) ≥ a/b is evaluated as cn²b² ≥ a²P in
// 128-bit arithmetic — identical decisions to every other algorithm in the
// library.
#pragma once

#include <cstdint>
#include <vector>

#include "concurrent/union_find.hpp"
#include "graph/csr_graph.hpp"
#include "scan/scan_common.hpp"
#include "setops/intersect.hpp"

namespace ppscan {

class GsIndex {
 public:
  struct BuildOptions {
    int num_threads = 1;
    /// Exact-count kernel used for the exhaustive construction pass.
    IntersectKind count_kernel = IntersectKind::Auto;
    /// Run governance for the construction pass (the paper's argument
    /// against indexing is exactly that this pass is expensive — a deadline
    /// or budget makes it abortable). Default limits govern nothing.
    RunLimits limits;
    /// Optional external cancel token; not owned, may be null.
    CancelToken* cancel = nullptr;
    /// Optional trace collector (obs/trace.hpp): phase spans land on its
    /// master slot. Not owned; must be sized for at least num_threads
    /// workers and outlive the construction.
    obs::TraceCollector* trace = nullptr;
  };

  struct BuildStats {
    double construction_seconds = 0;
    std::uint64_t intersections = 0;
    /// Pruning-funnel counters for the construction pass (obs/counters.hpp).
    obs::AlgoCounters counters;
    /// Why an aborted construction stopped; reason None = built fully.
    RunAborted abort;
  };

  /// Reusable per-caller query state. A fresh query() call used to allocate
  /// a full-graph union-find plus label/boundary arrays every time; a
  /// long-lived caller (serve::QueryService keeps one per executor worker)
  /// passes the same scratch to every query so the buffers are reset, not
  /// reallocated. A default-constructed scratch is valid for any graph —
  /// query() sizes it on entry.
  struct QueryScratch {
    UnionFind uf;
    /// Per-vertex one-past-the-end neighbor-order slot of the ε-similar
    /// prefix; written for cores during the clustering phase and reused by
    /// the membership phase. Meaningless for non-cores.
    std::vector<EdgeId> prefix_end;
    /// Per-root minimum core id, the cluster-id convention shared with the
    /// other algorithms.
    std::vector<VertexId> cluster_label;
  };

  /// Builds the index: one exact intersection per edge plus the per-vertex
  /// similarity sort. The referenced graph must outlive the index.
  GsIndex(const CsrGraph& graph, const BuildOptions& options);
  explicit GsIndex(const CsrGraph& graph) : GsIndex(graph, BuildOptions{}) {}

  /// Answers a SCAN query; the result is bit-identical to running any of
  /// the library's SCAN algorithms with the same parameters. Throws
  /// std::logic_error when the construction was aborted (an incomplete
  /// neighbor order would answer queries wrongly, not partially).
  [[nodiscard]] ScanRun query(const ScanParams& params) const;

  /// Governed query: same answers, but scratch buffers are caller-pooled
  /// and an optional per-query governor applies the library's partial-result
  /// semantics (scan_common.hpp) to the query itself — a deadline or
  /// cancel trip returns a labeled partial run whose decided portion is
  /// final. Phases, in cancel_at_phase ordinal order: QCoreTest,
  /// QCoreCluster, QLabelCores, QMembership. `governor` may be null.
  [[nodiscard]] ScanRun query(const ScanParams& params, QueryScratch& scratch,
                              RunGovernor* governor) const;

  /// False when a governed construction hit a limit; build_stats().abort
  /// says why. An incomplete index refuses queries.
  [[nodiscard]] bool complete() const { return complete_; }

  [[nodiscard]] const BuildStats& build_stats() const { return build_stats_; }

  /// The graph this index answers queries for.
  [[nodiscard]] const CsrGraph& graph() const { return graph_; }

  /// Index memory footprint (overlap + neighbor-order arrays), for the
  /// construction cost discussion.
  [[nodiscard]] std::uint64_t memory_bytes() const;

  /// Exact closed-neighborhood overlap |Γ(u)∩Γ(v)| of arc `e` (testing).
  [[nodiscard]] std::uint32_t arc_overlap(EdgeId e) const {
    return overlap_[e];
  }

 private:
  /// σ(neighbor-order entry `slot`) ≥ ε via the stored (cn, P) key.
  [[nodiscard]] bool entry_similar(const EpsRational& eps, EdgeId slot) const;

  /// One-past-the-end slot of core `u`'s ε-similar prefix, by binary search
  /// over the σ-descending neighbor order. Entries [begin, begin+µ) are
  /// known similar for a core, so the search covers [begin+µ, end). Every
  /// probe is an index-entry similarity decision and is counted as
  /// arcs_touched + sims_reused.
  [[nodiscard]] EdgeId prefix_boundary(const EpsRational& eps, VertexId u,
                                       std::uint32_t mu,
                                       obs::AlgoCounters& qc) const;

  const CsrGraph& graph_;
  /// cn per directed arc, aligned with the CSR dst array (arc_overlap()).
  std::vector<std::uint32_t> overlap_;
  /// Neighbor order, one entry per arc slot, each vertex's window re-ordered
  /// by σ descending. Three parallel arrays so a prefix walk is sequential
  /// loads with no indirection back through the CSR: the neighbor itself,
  /// its overlap cn, and the degree product P = (d_u+1)(d_v+1) that
  /// entry_similar needs.
  std::vector<VertexId> ordered_dst_;
  std::vector<std::uint32_t> ordered_cn_;
  std::vector<std::uint64_t> ordered_pk_;
  BuildStats build_stats_;
  bool complete_ = false;
};

}  // namespace ppscan
