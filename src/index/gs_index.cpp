#include "index/gs_index.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "concurrent/task_scheduler.hpp"
#include "concurrent/executor.hpp"
#include "concurrent/run_governor.hpp"
#include "obs/trace.hpp"
#include "setops/intersect.hpp"
#include "util/fault_point.hpp"
#include "util/timer.hpp"

namespace ppscan {
namespace {

using U128 = unsigned __int128;

/// Exact comparison σ(a) > σ(b) for two arcs of the same source vertex:
/// cn_a²·P_b > cn_b²·P_a where P = (d_u+1)(d_v+1). Ties break by neighbor
/// id so the order (and thus every query) is deterministic.
struct SigmaGreater {
  const CsrGraph& graph;
  const std::vector<std::uint32_t>& overlap;
  VertexId u;

  bool operator()(EdgeId a, EdgeId b) const {
    const VertexId va = graph.dst()[a];
    const VertexId vb = graph.dst()[b];
    const U128 pa = U128(graph.degree(u) + 1) * (graph.degree(va) + 1);
    const U128 pb = U128(graph.degree(u) + 1) * (graph.degree(vb) + 1);
    const U128 lhs = U128(overlap[a]) * overlap[a] * pb;
    const U128 rhs = U128(overlap[b]) * overlap[b] * pa;
    if (lhs != rhs) return lhs > rhs;
    return va < vb;
  }
};

/// cn²·b² ≥ a²·P with the precomputed degree product — the same decision as
/// similarity_holds() (setops/similarity.cpp), byte for byte: P fits u64
/// because degrees are 32-bit, and the comparison is 128-bit either way.
inline bool sim_from_key(const EpsRational& eps, std::uint32_t cn,
                         std::uint64_t pk) {
  const U128 lhs = U128(cn) * cn * eps.den * eps.den;
  const U128 rhs = U128(eps.num) * eps.num * pk;
  return lhs >= rhs;
}

/// How often the sequential query loops read the governor's clock: every
/// vertex polls the token implicitly via the stride check, every 256th pays
/// the deadline's clock read.
constexpr VertexId kGovernPollStride = 256;

}  // namespace

GsIndex::GsIndex(const CsrGraph& graph, const BuildOptions& options)
    : graph_(graph) {
  WallTimer timer;
  RunGovernor governor(options.limits, options.cancel);
  // Charge the index arrays against the memory budget before allocating —
  // the construction footprint is the cost the paper argues makes indexing
  // prohibitive, so it is the natural thing to bound. The slot permutation
  // is transient (only the sort needs arc ids) and is uncharged again below.
  const auto arcs = static_cast<std::uint64_t>(graph.num_arcs());
  const std::uint64_t index_bytes =
      arcs * (sizeof(std::uint32_t) + sizeof(VertexId) +
              sizeof(std::uint32_t) + sizeof(std::uint64_t));
  const std::uint64_t sort_bytes = arcs * sizeof(EdgeId);
  std::vector<EdgeId> sort_slots;
  bool alloc_ok = governor.try_charge(index_bytes + sort_bytes,
                                      "gs-index arrays");
  if (alloc_ok) {
    try {
      overlap_.assign(graph.num_arcs(), 0);
      ordered_dst_.assign(graph.num_arcs(), 0);
      ordered_cn_.assign(graph.num_arcs(), 0);
      ordered_pk_.assign(graph.num_arcs(), 0);
      sort_slots.assign(graph.num_arcs(), 0);
    } catch (const std::bad_alloc&) {
      governor.record_alloc_failure(index_bytes + sort_bytes,
                                    "gs-index arrays");
      alloc_ok = false;
    }
  }

  Executor pool(options.num_threads);
  pool.install_governor(&governor);
  if (options.trace != nullptr) pool.install_trace(options.trace);
  // Per-worker counter slots (workers 0..N-1, last = master fallback);
  // merged serially after the final phase barrier.
  obs::CounterSlots counters(static_cast<std::size_t>(options.num_threads) +
                             1);
  SchedulerOptions sched;
  sched.governor = &governor;
  const CountFn count = count_fn(options.count_kernel);
  // protocol: relaxed-counter — intersection tally, read at the final
  // barrier after the executor drains.
  std::atomic<std::uint64_t> intersections{0};
  const auto degree_of = [&](VertexId u) { return graph_.degree(u); };
  const auto all = [](VertexId) { return true; };

  const auto phase = [&](const char* name, auto&& body) {
    if (governor.should_stop()) return;
    governor.enter_phase(name);
    // Re-check: the cancel_at_phase test hook trips on phase entry.
    if (governor.should_stop()) return;
    PPSCAN_TRACE_SET_PHASE(options.trace, name);
    PPSCAN_TRACE_MASTER_EVENT(options.trace, obs::TraceEventKind::PhaseBegin,
                              name, 0);
    body();
    PPSCAN_TRACE_MASTER_EVENT(options.trace, obs::TraceEventKind::PhaseEnd,
                              name, 0);
    if (!governor.should_stop()) governor.finish_phase();
  };

  if (alloc_ok) {
    // Exhaustive similarity: the u < v owner computes each edge once and
    // mirrors the overlap to the reverse arc (no readers until the barrier).
    phase("Overlap", [&] {
      schedule_vertex_tasks(
          pool, graph_.num_vertices(), degree_of, all,
          [&](VertexId u) {
            std::uint64_t local = 0;
            const int w = pool.current_worker();
            obs::AlgoCounters& c = counters.slot(
                w >= 0 ? static_cast<std::size_t>(w) : counters.size() - 1);
            for (EdgeId e = graph_.offset_begin(u); e < graph_.offset_end(u);
                 ++e) {
              const VertexId v = graph_.dst()[e];
              if (u >= v) continue;
              const auto cn = static_cast<std::uint32_t>(
                  count(graph_.neighbors(u), graph_.neighbors(v)) + 2);
              ++local;
              overlap_[e] = cn;
              overlap_[graph_.reverse_arc(u, e)] = cn;
              // Exhaustive build: one intersection per u < v edge decides
              // both directions (computed arc + mirrored reused arc).
              c.arcs_touched += 2;
              c.sims_computed += 1;
              c.sims_reused += 1;
            }
            intersections.fetch_add(local, std::memory_order_relaxed);
          },
          sched);
    });

    // Neighbor order: per-vertex arc slots sorted by σ descending, then
    // flattened into the (dst, cn, P) query arrays so prefix walks never
    // chase arc ids again. Each vertex owns its window — no races.
    phase("NeighborOrder", [&] {
      schedule_vertex_tasks(
          pool, graph_.num_vertices(), degree_of, all,
          [&](VertexId u) {
            const EdgeId begin = graph_.offset_begin(u);
            const EdgeId end = graph_.offset_end(u);
            for (EdgeId e = begin; e < end; ++e) sort_slots[e] = e;
            std::sort(
                sort_slots.begin() + static_cast<std::ptrdiff_t>(begin),
                sort_slots.begin() + static_cast<std::ptrdiff_t>(end),
                SigmaGreater{graph_, overlap_, u});
            const std::uint64_t du1 = std::uint64_t{graph_.degree(u)} + 1;
            for (EdgeId e = begin; e < end; ++e) {
              const EdgeId arc = sort_slots[e];
              const VertexId v = graph_.dst()[arc];
              ordered_dst_[e] = v;
              ordered_cn_[e] = overlap_[arc];
              ordered_pk_[e] = du1 * (std::uint64_t{graph_.degree(v)} + 1);
            }
          },
          sched);
    });
  }

  if (!sort_slots.empty()) {
    sort_slots = std::vector<EdgeId>();
    governor.uncharge(sort_bytes);
  }

  complete_ = alloc_ok && !governor.should_stop();
  // Phase barriers ordered every worker's slot writes before this merge.
  build_stats_.counters = counters.merged();
  build_stats_.intersections = intersections.load(std::memory_order_relaxed);
  build_stats_.construction_seconds = timer.elapsed_s();
  build_stats_.abort = governor.abort_info();
}

bool GsIndex::entry_similar(const EpsRational& eps, EdgeId slot) const {
  return sim_from_key(eps, ordered_cn_[slot], ordered_pk_[slot]);
}

EdgeId GsIndex::prefix_boundary(const EpsRational& eps, VertexId u,
                                std::uint32_t mu,
                                obs::AlgoCounters& qc) const {
  EdgeId lo = graph_.offset_begin(u) + mu;
  EdgeId hi = graph_.offset_end(u);
  while (lo < hi) {
    const EdgeId mid = lo + (hi - lo) / 2;
    qc.arcs_touched += 1;
    qc.sims_reused += 1;
    if (entry_similar(eps, mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

ScanRun GsIndex::query(const ScanParams& params) const {
  QueryScratch scratch;
  return query(params, scratch, nullptr);
}

ScanRun GsIndex::query(const ScanParams& params, QueryScratch& scratch,
                       RunGovernor* governor) const {
  if (!complete_) {
    throw std::logic_error("GsIndex::query on aborted construction (" +
                           build_stats_.abort.describe() + ")");
  }
  WallTimer timer;
  const VertexId n = graph_.num_vertices();
  ScanRun run;
  obs::AlgoCounters& qc = run.stats.counters;
  // Partial-result semantics (scan_common.hpp): roles start Unknown and the
  // core-test phase finalizes each vertex, so a governed trip leaves the
  // undecided suffix classified as Unknown rather than silently NonCore.
  run.result.roles.assign(n, Role::Unknown);
  run.result.core_cluster_id.assign(n, kInvalidVertex);
  scratch.uf.reset(n);
  scratch.prefix_end.assign(n, 0);

  // Sequential-phase plumbing mirroring the governed algorithms: enter,
  // re-check (cancel_at_phase trips on entry), run, count the barrier only
  // when the body was not tripped mid-loop.
  const auto phase = [&](const char* name, auto&& body) {
    if (governor == nullptr) {
      body();
      return;
    }
    if (governor->should_stop()) return;
    governor->enter_phase(name);
    if (governor->should_stop()) return;
    body();
    if (!governor->should_stop()) governor->finish_phase();
  };
  const auto tripped = [&](VertexId u) {
    return governor != nullptr && (u % kGovernPollStride) == 0 &&
           governor->poll_deadline();
  };

  // Core test: the µ-th most similar neighbor decides (O(1) per vertex).
  // The consulted entry is one stored-similarity decision: touched+reused.
  phase("QCoreTest", [&] {
    PPSCAN_FAULT_POINT("index.qcoretest");
    for (VertexId u = 0; u < n; ++u) {
      if (tripped(u)) return;
      if (graph_.degree(u) < params.mu) {
        run.result.roles[u] = Role::NonCore;
        continue;
      }
      const EdgeId slot = graph_.offset_begin(u) + params.mu - 1;
      qc.arcs_touched += 1;
      qc.sims_reused += 1;
      run.result.roles[u] =
          entry_similar(params.eps, slot) ? Role::Core : Role::NonCore;
    }
  });

  // Core clustering: binary-search each core's ε-prefix boundary (the order
  // is σ-descending, so the boundary is the partition point), then union
  // along core–core prefix entries. Each consumed prefix entry is a stored
  // similarity the query relies on — counted as touched+reused, which is
  // what makes the funnel invariant meaningful for index queries.
  phase("QCoreCluster", [&] {
    PPSCAN_FAULT_POINT("index.qcorecluster");
    for (VertexId u = 0; u < n; ++u) {
      if (tripped(u)) return;
      if (run.result.roles[u] != Role::Core) continue;
      const EdgeId begin = graph_.offset_begin(u);
      const EdgeId pe = prefix_boundary(params.eps, u, params.mu, qc);
      scratch.prefix_end[u] = pe;
      qc.arcs_touched += pe - begin;
      qc.sims_reused += pe - begin;
      for (EdgeId slot = begin; slot < pe; ++slot) {
        const VertexId v = ordered_dst_[slot];
        if (u < v && run.result.roles[v] == Role::Core) {
          qc.uf_unions += scratch.uf.unite(u, v) ? 1 : 0;
        }
      }
    }
  });

  // Cluster ids: the smallest core id in each set, the convention every
  // algorithm in the library shares.
  phase("QLabelCores", [&] {
    PPSCAN_FAULT_POINT("index.qlabelcores");
    scratch.cluster_label.assign(n, kInvalidVertex);
    for (VertexId u = 0; u < n; ++u) {
      if (tripped(u)) return;
      if (run.result.roles[u] != Role::Core) continue;
      qc.uf_finds += 1;
      const VertexId root = scratch.uf.find_counted(u, &qc.uf_find_steps);
      scratch.cluster_label[root] =
          std::min(scratch.cluster_label[root], u);
    }
  });

  // Membership: label each core and attach its ε-similar non-core prefix
  // neighbors. The cluster id is resolved once per core — the per-neighbor
  // uf.find() this loop used to make was both redundant (same root as two
  // lines above) and invisible to the uf_finds/uf_find_steps funnel.
  phase("QMembership", [&] {
    PPSCAN_FAULT_POINT("index.qmembership");
    for (VertexId u = 0; u < n; ++u) {
      if (tripped(u)) return;
      if (run.result.roles[u] != Role::Core) continue;
      qc.uf_finds += 1;
      const VertexId cid =
          scratch
              .cluster_label[scratch.uf.find_counted(u, &qc.uf_find_steps)];
      run.result.core_cluster_id[u] = cid;
      for (EdgeId slot = graph_.offset_begin(u);
           slot < scratch.prefix_end[u]; ++slot) {
        const VertexId v = ordered_dst_[slot];
        if (run.result.roles[v] != Role::Core) {
          run.result.noncore_memberships.emplace_back(v, cid);
        }
      }
    }
  });

  run.result.normalize();
  run.stats.total_seconds = timer.elapsed_s();
  if (governor != nullptr) record_governance(*governor, run.stats);
  return run;
}

std::uint64_t GsIndex::memory_bytes() const {
  return overlap_.size() * sizeof(std::uint32_t) +
         ordered_dst_.size() * sizeof(VertexId) +
         ordered_cn_.size() * sizeof(std::uint32_t) +
         ordered_pk_.size() * sizeof(std::uint64_t);
}

}  // namespace ppscan
