#include "index/gs_index.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "concurrent/task_scheduler.hpp"
#include "concurrent/executor.hpp"
#include "concurrent/run_governor.hpp"
#include "concurrent/union_find.hpp"
#include "obs/trace.hpp"
#include "setops/intersect.hpp"
#include "util/timer.hpp"

namespace ppscan {
namespace {

using U128 = unsigned __int128;

/// Exact comparison σ(a) > σ(b) for two arcs of the same source vertex:
/// cn_a²·P_b > cn_b²·P_a where P = (d_u+1)(d_v+1). Ties break by neighbor
/// id so the order (and thus every query) is deterministic.
struct SigmaGreater {
  const CsrGraph& graph;
  const std::vector<std::uint32_t>& overlap;
  VertexId u;

  bool operator()(EdgeId a, EdgeId b) const {
    const VertexId va = graph.dst()[a];
    const VertexId vb = graph.dst()[b];
    const U128 pa = U128(graph.degree(u) + 1) * (graph.degree(va) + 1);
    const U128 pb = U128(graph.degree(u) + 1) * (graph.degree(vb) + 1);
    const U128 lhs = U128(overlap[a]) * overlap[a] * pb;
    const U128 rhs = U128(overlap[b]) * overlap[b] * pa;
    if (lhs != rhs) return lhs > rhs;
    return va < vb;
  }
};

}  // namespace

GsIndex::GsIndex(const CsrGraph& graph, const BuildOptions& options)
    : graph_(graph) {
  WallTimer timer;
  RunGovernor governor(options.limits, options.cancel);
  // Charge the index arrays against the memory budget before allocating —
  // the construction footprint is the cost the paper argues makes indexing
  // prohibitive, so it is the natural thing to bound.
  const std::uint64_t index_bytes =
      static_cast<std::uint64_t>(graph.num_arcs()) *
      (sizeof(std::uint32_t) + sizeof(EdgeId));
  bool alloc_ok = governor.try_charge(index_bytes, "gs-index arrays");
  if (alloc_ok) {
    try {
      overlap_.assign(graph.num_arcs(), 0);
      ordered_arcs_.assign(graph.num_arcs(), 0);
    } catch (const std::bad_alloc&) {
      governor.record_alloc_failure(index_bytes, "gs-index arrays");
      alloc_ok = false;
    }
  }

  Executor pool(options.num_threads);
  pool.install_governor(&governor);
  if (options.trace != nullptr) pool.install_trace(options.trace);
  // Per-worker counter slots (workers 0..N-1, last = master fallback);
  // merged serially after the final phase barrier.
  obs::CounterSlots counters(static_cast<std::size_t>(options.num_threads) +
                             1);
  SchedulerOptions sched;
  sched.governor = &governor;
  const CountFn count = count_fn(options.count_kernel);
  // protocol: relaxed-counter — intersection tally, read at the final
  // barrier after the executor drains.
  std::atomic<std::uint64_t> intersections{0};
  const auto degree_of = [&](VertexId u) { return graph_.degree(u); };
  const auto all = [](VertexId) { return true; };

  const auto phase = [&](const char* name, auto&& body) {
    if (governor.should_stop()) return;
    governor.enter_phase(name);
    // Re-check: the cancel_at_phase test hook trips on phase entry.
    if (governor.should_stop()) return;
    PPSCAN_TRACE_SET_PHASE(options.trace, name);
    PPSCAN_TRACE_MASTER_EVENT(options.trace, obs::TraceEventKind::PhaseBegin,
                              name, 0);
    body();
    PPSCAN_TRACE_MASTER_EVENT(options.trace, obs::TraceEventKind::PhaseEnd,
                              name, 0);
    if (!governor.should_stop()) governor.finish_phase();
  };

  if (alloc_ok) {
    // Exhaustive similarity: the u < v owner computes each edge once and
    // mirrors the overlap to the reverse arc (no readers until the barrier).
    phase("Overlap", [&] {
      schedule_vertex_tasks(
          pool, graph_.num_vertices(), degree_of, all,
          [&](VertexId u) {
            std::uint64_t local = 0;
            const int w = pool.current_worker();
            obs::AlgoCounters& c = counters.slot(
                w >= 0 ? static_cast<std::size_t>(w) : counters.size() - 1);
            for (EdgeId e = graph_.offset_begin(u); e < graph_.offset_end(u);
                 ++e) {
              const VertexId v = graph_.dst()[e];
              if (u >= v) continue;
              const auto cn = static_cast<std::uint32_t>(
                  count(graph_.neighbors(u), graph_.neighbors(v)) + 2);
              ++local;
              overlap_[e] = cn;
              overlap_[graph_.reverse_arc(u, e)] = cn;
              // Exhaustive build: one intersection per u < v edge decides
              // both directions (computed arc + mirrored reused arc).
              c.arcs_touched += 2;
              c.sims_computed += 1;
              c.sims_reused += 1;
            }
            intersections.fetch_add(local, std::memory_order_relaxed);
          },
          sched);
    });

    // Neighbor order: per-vertex arc slots sorted by σ descending.
    phase("NeighborOrder", [&] {
      schedule_vertex_tasks(
          pool, graph_.num_vertices(), degree_of, all,
          [&](VertexId u) {
            const EdgeId begin = graph_.offset_begin(u);
            const EdgeId end = graph_.offset_end(u);
            for (EdgeId e = begin; e < end; ++e) ordered_arcs_[e] = e;
            std::sort(
                ordered_arcs_.begin() + static_cast<std::ptrdiff_t>(begin),
                ordered_arcs_.begin() + static_cast<std::ptrdiff_t>(end),
                SigmaGreater{graph_, overlap_, u});
          },
          sched);
    });
  }

  complete_ = alloc_ok && !governor.should_stop();
  // Phase barriers ordered every worker's slot writes before this merge.
  build_stats_.counters = counters.merged();
  build_stats_.intersections = intersections.load(std::memory_order_relaxed);
  build_stats_.construction_seconds = timer.elapsed_s();
  build_stats_.abort = governor.abort_info();
}

bool GsIndex::entry_similar(const EpsRational& eps, VertexId u,
                            EdgeId slot) const {
  const EdgeId arc = ordered_arcs_[slot];
  return similarity_holds(eps, overlap_[arc], graph_.degree(u),
                          graph_.degree(graph_.dst()[arc]));
}

ScanRun GsIndex::query(const ScanParams& params) const {
  if (!complete_) {
    throw std::logic_error("GsIndex::query on aborted construction (" +
                           build_stats_.abort.describe() + ")");
  }
  WallTimer timer;
  const VertexId n = graph_.num_vertices();
  ScanRun run;
  run.result.roles.assign(n, Role::NonCore);
  run.result.core_cluster_id.assign(n, kInvalidVertex);

  // Core test: the µ-th most similar neighbor decides (O(1) per vertex).
  for (VertexId u = 0; u < n; ++u) {
    if (graph_.degree(u) < params.mu) continue;
    const EdgeId slot = graph_.offset_begin(u) + params.mu - 1;
    if (entry_similar(params.eps, u, slot)) {
      run.result.roles[u] = Role::Core;
    }
  }

  // Core clustering: walk only the ε-similar prefix of each core's
  // neighbor order — the index's whole point.
  UnionFind uf(n);
  for (VertexId u = 0; u < n; ++u) {
    if (run.result.roles[u] != Role::Core) continue;
    for (EdgeId slot = graph_.offset_begin(u); slot < graph_.offset_end(u);
         ++slot) {
      if (!entry_similar(params.eps, u, slot)) break;  // sorted: all done
      const VertexId v = graph_.dst()[ordered_arcs_[slot]];
      if (u < v && run.result.roles[v] == Role::Core) {
        run.stats.counters.uf_unions += uf.unite(u, v) ? 1 : 0;
      }
    }
  }

  std::vector<VertexId> cluster_id(n, kInvalidVertex);
  obs::AlgoCounters& qc = run.stats.counters;
  for (VertexId u = 0; u < n; ++u) {
    if (run.result.roles[u] != Role::Core) continue;
    qc.uf_finds += 1;
    const VertexId root = uf.find_counted(u, &qc.uf_find_steps);
    cluster_id[root] = std::min(cluster_id[root], u);
  }
  for (VertexId u = 0; u < n; ++u) {
    if (run.result.roles[u] != Role::Core) continue;
    qc.uf_finds += 1;
    run.result.core_cluster_id[u] =
        cluster_id[uf.find_counted(u, &qc.uf_find_steps)];
    for (EdgeId slot = graph_.offset_begin(u); slot < graph_.offset_end(u);
         ++slot) {
      if (!entry_similar(params.eps, u, slot)) break;
      const VertexId v = graph_.dst()[ordered_arcs_[slot]];
      if (run.result.roles[v] != Role::Core) {
        run.result.noncore_memberships.emplace_back(
            v, cluster_id[uf.find(u)]);
      }
    }
  }

  run.result.normalize();
  run.stats.total_seconds = timer.elapsed_s();
  return run;
}

std::uint64_t GsIndex::memory_bytes() const {
  return overlap_.size() * sizeof(std::uint32_t) +
         ordered_arcs_.size() * sizeof(EdgeId);
}

}  // namespace ppscan
