#include "bench_support/metrics.hpp"

namespace ppscan {

obs::MetricsReport make_metrics_report(const std::string& tool,
                                       const std::string& algorithm,
                                       const std::string& dataset,
                                       const std::string& eps,
                                       std::uint64_t mu, std::uint64_t threads,
                                       const std::string& kernel,
                                       const CsrGraph& graph,
                                       const ScanRun& run) {
  obs::MetricsReport report;
  report.tool = tool;
  report.algorithm = algorithm;
  report.dataset = dataset;
  report.eps = eps;
  report.mu = mu;
  report.threads = threads;
  report.kernel = kernel;
  report.runtime_kind = run.stats.runtime_kind;
  report.num_vertices = graph.num_vertices();
  report.num_edges = static_cast<std::uint64_t>(graph.num_arcs()) / 2;

  report.total_seconds = run.stats.total_seconds;
  report.similarity_seconds = run.stats.similarity_seconds;
  report.pruning_seconds = run.stats.pruning_seconds;
  report.stage_prune_seconds = run.stats.stage_prune_seconds;
  report.stage_check_seconds = run.stats.stage_check_seconds;
  report.stage_core_cluster_seconds = run.stats.stage_core_cluster_seconds;
  report.stage_noncore_cluster_seconds =
      run.stats.stage_noncore_cluster_seconds;
  report.busy_seconds = run.stats.busy_seconds;
  report.idle_seconds = run.stats.idle_seconds;

  report.compsim_invocations = run.stats.compsim_invocations;
  report.tasks_submitted = run.stats.tasks_submitted;
  report.tasks_executed = run.stats.tasks_executed;
  report.steals = run.stats.steals;

  report.numa_mode = run.stats.numa_mode;
  report.numa_nodes = run.stats.numa_nodes;
  report.steals_same_node = run.stats.steals_same_node;
  report.steals_remote = run.stats.steals_remote;
  report.remote_misses = run.stats.remote_misses;
  report.per_node = run.stats.per_node;
  // placement stays "default": the CSR policy is the caller's choice
  // (apply_placement happens before the run), so the emitting tool
  // overwrites it when it placed the graph.

  report.num_clusters = run.result.num_clusters();
  report.num_cores = run.result.num_cores();

  report.abort_reason = to_string(run.stats.abort_reason);
  report.abort_phase = run.stats.abort_phase;
  report.phases_completed = run.stats.phases_completed;
  report.peak_governed_bytes = run.stats.peak_governed_bytes;

  report.counters = run.stats.counters;
  return report;
}

}  // namespace ppscan
