// Uniform algorithm runner used by the comparison benches (Figures 2/3) and
// the examples: maps the paper's algorithm names onto the library entry
// points with a common (threads, kernel) configuration.
#pragma once

#include <string>
#include <vector>

#include "concurrent/topology.hpp"
#include "scan/scan_common.hpp"
#include "setops/intersect.hpp"

namespace ppscan {

struct AlgorithmConfig {
  int num_threads = 1;
  /// Kernel used by the configurable algorithms (pSCAN, ppSCAN).
  IntersectKind kernel = IntersectKind::Auto;
  /// Run governance, forwarded to every algorithm (all of them honor it;
  /// see RunGovernor). Default limits govern nothing.
  RunLimits limits;
  /// Optional external cancel token; not owned, may be null.
  CancelToken* cancel = nullptr;
  /// Optional trace collector (obs/trace.hpp), forwarded to every
  /// algorithm. Not owned; must be sized for at least num_threads workers
  /// and outlive the run.
  obs::TraceCollector* trace = nullptr;
  /// NUMA execution policy, honored by ppSCAN/ppSCAN-NO only (the other
  /// algorithms have no work-stealing executor to shape).
  NumaMode numa = NumaMode::Off;
  /// Topology override for tests/benches; nullptr = detect when Auto.
  const NumaTopology* topology = nullptr;
};

/// Algorithm names accepted by run_algorithm, in the order the paper's
/// comparison figures list them: SCAN, pSCAN, anySCAN, SCAN-XP, ppSCAN,
/// plus ppSCAN-NO (the no-vectorization configuration of Figure 5).
std::vector<std::string> algorithm_names();

/// Runs `name` on `graph`. Sequential algorithms ignore config.num_threads.
/// Throws std::invalid_argument for unknown names.
ScanRun run_algorithm(const std::string& name, const CsrGraph& graph,
                      const ScanParams& params,
                      const AlgorithmConfig& config = {});

}  // namespace ppscan
