#include "bench_support/datasets.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <stdexcept>

#include "graph/edge_list_io.hpp"
#include "graph/generators.hpp"
#include "util/env.hpp"
#include "util/graph_io_error.hpp"

namespace ppscan {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSeedBase = 0x5eed20181c99ULL;

/// Base edge budgets are sized so the full bench suite finishes in minutes
/// on one laptop core at scale 1; PPSCAN_SCALE raises them uniformly.
CsrGraph generate(const std::string& name, double scale) {
  const auto scaled = [&](double base) -> VertexId {
    return static_cast<VertexId>(std::llround(base * scale));
  };

  if (name == "orkut-sim") {
    // orkut: community-dense social graph, avg degree 76.3.
    LfrParams p;
    p.n = scaled(26'000);
    p.avg_degree = 76;
    p.mixing = 0.25;
    // Communities must be larger than the internal degree (~57) or the
    // intra-ER probability clamps and the realized degree drops.
    p.min_community = 128;
    p.max_community = 2048;
    return lfr_like(p, kSeedBase + 1);
  }
  if (name == "friendster-sim") {
    // friendster: the paper's largest graph; communities, avg degree 28.9.
    LfrParams p;
    p.n = scaled(110'000);
    p.avg_degree = 29;
    p.mixing = 0.3;
    p.min_community = 32;
    p.max_community = 1024;
    return lfr_like(p, kSeedBase + 2);
  }
  if (name == "livejournal-sim") {
    // livejournal (Figure 1): community graph, avg degree ~17.
    LfrParams p;
    p.n = scaled(50'000);
    p.avg_degree = 18;
    p.mixing = 0.3;
    p.min_community = 16;
    p.max_community = 1024;
    return lfr_like(p, kSeedBase + 3);
  }
  if (name == "twitter-sim") {
    // twitter: heavy degree skew (paper max degree 1.4M), avg degree 32.9.
    RmatParams p;
    p.scale = 10;
    while ((VertexId{1} << p.scale) < scaled(32'768) && p.scale < 30) {
      ++p.scale;
    }
    p.edge_factor = 17.0;
    p.a = 0.57;
    p.b = 0.19;
    p.c = 0.19;
    return rmat(p, kSeedBase + 4);
  }
  if (name == "webbase-sim") {
    // webbase: low average degree (8.9) with extreme hubs; its strong
    // predicate pruning is what Figure 4(b) shows.
    RmatParams p;
    p.scale = 10;
    while ((VertexId{1} << p.scale) < scaled(131'072) && p.scale < 30) {
      ++p.scale;
    }
    p.edge_factor = 4.5;
    p.a = 0.65;
    p.b = 0.15;
    p.c = 0.15;
    return rmat(p, kSeedBase + 5);
  }
  if (name.rfind("roll-d", 0) == 0) {
    // roll-dX: scale-free graph with average degree X at a fixed edge
    // budget, mirroring Table 2's constant-|E| design.
    const char* degree_text = name.c_str() + 6;
    char* end = nullptr;
    errno = 0;
    const long avg_degree = std::strtol(degree_text, &end, 10);
    if (end == degree_text || *end != '\0' || errno == ERANGE ||
        avg_degree < 4 || avg_degree > 1024 || avg_degree % 2 != 0) {
      throw std::invalid_argument(
          "roll dataset needs an even degree in [4, 1024]: " + name);
    }
    const auto edge_budget =
        static_cast<double>(scaled(1'000'000));
    const auto m = static_cast<VertexId>(avg_degree / 2);
    const auto n = static_cast<VertexId>(edge_budget / m);
    return barabasi_albert(n, m, kSeedBase + 6 + avg_degree);
  }
  throw std::invalid_argument("unknown dataset: " + name);
}

fs::path cache_dir() {
  if (const auto dir = env_string("PPSCAN_CACHE_DIR")) return *dir;
  return fs::temp_directory_path() / "ppscan-datasets";
}

}  // namespace

std::vector<DatasetInfo> real_world_datasets() {
  return {
      {"orkut-sim", "orkut", "LFR-like, avg degree 76, mixing 0.25"},
      {"webbase-sim", "webbase", "R-MAT, avg degree ~9, a=0.65 (hub-heavy)"},
      {"twitter-sim", "twitter", "R-MAT, avg degree ~33, a=0.57"},
      {"friendster-sim", "friendster", "LFR-like, avg degree 29, mixing 0.3"},
  };
}

std::vector<DatasetInfo> roll_datasets() {
  return {
      {"roll-d40", "ROLL-d40", "Barabasi-Albert, m=20, |E| fixed"},
      {"roll-d80", "ROLL-d80", "Barabasi-Albert, m=40, |E| fixed"},
      {"roll-d120", "ROLL-d120", "Barabasi-Albert, m=60, |E| fixed"},
      {"roll-d160", "ROLL-d160", "Barabasi-Albert, m=80, |E| fixed"},
  };
}

CsrGraph load_dataset(const std::string& name, double scale) {
  char scale_text[32];
  std::snprintf(scale_text, sizeof(scale_text), "%.4g", scale);
  const fs::path dir = cache_dir();
  const fs::path file = dir / (name + "-x" + scale_text + ".csrbin");

  std::error_code ec;
  if (fs::exists(file, ec)) {
    try {
      return read_csr_binary(file.string());
    } catch (const GraphIoError& e) {
      // Corrupt/stale cache entry: report which invariant the cached file
      // violated, then fall through and regenerate.
      std::cerr << "ppscan: discarding corrupt dataset cache: " << e.what()
                << "\n";
    } catch (const std::exception&) {
      // Any other load failure: fall through and regenerate.
    }
  }

  CsrGraph graph = generate(name, scale);
  fs::create_directories(dir, ec);
  if (!ec) {
    try {
      write_csr_binary(graph, file.string());
    } catch (const std::exception&) {
      // Cache is best-effort; the generated graph is still good.
    }
  }
  return graph;
}

CsrGraph load_dataset(const std::string& name) {
  return load_dataset(name, bench_scale());
}

}  // namespace ppscan
