// Adapter from an algorithm run to the machine-readable metrics row
// (obs/metrics_json.hpp). Lives here rather than in obs/ so the obs layer
// keeps no dependency on graph or scan types.
#pragma once

#include <string>

#include "graph/csr_graph.hpp"
#include "obs/metrics_json.hpp"
#include "scan/scan_common.hpp"

namespace ppscan {

/// Flattens one finished run into a schema-v1 metrics row. `eps` should be
/// the ε exactly as the user spelled it (it is provenance, not arithmetic);
/// `kernel` the *resolved* intersection kernel name; `threads` whatever the
/// run was configured with (sequential algorithms pass 1).
obs::MetricsReport make_metrics_report(const std::string& tool,
                                       const std::string& algorithm,
                                       const std::string& dataset,
                                       const std::string& eps,
                                       std::uint64_t mu, std::uint64_t threads,
                                       const std::string& kernel,
                                       const CsrGraph& graph,
                                       const ScanRun& run);

}  // namespace ppscan
