// Named benchmark datasets — the scaled synthetic stand-ins for the paper's
// evaluation graphs (DESIGN.md §3).
//
// Every dataset is deterministic in (name, scale). `scale` multiplies the
// base edge budget (PPSCAN_SCALE env var via bench_scale()); vertex counts
// grow with the budget while target degrees stay fixed, so the workload
// shape is preserved at any size. Generated graphs are cached as binary CSR
// snapshots under PPSCAN_CACHE_DIR (default: the system temp directory) to
// amortize generation across bench binaries.
#pragma once

#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace ppscan {

struct DatasetInfo {
  std::string name;
  std::string stands_in_for;  // the paper dataset it simulates
  std::string generator;      // human-readable recipe
};

/// The four real-graph stand-ins (Table 1): orkut-sim, webbase-sim,
/// twitter-sim, friendster-sim (+ livejournal-sim used by Figure 1).
std::vector<DatasetInfo> real_world_datasets();

/// The ROLL stand-ins (Table 2): roll-d40, roll-d80, roll-d120, roll-d160.
std::vector<DatasetInfo> roll_datasets();

/// Generates (or loads from cache) a dataset by name. Throws
/// std::invalid_argument for unknown names.
CsrGraph load_dataset(const std::string& name, double scale);

/// Convenience: load at the PPSCAN_SCALE environment scale.
CsrGraph load_dataset(const std::string& name);

}  // namespace ppscan
