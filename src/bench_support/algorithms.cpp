#include "bench_support/algorithms.hpp"

#include <stdexcept>

#include "core/ppscan.hpp"
#include "scan/anyscan_lite.hpp"
#include "scan/pscan.hpp"
#include "scan/scan_original.hpp"
#include "scan/scanxp.hpp"

namespace ppscan {

std::vector<std::string> algorithm_names() {
  return {"SCAN", "pSCAN", "anySCAN", "SCAN-XP", "ppSCAN", "ppSCAN-NO"};
}

ScanRun run_algorithm(const std::string& name, const CsrGraph& graph,
                      const ScanParams& params, const AlgorithmConfig& config) {
  if (name == "SCAN") {
    return scan_original(graph, params);
  }
  if (name == "pSCAN") {
    return pscan(graph, params);
  }
  if (name == "anySCAN") {
    AnyScanLiteOptions options;
    options.num_threads = config.num_threads;
    return anyscan_lite(graph, params, options);
  }
  if (name == "SCAN-XP") {
    ScanXpOptions options;
    options.num_threads = config.num_threads;
    return scanxp(graph, params, options);
  }
  if (name == "ppSCAN") {
    PpScanOptions options;
    options.num_threads = config.num_threads;
    options.kernel = config.kernel;
    return ppscan(graph, params, options);
  }
  if (name == "ppSCAN-NO") {
    PpScanOptions options;
    options.num_threads = config.num_threads;
    options.kernel = IntersectKind::MergeEarlyStop;
    return ppscan(graph, params, options);
  }
  throw std::invalid_argument("unknown algorithm: " + name);
}

}  // namespace ppscan
