#include "bench_support/algorithms.hpp"

#include <stdexcept>

#include "core/ppscan.hpp"
#include "scan/anyscan_lite.hpp"
#include "scan/pscan.hpp"
#include "scan/scan_original.hpp"
#include "scan/scanxp.hpp"

namespace ppscan {

std::vector<std::string> algorithm_names() {
  return {"SCAN", "pSCAN", "anySCAN", "SCAN-XP", "ppSCAN", "ppSCAN-NO"};
}

ScanRun run_algorithm(const std::string& name, const CsrGraph& graph,
                      const ScanParams& params, const AlgorithmConfig& config) {
  if (name == "SCAN") {
    ScanOriginalOptions options;
    options.limits = config.limits;
    options.cancel = config.cancel;
    options.trace = config.trace;
    return scan_original(graph, params, options);
  }
  if (name == "pSCAN") {
    PscanOptions options;
    options.limits = config.limits;
    options.cancel = config.cancel;
    options.trace = config.trace;
    return pscan(graph, params, options);
  }
  if (name == "anySCAN") {
    AnyScanLiteOptions options;
    options.num_threads = config.num_threads;
    options.limits = config.limits;
    options.cancel = config.cancel;
    options.trace = config.trace;
    return anyscan_lite(graph, params, options);
  }
  if (name == "SCAN-XP") {
    ScanXpOptions options;
    options.num_threads = config.num_threads;
    options.limits = config.limits;
    options.cancel = config.cancel;
    options.trace = config.trace;
    return scanxp(graph, params, options);
  }
  if (name == "ppSCAN" || name == "ppSCAN-NO") {
    PpScanOptions options;
    options.num_threads = config.num_threads;
    options.kernel =
        name == "ppSCAN" ? config.kernel : IntersectKind::MergeEarlyStop;
    options.limits = config.limits;
    options.cancel = config.cancel;
    options.trace = config.trace;
    options.numa = config.numa;
    options.topology = config.topology;
    return ppscan(graph, params, options);
  }
  throw std::invalid_argument("unknown algorithm: " + name);
}

}  // namespace ppscan
