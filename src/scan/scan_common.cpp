#include "scan/scan_common.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace ppscan {

void record_governance(const RunGovernor& governor, RunStats& stats) {
  const RunAborted info = governor.abort_info();
  stats.abort_reason = info.reason;
  stats.abort_phase = info.phase;
  stats.abort_bytes = info.bytes;
  stats.abort_worker = info.worker;
  stats.abort_detail = info.detail;
  stats.phases_completed =
      static_cast<std::uint32_t>(governor.phases_completed());
  stats.peak_governed_bytes = governor.peak_bytes();
}

void ScanResult::normalize() {
  std::sort(noncore_memberships.begin(), noncore_memberships.end());
  noncore_memberships.erase(
      std::unique(noncore_memberships.begin(), noncore_memberships.end()),
      noncore_memberships.end());
}

std::vector<std::vector<VertexId>> ScanResult::canonical_clusters() const {
  std::map<VertexId, std::vector<VertexId>> by_id;
  for (VertexId u = 0; u < core_cluster_id.size(); ++u) {
    if (roles[u] == Role::Core) by_id[core_cluster_id[u]].push_back(u);
  }
  for (const auto& [v, cid] : noncore_memberships) {
    by_id[cid].push_back(v);
  }
  std::vector<std::vector<VertexId>> clusters;
  clusters.reserve(by_id.size());
  for (auto& [cid, members] : by_id) {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    clusters.push_back(std::move(members));
  }
  std::sort(clusters.begin(), clusters.end());
  return clusters;
}

std::size_t ScanResult::num_clusters() const {
  return canonical_clusters().size();
}

std::uint64_t ScanResult::num_cores() const {
  std::uint64_t cores = 0;
  for (const Role r : roles) {
    if (r == Role::Core) ++cores;
  }
  return cores;
}

bool results_equivalent(const ScanResult& a, const ScanResult& b) {
  return a.roles == b.roles &&
         a.canonical_clusters() == b.canonical_clusters();
}

std::string describe_result_difference(const ScanResult& a,
                                       const ScanResult& b) {
  std::ostringstream os;
  if (a.roles.size() != b.roles.size()) {
    os << "role array sizes differ: " << a.roles.size() << " vs "
       << b.roles.size();
    return os.str();
  }
  for (std::size_t u = 0; u < a.roles.size(); ++u) {
    if (a.roles[u] != b.roles[u]) {
      os << "role of vertex " << u << " differs: "
         << static_cast<int>(a.roles[u]) << " vs "
         << static_cast<int>(b.roles[u]);
      return os.str();
    }
  }
  const auto ca = a.canonical_clusters();
  const auto cb = b.canonical_clusters();
  if (ca.size() != cb.size()) {
    os << "cluster counts differ: " << ca.size() << " vs " << cb.size();
    return os.str();
  }
  for (std::size_t i = 0; i < ca.size(); ++i) {
    if (ca[i] != cb[i]) {
      os << "cluster #" << i << " differs (sizes " << ca[i].size() << " vs "
         << cb[i].size() << ")";
      return os.str();
    }
  }
  return {};
}

std::vector<VertexClass> classify_hubs_outliers(const CsrGraph& graph,
                                                const ScanResult& result) {
  const VertexId n = graph.num_vertices();
  // Collect, per vertex, the sorted unique list of clusters it belongs to.
  // Cores have exactly one; non-cores may have several (or none).
  std::vector<std::vector<VertexId>> memberships(n);
  for (VertexId u = 0; u < n; ++u) {
    if (result.roles[u] == Role::Core) {
      memberships[u].push_back(result.core_cluster_id[u]);
    }
  }
  for (const auto& [v, cid] : result.noncore_memberships) {
    memberships[v].push_back(cid);
  }
  for (auto& m : memberships) {
    std::sort(m.begin(), m.end());
    m.erase(std::unique(m.begin(), m.end()), m.end());
  }

  std::vector<VertexClass> classes(n, VertexClass::Outlier);
  for (VertexId u = 0; u < n; ++u) {
    if (!memberships[u].empty()) {
      classes[u] = VertexClass::Member;
      continue;
    }
    // Hub test: neighbors span >= 2 distinct clusters. A neighbor in k
    // clusters contributes all k, per Definition 2.10's "v and w are in
    // different clusters".
    VertexId first_cluster = kInvalidVertex;
    bool is_hub = false;
    for (const VertexId v : graph.neighbors(u)) {
      for (const VertexId cid : memberships[v]) {
        if (first_cluster == kInvalidVertex) {
          first_cluster = cid;
        } else if (cid != first_cluster) {
          is_hub = true;
          break;
        }
      }
      if (is_hub) break;
    }
    if (is_hub) classes[u] = VertexClass::Hub;
  }
  return classes;
}

}  // namespace ppscan
