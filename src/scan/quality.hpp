// Clustering-quality metrics.
//
// Tools to evaluate a SCAN clustering against ground truth (planted
// communities) or intrinsically (modularity, conductance). SCAN results
// can overlap on non-cores and leave vertices unclustered, so each metric
// states how it treats those cases.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "scan/scan_common.hpp"

namespace ppscan {

struct PairwiseScores {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
};

/// Pairwise co-membership scores of `clusters` against a per-vertex ground
/// truth: precision = fraction of same-cluster pairs that share a true
/// community; recall = fraction of true co-membership pairs recovered.
/// Overlapping vertices contribute a pair per shared cluster; unclustered
/// vertices contribute no found pairs (they lower recall only).
PairwiseScores pairwise_scores(
    const std::vector<std::vector<VertexId>>& clusters,
    const std::vector<VertexId>& ground_truth);

/// Purity: clustered vertices whose cluster's majority community matches
/// theirs, over all clustered vertices (overlaps counted per membership).
/// 1.0 means every cluster is contained in one true community.
double purity(const std::vector<std::vector<VertexId>>& clusters,
              const std::vector<VertexId>& ground_truth);

/// Newman modularity of the clustering. Each vertex is assigned one
/// community: its cluster id (non-cores in several clusters take the
/// smallest), unclustered vertices become singletons. Range (-0.5, 1].
double modularity(const CsrGraph& graph, const ScanResult& result);

/// Conductance of one vertex set: cut(S, V∖S) / min(vol(S), vol(V∖S));
/// 0 for a perfectly separated set, approaching 1 for a random one.
/// Returns 0 when either side has zero volume.
double conductance(const CsrGraph& graph, const std::vector<VertexId>& set);

/// Unweighted mean conductance over all clusters (lower is better).
double mean_cluster_conductance(const CsrGraph& graph,
                                const ScanResult& result);

}  // namespace ppscan
