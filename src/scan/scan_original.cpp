#include "scan/scan_original.hpp"

#include <deque>

#include "obs/trace.hpp"
#include "setops/intersect.hpp"
#include "util/timer.hpp"

namespace ppscan {
namespace {

class ScanOriginalRunner {
 public:
  ScanOriginalRunner(const CsrGraph& graph, const ScanParams& params,
                     const ScanOriginalOptions& options)
      : graph_(graph),
        params_(params),
        options_(options),
        governor_(options.limits, options.cancel) {
    const std::uint64_t state_bytes =
        static_cast<std::uint64_t>(graph.num_arcs()) * sizeof(std::int32_t);
    alloc_ok_ = governor_.try_charge(state_bytes, "scan sim array");
    if (alloc_ok_) {
      try {
        sim_.assign(graph.num_arcs(), kSimUncached);
      } catch (const std::bad_alloc&) {
        governor_.record_alloc_failure(state_bytes, "scan sim array");
        alloc_ok_ = false;
      }
    }
    run_.result.roles.assign(graph.num_vertices(), Role::Unknown);
    run_.result.core_cluster_id.assign(graph.num_vertices(), kInvalidVertex);
  }

  ScanRun run() {
    WallTimer total;
    if (alloc_ok_ && !governor_.should_stop()) {
      governor_.enter_phase("ExpandClusters");
      PPSCAN_TRACE_SET_PHASE(options_.trace, "ExpandClusters");
      PPSCAN_TRACE_MASTER_EVENT(options_.trace,
                                obs::TraceEventKind::PhaseBegin,
                                "ExpandClusters", 0);
      VertexId next_cluster = 0;
      for (VertexId u = 0;
           u < graph_.num_vertices() && !governor_.checkpoint(); ++u) {
        if (run_.result.roles[u] != Role::Unknown) continue;
        if (check_core(u) == Role::Core) expand_cluster(u, next_cluster++);
      }
      PPSCAN_TRACE_MASTER_EVENT(options_.trace, obs::TraceEventKind::PhaseEnd,
                                "ExpandClusters", 0);
      if (!governor_.should_stop()) governor_.finish_phase();
    }
    run_.result.normalize();
    run_.stats.total_seconds = total.elapsed_s();
    record_governance(governor_, run_.stats);
    return std::move(run_);
  }

 private:
  /// Decides sim[e] for one arc with a full merge intersection. SCAN caches
  /// per-arc only: the reverse arc is recomputed by the other endpoint's
  /// CheckCore, reproducing the 2·Σ d² workload of Theorem 3.4.
  std::int32_t compute_arc(VertexId u, EdgeId e) {
    const VertexId v = graph_.dst()[e];
    ++run_.stats.compsim_invocations;
    std::uint64_t common;
    if (options_.collect_breakdown) {
      ScopedAccumTimer timer(run_.stats.similarity_seconds);
      common = intersect_count_merge(graph_.neighbors(u), graph_.neighbors(v));
    } else {
      common = intersect_count_merge(graph_.neighbors(u), graph_.neighbors(v));
    }
    // |Γ(u)∩Γ(v)| = |N(u)∩N(v)| + 2 for adjacent u, v.
    const bool sim = similarity_holds(params_.eps, common + 2,
                                      graph_.degree(u), graph_.degree(v));
    // Original SCAN has no pruning and no mirroring: every directed arc is
    // intersected by its own tail, so the funnel is all sims_computed.
    run_.stats.counters.arcs_touched += 1;
    run_.stats.counters.sims_computed += 1;
    return sim ? kSimFlag : kNSimFlag;
  }

  Role check_core(VertexId u) {
    std::uint64_t similar = 0;
    for (EdgeId e = graph_.offset_begin(u); e < graph_.offset_end(u); ++e) {
      if (sim_[e] == kSimUncached) sim_[e] = compute_arc(u, e);
      if (sim_[e] == kSimFlag) ++similar;
    }
    const Role role = similar >= params_.mu ? Role::Core : Role::NonCore;
    run_.result.roles[u] = role;
    return role;
  }

  void expand_cluster(VertexId seed, VertexId cluster) {
    run_.result.core_cluster_id[seed] = cluster;
    std::deque<VertexId> queue{seed};
    while (!queue.empty()) {
      // Safe stopping point: every popped vertex is fully processed, so a
      // trip here leaves only consistently-labeled cores behind.
      if (governor_.checkpoint()) return;
      const VertexId v = queue.front();
      queue.pop_front();
      for (EdgeId e = graph_.offset_begin(v); e < graph_.offset_end(v); ++e) {
        if (sim_[e] != kSimFlag) continue;
        const VertexId w = graph_.dst()[e];
        if (run_.result.roles[w] == Role::Unknown &&
            check_core(w) == Role::Core) {
          queue.push_back(w);
        }
        if (run_.result.roles[w] == Role::Core) {
          if (run_.result.core_cluster_id[w] == kInvalidVertex) {
            run_.result.core_cluster_id[w] = cluster;
            // w was a core before this expansion reached it only if it is in
            // this same similarity component, so the id assignment is safe;
            // it enters the queue exactly once, on its role transition.
          }
        } else {
          run_.result.noncore_memberships.emplace_back(w, cluster);
        }
      }
    }
  }

  const CsrGraph& graph_;
  const ScanParams& params_;
  const ScanOriginalOptions& options_;
  RunGovernor governor_;
  bool alloc_ok_ = true;
  std::vector<std::int32_t> sim_;
  ScanRun run_;
};

}  // namespace

ScanRun scan_original(const CsrGraph& graph, const ScanParams& params,
                      const ScanOriginalOptions& options) {
  return ScanOriginalRunner(graph, params, options).run();
}

}  // namespace ppscan
