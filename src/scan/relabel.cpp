#include "scan/relabel.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "graph/graph_builder.hpp"

namespace ppscan {

Relabeling degree_descending_order(const CsrGraph& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const VertexId da = graph.degree(a);
    const VertexId db = graph.degree(b);
    if (da != db) return da > db;
    return a < b;
  });
  Relabeling r;
  r.to_old = std::move(order);
  r.to_new.resize(n);
  for (VertexId new_id = 0; new_id < n; ++new_id) {
    r.to_new[r.to_old[new_id]] = new_id;
  }
  return r;
}

Relabeling make_relabeling(std::vector<VertexId> to_new) {
  const auto n = checked_vertex_cast(to_new.size());
  Relabeling r;
  r.to_old.assign(n, kInvalidVertex);
  for (VertexId old_id = 0; old_id < n; ++old_id) {
    const VertexId new_id = to_new[old_id];
    if (new_id >= n || r.to_old[new_id] != kInvalidVertex) {
      throw std::invalid_argument("make_relabeling: not a bijection");
    }
    r.to_old[new_id] = old_id;
  }
  r.to_new = std::move(to_new);
  return r;
}

CsrGraph apply_relabeling(const CsrGraph& graph,
                          const Relabeling& relabeling) {
  if (relabeling.to_new.size() != graph.num_vertices()) {
    throw std::invalid_argument("apply_relabeling: size mismatch");
  }
  EdgeList edges;
  edges.reserve(graph.num_edges());
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    for (const VertexId v : graph.neighbors(u)) {
      if (u < v) {
        edges.emplace_back(relabeling.to_new[u], relabeling.to_new[v]);
      }
    }
  }
  return GraphBuilder::from_edges(edges, graph.num_vertices());
}

ScanResult map_result_to_original(const ScanResult& relabeled,
                                  const Relabeling& relabeling) {
  const auto n = checked_vertex_cast(relabeled.roles.size());
  ScanResult out;
  out.roles.resize(n);
  out.core_cluster_id.assign(n, kInvalidVertex);
  for (VertexId new_id = 0; new_id < n; ++new_id) {
    const VertexId old_id = relabeling.to_old[new_id];
    out.roles[old_id] = relabeled.roles[new_id];
    const VertexId cid = relabeled.core_cluster_id[new_id];
    // Cluster ids are themselves vertex ids (minimum core id), so they are
    // remapped too; canonical comparisons ignore the numbering either way.
    out.core_cluster_id[old_id] =
        cid == kInvalidVertex ? kInvalidVertex : relabeling.to_old[cid];
  }
  out.noncore_memberships.reserve(relabeled.noncore_memberships.size());
  for (const auto& [v, cid] : relabeled.noncore_memberships) {
    out.noncore_memberships.emplace_back(relabeling.to_old[v],
                                         relabeling.to_old[cid]);
  }
  out.normalize();
  return out;
}

}  // namespace ppscan
