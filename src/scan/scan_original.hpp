// Original SCAN (Xu et al., KDD 2007) — paper Algorithm 1.
//
// Exhaustive similarity computation (a full merge intersection per directed
// arc, no early termination, no reverse-arc reuse — total workload
// 2·Σ d(v)², paper Theorem 3.4) with BFS cluster expansion from cores.
// Serves as the correctness anchor and the slow end of Figures 1–3.
#pragma once

#include "scan/scan_common.hpp"

namespace ppscan {

struct ScanOriginalOptions {
  /// Collect the Figure-1 time breakdown (adds one clock read per
  /// similarity computation).
  bool collect_breakdown = false;

  /// Run governance (see RunGovernor); polled per vertex and per BFS
  /// expansion step. Default limits govern nothing.
  RunLimits limits;
  /// Optional external cancel token; not owned, may be null.
  CancelToken* cancel = nullptr;

  /// Optional trace collector (obs/trace.hpp): phase spans land on its
  /// master slot. Not owned; must outlive the run.
  obs::TraceCollector* trace = nullptr;
};

ScanRun scan_original(const CsrGraph& graph, const ScanParams& params,
                      const ScanOriginalOptions& options = {});

}  // namespace ppscan
