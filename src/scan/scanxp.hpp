// SCAN-XP (Takahashi et al., NDA 2017) — the pruning-free parallel baseline
// of Figures 2 and 3.
//
// SCAN-XP exploits thread- and instruction-level parallelism but performs
// the similarity computation exhaustively: every edge is intersected with a
// full (non-early-terminating) count regardless of ε, so its runtime is flat
// in ε while ppSCAN's shrinks — the contrast the paper highlights.
#pragma once

#include "scan/scan_common.hpp"
#include "setops/intersect.hpp"

namespace ppscan {

struct ScanXpOptions {
  int num_threads = 1;
  /// Exact-count intersection kernel. SCAN-XP's instruction-level
  /// parallelism comes from the SIMD counts; Auto picks the best the CPU
  /// supports, scalar kinds fall back to the merge count.
  IntersectKind count_kernel = IntersectKind::Auto;

  /// Run governance (see RunGovernor); default limits govern nothing.
  RunLimits limits;
  /// Optional external cancel token; not owned, may be null.
  CancelToken* cancel = nullptr;

  /// Optional trace collector (obs/trace.hpp): phase spans land on its
  /// master slot. Not owned; must outlive the run.
  obs::TraceCollector* trace = nullptr;
};

ScanRun scanxp(const CsrGraph& graph, const ScanParams& params,
               const ScanXpOptions& options = {});

}  // namespace ppscan
