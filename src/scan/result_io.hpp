// Clustering-result persistence.
//
// A plain-text, diff-friendly format so results can be archived, compared
// across machines, and consumed by downstream tooling (the CLI's `cluster`
// and `classify` subcommands round-trip through it):
//
//   PPSCAN-RESULT 1
//   n <num_vertices>
//   roles <one char per vertex: C=core, N=non-core, U=unknown>
//   core <vertex> <cluster-id>        (one line per core)
//   member <vertex> <cluster-id>      (one line per non-core membership)
//   end
#pragma once

#include <iosfwd>
#include <string>

#include "scan/scan_common.hpp"

namespace ppscan {

void write_scan_result(const ScanResult& result, std::ostream& os);
void write_scan_result(const ScanResult& result, const std::string& path);

/// Throws std::runtime_error on malformed input.
ScanResult read_scan_result(std::istream& is);
ScanResult read_scan_result(const std::string& path);

}  // namespace ppscan
