#include "scan/classification.hpp"

#include <algorithm>

#include "concurrent/executor.hpp"
#include "concurrent/task_scheduler.hpp"

namespace ppscan {

std::vector<VertexClass> classify_hubs_outliers_parallel(
    const CsrGraph& graph, const ScanResult& result, int num_threads) {
  const VertexId n = graph.num_vertices();

  // Per-vertex cluster membership lists in CSR form, built with a counting
  // pass (cheap relative to the edge scan below).
  std::vector<std::uint32_t> member_count(n, 0);
  for (VertexId u = 0; u < n; ++u) {
    if (result.roles[u] == Role::Core) ++member_count[u];
  }
  for (const auto& [v, cid] : result.noncore_memberships) {
    ++member_count[v];
  }
  std::vector<std::size_t> member_offset(n + 1, 0);
  for (VertexId u = 0; u < n; ++u) {
    member_offset[u + 1] = member_offset[u] + member_count[u];
  }
  std::vector<VertexId> members(member_offset[n]);
  {
    std::vector<std::size_t> cursor(member_offset.begin(),
                                    member_offset.end() - 1);
    for (VertexId u = 0; u < n; ++u) {
      if (result.roles[u] == Role::Core) {
        members[cursor[u]++] = result.core_cluster_id[u];
      }
    }
    for (const auto& [v, cid] : result.noncore_memberships) {
      members[cursor[v]++] = cid;
    }
  }

  Executor executor(num_threads);
  std::vector<VertexClass> classes(n, VertexClass::Outlier);
  schedule_vertex_tasks(
      executor, n, [&](VertexId u) { return graph.degree(u); },
      [](VertexId) { return true; },
      [&](VertexId u) {
        if (member_offset[u] != member_offset[u + 1]) {
          classes[u] = VertexClass::Member;
          return;
        }
        // Hub test over the neighbors' (possibly multiple) cluster ids.
        VertexId first_cluster = kInvalidVertex;
        for (const VertexId v : graph.neighbors(u)) {
          for (std::size_t i = member_offset[v]; i < member_offset[v + 1];
               ++i) {
            const VertexId cid = members[i];
            if (first_cluster == kInvalidVertex) {
              first_cluster = cid;
            } else if (cid != first_cluster) {
              classes[u] = VertexClass::Hub;
              return;
            }
          }
        }
      });
  return classes;
}

}  // namespace ppscan
