// Shared vocabulary of every SCAN-family algorithm in the library: input
// parameters, vertex roles, the clustering result with a canonical form for
// cross-algorithm comparison, run statistics, and the hub/outlier post-pass.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "concurrent/run_governor.hpp"
#include "graph/csr_graph.hpp"
#include "obs/counters.hpp"
#include "setops/similarity.hpp"
#include "util/types.hpp"

namespace ppscan {

namespace obs {
class TraceCollector;  // obs/trace.hpp; options structs only hold a pointer
}  // namespace obs

/// SCAN input parameters (paper §2): 0 < ε ≤ 1 and µ ≥ 1. A vertex is a
/// core when it has at least µ ε-similar neighbors (|N_ε(u)| − 1 ≥ µ).
struct ScanParams {
  EpsRational eps{1, 5};
  std::uint32_t mu = 5;

  static ScanParams make(const std::string& eps_text, std::uint32_t mu) {
    return {EpsRational::parse(eps_text), mu};
  }
};

enum class Role : std::uint8_t { Unknown = 0, Core = 1, NonCore = 2 };

/// Per-arc similarity state, stored in one int32 per directed arc:
///   kSimFlag      — predicate decided true
///   kNSimFlag     — predicate decided false
///   kSimUncached  — undecided, min_cn not computed yet
///   value >= 1    — undecided, value is the cached min_cn bound
/// (the same packing as the pSCAN reference implementation).
inline constexpr std::int32_t kSimFlag = -1;
inline constexpr std::int32_t kNSimFlag = -2;
inline constexpr std::int32_t kSimUncached = 0;

/// Output of a clustering run.
///
/// Cores partition into disjoint clusters (paper Lemma 3.5) so they carry a
/// direct id; non-cores may belong to several clusters (a border vertex can
/// be ε-similar to cores of different clusters), hence the membership pair
/// list — mirroring ppSCAN's own output layout.
struct ScanResult {
  std::vector<Role> roles;
  /// Cluster id per vertex; meaningful only for cores (kInvalidVertex else).
  std::vector<VertexId> core_cluster_id;
  /// (non-core vertex, cluster id) memberships; may contain duplicates until
  /// normalize() is called.
  std::vector<std::pair<VertexId, VertexId>> noncore_memberships;

  /// Sorts + dedupes the membership list.
  void normalize();

  /// Canonical clusters: each cluster a sorted vertex vector, clusters
  /// sorted lexicographically. Cluster ids are ignored, so results from
  /// different algorithms (different id conventions) compare equal when the
  /// clusterings agree.
  [[nodiscard]] std::vector<std::vector<VertexId>> canonical_clusters() const;

  [[nodiscard]] std::size_t num_clusters() const;
  [[nodiscard]] std::uint64_t num_cores() const;
};

/// True when both results agree on roles and canonical clusters.
bool results_equivalent(const ScanResult& a, const ScanResult& b);

/// Human-readable diff of the first disagreement (empty when equivalent).
std::string describe_result_difference(const ScanResult& a,
                                       const ScanResult& b);

/// Final classification of every vertex (paper Definition 2.10).
enum class VertexClass : std::uint8_t { Member, Hub, Outlier };

/// O(|V| + |E|) hub/outlier post-pass: an unclustered vertex is a hub when
/// its neighbors span at least two distinct clusters, else an outlier.
std::vector<VertexClass> classify_hubs_outliers(const CsrGraph& graph,
                                                const ScanResult& result);

/// Instrumentation accumulated during a run. Which fields are populated
/// depends on the algorithm; unused ones stay zero.
struct RunStats {
  std::uint64_t compsim_invocations = 0;
  double total_seconds = 0;
  /// Figure 1 breakdown: time inside set intersections vs the time spent in
  /// pruning bookkeeping (sd/ed updates, predicate pruning); the remainder
  /// of total_seconds is the paper's "other computation".
  double similarity_seconds = 0;
  double pruning_seconds = 0;
  /// ppSCAN per-stage wall times (Figure 6).
  double stage_prune_seconds = 0;
  double stage_check_seconds = 0;
  double stage_core_cluster_seconds = 0;
  double stage_noncore_cluster_seconds = 0;
  std::uint64_t tasks_submitted = 0;
  /// Work-stealing executor counters (zero on the mutex-pool / OpenMP
  /// runtimes): ranges actually claimed and run by workers, how many of
  /// those were taken from another worker's share, and the summed per-worker
  /// in-task vs mid-phase-waiting time — the load-balance signal the
  /// scheduler ablation compares policies on.
  std::uint64_t tasks_executed = 0;
  std::uint64_t steals = 0;
  double busy_seconds = 0;
  double idle_seconds = 0;
  /// NUMA execution shape (worksteal runtime; docs/numa.md). numa_mode is
  /// the policy the run used ("off" everywhere else); numa_nodes the
  /// executor's node count; the steal split and remote misses measure how
  /// hierarchical stealing kept work on-node (steals == steals_same_node +
  /// steals_remote); per_node carries one row per topology node.
  std::string numa_mode = "off";
  std::uint64_t numa_nodes = 1;
  std::uint64_t steals_same_node = 0;
  std::uint64_t steals_remote = 0;
  std::uint64_t remote_misses = 0;
  std::vector<obs::NodeCounters> per_node;
  /// Run governance (populated by the governed algorithms): why/where a
  /// limited run stopped early — None means it ran to completion — plus
  /// how many phases reached their barrier and the peak governed bytes
  /// charged against the memory budget.
  AbortReason abort_reason = AbortReason::None;
  std::string abort_phase;
  std::uint64_t abort_bytes = 0;
  int abort_worker = -1;
  /// e.what() (truncated) when abort_reason == Exception: the typed error
  /// detail the exception firewall preserved for the caller.
  std::string abort_detail;
  std::uint32_t phases_completed = 0;
  std::uint64_t peak_governed_bytes = 0;
  /// Which execution runtime produced the executor counters above:
  /// "worksteal" (the lock-free executor), "mutex" (the
  /// RuntimeKind::MutexPool ablation), "openmp", or "serial". On every
  /// runtime except "worksteal" the tasks_executed/steals/busy/idle block
  /// is *explicitly zero* — those runtimes keep no such counters — so a
  /// metrics consumer must key off this field rather than read zeros as
  /// "perfectly balanced".
  std::string runtime_kind = "serial";
  /// The pruning funnel (see obs/counters.hpp for the convention and the
  /// invariant pruned + computed + reused == touched).
  obs::AlgoCounters counters;
};

/// Result + statistics bundle every algorithm entry point returns.
///
/// A governed run that hit a limit returns a *partial* result instead of
/// dying: vertices the run never decided keep Role::Unknown, cores the
/// clustering phases never labeled keep kInvalidVertex, and the membership
/// list holds whatever was collected before the trip. Everything that WAS
/// decided is final — a role or cluster edge is a function of the graph
/// alone, so the decided portion of a partial run agrees exactly with an
/// unconstrained run (validate_scan_result's Partial mode checks this).
struct ScanRun {
  ScanResult result;
  RunStats stats;

  /// True when the run was aborted by its governor and `result` covers
  /// only a prefix of the work.
  [[nodiscard]] bool partial() const {
    return stats.abort_reason != AbortReason::None;
  }
};

/// Copies the governor's outcome into the run's stats (abort taxonomy,
/// completed-phase count, peak governed memory).
void record_governance(const RunGovernor& governor, RunStats& stats);

}  // namespace ppscan
