// anySCAN-lite — a parallel baseline with the cost profile of anySCAN
// (Mai et al., ICDE 2017), which the paper uses purely as a performance
// comparison point.
//
// The real anySCAN is an anytime algorithm with a five-state vertex machine
// and super-node summarization; reproducing it line-by-line is out of scope
// (DESIGN.md §5). This baseline mirrors its documented performance traits:
//   * block-iterative parallel processing of untouched vertices,
//   * per-vertex local pruning (predicate + min-max early termination) but
//     NO cross-vertex similarity reuse — an edge may be intersected by both
//     endpoints, and again during clustering,
//   * dynamic per-vertex scratch allocations on the hot path.
// Results are exact; only the work profile is deliberately anySCAN-like.
#pragma once

#include "scan/scan_common.hpp"

namespace ppscan {

struct AnyScanLiteOptions {
  int num_threads = 1;
  /// Vertices handled per parallel block iteration.
  VertexId block_size = 16384;

  /// Run governance (see RunGovernor); default limits govern nothing.
  RunLimits limits;
  /// Optional external cancel token; not owned, may be null.
  CancelToken* cancel = nullptr;

  /// Optional trace collector (obs/trace.hpp): phase spans land on its
  /// master slot. Not owned; must outlive the run.
  obs::TraceCollector* trace = nullptr;
};

ScanRun anyscan_lite(const CsrGraph& graph, const ScanParams& params,
                     const AnyScanLiteOptions& options = {});

}  // namespace ppscan
