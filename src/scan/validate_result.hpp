// Independent result validation.
//
// Checks a ScanResult against the paper's definitions directly — without
// running any clustering algorithm — so a stored or third-party result can
// be certified. Verifies:
//   * role soundness: cores have ≥ µ ε-similar neighbors, non-cores fewer,
//     no Unknown roles;
//   * core clusters = connected components of the similar core-core
//     subgraph (connectivity AND maximality, Definition 2.9), with the
//     min-core-id labeling convention;
//   * memberships: every (non-core, cluster) pair is backed by an
//     ε-similar core neighbor in that cluster, and none is missing.
// Cost: one intersection per edge incident to a checked vertex — this is
// a verifier, not a fast path.
//
// Partial mode certifies the output of a governed run that was cut short
// (deadline/budget/cancel): everything *decided* must agree with the full
// clustering, everything undecided must be explicitly undecided. Decided
// roles must match exactly (a role is a function of the graph alone);
// Unknown roles are allowed. Labeled clusters may *split* a true cluster
// (an interrupted union-find legitimately under-merges) but must never
// merge two distinct true clusters, and every recorded membership must be
// backed by a real ε-similar core edge — the membership list is a subset
// of the full run's rather than equal to it.
#pragma once

#include <string>

#include "graph/csr_graph.hpp"
#include "scan/scan_common.hpp"

namespace ppscan {

struct ValidationReport {
  bool ok = true;
  std::string first_error;  // empty when ok

  void fail(std::string message) {
    if (ok) {
      ok = false;
      first_error = std::move(message);
    }
  }
};

/// Full — certify a complete clustering (the default, exact semantics).
/// Partial — certify the prefix of a governed run cut short by its
/// RunGovernor (see the header comment for the relaxed invariants).
enum class ValidateMode : std::uint8_t { Full, Partial };

ValidationReport validate_scan_result(const CsrGraph& graph,
                                      const ScanParams& params,
                                      const ScanResult& result,
                                      ValidateMode mode = ValidateMode::Full);

}  // namespace ppscan
