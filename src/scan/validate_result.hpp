// Independent result validation.
//
// Checks a ScanResult against the paper's definitions directly — without
// running any clustering algorithm — so a stored or third-party result can
// be certified. Verifies:
//   * role soundness: cores have ≥ µ ε-similar neighbors, non-cores fewer,
//     no Unknown roles;
//   * core clusters = connected components of the similar core-core
//     subgraph (connectivity AND maximality, Definition 2.9), with the
//     min-core-id labeling convention;
//   * memberships: every (non-core, cluster) pair is backed by an
//     ε-similar core neighbor in that cluster, and none is missing.
// Cost: one intersection per edge incident to a checked vertex — this is
// a verifier, not a fast path.
#pragma once

#include <string>

#include "graph/csr_graph.hpp"
#include "scan/scan_common.hpp"

namespace ppscan {

struct ValidationReport {
  bool ok = true;
  std::string first_error;  // empty when ok

  void fail(std::string message) {
    if (ok) {
      ok = false;
      first_error = std::move(message);
    }
  }
};

ValidationReport validate_scan_result(const CsrGraph& graph,
                                      const ScanParams& params,
                                      const ScanResult& result);

}  // namespace ppscan
