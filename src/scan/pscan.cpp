#include "scan/pscan.hpp"

#include <algorithm>

#include "concurrent/union_find.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace ppscan {
namespace {

class PscanRunner {
 public:
  PscanRunner(const CsrGraph& graph, const ScanParams& params,
              const PscanOptions& options)
      : graph_(graph),
        params_(params),
        options_(options),
        kernel_(similar_fn(options.kernel)),
        governor_(options.limits, options.cancel) {
    const VertexId n = graph.num_vertices();
    // Charge the state arrays before allocating; overshoot (or bad_alloc)
    // aborts before any phase with the all-Unknown result.
    const std::uint64_t state_bytes =
        static_cast<std::uint64_t>(graph.num_arcs()) * sizeof(std::int32_t) +
        static_cast<std::uint64_t>(n) *
            (3 * sizeof(std::uint32_t) + sizeof(VertexId) +
             sizeof(std::uint8_t));
    alloc_ok_ = governor_.try_charge(state_bytes, "pscan state arrays");
    if (alloc_ok_) {
      try {
        sim_.assign(graph.num_arcs(), kSimUncached);
        sd_.assign(n, 0);
        ed_.resize(n);
        uf_.reset(n);
        for (VertexId u = 0; u < n; ++u) ed_[u] = graph.degree(u);
      } catch (const std::bad_alloc&) {
        governor_.record_alloc_failure(state_bytes, "pscan state arrays");
        alloc_ok_ = false;
      }
    }
    run_.result.roles.assign(n, Role::Unknown);
    run_.result.core_cluster_id.assign(n, kInvalidVertex);
  }

  ScanRun run() {
    WallTimer total;
    if (alloc_ok_) {
      phase("CheckCore", [this] {
        if (options_.dynamic_ed_order) {
          run_core_phase_dynamic_order();
        } else {
          for (VertexId u = 0; u < graph_.num_vertices(); ++u) {
            if (governor_.checkpoint()) break;
            process_vertex(u);
          }
        }
      });
      phase("ClusterNonCore", [this] { cluster_noncores(); });
    }
    run_.result.normalize();
    run_.stats.total_seconds = total.elapsed_s();
    record_governance(governor_, run_.stats);
    return std::move(run_);
  }

 private:
  template <typename Body>
  void phase(const char* name, Body&& body) {
    if (governor_.should_stop()) return;
    governor_.enter_phase(name);
    // Re-check: the cancel_at_phase test hook trips on phase entry.
    if (governor_.should_stop()) return;
    // Sequential runner: the calling thread is the collector's master slot.
    PPSCAN_TRACE_SET_PHASE(options_.trace, name);
    PPSCAN_TRACE_MASTER_EVENT(options_.trace, obs::TraceEventKind::PhaseBegin,
                              name, 0);
    body();
    PPSCAN_TRACE_MASTER_EVENT(options_.trace, obs::TraceEventKind::PhaseEnd,
                              name, 0);
    if (!governor_.should_stop()) governor_.finish_phase();
  }

  /// Lazy bucket queue over the *current* effective degree: buckets are
  /// visited from high ed to low; a vertex found in a stale (too-high)
  /// bucket is dropped down to its current one. ed only decreases, so a
  /// reinserted vertex lands in a bucket not yet drained.
  void run_core_phase_dynamic_order() {
    VertexId max_d = 0;
    for (VertexId u = 0; u < graph_.num_vertices(); ++u) {
      max_d = std::max(max_d, graph_.degree(u));
    }
    std::vector<std::vector<VertexId>> bins(max_d + 1);
    for (VertexId u = 0; u < graph_.num_vertices(); ++u) {
      bins[ed_[u]].push_back(u);
    }
    for (VertexId bin = max_d;; --bin) {
      // Index loop: reinsertions go to strictly lower bins, never this one.
      for (std::size_t i = 0; i < bins[bin].size(); ++i) {
        const VertexId u = bins[bin][i];
        if (run_.result.roles[u] != Role::Unknown) continue;  // processed
        if (ed_[u] < bin) {
          bins[ed_[u]].push_back(u);  // stale entry, drop down
          continue;
        }
        if (governor_.checkpoint()) return;
        process_vertex(u);
      }
      if (bin == 0) break;
    }
  }

  void process_vertex(VertexId u) {
    if (run_.result.roles[u] != Role::Unknown) return;
    check_core(u);
    if (run_.result.roles[u] == Role::Core) cluster_core(u);
  }

  /// Ensures sim[e] is decided or carries its cached min_cn bound; applies
  /// the predicate pruning on first touch. Returns the current value.
  std::int32_t touch_arc(VertexId u, EdgeId e) {
    std::int32_t value = sim_[e];
    if (value != kSimUncached) return value;
    const VertexId v = graph_.dst()[e];
    const VertexId du = graph_.degree(u);
    const VertexId dv = graph_.degree(v);
    const std::uint32_t need = min_common_neighbors(params_.eps, du, dv);
    if (need <= 2) {
      value = kSimFlag;
    } else if (need > std::min(du, dv) + 1) {
      value = kNSimFlag;
    } else {
      value = static_cast<std::int32_t>(need);
    }
    sim_[e] = value;
    sim_[graph_.reverse_arc(u, e)] = value;
    if (value == kSimFlag || value == kNSimFlag) {
      // The predicate decides both directions at once (mirror write above):
      // two arcs touched, two pruned. A cached bound (> 0) is not a decision
      // yet — compute_arc counts it when the intersection settles the edge.
      run_.stats.counters.arcs_touched += 2;
      run_.stats.counters.arcs_predicate_pruned += 2;
      apply_decision(u, v, value == kSimFlag);
    }
    return value;
  }

  /// Bookkeeping when arc (u,v) transitions to a decided flag: exactly one
  /// sd/ed update per endpoint per edge.
  void apply_decision(VertexId u, VertexId v, bool sim) {
    if (sim) {
      ++sd_[u];
      ++sd_[v];
    } else {
      --ed_[u];
      --ed_[v];
    }
  }

  /// Runs the intersection kernel for an undecided arc and records the flag
  /// on both directions.
  bool compute_arc(VertexId u, EdgeId e, std::uint32_t min_cn) {
    const VertexId v = graph_.dst()[e];
    ++run_.stats.compsim_invocations;
    bool sim;
    if (options_.collect_breakdown) {
      ScopedAccumTimer timer(run_.stats.similarity_seconds);
      sim = kernel_(graph_.neighbors(u), graph_.neighbors(v), min_cn);
    } else {
      sim = kernel_(graph_.neighbors(u), graph_.neighbors(v), min_cn);
    }
    const std::int32_t flag = sim ? kSimFlag : kNSimFlag;
    sim_[e] = flag;
    sim_[graph_.reverse_arc(u, e)] = flag;
    // One intersection settles both directions: the computed arc plus the
    // mirrored reverse arc (counted as reused, like ppSCAN's u < v rule).
    run_.stats.counters.arcs_touched += 2;
    run_.stats.counters.sims_computed += 1;
    run_.stats.counters.sims_reused += 1;
    apply_decision(u, v, sim);
    return sim;
  }

  void check_core(VertexId u) {
    if (sd_[u] < params_.mu && ed_[u] >= params_.mu) {
      for (EdgeId e = graph_.offset_begin(u); e < graph_.offset_end(u); ++e) {
        std::int32_t value;
        if (options_.collect_breakdown) {
          ScopedAccumTimer timer(run_.stats.pruning_seconds);
          value = touch_arc(u, e);
        } else {
          value = touch_arc(u, e);
        }
        if (value > 0) {
          compute_arc(u, e, static_cast<std::uint32_t>(value));
        }
        if (sd_[u] >= params_.mu || ed_[u] < params_.mu) {
          run_.stats.counters.core_early_exits += 1;
          break;
        }
      }
    } else {
      // sd/ed bounds were already conclusive — the arc loop never ran.
      run_.stats.counters.core_early_exits += 1;
    }
    run_.result.roles[u] =
        sd_[u] >= params_.mu ? Role::Core : Role::NonCore;
  }

  void cluster_core(VertexId u) {
    for (EdgeId e = graph_.offset_begin(u); e < graph_.offset_end(u); ++e) {
      const VertexId v = graph_.dst()[e];
      // Only neighbors already known to be cores take part; the edge to a
      // not-yet-processed core is handled later by ClusterCore(v).
      if (sd_[v] < params_.mu) continue;
      if (uf_.same_set(u, v)) continue;  // union-find pruning
      std::int32_t value = touch_arc(u, e);
      if (value > 0) {
        value = compute_arc(u, e, static_cast<std::uint32_t>(value))
                    ? kSimFlag
                    : kNSimFlag;
      }
      if (value == kSimFlag) {
        run_.stats.counters.uf_unions += uf_.unite(u, v) ? 1 : 0;
      }
    }
  }

  void cluster_noncores() {
    // Cluster id of each set = minimum core id it contains.
    std::vector<VertexId> cluster_id(graph_.num_vertices(), kInvalidVertex);
    for (VertexId u = 0; u < graph_.num_vertices(); ++u) {
      if (run_.result.roles[u] != Role::Core) continue;
      run_.stats.counters.uf_finds += 1;
      const VertexId root =
          uf_.find_counted(u, &run_.stats.counters.uf_find_steps);
      cluster_id[root] = std::min(cluster_id[root], u);
    }
    for (VertexId u = 0; u < graph_.num_vertices(); ++u) {
      if (run_.result.roles[u] != Role::Core) continue;
      run_.stats.counters.uf_finds += 1;
      run_.result.core_cluster_id[u] =
          cluster_id[uf_.find_counted(u, &run_.stats.counters.uf_find_steps)];
    }
    for (VertexId u = 0; u < graph_.num_vertices(); ++u) {
      if (run_.result.roles[u] != Role::Core) continue;
      // The id loops above are cheap and run to completion, so every cid
      // read below is valid; only this intersection loop polls the governor.
      if (governor_.checkpoint()) return;
      for (EdgeId e = graph_.offset_begin(u); e < graph_.offset_end(u); ++e) {
        const VertexId v = graph_.dst()[e];
        if (run_.result.roles[v] == Role::Core) continue;
        std::int32_t value = touch_arc(u, e);
        if (value > 0) {
          value = compute_arc(u, e, static_cast<std::uint32_t>(value))
                      ? kSimFlag
                      : kNSimFlag;
        }
        if (value == kSimFlag) {
          run_.stats.counters.uf_finds += 1;
          run_.result.noncore_memberships.emplace_back(
              v, cluster_id[uf_.find_counted(
                     u, &run_.stats.counters.uf_find_steps)]);
        }
      }
    }
  }

  const CsrGraph& graph_;
  const ScanParams& params_;
  const PscanOptions& options_;
  SimilarFn kernel_;
  RunGovernor governor_;
  bool alloc_ok_ = true;
  std::vector<std::int32_t> sim_;
  std::vector<std::uint32_t> sd_;
  std::vector<std::uint32_t> ed_;
  UnionFind uf_;
  ScanRun run_;
};

}  // namespace

ScanRun pscan(const CsrGraph& graph, const ScanParams& params,
              const PscanOptions& options) {
  return PscanRunner(graph, params, options).run();
}

}  // namespace ppscan
