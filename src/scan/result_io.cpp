#include "scan/result_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ppscan {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("scan result parse error: " + what);
}

char role_char(Role r) {
  switch (r) {
    case Role::Core: return 'C';
    case Role::NonCore: return 'N';
    case Role::Unknown: return 'U';
  }
  return '?';
}

Role char_role(char c) {
  switch (c) {
    case 'C': return Role::Core;
    case 'N': return Role::NonCore;
    case 'U': return Role::Unknown;
    default: fail(std::string("bad role char '") + c + "'");
  }
}

}  // namespace

void write_scan_result(const ScanResult& result, std::ostream& os) {
  os << "PPSCAN-RESULT 1\n";
  os << "n " << result.roles.size() << "\n";
  os << "roles ";
  for (const Role r : result.roles) os << role_char(r);
  os << "\n";
  for (VertexId u = 0; u < result.roles.size(); ++u) {
    if (result.roles[u] == Role::Core) {
      os << "core " << u << ' ' << result.core_cluster_id[u] << "\n";
    }
  }
  for (const auto& [v, cid] : result.noncore_memberships) {
    os << "member " << v << ' ' << cid << "\n";
  }
  os << "end\n";
}

void write_scan_result(const ScanResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_scan_result(result, out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

ScanResult read_scan_result(std::istream& is) {
  std::string token;
  int version = 0;
  if (!(is >> token >> version) || token != "PPSCAN-RESULT" || version != 1) {
    fail("bad header");
  }
  std::size_t n = 0;
  if (!(is >> token >> n) || token != "n") fail("missing vertex count");

  ScanResult result;
  result.core_cluster_id.assign(n, kInvalidVertex);
  if (!(is >> token) || token != "roles") fail("bad roles line");
  std::string roles;
  if (n > 0 && (!(is >> roles) || roles.size() != n)) {
    fail("bad roles line");
  }
  result.roles.reserve(n);
  for (const char c : roles) result.roles.push_back(char_role(c));

  bool saw_end = false;
  while (is >> token) {
    if (token == "end") {
      saw_end = true;
      break;
    }
    VertexId u = 0, cid = 0;
    if (!(is >> u >> cid) || u >= n) fail("bad record after '" + token + "'");
    if (token == "core") {
      if (result.roles[u] != Role::Core) fail("core record for non-core");
      result.core_cluster_id[u] = cid;
    } else if (token == "member") {
      result.noncore_memberships.emplace_back(u, cid);
    } else {
      fail("unknown record '" + token + "'");
    }
  }
  if (!saw_end) fail("missing end marker");
  result.normalize();
  return result;
}

ScanResult read_scan_result(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open result file: " + path);
  return read_scan_result(in);
}

}  // namespace ppscan
