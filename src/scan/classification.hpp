// Parallel hub/outlier classification.
//
// The paper computes hubs and outliers in an O(|V|+|E|) post-pass and does
// not time it; on big graphs the pass is still worth parallelizing, so this
// is the pool-based counterpart of classify_hubs_outliers() (scan_common),
// bit-identical to it and degree-scheduled like the ppSCAN phases.
#pragma once

#include "graph/csr_graph.hpp"
#include "scan/scan_common.hpp"

namespace ppscan {

std::vector<VertexClass> classify_hubs_outliers_parallel(
    const CsrGraph& graph, const ScanResult& result, int num_threads);

}  // namespace ppscan
