#include "scan/quality.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace ppscan {

PairwiseScores pairwise_scores(
    const std::vector<std::vector<VertexId>>& clusters,
    const std::vector<VertexId>& ground_truth) {
  std::uint64_t found_pairs = 0, true_positive = 0;
  for (const auto& cluster : clusters) {
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      for (std::size_t j = i + 1; j < cluster.size(); ++j) {
        ++found_pairs;
        if (ground_truth[cluster[i]] == ground_truth[cluster[j]]) {
          ++true_positive;
        }
      }
    }
  }
  std::map<VertexId, std::uint64_t> truth_sizes;
  for (const VertexId c : ground_truth) ++truth_sizes[c];
  std::uint64_t truth_pairs = 0;
  for (const auto& [c, size] : truth_sizes) {
    truth_pairs += size * (size - 1) / 2;
  }

  PairwiseScores s;
  s.precision = found_pairs
                    ? static_cast<double>(true_positive) /
                          static_cast<double>(found_pairs)
                    : 0;
  s.recall = truth_pairs ? static_cast<double>(true_positive) /
                               static_cast<double>(truth_pairs)
                         : 0;
  s.f1 = (s.precision + s.recall) > 0
             ? 2 * s.precision * s.recall / (s.precision + s.recall)
             : 0;
  return s;
}

double purity(const std::vector<std::vector<VertexId>>& clusters,
              const std::vector<VertexId>& ground_truth) {
  std::uint64_t majority_total = 0, member_total = 0;
  for (const auto& cluster : clusters) {
    std::unordered_map<VertexId, std::uint64_t> votes;
    for (const VertexId v : cluster) ++votes[ground_truth[v]];
    std::uint64_t best = 0;
    for (const auto& [c, count] : votes) best = std::max(best, count);
    majority_total += best;
    member_total += cluster.size();
  }
  return member_total == 0 ? 0.0
                           : static_cast<double>(majority_total) /
                                 static_cast<double>(member_total);
}

namespace {

/// One community per vertex: smallest cluster id for clustered vertices,
/// a fresh singleton id otherwise (see header).
std::vector<VertexId> single_assignment(const CsrGraph& graph,
                                        const ScanResult& result) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> community(n, kInvalidVertex);
  for (VertexId u = 0; u < n; ++u) {
    if (result.roles[u] == Role::Core) {
      community[u] = result.core_cluster_id[u];
    }
  }
  for (const auto& [v, cid] : result.noncore_memberships) {
    community[v] = std::min(community[v], cid);
  }
  // Singletons for the unclustered; ids above n collide with nothing
  // (cluster ids are vertex ids).
  VertexId next_singleton = n;
  for (VertexId u = 0; u < n; ++u) {
    if (community[u] == kInvalidVertex) community[u] = next_singleton++;
  }
  return community;
}

}  // namespace

double modularity(const CsrGraph& graph, const ScanResult& result) {
  const auto community = single_assignment(graph, result);
  const double m2 = static_cast<double>(graph.num_arcs());  // 2|E|
  if (m2 == 0) return 0;

  // Q = Σ_c (intra_c / 2m  -  (vol_c / 2m)²)
  std::unordered_map<VertexId, double> intra, volume;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    volume[community[u]] += graph.degree(u);
    for (const VertexId v : graph.neighbors(u)) {
      if (community[u] == community[v]) intra[community[u]] += 1;  // arcs
    }
  }
  double q = 0;
  for (const auto& [c, vol] : volume) {
    const double internal = intra.count(c) ? intra.at(c) : 0;  // 2·edges
    q += internal / m2 - (vol / m2) * (vol / m2);
  }
  return q;
}

double conductance(const CsrGraph& graph, const std::vector<VertexId>& set) {
  std::vector<bool> inside(graph.num_vertices(), false);
  for (const VertexId v : set) inside[v] = true;

  std::uint64_t cut = 0, vol = 0;
  for (const VertexId u : set) {
    vol += graph.degree(u);
    for (const VertexId v : graph.neighbors(u)) {
      if (!inside[v]) ++cut;
    }
  }
  const std::uint64_t vol_complement = graph.num_arcs() - vol;
  const std::uint64_t denom = std::min(vol, vol_complement);
  return denom == 0 ? 0.0
                    : static_cast<double>(cut) / static_cast<double>(denom);
}

double mean_cluster_conductance(const CsrGraph& graph,
                                const ScanResult& result) {
  const auto clusters = result.canonical_clusters();
  if (clusters.empty()) return 0;
  double sum = 0;
  for (const auto& cluster : clusters) {
    sum += conductance(graph, cluster);
  }
  return sum / static_cast<double>(clusters.size());
}

}  // namespace ppscan
