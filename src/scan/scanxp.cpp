#include "scan/scanxp.hpp"

#include <atomic>

#include "concurrent/executor.hpp"
#include "concurrent/task_scheduler.hpp"
#include "concurrent/union_find.hpp"
#include "setops/intersect.hpp"
#include "util/timer.hpp"

namespace ppscan {

ScanRun scanxp(const CsrGraph& graph, const ScanParams& params,
               const ScanXpOptions& options) {
  WallTimer total;
  const VertexId n = graph.num_vertices();
  ScanRun run;
  run.result.roles.assign(n, Role::Unknown);
  run.result.core_cluster_id.assign(n, kInvalidVertex);

  Executor executor(options.num_threads);
  std::vector<TaskRange> scratch;  // flat boundary array, reused per phase
  const CountFn count = count_fn(options.count_kernel);
  std::vector<std::int32_t> sim(graph.num_arcs(), kSimUncached);
  std::atomic<std::uint64_t> invocations{0};
  const auto degree_of = [&](VertexId u) { return graph.degree(u); };
  const auto all = [](VertexId) { return true; };

  // Phase 1: exhaustive similarity, one full intersection per edge. The
  // u < v owner writes both arc directions; phases are separated by the
  // executor barrier so there are no concurrent readers.
  auto stats = schedule_vertex_tasks(
      executor, n, degree_of, all,
      [&](VertexId u) {
        std::uint64_t local = 0;
        for (EdgeId e = graph.offset_begin(u); e < graph.offset_end(u); ++e) {
          const VertexId v = graph.dst()[e];
          if (u >= v) continue;
          const std::uint64_t common =
              count(graph.neighbors(u), graph.neighbors(v));
          ++local;
          const bool s = similarity_holds(params.eps, common + 2,
                                          graph.degree(u), graph.degree(v));
          const std::int32_t flag = s ? kSimFlag : kNSimFlag;
          sim[e] = flag;
          sim[graph.reverse_arc(u, e)] = flag;
        }
        invocations.fetch_add(local, std::memory_order_relaxed);
      },
      {}, &scratch);
  run.stats.tasks_submitted += stats.tasks_submitted;

  // Phase 2: roles from the similar-degree counts.
  stats = schedule_vertex_tasks(
      executor, n, degree_of, all,
      [&](VertexId u) {
        std::uint32_t sd = 0;
        for (EdgeId e = graph.offset_begin(u); e < graph.offset_end(u); ++e) {
          if (sim[e] == kSimFlag) ++sd;
        }
        run.result.roles[u] = sd >= params.mu ? Role::Core : Role::NonCore;
      },
      {}, &scratch);
  run.stats.tasks_submitted += stats.tasks_submitted;

  // Phase 3: core clustering over similar core-core edges.
  ParallelUnionFind uf(n);
  stats = schedule_vertex_tasks(
      executor, n, degree_of,
      [&](VertexId u) { return run.result.roles[u] == Role::Core; },
      [&](VertexId u) {
        for (EdgeId e = graph.offset_begin(u); e < graph.offset_end(u); ++e) {
          const VertexId v = graph.dst()[e];
          if (u >= v || sim[e] != kSimFlag) continue;
          if (run.result.roles[v] == Role::Core) uf.unite(u, v);
        }
      },
      {}, &scratch);
  run.stats.tasks_submitted += stats.tasks_submitted;

  // Cluster ids: minimum core id per set (CAS-min).
  AtomicArray<VertexId> cluster_id(n, kInvalidVertex);
  stats = schedule_vertex_tasks(
      executor, n, degree_of,
      [&](VertexId u) { return run.result.roles[u] == Role::Core; },
      [&](VertexId u) {
        const VertexId root = uf.find(u);
        VertexId current = cluster_id.load(root);
        while (u < current &&
               !cluster_id.compare_exchange(root, current, u)) {
        }
      },
      {}, &scratch);
  run.stats.tasks_submitted += stats.tasks_submitted;

  // Phase 4: non-core memberships into per-worker buffers (no merge lock),
  // concatenated with a prefix-sum copy at the barrier.
  struct alignas(64) Slot {
    std::vector<std::pair<VertexId, VertexId>> pairs;
  };
  std::vector<Slot> slots(static_cast<std::size_t>(options.num_threads) + 1);
  stats = schedule_vertex_tasks(
      executor, n, degree_of,
      [&](VertexId u) { return run.result.roles[u] == Role::Core; },
      [&](VertexId u) {
        const int w = executor.current_worker();
        auto& local =
            slots[w >= 0 ? static_cast<std::size_t>(w) : slots.size() - 1]
                .pairs;
        for (EdgeId e = graph.offset_begin(u); e < graph.offset_end(u); ++e) {
          const VertexId v = graph.dst()[e];
          if (sim[e] != kSimFlag || run.result.roles[v] == Role::Core) {
            continue;
          }
          local.emplace_back(v, cluster_id.load(uf.find(u)));
        }
      },
      {}, &scratch);
  run.stats.tasks_submitted += stats.tasks_submitted;
  std::size_t member_count = 0;
  for (const auto& s : slots) member_count += s.pairs.size();
  run.result.noncore_memberships.reserve(member_count);
  for (const auto& s : slots) {
    run.result.noncore_memberships.insert(run.result.noncore_memberships.end(),
                                          s.pairs.begin(), s.pairs.end());
  }

  for (VertexId u = 0; u < n; ++u) {
    if (run.result.roles[u] == Role::Core) {
      run.result.core_cluster_id[u] = cluster_id.load(uf.find(u));
    }
  }

  run.result.normalize();
  run.stats.compsim_invocations = invocations.load();
  const ExecutorStats es = executor.stats();
  run.stats.tasks_executed = es.tasks_executed;
  run.stats.steals = es.steals;
  run.stats.busy_seconds = es.busy_seconds;
  run.stats.idle_seconds = es.idle_seconds;
  run.stats.total_seconds = total.elapsed_s();
  return run;
}

}  // namespace ppscan
