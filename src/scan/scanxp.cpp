#include "scan/scanxp.hpp"

#include <atomic>

#include "concurrent/executor.hpp"
#include "concurrent/run_governor.hpp"
#include "concurrent/task_scheduler.hpp"
#include "concurrent/union_find.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "setops/intersect.hpp"
#include "util/timer.hpp"

namespace ppscan {

ScanRun scanxp(const CsrGraph& graph, const ScanParams& params,
               const ScanXpOptions& options) {
  WallTimer total;
  const VertexId n = graph.num_vertices();
  ScanRun run;
  run.result.roles.assign(n, Role::Unknown);
  run.result.core_cluster_id.assign(n, kInvalidVertex);

  RunGovernor governor(options.limits, options.cancel);
  // Charge the big state arrays up front; a budget overshoot (or a real
  // bad_alloc) aborts before any phase and yields the all-Unknown result.
  std::vector<std::int32_t> sim;
  ParallelUnionFind uf;
  // protocol: relaxed-guarded — cluster-id min-CAS, same argument as
  // ppSCAN's cluster_id_ (monotone lowering + phase barrier re-read).
  AtomicArray<VertexId> cluster_id;
  const std::uint64_t state_bytes =
      static_cast<std::uint64_t>(graph.num_arcs()) * sizeof(std::int32_t) +
      static_cast<std::uint64_t>(n) *
          (2 * sizeof(VertexId) + sizeof(std::uint8_t));
  bool alloc_ok = governor.try_charge(state_bytes, "scanxp state arrays");
  if (alloc_ok) {
    try {
      sim.assign(graph.num_arcs(), kSimUncached);
      uf.reset(n);
      cluster_id.assign(n, kInvalidVertex);
    } catch (const std::bad_alloc&) {
      governor.record_alloc_failure(state_bytes, "scanxp state arrays");
      alloc_ok = false;
    }
  }

  Executor executor(options.num_threads);
  executor.install_governor(&governor);
  if (options.trace != nullptr) executor.install_trace(options.trace);
  // Per-worker counter slots (workers 0..N-1, last = master fallback);
  // merged serially after the final executor barrier.
  obs::CounterSlots counters(static_cast<std::size_t>(options.num_threads) +
                             1);
  const auto counter_slot = [&]() -> obs::AlgoCounters& {
    const int w = executor.current_worker();
    return counters.slot(w >= 0 ? static_cast<std::size_t>(w)
                                : counters.size() - 1);
  };
  SchedulerOptions sched;
  sched.governor = &governor;
  std::vector<TaskRange> scratch;  // flat boundary array, reused per phase
  const CountFn count = count_fn(options.count_kernel);
  // protocol: relaxed-counter — CompSim tally, read at the final barrier.
  std::atomic<std::uint64_t> invocations{0};
  const auto degree_of = [&](VertexId u) { return graph.degree(u); };
  const auto all = [](VertexId) { return true; };

  // Governed phase wrapper: skipped entirely once the token tripped,
  // counted as completed only when it reached its barrier uncancelled.
  const auto phase = [&](const char* name, auto&& body) {
    if (governor.should_stop()) return;
    governor.enter_phase(name);
    // Re-check: the cancel_at_phase test hook trips on phase entry.
    if (governor.should_stop()) return;
    PPSCAN_TRACE_SET_PHASE(options.trace, name);
    PPSCAN_TRACE_MASTER_EVENT(options.trace, obs::TraceEventKind::PhaseBegin,
                              name, 0);
    body();
    PPSCAN_TRACE_MASTER_EVENT(options.trace, obs::TraceEventKind::PhaseEnd,
                              name, 0);
    if (!governor.should_stop()) governor.finish_phase();
  };

  if (alloc_ok) {
    // Phase 1: exhaustive similarity, one full intersection per edge. The
    // u < v owner writes both arc directions; phases are separated by the
    // executor barrier so there are no concurrent readers.
    phase("Similarity", [&] {
      const auto stats = schedule_vertex_tasks(
          executor, n, degree_of, all,
          [&](VertexId u) {
            std::uint64_t local = 0;
            obs::AlgoCounters& c = counter_slot();
            for (EdgeId e = graph.offset_begin(u); e < graph.offset_end(u);
                 ++e) {
              const VertexId v = graph.dst()[e];
              if (u >= v) continue;
              const std::uint64_t common =
                  count(graph.neighbors(u), graph.neighbors(v));
              ++local;
              const bool s =
                  similarity_holds(params.eps, common + 2, graph.degree(u),
                                   graph.degree(v));
              const std::int32_t flag = s ? kSimFlag : kNSimFlag;
              sim[e] = flag;
              sim[graph.reverse_arc(u, e)] = flag;
              // One intersection per u < v edge decides both directions:
              // computed arc + mirrored (reused) reverse arc, no pruning.
              c.arcs_touched += 2;
              c.sims_computed += 1;
              c.sims_reused += 1;
            }
            invocations.fetch_add(local, std::memory_order_relaxed);
          },
          sched, &scratch);
      run.stats.tasks_submitted += stats.tasks_submitted;
    });

    // Phase 2: roles from the similar-degree counts. Runs only after the
    // similarity phase completed (a cancelled run skips it), so every role
    // it writes is final.
    phase("Roles", [&] {
      const auto stats = schedule_vertex_tasks(
          executor, n, degree_of, all,
          [&](VertexId u) {
            std::uint32_t sd = 0;
            for (EdgeId e = graph.offset_begin(u); e < graph.offset_end(u);
                 ++e) {
              if (sim[e] == kSimFlag) ++sd;
            }
            run.result.roles[u] =
                sd >= params.mu ? Role::Core : Role::NonCore;
          },
          sched, &scratch);
      run.stats.tasks_submitted += stats.tasks_submitted;
    });

    // Phase 3: core clustering over similar core-core edges.
    phase("ClusterCore", [&] {
      const auto stats = schedule_vertex_tasks(
          executor, n, degree_of,
          [&](VertexId u) { return run.result.roles[u] == Role::Core; },
          [&](VertexId u) {
            for (EdgeId e = graph.offset_begin(u); e < graph.offset_end(u);
                 ++e) {
              const VertexId v = graph.dst()[e];
              if (u >= v || sim[e] != kSimFlag) continue;
              if (run.result.roles[v] == Role::Core) {
                counter_slot().uf_unions += uf.unite(u, v) ? 1 : 0;
              }
            }
          },
          sched, &scratch);
      run.stats.tasks_submitted += stats.tasks_submitted;
    });

    // Cluster ids: minimum core id per set (CAS-min).
    phase("InitClusterId", [&] {
      const auto stats = schedule_vertex_tasks(
          executor, n, degree_of,
          [&](VertexId u) { return run.result.roles[u] == Role::Core; },
          [&](VertexId u) {
            obs::AlgoCounters& c = counter_slot();
            c.uf_finds += 1;
            const VertexId root = uf.find_counted(u, &c.uf_find_steps);
            VertexId current = cluster_id.load(root);
            while (u < current &&
                   !cluster_id.compare_exchange(root, current, u)) {
            }
          },
          sched, &scratch);
      run.stats.tasks_submitted += stats.tasks_submitted;
    });

    // Phase 4: non-core memberships into per-worker buffers (no merge
    // lock), concatenated serially after the barrier.
    struct alignas(64) Slot {
      std::vector<std::pair<VertexId, VertexId>> pairs;
    };
    std::vector<Slot> slots(static_cast<std::size_t>(options.num_threads) +
                            1);
    phase("ClusterNonCore", [&] {
      const auto stats = schedule_vertex_tasks(
          executor, n, degree_of,
          [&](VertexId u) { return run.result.roles[u] == Role::Core; },
          [&](VertexId u) {
            const int w = executor.current_worker();
            auto& local =
                slots[w >= 0 ? static_cast<std::size_t>(w)
                             : slots.size() - 1]
                    .pairs;
            for (EdgeId e = graph.offset_begin(u); e < graph.offset_end(u);
                 ++e) {
              const VertexId v = graph.dst()[e];
              if (sim[e] != kSimFlag || run.result.roles[v] == Role::Core) {
                continue;
              }
              obs::AlgoCounters& c = counter_slot();
              c.uf_finds += 1;
              local.emplace_back(
                  v, cluster_id.load(uf.find_counted(u, &c.uf_find_steps)));
            }
          },
          sched, &scratch);
      run.stats.tasks_submitted += stats.tasks_submitted;
    });
    std::size_t member_count = 0;
    for (const auto& s : slots) member_count += s.pairs.size();
    run.result.noncore_memberships.reserve(member_count);
    for (const auto& s : slots) {
      run.result.noncore_memberships.insert(
          run.result.noncore_memberships.end(), s.pairs.begin(),
          s.pairs.end());
    }

    // Serial tail (after the last barrier): the master fallback slot.
    obs::AlgoCounters& mc = counters.slot(counters.size() - 1);
    for (VertexId u = 0; u < n; ++u) {
      if (run.result.roles[u] == Role::Core) {
        mc.uf_finds += 1;
        run.result.core_cluster_id[u] =
            cluster_id.load(uf.find_counted(u, &mc.uf_find_steps));
      }
    }
  }

  run.result.normalize();
  // The executor barrier above ordered every worker's slot writes before
  // this serial merge.
  run.stats.counters = counters.merged();
  run.stats.runtime_kind = to_string(RuntimeKind::WorkSteal);
  run.stats.compsim_invocations = invocations.load(std::memory_order_relaxed);
  const ExecutorStats es = executor.stats();
  run.stats.tasks_executed = es.tasks_executed;
  run.stats.steals = es.steals;
  run.stats.busy_seconds = es.busy_seconds;
  run.stats.idle_seconds = es.idle_seconds;
  run.stats.total_seconds = total.elapsed_s();
  record_governance(governor, run.stats);
  return run;
}

}  // namespace ppscan
