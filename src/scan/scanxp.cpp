#include "scan/scanxp.hpp"

#include <atomic>
#include <mutex>

#include "concurrent/task_scheduler.hpp"
#include "concurrent/thread_pool.hpp"
#include "concurrent/union_find.hpp"
#include "setops/intersect.hpp"
#include "util/timer.hpp"

namespace ppscan {

ScanRun scanxp(const CsrGraph& graph, const ScanParams& params,
               const ScanXpOptions& options) {
  WallTimer total;
  const VertexId n = graph.num_vertices();
  ScanRun run;
  run.result.roles.assign(n, Role::Unknown);
  run.result.core_cluster_id.assign(n, kInvalidVertex);

  ThreadPool pool(options.num_threads);
  const CountFn count = count_fn(options.count_kernel);
  std::vector<std::int32_t> sim(graph.num_arcs(), kSimUncached);
  std::atomic<std::uint64_t> invocations{0};
  const auto degree_of = [&](VertexId u) { return graph.degree(u); };
  const auto all = [](VertexId) { return true; };

  // Phase 1: exhaustive similarity, one full intersection per edge. The
  // u < v owner writes both arc directions; phases are separated by the
  // pool barrier so there are no concurrent readers.
  auto stats = schedule_vertex_tasks(
      pool, n, degree_of, all,
      [&](VertexId u) {
        std::uint64_t local = 0;
        for (EdgeId e = graph.offset_begin(u); e < graph.offset_end(u); ++e) {
          const VertexId v = graph.dst()[e];
          if (u >= v) continue;
          const std::uint64_t common =
              count(graph.neighbors(u), graph.neighbors(v));
          ++local;
          const bool s = similarity_holds(params.eps, common + 2,
                                          graph.degree(u), graph.degree(v));
          const std::int32_t flag = s ? kSimFlag : kNSimFlag;
          sim[e] = flag;
          sim[graph.reverse_arc(u, e)] = flag;
        }
        invocations.fetch_add(local, std::memory_order_relaxed);
      });
  run.stats.tasks_submitted += stats.tasks_submitted;

  // Phase 2: roles from the similar-degree counts.
  stats = schedule_vertex_tasks(
      pool, n, degree_of, all,
      [&](VertexId u) {
        std::uint32_t sd = 0;
        for (EdgeId e = graph.offset_begin(u); e < graph.offset_end(u); ++e) {
          if (sim[e] == kSimFlag) ++sd;
        }
        run.result.roles[u] = sd >= params.mu ? Role::Core : Role::NonCore;
      });
  run.stats.tasks_submitted += stats.tasks_submitted;

  // Phase 3: core clustering over similar core-core edges.
  ParallelUnionFind uf(n);
  stats = schedule_vertex_tasks(
      pool, n, degree_of,
      [&](VertexId u) { return run.result.roles[u] == Role::Core; },
      [&](VertexId u) {
        for (EdgeId e = graph.offset_begin(u); e < graph.offset_end(u); ++e) {
          const VertexId v = graph.dst()[e];
          if (u >= v || sim[e] != kSimFlag) continue;
          if (run.result.roles[v] == Role::Core) uf.unite(u, v);
        }
      });
  run.stats.tasks_submitted += stats.tasks_submitted;

  // Cluster ids: minimum core id per set (CAS-min).
  AtomicArray<VertexId> cluster_id(n, kInvalidVertex);
  stats = schedule_vertex_tasks(
      pool, n, degree_of,
      [&](VertexId u) { return run.result.roles[u] == Role::Core; },
      [&](VertexId u) {
        const VertexId root = uf.find(u);
        VertexId current = cluster_id.load(root);
        while (u < current &&
               !cluster_id.compare_exchange(root, current, u)) {
        }
      });
  run.stats.tasks_submitted += stats.tasks_submitted;

  // Phase 4: non-core memberships, buffered per task then merged.
  std::mutex merge_mutex;
  stats = schedule_vertex_tasks(
      pool, n, degree_of,
      [&](VertexId u) { return run.result.roles[u] == Role::Core; },
      [&](VertexId u) {
        std::vector<std::pair<VertexId, VertexId>> local;
        for (EdgeId e = graph.offset_begin(u); e < graph.offset_end(u); ++e) {
          const VertexId v = graph.dst()[e];
          if (sim[e] != kSimFlag || run.result.roles[v] == Role::Core) {
            continue;
          }
          local.emplace_back(v, cluster_id.load(uf.find(u)));
        }
        if (!local.empty()) {
          std::lock_guard lock(merge_mutex);
          run.result.noncore_memberships.insert(
              run.result.noncore_memberships.end(), local.begin(),
              local.end());
        }
      });
  run.stats.tasks_submitted += stats.tasks_submitted;

  for (VertexId u = 0; u < n; ++u) {
    if (run.result.roles[u] == Role::Core) {
      run.result.core_cluster_id[u] = cluster_id.load(uf.find(u));
    }
  }

  run.result.normalize();
  run.stats.compsim_invocations = invocations.load();
  run.stats.total_seconds = total.elapsed_s();
  return run;
}

}  // namespace ppscan
