// Vertex relabeling.
//
// SCAN implementations commonly renumber vertices by non-increasing degree
// before clustering: hubs land in adjacent ids, which improves the locality
// of the edge-property arrays and lets range-based task bundles (Algorithm
// 5) start with the heavy vertices. The clustering itself is
// permutation-equivariant, which test_relabel verifies and
// bench_ablation_relabel measures.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "scan/scan_common.hpp"

namespace ppscan {

/// A bijection old-id → new-id plus its inverse.
struct Relabeling {
  std::vector<VertexId> to_new;  // to_new[old] = new
  std::vector<VertexId> to_old;  // to_old[new] = old
};

/// Permutation sorting vertices by non-increasing degree (ties by old id,
/// so the result is deterministic).
Relabeling degree_descending_order(const CsrGraph& graph);

/// Arbitrary permutation from explicit new-id assignments; throws
/// std::invalid_argument unless `to_new` is a bijection on [0, n).
Relabeling make_relabeling(std::vector<VertexId> to_new);

/// The same graph with vertices renumbered by `relabeling`.
CsrGraph apply_relabeling(const CsrGraph& graph, const Relabeling& relabeling);

/// Maps a clustering computed on the relabeled graph back to original ids,
/// so callers can relabel internally without exposing new ids.
ScanResult map_result_to_original(const ScanResult& relabeled,
                                  const Relabeling& relabeling);

}  // namespace ppscan
