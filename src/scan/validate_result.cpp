#include "scan/validate_result.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "concurrent/union_find.hpp"
#include "setops/intersect.hpp"

namespace ppscan {
namespace {

std::string vtx(VertexId u) { return std::to_string(u); }

bool edge_similar(const CsrGraph& graph, const ScanParams& params, VertexId u,
                  VertexId v) {
  const std::uint32_t need =
      min_common_neighbors(params.eps, graph.degree(u), graph.degree(v));
  return similar_merge_early_stop(graph.neighbors(u), graph.neighbors(v),
                                  need);
}

}  // namespace

ValidationReport validate_scan_result(const CsrGraph& graph,
                                      const ScanParams& params,
                                      const ScanResult& result,
                                      ValidateMode mode) {
  const bool partial = mode == ValidateMode::Partial;
  ValidationReport report;
  const VertexId n = graph.num_vertices();
  if (result.roles.size() != n || result.core_cluster_id.size() != n) {
    report.fail("result arrays do not match the graph's vertex count");
    return report;
  }

  // Similarity of every edge (each direction checked from cached compute).
  std::vector<std::vector<bool>> similar(n);
  for (VertexId u = 0; u < n; ++u) {
    const auto nbrs = graph.neighbors(u);
    similar[u].resize(nbrs.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      similar[u][i] = edge_similar(graph, params, u, nbrs[i]);
    }
  }

  // 1. Roles. Every decided role must equal the ground truth (a role is a
  // function of the graph alone); Unknown is allowed only in partial mode.
  std::vector<bool> true_core(n, false);
  for (VertexId u = 0; u < n; ++u) {
    std::uint32_t sd = 0;
    for (const bool s : similar[u]) sd += s ? 1 : 0;
    true_core[u] = sd >= params.mu;
    const Role expected = true_core[u] ? Role::Core : Role::NonCore;
    if (result.roles[u] == Role::Unknown) {
      if (partial) continue;
      report.fail("vertex " + vtx(u) + " has Unknown role");
      return report;
    }
    if (result.roles[u] != expected) {
      report.fail("vertex " + vtx(u) + " role mismatch (" +
                  std::to_string(sd) + " similar neighbors, mu=" +
                  std::to_string(params.mu) + ")");
      return report;
    }
  }

  // 2. Core clusters: ground-truth components of the similar core-core
  // subgraph. (True roles, not recorded ones, so partial mode compares the
  // labeled prefix against the real partition.)
  UnionFind uf(n);
  for (VertexId u = 0; u < n; ++u) {
    if (!true_core[u]) continue;
    const auto nbrs = graph.neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (similar[u][i] && true_core[nbrs[i]]) uf.unite(u, nbrs[i]);
    }
  }
  // Cluster *ids* are a labeling convention (SCAN numbers clusters in BFS
  // order, pSCAN/ppSCAN by minimum core id); what Definition 2.9 fixes is
  // the partition. Full mode checks the recorded ids induce exactly the
  // expected components via a root ↔ id bijection. Partial mode keeps the
  // id → root direction (a partial run must never merge two distinct true
  // clusters — unions are sound facts) but drops root → id (an interrupted
  // union-find legitimately splits a cluster) and allows unlabeled cores.
  std::map<VertexId, VertexId> root_to_id, id_to_root;
  for (VertexId u = 0; u < n; ++u) {
    if (result.roles[u] == Role::Core) {
      const VertexId root = uf.find(u);
      const VertexId id = result.core_cluster_id[u];
      if (id == kInvalidVertex) {
        if (partial) continue;  // clustering phase never labeled this core
        report.fail("core " + vtx(u) + " has no cluster id");
        return report;
      }
      const auto [it, fresh] = root_to_id.emplace(root, id);
      if (!fresh && it->second != id && !partial) {
        report.fail("core " + vtx(u) + " splits its cluster: id " + vtx(id) +
                    " vs " + vtx(it->second));
        return report;
      }
      const auto [rit, rfresh] = id_to_root.emplace(id, root);
      if (!rfresh && rit->second != root) {
        report.fail("cluster id " + vtx(id) +
                    " merges two core components (at core " + vtx(u) + ")");
        return report;
      }
    } else if (result.core_cluster_id[u] != kInvalidVertex) {
      report.fail("non-core " + vtx(u) + " carries a core cluster id");
      return report;
    }
  }

  // 3. Memberships, both directions, compared in root space. Partial mode
  // checks containment only: every recorded pair must be backed by a real
  // ε-similar core edge, but pairs the run never reached may be missing.
  std::set<std::pair<VertexId, VertexId>> expected_members;
  for (VertexId u = 0; u < n; ++u) {
    if (!true_core[u]) continue;
    const auto nbrs = graph.neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      if (similar[u][i] && !true_core[v]) {
        expected_members.emplace(v, uf.find(u));
      }
    }
  }
  std::set<std::pair<VertexId, VertexId>> actual_members;
  for (const auto& [v, id] : result.noncore_memberships) {
    const auto it = id_to_root.find(id);
    if (it == id_to_root.end()) {
      report.fail("membership of " + vtx(v) + " references unknown cluster " +
                  vtx(id));
      return report;
    }
    actual_members.emplace(v, it->second);
  }
  if (partial) {
    for (const auto& pair : actual_members) {
      if (expected_members.count(pair) == 0) {
        report.fail("membership of " + vtx(pair.first) +
                    " is not backed by an ε-similar core edge");
        return report;
      }
    }
  } else if (actual_members != expected_members) {
    report.fail("membership list mismatch: " +
                std::to_string(actual_members.size()) + " recorded vs " +
                std::to_string(expected_members.size()) + " expected");
    return report;
  }

  return report;
}

}  // namespace ppscan
