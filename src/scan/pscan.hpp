// Sequential pSCAN (Chang et al., ICDE 2016) — paper Algorithm 2, the
// state-of-the-art sequential baseline ppSCAN parallelizes.
//
// Pruning techniques implemented (paper §3.2):
//  * similarity-predicate pruning — Sim/NSim decided from degrees alone
//    where possible, otherwise the min_cn bound is cached per arc;
//  * min-max pruning — per-vertex similar/effective degree bounds sd/ed with
//    early termination of CheckCore;
//  * similarity-value reuse — each decided arc is mirrored onto its reverse
//    arc (binary-search lookup), so each edge is intersected at most once;
//  * dynamic non-increasing ed order — vertices are processed from a lazy
//    bucket queue keyed by the current effective degree;
//  * union-find pruning — cores already in the same set skip the
//    similarity computation during core clustering.
#pragma once

#include "scan/scan_common.hpp"
#include "setops/intersect.hpp"

namespace ppscan {

struct PscanOptions {
  /// Intersection kernel for CompSim. pSCAN's own kernel is the merge with
  /// early termination; other kinds are exposed for ablation.
  IntersectKind kernel = IntersectKind::MergeEarlyStop;
  /// Collect the Figure-1 time breakdown (adds clock reads on the hot path).
  bool collect_breakdown = false;
  /// Process vertices in dynamic non-increasing ed order (pSCAN default).
  /// Off = simple ascending vertex order, for the ordering ablation.
  bool dynamic_ed_order = true;

  /// Run governance (see RunGovernor); the sequential runner polls via
  /// checkpoint() at per-vertex granularity. Default limits govern nothing.
  RunLimits limits;
  /// Optional external cancel token; not owned, may be null.
  CancelToken* cancel = nullptr;

  /// Optional trace collector (obs/trace.hpp): phase spans land on its
  /// master slot. Not owned; must outlive the run.
  obs::TraceCollector* trace = nullptr;
};

ScanRun pscan(const CsrGraph& graph, const ScanParams& params,
              const PscanOptions& options = {});

}  // namespace ppscan
