#include "scan/anyscan_lite.hpp"

#include <algorithm>
#include <atomic>

#include "concurrent/task_scheduler.hpp"
#include "concurrent/executor.hpp"
#include "concurrent/run_governor.hpp"
#include "concurrent/union_find.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "setops/intersect.hpp"
#include "util/thread_safety.hpp"
#include "util/timer.hpp"

namespace ppscan {
namespace {

/// Per-arc decision without any cross-vertex sharing: the owner of the
/// *directed* arc writes it, so both (u,v) and (v,u) may be computed — the
/// redundancy anySCAN accepts.
struct ArcEval {
  std::int32_t flag;  // kSimFlag / kNSimFlag
  bool computed;      // true when an actual intersection ran
};

ArcEval evaluate_arc(const CsrGraph& graph, const ScanParams& params,
                     VertexId u, VertexId v) {
  const VertexId du = graph.degree(u);
  const VertexId dv = graph.degree(v);
  const std::uint32_t need = min_common_neighbors(params.eps, du, dv);
  if (need <= 2) return {kSimFlag, false};
  if (need > std::min(du, dv) + 1) return {kNSimFlag, false};
  const bool sim =
      similar_merge_early_stop(graph.neighbors(u), graph.neighbors(v), need);
  return {sim ? kSimFlag : kNSimFlag, true};
}

}  // namespace

ScanRun anyscan_lite(const CsrGraph& graph, const ScanParams& params,
                     const AnyScanLiteOptions& options) {
  WallTimer total;
  const VertexId n = graph.num_vertices();
  ScanRun run;
  run.result.roles.assign(n, Role::Unknown);
  run.result.core_cluster_id.assign(n, kInvalidVertex);

  RunGovernor governor(options.limits, options.cancel);
  // Charge the big state arrays before allocating; overshoot (or bad_alloc)
  // aborts before any phase with the all-Unknown result.
  std::vector<std::int32_t> sim;  // per-arc cache owned by the arc's tail
  ParallelUnionFind uf;
  std::vector<VertexId> cluster_id;
  const std::uint64_t state_bytes =
      static_cast<std::uint64_t>(graph.num_arcs()) * sizeof(std::int32_t) +
      static_cast<std::uint64_t>(n) *
          (2 * sizeof(VertexId) + sizeof(std::uint8_t));
  bool alloc_ok = governor.try_charge(state_bytes, "anyscan state arrays");
  if (alloc_ok) {
    try {
      sim.assign(graph.num_arcs(), kSimUncached);
      uf.reset(n);
      cluster_id.assign(n, kInvalidVertex);
    } catch (const std::bad_alloc&) {
      governor.record_alloc_failure(state_bytes, "anyscan state arrays");
      alloc_ok = false;
    }
  }

  Executor pool(options.num_threads);
  pool.install_governor(&governor);
  if (options.trace != nullptr) pool.install_trace(options.trace);
  // Per-worker counter slots (workers 0..N-1, last = master fallback);
  // merged serially after the final phase barrier.
  obs::CounterSlots counters(static_cast<std::size_t>(options.num_threads) +
                             1);
  const auto counter_slot = [&]() -> obs::AlgoCounters& {
    const int w = pool.current_worker();
    return counters.slot(w >= 0 ? static_cast<std::size_t>(w)
                                : counters.size() - 1);
  };
  SchedulerOptions sched;
  sched.governor = &governor;
  // protocol: relaxed-counter — CompSim tally, read at the final barrier.
  std::atomic<std::uint64_t> invocations{0};
  const auto degree_of = [&](VertexId u) { return graph.degree(u); };

  const auto phase = [&](const char* name, auto&& body) {
    if (governor.should_stop()) return;
    governor.enter_phase(name);
    // Re-check: the cancel_at_phase test hook trips on phase entry.
    if (governor.should_stop()) return;
    PPSCAN_TRACE_SET_PHASE(options.trace, name);
    PPSCAN_TRACE_MASTER_EVENT(options.trace, obs::TraceEventKind::PhaseBegin,
                              name, 0);
    body();
    PPSCAN_TRACE_MASTER_EVENT(options.trace, obs::TraceEventKind::PhaseEnd,
                              name, 0);
    if (!governor.should_stop()) governor.finish_phase();
  };

  if (alloc_ok) {
    // Role computing, block by block (the anytime-style outer iteration).
    // Each role is decided from the vertex's own arcs alone, so every role
    // written before a trip is final.
    phase("Roles", [&] {
      for (VertexId block_begin = 0; block_begin < n;
           block_begin += options.block_size) {
        if (governor.checkpoint()) break;
        const VertexId block_end =
            std::min<VertexId>(block_begin + options.block_size, n);
        const VertexId width = block_end - block_begin;
        schedule_vertex_tasks(
            pool, width,
            [&](VertexId i) { return graph.degree(block_begin + i); },
            [](VertexId) { return true; },
            [&](VertexId i) {
              const VertexId u = block_begin + i;
              // Dynamic scratch per vertex — deliberately allocation-heavy.
              std::vector<std::int32_t> local_flags;
              local_flags.reserve(graph.degree(u));
              std::uint32_t sd = 0;
              std::uint32_t ed = graph.degree(u);
              std::uint64_t local_invocations = 0;
              obs::AlgoCounters& c = counter_slot();
              for (EdgeId e = graph.offset_begin(u); e < graph.offset_end(u);
                   ++e) {
                const ArcEval eval =
                    evaluate_arc(graph, params, u, graph.dst()[e]);
                // Each direction is evaluated by its own tail (anySCAN's
                // accepted redundancy): one touched arc, pruned or computed.
                c.arcs_touched += 1;
                if (eval.computed) {
                  ++local_invocations;
                  c.sims_computed += 1;
                } else {
                  c.arcs_predicate_pruned += 1;
                }
                sim[e] = eval.flag;
                local_flags.push_back(eval.flag);
                if (eval.flag == kSimFlag) {
                  ++sd;
                } else {
                  --ed;
                }
                if (sd >= params.mu || ed < params.mu) {  // local min-max
                  c.core_early_exits += 1;
                  break;
                }
              }
              run.result.roles[u] =
                  sd >= params.mu ? Role::Core : Role::NonCore;
              invocations.fetch_add(local_invocations,
                                    std::memory_order_relaxed);
            },
            sched);
      }
    });

    // Clustering: cores complete their arc evaluations (a second source of
    // redundancy — edges cut short by the role phase are recomputed).
    // guards: core_noncore_sim_edges — workers merge their local batches.
    CheckedMutex merge_mutex;
    std::vector<std::pair<VertexId, VertexId>> core_noncore_sim_edges;
    phase("ClusterCore", [&] {
      schedule_vertex_tasks(
          pool, n, degree_of,
          [&](VertexId u) { return run.result.roles[u] == Role::Core; },
          [&](VertexId u) {
            std::vector<std::pair<VertexId, VertexId>> local;
            std::uint64_t local_invocations = 0;
            obs::AlgoCounters& c = counter_slot();
            for (EdgeId e = graph.offset_begin(u); e < graph.offset_end(u);
                 ++e) {
              const VertexId v = graph.dst()[e];
              std::int32_t flag = sim[e];
              if (flag == kSimUncached) {
                const ArcEval eval = evaluate_arc(graph, params, u, v);
                c.arcs_touched += 1;
                if (eval.computed) {
                  ++local_invocations;
                  c.sims_computed += 1;
                } else {
                  c.arcs_predicate_pruned += 1;
                }
                flag = eval.flag;
                sim[e] = flag;
              }
              if (flag != kSimFlag) continue;
              if (run.result.roles[v] == Role::Core) {
                if (u < v) c.uf_unions += uf.unite(u, v) ? 1 : 0;
              } else {
                local.emplace_back(u, v);
              }
            }
            invocations.fetch_add(local_invocations,
                                  std::memory_order_relaxed);
            if (!local.empty()) {
              CheckedLock lock(merge_mutex);
              core_noncore_sim_edges.insert(core_noncore_sim_edges.end(),
                                            local.begin(), local.end());
            }
          },
          sched);
    });

    // Cluster ids (min core id per set), then non-core memberships. Skipped
    // when the run tripped earlier so an unclustered core keeps
    // kInvalidVertex instead of being fabricated into a singleton cluster.
    phase("AssignIds", [&] {
      // Serial phase body — the calling thread uses the master fallback slot.
      obs::AlgoCounters& c = counters.slot(counters.size() - 1);
      for (VertexId u = 0; u < n; ++u) {
        if (run.result.roles[u] != Role::Core) continue;
        c.uf_finds += 1;
        const VertexId root = uf.find_counted(u, &c.uf_find_steps);
        cluster_id[root] = std::min(cluster_id[root], u);
      }
      for (VertexId u = 0; u < n; ++u) {
        if (run.result.roles[u] != Role::Core) continue;
        c.uf_finds += 1;
        run.result.core_cluster_id[u] =
            cluster_id[uf.find_counted(u, &c.uf_find_steps)];
      }
      for (const auto& [core, noncore] : core_noncore_sim_edges) {
        c.uf_finds += 1;
        run.result.noncore_memberships.emplace_back(
            noncore, cluster_id[uf.find_counted(core, &c.uf_find_steps)]);
      }
    });
  }

  run.result.normalize();
  // Phase barriers ordered every worker's slot writes before this merge.
  run.stats.counters = counters.merged();
  run.stats.runtime_kind = to_string(RuntimeKind::WorkSteal);
  const ExecutorStats pool_stats = pool.stats();
  run.stats.tasks_executed = pool_stats.tasks_executed;
  run.stats.steals = pool_stats.steals;
  run.stats.busy_seconds = pool_stats.busy_seconds;
  run.stats.idle_seconds = pool_stats.idle_seconds;
  run.stats.compsim_invocations = invocations.load(std::memory_order_relaxed);
  run.stats.total_seconds = total.elapsed_s();
  record_governance(governor, run.stats);
  return run;
}

}  // namespace ppscan
