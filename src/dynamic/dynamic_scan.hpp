// Dynamic structural clustering — the natural follow-up the SCAN-family
// literature pursues after fast static clustering: maintain SCAN results
// under edge insertions and deletions without re-running the algorithm.
//
// The key structural fact making incremental maintenance cheap: inserting
// or deleting edge {u, v} changes the closed neighborhood of *only* u and
// v, so only the arcs incident to u or v can change their similarity value
// (both through the overlap and through the degree in the denominator).
// DynamicScan therefore:
//   1. keeps a mutable sorted adjacency with per-arc similarity flags,
//   2. on update, recomputes exactly the d(u) + d(v) affected arcs and
//      patches the per-vertex similar-neighbor counters they touch,
//   3. derives roles from the counters in O(affected vertices), and
//   4. rebuilds clusters lazily from the cached flags — a union-find sweep
//      over similar core-core edges, O(|V| + |E_sim|), with no
//      intersections at all.
// Step 2 is where static SCAN spends nearly all its time, so updates cost
// O((d(u)+d(v)) · d̄) intersections instead of a full re-run; tests verify
// every update sequence against a from-scratch recompute.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "scan/scan_common.hpp"

namespace ppscan {

class DynamicScan {
 public:
  /// Starts from `graph` (copied into the mutable representation) and
  /// computes the initial similarities.
  DynamicScan(const CsrGraph& graph, const ScanParams& params);

  /// Inserts undirected edge {u, v}; no-op (returns false) if it already
  /// exists or is a self loop. Vertex ids beyond the current range extend
  /// the vertex set.
  bool insert_edge(VertexId u, VertexId v);

  /// Removes undirected edge {u, v}; no-op (returns false) if absent.
  bool remove_edge(VertexId u, VertexId v);

  /// Current clustering (lazily rebuilt after updates); equivalent to
  /// running any static algorithm on the current graph.
  const ScanResult& result();

  /// Current graph snapshot in CSR form (for verification / export).
  [[nodiscard]] CsrGraph snapshot() const;

  [[nodiscard]] VertexId num_vertices() const {
    return checked_vertex_cast(adjacency_.size());
  }
  [[nodiscard]] EdgeId num_edges() const { return num_edges_; }

  [[nodiscard]] VertexId degree(VertexId u) const {
    return checked_vertex_cast(adjacency_[u].size());
  }
  /// i-th (sorted) neighbor of u; lets update streams sample existing
  /// edges for deletion without snapshotting.
  [[nodiscard]] VertexId neighbor_at(VertexId u, VertexId i) const {
    return adjacency_[u][i].neighbor;
  }

  struct UpdateStats {
    std::uint64_t intersections = 0;    // incremental CompSim calls
    std::uint64_t arcs_recomputed = 0;  // affected arcs re-evaluated
    std::uint64_t cluster_rebuilds = 0; // lazy rebuilds triggered
  };
  [[nodiscard]] const UpdateStats& stats() const { return stats_; }

 private:
  struct Arc {
    VertexId neighbor;
    bool similar;
  };

  /// Sorted-by-neighbor arc list of one vertex.
  using ArcList = std::vector<Arc>;

  [[nodiscard]] std::size_t find_slot(VertexId u, VertexId v) const;
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  /// Decides σ_ε for the (u, v) pair from the *current* adjacency.
  [[nodiscard]] bool compute_similarity(VertexId u, VertexId v);

  /// Re-evaluates every arc incident to `center`, patching its own and its
  /// neighbors' similar-degree counters.
  void refresh_vertex(VertexId center);

  void ensure_vertex(VertexId u);
  void rebuild_result();

  ScanParams params_;
  std::vector<ArcList> adjacency_;
  std::vector<std::uint32_t> similar_degree_;  // # similar neighbors
  EdgeId num_edges_ = 0;
  ScanResult result_;
  bool result_valid_ = false;
  UpdateStats stats_;
};

}  // namespace ppscan
