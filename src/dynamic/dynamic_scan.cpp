#include "dynamic/dynamic_scan.hpp"

#include <algorithm>

#include "concurrent/union_find.hpp"
#include "setops/similarity.hpp"

namespace ppscan {

DynamicScan::DynamicScan(const CsrGraph& graph, const ScanParams& params)
    : params_(params) {
  adjacency_.resize(graph.num_vertices());
  similar_degree_.assign(graph.num_vertices(), 0);
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    const auto nbrs = graph.neighbors(u);
    adjacency_[u].reserve(nbrs.size());
    for (const VertexId v : nbrs) {
      adjacency_[u].push_back({v, false});
    }
  }
  num_edges_ = graph.num_edges();

  // Initial similarity pass: each undirected edge once, mirrored.
  for (VertexId u = 0; u < num_vertices(); ++u) {
    for (auto& arc : adjacency_[u]) {
      if (u >= arc.neighbor) continue;
      const bool sim = compute_similarity(u, arc.neighbor);
      if (sim) {
        arc.similar = true;
        adjacency_[arc.neighbor][find_slot(arc.neighbor, u)].similar = true;
        ++similar_degree_[u];
        ++similar_degree_[arc.neighbor];
      }
    }
  }
}

std::size_t DynamicScan::find_slot(VertexId u, VertexId v) const {
  const auto& arcs = adjacency_[u];
  const auto it = std::lower_bound(
      arcs.begin(), arcs.end(), v,
      [](const Arc& arc, VertexId id) { return arc.neighbor < id; });
  return static_cast<std::size_t>(it - arcs.begin());
}

bool DynamicScan::has_edge(VertexId u, VertexId v) const {
  if (u >= num_vertices()) return false;
  const auto slot = find_slot(u, v);
  return slot < adjacency_[u].size() && adjacency_[u][slot].neighbor == v;
}

bool DynamicScan::compute_similarity(VertexId u, VertexId v) {
  ++stats_.intersections;
  const auto du = checked_vertex_cast(adjacency_[u].size());
  const auto dv = checked_vertex_cast(adjacency_[v].size());
  const std::uint32_t min_cn = min_common_neighbors(params_.eps, du, dv);
  std::uint64_t cn = 2;
  std::uint64_t upper_u = du + 2;
  std::uint64_t upper_v = dv + 2;
  if (cn >= min_cn) return true;
  if (upper_u < min_cn || upper_v < min_cn) return false;

  const auto& a = adjacency_[u];
  const auto& b = adjacency_[v];
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].neighbor < b[j].neighbor) {
      ++i;
      if (--upper_u < min_cn) return false;
    } else if (a[i].neighbor > b[j].neighbor) {
      ++j;
      if (--upper_v < min_cn) return false;
    } else {
      ++i;
      ++j;
      if (++cn >= min_cn) return true;
    }
  }
  return cn >= min_cn;
}

void DynamicScan::refresh_vertex(VertexId center) {
  for (auto& arc : adjacency_[center]) {
    ++stats_.arcs_recomputed;
    const bool now = compute_similarity(center, arc.neighbor);
    if (now == arc.similar) continue;
    arc.similar = now;
    adjacency_[arc.neighbor][find_slot(arc.neighbor, center)].similar = now;
    const std::int32_t delta = now ? 1 : -1;
    similar_degree_[center] += delta;
    similar_degree_[arc.neighbor] += delta;
  }
}

void DynamicScan::ensure_vertex(VertexId u) {
  if (u >= num_vertices()) {
    adjacency_.resize(u + 1);
    similar_degree_.resize(u + 1, 0);
  }
}

bool DynamicScan::insert_edge(VertexId u, VertexId v) {
  if (u == v) return false;
  ensure_vertex(std::max(u, v));
  if (has_edge(u, v)) return false;

  adjacency_[u].insert(adjacency_[u].begin() +
                           static_cast<std::ptrdiff_t>(find_slot(u, v)),
                       {v, false});
  adjacency_[v].insert(adjacency_[v].begin() +
                           static_cast<std::ptrdiff_t>(find_slot(v, u)),
                       {u, false});
  ++num_edges_;
  // Only arcs incident to u or v can change (Γ changed only for u, v).
  refresh_vertex(u);
  refresh_vertex(v);
  result_valid_ = false;
  return true;
}

bool DynamicScan::remove_edge(VertexId u, VertexId v) {
  if (u == v || !has_edge(u, v)) return false;

  const auto slot_u = find_slot(u, v);
  const auto slot_v = find_slot(v, u);
  if (adjacency_[u][slot_u].similar) {
    --similar_degree_[u];
    --similar_degree_[v];
  }
  adjacency_[u].erase(adjacency_[u].begin() +
                      static_cast<std::ptrdiff_t>(slot_u));
  adjacency_[v].erase(adjacency_[v].begin() +
                      static_cast<std::ptrdiff_t>(slot_v));
  --num_edges_;
  refresh_vertex(u);
  refresh_vertex(v);
  result_valid_ = false;
  return true;
}

void DynamicScan::rebuild_result() {
  ++stats_.cluster_rebuilds;
  const VertexId n = num_vertices();
  result_ = ScanResult{};
  result_.roles.resize(n);
  result_.core_cluster_id.assign(n, kInvalidVertex);
  for (VertexId u = 0; u < n; ++u) {
    result_.roles[u] =
        similar_degree_[u] >= params_.mu ? Role::Core : Role::NonCore;
  }

  UnionFind uf(n);
  for (VertexId u = 0; u < n; ++u) {
    if (result_.roles[u] != Role::Core) continue;
    for (const auto& arc : adjacency_[u]) {
      if (arc.similar && u < arc.neighbor &&
          result_.roles[arc.neighbor] == Role::Core) {
        uf.unite(u, arc.neighbor);
      }
    }
  }
  std::vector<VertexId> cluster_id(n, kInvalidVertex);
  for (VertexId u = 0; u < n; ++u) {
    if (result_.roles[u] != Role::Core) continue;
    const VertexId root = uf.find(u);
    cluster_id[root] = std::min(cluster_id[root], u);
  }
  for (VertexId u = 0; u < n; ++u) {
    if (result_.roles[u] != Role::Core) continue;
    result_.core_cluster_id[u] = cluster_id[uf.find(u)];
    for (const auto& arc : adjacency_[u]) {
      if (arc.similar && result_.roles[arc.neighbor] != Role::Core) {
        result_.noncore_memberships.emplace_back(arc.neighbor,
                                                 cluster_id[uf.find(u)]);
      }
    }
  }
  result_.normalize();
  result_valid_ = true;
}

const ScanResult& DynamicScan::result() {
  if (!result_valid_) rebuild_result();
  return result_;
}

CsrGraph DynamicScan::snapshot() const {
  std::vector<EdgeId> offsets(static_cast<std::size_t>(num_vertices()) + 1, 0);
  for (VertexId u = 0; u < num_vertices(); ++u) {
    offsets[u + 1] = offsets[u] + adjacency_[u].size();
  }
  std::vector<VertexId> dst;
  dst.reserve(offsets.back());
  for (VertexId u = 0; u < num_vertices(); ++u) {
    for (const auto& arc : adjacency_[u]) dst.push_back(arc.neighbor);
  }
  return CsrGraph(std::move(offsets), std::move(dst));
}

}  // namespace ppscan
