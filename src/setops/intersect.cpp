#include "setops/intersect.hpp"

#include <stdexcept>

namespace ppscan {

std::string to_string(IntersectKind kind) {
  switch (kind) {
    case IntersectKind::MergeEarlyStop: return "merge";
    case IntersectKind::PivotScalar: return "pivot";
    case IntersectKind::PivotAvx2: return "avx2";
    case IntersectKind::PivotAvx512: return "avx512";
    case IntersectKind::Auto: return "auto";
  }
  return "?";
}

IntersectKind parse_intersect_kind(const std::string& name) {
  if (name == "merge") return IntersectKind::MergeEarlyStop;
  if (name == "pivot") return IntersectKind::PivotScalar;
  if (name == "avx2") return IntersectKind::PivotAvx2;
  if (name == "avx512") return IntersectKind::PivotAvx512;
  if (name == "auto") return IntersectKind::Auto;
  throw std::invalid_argument("unknown intersect kind: " + name);
}

bool kernel_supported(IntersectKind kind) {
  switch (kind) {
    case IntersectKind::MergeEarlyStop:
    case IntersectKind::PivotScalar:
    case IntersectKind::Auto:
      return true;
    case IntersectKind::PivotAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case IntersectKind::PivotAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
  }
  return false;
}

IntersectKind resolve_kernel(IntersectKind kind) {
  if (kind == IntersectKind::Auto) {
    if (kernel_supported(IntersectKind::PivotAvx512)) {
      return IntersectKind::PivotAvx512;
    }
    if (kernel_supported(IntersectKind::PivotAvx2)) {
      return IntersectKind::PivotAvx2;
    }
    return IntersectKind::PivotScalar;
  }
  if (!kernel_supported(kind)) {
    throw std::runtime_error("intersect kernel not supported on this CPU: " +
                             to_string(kind));
  }
  return kind;
}

CountFn count_fn(IntersectKind kind) {
  switch (resolve_kernel(kind)) {
    case IntersectKind::MergeEarlyStop:
    case IntersectKind::PivotScalar:
      return &intersect_count_merge;
    case IntersectKind::PivotAvx2:
      return &intersect_count_avx2;
    case IntersectKind::PivotAvx512:
      return &intersect_count_avx512;
    case IntersectKind::Auto:
      break;  // resolved above
  }
  throw std::logic_error("count_fn: unreachable");
}

SimilarFn similar_fn(IntersectKind kind) {
  switch (resolve_kernel(kind)) {
    case IntersectKind::MergeEarlyStop: return &similar_merge_early_stop;
    case IntersectKind::PivotScalar: return &similar_pivot_scalar;
    case IntersectKind::PivotAvx2: return &similar_pivot_avx2;
    case IntersectKind::PivotAvx512: return &similar_pivot_avx512;
    case IntersectKind::Auto: break;  // resolved above
  }
  throw std::logic_error("similar_fn: unreachable");
}

}  // namespace ppscan
