#include "setops/intersect.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/env.hpp"

namespace ppscan {
namespace {

/// Degree-skew ratio above which the Auto dispatcher switches a pair to the
/// galloping kernel: galloping wins once the longer list is so much longer
/// that jumping beats scanning. Tunable via PPSCAN_GALLOP_SKEW (docs/
/// tuning.md); 0 disables galloping entirely. Note the checked parse: a
/// malformed value now warns and keeps the default 64, where the old
/// atol() silently read garbage as 0 and turned galloping off.
std::size_t gallop_skew_threshold() {
  static const std::size_t value =
      static_cast<std::size_t>(env_u64("PPSCAN_GALLOP_SKEW", 64));
  return value;
}

/// The Auto similarity kernel: best vector kernel the CPU supports, except
/// that high degree-skew pairs divert to the galloping kernel. Both sides
/// of the switch decide the identical predicate, so results are
/// bit-identical across thresholds.
bool similar_auto(Neighbors nu, Neighbors nv, std::uint32_t min_cn) {
  static const SimilarFn base =
      similar_fn(resolve_kernel(IntersectKind::Auto));
  const std::size_t threshold = gallop_skew_threshold();
  if (threshold > 0) {
    const std::size_t small = std::min(nu.size(), nv.size());
    const std::size_t large = std::max(nu.size(), nv.size());
    if (large > threshold * std::max<std::size_t>(small, 1)) {
      return similar_gallop(nu, nv, min_cn);
    }
  }
  return base(nu, nv, min_cn);
}

}  // namespace

std::string to_string(IntersectKind kind) {
  switch (kind) {
    case IntersectKind::MergeEarlyStop: return "merge";
    case IntersectKind::PivotScalar: return "pivot";
    case IntersectKind::PivotAvx2: return "avx2";
    case IntersectKind::PivotAvx512: return "avx512";
    case IntersectKind::GallopEarlyStop: return "gallop";
    case IntersectKind::Auto: return "auto";
  }
  return "?";
}

IntersectKind parse_intersect_kind(const std::string& name) {
  if (name == "merge") return IntersectKind::MergeEarlyStop;
  if (name == "pivot") return IntersectKind::PivotScalar;
  if (name == "avx2") return IntersectKind::PivotAvx2;
  if (name == "avx512") return IntersectKind::PivotAvx512;
  if (name == "gallop") return IntersectKind::GallopEarlyStop;
  if (name == "auto") return IntersectKind::Auto;
  throw std::invalid_argument("unknown intersect kind: " + name);
}

bool kernel_supported(IntersectKind kind) {
  switch (kind) {
    case IntersectKind::MergeEarlyStop:
    case IntersectKind::PivotScalar:
    case IntersectKind::GallopEarlyStop:
    case IntersectKind::Auto:
      return true;
    case IntersectKind::PivotAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case IntersectKind::PivotAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
  }
  return false;
}

IntersectKind resolve_kernel(IntersectKind kind) {
  if (kind == IntersectKind::Auto) {
    if (kernel_supported(IntersectKind::PivotAvx512)) {
      return IntersectKind::PivotAvx512;
    }
    if (kernel_supported(IntersectKind::PivotAvx2)) {
      return IntersectKind::PivotAvx2;
    }
    return IntersectKind::PivotScalar;
  }
  if (!kernel_supported(kind)) {
    throw std::runtime_error("intersect kernel not supported on this CPU: " +
                             to_string(kind));
  }
  return kind;
}

CountFn count_fn(IntersectKind kind) {
  switch (resolve_kernel(kind)) {
    case IntersectKind::MergeEarlyStop:
    case IntersectKind::PivotScalar:
      return &intersect_count_merge;
    case IntersectKind::GallopEarlyStop:
      return &intersect_count_galloping;
    case IntersectKind::PivotAvx2:
      return &intersect_count_avx2;
    case IntersectKind::PivotAvx512:
      return &intersect_count_avx512;
    case IntersectKind::Auto:
      break;  // resolved above
  }
  throw std::logic_error("count_fn: unreachable");
}

SimilarFn similar_fn(IntersectKind kind) {
  // Auto is special-cased before resolution: it is the per-pair dispatcher
  // (skew → gallop, else best vector kernel), not a fixed kernel.
  if (kind == IntersectKind::Auto) return &similar_auto;
  switch (resolve_kernel(kind)) {
    case IntersectKind::MergeEarlyStop: return &similar_merge_early_stop;
    case IntersectKind::PivotScalar: return &similar_pivot_scalar;
    case IntersectKind::PivotAvx2: return &similar_pivot_avx2;
    case IntersectKind::PivotAvx512: return &similar_pivot_avx512;
    case IntersectKind::GallopEarlyStop: return &similar_gallop;
    case IntersectKind::Auto: break;  // handled above
  }
  throw std::logic_error("similar_fn: unreachable");
}

}  // namespace ppscan
