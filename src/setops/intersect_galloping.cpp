// Galloping (binary-search) early-terminating intersection for high
// degree-skew pairs.
//
// The linear kernels (merge, pivot, SIMD pivot) walk the longer list one
// element (or one vector width) at a time, so a hub-vs-member pair costs
// O(d_hub). Galloping from the smaller list costs
// O(d_small · log(d_big / d_small)) while preserving pSCAN's
// early-termination bounds exactly (Definition 3.9): every element of the
// longer list the gallop jumps over is a proven mismatch, so the dv bound
// drops by the whole jump at once, and an absent small-side element drops
// du by one — the same decision sequence as the merge, reached in fewer
// probes. The Auto dispatcher selects this kernel per pair when
// max(du,dv)/min(du,dv) exceeds the skew threshold (intersect.cpp).
#include "setops/intersect.hpp"

namespace ppscan {

bool similar_gallop(Neighbors nu, Neighbors nv, std::uint32_t min_cn) {
  if (nu.size() > nv.size()) return similar_gallop(nv, nu, min_cn);
  std::uint32_t cn = 2;
  std::uint64_t du = nu.size() + 2;  // budget of the smaller side
  std::uint64_t dv = nv.size() + 2;  // budget of the larger side
  if (cn >= min_cn) return true;
  if (du < min_cn || dv < min_cn) return false;

  std::size_t cursor = 0;  // first unconsumed position in nv
  for (const VertexId x : nu) {
    if (cursor >= nv.size()) {
      // The longer list is exhausted: every remaining short-side element
      // is a mismatch.
      if (--du < min_cn) return false;
      continue;
    }
    // Gallop: double the step until nv[hi] >= x, then binary-search the
    // bracketed range for the lower bound of x.
    std::size_t lo = cursor;
    std::size_t hi = cursor;
    std::size_t step = 1;
    while (hi < nv.size() && nv[hi] < x) {
      lo = hi;
      hi += step;
      step <<= 1;
    }
    if (hi > nv.size()) hi = nv.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (nv[mid] < x) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    // nv[cursor, lo) are all < x: mismatches charged to the long side in
    // one step.
    if (lo > cursor) {
      dv -= lo - cursor;
      if (dv < min_cn) return false;
      cursor = lo;
    }
    if (lo < nv.size() && nv[lo] == x) {
      ++cursor;
      if (++cn >= min_cn) return true;
    } else {
      if (--du < min_cn) return false;
    }
  }
  return cn >= min_cn;
}

}  // namespace ppscan
