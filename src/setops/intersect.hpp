// Sorted-set intersection kernels for structural-similarity computation.
//
// Every `similar_*` kernel answers CompSim(u,v) for *adjacent* u, v: given
// the two sorted open neighbor lists and the required closed-neighborhood
// overlap `min_cn` (= ⌈ε·√((d_u+1)(d_v+1))⌉), it decides whether
// |Γ(u)∩Γ(v)| = |N(u)∩N(v)| + 2 ≥ min_cn, maintaining pSCAN's
// early-termination bounds (paper Definition 3.9):
//     cn ≤ |Γ(u)∩Γ(v)| ≤ min(du, dv),
//     du/dv start at d+2 and shrink with every observed mismatch,
//     cn starts at 2 (u and v are adjacent) and grows with every match.
//
// Kernel menu:
//   MergeEarlyStop  — scalar merge with the bounds; pSCAN's kernel and the
//                     "ppSCAN-NO" configuration of the paper's Figure 5.
//   PivotScalar     — the paper's pivot-based loop without vector units;
//                     also the tail fallback of both vector kernels.
//   PivotAvx2       — Algorithm 6 ported to 8-lane AVX2.
//   PivotAvx512     — Algorithm 6 verbatim (16-lane,
//                     `_mm512_cmpgt_epi32_mask`).
//   GallopEarlyStop — galloping (binary-search) intersection from the
//                     smaller list, with the same early-termination bounds;
//                     wins on heavy degree skew (hub vs member) where the
//                     linear kernels walk the long list element by element.
//   Auto            — best kernel the executing CPU supports, switching to
//                     GallopEarlyStop per pair when max(du,dv)/min(du,dv)
//                     exceeds a threshold (PPSCAN_GALLOP_SKEW, default 64).
//
// Vector kernels require vertex ids < 2^31 (compares are signed); CsrGraph
// guarantees that for any graph that fits in memory.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "util/types.hpp"

namespace ppscan {

enum class IntersectKind : std::uint8_t {
  MergeEarlyStop,
  PivotScalar,
  PivotAvx2,
  PivotAvx512,
  GallopEarlyStop,
  Auto,
};

[[nodiscard]] std::string to_string(IntersectKind kind);

/// Parses "merge" / "pivot" / "avx2" / "avx512" / "gallop" / "auto".
IntersectKind parse_intersect_kind(const std::string& name);

/// True when the executing CPU can run `kind`.
bool kernel_supported(IntersectKind kind);

/// Resolves Auto to the best supported kernel; other kinds pass through
/// (throws std::runtime_error if unsupported on this CPU).
IntersectKind resolve_kernel(IntersectKind kind);

using Neighbors = std::span<const VertexId>;

// --- individual kernels -----------------------------------------------------

bool similar_merge_early_stop(Neighbors nu, Neighbors nv, std::uint32_t min_cn);
bool similar_pivot_scalar(Neighbors nu, Neighbors nv, std::uint32_t min_cn);
bool similar_pivot_avx2(Neighbors nu, Neighbors nv, std::uint32_t min_cn);
bool similar_pivot_avx512(Neighbors nu, Neighbors nv, std::uint32_t min_cn);
bool similar_gallop(Neighbors nu, Neighbors nv, std::uint32_t min_cn);

/// Function-pointer type of the kernels above.
using SimilarFn = bool (*)(Neighbors, Neighbors, std::uint32_t);

/// Returns the kernel function for `kind` (resolving Auto).
SimilarFn similar_fn(IntersectKind kind);

// --- exact counting (no early termination) ----------------------------------

/// |A ∩ B| by linear merge. Reference for tests and triangle counting.
std::uint64_t intersect_count_merge(Neighbors a, Neighbors b);

/// |A ∩ B| by galloping (binary-search) from the smaller side; the
/// related-work alternative the paper discusses and rejects for pSCAN.
std::uint64_t intersect_count_galloping(Neighbors a, Neighbors b);

/// |A ∩ B| with the pivot-skipping vector loop but no early termination —
/// the exhaustive SIMD intersection SCAN-XP runs on every edge.
std::uint64_t intersect_count_avx2(Neighbors a, Neighbors b);
std::uint64_t intersect_count_avx512(Neighbors a, Neighbors b);

/// |A ∩ B| by branchless block-merge (after Inoue et al., VLDB 2015 —
/// reference [12] of the paper): 4×4 all-pairs vector comparisons per
/// step, advancing whichever block ends first. The paper rejects this
/// family for pSCAN because it cannot early-terminate; it is provided as
/// the related-work point of the kernel study. Requires AVX2.
std::uint64_t intersect_count_blocked_simd(Neighbors a, Neighbors b);

using CountFn = std::uint64_t (*)(Neighbors, Neighbors);

/// Exact-count kernel for `kind`: scalar kinds map to the merge count,
/// vector kinds to their SIMD counts, Auto to the best supported.
CountFn count_fn(IntersectKind kind);

// --- shared pivot tail (exposed for the vector kernels and tests) -----------

namespace detail {

/// Continues a pivot intersection from (off_u, off_v) with live bounds; used
/// as the scalar tail once fewer than one vector width of elements remains.
bool pivot_scalar_tail(Neighbors nu, Neighbors nv, std::size_t off_u,
                       std::size_t off_v, std::uint32_t cn, std::uint64_t du,
                       std::uint64_t dv, std::uint32_t min_cn);

/// Scalar merge-count tail for the vector exact-count kernels.
std::uint64_t merge_count_tail(Neighbors a, Neighbors b, std::size_t i,
                               std::size_t j, std::uint64_t count);

}  // namespace detail

}  // namespace ppscan
