// Exact structural-similarity arithmetic (paper Definitions 2.2 and 3.9).
//
// The predicate  σ_ε(u,v) = |Γ(u)∩Γ(v)| ≥ ε·√((d_u+1)(d_v+1))  is decided
// with integer arithmetic on a rational ε = a/b:
//
//     cn ≥ (a/b)·√P   ⇔   cn²·b² ≥ a²·P      (cn ≥ 0, P = (d_u+1)(d_v+1))
//
// so every algorithm in the library agrees bit-exactly and no result depends
// on floating-point rounding — the same approach as the pSCAN reference
// implementation. 128-bit intermediates rule out overflow for any 32-bit
// degrees and ε denominators up to 10^6.
#pragma once

#include <cstdint>
#include <string>

#include "util/types.hpp"

namespace ppscan {

/// ε as an exact rational in (0, 1].
struct EpsRational {
  std::uint64_t num = 1;
  std::uint64_t den = 1;

  /// Parses decimal text such as "0.2", "0.35", ".5" or "1". Throws
  /// std::invalid_argument outside (0, 1] or on malformed input.
  static EpsRational parse(const std::string& text);

  /// Rational with denominator 10^6 closest to `value` from below.
  static EpsRational from_double(double value);

  [[nodiscard]] double to_double() const {
    return static_cast<double>(num) / static_cast<double>(den);
  }
};

/// True iff cn common closed-neighbors satisfy the similarity predicate for
/// degrees d_u, d_v.
bool similarity_holds(const EpsRational& eps, std::uint64_t cn, VertexId d_u,
                      VertexId d_v);

/// ⌈ε·√((d_u+1)(d_v+1))⌉ as used by the early-termination bounds — the
/// smallest integer cn for which similarity_holds() is true.
std::uint32_t min_common_neighbors(const EpsRational& eps, VertexId d_u,
                                   VertexId d_v);

/// Outcome of the similarity-predicate pruning rules (paper §3.2.2): decide
/// Sim/NSim from degrees alone when possible, else Unknown.
enum class PruneOutcome : std::uint8_t { Sim, NSim, Unknown };

PruneOutcome predicate_prune(const EpsRational& eps, VertexId d_u,
                             VertexId d_v);

}  // namespace ppscan
