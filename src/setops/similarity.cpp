#include "setops/similarity.hpp"

#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace ppscan {
namespace {

using U128 = unsigned __int128;

/// cn²·b² ≥ a²·P with 128-bit intermediates.
bool holds_raw(std::uint64_t cn, std::uint64_t a, std::uint64_t b, U128 p) {
  const U128 lhs = U128(cn) * cn * b * b;
  const U128 rhs = U128(a) * a * p;
  return lhs >= rhs;
}

}  // namespace

EpsRational EpsRational::parse(const std::string& text) {
  std::uint64_t num = 0;
  std::uint64_t den = 1;
  bool seen_digit = false;
  bool seen_dot = false;
  for (const char c : text) {
    if (c == '.') {
      if (seen_dot) throw std::invalid_argument("EpsRational: two dots");
      seen_dot = true;
      continue;
    }
    if (c < '0' || c > '9') {
      throw std::invalid_argument("EpsRational: bad char in '" + text + "'");
    }
    seen_digit = true;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    // num * 10 + digit silently wraps for ~20-digit inputs, which could
    // sneak a wrapped value past the num > den range check below.
    if (num > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      throw std::invalid_argument("EpsRational: overflow in '" + text + "'");
    }
    num = num * 10 + digit;
    if (seen_dot) den *= 10;
    if (den > 1'000'000'000ULL) {
      throw std::invalid_argument("EpsRational: too many decimals");
    }
  }
  if (!seen_digit) throw std::invalid_argument("EpsRational: empty");
  if (num == 0 || num > den) {
    throw std::invalid_argument("EpsRational: ε must be in (0, 1]: " + text);
  }
  const std::uint64_t g = std::gcd(num, den);
  return {num / g, den / g};
}

EpsRational EpsRational::from_double(double value) {
  if (!(value > 0.0) || value > 1.0) {
    throw std::invalid_argument("EpsRational: ε must be in (0, 1]");
  }
  constexpr std::uint64_t kDen = 1'000'000;
  auto num = static_cast<std::uint64_t>(value * kDen + 0.5);
  if (num == 0) num = 1;
  const std::uint64_t g = std::gcd(num, kDen);
  return {num / g, kDen / g};
}

bool similarity_holds(const EpsRational& eps, std::uint64_t cn, VertexId d_u,
                      VertexId d_v) {
  const U128 p = U128(d_u + 1) * (d_v + 1);
  return holds_raw(cn, eps.num, eps.den, p);
}

std::uint32_t min_common_neighbors(const EpsRational& eps, VertexId d_u,
                                   VertexId d_v) {
  const U128 p = U128(d_u + 1) * (d_v + 1);
  // Double-precision first guess, then exact integer fix-up (±2 at most).
  const double guess =
      std::sqrt(static_cast<double>(d_u + 1) * static_cast<double>(d_v + 1)) *
      eps.to_double();
  auto c = static_cast<std::uint64_t>(guess);
  while (!holds_raw(c, eps.num, eps.den, p)) ++c;
  while (c > 0 && holds_raw(c - 1, eps.num, eps.den, p)) --c;
  return static_cast<std::uint32_t>(c);
}

PruneOutcome predicate_prune(const EpsRational& eps, VertexId d_u,
                             VertexId d_v) {
  const std::uint32_t need = min_common_neighbors(eps, d_u, d_v);
  // |Γ(u)∩Γ(v)| for adjacent u,v lies in [2, min(d_u, d_v) + 1].
  if (need <= 2) return PruneOutcome::Sim;
  const VertexId cap = std::min(d_u, d_v) + 1;
  if (need > cap) return PruneOutcome::NSim;
  return PruneOutcome::Unknown;
}

}  // namespace ppscan
