// AVX2 port of the paper's Algorithm 6 (the "CPU server" code path): 8 lanes
// per step, the comparison mask extracted with movemask instead of AVX512's
// native mask registers.
#include <immintrin.h>

#include "setops/intersect.hpp"

namespace ppscan {

namespace {
constexpr std::size_t kLanes = 8;

/// Number of elements in the 8-lane vector strictly below `pivot`.
inline std::uint32_t count_below(const VertexId* ptr, VertexId pivot) {
  const __m256i pivot_v = _mm256_set1_epi32(static_cast<int>(pivot));
  const __m256i eles =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ptr));
  const __m256i gt = _mm256_cmpgt_epi32(pivot_v, eles);
  const auto mask = static_cast<unsigned>(
      _mm256_movemask_ps(_mm256_castsi256_ps(gt)));
  return static_cast<std::uint32_t>(_mm_popcnt_u32(mask));
}

}  // namespace

bool similar_pivot_avx2(Neighbors nu, Neighbors nv, std::uint32_t min_cn) {
  std::uint32_t cn = 2;
  std::uint64_t du = nu.size() + 2;
  std::uint64_t dv = nv.size() + 2;
  if (cn >= min_cn) return true;
  if (du < min_cn || dv < min_cn) return false;

  std::size_t off_u = 0, off_v = 0;
  while (off_u + kLanes <= nu.size() && off_v + kLanes <= nv.size()) {
    while (off_u + kLanes <= nu.size()) {
      const std::uint32_t bit_cnt = count_below(nu.data() + off_u, nv[off_v]);
      off_u += bit_cnt;
      du -= bit_cnt;
      if (du < min_cn) return false;
      if (bit_cnt < kLanes) break;
    }
    if (off_u + kLanes > nu.size()) break;

    while (off_v + kLanes <= nv.size()) {
      const std::uint32_t bit_cnt = count_below(nv.data() + off_v, nu[off_u]);
      off_v += bit_cnt;
      dv -= bit_cnt;
      if (dv < min_cn) return false;
      if (bit_cnt < kLanes) break;
    }
    if (off_v + kLanes > nv.size()) break;

    if (nu[off_u] == nv[off_v]) {
      if (++cn >= min_cn) return true;
      ++off_u;
      ++off_v;
    }
  }

  return detail::pivot_scalar_tail(nu, nv, off_u, off_v, cn, du, dv, min_cn);
}

std::uint64_t intersect_count_blocked_simd(Neighbors a, Neighbors b) {
  constexpr std::size_t kBlock = 4;
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i + kBlock <= a.size() && j + kBlock <= b.size()) {
    // All-pairs comparison of one 4-element block from each side: broadcast
    // each a-element across a 128-bit lane-quad and compare against the
    // b-block; any hit marks one common element. Branch-free inner step —
    // the whole point of the Inoue et al. design.
    const __m128i block_b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.data() + j));
    __m128i hits = _mm_setzero_si128();
    for (std::size_t k = 0; k < kBlock; ++k) {
      const __m128i va = _mm_set1_epi32(static_cast<int>(a[i + k]));
      hits = _mm_or_si128(hits, _mm_cmpeq_epi32(va, block_b));
    }
    count += static_cast<std::uint64_t>(_mm_popcnt_u32(
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(hits)))));
    // Advance the block whose last element is smaller (both when equal).
    const VertexId last_a = a[i + kBlock - 1];
    const VertexId last_b = b[j + kBlock - 1];
    i += last_a <= last_b ? kBlock : 0;
    j += last_b <= last_a ? kBlock : 0;
  }
  return detail::merge_count_tail(a, b, i, j, count);
}

std::uint64_t intersect_count_avx2(Neighbors a, Neighbors b) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i + kLanes <= a.size() && j + kLanes <= b.size()) {
    while (i + kLanes <= a.size()) {
      const std::uint32_t bit_cnt = count_below(a.data() + i, b[j]);
      i += bit_cnt;
      if (bit_cnt < kLanes) break;
    }
    if (i + kLanes > a.size()) break;
    while (j + kLanes <= b.size()) {
      const std::uint32_t bit_cnt = count_below(b.data() + j, a[i]);
      j += bit_cnt;
      if (bit_cnt < kLanes) break;
    }
    if (j + kLanes > b.size()) break;
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    }
  }
  return detail::merge_count_tail(a, b, i, j, count);
}

}  // namespace ppscan
