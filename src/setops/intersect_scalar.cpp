#include "setops/intersect.hpp"

namespace ppscan {

bool similar_merge_early_stop(Neighbors nu, Neighbors nv,
                              std::uint32_t min_cn) {
  std::uint32_t cn = 2;
  std::uint64_t du = nu.size() + 2;
  std::uint64_t dv = nv.size() + 2;
  if (cn >= min_cn) return true;
  if (du < min_cn || dv < min_cn) return false;

  std::size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
      if (--du < min_cn) return false;
    } else if (nu[i] > nv[j]) {
      ++j;
      if (--dv < min_cn) return false;
    } else {
      ++i;
      ++j;
      if (++cn >= min_cn) return true;
    }
  }
  return cn >= min_cn;
}

namespace detail {

bool pivot_scalar_tail(Neighbors nu, Neighbors nv, std::size_t off_u,
                       std::size_t off_v, std::uint32_t cn, std::uint64_t du,
                       std::uint64_t dv, std::uint32_t min_cn) {
  while (off_u < nu.size() && off_v < nv.size()) {
    // Step 1: advance u past everything below the current v pivot.
    const VertexId pivot_v = nv[off_v];
    while (off_u < nu.size() && nu[off_u] < pivot_v) {
      ++off_u;
      if (--du < min_cn) return false;
    }
    if (off_u == nu.size()) break;
    // Step 2: advance v past everything below the (possibly new) u pivot.
    const VertexId pivot_u = nu[off_u];
    while (off_v < nv.size() && nv[off_v] < pivot_u) {
      ++off_v;
      if (--dv < min_cn) return false;
    }
    if (off_v == nv.size()) break;
    // Step 3: record a match.
    if (nu[off_u] == nv[off_v]) {
      if (++cn >= min_cn) return true;
      ++off_u;
      ++off_v;
    }
  }
  return cn >= min_cn;
}

std::uint64_t merge_count_tail(Neighbors a, Neighbors b, std::size_t i,
                               std::size_t j, std::uint64_t count) {
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace detail

bool similar_pivot_scalar(Neighbors nu, Neighbors nv, std::uint32_t min_cn) {
  const std::uint32_t cn = 2;
  const std::uint64_t du = nu.size() + 2;
  const std::uint64_t dv = nv.size() + 2;
  if (cn >= min_cn) return true;
  if (du < min_cn || dv < min_cn) return false;
  return detail::pivot_scalar_tail(nu, nv, 0, 0, cn, du, dv, min_cn);
}

std::uint64_t intersect_count_merge(Neighbors a, Neighbors b) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::uint64_t intersect_count_galloping(Neighbors a, Neighbors b) {
  if (a.size() > b.size()) return intersect_count_galloping(b, a);
  std::uint64_t count = 0;
  std::size_t lo = 0;
  for (const VertexId x : a) {
    // Gallop: double the step until we overshoot x, then binary search the
    // bracketed range.
    std::size_t step = 1;
    std::size_t hi = lo;
    while (hi < b.size() && b[hi] < x) {
      lo = hi;
      hi += step;
      step <<= 1;
    }
    if (hi > b.size()) hi = b.size();
    // Binary search for x in b[lo, hi).
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (b[mid] < x) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < b.size() && b[lo] == x) {
      ++count;
      ++lo;
    }
    if (lo >= b.size()) break;
  }
  return count;
}

}  // namespace ppscan
