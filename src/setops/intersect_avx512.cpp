// Paper Algorithm 6: pivot-based vectorized CompSim with AVX512.
//
// Per 16-lane step, the pivot (the current head of the other list) is
// broadcast and compared against 16 sorted elements; the popcount of the
// comparison mask is exactly the number of elements below the pivot (they
// form a prefix of the vector because the list is sorted), so the offset and
// the upper bound `du`/`dv` advance by bit_cnt in one instruction — fewer
// bound updates and no data-dependent branches inside the scan.
#include <immintrin.h>

#include "setops/intersect.hpp"

namespace ppscan {

namespace {
constexpr std::size_t kLanes = 16;
}

bool similar_pivot_avx512(Neighbors nu, Neighbors nv, std::uint32_t min_cn) {
  std::uint32_t cn = 2;
  std::uint64_t du = nu.size() + 2;
  std::uint64_t dv = nv.size() + 2;
  if (cn >= min_cn) return true;
  if (du < min_cn || dv < min_cn) return false;

  std::size_t off_u = 0, off_v = 0;
  while (off_u + kLanes <= nu.size() && off_v + kLanes <= nv.size()) {
    // Step 1: find the first u-element >= pivot nv[off_v].
    while (off_u + kLanes <= nu.size()) {
      const __m512i pivot = _mm512_set1_epi32(static_cast<int>(nv[off_v]));
      const __m512i u_eles = _mm512_loadu_si512(
          reinterpret_cast<const void*>(nu.data() + off_u));
      const __mmask16 mask = _mm512_cmpgt_epi32_mask(pivot, u_eles);
      const auto bit_cnt = static_cast<std::uint32_t>(
          _mm_popcnt_u32(static_cast<unsigned>(mask)));
      off_u += bit_cnt;
      du -= bit_cnt;
      if (du < min_cn) return false;
      if (bit_cnt < kLanes) break;
    }
    if (off_u + kLanes > nu.size()) break;

    // Step 2: find the first v-element >= pivot nu[off_u].
    while (off_v + kLanes <= nv.size()) {
      const __m512i pivot = _mm512_set1_epi32(static_cast<int>(nu[off_u]));
      const __m512i v_eles = _mm512_loadu_si512(
          reinterpret_cast<const void*>(nv.data() + off_v));
      const __mmask16 mask = _mm512_cmpgt_epi32_mask(pivot, v_eles);
      const auto bit_cnt = static_cast<std::uint32_t>(
          _mm_popcnt_u32(static_cast<unsigned>(mask)));
      off_v += bit_cnt;
      dv -= bit_cnt;
      if (dv < min_cn) return false;
      if (bit_cnt < kLanes) break;
    }
    if (off_v + kLanes > nv.size()) break;

    // Step 3: both heads are >= each other's pivot; on equality it's a match.
    if (nu[off_u] == nv[off_v]) {
      if (++cn >= min_cn) return true;
      ++off_u;
      ++off_v;
    }
  }

  // Fewer than one vector width remains on a side: finish scalar.
  return detail::pivot_scalar_tail(nu, nv, off_u, off_v, cn, du, dv, min_cn);
}

std::uint64_t intersect_count_avx512(Neighbors a, Neighbors b) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i + kLanes <= a.size() && j + kLanes <= b.size()) {
    while (i + kLanes <= a.size()) {
      const __m512i pivot = _mm512_set1_epi32(static_cast<int>(b[j]));
      const __m512i eles =
          _mm512_loadu_si512(reinterpret_cast<const void*>(a.data() + i));
      const auto bit_cnt = static_cast<std::uint32_t>(_mm_popcnt_u32(
          static_cast<unsigned>(_mm512_cmpgt_epi32_mask(pivot, eles))));
      i += bit_cnt;
      if (bit_cnt < kLanes) break;
    }
    if (i + kLanes > a.size()) break;
    while (j + kLanes <= b.size()) {
      const __m512i pivot = _mm512_set1_epi32(static_cast<int>(a[i]));
      const __m512i eles =
          _mm512_loadu_si512(reinterpret_cast<const void*>(b.data() + j));
      const auto bit_cnt = static_cast<std::uint32_t>(_mm_popcnt_u32(
          static_cast<unsigned>(_mm512_cmpgt_epi32_mask(pivot, eles))));
      j += bit_cnt;
      if (bit_cnt < kLanes) break;
    }
    if (j + kLanes > b.size()) break;
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    }
  }
  return detail::merge_count_tail(a, b, i, j, count);
}

}  // namespace ppscan
