#include "util/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ppscan {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt(std::uint64_t v) { return std::to_string(v); }
std::string Table::fmt(std::int64_t v) { return std::to_string(v); }

std::string Table::fmt_percent(double ratio, int precision) {
  if (ratio != ratio) return "-";
  return fmt(ratio * 100.0, precision) + "%";
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  os << "== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  os << '\n';
}

}  // namespace ppscan
