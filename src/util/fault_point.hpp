// Compiled-out-by-default fault injection for chaos testing.
//
// PR 3's fault hooks lived in tests/support/fault_injection.* and could
// only poison task bodies the *test* supplied. That cannot exercise the
// exception firewall or the overload machinery where they actually run —
// inside the executor's task boundary, the serving admission/dispatch
// path, and the GS*-Index query phases. A fault *point* is a named site in
// library code:
//
//   PPSCAN_FAULT_POINT("index.qcorecluster");
//
// With PPSCAN_FAULTS=OFF (the default and every release build) the macro
// expands to ((void)0) — no call, no branch, no symbol; the same
// compile-out bar as PPSCAN_TRACE, and the trace-hotpath lint rule bans
// both macro families from the per-element kernels either way. With
// PPSCAN_FAULTS=ON each hit consults a process-wide registry and, when the
// site is armed, fires one of:
//
//   throw      — std::runtime_error("fault-point <site>"), the poison-query
//                shape the exception firewall must contain
//   bad-alloc  — std::bad_alloc, the allocation-failure shape
//   sleep-ms=N — block the calling thread N ms (slow phase / queue stall)
//
// Arming, from tests: fault::arm("site", spec). From the environment
// (the CI chaos lane and the CLI smoke):
//
//   PPSCAN_FAULT="index.qcoretest:throw:p=0.05;serve.dispatcher:sleep-ms=2"
//
// Spec fields after the action: p=<probability in [0,1]> (deterministic
// Xoshiro draw, default 1), skip=<N> (let the first N hits pass), and
// max=<N> (fire at most N times; default unlimited). fire_count(site)
// reports how often a site actually fired, so a probabilistic soak can
// assert the chaos really happened.
//
// Sites currently compiled in:
//   executor.task       before each claimed task body runs
//   serve.admission     submit()/try_submit() admission
//   serve.dispatcher    dispatcher batch loop (sleep = queue stall)
//   serve.execute       QueryService::execute before the index walk
//   index.qcoretest / index.qcorecluster / index.qlabelcores /
//   index.qmembership   top of each GS*-Index query phase body
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ppscan::fault {

/// What an armed site does on a hit that passes its probability/skip/max
/// gates.
enum class Action : std::uint8_t {
  Throw,     ///< std::runtime_error("fault-point <site>")
  BadAlloc,  ///< std::bad_alloc
  Sleep,     ///< block the calling thread for `sleep_ms`
};

struct Spec {
  Action action = Action::Throw;
  std::uint32_t sleep_ms = 0;
  double probability = 1.0;        ///< per-hit Bernoulli, deterministic RNG
  std::uint64_t skip_first = 0;    ///< hits that pass before arming bites
  std::uint64_t max_fires = ~0ULL; ///< stop firing after this many
  std::uint64_t seed = 0x0fa17ULL; ///< per-site RNG seed (reproducible)
};

#if PPSCAN_FAULTS_ENABLED

/// Arms `site` (replacing any previous arming). Thread-safe.
void arm(const std::string& site, const Spec& spec);

/// Parses one env-style spec list ("site:action[:k=v]...[;site2:...]") and
/// arms every entry. Returns "" on success, else the first parse error.
std::string arm_from_string(const std::string& text);

/// Clears every arming — including anything armed from PPSCAN_FAULT — and
/// zeroes the fire counters. Tests call this in SetUp so a chaos lane's
/// env arming cannot leak into deterministic assertions.
void reset();

/// Times `site` actually fired (threw or slept) since the last reset().
[[nodiscard]] std::uint64_t fire_count(const std::string& site);

/// Every site that fired at least once, for diagnostics.
[[nodiscard]] std::vector<std::string> fired_sites();

/// The hook the macro expands to. Consults the registry (lazily seeded
/// from the PPSCAN_FAULT env var on first use) and fires the armed action.
void maybe_fire(const char* site);

#define PPSCAN_FAULT_POINT(site) ::ppscan::fault::maybe_fire(site)

#else  // PPSCAN_FAULTS_ENABLED

// Compiled out: no call, no registry, no branch. The inline no-op stubs
// keep test code linking without #if at every use.
inline void arm(const std::string&, const Spec&) {}
inline std::string arm_from_string(const std::string&) { return ""; }
inline void reset() {}
inline std::uint64_t fire_count(const std::string&) { return 0; }
inline std::vector<std::string> fired_sites() { return {}; }

#define PPSCAN_FAULT_POINT(site) ((void)0)

#endif  // PPSCAN_FAULTS_ENABLED

/// True in builds that compile the hooks in — tests GTEST_SKIP on false.
inline constexpr bool compiled_in() { return PPSCAN_FAULTS_ENABLED != 0; }

}  // namespace ppscan::fault
