// Minimal command-line flag parser shared by the examples and the benchmark
// harnesses. Supports `--name value` and `--name=value`, typed lookups with
// defaults, and an auto-generated --help listing.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ppscan {

class Flags {
 public:
  /// Parses argv. Non-flag arguments are collected as positionals.
  /// Unknown flags are accepted (they become lookupable values) so harnesses
  /// can share common parsing code.
  Flags(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace ppscan
