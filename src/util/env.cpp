#include "util/env.hpp"

#include <cstdlib>
#include <thread>

namespace ppscan {

double bench_scale() {
  if (const char* s = std::getenv("PPSCAN_SCALE")) {
    const double v = std::strtod(s, nullptr);
    if (v > 0) return v;
  }
  return 1.0;
}

int default_threads() {
  if (const char* s = std::getenv("PPSCAN_THREADS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v > 0) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace ppscan
