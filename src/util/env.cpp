#include "util/env.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <thread>

#include "util/thread_safety.hpp"

namespace ppscan {
namespace {

// Namespace scope rather than function-local statics: -Wthread-safety
// cannot attach guarded_by to a local static, and the one-time-init cost
// is identical for a mutex and a set.
// guards: env_warned — the set of knob names already warned about.
CheckedMutex env_warn_mu;
std::set<std::string> env_warned PPSCAN_GUARDED_BY(env_warn_mu);

// Warn once per (variable, value-class) so a bench loop re-reading a bad
// knob doesn't flood stderr, but the first read of every bad knob is loud.
void warn_once(const char* name, const std::string& value,
               const char* expected, const std::string& fallback) {
  const CheckedLock lock(env_warn_mu);
  if (!env_warned.insert(name).second) return;
  std::fprintf(stderr,
               "ppscan: ignoring %s=\"%s\" (expected %s); using %s\n", name,
               value.c_str(), expected, fallback.c_str());
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

std::optional<std::string> env_string(const char* name) {
  if (const char* v = std::getenv(name)) return std::string(v);
  return std::nullopt;
}

bool env_flag(const char* name, bool fallback) {
  const std::optional<std::string> raw = env_string(name);
  if (!raw) return fallback;
  const std::string v = lower(*raw);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  warn_once(name, *raw, "a boolean (1/0, true/false, yes/no, on/off)",
            fallback ? "true" : "false");
  return fallback;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const std::optional<std::string> raw = env_string(name);
  if (!raw) return fallback;
  const std::string& s = *raw;
  // strtoull happily wraps "-3" to a huge value; reject signs up front.
  const bool looks_numeric =
      !s.empty() && std::isdigit(static_cast<unsigned char>(s.front())) != 0;
  if (looks_numeric) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno == 0 && end != nullptr && *end == '\0') {
      return static_cast<std::uint64_t>(v);
    }
  }
  warn_once(name, s, "an unsigned base-10 integer", std::to_string(fallback));
  return fallback;
}

double env_double(const char* name, double fallback) {
  const std::optional<std::string> raw = env_string(name);
  if (!raw) return fallback;
  const std::string& s = *raw;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (!s.empty() && errno == 0 && end != nullptr && *end == '\0' &&
      std::isfinite(v)) {
    return v;
  }
  warn_once(name, s, "a finite number", std::to_string(fallback));
  return fallback;
}

double bench_scale() {
  const double v = env_double("PPSCAN_SCALE", 1.0);
  if (v > 0) return v;
  warn_once("PPSCAN_SCALE", std::to_string(v), "a positive number", "1");
  return 1.0;
}

int default_threads() {
  // "0" (or unset) means "use the hardware"; anything unparseable warns
  // inside env_u64 and lands on the same default.
  const std::uint64_t v = env_u64("PPSCAN_THREADS", 0);
  if (v >= 1) {
    constexpr std::uint64_t kMax = 4096;  // sanity bound, not a real limit
    return static_cast<int>(v > kMax ? kMax : v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace ppscan
