// Clang Thread Safety Analysis plumbing: the macro layer and the checked
// mutex/lock wrappers every mutex-guarded structure in src/ uses.
//
// PR 4 machine-checked the *atomics* half of our concurrency protocols
// (`// protocol:` annotations, ppscan_lint atomics pass). This header is
// the *mutex* half: guard relationships ("cache_ is guarded by
// cache_mutex_") become compiler-checked contracts under
// `clang -Wthread-safety` instead of prose comments. The analysis is
// purely static — zero runtime cost — and the attributes compile away to
// nothing on non-clang compilers (GCC would reject them under
// -Wattributes -Werror), so local GCC builds are unaffected; the pinned
// clang-18 `lint` CI job runs the actual check
// (tools/lint/check_thread_safety.sh, -Wthread-safety -Werror).
//
// Three rules keep the analysis sound, and ppscan_lint's lock pass
// enforces the parts clang cannot see:
//
//  1. Mutex members are `CheckedMutex`, not raw `std::mutex` (the
//     lock-raw rule). Raw std::mutex carries no capability attribute, so
//     clang silently checks nothing.
//  2. Locking goes through `CheckedLock` (or explicit lock()/unlock()
//     pairs on CheckedMutex). A `std::lock_guard<std::mutex>` over
//     `mu.native()` is invisible to the analysis.
//  3. Condition-variable waits use `CheckedLock::native()` with an
//     *explicit* while-loop, never a predicate lambda reading guarded
//     fields — lambdas don't inherit the enclosing function's capability
//     set, so `cv.wait(lock, [&]{ return guarded_; })` is a false
//     positive under -Wthread-safety. See ThreadPool::worker_loop for
//     the canonical restructured wait.
//
// Lock *ordering* is deliberately out of scope here: clang's
// acquired_before/acquired_after attributes are still flagged
// experimental and miss cross-TU cycles. The declared hierarchy lives in
// tools/lint/lock_protocol.toml and is enforced by ppscan_lint's
// lock-order rule over actual acquisition sites.
#pragma once

#include <mutex>

// ---------------------------------------------------------------------------
// Attribute macros (no-ops off clang).
// ---------------------------------------------------------------------------

#if defined(__clang__) && (!defined(SWIG))
#define PPSCAN_TSA(x) __attribute__((x))
#else
#define PPSCAN_TSA(x)  // no-op: GCC/MSVC don't implement -Wthread-safety
#endif

/// Marks a type as a lockable capability ("mutex" names it in clang's
/// diagnostics: "acquiring mutex 'stats_mutex_' ...").
#define PPSCAN_CAPABILITY(x) PPSCAN_TSA(capability(x))

/// Marks a RAII type whose constructor acquires and destructor releases.
#define PPSCAN_SCOPED_CAPABILITY PPSCAN_TSA(scoped_lockable)

/// Declares that a data member is only read/written with `x` held.
#define PPSCAN_GUARDED_BY(x) PPSCAN_TSA(guarded_by(x))

/// Declares that the *pointee* of a pointer member is guarded by `x`.
#define PPSCAN_PT_GUARDED_BY(x) PPSCAN_TSA(pt_guarded_by(x))

/// Declares that callers must hold `...` before calling this function.
#define PPSCAN_REQUIRES(...) \
  PPSCAN_TSA(requires_capability(__VA_ARGS__))

/// Declares that this function acquires `...` (and does not release it).
#define PPSCAN_ACQUIRE(...) \
  PPSCAN_TSA(acquire_capability(__VA_ARGS__))

/// Declares that this function releases `...`.
#define PPSCAN_RELEASE(...) \
  PPSCAN_TSA(release_capability(__VA_ARGS__))

/// Declares that this function acquires `...` only when it returns true.
#define PPSCAN_TRY_ACQUIRE(...) \
  PPSCAN_TSA(try_acquire_capability(__VA_ARGS__))

/// Declares that callers must NOT hold `...` (deadlock prevention for
/// functions that acquire it themselves).
#define PPSCAN_EXCLUDES(...) PPSCAN_TSA(locks_excluded(__VA_ARGS__))

/// Escape hatch: turns the analysis off for one function. Every use
/// needs a comment saying why the analysis cannot see the invariant.
#define PPSCAN_NO_THREAD_SAFETY_ANALYSIS \
  PPSCAN_TSA(no_thread_safety_analysis)

/// Function-attribute form for functions returning a reference to a
/// guarded object.
#define PPSCAN_RETURN_CAPABILITY(x) PPSCAN_TSA(lock_returned(x))

namespace ppscan {

// ---------------------------------------------------------------------------
// CheckedMutex: std::mutex wearing the capability attribute.
// ---------------------------------------------------------------------------

/// Drop-in std::mutex replacement that participates in -Wthread-safety.
/// `native()` exposes the underlying std::mutex for the rare API that
/// demands one (std::condition_variable via CheckedLock::native()); it
/// must never be locked directly — ppscan_lint's lock-raw rule catches
/// `std::lock_guard`/`std::unique_lock` over native handles.
class PPSCAN_CAPABILITY("mutex") CheckedMutex {
 public:
  CheckedMutex() = default;
  CheckedMutex(const CheckedMutex&) = delete;
  CheckedMutex& operator=(const CheckedMutex&) = delete;

  void lock() PPSCAN_ACQUIRE() { mu_.lock(); }
  void unlock() PPSCAN_RELEASE() { mu_.unlock(); }
  bool try_lock() PPSCAN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The raw handle, for std::condition_variable plumbing only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// ---------------------------------------------------------------------------
// CheckedLock: scoped RAII lock over CheckedMutex.
// ---------------------------------------------------------------------------

/// RAII lock (the std::unique_lock of this scheme) annotated as a scoped
/// capability so clang tracks the critical section. Built on
/// std::unique_lock so condition variables can wait on `native()` —
/// cv.wait unlocks/relocks the underlying mutex, which is invisible to
/// the analysis but sound because wait() returns with the lock re-held.
class PPSCAN_SCOPED_CAPABILITY CheckedLock {
 public:
  explicit CheckedLock(CheckedMutex& mu) PPSCAN_ACQUIRE(mu)
      : mu_(mu), lock_(mu.native()) {}

  CheckedLock(const CheckedLock&) = delete;
  CheckedLock& operator=(const CheckedLock&) = delete;

  ~CheckedLock() PPSCAN_RELEASE() {}

  /// Early release (the annotated form of unique_lock::unlock()).
  void unlock() PPSCAN_RELEASE() { lock_.unlock(); }

  /// The unique_lock handle, for std::condition_variable::wait only.
  /// Waits must use the explicit-loop form (see file comment, rule 3).
  std::unique_lock<std::mutex>& native() { return lock_; }

  /// The mutex this lock guards (for assertions/diagnostics).
  CheckedMutex& mutex() PPSCAN_RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  CheckedMutex& mu_;
  std::unique_lock<std::mutex> lock_;
};

}  // namespace ppscan
