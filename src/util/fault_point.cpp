#include "util/fault_point.hpp"

#if PPSCAN_FAULTS_ENABLED

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>

#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/thread_safety.hpp"

namespace ppscan::fault {
namespace {

// One armed site. `hits`/`fires` are atomic because maybe_fire() runs on
// worker/dispatcher threads concurrently; the Spec and Rng are protected by
// the per-site mutex (a fault path is never hot, so a mutex is fine — the
// cold path only exists in PPSCAN_FAULTS=ON builds to begin with).
struct Site {
  // guards: spec, rng — re-arming races against concurrent dice rolls.
  CheckedMutex site_mu;
  Spec spec PPSCAN_GUARDED_BY(site_mu);
  Rng rng PPSCAN_GUARDED_BY(site_mu) = Rng(0);
  std::atomic<std::uint64_t> hits{0};   // protocol: relaxed-counter
  std::atomic<std::uint64_t> fires{0};  // protocol: relaxed-counter
};

struct Registry {
  // guards: sites, env_loaded — the site map and the lazy env-arm flag.
  CheckedMutex registry_mu;
  // unique_ptr so Site addresses are stable across map rehashes; maybe_fire
  // holds only the registry lock while *finding* the site, then the site's
  // own lock while rolling the dice.
  std::map<std::string, std::unique_ptr<Site>> sites
      PPSCAN_GUARDED_BY(registry_mu);
  bool env_loaded PPSCAN_GUARDED_BY(registry_mu) = false;
};

Registry& registry() {
  static Registry instance;
  return instance;
}

// "site:action[:k=v]..." → armed Spec. Returns "" or a parse error.
std::string parse_one(const std::string& entry, std::string& site_out,
                      Spec& spec_out) {
  const auto first_colon = entry.find(':');
  if (first_colon == std::string::npos || first_colon == 0) {
    return "fault spec '" + entry + "': expected <site>:<action>";
  }
  site_out = entry.substr(0, first_colon);
  Spec spec;
  std::size_t pos = first_colon + 1;
  bool have_action = false;
  while (pos <= entry.size()) {
    auto next = entry.find(':', pos);
    if (next == std::string::npos) next = entry.size();
    const std::string field = entry.substr(pos, next - pos);
    pos = next + 1;
    if (field.empty()) continue;
    const auto eq = field.find('=');
    const std::string key = field.substr(0, eq);
    const std::string val =
        eq == std::string::npos ? std::string() : field.substr(eq + 1);
    try {
      if (!have_action) {
        have_action = true;
        if (key == "throw") {
          spec.action = Action::Throw;
        } else if (key == "bad-alloc") {
          spec.action = Action::BadAlloc;
        } else if (key == "sleep-ms") {
          spec.action = Action::Sleep;
          spec.sleep_ms = static_cast<std::uint32_t>(std::stoul(val));
        } else {
          return "fault spec '" + entry + "': unknown action '" + key + "'";
        }
      } else if (key == "p") {
        spec.probability = std::stod(val);
        if (spec.probability < 0.0 || spec.probability > 1.0) {
          return "fault spec '" + entry + "': p must be in [0,1]";
        }
      } else if (key == "skip") {
        spec.skip_first = std::stoull(val);
      } else if (key == "max") {
        spec.max_fires = std::stoull(val);
      } else if (key == "seed") {
        spec.seed = std::stoull(val);
      } else {
        return "fault spec '" + entry + "': unknown field '" + key + "'";
      }
    } catch (const std::exception&) {
      return "fault spec '" + entry + "': bad value for '" + key + "'";
    }
  }
  if (!have_action) {
    return "fault spec '" + entry + "': missing action";
  }
  spec_out = spec;
  return "";
}

// Arms `site` inside `reg` (registry lock must be held).
void arm_locked(Registry& reg, const std::string& site, const Spec& spec)
    PPSCAN_REQUIRES(reg.registry_mu) {
  auto& slot = reg.sites[site];
  if (!slot) slot = std::make_unique<Site>();
  CheckedLock site_lock(slot->site_mu);
  slot->spec = spec;
  slot->rng = Rng(spec.seed);
  slot->hits.store(0, std::memory_order_relaxed);
  slot->fires.store(0, std::memory_order_relaxed);
}

// Loads PPSCAN_FAULT once per process (and again after reset()). A parse
// error is fatal by design: a chaos lane with a typo'd spec must fail
// loudly, not run a clean build and report green.
void load_env_locked(Registry& reg) PPSCAN_REQUIRES(reg.registry_mu) {
  if (reg.env_loaded) return;
  reg.env_loaded = true;
  const auto text = env_string("PPSCAN_FAULT");
  if (!text.has_value() || text->empty()) return;
  std::size_t pos = 0;
  while (pos <= text->size()) {
    auto next = text->find(';', pos);
    if (next == std::string::npos) next = text->size();
    const std::string entry = text->substr(pos, next - pos);
    pos = next + 1;
    if (entry.empty()) continue;
    std::string site;
    Spec spec;
    const std::string err = parse_one(entry, site, spec);
    if (!err.empty()) {
      throw std::invalid_argument("PPSCAN_FAULT: " + err);
    }
    arm_locked(reg, site, spec);
  }
}

}  // namespace

void arm(const std::string& site, const Spec& spec) {
  Registry& reg = registry();
  CheckedLock lock(reg.registry_mu);
  load_env_locked(reg);
  arm_locked(reg, site, spec);
}

std::string arm_from_string(const std::string& text) {
  Registry& reg = registry();
  CheckedLock lock(reg.registry_mu);
  load_env_locked(reg);
  std::size_t pos = 0;
  while (pos <= text.size()) {
    auto next = text.find(';', pos);
    if (next == std::string::npos) next = text.size();
    const std::string entry = text.substr(pos, next - pos);
    pos = next + 1;
    if (entry.empty()) continue;
    std::string site;
    Spec spec;
    const std::string err = parse_one(entry, site, spec);
    if (!err.empty()) return err;
    arm_locked(reg, site, spec);
  }
  return "";
}

void reset() {
  Registry& reg = registry();
  CheckedLock lock(reg.registry_mu);
  reg.sites.clear();
  // Mark the env as already consumed: after an explicit reset() the test
  // owns the arming, and a lane-wide PPSCAN_FAULT must not re-poison it.
  reg.env_loaded = true;
}

std::uint64_t fire_count(const std::string& site) {
  Registry& reg = registry();
  CheckedLock lock(reg.registry_mu);
  const auto it = reg.sites.find(site);
  if (it == reg.sites.end()) return 0;
  return it->second->fires.load(std::memory_order_relaxed);
}

std::vector<std::string> fired_sites() {
  Registry& reg = registry();
  CheckedLock lock(reg.registry_mu);
  std::vector<std::string> out;
  for (const auto& [name, site] : reg.sites) {
    if (site->fires.load(std::memory_order_relaxed) > 0) out.push_back(name);
  }
  return out;
}

void maybe_fire(const char* site) {
  Registry& reg = registry();
  Site* found = nullptr;
  {
    CheckedLock lock(reg.registry_mu);
    load_env_locked(reg);
    const auto it = reg.sites.find(site);
    if (it == reg.sites.end()) return;
    found = it->second.get();
  }
  Action action = Action::Throw;
  std::uint32_t sleep_ms = 0;
  {
    CheckedLock site_lock(found->site_mu);
    const std::uint64_t hit =
        found->hits.fetch_add(1, std::memory_order_relaxed);
    if (hit < found->spec.skip_first) return;
    if (found->fires.load(std::memory_order_relaxed) >=
        found->spec.max_fires) {
      return;
    }
    if (found->spec.probability < 1.0 &&
        !found->rng.next_bool(found->spec.probability)) {
      return;
    }
    found->fires.fetch_add(1, std::memory_order_relaxed);
    action = found->spec.action;
    sleep_ms = found->spec.sleep_ms;
  }
  switch (action) {
    case Action::Throw:
      throw std::runtime_error(std::string("fault-point ") + site);
    case Action::BadAlloc:
      throw std::bad_alloc();
    case Action::Sleep:
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      return;
  }
}

}  // namespace ppscan::fault

#endif  // PPSCAN_FAULTS_ENABLED
