// Typed error taxonomy for graph ingestion.
//
// Every failure mode of the loaders (`read_edge_list_text`,
// `read_csr_binary`), of `GraphBuilder::build`, and of
// `CsrGraph::validate()` maps to one GraphIoErrorKind, so callers can
// distinguish "file missing" from "file corrupt" from "file adversarial"
// without string-matching what(). The error carries the failing file, the
// byte offset (binary) or line number (text) when known, and a description
// of the violated invariant — enough for a CLI to print one actionable
// line and exit nonzero instead of crashing on corrupt input.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ppscan {

enum class GraphIoErrorKind : std::uint8_t {
  // File-level I/O.
  kOpenFailed,         // file missing or unreadable
  kWriteFailed,        // output stream failed
  // Binary container structure.
  kBadMagic,           // header does not start with "PPSCANG1"
  kTruncatedHeader,    // file shorter than the 24-byte header
  kOversizedHeader,    // n/arcs imply allocations beyond the file size
  kTruncatedBody,      // offsets/dst payload cut short
  kTrailingData,       // bytes after the payload the header describes
  // CSR invariants (binary payload or in-memory construction).
  kMalformedOffsets,   // offsets empty, offsets[0] != 0, or back != |dst|
  kNonMonotoneOffsets, // offsets[u] > offsets[u + 1]
  kNeighborOutOfRange, // dst[i] >= num_vertices
  kSelfLoop,           // dst[i] == u inside u's list
  kUnsortedNeighbors,  // neighbor list not strictly ascending (or duplicated)
  kAsymmetricArc,      // arc (u,v) present without (v,u)
  // Text edge-list parsing.
  kParseError,         // line is not "u v"
  kNegativeId,         // endpoint written with a leading '-'
  kIdOutOfRange,       // endpoint above the 32-bit VertexId range
  kTrailingGarbage,    // extra non-whitespace after the two endpoints
  // Vertex-id arithmetic.
  kVertexIdOverflow,   // id + 1 would wrap VertexId (id == 2^32 - 1)
};

/// Stable machine-readable name, e.g. "neighbor-out-of-range".
[[nodiscard]] const char* to_string(GraphIoErrorKind kind);

class GraphIoError : public std::runtime_error {
 public:
  /// Sentinel for "no byte offset / line number recorded".
  static constexpr std::uint64_t kNoLocation = ~std::uint64_t{0};

  GraphIoError(GraphIoErrorKind kind, std::string detail,
               std::string path = {}, std::uint64_t byte_offset = kNoLocation,
               std::uint64_t line = kNoLocation);

  [[nodiscard]] GraphIoErrorKind kind() const { return kind_; }
  /// The violated invariant, human-readable, without location context.
  [[nodiscard]] const std::string& detail() const { return detail_; }
  /// Failing file; empty when the error arose from in-memory data.
  [[nodiscard]] const std::string& path() const { return path_; }
  /// Byte offset of the offending field (binary format) or kNoLocation.
  [[nodiscard]] std::uint64_t byte_offset() const { return byte_offset_; }
  /// 1-based line number (text format) or kNoLocation.
  [[nodiscard]] std::uint64_t line() const { return line_; }

  /// Copy of this error with the file path attached — loaders use it to
  /// contextualize invariant violations thrown by CsrGraph itself.
  [[nodiscard]] GraphIoError with_path(const std::string& path) const {
    return {kind_, detail_, path, byte_offset_, line_};
  }

 private:
  GraphIoErrorKind kind_;
  std::string detail_;
  std::string path_;
  std::uint64_t byte_offset_;
  std::uint64_t line_;
};

}  // namespace ppscan
