// A heap-allocated array of std::atomic<T>.
//
// std::vector<std::atomic<T>> is unusable because atomics are not movable;
// this wrapper owns the storage, provides bounds-checked debug access, and
// exposes relaxed-by-default load/store helpers. The ppSCAN phases rely on
// benign read/write races (e.g. a neighbor reading sim[e(u,v)] while the
// owner thread writes it); making the element type atomic turns those races
// into defined behavior at zero cost on x86 (relaxed atomic load/store
// compiles to a plain MOV).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>

namespace ppscan {

template <typename T>
class AtomicArray {
 public:
  AtomicArray() = default;

  explicit AtomicArray(std::size_t n, T init = T{}) { assign(n, init); }

  void assign(std::size_t n, T init = T{}) {
    data_ = std::make_unique<std::atomic<T>[]>(n);
    size_ = n;
    for (std::size_t i = 0; i < n; ++i) {
      data_[i].store(init, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] T load(std::size_t i,
                       std::memory_order order = std::memory_order_relaxed) const {
    assert(i < size_);
    return data_[i].load(order);
  }

  void store(std::size_t i, T value,
             std::memory_order order = std::memory_order_relaxed) {
    assert(i < size_);
    data_[i].store(value, order);
  }

  bool compare_exchange(std::size_t i, T& expected, T desired,
                        std::memory_order order = std::memory_order_relaxed) {
    assert(i < size_);
    return data_[i].compare_exchange_strong(expected, desired, order);
  }

  T fetch_add(std::size_t i, T delta,
              std::memory_order order = std::memory_order_relaxed) {
    assert(i < size_);
    return data_[i].fetch_add(delta, order);
  }

  std::atomic<T>& raw(std::size_t i) {
    assert(i < size_);
    return data_[i];
  }

 private:
  // protocol: forwarding-wrapper — the accessors above forward the caller's
  // memory_order; each AtomicArray *member* declares its own discipline and
  // is checked at its own call sites.
  std::unique_ptr<std::atomic<T>[]> data_;
  std::size_t size_ = 0;
};

}  // namespace ppscan
