// Column-aligned table printer used by every figure/table harness in bench/.
//
// Each harness regenerates one table or figure from the paper; the output is
// a plain-text table (also machine-parsable: cells never contain the column
// separator) so runs can be diffed and re-plotted.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ppscan {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt(std::uint64_t v);
  static std::string fmt(std::int64_t v);

  /// Formats a ratio in [0,1] as "12.3%"; NaN (0/0) prints as "-".
  static std::string fmt_percent(double ratio, int precision = 1);

  /// Renders the table with a title banner to `os`.
  void print(std::ostream& os, const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ppscan
