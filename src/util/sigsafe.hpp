// Async-signal-safe output helpers (docs/observability.md, "Flight
// recorder"). A fatal-signal handler may only call the POSIX
// async-signal-safe set — write() yes; snprintf, malloc, and anything
// that might lock, no. These helpers format u64s and copy bounded strings
// into a caller-provided buffer with nothing but pointer arithmetic, so
// the flight recorder can emit its black-box JSON from inside SIGSEGV.
#pragma once

#include <cerrno>
#include <cstddef>
#include <cstdint>

#include <unistd.h>

namespace ppscan::util::sigsafe {

/// Append `s` (NUL-terminated) to buf at pos, never past cap. Returns the
/// new pos. Truncates silently — a crash dump that loses a tail beats one
/// that overruns a buffer.
inline std::size_t append_str(char* buf, std::size_t cap, std::size_t pos,
                              const char* s) {
  if (s == nullptr) return pos;
  while (*s != '\0' && pos < cap) buf[pos++] = *s++;
  return pos;
}

/// Append the decimal rendering of `v`.
inline std::size_t append_u64(char* buf, std::size_t cap, std::size_t pos,
                              std::uint64_t v) {
  char digits[20];
  std::size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + (v % 10));
    v /= 10;
  } while (v != 0);
  while (n > 0 && pos < cap) buf[pos++] = digits[--n];
  return pos;
}

/// Append `s` with the JSON string escapes the flight-recorder event
/// fields can contain (quote, backslash, control bytes become '?'). The
/// recorder stores fixed ASCII-ish labels, so '?' for controls is enough
/// to keep the dump parseable.
inline std::size_t append_json_str(char* buf, std::size_t cap,
                                   std::size_t pos, const char* s) {
  if (s == nullptr) return pos;
  for (; *s != '\0' && pos < cap; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      if (pos + 1 >= cap) break;
      buf[pos++] = '\\';
      buf[pos++] = c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      buf[pos++] = '?';
    } else {
      buf[pos++] = c;
    }
  }
  return pos;
}

/// write() the buffer fully (retrying short writes); EINTR-tolerant.
/// Returns false on a hard write error — nothing a crash handler can do
/// about it, but callers in tests want to know.
inline bool write_all(int fd, const char* buf, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ::ssize_t n = ::write(fd, buf + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace ppscan::util::sigsafe
