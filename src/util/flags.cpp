#include "util/flags.hpp"

#include <cstdlib>
#include <stdexcept>

namespace ppscan {

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is itself a flag or absent, in
    // which case the flag is boolean-style: `--verbose`.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) != 0;
}

}  // namespace ppscan
