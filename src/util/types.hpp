// Fundamental integer types shared across the ppSCAN library.
//
// Vertices are 32-bit (the paper's largest graph, friendster, has 124.8M
// vertices) while edge offsets are 64-bit so graphs with more than 2^32
// directed edges remain addressable in CSR form.
#pragma once

#include <cstdint>

namespace ppscan {

using VertexId = std::uint32_t;
using EdgeId = std::uint64_t;

/// Sentinel for "no vertex" (e.g. unassigned cluster id).
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

}  // namespace ppscan
