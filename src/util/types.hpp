// Fundamental integer types shared across the ppSCAN library.
//
// Vertices are 32-bit (the paper's largest graph, friendster, has 124.8M
// vertices) while edge offsets are 64-bit so graphs with more than 2^32
// directed edges remain addressable in CSR form.
#pragma once

#include <cassert>
#include <cstdint>
#include <type_traits>
#include <utility>

namespace ppscan {

using VertexId = std::uint32_t;
using EdgeId = std::uint64_t;

/// Sentinel for "no vertex" (e.g. unassigned cluster id).
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// Checked narrowing for the size_t/EdgeId -> VertexId graph boundary.
/// Container sizes and arc counts are 64-bit while vertex ids are 32-bit;
/// every crossing must prove the value fits instead of silently truncating
/// (ppscan_lint's vertexid-narrowing rule enforces using this helper).
template <typename From>
[[nodiscard]] constexpr VertexId checked_vertex_cast(From value) noexcept {
  static_assert(std::is_integral_v<From>,
                "checked_vertex_cast narrows integral values only");
  assert(std::in_range<VertexId>(value));
  return static_cast<VertexId>(value);
}

}  // namespace ppscan
