#include "util/graph_io_error.hpp"

namespace ppscan {
namespace {

std::string format_message(GraphIoErrorKind kind, const std::string& detail,
                           const std::string& path, std::uint64_t byte_offset,
                           std::uint64_t line) {
  std::string msg = to_string(kind);
  msg += ": ";
  msg += detail;
  const bool have_path = !path.empty();
  const bool have_byte = byte_offset != GraphIoError::kNoLocation;
  const bool have_line = line != GraphIoError::kNoLocation;
  if (have_path || have_byte || have_line) {
    msg += " [";
    if (have_path) msg += "file " + path;
    if (have_byte) {
      if (have_path) msg += ", ";
      msg += "byte " + std::to_string(byte_offset);
    }
    if (have_line) {
      if (have_path || have_byte) msg += ", ";
      msg += "line " + std::to_string(line);
    }
    msg += "]";
  }
  return msg;
}

}  // namespace

const char* to_string(GraphIoErrorKind kind) {
  switch (kind) {
    case GraphIoErrorKind::kOpenFailed: return "open-failed";
    case GraphIoErrorKind::kWriteFailed: return "write-failed";
    case GraphIoErrorKind::kBadMagic: return "bad-magic";
    case GraphIoErrorKind::kTruncatedHeader: return "truncated-header";
    case GraphIoErrorKind::kOversizedHeader: return "oversized-header";
    case GraphIoErrorKind::kTruncatedBody: return "truncated-body";
    case GraphIoErrorKind::kTrailingData: return "trailing-data";
    case GraphIoErrorKind::kMalformedOffsets: return "malformed-offsets";
    case GraphIoErrorKind::kNonMonotoneOffsets: return "non-monotone-offsets";
    case GraphIoErrorKind::kNeighborOutOfRange: return "neighbor-out-of-range";
    case GraphIoErrorKind::kSelfLoop: return "self-loop";
    case GraphIoErrorKind::kUnsortedNeighbors: return "unsorted-neighbors";
    case GraphIoErrorKind::kAsymmetricArc: return "asymmetric-arc";
    case GraphIoErrorKind::kParseError: return "parse-error";
    case GraphIoErrorKind::kNegativeId: return "negative-id";
    case GraphIoErrorKind::kIdOutOfRange: return "id-out-of-range";
    case GraphIoErrorKind::kTrailingGarbage: return "trailing-garbage";
    case GraphIoErrorKind::kVertexIdOverflow: return "vertex-id-overflow";
  }
  return "unknown";
}

GraphIoError::GraphIoError(GraphIoErrorKind kind, std::string detail,
                           std::string path, std::uint64_t byte_offset,
                           std::uint64_t line)
    : std::runtime_error(
          format_message(kind, detail, path, byte_offset, line)),
      kind_(kind),
      detail_(std::move(detail)),
      path_(std::move(path)),
      byte_offset_(byte_offset),
      line_(line) {}

}  // namespace ppscan
