// Monotonic wall-clock timing helpers used by the benchmark harnesses and the
// per-stage instrumentation inside the algorithms.
#pragma once

#include <chrono>

namespace ppscan {

/// Simple monotonic stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time into a double on scope exit; lets callers sum the
/// cost of a region executed many times.
class ScopedAccumTimer {
 public:
  explicit ScopedAccumTimer(double& sink) : sink_(sink) {}
  ~ScopedAccumTimer() { sink_ += timer_.elapsed_s(); }

  ScopedAccumTimer(const ScopedAccumTimer&) = delete;
  ScopedAccumTimer& operator=(const ScopedAccumTimer&) = delete;

 private:
  double& sink_;
  WallTimer timer_;
};

}  // namespace ppscan
