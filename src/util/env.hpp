// Environment knobs shared by the benchmark harnesses.
#pragma once

namespace ppscan {

/// Value of PPSCAN_SCALE (default 1.0). Every bench dataset's edge budget is
/// multiplied by this, so the same binaries scale from CI smoke runs to
/// paper-sized experiments on a big machine.
double bench_scale();

/// Value of PPSCAN_THREADS if set, otherwise the hardware concurrency.
int default_threads();

}  // namespace ppscan
