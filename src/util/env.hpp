// Checked environment-variable parsing for every PPSCAN_* knob.
//
// All std::getenv sites in the library go through these helpers so a typo'd
// value is *classified, not guessed* (the PR-2 ingestion-error style): a
// malformed value warns once per variable on stderr — naming the variable,
// the offending text, and the fallback used — and returns the fallback. It
// never silently misparses the way `atol("garbage") == 0` used to.
//
// Knob inventory (docs/tuning.md has the semantics):
//   PPSCAN_SCALE        double > 0   bench dataset edge-budget multiplier
//   PPSCAN_THREADS      u64  >= 1    default thread count (0/unset = HW)
//   PPSCAN_GALLOP_SKEW  u64          Auto-kernel gallop threshold (0 = off)
//   PPSCAN_CACHE_DIR    string       bench dataset cache directory
//   PPSCAN_TRACE_CAP    u64  >= 1    trace events kept per worker buffer
//   PPSCAN_TRACE_TASKS  flag         record per-task trace events (default 1)
//   PPSCAN_NUMA_NODES   u64  >= 1    emulate an N-node NUMA topology
//                                    (docs/numa.md; 0/unset = detect)
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace ppscan {

/// Raw value of `name`, or nullopt when unset. Empty string counts as set.
std::optional<std::string> env_string(const char* name);

/// Boolean knob: 1/true/yes/on and 0/false/no/off (case-insensitive).
/// Unset → fallback; anything else warns and returns the fallback.
bool env_flag(const char* name, bool fallback);

/// Unsigned integer knob (base 10, full-string match, no sign). Unset →
/// fallback; malformed or negative warns and returns the fallback.
std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// Floating-point knob (full-string match, must be finite). Unset →
/// fallback; malformed warns and returns the fallback.
double env_double(const char* name, double fallback);

/// Value of PPSCAN_SCALE (default 1.0, must be > 0). Every bench dataset's
/// edge budget is multiplied by this, so the same binaries scale from CI
/// smoke runs to paper-sized experiments on a big machine.
double bench_scale();

/// Value of PPSCAN_THREADS if set and >= 1, otherwise the hardware
/// concurrency ("0" explicitly requests the hardware default).
int default_threads();

}  // namespace ppscan
