// WindowedLatency — rolling-horizon SLO view over a cumulative
// LatencyHistogram (docs/observability.md, "Live telemetry").
//
// A lifetime histogram answers "how has the service done since start";
// an operator watching a dashboard needs "how is it doing *now*". This
// class keeps a ring of per-interval delta sub-histograms: each
// publish(lifetime, now) subtracts the previously published lifetime
// histogram from the current one (LatencyHistogram::delta_since — the
// histogram is monotone, so the difference is exactly the samples recorded
// in between) and stamps the delta into the next ring slot. window(now)
// merges every slot still younger than the horizon, yielding a last-N-
// seconds histogram whose quantiles are the windowed p50/p90/p99.
//
// Time is passed in explicitly (steady_clock time_points) rather than read
// internally, so the fold/rotate/expiry arithmetic is deterministic under
// test. The class is not internally synchronized — the owner (the
// QueryService publisher) calls it under stats_mutex_.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/latency_histogram.hpp"

namespace ppscan::obs {

class WindowedLatency {
 public:
  using Clock = std::chrono::steady_clock;

  /// Inert view: publish() is a no-op, window() is empty. Lets the owner
  /// hold one unconditionally and configure() only when the publisher runs.
  WindowedLatency() = default;

  /// `horizon` is the rolling window (e.g. 10 s), `interval` the expected
  /// publish cadence; the ring holds ceil(horizon/interval)+1 slots so a
  /// full horizon of deltas is retained even while the oldest slot is
  /// being overwritten. Both are clamped to ≥ 1 ms.
  WindowedLatency(std::chrono::milliseconds horizon,
                  std::chrono::milliseconds interval);

  [[nodiscard]] bool enabled() const { return !slots_.empty(); }
  [[nodiscard]] std::chrono::milliseconds horizon() const { return horizon_; }
  [[nodiscard]] std::uint64_t publishes() const { return publishes_; }

  /// Fold the growth of `lifetime` since the previous publish into the
  /// slot covering `now`. Empty deltas still claim a slot — that is what
  /// ages traffic out of the window when the service goes quiet.
  void publish(const LatencyHistogram& lifetime, Clock::time_point now);

  /// Merged histogram over every slot still inside the horizon at `now`.
  /// Empty histogram (total == 0, quantiles 0) when nothing qualifies.
  [[nodiscard]] LatencyHistogram window(Clock::time_point now) const;

  /// The most recently published delta (empty before the first publish) —
  /// the "since last tick" view behind qps-style rates.
  [[nodiscard]] const LatencyHistogram& last_interval() const {
    return last_delta_;
  }

 private:
  struct Slot {
    LatencyHistogram delta;
    Clock::time_point stamp{};
    bool live = false;
  };

  std::chrono::milliseconds horizon_{0};
  std::vector<Slot> slots_;
  std::size_t head_ = 0;
  LatencyHistogram published_;  // lifetime as of the last publish
  LatencyHistogram last_delta_;
  std::uint64_t publishes_ = 0;
};

}  // namespace ppscan::obs
