#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ppscan::obs {

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::number_u64(std::uint64_t u) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.num_ = static_cast<double>(u);
  v.u64_ = u;
  v.is_integer_ = true;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::Object;
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::Array;
  return v;
}

void JsonValue::set(std::string key, JsonValue value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

bool JsonValue::has(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return v;
  }
  throw std::out_of_range("json: missing key '" + key + "'");
}

void JsonValue::push(JsonValue value) { items_.push_back(std::move(value)); }

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double d, bool is_integer,
                   std::uint64_t u64) {
  if (is_integer) {
    out += std::to_string(u64);
    return;
  }
  if (!std::isfinite(d)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::Number:
      append_number(out, num_, is_integer_, u64_);
      break;
    case Kind::String:
      out += '"';
      out += json_escape(str_);
      out += '"';
      break;
    case Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        append_newline_indent(out, indent, depth + 1);
        out += '"';
        out += json_escape(k);
        out += "\":";
        if (indent > 0) out += ' ';
        v.dump_to(out, indent, depth + 1);
      }
      if (!first) append_newline_indent(out, indent, depth);
      out += '}';
      break;
    }
    case Kind::Array: {
      out += '[';
      bool first = true;
      for (const JsonValue& v : items_) {
        if (!first) out += ',';
        first = false;
        append_newline_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      if (!first) append_newline_indent(out, indent, depth);
      out += ']';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::null();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape");
              }
            }
            // ASCII range only; the exporters never emit more.
            if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
            out += static_cast<char>(code);
            break;
          }
          default:
            fail("unknown escape");
        }
        continue;
      }
      out += c;
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    const bool integral =
        tok.find_first_of(".eE") == std::string::npos && tok[0] != '-';
    if (integral) {
      std::uint64_t u = 0;
      const auto [ptr, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), u);
      if (ec == std::errc() && ptr == tok.data() + tok.size()) {
        return JsonValue::number_u64(u);
      }
    }
    try {
      return JsonValue::number(std::stod(tok));
    } catch (const std::exception&) {
      fail("malformed number '" + tok + "'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace ppscan::obs
