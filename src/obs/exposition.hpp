// Prometheus text-exposition endpoint (docs/observability.md, "Live
// telemetry"): a minimal single-threaded HTTP listener on loopback TCP
// serving GET /metrics (text/plain; version=0.0.4) and GET /healthz.
//
// Deliberately not a web server: one accept loop, one connection at a
// time, HTTP/1.0-style close-after-response, no keep-alive, no TLS, no
// third-party dependencies — a scrape target, nothing more. Binding is
// loopback-only (127.0.0.1) so enabling telemetry never opens the
// service to the network. The /metrics body is produced by a caller-
// supplied renderer, so this layer knows nothing about the serving
// system; the renderer (serve::exposition_text) typically wraps
// QueryService::snapshot(), which is safe from any thread.
//
// Shutdown uses the self-pipe pattern: stop() writes one byte into a
// pipe the accept loop polls alongside the listen socket, so no blocked
// accept() can outlive the server object.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace ppscan::obs {

class ExpositionServer {
 public:
  using Renderer = std::function<std::string()>;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, see
  /// port()) and starts the listener thread. Throws std::runtime_error
  /// when the bind fails (port in use, no loopback, ...). The renderer is
  /// invoked on the listener thread once per /metrics request and must be
  /// callable until stop() returns.
  ExpositionServer(std::uint16_t port, Renderer renderer);
  ~ExpositionServer();

  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// Joins the listener; idempotent.
  void stop();

  /// The bound port (resolves an ephemeral request).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(int fd);

  Renderer renderer_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  bool stopped_ = false;  // main-thread only (stop() idempotence)
  // protocol: relaxed-counter — listener thread bumps per request; tests
  // read after the scrape they made has returned, which orders it.
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

// --- text-exposition rendering helpers ---------------------------------
// Append one metric family / sample in the Prometheus text format v0.0.4.
// `type` is counter|gauge|histogram; labels go in preformatted as
// `key="value"` pairs (no trailing comma handling here — keep it simple).

void prom_family(std::string& out, const char* name, const char* help,
                 const char* type);
void prom_sample(std::string& out, const char* name, double value);
void prom_sample_u64(std::string& out, const char* name, std::uint64_t value);
void prom_sample_labeled(std::string& out, const char* name,
                         const std::string& labels, double value);

/// One-shot loopback HTTP GET, for tests and the bench self-scraper:
/// returns the response body (headers stripped); throws on connect or
/// protocol failure.
std::string http_get_local(std::uint16_t port, const std::string& path);

}  // namespace ppscan::obs
