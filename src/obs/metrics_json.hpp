// Versioned machine-readable metrics: one flat JSON object per run,
// written by `ppscan_cli --metrics-json` and by the bench harnesses'
// `--metrics-json` (one row per dataset × eps × algorithm), so runs can be
// diffed across commits — the BENCH_*.json perf trajectory.
//
// Schema v2 is documented field-by-field in docs/observability.md; the
// validator below and the docs table are kept in lockstep (the round-trip
// test tests/test_metrics_json.cpp checks emitted output against it).
// v2 added the NUMA block: numa_mode/placement/numa_nodes, the
// same-node/remote steal split, remote_misses, and the per_node array.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/json.hpp"

namespace ppscan::obs {

/// Bump when a field is added/renamed/retyped; record the change in the
/// schema version table in docs/observability.md.
inline constexpr std::uint64_t kMetricsSchemaVersion = 2;

/// One `queries[]` entry of a serving row (serve/query_service.hpp's
/// QueryRecord, rendered): the per-query latency/result/abort record the
/// serving benchmarks commit.
struct QueryRowMetrics {
  std::uint64_t id = 0;
  std::string eps;
  std::uint64_t mu = 0;
  double latency_ms = 0;
  /// Latency decomposition (additive, validated only when present so rows
  /// written before the telemetry layer stay valid): time parked in the
  /// admission queue and time inside the executor. queue_ms + execute_ms
  /// never exceeds latency_ms by more than scheduling slack — the
  /// validator enforces it with a 5% + 0.5ms tolerance.
  double queue_ms = 0;
  double execute_ms = 0;
  std::uint64_t num_clusters = 0;
  std::uint64_t num_cores = 0;
  std::string abort_reason = "none";
  bool cache_hit = false;
  /// Degradation ladder substituted the nearest cached run (the
  /// abort_reason then records why the real answer was unavailable).
  bool degraded = false;
};

/// The serving resilience funnel (serve/query_service.hpp snapshot fields;
/// docs/resilience.md): firewall-classified exceptions, sheds split by
/// cause, retry hints issued, breaker activity, degraded substitutions.
/// Optional on a serving row — emitted/validated only when present.
struct ResilienceMetrics {
  std::uint64_t exceptions = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_overload = 0;
  std::uint64_t shed_breaker = 0;
  std::uint64_t retries_advised = 0;
  std::uint64_t breaker_transitions = 0;
  std::string breaker_state = "closed";
  std::uint64_t degraded_hits = 0;
};

/// The serving latency distribution: geometric buckets (upper bound in µs)
/// plus the quantiles the benches report. Bucket list carries only
/// non-empty buckets; their counts must sum to `count` (validated).
struct LatencyBucketMetrics {
  double le_us = 0;
  std::uint64_t count = 0;
};
struct LatencyHistogramMetrics {
  std::uint64_t count = 0;
  double p50_ms = 0;
  double p90_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  /// Exact sum of recorded latencies (additive; validated ≥ 0 only when
  /// present so pre-telemetry rows stay valid). Feeds the Prometheus
  /// histogram `_sum` sample, which bucket midpoints cannot reconstruct.
  double sum_ms = 0;
  std::vector<LatencyBucketMetrics> buckets;
};

/// Everything one metrics row carries. Deliberately plain data — the
/// adapter from an algorithm's RunStats lives in
/// src/bench_support/metrics.hpp so obs stays dependency-free.
struct MetricsReport {
  // Provenance.
  std::string tool;       ///< emitting binary, e.g. "ppscan_cli"
  std::string algorithm;  ///< "ppSCAN", "pSCAN", "SCAN", ...
  std::string dataset;    ///< dataset/graph label (file stem for the CLI)
  std::string eps;        ///< ε exactly as given on the command line
  std::uint64_t mu = 0;
  std::uint64_t threads = 0;
  std::string kernel;        ///< resolved intersection kernel
  std::string runtime_kind;  ///< RunStats::runtime_kind
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;  ///< undirected edges (num_arcs / 2)

  // Timings (seconds).
  double total_seconds = 0;
  double similarity_seconds = 0;
  double pruning_seconds = 0;
  double stage_prune_seconds = 0;
  double stage_check_seconds = 0;
  double stage_core_cluster_seconds = 0;
  double stage_noncore_cluster_seconds = 0;
  double busy_seconds = 0;
  double idle_seconds = 0;

  // Work counters.
  std::uint64_t compsim_invocations = 0;
  std::uint64_t tasks_submitted = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t steals = 0;

  // NUMA shape (v2): policy/placement the run used, executor node count,
  // steal locality split (steals == steals_same_node + steals_remote —
  // the validator enforces it), and one NodeCounters row per node.
  std::string numa_mode = "off";
  std::string placement = "default";  ///< GraphPlacement applied to the CSR
  std::uint64_t numa_nodes = 1;
  std::uint64_t steals_same_node = 0;
  std::uint64_t steals_remote = 0;
  std::uint64_t remote_misses = 0;
  std::vector<NodeCounters> per_node;

  // Result shape.
  std::uint64_t num_clusters = 0;
  std::uint64_t num_cores = 0;

  // Governance outcome.
  std::string abort_reason;  ///< "none" for a completed run
  std::string abort_phase;
  std::uint64_t phases_completed = 0;
  std::uint64_t peak_governed_bytes = 0;

  // Pruning funnel.
  AlgoCounters counters;

  // Serving block (v2, additive + optional): present only on rows emitted
  // by the serving layer (bench_query_serving, ppscan_cli serve). The
  // serializer omits `queries` when empty and `latency_histogram` when
  // latency.count == 0; the validator checks both only when present, so
  // every pre-serving consumer and producer is untouched.
  std::vector<QueryRowMetrics> queries;
  LatencyHistogramMetrics latency;
  /// Optional resilience block (emitted when has_resilience; same additive
  /// convention as the serving block itself).
  bool has_resilience = false;
  ResilienceMetrics resilience;
};

/// Serializes one report as a schema-v2 object (includes
/// "schema_version").
[[nodiscard]] JsonValue metrics_to_json(const MetricsReport& report);

/// Wraps rows in the file-level envelope:
///   {"schema_version": 2, "figure": <label>, "rows": [...]}
[[nodiscard]] JsonValue metrics_file_json(const std::string& figure,
                                          const std::vector<MetricsReport>& rows);

/// Same envelope around already-serialized row objects — for harnesses
/// that decorate metrics_to_json() rows with extra (validator-ignored)
/// keys such as queries_per_second before filing them.
[[nodiscard]] JsonValue metrics_file_envelope(const std::string& figure,
                                              std::vector<JsonValue> rows);

/// Validates one row object against the documented v2 schema: every
/// required key present with the right JSON type, schema_version == 2,
/// the per_node array well-formed, the steal split consistent
/// (same_node + remote == steals), the funnel invariant
/// pruned + computed + reused == touched, and — when present — the
/// optional serving block (`queries` rows well-typed, `latency_histogram`
/// bucket counts summing to its count).
/// Returns "" when valid, else the first violation (for test messages).
[[nodiscard]] std::string validate_metrics_json(const JsonValue& row);

/// Validates the file envelope and every row within.
[[nodiscard]] std::string validate_metrics_file_json(const JsonValue& doc);

/// Parses a row back into a MetricsReport (inverse of metrics_to_json;
/// the round-trip test checks equality). Throws on schema violations.
[[nodiscard]] MetricsReport metrics_from_json(const JsonValue& row);

}  // namespace ppscan::obs
