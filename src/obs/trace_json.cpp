#include "obs/trace_json.hpp"

#include <cinttypes>
#include <cstdio>
#include <string>

#include "obs/json.hpp"

namespace ppscan::obs {
namespace {

const char* slot_name(const TraceCollector& tc, int slot) {
  if (slot == tc.master_slot()) return "master";
  if (slot == tc.supervisor_slot()) return "supervisor";
  return nullptr;  // workers are named with their index below
}

void append_us(std::string& out, std::uint64_t ns) {
  // Microseconds with ns precision kept as a decimal fraction.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

void write_event(std::string& out, int tid, const TraceEvent& ev, bool& first) {
  const char* ph = nullptr;
  switch (ev.kind) {
    case TraceEventKind::PhaseBegin:
      ph = "B";
      break;
    case TraceEventKind::PhaseEnd:
      ph = "E";
      break;
    case TraceEventKind::TaskRun:
      ph = "X";
      break;
    case TraceEventKind::TaskSkip:
    case TraceEventKind::Steal:
    case TraceEventKind::GovernorTrip:
    case TraceEventKind::KernelDispatch:
    case TraceEventKind::Mark:
      ph = "i";
      break;
    // Async span pair: Perfetto groups "b"/"e" rows by (cat, id), which
    // is what turns per-query events into per-query swimlanes — unlike
    // B/E, overlapping spans from interleaved queries need not nest.
    case TraceEventKind::SpanBegin:
      ph = "b";
      break;
    case TraceEventKind::SpanEnd:
      ph = "e";
      break;
  }
  if (!first) out += ",\n";
  first = false;
  out += R"({"name":")";
  out += json_escape(ev.name == nullptr ? "(null)" : ev.name);
  out += R"(","ph":")";
  out += ph;
  out += R"(","pid":0,"tid":)";
  out += std::to_string(tid);
  out += R"(,"ts":)";
  append_us(out, ev.t_ns);
  if (ev.kind == TraceEventKind::TaskRun) {
    out += R"(,"dur":)";
    append_us(out, ev.dur_ns);
  }
  if (ph[0] == 'i') out += R"(,"s":"t")";
  if (ph[0] == 'b' || ph[0] == 'e') {
    out += R"(,"cat":"serve","id":)";
    out += std::to_string(ev.arg);
  }
  out += R"(,"args":{"arg":)";
  out += std::to_string(ev.arg);
  out += "}}";
}

void write_thread_name(std::string& out, int tid, const std::string& name,
                       bool& first) {
  if (!first) out += ",\n";
  first = false;
  out += R"({"name":"thread_name","ph":"M","pid":0,"tid":)";
  out += std::to_string(tid);
  out += R"(,"args":{"name":")";
  out += json_escape(name);
  out += R"("}})";
}

}  // namespace

void write_chrome_trace(std::ostream& out, const TraceCollector& tc) {
  std::string body;
  bool first = true;
  for (int slot = 0; slot < tc.num_slots(); ++slot) {
    const char* fixed = slot_name(tc, slot);
    const std::string name =
        fixed != nullptr ? fixed : "worker " + std::to_string(slot);
    write_thread_name(body, slot, name, first);
  }
  for (int slot = 0; slot < tc.num_slots(); ++slot) {
    for (const TraceEvent& ev : tc.buffer(slot).snapshot()) {
      write_event(body, slot, ev, first);
    }
  }
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      << body << "\n]}\n";
}

}  // namespace ppscan::obs
