#include "obs/metrics_json.hpp"

#include <stdexcept>
#include <utility>

namespace ppscan::obs {
namespace {

// The v2 schema's flat fields. validate_metrics_json walks exactly this
// table, so adding a flat field here (and in metrics_to_json /
// metrics_from_json and the docs/observability.md table) is the complete
// change; the one non-flat field, the per_node array, is validated by
// hand below against kPerNodeKeys.
enum class FieldType : std::uint8_t { String, U64, Double };

struct FieldSpec {
  const char* key;
  FieldType type;
};

constexpr FieldSpec kSchemaV2[] = {
    {"schema_version", FieldType::U64},
    {"tool", FieldType::String},
    {"algorithm", FieldType::String},
    {"dataset", FieldType::String},
    {"eps", FieldType::String},
    {"mu", FieldType::U64},
    {"threads", FieldType::U64},
    {"kernel", FieldType::String},
    {"runtime_kind", FieldType::String},
    {"num_vertices", FieldType::U64},
    {"num_edges", FieldType::U64},
    {"total_seconds", FieldType::Double},
    {"similarity_seconds", FieldType::Double},
    {"pruning_seconds", FieldType::Double},
    {"stage_prune_seconds", FieldType::Double},
    {"stage_check_seconds", FieldType::Double},
    {"stage_core_cluster_seconds", FieldType::Double},
    {"stage_noncore_cluster_seconds", FieldType::Double},
    {"busy_seconds", FieldType::Double},
    {"idle_seconds", FieldType::Double},
    {"compsim_invocations", FieldType::U64},
    {"tasks_submitted", FieldType::U64},
    {"tasks_executed", FieldType::U64},
    {"steals", FieldType::U64},
    {"numa_mode", FieldType::String},
    {"placement", FieldType::String},
    {"numa_nodes", FieldType::U64},
    {"steals_same_node", FieldType::U64},
    {"steals_remote", FieldType::U64},
    {"remote_misses", FieldType::U64},
    {"num_clusters", FieldType::U64},
    {"num_cores", FieldType::U64},
    {"abort_reason", FieldType::String},
    {"abort_phase", FieldType::String},
    {"phases_completed", FieldType::U64},
    {"peak_governed_bytes", FieldType::U64},
    {"arcs_touched", FieldType::U64},
    {"arcs_predicate_pruned", FieldType::U64},
    {"sims_computed", FieldType::U64},
    {"sims_reused", FieldType::U64},
    {"core_early_exits", FieldType::U64},
    {"uf_unions", FieldType::U64},
    {"uf_finds", FieldType::U64},
    {"uf_find_steps", FieldType::U64},
};

// Every per_node entry carries exactly these u64 keys (obs::NodeCounters).
constexpr const char* kPerNodeKeys[] = {
    "node", "workers", "steals_same_node", "steals_remote", "remote_misses",
};

JsonValue node_counters_to_json(const NodeCounters& n) {
  JsonValue o = JsonValue::object();
  o.set("node", JsonValue::number_u64(n.node));
  o.set("workers", JsonValue::number_u64(n.workers));
  o.set("steals_same_node", JsonValue::number_u64(n.steals_same_node));
  o.set("steals_remote", JsonValue::number_u64(n.steals_remote));
  o.set("remote_misses", JsonValue::number_u64(n.remote_misses));
  return o;
}

std::string validate_per_node(const JsonValue& arr) {
  if (!arr.is_array()) return "key 'per_node' is not an array";
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const JsonValue& entry = arr.at(i);
    if (!entry.is_object()) {
      return "per_node[" + std::to_string(i) + "] is not an object";
    }
    for (const char* key : kPerNodeKeys) {
      if (!entry.has(key) || !entry.at(key).is_number() ||
          !entry.at(key).is_integer()) {
        return "per_node[" + std::to_string(i) + "] missing unsigned '" +
               key + "'";
      }
    }
  }
  return "";
}

// The optional serving block: `queries[]` row keys and their types, and
// the `latency_histogram` scalar keys. Both are additive v2 extensions —
// validated only when the key is present, so non-serving rows never carry
// (or pay for) them.
constexpr FieldSpec kQueryRowSpec[] = {
    {"id", FieldType::U64},
    {"eps", FieldType::String},
    {"mu", FieldType::U64},
    {"latency_ms", FieldType::Double},
    {"num_clusters", FieldType::U64},
    {"num_cores", FieldType::U64},
    {"abort_reason", FieldType::String},
};

constexpr FieldSpec kHistogramSpec[] = {
    {"count", FieldType::U64},       {"p50_ms", FieldType::Double},
    {"p90_ms", FieldType::Double},   {"p99_ms", FieldType::Double},
    {"max_ms", FieldType::Double},
};

// Optional `resilience` object on serving rows: validated field-by-field
// when the key is present (same additive convention as `queries`).
constexpr FieldSpec kResilienceSpec[] = {
    {"exceptions", FieldType::U64},
    {"shed_queue_full", FieldType::U64},
    {"shed_overload", FieldType::U64},
    {"shed_breaker", FieldType::U64},
    {"retries_advised", FieldType::U64},
    {"breaker_transitions", FieldType::U64},
    {"breaker_state", FieldType::String},
    {"degraded_hits", FieldType::U64},
};

JsonValue query_row_to_json(const QueryRowMetrics& q) {
  JsonValue o = JsonValue::object();
  o.set("id", JsonValue::number_u64(q.id));
  o.set("eps", JsonValue::string(q.eps));
  o.set("mu", JsonValue::number_u64(q.mu));
  o.set("latency_ms", JsonValue::number(q.latency_ms));
  o.set("queue_ms", JsonValue::number(q.queue_ms));
  o.set("execute_ms", JsonValue::number(q.execute_ms));
  o.set("num_clusters", JsonValue::number_u64(q.num_clusters));
  o.set("num_cores", JsonValue::number_u64(q.num_cores));
  o.set("abort_reason", JsonValue::string(q.abort_reason));
  o.set("cache_hit", JsonValue::boolean(q.cache_hit));
  o.set("degraded", JsonValue::boolean(q.degraded));
  return o;
}

JsonValue resilience_to_json(const ResilienceMetrics& r) {
  JsonValue o = JsonValue::object();
  o.set("exceptions", JsonValue::number_u64(r.exceptions));
  o.set("shed_queue_full", JsonValue::number_u64(r.shed_queue_full));
  o.set("shed_overload", JsonValue::number_u64(r.shed_overload));
  o.set("shed_breaker", JsonValue::number_u64(r.shed_breaker));
  o.set("retries_advised", JsonValue::number_u64(r.retries_advised));
  o.set("breaker_transitions",
        JsonValue::number_u64(r.breaker_transitions));
  o.set("breaker_state", JsonValue::string(r.breaker_state));
  o.set("degraded_hits", JsonValue::number_u64(r.degraded_hits));
  return o;
}

JsonValue histogram_to_json(const LatencyHistogramMetrics& h) {
  JsonValue o = JsonValue::object();
  o.set("count", JsonValue::number_u64(h.count));
  o.set("p50_ms", JsonValue::number(h.p50_ms));
  o.set("p90_ms", JsonValue::number(h.p90_ms));
  o.set("p99_ms", JsonValue::number(h.p99_ms));
  o.set("max_ms", JsonValue::number(h.max_ms));
  o.set("sum_ms", JsonValue::number(h.sum_ms));
  JsonValue buckets = JsonValue::array();
  for (const LatencyBucketMetrics& b : h.buckets) {
    JsonValue e = JsonValue::object();
    e.set("le_us", JsonValue::number(b.le_us));
    e.set("count", JsonValue::number_u64(b.count));
    buckets.push(std::move(e));
  }
  o.set("buckets", std::move(buckets));
  return o;
}

std::string type_name(FieldType t) {
  switch (t) {
    case FieldType::String:
      return "string";
    case FieldType::U64:
      return "unsigned integer";
    case FieldType::Double:
      return "number";
  }
  return "?";
}

bool type_matches(const JsonValue& v, FieldType t) {
  switch (t) {
    case FieldType::String:
      return v.is_string();
    case FieldType::U64:
      return v.is_number() && v.is_integer();
    case FieldType::Double:
      // An integral literal is still a valid double field (0 is "0").
      return v.is_number();
  }
  return false;
}

std::string validate_queries(const JsonValue& arr) {
  if (!arr.is_array()) return "key 'queries' is not an array";
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const JsonValue& q = arr.at(i);
    const std::string where = "queries[" + std::to_string(i) + "]";
    if (!q.is_object()) return where + " is not an object";
    for (const FieldSpec& f : kQueryRowSpec) {
      if (!q.has(f.key) || !type_matches(q.at(f.key), f.type)) {
        return where + " missing " + type_name(f.type) + " '" + f.key + "'";
      }
    }
    if (!q.has("cache_hit") || !q.at("cache_hit").is_bool()) {
      return where + " missing boolean 'cache_hit'";
    }
    if (!q.has("degraded") || !q.at("degraded").is_bool()) {
      return where + " missing boolean 'degraded'";
    }
    // Latency decomposition: additive keys, checked only when present so
    // rows committed before the telemetry layer stay valid. When both
    // components are there they must fit inside the end-to-end latency,
    // modulo scheduling slack (the components and the total are measured
    // by different clock reads).
    for (const char* key : {"queue_ms", "execute_ms"}) {
      if (q.has(key) && !q.at(key).is_number()) {
        return where + " key '" + key + "' is not a number";
      }
    }
    if (q.has("queue_ms") && q.has("execute_ms")) {
      const double latency = q.at("latency_ms").as_double();
      const double parts =
          q.at("queue_ms").as_double() + q.at("execute_ms").as_double();
      const double slack = latency * 0.05 + 0.5;
      if (parts > latency + slack) {
        return where + " queue_ms+execute_ms=" + std::to_string(parts) +
               " exceeds latency_ms=" + std::to_string(latency);
      }
    }
  }
  return "";
}

std::string validate_resilience(const JsonValue& r) {
  if (!r.is_object()) return "key 'resilience' is not an object";
  for (const FieldSpec& f : kResilienceSpec) {
    if (!r.has(f.key) || !type_matches(r.at(f.key), f.type)) {
      return std::string("resilience missing ") + type_name(f.type) + " '" +
             f.key + "'";
    }
  }
  return "";
}

std::string validate_latency_histogram(const JsonValue& h) {
  if (!h.is_object()) return "key 'latency_histogram' is not an object";
  for (const FieldSpec& f : kHistogramSpec) {
    if (!h.has(f.key) || !type_matches(h.at(f.key), f.type)) {
      return std::string("latency_histogram missing ") + type_name(f.type) +
             " '" + f.key + "'";
    }
  }
  // Additive: present on rows written by the telemetry layer, absent on
  // older committed artifacts.
  if (h.has("sum_ms")) {
    if (!h.at("sum_ms").is_number()) {
      return "latency_histogram key 'sum_ms' is not a number";
    }
    if (h.at("sum_ms").as_double() < 0) {
      return "latency_histogram sum_ms is negative";
    }
  }
  if (!h.has("buckets") || !h.at("buckets").is_array()) {
    return "latency_histogram missing array 'buckets'";
  }
  const JsonValue& buckets = h.at("buckets");
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const JsonValue& b = buckets.at(i);
    const std::string where =
        "latency_histogram.buckets[" + std::to_string(i) + "]";
    if (!b.is_object()) return where + " is not an object";
    if (!b.has("le_us") || !b.at("le_us").is_number()) {
      return where + " missing number 'le_us'";
    }
    if (!b.has("count") || !b.at("count").is_number() ||
        !b.at("count").is_integer()) {
      return where + " missing unsigned 'count'";
    }
    sum += b.at("count").as_u64();
  }
  if (sum != h.at("count").as_u64()) {
    return "latency_histogram bucket counts sum to " + std::to_string(sum) +
           " but count=" + std::to_string(h.at("count").as_u64());
  }
  return "";
}

}  // namespace

JsonValue metrics_to_json(const MetricsReport& r) {
  JsonValue o = JsonValue::object();
  o.set("schema_version", JsonValue::number_u64(kMetricsSchemaVersion));
  o.set("tool", JsonValue::string(r.tool));
  o.set("algorithm", JsonValue::string(r.algorithm));
  o.set("dataset", JsonValue::string(r.dataset));
  o.set("eps", JsonValue::string(r.eps));
  o.set("mu", JsonValue::number_u64(r.mu));
  o.set("threads", JsonValue::number_u64(r.threads));
  o.set("kernel", JsonValue::string(r.kernel));
  o.set("runtime_kind", JsonValue::string(r.runtime_kind));
  o.set("num_vertices", JsonValue::number_u64(r.num_vertices));
  o.set("num_edges", JsonValue::number_u64(r.num_edges));
  o.set("total_seconds", JsonValue::number(r.total_seconds));
  o.set("similarity_seconds", JsonValue::number(r.similarity_seconds));
  o.set("pruning_seconds", JsonValue::number(r.pruning_seconds));
  o.set("stage_prune_seconds", JsonValue::number(r.stage_prune_seconds));
  o.set("stage_check_seconds", JsonValue::number(r.stage_check_seconds));
  o.set("stage_core_cluster_seconds",
        JsonValue::number(r.stage_core_cluster_seconds));
  o.set("stage_noncore_cluster_seconds",
        JsonValue::number(r.stage_noncore_cluster_seconds));
  o.set("busy_seconds", JsonValue::number(r.busy_seconds));
  o.set("idle_seconds", JsonValue::number(r.idle_seconds));
  o.set("compsim_invocations", JsonValue::number_u64(r.compsim_invocations));
  o.set("tasks_submitted", JsonValue::number_u64(r.tasks_submitted));
  o.set("tasks_executed", JsonValue::number_u64(r.tasks_executed));
  o.set("steals", JsonValue::number_u64(r.steals));
  o.set("numa_mode", JsonValue::string(r.numa_mode));
  o.set("placement", JsonValue::string(r.placement));
  o.set("numa_nodes", JsonValue::number_u64(r.numa_nodes));
  o.set("steals_same_node", JsonValue::number_u64(r.steals_same_node));
  o.set("steals_remote", JsonValue::number_u64(r.steals_remote));
  o.set("remote_misses", JsonValue::number_u64(r.remote_misses));
  JsonValue per_node = JsonValue::array();
  for (const NodeCounters& n : r.per_node) per_node.push(node_counters_to_json(n));
  o.set("per_node", std::move(per_node));
  o.set("num_clusters", JsonValue::number_u64(r.num_clusters));
  o.set("num_cores", JsonValue::number_u64(r.num_cores));
  o.set("abort_reason", JsonValue::string(r.abort_reason));
  o.set("abort_phase", JsonValue::string(r.abort_phase));
  o.set("phases_completed", JsonValue::number_u64(r.phases_completed));
  o.set("peak_governed_bytes", JsonValue::number_u64(r.peak_governed_bytes));
  o.set("arcs_touched", JsonValue::number_u64(r.counters.arcs_touched));
  o.set("arcs_predicate_pruned",
        JsonValue::number_u64(r.counters.arcs_predicate_pruned));
  o.set("sims_computed", JsonValue::number_u64(r.counters.sims_computed));
  o.set("sims_reused", JsonValue::number_u64(r.counters.sims_reused));
  o.set("core_early_exits", JsonValue::number_u64(r.counters.core_early_exits));
  o.set("uf_unions", JsonValue::number_u64(r.counters.uf_unions));
  o.set("uf_finds", JsonValue::number_u64(r.counters.uf_finds));
  o.set("uf_find_steps", JsonValue::number_u64(r.counters.uf_find_steps));
  // Optional serving block: only serving rows carry it (see the header).
  if (!r.queries.empty()) {
    JsonValue queries = JsonValue::array();
    for (const QueryRowMetrics& q : r.queries) {
      queries.push(query_row_to_json(q));
    }
    o.set("queries", std::move(queries));
  }
  if (r.latency.count > 0) {
    o.set("latency_histogram", histogram_to_json(r.latency));
  }
  if (r.has_resilience) {
    o.set("resilience", resilience_to_json(r.resilience));
  }
  return o;
}

JsonValue metrics_file_json(const std::string& figure,
                            const std::vector<MetricsReport>& rows) {
  JsonValue doc = JsonValue::object();
  doc.set("schema_version", JsonValue::number_u64(kMetricsSchemaVersion));
  doc.set("figure", JsonValue::string(figure));
  JsonValue arr = JsonValue::array();
  for (const MetricsReport& r : rows) arr.push(metrics_to_json(r));
  doc.set("rows", std::move(arr));
  return doc;
}

JsonValue metrics_file_envelope(const std::string& figure,
                                std::vector<JsonValue> rows) {
  JsonValue doc = JsonValue::object();
  doc.set("schema_version", JsonValue::number_u64(kMetricsSchemaVersion));
  doc.set("figure", JsonValue::string(figure));
  JsonValue arr = JsonValue::array();
  for (JsonValue& r : rows) arr.push(std::move(r));
  doc.set("rows", std::move(arr));
  return doc;
}

std::string validate_metrics_json(const JsonValue& row) {
  if (!row.is_object()) return "metrics row is not a JSON object";
  for (const FieldSpec& f : kSchemaV2) {
    if (!row.has(f.key)) {
      return std::string("missing required key '") + f.key + "'";
    }
    if (!type_matches(row.at(f.key), f.type)) {
      return std::string("key '") + f.key + "' is not a " + type_name(f.type);
    }
  }
  if (row.at("schema_version").as_u64() != kMetricsSchemaVersion) {
    return "schema_version != " + std::to_string(kMetricsSchemaVersion);
  }
  if (!row.has("per_node")) return "missing required key 'per_node'";
  const std::string per_node_err = validate_per_node(row.at("per_node"));
  if (!per_node_err.empty()) return per_node_err;
  const std::uint64_t same = row.at("steals_same_node").as_u64();
  const std::uint64_t remote = row.at("steals_remote").as_u64();
  if (same + remote != row.at("steals").as_u64()) {
    return "steal split violated: steals_same_node=" + std::to_string(same) +
           " + steals_remote=" + std::to_string(remote) +
           " != steals=" + std::to_string(row.at("steals").as_u64());
  }
  const std::uint64_t touched = row.at("arcs_touched").as_u64();
  const std::uint64_t decided = row.at("arcs_predicate_pruned").as_u64() +
                                row.at("sims_computed").as_u64() +
                                row.at("sims_reused").as_u64();
  if (touched != decided) {
    return "funnel invariant violated: arcs_touched=" +
           std::to_string(touched) + " but pruned+computed+reused=" +
           std::to_string(decided);
  }
  if (row.has("queries")) {
    const std::string queries_err = validate_queries(row.at("queries"));
    if (!queries_err.empty()) return queries_err;
  }
  if (row.has("latency_histogram")) {
    const std::string histogram_err =
        validate_latency_histogram(row.at("latency_histogram"));
    if (!histogram_err.empty()) return histogram_err;
  }
  if (row.has("resilience")) {
    const std::string resilience_err =
        validate_resilience(row.at("resilience"));
    if (!resilience_err.empty()) return resilience_err;
  }
  return "";
}

std::string validate_metrics_file_json(const JsonValue& doc) {
  if (!doc.is_object()) return "metrics file is not a JSON object";
  if (!doc.has("schema_version") || !doc.at("schema_version").is_integer() ||
      doc.at("schema_version").as_u64() != kMetricsSchemaVersion) {
    return "file envelope missing schema_version == " +
           std::to_string(kMetricsSchemaVersion);
  }
  if (!doc.has("figure") || !doc.at("figure").is_string()) {
    return "file envelope missing string 'figure'";
  }
  if (!doc.has("rows") || !doc.at("rows").is_array()) {
    return "file envelope missing array 'rows'";
  }
  const JsonValue& rows = doc.at("rows");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::string err = validate_metrics_json(rows.at(i));
    if (!err.empty()) return "rows[" + std::to_string(i) + "]: " + err;
  }
  return "";
}

MetricsReport metrics_from_json(const JsonValue& row) {
  const std::string err = validate_metrics_json(row);
  if (!err.empty()) throw std::runtime_error("metrics schema: " + err);
  MetricsReport r;
  r.tool = row.at("tool").as_string();
  r.algorithm = row.at("algorithm").as_string();
  r.dataset = row.at("dataset").as_string();
  r.eps = row.at("eps").as_string();
  r.mu = row.at("mu").as_u64();
  r.threads = row.at("threads").as_u64();
  r.kernel = row.at("kernel").as_string();
  r.runtime_kind = row.at("runtime_kind").as_string();
  r.num_vertices = row.at("num_vertices").as_u64();
  r.num_edges = row.at("num_edges").as_u64();
  r.total_seconds = row.at("total_seconds").as_double();
  r.similarity_seconds = row.at("similarity_seconds").as_double();
  r.pruning_seconds = row.at("pruning_seconds").as_double();
  r.stage_prune_seconds = row.at("stage_prune_seconds").as_double();
  r.stage_check_seconds = row.at("stage_check_seconds").as_double();
  r.stage_core_cluster_seconds =
      row.at("stage_core_cluster_seconds").as_double();
  r.stage_noncore_cluster_seconds =
      row.at("stage_noncore_cluster_seconds").as_double();
  r.busy_seconds = row.at("busy_seconds").as_double();
  r.idle_seconds = row.at("idle_seconds").as_double();
  r.compsim_invocations = row.at("compsim_invocations").as_u64();
  r.tasks_submitted = row.at("tasks_submitted").as_u64();
  r.tasks_executed = row.at("tasks_executed").as_u64();
  r.steals = row.at("steals").as_u64();
  r.numa_mode = row.at("numa_mode").as_string();
  r.placement = row.at("placement").as_string();
  r.numa_nodes = row.at("numa_nodes").as_u64();
  r.steals_same_node = row.at("steals_same_node").as_u64();
  r.steals_remote = row.at("steals_remote").as_u64();
  r.remote_misses = row.at("remote_misses").as_u64();
  const JsonValue& per_node = row.at("per_node");
  for (std::size_t i = 0; i < per_node.size(); ++i) {
    const JsonValue& entry = per_node.at(i);
    NodeCounters n;
    n.node = entry.at("node").as_u64();
    n.workers = entry.at("workers").as_u64();
    n.steals_same_node = entry.at("steals_same_node").as_u64();
    n.steals_remote = entry.at("steals_remote").as_u64();
    n.remote_misses = entry.at("remote_misses").as_u64();
    r.per_node.push_back(n);
  }
  r.num_clusters = row.at("num_clusters").as_u64();
  r.num_cores = row.at("num_cores").as_u64();
  r.abort_reason = row.at("abort_reason").as_string();
  r.abort_phase = row.at("abort_phase").as_string();
  r.phases_completed = row.at("phases_completed").as_u64();
  r.peak_governed_bytes = row.at("peak_governed_bytes").as_u64();
  r.counters.arcs_touched = row.at("arcs_touched").as_u64();
  r.counters.arcs_predicate_pruned = row.at("arcs_predicate_pruned").as_u64();
  r.counters.sims_computed = row.at("sims_computed").as_u64();
  r.counters.sims_reused = row.at("sims_reused").as_u64();
  r.counters.core_early_exits = row.at("core_early_exits").as_u64();
  r.counters.uf_unions = row.at("uf_unions").as_u64();
  r.counters.uf_finds = row.at("uf_finds").as_u64();
  r.counters.uf_find_steps = row.at("uf_find_steps").as_u64();
  if (row.has("queries")) {
    const JsonValue& queries = row.at("queries");
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const JsonValue& q = queries.at(i);
      QueryRowMetrics qr;
      qr.id = q.at("id").as_u64();
      qr.eps = q.at("eps").as_string();
      qr.mu = q.at("mu").as_u64();
      qr.latency_ms = q.at("latency_ms").as_double();
      if (q.has("queue_ms")) qr.queue_ms = q.at("queue_ms").as_double();
      if (q.has("execute_ms")) {
        qr.execute_ms = q.at("execute_ms").as_double();
      }
      qr.num_clusters = q.at("num_clusters").as_u64();
      qr.num_cores = q.at("num_cores").as_u64();
      qr.abort_reason = q.at("abort_reason").as_string();
      qr.cache_hit = q.at("cache_hit").as_bool();
      qr.degraded = q.at("degraded").as_bool();
      r.queries.push_back(std::move(qr));
    }
  }
  if (row.has("latency_histogram")) {
    const JsonValue& h = row.at("latency_histogram");
    r.latency.count = h.at("count").as_u64();
    r.latency.p50_ms = h.at("p50_ms").as_double();
    r.latency.p90_ms = h.at("p90_ms").as_double();
    r.latency.p99_ms = h.at("p99_ms").as_double();
    r.latency.max_ms = h.at("max_ms").as_double();
    if (h.has("sum_ms")) r.latency.sum_ms = h.at("sum_ms").as_double();
    const JsonValue& buckets = h.at("buckets");
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      LatencyBucketMetrics b;
      b.le_us = buckets.at(i).at("le_us").as_double();
      b.count = buckets.at(i).at("count").as_u64();
      r.latency.buckets.push_back(b);
    }
  }
  if (row.has("resilience")) {
    const JsonValue& res = row.at("resilience");
    r.has_resilience = true;
    r.resilience.exceptions = res.at("exceptions").as_u64();
    r.resilience.shed_queue_full = res.at("shed_queue_full").as_u64();
    r.resilience.shed_overload = res.at("shed_overload").as_u64();
    r.resilience.shed_breaker = res.at("shed_breaker").as_u64();
    r.resilience.retries_advised = res.at("retries_advised").as_u64();
    r.resilience.breaker_transitions =
        res.at("breaker_transitions").as_u64();
    r.resilience.breaker_state = res.at("breaker_state").as_string();
    r.resilience.degraded_hits = res.at("degraded_hits").as_u64();
  }
  return r;
}

}  // namespace ppscan::obs
