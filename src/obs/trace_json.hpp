// Chrome/Perfetto "Trace Event Format" exporter for a TraceCollector.
//
// The output is the JSON-object form {"traceEvents": [...]}, loadable in
// Perfetto (ui.perfetto.dev → "Open trace file") and in chrome://tracing.
// Mapping:
//   PhaseBegin/PhaseEnd     → ph "B"/"E" duration pairs (nest per slot)
//   TaskRun                 → ph "X" complete events with dur
//   TaskSkip/Steal/Mark/
//   GovernorTrip/
//   KernelDispatch          → ph "i" instants (scope "t")
// Timestamps are microseconds since the collector epoch; tid is the slot
// index, named via thread_name metadata ("worker N", "master",
// "supervisor").
#pragma once

#include <ostream>

#include "obs/trace.hpp"

namespace ppscan::obs {

/// Streams the whole collector as one trace document. Requires the same
/// happens-before contract as TraceBuffer::snapshot (run finished).
void write_chrome_trace(std::ostream& out, const TraceCollector& collector);

}  // namespace ppscan::obs
