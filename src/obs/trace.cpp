#include "obs/trace.hpp"

#include <algorithm>

#include "util/env.hpp"

namespace ppscan::obs {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::size_t resolve_capacity(std::size_t requested) {
  if (!kTraceEnabled) return 0;
  std::size_t cap = requested;
  if (cap == 0) {
    cap = static_cast<std::size_t>(env_u64("PPSCAN_TRACE_CAP", 16384));
    if (cap == 0) cap = 16384;
  }
  return round_up_pow2(std::max<std::size_t>(cap, 64));
}

}  // namespace

TraceBuffer::TraceBuffer(std::size_t capacity) {
  const std::size_t cap = resolve_capacity(capacity);
  if (cap != 0) {
    events_.resize(cap);
    mask_ = cap - 1;
  }
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::vector<TraceEvent> out;
  const std::uint64_t total = cursor_.load(std::memory_order_relaxed);
  if (total == 0 || events_.empty()) return out;
  const std::uint64_t kept =
      std::min<std::uint64_t>(total, static_cast<std::uint64_t>(events_.size()));
  out.reserve(static_cast<std::size_t>(kept));
  for (std::uint64_t seq = total - kept; seq < total; ++seq) {
    out.push_back(events_[static_cast<std::size_t>(seq) & mask_]);
  }
  return out;
}

TraceCollector::TraceCollector(int num_workers, std::size_t capacity)
    : num_workers_(num_workers < 0 ? 0 : num_workers),
      epoch_(std::chrono::steady_clock::now()),
      task_events_(env_flag("PPSCAN_TRACE_TASKS", true)) {
  buffers_.reserve(static_cast<std::size_t>(num_slots()));
  for (int i = 0; i < num_slots(); ++i) {
    buffers_.push_back(std::make_unique<TraceBuffer>(capacity));
  }
}

}  // namespace ppscan::obs
