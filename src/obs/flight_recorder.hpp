// FlightRecorder — the serving layer's black box (docs/observability.md,
// "Live telemetry"; docs/resilience.md, breaker-open dump).
//
// A bounded ring of the most recent *serving events* — admissions,
// refusals, breaker transitions, exceptions, degraded serves, lifecycle
// marks — kept so a post-mortem has the last seconds of history even when
// the process dies ungracefully. Three dump paths, one schema
// ("ppscan-flight-v1", validate_flight_json):
//
//   * dump_json()/dump_to_file() — the normal path: stop() and
//     breaker-open snapshots, built with JsonValue under the lock.
//   * dump_signal_safe(fd) — the crash path: called from a fatal-signal
//     handler (install_flight_signal_dump), so it may not allocate, lock,
//     or call snprintf. Events are fixed-width POD and the writer uses
//     only util/sigsafe.hpp primitives; it reads the ring without the
//     lock — best-effort by design, a torn event in a crashing process
//     beats a deadlock on the lock the crashing thread may hold.
//
// record() is internally synchronized (flight_mu, a leaf lock in
// tools/lint/lock_protocol.toml) and is safe to call while the caller
// holds serving-layer locks.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/thread_safety.hpp"

namespace ppscan::obs {

class FlightRecorder {
 public:
  enum class EventKind : std::uint8_t {
    Lifecycle,   ///< start/stop/drain marks
    Admission,   ///< request accepted (id = query id)
    Refusal,     ///< shed or refused (label names the cause)
    Breaker,     ///< circuit-breaker state transition
    Exception,   ///< firewall-classified execution failure
    Degraded,    ///< degradation ladder substituted a cached run
  };

  static constexpr std::size_t kLabelBytes = 32;
  static constexpr std::size_t kDetailBytes = 48;

  /// Fixed-width POD so the signal-path dump touches no heap.
  struct Event {
    std::uint64_t t_ns = 0;  ///< since recorder construction
    std::uint64_t id = 0;    ///< query id, 0 when none is at hand
    EventKind kind = EventKind::Lifecycle;
    char label[kLabelBytes] = {};
    char detail[kDetailBytes] = {};
  };

  explicit FlightRecorder(std::size_t capacity = 256);

  /// Append one event; overwrites the oldest once the ring is full.
  /// label/detail are truncated to their fixed widths.
  void record(EventKind kind, const char* label, std::uint64_t id = 0,
              const char* detail = "") PPSCAN_EXCLUDES(flight_mu);

  /// Events currently retained, oldest first.
  [[nodiscard]] std::vector<Event> events() const PPSCAN_EXCLUDES(flight_mu);
  /// Total ever recorded (≥ events().size()).
  [[nodiscard]] std::uint64_t recorded() const PPSCAN_EXCLUDES(flight_mu);
  [[nodiscard]] std::size_t capacity() const { return ring_capacity_; }

  /// Schema "ppscan-flight-v1" dump; `reason` says why (stop,
  /// breaker-open, signal, ...).
  [[nodiscard]] JsonValue dump_json(const char* reason) const
      PPSCAN_EXCLUDES(flight_mu);
  /// dump_json() pretty-printed to `path`; false on I/O failure.
  bool dump_to_file(const std::string& path, const char* reason) const
      PPSCAN_EXCLUDES(flight_mu);

  /// Async-signal-safe best-effort dump of the same schema to `fd`.
  /// Deliberately lock-free (see header comment).
  void dump_signal_safe(int fd, const char* reason) const;

  static const char* kind_name(EventKind kind);

 private:
  const std::size_t ring_capacity_;
  const std::chrono::steady_clock::time_point epoch_;

  // guards: the event ring (ring_, next_, recorded_count_).
  mutable CheckedMutex flight_mu;
  std::vector<Event> ring_ PPSCAN_GUARDED_BY(flight_mu);
  std::size_t next_ PPSCAN_GUARDED_BY(flight_mu) = 0;
  std::uint64_t recorded_count_ PPSCAN_GUARDED_BY(flight_mu) = 0;
};

/// Validates a "ppscan-flight-v1" document; on failure returns false and
/// (when non-null) fills *error.
bool validate_flight_json(const JsonValue& doc, std::string* error);

/// Installs SIGSEGV/SIGBUS/SIGFPE/SIGABRT handlers that write `recorder`'s
/// ring to `path` via dump_signal_safe, then re-raise the default action.
/// One global registration (last call wins); `recorder` and `path` must
/// outlive the process's crashing breath — in practice, the CLI passes
/// objects that live until exit. Pass nullptr to disarm.
void install_flight_signal_dump(const FlightRecorder* recorder,
                                const char* path);

}  // namespace ppscan::obs
