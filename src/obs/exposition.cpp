#include "obs/exposition.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ppscan::obs {
namespace {

void close_if_open(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Reads until the end of the request headers ("\r\n\r\n"), EOF, or the
/// size cap. We only ever look at the request line, so a capped read is
/// fine — anything longer than 4 KiB is not a scrape.
std::string read_request(int fd) {
  std::string req;
  char buf[1024];
  while (req.size() < 4096) {
    const ::ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
    if (req.find("\r\n\r\n") != std::string::npos) break;
    if (req.find("\n\n") != std::string::npos) break;
  }
  return req;
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ::ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                               MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer went away mid-response; nothing to salvage
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

ExpositionServer::ExpositionServer(std::uint16_t port, Renderer renderer)
    : renderer_(std::move(renderer)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("exposition: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    close_if_open(listen_fd_);
    throw std::runtime_error(
        std::string("exposition: bind/listen on 127.0.0.1:") +
        std::to_string(port) + " failed: " + std::strerror(err));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::pipe(stop_pipe_) != 0) {
    close_if_open(listen_fd_);
    throw std::runtime_error("exposition: pipe() failed");
  }
  thread_ = std::thread([this] { serve_loop(); });
}

ExpositionServer::~ExpositionServer() { stop(); }

void ExpositionServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  const char byte = 0;
  [[maybe_unused]] const ::ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  close_if_open(listen_fd_);
  close_if_open(stop_pipe_[0]);
  close_if_open(stop_pipe_[1]);
}

void ExpositionServer::serve_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;  // stop() signalled
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    handle_connection(conn);
    ::close(conn);
  }
}

void ExpositionServer::handle_connection(int fd) {
  // A stuck client must not wedge the (single-threaded) scrape loop.
  timeval tv = {};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  const std::string req = read_request(fd);
  requests_.fetch_add(1, std::memory_order_relaxed);

  // Request line: "GET <path> HTTP/1.x".
  std::string method;
  std::string path;
  const std::size_t sp1 = req.find(' ');
  if (sp1 != std::string::npos) {
    method = req.substr(0, sp1);
    const std::size_t sp2 = req.find(' ', sp1 + 1);
    if (sp2 != std::string::npos) path = req.substr(sp1 + 1, sp2 - sp1 - 1);
  }
  if (method != "GET") {
    send_all(fd, http_response("405 Method Not Allowed", "text/plain",
                               "method not allowed\n"));
    return;
  }
  if (path == "/healthz") {
    send_all(fd, http_response("200 OK", "text/plain", "ok\n"));
    return;
  }
  if (path == "/metrics") {
    send_all(fd,
             http_response("200 OK", "text/plain; version=0.0.4",
                           renderer_ ? renderer_() : std::string()));
    return;
  }
  send_all(fd, http_response("404 Not Found", "text/plain", "not found\n"));
}

// --- text-exposition rendering helpers ---------------------------------

void prom_family(std::string& out, const char* name, const char* help,
                 const char* type) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void prom_sample(std::string& out, const char* name, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  out += name;
  out += ' ';
  out += buf;
  out += '\n';
}

void prom_sample_u64(std::string& out, const char* name,
                     std::uint64_t value) {
  out += name;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

void prom_sample_labeled(std::string& out, const char* name,
                         const std::string& labels, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  out += name;
  out += '{';
  out += labels;
  out += "} ";
  out += buf;
  out += '\n';
}

std::string http_get_local(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("http_get_local: socket() failed");
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    throw std::runtime_error("http_get_local: connect() failed");
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  send_all(fd, req);
  std::string resp;
  char buf[4096];
  for (;;) {
    const ::ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t split = resp.find("\r\n\r\n");
  if (split == std::string::npos) {
    throw std::runtime_error("http_get_local: malformed response");
  }
  if (resp.rfind("HTTP/1.0 200", 0) != 0 &&
      resp.rfind("HTTP/1.1 200", 0) != 0) {
    throw std::runtime_error("http_get_local: non-200 response: " +
                             resp.substr(0, resp.find("\r\n")));
  }
  return resp.substr(split + 4);
}

}  // namespace ppscan::obs
