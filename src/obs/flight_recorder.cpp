#include "obs/flight_recorder.hpp"

#include <atomic>
#include <csignal>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "util/sigsafe.hpp"

namespace ppscan::obs {
namespace {

void copy_field(char* dst, std::size_t cap, const char* src) {
  if (src == nullptr) src = "";
  std::size_t i = 0;
  for (; i + 1 < cap && src[i] != '\0'; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {
  CheckedLock lock(flight_mu);
  ring_.resize(ring_capacity_);
}

void FlightRecorder::record(EventKind kind, const char* label,
                            std::uint64_t id, const char* detail) {
  Event ev;
  ev.t_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  ev.id = id;
  ev.kind = kind;
  copy_field(ev.label, kLabelBytes, label);
  copy_field(ev.detail, kDetailBytes, detail);

  CheckedLock lock(flight_mu);
  ring_[next_] = ev;
  next_ = (next_ + 1) % ring_capacity_;
  ++recorded_count_;
}

std::vector<FlightRecorder::Event> FlightRecorder::events() const {
  CheckedLock lock(flight_mu);
  std::vector<Event> out;
  const std::size_t live = recorded_count_ < ring_capacity_
                               ? static_cast<std::size_t>(recorded_count_)
                               : ring_capacity_;
  out.reserve(live);
  // Oldest first: when the ring has wrapped, next_ points at the oldest.
  const std::size_t start =
      recorded_count_ < ring_capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < live; ++i) {
    out.push_back(ring_[(start + i) % ring_capacity_]);
  }
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  CheckedLock lock(flight_mu);
  return recorded_count_;
}

const char* FlightRecorder::kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::Lifecycle: return "lifecycle";
    case EventKind::Admission: return "admission";
    case EventKind::Refusal: return "refusal";
    case EventKind::Breaker: return "breaker";
    case EventKind::Exception: return "exception";
    case EventKind::Degraded: return "degraded";
  }
  return "?";
}

JsonValue FlightRecorder::dump_json(const char* reason) const {
  JsonValue doc = JsonValue::object();
  doc.set("schema", JsonValue::string("ppscan-flight-v1"));
  doc.set("reason", JsonValue::string(reason == nullptr ? "" : reason));
  doc.set("capacity", JsonValue::number_u64(ring_capacity_));
  doc.set("recorded", JsonValue::number_u64(recorded()));
  JsonValue rows = JsonValue::array();
  for (const Event& ev : events()) {
    JsonValue row = JsonValue::object();
    row.set("t_ns", JsonValue::number_u64(ev.t_ns));
    row.set("kind", JsonValue::string(kind_name(ev.kind)));
    row.set("label", JsonValue::string(ev.label));
    row.set("id", JsonValue::number_u64(ev.id));
    row.set("detail", JsonValue::string(ev.detail));
    rows.push(std::move(row));
  }
  doc.set("events", std::move(rows));
  return doc;
}

bool FlightRecorder::dump_to_file(const std::string& path,
                                  const char* reason) const {
  std::ofstream out(path);
  if (!out) return false;
  out << dump_json(reason).dump(2) << "\n";
  return static_cast<bool>(out);
}

// The crash path: no locks (the crashing thread may hold flight_mu), no
// heap, write()-only. Reading the ring racily can yield one torn event;
// the dump is explicitly best-effort and the validator tolerates any
// byte content inside the fixed-width fields.
void FlightRecorder::dump_signal_safe(int fd, const char* reason) const
    PPSCAN_NO_THREAD_SAFETY_ANALYSIS {
  namespace ss = util::sigsafe;
  char buf[512];
  std::size_t pos = 0;
  pos = ss::append_str(buf, sizeof buf, pos,
                       "{\"schema\":\"ppscan-flight-v1\",\"reason\":\"");
  pos = ss::append_json_str(buf, sizeof buf, pos,
                            reason == nullptr ? "" : reason);
  pos = ss::append_str(buf, sizeof buf, pos, "\",\"capacity\":");
  pos = ss::append_u64(buf, sizeof buf, pos, ring_capacity_);
  pos = ss::append_str(buf, sizeof buf, pos, ",\"recorded\":");
  pos = ss::append_u64(buf, sizeof buf, pos, recorded_count_);
  pos = ss::append_str(buf, sizeof buf, pos, ",\"events\":[");
  ss::write_all(fd, buf, pos);

  const std::size_t live = recorded_count_ < ring_capacity_
                               ? static_cast<std::size_t>(recorded_count_)
                               : ring_capacity_;
  const std::size_t start =
      recorded_count_ < ring_capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < live; ++i) {
    const Event& ev = ring_[(start + i) % ring_capacity_];
    pos = 0;
    if (i > 0) pos = ss::append_str(buf, sizeof buf, pos, ",");
    pos = ss::append_str(buf, sizeof buf, pos, "{\"t_ns\":");
    pos = ss::append_u64(buf, sizeof buf, pos, ev.t_ns);
    pos = ss::append_str(buf, sizeof buf, pos, ",\"kind\":\"");
    pos = ss::append_str(buf, sizeof buf, pos, kind_name(ev.kind));
    pos = ss::append_str(buf, sizeof buf, pos, "\",\"label\":\"");
    pos = ss::append_json_str(buf, sizeof buf, pos, ev.label);
    pos = ss::append_str(buf, sizeof buf, pos, "\",\"id\":");
    pos = ss::append_u64(buf, sizeof buf, pos, ev.id);
    pos = ss::append_str(buf, sizeof buf, pos, ",\"detail\":\"");
    pos = ss::append_json_str(buf, sizeof buf, pos, ev.detail);
    pos = ss::append_str(buf, sizeof buf, pos, "\"}");
    ss::write_all(fd, buf, pos);
  }
  ss::write_all(fd, "]}\n", 3);
}

bool validate_flight_json(const JsonValue& doc, std::string* error) {
  const auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (!doc.is_object()) return fail("flight: document is not an object");
  if (!doc.has("schema") || !doc.at("schema").is_string() ||
      doc.at("schema").as_string() != "ppscan-flight-v1") {
    return fail("flight: schema key missing or not 'ppscan-flight-v1'");
  }
  if (!doc.has("reason") || !doc.at("reason").is_string() ||
      doc.at("reason").as_string().empty()) {
    return fail("flight: reason missing or empty");
  }
  for (const char* key : {"capacity", "recorded"}) {
    if (!doc.has(key) || !doc.at(key).is_number()) {
      return fail(std::string("flight: ") + key + " missing or not a number");
    }
  }
  if (!doc.has("events") || !doc.at("events").is_array()) {
    return fail("flight: events missing or not an array");
  }
  const auto& rows = doc.at("events");
  if (rows.size() > doc.at("capacity").as_u64()) {
    return fail("flight: more events than capacity");
  }
  static const char* kKinds[] = {"lifecycle", "admission", "refusal",
                                 "breaker",   "exception", "degraded"};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows.at(i);
    const std::string at = "flight: events[" + std::to_string(i) + "]";
    if (!row.is_object()) return fail(at + " is not an object");
    for (const char* key : {"t_ns", "id"}) {
      if (!row.has(key) || !row.at(key).is_number()) {
        return fail(at + "." + key + " missing or not a number");
      }
    }
    for (const char* key : {"kind", "label", "detail"}) {
      if (!row.has(key) || !row.at(key).is_string()) {
        return fail(at + "." + key + " missing or not a string");
      }
    }
    bool known = false;
    for (const char* k : kKinds) known |= row.at("kind").as_string() == k;
    if (!known) {
      return fail(at + ".kind unknown: " + row.at("kind").as_string());
    }
  }
  return true;
}

namespace {

// Fatal-signal dump registration. The handler runs on the crashing
// thread; it acquire-loads the recorder pointer (paired with the release
// store in install_flight_signal_dump, which also publishes the path
// bytes written before it).
// protocol: release-acquire — installer release-stores after writing
// g_flight_path; the signal handler acquire-loads before reading it.
std::atomic<const FlightRecorder*> g_flight_recorder{nullptr};
char g_flight_path[256] = {};

extern "C" void flight_signal_handler(int signo) {
  const FlightRecorder* rec =
      g_flight_recorder.load(std::memory_order_acquire);
  if (rec != nullptr) {
    const int fd =
        ::open(g_flight_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      rec->dump_signal_safe(fd, "signal");
      ::close(fd);
    }
  }
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

void install_flight_signal_dump(const FlightRecorder* recorder,
                                const char* path) {
  if (recorder == nullptr || path == nullptr) {
    g_flight_recorder.store(nullptr, std::memory_order_release);
    return;
  }
  copy_field(g_flight_path, sizeof g_flight_path, path);
  g_flight_recorder.store(recorder, std::memory_order_release);
  struct sigaction sa = {};
  sa.sa_handler = flight_signal_handler;
  ::sigemptyset(&sa.sa_mask);
  for (int signo : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT}) {
    ::sigaction(signo, &sa, nullptr);
  }
}

}  // namespace ppscan::obs
