#include "obs/windowed_histogram.hpp"

#include <algorithm>

namespace ppscan::obs {

WindowedLatency::WindowedLatency(std::chrono::milliseconds horizon,
                                 std::chrono::milliseconds interval)
    : horizon_(std::max(horizon, std::chrono::milliseconds{1})) {
  const auto step = std::max(interval, std::chrono::milliseconds{1});
  const auto slots =
      static_cast<std::size_t>((horizon_.count() + step.count() - 1) /
                               step.count()) +
      1;
  slots_.resize(slots);
}

void WindowedLatency::publish(const LatencyHistogram& lifetime,
                              Clock::time_point now) {
  if (slots_.empty()) return;
  last_delta_ = lifetime.delta_since(published_);
  published_ = lifetime;
  Slot& slot = slots_[head_];
  slot.delta = last_delta_;
  slot.stamp = now;
  slot.live = true;
  head_ = (head_ + 1) % slots_.size();
  ++publishes_;
}

LatencyHistogram WindowedLatency::window(Clock::time_point now) const {
  LatencyHistogram merged;
  for (const Slot& slot : slots_) {
    if (!slot.live) continue;
    if (now - slot.stamp >= horizon_) continue;  // aged out of the window
    merged.merge(slot.delta);
  }
  return merged;
}

}  // namespace ppscan::obs
