// Minimal dependency-free JSON value: enough of a writer + parser for the
// metrics/trace exporters and the schema round-trip tests. Not a general
// JSON library — no \uXXXX surrogate pairs, numbers are double or uint64,
// object key order is preserved (stable, diffable output).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ppscan::obs {

class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Object, Array };

  JsonValue() = default;
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  static JsonValue number(double d);
  static JsonValue number_u64(std::uint64_t u);
  static JsonValue string(std::string s);
  static JsonValue object();
  static JsonValue array();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_double() const { return num_; }
  /// Exact when the value was written via number_u64 or parsed from an
  /// unsigned integer literal; otherwise truncates the double.
  [[nodiscard]] std::uint64_t as_u64() const {
    return is_integer_ ? u64_ : static_cast<std::uint64_t>(num_);
  }
  [[nodiscard]] bool is_integer() const { return is_integer_; }
  [[nodiscard]] const std::string& as_string() const { return str_; }

  // --- object interface -----------------------------------------------
  void set(std::string key, JsonValue value);
  [[nodiscard]] bool has(const std::string& key) const;
  /// Throws std::out_of_range when the key is absent.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const {
    return members_;
  }

  // --- array interface ------------------------------------------------
  void push(JsonValue value);
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] const JsonValue& at(std::size_t i) const { return items_[i]; }
  [[nodiscard]] const std::vector<JsonValue>& items() const { return items_; }

  /// Serializes. indent 0 = compact single line; indent > 0 pretty-prints
  /// with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parses a complete JSON document (rejects trailing garbage). Throws
  /// std::runtime_error with a byte offset on malformed input.
  static JsonValue parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::uint64_t u64_ = 0;
  bool is_integer_ = false;
  std::string str_;
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> items_;
};

/// Escapes a string for embedding in JSON output (used by the streaming
/// trace writer, which never builds a JsonValue tree for event rows).
std::string json_escape(const std::string& s);

}  // namespace ppscan::obs
