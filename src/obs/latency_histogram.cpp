#include "obs/latency_histogram.hpp"

#include <algorithm>

namespace ppscan::obs {

void LatencyHistogram::record(double latency_ms) {
  const double us = latency_ms * 1000.0;
  std::size_t bucket = 0;
  double bound = 1.0;
  while (bucket + 1 < kBuckets && us > bound) {
    bound *= 2.0;
    ++bucket;
  }
  counts[bucket] += 1;
  total += 1;
  max_ms = std::max(max_ms, latency_ms);
  sum_ms += latency_ms;
}

double LatencyHistogram::quantile_ms(double q) const {
  if (total == 0) return 0;
  const double target = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (static_cast<double>(seen) >= target) {
      const double bound_ms = bucket_le_us(i) / 1000.0;
      // The unbounded-in-spirit tail reports the true maximum instead of
      // its nominal bound.
      return i + 1 == kBuckets ? std::max(bound_ms, max_ms)
                               : std::min(bound_ms, max_ms);
    }
  }
  return max_ms;
}

double LatencyHistogram::bucket_le_us(std::size_t i) {
  return static_cast<double>(std::uint64_t{1} << i);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) counts[i] += other.counts[i];
  total += other.total;
  max_ms = std::max(max_ms, other.max_ms);
  sum_ms += other.sum_ms;
}

LatencyHistogram LatencyHistogram::delta_since(
    const LatencyHistogram& baseline) const {
  LatencyHistogram delta;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    // Defensive clamp: a histogram is monotone per bucket, so the
    // subtraction cannot underflow unless the caller crossed streams.
    delta.counts[i] =
        counts[i] >= baseline.counts[i] ? counts[i] - baseline.counts[i] : 0;
    delta.total += delta.counts[i];
  }
  if (delta.total > 0) {
    delta.max_ms = max_ms;
    delta.sum_ms = std::max(0.0, sum_ms - baseline.sum_ms);
  }
  return delta;
}

}  // namespace ppscan::obs
