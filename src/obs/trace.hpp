// Per-worker event tracing: fixed-capacity ring buffers a run can carry
// through the executor and every algorithm phase, exported afterwards as a
// Chrome/Perfetto trace (obs/trace_json.hpp).
//
// Design constraints, in order:
//   1. Zero allocation and no synchronization on the hot path. Every
//      TraceBuffer has exactly one writer (worker i writes buffer i, the
//      orchestrating thread writes the master slot, the governor's
//      supervisor thread writes the supervisor slot), so an event record is
//      two plain stores and a relaxed cursor bump into pre-allocated,
//      cache-line-padded storage.
//   2. Fully compiled out when configured with -DPPSCAN_TRACE=OFF: record()
//      and the PPSCAN_TRACE_* macros expand to nothing, buffers allocate
//      nothing. The types stay defined so callers need no #ifdefs.
//   3. Readers (the exporters) run strictly after the run's join/barrier,
//      which is the happens-before edge that publishes the plain event
//      payloads; snapshot() documents this contract.
//
// See docs/observability.md for the event catalog and Perfetto how-to.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#if !defined(PPSCAN_TRACE_ENABLED)
// Builds that bypass CMake (e.g. single-TU experiments) default to ON.
#define PPSCAN_TRACE_ENABLED 1
#endif

namespace ppscan::obs {

/// True when the tracing hooks were compiled in (CMake -DPPSCAN_TRACE=ON,
/// the default). When false every TraceBuffer stays empty and the CLI
/// warns that --trace-out will produce an event-free trace.
inline constexpr bool kTraceEnabled = PPSCAN_TRACE_ENABLED != 0;

/// What happened. The catalog (with the meaning of `arg` per kind) is
/// documented in docs/observability.md; keep the two in sync.
enum class TraceEventKind : std::uint8_t {
  PhaseBegin,      ///< algorithm phase entered (master slot)
  PhaseEnd,        ///< algorithm phase left (master slot)
  TaskRun,         ///< executor task executed; dur_ns is the fn_ call span
  TaskSkip,        ///< executor task skipped because the governor tripped
  Steal,           ///< successful steal; arg = victim worker index
  GovernorTrip,    ///< governor abort observed; arg = AbortReason value
  KernelDispatch,  ///< SIMD kernel resolved for a run; arg = IntersectKind
  Mark,            ///< free-form instant (name carries the meaning)
  SpanBegin,       ///< async span opened; arg = span id (e.g. query id)
  SpanEnd,         ///< async span closed; arg = matching span id
};

/// One recorded event. `name` must point at storage that outlives the
/// collector — in practice string literals (phase names, event labels).
struct TraceEvent {
  std::uint64_t t_ns = 0;    ///< start, steady-clock ns since collector epoch
  std::uint64_t dur_ns = 0;  ///< span length; 0 for instant events
  std::uint64_t arg = 0;     ///< kind-specific payload
  const char* name = nullptr;
  TraceEventKind kind = TraceEventKind::Mark;
};

/// Fixed-capacity single-writer ring of TraceEvents. The cursor counts
/// every record() ever made; once it exceeds the capacity the ring keeps
/// only the newest `capacity()` events (overwrite-oldest, which for a
/// trace is the right half to lose: the tail shows where time went).
class TraceBuffer {
 public:
  /// Capacity is rounded up to a power of two, minimum 64. With tracing
  /// compiled out nothing is allocated and record() is a no-op.
  explicit TraceBuffer(std::size_t capacity);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Hot path. Single writer only — two plain stores plus a relaxed
  /// cursor bump; concurrent record() calls on the SAME buffer are a data
  /// race by design (each thread owns its own buffer).
  void record(TraceEventKind kind, const char* name, std::uint64_t t_ns,
              std::uint64_t dur_ns = 0, std::uint64_t arg = 0) {
#if PPSCAN_TRACE_ENABLED
    const std::uint64_t seq = cursor_.load(std::memory_order_relaxed);
    TraceEvent& slot = events_[static_cast<std::size_t>(seq) & mask_];
    slot.t_ns = t_ns;
    slot.dur_ns = dur_ns;
    slot.arg = arg;
    slot.name = name;
    slot.kind = kind;
    cursor_.store(seq + 1, std::memory_order_relaxed);
#else
    (void)kind;
    (void)name;
    (void)t_ns;
    (void)dur_ns;
    (void)arg;
#endif
  }

  /// Total events ever recorded (may exceed capacity; the difference is
  /// the number of overwritten/lost oldest events).
  [[nodiscard]] std::uint64_t recorded() const {
    return cursor_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const { return events_.size(); }

  /// Copies the retained events oldest-first. NOT safe concurrently with
  /// record(): callers must hold a happens-before edge from the writer
  /// (thread join, executor wait_idle barrier, or an external
  /// release/acquire handoff as in tests/test_trace_buffer_mt.cpp).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

 private:
  std::vector<TraceEvent> events_;
  std::size_t mask_ = 0;
  // Single-writer event count. Both sides relaxed: the cursor orders
  // nothing — readers are published by an external happens-before edge
  // (join/barrier), and the writer is alone, so plain increments suffice.
  // protocol: relaxed-counter
  std::atomic<std::uint64_t> cursor_{0};
};

/// Owns one TraceBuffer per participating thread plus the collector-wide
/// steady-clock epoch. Slot layout: [0, num_workers) = executor workers,
/// master_slot() = the orchestrating (calling) thread, supervisor_slot() =
/// the governor's supervisor thread. Each slot has exactly one writer.
class TraceCollector {
 public:
  /// `capacity` 0 reads PPSCAN_TRACE_CAP (events per buffer, default
  /// 16384; see util/env.hpp for the parse rules).
  explicit TraceCollector(int num_workers, std::size_t capacity = 0);

  [[nodiscard]] int num_workers() const { return num_workers_; }
  [[nodiscard]] int master_slot() const { return num_workers_; }
  [[nodiscard]] int supervisor_slot() const { return num_workers_ + 1; }
  [[nodiscard]] int num_slots() const { return num_workers_ + 2; }

  [[nodiscard]] TraceBuffer& buffer(int slot) { return *buffers_[slot]; }
  [[nodiscard]] const TraceBuffer& buffer(int slot) const {
    return *buffers_[slot];
  }

  /// Steady-clock ns since the collector was constructed.
  [[nodiscard]] std::uint64_t now_ns() const {
    return since_epoch_ns(std::chrono::steady_clock::now());
  }

  /// Converts a caller-measured time_point (e.g. the executor's existing
  /// busy-time stopwatch reads) onto the collector's epoch.
  [[nodiscard]] std::uint64_t since_epoch_ns(
      std::chrono::steady_clock::time_point tp) const {
    if (tp <= epoch_) return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_)
            .count());
  }

  /// Current phase label, set by the orchestrating thread at the phase
  /// barrier and read by workers to label their TaskRun events.
  void set_phase(const char* name) {
    current_phase_.store(name, std::memory_order_release);
  }
  [[nodiscard]] const char* phase_name() const {
    const char* p = current_phase_.load(std::memory_order_acquire);
    return p == nullptr ? "(no phase)" : p;
  }

  /// Whether per-task events (TaskRun/TaskSkip/Steal) are recorded.
  /// Phase spans are always cheap; per-task events cost one record() per
  /// executed task range, so PPSCAN_TRACE_TASKS=0 turns them off.
  [[nodiscard]] bool task_events() const { return task_events_; }

  /// Records an instant (or Begin/End) event timestamped now.
  void emit(int slot, TraceEventKind kind, const char* name,
            std::uint64_t arg = 0) {
    buffer(slot).record(kind, name, now_ns(), 0, arg);
  }

 private:
  int num_workers_;
  std::vector<std::unique_ptr<TraceBuffer>> buffers_;
  std::chrono::steady_clock::time_point epoch_;
  bool task_events_ = true;
  // Phase label handoff master → workers. The release store at the phase
  // barrier pairs with the acquire load in the executor's task loop; the
  // payload is a string literal so only the pointer itself needs the edge.
  // protocol: release-acquire
  std::atomic<const char*> current_phase_{nullptr};
};

}  // namespace ppscan::obs

// Emit macros. These compile to nothing with PPSCAN_TRACE=OFF, so an
// annotated call site costs literally zero there; with tracing on they
// cost a null check when no collector is installed.
//
// Hot-path discipline: these macros must NOT appear in src/setops/ — the
// intersection kernels are the innermost loops of every algorithm and a
// per-element event would drown both the buffer and the run. Kernel
// dispatch is recorded once per run at the algorithm layer instead
// (TraceEventKind::KernelDispatch). Enforced by the `trace-hotpath` rule
// in tools/lint/ppscan_lint.py.
#if PPSCAN_TRACE_ENABLED
#define PPSCAN_TRACE_MASTER_EVENT(tc, kind, name, arg)              \
  do {                                                              \
    ::ppscan::obs::TraceCollector* pp_trace_tc_ = (tc);             \
    if (pp_trace_tc_ != nullptr) {                                  \
      pp_trace_tc_->emit(pp_trace_tc_->master_slot(), (kind), (name), \
                         static_cast<std::uint64_t>(arg));          \
    }                                                               \
  } while (0)
#define PPSCAN_TRACE_SET_PHASE(tc, name)                \
  do {                                                  \
    ::ppscan::obs::TraceCollector* pp_trace_tc_ = (tc); \
    if (pp_trace_tc_ != nullptr) {                      \
      pp_trace_tc_->set_phase(name);                    \
    }                                                   \
  } while (0)
#else
#define PPSCAN_TRACE_MASTER_EVENT(tc, kind, name, arg) \
  do {                                                 \
    (void)sizeof(tc);                                  \
  } while (0)
#define PPSCAN_TRACE_SET_PHASE(tc, name) \
  do {                                   \
    (void)sizeof(tc);                    \
  } while (0)
#endif
