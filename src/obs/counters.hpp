// Algorithm counters: the pruning funnel the paper's evaluation is built
// around, counted identically across all five algorithms and GS-Index so
// runs are diffable (Fig. 4 reports compsim invocations; these break the
// remaining arcs down by WHY they were cheap).
//
// Counting convention (docs/observability.md has the worked example):
//   * arcs_touched — directed arcs whose similarity got decided, counting
//     each direction separately. An algorithm that mirrors a result onto
//     the reverse arc (the `u < v` reuse of paper Algorithm 3) counts the
//     mirror as touched + reused.
//   * arcs_predicate_pruned — decided from degrees alone (need <= 2 or
//     need > min(d(u), d(v)) + 1), no intersection run.
//   * sims_computed — intersection kernel actually invoked (== the
//     RunStats::compsim_invocations funnel stage).
//   * sims_reused — decided by mirroring the reverse arc's result.
//   Invariant, by construction:
//     arcs_predicate_pruned + sims_computed + sims_reused == arcs_touched
//   and on a run that decides every arc (ppSCAN with min-max and
//   union-find pruning disabled, single thread), arcs_touched == 2|E|.
//   * core_early_exits — core checks settled before scanning the full
//     neighbor list (min-max bound conclusive, or the threshold/failure
//     count reached mid-list).
//   * uf_unions / uf_finds / uf_find_steps — union-find operations and the
//     total parent-hops walked by the counted find() calls; steps/find is
//     the path-length the paper's pruning keeps near 1.
//
// Threading model: plain (non-atomic) fields in per-worker, cache-line-
// padded slots — the same single-writer-slot pattern as the ppSCAN phase-7
// membership merge. Workers add locally; the orchestrating thread merges
// after the phase barrier, which is the happens-before edge.
#pragma once

#include <cstdint>
#include <vector>

namespace ppscan::obs {

struct AlgoCounters {
  std::uint64_t arcs_touched = 0;
  std::uint64_t arcs_predicate_pruned = 0;
  std::uint64_t sims_computed = 0;
  std::uint64_t sims_reused = 0;
  std::uint64_t core_early_exits = 0;
  std::uint64_t uf_unions = 0;
  std::uint64_t uf_finds = 0;
  std::uint64_t uf_find_steps = 0;

  AlgoCounters& operator+=(const AlgoCounters& o) {
    arcs_touched += o.arcs_touched;
    arcs_predicate_pruned += o.arcs_predicate_pruned;
    sims_computed += o.sims_computed;
    sims_reused += o.sims_reused;
    core_early_exits += o.core_early_exits;
    uf_unions += o.uf_unions;
    uf_finds += o.uf_finds;
    uf_find_steps += o.uf_find_steps;
    return *this;
  }
};

/// Per-NUMA-node steal-locality counters (schema-v2 `per_node` rows): how
/// many claims the node's workers took from same-node vs remote victims,
/// and how often a claim had to leave the node after its same-node group
/// (own segment, own deque, same-node victims) was exhausted. Aggregated
/// from the executor's per-worker relaxed counters at a barrier; plain
/// data here so obs stays dependency-free (the executor fills it in).
struct NodeCounters {
  std::uint64_t node = 0;     ///< topology node index (0-based, dense)
  std::uint64_t workers = 0;  ///< executor workers assigned to the node
  std::uint64_t steals_same_node = 0;
  std::uint64_t steals_remote = 0;
  std::uint64_t remote_misses = 0;
};

/// Per-worker counter slots. Padded to a cache line so two workers
/// bumping their own counters never false-share.
class CounterSlots {
 public:
  explicit CounterSlots(std::size_t num_slots) : slots_(num_slots) {}

  /// The slot is single-writer: exactly one thread may use index `i`
  /// between merges (workers use their executor index, the orchestrating
  /// thread the extra last slot — mirroring the membership-merge layout).
  [[nodiscard]] AlgoCounters& slot(std::size_t i) { return slots_[i].c; }

  /// Sums all slots. Requires a happens-before edge from every writer
  /// (executor barrier / join), same contract as TraceBuffer::snapshot.
  [[nodiscard]] AlgoCounters merged() const {
    AlgoCounters total;
    for (const Slot& s : slots_) total += s.c;
    return total;
  }

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

 private:
  struct alignas(64) Slot {
    AlgoCounters c;
  };
  std::vector<Slot> slots_;
};

}  // namespace ppscan::obs
