// Fixed geometric latency histogram: bucket i counts latencies ≤ 2^i µs
// (last bucket is unbounded). Cheap enough to update under a stats mutex,
// coarse enough to answer p50/p99 without storing samples.
//
// Lived in serve/query_service.hpp until the live-telemetry layer needed
// histogram *arithmetic* (merge, delta) that the serving layer should not
// own: the windowed SLO view (windowed_histogram.hpp) folds lifetime
// histograms into per-interval deltas, and the Prometheus exposition
// (exposition.hpp) renders cumulative buckets plus an exact _sum. The
// serving layer aliases this type, so existing callers are untouched.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace ppscan::obs {

struct LatencyHistogram {
  static constexpr std::size_t kBuckets = 28;  // 1 µs .. ~67 s, then +inf
  std::array<std::uint64_t, kBuckets> counts{};
  std::uint64_t total = 0;
  double max_ms = 0;
  /// Exact sum of every recorded latency (ms) — the Prometheus `_sum`
  /// series, and the honest way to report a mean from bucketed data.
  double sum_ms = 0;

  void record(double latency_ms);
  /// Upper bound (ms) of the bucket containing quantile q ∈ [0, 1]; exact
  /// max for the unbounded tail. 0 when empty.
  [[nodiscard]] double quantile_ms(double q) const;
  /// Upper bound (µs) of bucket i, for serialization.
  [[nodiscard]] static double bucket_le_us(std::size_t i);

  /// Bucket-wise accumulate `other` into this histogram.
  void merge(const LatencyHistogram& other);
  /// Bucket-wise `this - baseline`, where `baseline` is an earlier
  /// observation of the same monotone histogram (every bucket of this is
  /// ≥ the baseline's). The delta's max_ms is this histogram's max — an
  /// upper bound, since per-interval maxima are not tracked — and its
  /// sum_ms is the exact sum difference.
  [[nodiscard]] LatencyHistogram delta_since(
      const LatencyHistogram& baseline) const;
};

}  // namespace ppscan::obs
