// Synthetic graph generators.
//
// The paper evaluates on SNAP/WebGraph datasets (orkut, webbase, twitter,
// friendster) and on ROLL scale-free graphs; none are available offline, so
// these generators produce scaled stand-ins with the structural properties
// each experiment depends on (see DESIGN.md §3):
//   * erdos_renyi      — uniform G(n, m) noise graphs (tests, micro-benches)
//   * barabasi_albert  — preferential attachment; scale-free with a target
//                        average degree, standing in for the ROLL graphs
//   * rmat             — Kronecker-style generator with heavy degree skew,
//                        standing in for twitter/webbase
//   * lfr_like         — planted communities with power-law sizes and a
//                        tunable mixing fraction, standing in for the
//                        community-rich social graphs (orkut, friendster)
// All generators are deterministic in (parameters, seed).
#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"
#include "graph/graph_builder.hpp"

namespace ppscan {

/// G(n, m): m distinct uniform edges among n vertices (no self loops).
CsrGraph erdos_renyi(VertexId n, EdgeId m, std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `edges_per_vertex` existing vertices chosen proportionally to degree.
/// Average degree converges to ~2 * edges_per_vertex.
CsrGraph barabasi_albert(VertexId n, VertexId edges_per_vertex,
                         std::uint64_t seed);

struct RmatParams {
  int scale = 16;          // n = 2^scale vertices
  double edge_factor = 16; // m = edge_factor * n undirected edge attempts
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  bool scramble_ids = true;  // permute vertex ids to break locality artifacts
};

/// R-MAT (Chakrabarti et al.): recursive quadrant sampling. Duplicate edge
/// attempts collapse, so the realized |E| is slightly below the attempt
/// budget — the skewed degree distribution is the point.
CsrGraph rmat(const RmatParams& params, std::uint64_t seed);

struct LfrParams {
  VertexId n = 10000;
  double avg_degree = 20;
  double mixing = 0.2;        // fraction of a vertex's edges leaving its community
  VertexId min_community = 16;
  VertexId max_community = 512;
  double community_exponent = 2.0;  // power-law exponent of community sizes
};

/// LFR-like planted-community graph: community sizes follow a bounded
/// power-law; intra-community edges are ER with expected per-vertex degree
/// avg_degree*(1-mixing); inter-community edges are uniform random pairs
/// crossing community boundaries. `ground_truth`, when non-null, receives
/// each vertex's planted community id.
CsrGraph lfr_like(const LfrParams& params, std::uint64_t seed,
                  std::vector<VertexId>* ground_truth = nullptr);

}  // namespace ppscan
