// Graph I/O.
//
// Two formats:
//  * Text edge list — one "u v" pair per line, '#' comment lines ignored;
//    compatible with SNAP dataset dumps (the paper's real-graph source).
//  * Binary CSR — a little-endian dump of the offset and dst arrays with a
//    magic header; loads in O(read) with no rebuild, which is how the bench
//    harnesses cache generated datasets between runs.
#pragma once

#include <string>

#include "graph/csr_graph.hpp"

namespace ppscan {

/// Reads a text edge list (SNAP style). Throws GraphIoError (a
/// std::runtime_error; see util/graph_io_error.hpp) naming the file and
/// 1-based line on I/O or parse failure — including negative ids, ids above
/// the 32-bit VertexId range, and trailing garbage, which earlier versions
/// silently wrapped or truncated. The result is symmetrized/deduplicated
/// via GraphBuilder.
CsrGraph read_edge_list_text(const std::string& path);

/// Writes "u v" lines for each undirected edge (u < v).
void write_edge_list_text(const CsrGraph& graph, const std::string& path);

/// Binary CSR snapshot (magic "PPSCANG1").
void write_csr_binary(const CsrGraph& graph, const std::string& path);

/// Reads a binary CSR snapshot. The header is bounds-checked against the
/// file size before any allocation, and with `validate` (the default) the
/// structural CSR invariants (monotone offsets, in-range sorted neighbor
/// lists, no self loops) are verified in one extra linear pass. Throws
/// GraphIoError naming the file, byte offset, and violated invariant.
CsrGraph read_csr_binary(const std::string& path, bool validate = true);

}  // namespace ppscan
