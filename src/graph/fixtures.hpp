// Small deterministic graphs with known structure, used throughout the test
// suite and the quickstart example.
#pragma once

#include "graph/csr_graph.hpp"

namespace ppscan {

/// Complete graph K_k.
CsrGraph make_clique(VertexId k);

/// Path 0-1-2-...-(n-1).
CsrGraph make_path(VertexId n);

/// Cycle of length n.
CsrGraph make_cycle(VertexId n);

/// Star: center 0 connected to 1..n-1.
CsrGraph make_star(VertexId n);

/// Two k-cliques joined by a single bridge edge between vertex k-1 and k.
CsrGraph make_two_cliques_bridge(VertexId k);

/// `count` cliques of size `k`, consecutive cliques joined by one edge; with
/// suitable (ε, µ) each clique is a cluster and the joining vertices stay
/// similar only within their clique.
CsrGraph make_clique_chain(VertexId count, VertexId k);

/// The running example many SCAN papers use: two dense groups sharing a hub
/// vertex plus an outlier. 14 vertices; see fixtures.cpp for the layout.
CsrGraph make_scan_paper_example();

}  // namespace ppscan
