// AVX-512 chunk-verify kernel for CSR payload validation. Compiled with
// -mavx512f in its own translation unit; callers dispatch through
// detail::verify_chunk after a __builtin_cpu_supports check (same scheme
// as setops). Mask loads make short-list tails branch-free: the last
// partial vector is handled with a lane mask instead of a scalar loop,
// which matters because real graphs are mostly short lists.
#include <immintrin.h>

#include "graph/csr_validate.hpp"

namespace ppscan::detail {

namespace {

/// Positions 1..len-1 of one list window: 16 lanes at a time, a lane is
/// bad iff w[i-1] >= w[i] or w[i] == u (the walk checks the range
/// invariant via the window's last element).
bool window_body_avx512(const VertexId* w, EdgeId len, VertexId u) {
  const __m512i owner = _mm512_set1_epi32(static_cast<int>(u));
  if (len <= 17) {
    // Short window (the common case on real graphs): one masked vector,
    // no inner loop. Masked-off lanes of both loads never fault, and
    // w + 0 is always readable.
    if (len < 2) return true;
    const __mmask16 lanes = static_cast<__mmask16>((1u << (len - 1)) - 1);
    const __m512i cur = _mm512_maskz_loadu_epi32(lanes, w + 1);
    const __m512i prev = _mm512_maskz_loadu_epi32(lanes, w);
    __mmask16 bad =
        _mm512_mask_cmp_epu32_mask(lanes, prev, cur, _MM_CMPINT_NLT);
    bad |= _mm512_mask_cmpeq_epu32_mask(lanes, cur, owner);
    return bad == 0;
  }
  // Long window: full vectors, with the final one overlapped back to end
  // exactly at len (re-checking a few lanes is idempotent) instead of a
  // masked tail.
  EdgeId i = 1;
  for (;; i = i + 16 < len - 16 ? i + 16 : len - 16) {
    const __m512i cur =
        _mm512_loadu_si512(reinterpret_cast<const void*>(w + i));
    const __m512i prev =
        _mm512_loadu_si512(reinterpret_cast<const void*>(w + i - 1));
    __mmask16 bad = _mm512_cmp_epu32_mask(prev, cur, _MM_CMPINT_NLT);
    bad |= _mm512_cmpeq_epu32_mask(cur, owner);
    if (bad) return false;
    if (i == len - 16) return true;
  }
}

}  // namespace

ChunkVerdict verify_chunk_avx512(const VertexId* data, EdgeId chunk_begin,
                                 EdgeId count, const EdgeId* offsets,
                                 VertexId cursor, VertexId num_vertices,
                                 VertexId prev_last) {
  return verify_chunk_walk(
      data, chunk_begin, count, offsets, cursor, num_vertices, prev_last,
      [](const VertexId* w, EdgeId len, VertexId u) {
        return window_body_avx512(w, len, u);
      });
}

}  // namespace ppscan::detail
