#include "graph/csr_validate.hpp"

#include <algorithm>
#include <string>

#include "util/graph_io_error.hpp"

namespace ppscan {

namespace detail {

ChunkVerdict verify_chunk_scalar(const VertexId* data, EdgeId chunk_begin,
                                 EdgeId count, const EdgeId* offsets,
                                 VertexId cursor, VertexId num_vertices,
                                 VertexId prev_last) {
  return verify_chunk_walk(
      data, chunk_begin, count, offsets, cursor, num_vertices, prev_last,
      [](const VertexId* w, EdgeId len, VertexId u) {
        // Range is covered by the walk's last-element check.
        for (EdgeId i = 1; i < len; ++i) {
          const VertexId v = w[i];
          if (w[i - 1] >= v || v == u) return false;
        }
        return true;
      });
}

ChunkVerdict verify_chunk(const VertexId* data, EdgeId chunk_begin,
                          EdgeId count, const EdgeId* offsets, VertexId cursor,
                          VertexId num_vertices, VertexId prev_last) {
  static const int isa = [] {
    if (__builtin_cpu_supports("avx512f")) return 2;
    if (__builtin_cpu_supports("avx2")) return 1;
    return 0;
  }();
  switch (isa) {
    case 2:
      return verify_chunk_avx512(data, chunk_begin, count, offsets, cursor,
                                 num_vertices, prev_last);
    case 1:
      return verify_chunk_avx2(data, chunk_begin, count, offsets, cursor,
                               num_vertices, prev_last);
    default:
      return verify_chunk_scalar(data, chunk_begin, count, offsets, cursor,
                                 num_vertices, prev_last);
  }
}

}  // namespace detail

CsrPayloadValidator::CsrPayloadValidator(const std::vector<EdgeId>& offsets,
                                         EdgeId num_arcs)
    : offsets_(offsets),
      num_vertices_(offsets.empty()
                        ? 0
                        : checked_vertex_cast(offsets.size() - 1)),
      num_arcs_(num_arcs) {}

void CsrPayloadValidator::check_offsets() const {
  if (offsets_.empty()) {
    // A default-constructed (empty) graph carries no offsets at all; it is
    // valid exactly when it also carries no arcs.
    if (num_arcs_ == 0) return;
    throw GraphIoError(GraphIoErrorKind::kMalformedOffsets,
                       "offset array is empty but the graph has " +
                           std::to_string(num_arcs_) + " arcs");
  }
  if (offsets_.front() != 0) {
    throw GraphIoError(GraphIoErrorKind::kMalformedOffsets,
                       "offsets must start at 0, got " +
                           std::to_string(offsets_.front()));
  }
  // Branchless monotonicity sweep (the compiler vectorizes the
  // accumulation); the rescan below names the first offending pair.
  const std::size_t count = offsets_.size();
  unsigned bad = 0;
  for (std::size_t i = 1; i < count; ++i) {
    bad |= static_cast<unsigned>(offsets_[i - 1] > offsets_[i]);
  }
  if (bad) {
    for (std::size_t i = 1; i < count; ++i) {
      if (offsets_[i - 1] > offsets_[i]) {
        throw GraphIoError(GraphIoErrorKind::kNonMonotoneOffsets,
                           "offsets[" + std::to_string(i - 1) + "] = " +
                               std::to_string(offsets_[i - 1]) +
                               " > offsets[" + std::to_string(i) + "] = " +
                               std::to_string(offsets_[i]));
      }
    }
  }
  if (offsets_.back() != num_arcs_) {
    throw GraphIoError(GraphIoErrorKind::kMalformedOffsets,
                       "offsets must end at the arc count (" +
                           std::to_string(num_arcs_) + "), got " +
                           std::to_string(offsets_.back()));
  }
}

void CsrPayloadValidator::feed(const VertexId* data, EdgeId count) {
  if (count == 0) return;
  const detail::ChunkVerdict verdict =
      detail::verify_chunk(data, fed_, count, offsets_.data(), cursor_,
                           num_vertices_, prev_last_);
  if (!verdict.ok) throw_precise(data, fed_, count, prev_last_);
  cursor_ = verdict.next_cursor;
  prev_last_ = data[count - 1];
  fed_ += count;
}

void CsrPayloadValidator::finish() const {
  if (fed_ != num_arcs_) {
    throw GraphIoError(GraphIoErrorKind::kTruncatedBody,
                       "expected " + std::to_string(num_arcs_) +
                           " arcs, received " + std::to_string(fed_));
  }
}

void CsrPayloadValidator::throw_precise(const VertexId* data,
                                        EdgeId window_begin, EdgeId count,
                                        VertexId prev_before) const {
  const EdgeId a = window_begin;
  const EdgeId b = a + count;
  // Owner of position a: the last vertex whose list begins at or before it
  // (check_offsets has proven the offsets monotone).
  VertexId u = static_cast<VertexId>(
      std::upper_bound(offsets_.begin(), offsets_.end(), a) -
      offsets_.begin() - 1);
  for (; u < num_vertices_ && offsets_[u] < b; ++u) {
    const EdgeId start = offsets_[u];
    const EdgeId lo = std::max(start, a);
    const EdgeId hi = std::min(offsets_[u + 1], b);
    for (EdgeId p = lo; p < hi; ++p) {
      const VertexId v = data[p - a];
      if (v >= num_vertices_) {
        throw GraphIoError(GraphIoErrorKind::kNeighborOutOfRange,
                           "dst[" + std::to_string(p) + "] = " +
                               std::to_string(v) + " but the graph has " +
                               std::to_string(num_vertices_) +
                               " vertices (at vertex " + std::to_string(u) +
                               ")");
      }
      if (v == u) {
        throw GraphIoError(GraphIoErrorKind::kSelfLoop,
                           "self loop at vertex " + std::to_string(u) +
                               " (dst[" + std::to_string(p) + "])");
      }
      if (p > start) {
        const VertexId prev = p == a ? prev_before : data[p - 1 - a];
        if (prev >= v) {
          throw GraphIoError(GraphIoErrorKind::kUnsortedNeighbors,
                             "neighbors of vertex " + std::to_string(u) +
                                 " unsorted or duplicated at dst[" +
                                 std::to_string(p) + "] (" +
                                 std::to_string(prev) + " >= " +
                                 std::to_string(v) + ")");
        }
      }
    }
  }
  // The kernel flagged this window, so the rescan above always finds a
  // violation; keep a typed error as a defensive fallback.
  throw GraphIoError(GraphIoErrorKind::kUnsortedNeighbors,
                     "corrupt neighbor data near dst[" + std::to_string(a) +
                         "]");
}

}  // namespace ppscan
