#include "graph/edge_list_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "graph/graph_builder.hpp"

namespace ppscan {
namespace {

constexpr char kMagic[8] = {'P', 'P', 'S', 'C', 'A', 'N', 'G', '1'};

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path);
}

}  // namespace

CsrGraph read_edge_list_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open edge list", path);

  GraphBuilder builder;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    char* end = nullptr;
    const unsigned long long u = std::strtoull(line.c_str(), &end, 10);
    if (end == line.c_str()) {
      fail("parse error at line " + std::to_string(lineno), path);
    }
    char* end2 = nullptr;
    const unsigned long long v = std::strtoull(end, &end2, 10);
    if (end2 == end) {
      fail("parse error at line " + std::to_string(lineno), path);
    }
    builder.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return builder.build();
}

void write_edge_list_text(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("cannot open for writing", path);
  out << "# ppscan edge list: " << graph.num_vertices() << " vertices, "
      << graph.num_edges() << " edges\n";
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    for (VertexId v : graph.neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
  if (!out) fail("write failed", path);
}

void write_csr_binary(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot open for writing", path);
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t n = graph.num_vertices();
  const std::uint64_t arcs = graph.num_arcs();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&arcs), sizeof(arcs));
  out.write(reinterpret_cast<const char*>(graph.offsets().data()),
            static_cast<std::streamsize>((n + 1) * sizeof(EdgeId)));
  out.write(reinterpret_cast<const char*>(graph.dst().data()),
            static_cast<std::streamsize>(arcs * sizeof(VertexId)));
  if (!out) fail("write failed", path);
}

CsrGraph read_csr_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open binary graph", path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    fail("bad magic in binary graph", path);
  }
  std::uint64_t n = 0, arcs = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&arcs), sizeof(arcs));
  if (!in) fail("truncated header", path);
  std::vector<EdgeId> offsets(n + 1);
  std::vector<VertexId> dst(arcs);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>((n + 1) * sizeof(EdgeId)));
  in.read(reinterpret_cast<char*>(dst.data()),
          static_cast<std::streamsize>(arcs * sizeof(VertexId)));
  if (!in) fail("truncated body", path);
  return CsrGraph(std::move(offsets), std::move(dst));
}

}  // namespace ppscan
