#include "graph/edge_list_io.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "graph/csr_validate.hpp"
#include "graph/graph_builder.hpp"
#include "util/graph_io_error.hpp"

namespace ppscan {
namespace {

constexpr char kMagic[8] = {'P', 'P', 'S', 'C', 'A', 'N', 'G', '1'};

// magic + n + arcs, all before the payload.
constexpr std::uint64_t kHeaderBytes =
    sizeof(kMagic) + 2 * sizeof(std::uint64_t);
constexpr std::uint64_t kVertexCountFieldOffset = sizeof(kMagic);
constexpr std::uint64_t kArcCountFieldOffset =
    sizeof(kMagic) + sizeof(std::uint64_t);

// Largest storable vertex id. kInvalidVertex (2^32 - 1) is reserved as a
// sentinel, and GraphBuilder computes n = max id + 1 in 32 bits, so ids
// stop one short of it.
constexpr unsigned long long kMaxVertexId = 0xFFFF'FFFEULL;

/// Parses one vertex id starting at `cursor` (which is advanced past it),
/// rejecting negative ids, ids above the VertexId range, and non-numeric
/// text — the silent strtoull-wrap/truncate paths this loader used to have.
VertexId parse_vertex_id(const char*& cursor, const char* which,
                         const std::string& path, std::uint64_t lineno) {
  while (*cursor == ' ' || *cursor == '\t' || *cursor == '\r') ++cursor;
  if (*cursor == '-') {
    throw GraphIoError(GraphIoErrorKind::kNegativeId,
                       std::string(which) + " endpoint is negative",
                       path, GraphIoError::kNoLocation, lineno);
  }
  if (!std::isdigit(static_cast<unsigned char>(*cursor))) {
    throw GraphIoError(GraphIoErrorKind::kParseError,
                       std::string("expected ") + which +
                           " endpoint, got '" + cursor + "'",
                       path, GraphIoError::kNoLocation, lineno);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(cursor, &end, 10);
  if (errno == ERANGE || value > kMaxVertexId) {
    throw GraphIoError(GraphIoErrorKind::kIdOutOfRange,
                       std::string(which) + " endpoint exceeds the 32-bit "
                           "VertexId range (max " +
                           std::to_string(kMaxVertexId) + ")",
                       path, GraphIoError::kNoLocation, lineno);
  }
  cursor = end;
  return static_cast<VertexId>(value);
}

}  // namespace

CsrGraph read_edge_list_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw GraphIoError(GraphIoErrorKind::kOpenFailed, "cannot open edge list",
                       path);
  }

  GraphBuilder builder;
  std::string line;
  std::uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    const char* cursor = line.c_str();
    const VertexId u = parse_vertex_id(cursor, "first", path, lineno);
    const VertexId v = parse_vertex_id(cursor, "second", path, lineno);
    while (*cursor == ' ' || *cursor == '\t' || *cursor == '\r') ++cursor;
    if (*cursor != '\0') {
      throw GraphIoError(GraphIoErrorKind::kTrailingGarbage,
                         "unexpected text after the two endpoints: '" +
                             std::string(cursor) + "'",
                         path, GraphIoError::kNoLocation, lineno);
    }
    builder.add_edge(u, v);
  }
  try {
    return builder.build();
  } catch (const GraphIoError& e) {
    throw e.with_path(path);
  }
}

void write_edge_list_text(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw GraphIoError(GraphIoErrorKind::kOpenFailed,
                       "cannot open for writing", path);
  }
  out << "# ppscan edge list: " << graph.num_vertices() << " vertices, "
      << graph.num_edges() << " edges\n";
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    for (VertexId v : graph.neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
  if (!out) {
    throw GraphIoError(GraphIoErrorKind::kWriteFailed, "write failed", path);
  }
}

void write_csr_binary(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw GraphIoError(GraphIoErrorKind::kOpenFailed,
                       "cannot open for writing", path);
  }
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t n = graph.num_vertices();
  const std::uint64_t arcs = graph.num_arcs();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&arcs), sizeof(arcs));
  if (graph.offsets().empty()) {
    // Default-constructed graph: materialize the single 0 offset the
    // format requires instead of reading past an empty vector.
    const EdgeId zero = 0;
    out.write(reinterpret_cast<const char*>(&zero), sizeof(zero));
  } else {
    out.write(reinterpret_cast<const char*>(graph.offsets().data()),
              static_cast<std::streamsize>((n + 1) * sizeof(EdgeId)));
  }
  out.write(reinterpret_cast<const char*>(graph.dst().data()),
            static_cast<std::streamsize>(arcs * sizeof(VertexId)));
  if (!out) {
    throw GraphIoError(GraphIoErrorKind::kWriteFailed, "write failed", path);
  }
}

CsrGraph read_csr_binary(const std::string& path, bool validate) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw GraphIoError(GraphIoErrorKind::kOpenFailed,
                       "cannot open binary graph", path);
  }
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  if (file_size < kHeaderBytes) {
    throw GraphIoError(GraphIoErrorKind::kTruncatedHeader,
                       "file is " + std::to_string(file_size) +
                           " bytes but the header needs " +
                           std::to_string(kHeaderBytes),
                       path, 0);
  }
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw GraphIoError(GraphIoErrorKind::kBadMagic,
                       "expected magic \"PPSCANG1\"", path, 0);
  }
  std::uint64_t n = 0, arcs = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&arcs), sizeof(arcs));
  if (!in) {
    throw GraphIoError(GraphIoErrorKind::kTruncatedHeader,
                       "header fields unreadable", path,
                       kVertexCountFieldOffset);
  }

  // Header sanity before any allocation: a 16-byte corruption must not be
  // able to request terabytes. The field bounds are overflow-safe —
  // divisions, never multiplications of untrusted values. A field whose
  // implied array alone exceeds the whole file is an oversized header; a
  // header whose fields are individually plausible but whose total exceeds
  // the file means the payload was cut short.
  if (n > kMaxVertexId + 1) {
    throw GraphIoError(GraphIoErrorKind::kOversizedHeader,
                       "vertex count " + std::to_string(n) +
                           " exceeds the 32-bit id space",
                       path, kVertexCountFieldOffset);
  }
  if (n + 1 > file_size / sizeof(EdgeId)) {
    throw GraphIoError(GraphIoErrorKind::kOversizedHeader,
                       "vertex count " + std::to_string(n) +
                           " implies an offset array larger than the " +
                           std::to_string(file_size) + "-byte file",
                       path, kVertexCountFieldOffset);
  }
  if (arcs > file_size / sizeof(VertexId)) {
    throw GraphIoError(GraphIoErrorKind::kOversizedHeader,
                       "arc count " + std::to_string(arcs) +
                           " implies a dst array larger than the " +
                           std::to_string(file_size) + "-byte file",
                       path, kArcCountFieldOffset);
  }
  const std::uint64_t offsets_bytes = (n + 1) * sizeof(EdgeId);
  const std::uint64_t required =
      kHeaderBytes + offsets_bytes + arcs * sizeof(VertexId);
  if (required > file_size) {
    throw GraphIoError(GraphIoErrorKind::kTruncatedBody,
                       "header describes " + std::to_string(required) +
                           " bytes but the file holds " +
                           std::to_string(file_size),
                       path, file_size);
  }
  if (required < file_size) {
    throw GraphIoError(GraphIoErrorKind::kTrailingData,
                       std::to_string(file_size - required) +
                           " unexpected bytes after the CSR payload",
                       path, required);
  }

  std::vector<EdgeId> offsets(n + 1);
  std::vector<VertexId> dst(arcs);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets_bytes));
  if (!in) {
    throw GraphIoError(GraphIoErrorKind::kTruncatedBody,
                       "CSR payload cut short", path, kHeaderBytes);
  }
  try {
    if (validate) {
      // Fused read + structural validation (no symmetry check — see
      // CsrGraph::validate): the dst array is read in L2-sized chunks and
      // each chunk is checked while still cache-hot, so validation adds a
      // vectorized sweep over warm data rather than a second trip through
      // memory.
      CsrPayloadValidator checker(offsets, arcs);
      checker.check_offsets();
      // 512 KiB of dst values: small enough to stay resident in L2
      // between the read and the verify pass, large enough to amortize
      // the per-read syscall.
      constexpr EdgeId kChunkArcs = 1u << 17;
      for (EdgeId pos = 0; pos < arcs; pos += kChunkArcs) {
        const EdgeId count = std::min<EdgeId>(kChunkArcs, arcs - pos);
        in.read(reinterpret_cast<char*>(dst.data() + pos),
                static_cast<std::streamsize>(count * sizeof(VertexId)));
        if (!in) {
          throw GraphIoError(GraphIoErrorKind::kTruncatedBody,
                             "CSR payload cut short", path, kHeaderBytes);
        }
        checker.feed(dst.data() + pos, count);
      }
      checker.finish();
    } else {
      in.read(reinterpret_cast<char*>(dst.data()),
              static_cast<std::streamsize>(arcs * sizeof(VertexId)));
      if (!in) {
        throw GraphIoError(GraphIoErrorKind::kTruncatedBody,
                           "CSR payload cut short", path, kHeaderBytes);
      }
    }
    return CsrGraph(std::move(offsets), std::move(dst));
  } catch (const GraphIoError& e) {
    throw e.with_path(path);
  }
}

}  // namespace ppscan
