#include "graph/csr_graph.hpp"

#include <algorithm>
#include <string>

#include "graph/csr_validate.hpp"
#include "util/graph_io_error.hpp"

namespace ppscan {

CsrGraph::CsrGraph(std::vector<EdgeId> offsets, std::vector<VertexId> dst)
    : offsets_(std::move(offsets)), dst_(std::move(dst)) {
  if (offsets_.empty() || offsets_.front() != 0 ||
      offsets_.back() != dst_.size()) {
    throw GraphIoError(
        GraphIoErrorKind::kMalformedOffsets,
        offsets_.empty()
            ? "offset array is empty"
            : "offsets must start at 0 and end at the arc count (" +
                  std::to_string(dst_.size()) + "), got [" +
                  std::to_string(offsets_.front()) + ", " +
                  std::to_string(offsets_.back()) + "]");
  }
}

EdgeId CsrGraph::arc_index(VertexId u, VertexId v) const {
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kInvalidEdge;
  return offsets_[u] + static_cast<EdgeId>(it - nbrs.begin());
}

void CsrGraph::validate(bool check_symmetry) const {
  const VertexId n = num_vertices();

  // Structural pass: the same single-sweep validator the binary loader
  // runs on cache-hot chunks (csr_validate.hpp); here it gets the whole
  // dst array as one chunk. On corrupt input it rescans serially and
  // throws the precise invariant/vertex/index.
  CsrPayloadValidator checker(offsets_, dst_.size());
  checker.check_offsets();
  checker.feed(dst_.data(), dst_.size());
  checker.finish();

  if (!check_symmetry) return;
  bool symmetric = true;
#pragma omp parallel for schedule(dynamic, 1024) reduction(&& : symmetric)
  for (VertexId u = 0; u < n; ++u) {
    for (const VertexId v : neighbors(u)) {
      if (arc_index(v, u) == kInvalidEdge) {
        symmetric = false;
        break;
      }
    }
  }
  if (!symmetric) {
    for (VertexId u = 0; u < n; ++u) {
      for (const VertexId v : neighbors(u)) {
        if (arc_index(v, u) == kInvalidEdge) {
          throw GraphIoError(GraphIoErrorKind::kAsymmetricArc,
                             "arc (" + std::to_string(u) + "," +
                                 std::to_string(v) + ") has no reverse arc");
        }
      }
    }
  }
}

}  // namespace ppscan
