#include "graph/csr_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ppscan {

CsrGraph::CsrGraph(std::vector<EdgeId> offsets, std::vector<VertexId> dst)
    : offsets_(std::move(offsets)), dst_(std::move(dst)) {
  if (offsets_.empty() || offsets_.front() != 0 ||
      offsets_.back() != dst_.size()) {
    throw std::invalid_argument("CsrGraph: malformed offset array");
  }
}

EdgeId CsrGraph::arc_index(VertexId u, VertexId v) const {
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kInvalidEdge;
  return offsets_[u] + static_cast<EdgeId>(it - nbrs.begin());
}

void CsrGraph::validate() const {
  const VertexId n = num_vertices();
  for (VertexId u = 0; u < n; ++u) {
    if (offsets_[u] > offsets_[u + 1]) {
      throw std::invalid_argument("CsrGraph: offsets not monotone at vertex " +
                                  std::to_string(u));
    }
    const auto nbrs = neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] >= n) {
        throw std::invalid_argument("CsrGraph: neighbor out of range at " +
                                    std::to_string(u));
      }
      if (nbrs[i] == u) {
        throw std::invalid_argument("CsrGraph: self loop at vertex " +
                                    std::to_string(u));
      }
      if (i > 0 && nbrs[i - 1] >= nbrs[i]) {
        throw std::invalid_argument(
            "CsrGraph: neighbors unsorted or duplicated at vertex " +
            std::to_string(u));
      }
      if (arc_index(nbrs[i], u) == kInvalidEdge) {
        throw std::invalid_argument("CsrGraph: asymmetric arc (" +
                                    std::to_string(u) + "," +
                                    std::to_string(nbrs[i]) + ")");
      }
    }
  }
}

}  // namespace ppscan
