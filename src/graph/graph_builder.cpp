#include "graph/graph_builder.hpp"

#include <algorithm>

#include "util/graph_io_error.hpp"

namespace ppscan {

void GraphBuilder::add_edges(const EdgeList& edges) {
  edges_.insert(edges_.end(), edges.begin(), edges.end());
}

CsrGraph GraphBuilder::build() {
  VertexId n = num_vertices_;
  for (const auto& [u, v] : edges_) {
    // n = max id + 1 is computed in 32 bits, so the all-ones id (also the
    // kInvalidVertex sentinel) would wrap it to 0 and every subsequent
    // offset/dst write would land out of bounds.
    if (u == kInvalidVertex || v == kInvalidVertex) {
      throw GraphIoError(GraphIoErrorKind::kVertexIdOverflow,
                         "vertex id " + std::to_string(kInvalidVertex) +
                             " is reserved; ids must be < " +
                             std::to_string(kInvalidVertex));
    }
    n = std::max({n, u + 1, v + 1});
  }

  // Symmetrize while dropping self loops.
  std::vector<std::pair<VertexId, VertexId>> arcs;
  arcs.reserve(edges_.size() * 2);
  for (const auto& [u, v] : edges_) {
    if (u == v) continue;
    arcs.emplace_back(u, v);
    arcs.emplace_back(v, u);
  }
  edges_.clear();

  std::sort(arcs.begin(), arcs.end());
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());

  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : arcs) {
    ++offsets[u + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    offsets[i] += offsets[i - 1];
  }

  std::vector<VertexId> dst;
  dst.reserve(arcs.size());
  for (const auto& [u, v] : arcs) {
    dst.push_back(v);  // arcs are sorted by (u, v), so per-vertex order holds
  }

  return CsrGraph(std::move(offsets), std::move(dst));
}

CsrGraph GraphBuilder::from_edges(const EdgeList& edges,
                                  VertexId num_vertices) {
  GraphBuilder b(num_vertices);
  b.add_edges(edges);
  return b.build();
}

EdgeList to_edge_list(const CsrGraph& graph) {
  EdgeList edges;
  edges.reserve(graph.num_edges());
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    for (VertexId v : graph.neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

}  // namespace ppscan
