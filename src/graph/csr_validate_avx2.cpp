// AVX2 chunk-verify kernel for CSR payload validation. Compiled with
// -mavx2 in its own translation unit; callers dispatch through
// detail::verify_chunk after a __builtin_cpu_supports check (same scheme
// as setops).
#include <immintrin.h>

#include "graph/csr_validate.hpp"

namespace ppscan::detail {

namespace {

/// Positions 1..len-1 of one list window: 8 lanes at a time, a lane is
/// good iff w[i-1] < w[i] and w[i] != u (the walk checks the range
/// invariant via the window's last element). Unsigned compares via signed
/// compares after flipping sign bits.
bool window_body_avx2(const VertexId* w, EdgeId len, VertexId u) {
  const __m256i sign = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i owner = _mm256_set1_epi32(static_cast<int>(u));
  EdgeId i = 1;
  for (; i + 8 <= len; i += 8) {
    const __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    const __m256i prev =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i - 1));
    const __m256i ascending = _mm256_cmpgt_epi32(
        _mm256_xor_si256(cur, sign), _mm256_xor_si256(prev, sign));
    const __m256i good =
        _mm256_andnot_si256(_mm256_cmpeq_epi32(cur, owner), ascending);
    if (_mm256_movemask_ps(_mm256_castsi256_ps(good)) != 0xFF) return false;
  }
  for (; i < len; ++i) {
    const VertexId v = w[i];
    if (w[i - 1] >= v || v == u) return false;
  }
  return true;
}

}  // namespace

ChunkVerdict verify_chunk_avx2(const VertexId* data, EdgeId chunk_begin,
                               EdgeId count, const EdgeId* offsets,
                               VertexId cursor, VertexId num_vertices,
                               VertexId prev_last) {
  return verify_chunk_walk(
      data, chunk_begin, count, offsets, cursor, num_vertices, prev_last,
      [](const VertexId* w, EdgeId len, VertexId u) {
        return window_body_avx2(w, len, u);
      });
}

}  // namespace ppscan::detail
