#include "graph/reverse_index.hpp"

namespace ppscan {

ReverseArcIndex::ReverseArcIndex(const CsrGraph& graph) {
  reverse_.resize(graph.num_arcs());
  // Per-vertex write cursors: sweeping arcs (u, v) in CSR order visits each
  // v's in-arcs in increasing u order, which is exactly v's neighbor order —
  // so the cursor position is the reverse arc's slot. One linear pass, no
  // searches.
  std::vector<EdgeId> cursor(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    cursor[v] = graph.offset_begin(v);
  }
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    for (EdgeId e = graph.offset_begin(u); e < graph.offset_end(u); ++e) {
      const VertexId v = graph.dst()[e];
      reverse_[e] = cursor[v]++;
    }
  }
}

}  // namespace ppscan
