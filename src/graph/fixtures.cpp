#include "graph/fixtures.hpp"

#include <stdexcept>

#include "graph/graph_builder.hpp"

namespace ppscan {

CsrGraph make_clique(VertexId k) {
  EdgeList edges;
  for (VertexId u = 0; u < k; ++u) {
    for (VertexId v = u + 1; v < k; ++v) edges.emplace_back(u, v);
  }
  return GraphBuilder::from_edges(edges, k);
}

CsrGraph make_path(VertexId n) {
  EdgeList edges;
  for (VertexId u = 0; u + 1 < n; ++u) edges.emplace_back(u, u + 1);
  return GraphBuilder::from_edges(edges, n);
}

CsrGraph make_cycle(VertexId n) {
  if (n < 3) throw std::invalid_argument("make_cycle: need n >= 3");
  EdgeList edges;
  for (VertexId u = 0; u + 1 < n; ++u) edges.emplace_back(u, u + 1);
  edges.emplace_back(n - 1, 0);
  return GraphBuilder::from_edges(edges, n);
}

CsrGraph make_star(VertexId n) {
  if (n < 2) throw std::invalid_argument("make_star: need n >= 2");
  EdgeList edges;
  for (VertexId v = 1; v < n; ++v) edges.emplace_back(0, v);
  return GraphBuilder::from_edges(edges, n);
}

CsrGraph make_two_cliques_bridge(VertexId k) {
  EdgeList edges;
  for (VertexId u = 0; u < k; ++u) {
    for (VertexId v = u + 1; v < k; ++v) {
      edges.emplace_back(u, v);
      edges.emplace_back(k + u, k + v);
    }
  }
  edges.emplace_back(k - 1, k);
  return GraphBuilder::from_edges(edges, 2 * k);
}

CsrGraph make_clique_chain(VertexId count, VertexId k) {
  if (count == 0 || k < 2) {
    throw std::invalid_argument("make_clique_chain: need count >= 1, k >= 2");
  }
  EdgeList edges;
  for (VertexId c = 0; c < count; ++c) {
    const VertexId base = c * k;
    for (VertexId u = 0; u < k; ++u) {
      for (VertexId v = u + 1; v < k; ++v) {
        edges.emplace_back(base + u, base + v);
      }
    }
    if (c + 1 < count) edges.emplace_back(base + k - 1, base + k);
  }
  return GraphBuilder::from_edges(edges, count * k);
}

CsrGraph make_scan_paper_example() {
  // Two dense groups {0..5} and {7..12} (each a near-clique), vertex 6 is a
  // hub adjacent to both groups but dense in neither, and vertex 13 is an
  // outlier hanging off vertex 12.
  EdgeList edges = {
      // group A: near-clique on 0..5
      {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4},
      {3, 5}, {4, 5}, {0, 5},
      // hub 6 touches both groups sparsely
      {5, 6}, {6, 7},
      // group B: near-clique on 7..12
      {7, 8}, {7, 9}, {8, 9}, {8, 10}, {9, 10}, {9, 11}, {10, 11},
      {10, 12}, {11, 12}, {7, 12},
      // outlier 13
      {12, 13},
  };
  return GraphBuilder::from_edges(edges, 14);
}

}  // namespace ppscan
