#include "graph/graph_stats.hpp"

#include <algorithm>
#include <sstream>

namespace ppscan {

GraphStats compute_stats(const CsrGraph& graph, bool with_triangles) {
  GraphStats s;
  s.num_vertices = graph.num_vertices();
  s.num_edges = graph.num_edges();
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    const VertexId d = graph.degree(u);
    s.max_degree = std::max(s.max_degree, d);
    if (d == 0) ++s.isolated_vertices;
  }
  s.avg_degree = s.num_vertices == 0
                     ? 0.0
                     : 2.0 * static_cast<double>(s.num_edges) /
                           static_cast<double>(s.num_vertices);

  if (with_triangles) {
    // Count each triangle once via the u < v < w orientation: for each edge
    // (u, v) with u < v, count common neighbors w > v.
    std::uint64_t tri = 0;
    for (VertexId u = 0; u < graph.num_vertices(); ++u) {
      const auto nu = graph.neighbors(u);
      for (VertexId v : nu) {
        if (v <= u) continue;
        const auto nv = graph.neighbors(v);
        auto iu = std::lower_bound(nu.begin(), nu.end(), v + 1);
        auto iv = std::lower_bound(nv.begin(), nv.end(), v + 1);
        while (iu != nu.end() && iv != nv.end()) {
          if (*iu < *iv) {
            ++iu;
          } else if (*iv < *iu) {
            ++iv;
          } else {
            ++tri;
            ++iu;
            ++iv;
          }
        }
      }
    }
    s.triangles = tri;
  }
  return s;
}

std::vector<std::uint64_t> degree_histogram(const CsrGraph& graph) {
  std::vector<std::uint64_t> hist;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    VertexId d = graph.degree(u);
    std::size_t bucket = 0;
    while (d > 1) {
      d >>= 1;
      ++bucket;
    }
    if (bucket >= hist.size()) hist.resize(bucket + 1, 0);
    ++hist[bucket];
  }
  return hist;
}

std::string GraphStats::to_string() const {
  std::ostringstream os;
  os << "|V|=" << num_vertices << " |E|=" << num_edges << " avg_d=" << avg_degree
     << " max_d=" << max_degree;
  if (triangles != 0) os << " triangles=" << triangles;
  return os.str();
}

}  // namespace ppscan
