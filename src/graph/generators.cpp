#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "util/rng.hpp"

namespace ppscan {

CsrGraph erdos_renyi(VertexId n, EdgeId m, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("erdos_renyi: need n >= 2");
  const EdgeId max_edges = static_cast<EdgeId>(n) * (n - 1) / 2;
  if (m > max_edges) throw std::invalid_argument("erdos_renyi: m too large");

  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  EdgeList edges;
  edges.reserve(m);
  while (edges.size() < m) {
    auto u = static_cast<VertexId>(rng.next_below(n));
    auto v = static_cast<VertexId>(rng.next_below(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) edges.emplace_back(u, v);
  }
  return GraphBuilder::from_edges(edges, n);
}

CsrGraph barabasi_albert(VertexId n, VertexId edges_per_vertex,
                         std::uint64_t seed) {
  const VertexId m = edges_per_vertex;
  if (m == 0 || n <= m) {
    throw std::invalid_argument("barabasi_albert: need n > edges_per_vertex > 0");
  }

  Rng rng(seed);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * m);

  // `targets` holds every edge endpoint so far; sampling an index uniformly
  // samples a vertex proportionally to its degree.
  std::vector<VertexId> targets;
  targets.reserve(static_cast<std::size_t>(n) * m * 2);

  // Seed graph: a (m+1)-clique so every early vertex already has degree m.
  for (VertexId u = 0; u <= m; ++u) {
    for (VertexId v = u + 1; v <= m; ++v) {
      edges.emplace_back(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }

  std::vector<VertexId> picks;
  picks.reserve(m);
  for (VertexId t = m + 1; t < n; ++t) {
    picks.clear();
    while (picks.size() < m) {
      const VertexId cand = targets[rng.next_below(targets.size())];
      if (std::find(picks.begin(), picks.end(), cand) == picks.end()) {
        picks.push_back(cand);
      }
    }
    for (VertexId v : picks) {
      edges.emplace_back(t, v);
      targets.push_back(t);
      targets.push_back(v);
    }
  }
  return GraphBuilder::from_edges(edges, n);
}

CsrGraph rmat(const RmatParams& params, std::uint64_t seed) {
  if (params.scale < 1 || params.scale > 31) {
    throw std::invalid_argument("rmat: scale out of range");
  }
  const double d = 1.0 - params.a - params.b - params.c;
  if (params.a < 0 || params.b < 0 || params.c < 0 || d < 0) {
    throw std::invalid_argument("rmat: invalid quadrant probabilities");
  }

  const VertexId n = VertexId{1} << params.scale;
  const auto attempts =
      static_cast<EdgeId>(params.edge_factor * static_cast<double>(n));
  Rng rng(seed);

  // Optional id scramble so vertex id order carries no structure; high-degree
  // vertices otherwise concentrate at low ids, which would make range-based
  // task scheduling look artificially easy.
  std::vector<VertexId> perm(n);
  for (VertexId i = 0; i < n; ++i) perm[i] = i;
  if (params.scramble_ids) {
    for (VertexId i = n; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.next_below(i)]);
    }
  }

  EdgeList edges;
  edges.reserve(attempts);
  for (EdgeId e = 0; e < attempts; ++e) {
    VertexId u = 0, v = 0;
    for (int bit = 0; bit < params.scale; ++bit) {
      const double r = rng.next_double();
      // Slightly perturbed quadrant probabilities per the original R-MAT
      // recipe; keeps the generated graph from being exactly self-similar.
      const double noise = 0.9 + 0.2 * rng.next_double();
      const double a = params.a * noise;
      const double b = params.b * noise;
      const double c = params.c * noise;
      const double total = a + b + c + d * noise;
      const double x = r * total;
      u <<= 1;
      v <<= 1;
      if (x < a) {
        // upper-left: no bits set
      } else if (x < a + b) {
        v |= 1;
      } else if (x < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) edges.emplace_back(perm[u], perm[v]);
  }
  return GraphBuilder::from_edges(edges, n);
}

CsrGraph lfr_like(const LfrParams& params, std::uint64_t seed,
                  std::vector<VertexId>* ground_truth) {
  if (params.n == 0 || params.min_community < 2 ||
      params.max_community < params.min_community ||
      params.mixing < 0.0 || params.mixing > 1.0) {
    throw std::invalid_argument("lfr_like: invalid parameters");
  }

  Rng rng(seed);

  // Community sizes: bounded power-law via inverse-transform sampling of
  // p(s) ~ s^-gamma on [min_community, max_community].
  const double gamma = params.community_exponent;
  const double lo = std::pow(static_cast<double>(params.min_community),
                             1.0 - gamma);
  const double hi = std::pow(static_cast<double>(params.max_community),
                             1.0 - gamma);
  std::vector<VertexId> community_of(params.n);
  std::vector<std::pair<VertexId, VertexId>> communities;  // [begin, end)
  VertexId next = 0;
  while (next < params.n) {
    const double u01 = rng.next_double();
    auto size = static_cast<VertexId>(
        std::pow(lo + u01 * (hi - lo), 1.0 / (1.0 - gamma)));
    size = std::max(params.min_community, std::min(params.max_community, size));
    size = std::min(size, params.n - next);
    const VertexId begin = next;
    const VertexId end = next + size;
    const auto cid = checked_vertex_cast(communities.size());
    for (VertexId v = begin; v < end; ++v) community_of[v] = cid;
    communities.emplace_back(begin, end);
    next = end;
  }

  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(
      params.n * params.avg_degree / 2.0 * 1.05));

  // Intra-community ER: per-vertex expected internal degree is
  // avg_degree * (1 - mixing), so p = that / (size - 1), clamped to 1.
  const double internal_degree = params.avg_degree * (1.0 - params.mixing);
  for (const auto& [begin, end] : communities) {
    const VertexId size = end - begin;
    if (size < 2) continue;
    const double p =
        std::min(1.0, internal_degree / static_cast<double>(size - 1));
    if (p >= 1.0) {
      for (VertexId u = begin; u < end; ++u) {
        for (VertexId v = u + 1; v < end; ++v) edges.emplace_back(u, v);
      }
      continue;
    }
    // Geometric skipping: visit each pair with probability p in O(p * size^2)
    // expected time.
    const double log1mp = std::log1p(-p);
    std::uint64_t pair_index = 0;
    const std::uint64_t total_pairs =
        static_cast<std::uint64_t>(size) * (size - 1) / 2;
    while (true) {
      // Geometric gap: failures before the next success at probability p.
      const double r = rng.next_double();
      const auto skip = static_cast<std::uint64_t>(
          std::floor(std::log1p(-r) / log1mp));
      pair_index += skip;
      if (pair_index >= total_pairs) break;
      // Decode the flat pair index into (row, col) of the upper triangle.
      VertexId row = 0;
      std::uint64_t remaining = pair_index;
      VertexId row_len = size - 1;
      while (remaining >= row_len) {
        remaining -= row_len;
        --row_len;
        ++row;
      }
      const VertexId col = row + 1 + static_cast<VertexId>(remaining);
      edges.emplace_back(begin + row, begin + col);
      ++pair_index;
    }
  }

  // Inter-community edges: uniform cross pairs until the mixing budget is met.
  const auto inter_budget = static_cast<EdgeId>(
      params.n * params.avg_degree * params.mixing / 2.0);
  EdgeId made = 0;
  std::uint64_t attempts = 0;
  const std::uint64_t attempt_cap = inter_budget * 20 + 1000;
  while (made < inter_budget && attempts < attempt_cap) {
    ++attempts;
    const auto u = static_cast<VertexId>(rng.next_below(params.n));
    const auto v = static_cast<VertexId>(rng.next_below(params.n));
    if (u == v || community_of[u] == community_of[v]) continue;
    edges.emplace_back(u, v);
    ++made;
  }

  if (ground_truth != nullptr) *ground_truth = std::move(community_of);
  return GraphBuilder::from_edges(edges, params.n);
}

}  // namespace ppscan
