// Summary statistics of a graph — the quantities the paper reports in
// Tables 1 and 2 (|V|, |E|, average degree, maximum degree) plus a degree
// histogram used by the generator tests to check skew.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace ppscan {

struct GraphStats {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  double avg_degree = 0.0;
  VertexId max_degree = 0;
  VertexId isolated_vertices = 0;

  /// Triangle count (exact, per-edge merge intersection). Filled only when
  /// compute_stats(..., with_triangles=true); relevant because structural
  /// similarity is triangle-driven.
  std::uint64_t triangles = 0;

  [[nodiscard]] std::string to_string() const;
};

GraphStats compute_stats(const CsrGraph& graph, bool with_triangles = false);

/// Histogram of log2-degree buckets: hist[k] = #vertices with degree in
/// [2^k, 2^{k+1}); hist[0] also counts degree-0 and degree-1 vertices.
std::vector<std::uint64_t> degree_histogram(const CsrGraph& graph);

}  // namespace ppscan
