// Compressed sparse row (CSR) representation of an undirected, unweighted,
// simple graph — the input format of every SCAN-family algorithm in this
// library (paper Definition 2.11).
//
// Each undirected edge {u, v} is stored twice, as directed arcs (u,v) and
// (v,u). Neighbor lists are sorted ascending; several algorithms (reverse
// edge lookup, merge/galloping/pivot set intersections) depend on that
// invariant, which `validate()` checks.
#pragma once

#include <span>
#include <vector>

#include "graph/graph_placement.hpp"
#include "util/types.hpp"

namespace ppscan {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Takes ownership of prebuilt CSR arrays. `offsets` must have
  /// `num_vertices + 1` entries with offsets[0] == 0 and
  /// offsets.back() == dst.size(). Use GraphBuilder to construct these from
  /// an edge list.
  CsrGraph(std::vector<EdgeId> offsets, std::vector<VertexId> dst);

  [[nodiscard]] VertexId num_vertices() const {
    return offsets_.empty() ? 0 : checked_vertex_cast(offsets_.size() - 1);
  }

  /// Number of *undirected* edges |E|; the dst array holds 2|E| arcs.
  [[nodiscard]] EdgeId num_edges() const { return dst_.size() / 2; }

  /// Number of directed arcs (= dst array length).
  [[nodiscard]] EdgeId num_arcs() const { return dst_.size(); }

  [[nodiscard]] VertexId degree(VertexId u) const {
    return static_cast<VertexId>(offsets_[u + 1] - offsets_[u]);
  }

  [[nodiscard]] EdgeId offset_begin(VertexId u) const { return offsets_[u]; }
  [[nodiscard]] EdgeId offset_end(VertexId u) const { return offsets_[u + 1]; }

  /// Sorted neighbor list of u.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId u) const {
    return {dst_.data() + offsets_[u],
            dst_.data() + offsets_[u + 1]};
  }

  [[nodiscard]] const std::vector<EdgeId>& offsets() const { return offsets_; }
  [[nodiscard]] const std::vector<VertexId>& dst() const { return dst_; }

  /// Arc index e(u,v) (paper Definition 2.11) via binary search in u's
  /// sorted neighbor list; returns kInvalidEdge when (u,v) is absent.
  [[nodiscard]] EdgeId arc_index(VertexId u, VertexId v) const;

  /// Arc index of the reverse arc e(v,u) given e(u,v) = `arc`. This is the
  /// lookup pSCAN's similarity-reuse technique performs (paper §3.2.1).
  [[nodiscard]] EdgeId reverse_arc(VertexId u, EdgeId arc) const {
    return arc_index(dst_[arc], u);
  }

  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const {
    return arc_index(u, v) != kInvalidEdge;
  }

  static constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

  /// Checks the CSR invariants and throws GraphIoError (see
  /// util/graph_io_error.hpp) on the first violation.
  ///
  /// The structural checks are one linear pass over offsets plus one over
  /// dst: offsets start at 0, are monotone, end at num_arcs(); every
  /// dst[i] < num_vertices(); every neighbor list strictly ascending (no
  /// duplicates) and self-loop-free. With `check_symmetry` (the default) a
  /// second, O(arcs · log degree) pass additionally verifies that every arc
  /// (u,v) has its reverse (v,u). Loaders run the linear pass only, so
  /// validated loading stays O(read).
  void validate(bool check_symmetry = true) const;

  /// Applies a NUMA placement policy to the CSR pages in place (see
  /// graph/graph_placement.hpp): contents, addresses, and iterators are
  /// unchanged — only page residency moves. Best effort; never throws.
  PlacementReport apply_placement(const PlacementOptions& options);

 private:
  std::vector<EdgeId> offsets_;  // size num_vertices() + 1
  std::vector<VertexId> dst_;    // size 2 * num_edges(), sorted per vertex
};

}  // namespace ppscan
