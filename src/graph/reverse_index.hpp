// Precomputed reverse-arc index.
//
// pSCAN's similarity-value reuse writes every decided flag to both arc
// directions; finding e(v,u) from e(u,v) is a binary search in v's sorted
// neighbor list (paper §3.2.1). On graphs with large hubs that search is
// O(log max_d) per decided edge; this index precomputes all reverse arcs in
// one O(|E|) counting pass so the lookup becomes a single load, at the cost
// of 8 bytes per directed arc. ppSCAN/pSCAN take it as an optional
// acceleration (bench_ablation_reverse_index measures the trade-off).
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"

namespace ppscan {

class ReverseArcIndex {
 public:
  ReverseArcIndex() = default;

  /// Builds rev[e(u,v)] = e(v,u) for every directed arc.
  explicit ReverseArcIndex(const CsrGraph& graph);

  [[nodiscard]] bool empty() const { return reverse_.empty(); }

  [[nodiscard]] EdgeId reverse(EdgeId arc) const { return reverse_[arc]; }

  [[nodiscard]] std::uint64_t memory_bytes() const {
    return reverse_.size() * sizeof(EdgeId);
  }

 private:
  std::vector<EdgeId> reverse_;
};

}  // namespace ppscan
