// NUMA placement policy for the CSR arrays (offsets + adjacency).
//
// The loader thread allocates the CSR wherever it happens to run, so on a
// multi-socket box every worker on the other socket pays remote-memory
// latency on the similarity hot path. apply_placement() fixes the pages
// up IN PLACE — the vectors, their addresses, and their contents are
// untouched (many tests compare `offsets()`/`dst()` by value, and spans
// into the arrays stay valid):
//
//   * Sharded    — vertex range split into one edge-balanced shard per
//                  topology node; each shard's offsets/adjacency pages are
//                  moved to its node with a raw mbind(MPOL_BIND,
//                  MPOL_MF_MOVE) syscall (libnuma-free). Workers pinned to
//                  node k then find shard k's data local.
//   * Interleave — pages round-robined across all nodes
//                  (mbind(MPOL_INTERLEAVE)): the bandwidth-over-locality
//                  baseline.
//   * Default    — leave the pages where first touch put them.
//
// Optionally the arrays are advised onto 2 MB transparent hugepages
// (madvise(MADV_HUGEPAGE)) first — fewer TLB entries for the multi-GB
// adjacency array, independent of the node policy.
//
// Everything here is best effort and degrades gracefully: a single-node
// topology, an emulated (PPSCAN_NUMA_NODES) topology, a kernel without
// the syscalls, or a denied mbind all leave the graph exactly as it was
// and record why in PlacementReport::fallback_reason — placement NEVER
// throws and never changes results, only page residency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace ppscan {

struct NumaTopology;  // concurrent/topology.hpp; only a pointer is held

enum class GraphPlacement : std::uint8_t { Default, Sharded, Interleave };

std::string to_string(GraphPlacement placement);

struct PlacementOptions {
  GraphPlacement placement = GraphPlacement::Default;
  /// Advise the offsets/adjacency arrays onto transparent hugepages.
  bool hugepages = false;
  /// Topology for Sharded/Interleave; not owned. nullptr degrades to the
  /// single-node fallback (recorded, not an error).
  const NumaTopology* topology = nullptr;
};

struct PlacementReport {
  /// True when a node policy was actually applied (mbind succeeded, or the
  /// emulated topology recorded its shard split).
  bool applied = false;
  bool hugepages_advised = false;
  /// Non-empty when the request degraded (single node, emulated topology,
  /// unsupported platform, failed syscall): the one-line reason to surface.
  std::string fallback_reason;
  /// Sharded only: interior vertex boundaries of the per-node shards
  /// (num_nodes - 1 entries); shard k covers [bounds[k-1], bounds[k]).
  std::vector<VertexId> shard_bounds;
};

/// Splits [0, num_vertices) into `shards` contiguous vertex ranges with
/// near-equal *edge* counts (degree-weighted, one sweep over the offsets
/// array): returns the shards - 1 interior boundaries. Shards past the
/// edge supply (more shards than edges) collapse to empty ranges at the
/// tail. The same split serves placement shards and the edge-balanced
/// StaticRange scheduler policy.
std::vector<VertexId> edge_balanced_boundaries(
    const std::vector<EdgeId>& offsets, std::size_t shards);

}  // namespace ppscan
