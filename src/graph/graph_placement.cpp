#include "graph/graph_placement.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <vector>

#include "concurrent/topology.hpp"
#include "graph/csr_graph.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace ppscan {
namespace {

// Raw-syscall memory policy constants (uapi/linux/mempolicy.h). Defined
// locally so the build never needs libnuma or its headers; guarded use
// sites degrade to the recorded fallback when the syscall is unavailable.
#if defined(__linux__) && defined(__NR_mbind)
constexpr int kMpolBind = 2;
constexpr int kMpolInterleave = 3;
constexpr unsigned kMpolMfMove = 1u << 1;

/// mbind() the page-aligned hull of [addr, addr + len) to `nodemask`,
/// moving already-faulted pages. Best effort: false on any failure.
bool mbind_range(void* addr, std::size_t len, int mode,
                 unsigned long nodemask) {
  if (len == 0 || nodemask == 0) return true;
  const auto page = static_cast<std::uintptr_t>(sysconf(_SC_PAGESIZE));
  auto beg = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t end = beg + len;
  beg &= ~(page - 1);
  const std::size_t span = ((end - beg) + page - 1) / page * page;
  unsigned long mask = nodemask;
  return syscall(__NR_mbind, reinterpret_cast<void*>(beg), span, mode, &mask,
                 sizeof(mask) * 8 + 1, kMpolMfMove) == 0;
}
#endif

bool advise_hugepages(void* addr, std::size_t len) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  if (len == 0) return false;
  // madvise wants page alignment; advise the aligned interior only so the
  // neighboring heap objects on the boundary pages are left alone.
  const auto page = static_cast<std::uintptr_t>(sysconf(_SC_PAGESIZE));
  const auto raw = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t beg = (raw + page - 1) & ~(page - 1);
  const std::uintptr_t end = (raw + len) & ~(page - 1);
  if (end <= beg) return false;
  return madvise(reinterpret_cast<void*>(beg), end - beg, MADV_HUGEPAGE) == 0;
#else
  (void)addr;
  (void)len;
  return false;
#endif
}

/// One pass over every byte of each shard from a thread pinned to the
/// shard's node: warms the node-local caches/TLB and, for pages the loader
/// never faulted, makes first touch land on the owning node. The fallback
/// placement mechanism when pages cannot be migrated outright.
void parallel_touch(const NumaTopology& topo,
                    const std::vector<std::pair<const void*, std::size_t>>&
                        shard_bytes) {
  std::vector<std::thread> threads;
  threads.reserve(shard_bytes.size());
  for (std::size_t k = 0; k < shard_bytes.size(); ++k) {
    threads.emplace_back([&topo, &shard_bytes, k] {
      if (k < topo.nodes.size()) {
        pin_thread_to_cpus(topo.nodes[k].cpus);
      }
      const auto* bytes =
          static_cast<const volatile char*>(shard_bytes[k].first);
      std::size_t sum = 0;
      for (std::size_t i = 0; i < shard_bytes[k].second; i += 64) {
        sum += static_cast<std::size_t>(bytes[i]);
      }
      // The sum is dead; the volatile reads are the point.
      (void)sum;
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace

std::string to_string(GraphPlacement placement) {
  switch (placement) {
    case GraphPlacement::Default: return "default";
    case GraphPlacement::Sharded: return "sharded";
    case GraphPlacement::Interleave: return "interleave";
  }
  return "?";
}

std::vector<VertexId> edge_balanced_boundaries(
    const std::vector<EdgeId>& offsets, std::size_t shards) {
  std::vector<VertexId> bounds;
  if (shards <= 1 || offsets.size() <= 1) return bounds;
  const VertexId n = checked_vertex_cast(offsets.size() - 1);
  const std::uint64_t total = offsets.back();
  bounds.reserve(shards - 1);
  VertexId prev = 0;
  for (std::size_t k = 1; k < shards; ++k) {
    // Smallest vertex whose prefix of arcs reaches k/shards of the total;
    // offsets is monotone, so a binary search finds it directly.
    const std::uint64_t target =
        total * static_cast<std::uint64_t>(k) / shards;
    const auto it =
        std::lower_bound(offsets.begin(), offsets.end(), target);
    auto cut = static_cast<VertexId>(it - offsets.begin());
    cut = std::clamp(cut, prev, n);
    bounds.push_back(cut);
    prev = cut;
  }
  return bounds;
}

PlacementReport CsrGraph::apply_placement(const PlacementOptions& options) {
  PlacementReport report;
  if (options.hugepages) {
    const bool a = advise_hugepages(offsets_.data(),
                                    offsets_.size() * sizeof(EdgeId));
    const bool b =
        advise_hugepages(dst_.data(), dst_.size() * sizeof(VertexId));
    report.hugepages_advised = a || b;
  }
  if (options.placement == GraphPlacement::Default) return report;
  const NumaTopology* topo = options.topology;
  if (topo == nullptr || topo->uniform()) {
    report.fallback_reason = "single NUMA node: placement is a no-op";
    return report;
  }
  if (num_vertices() == 0) {
    report.fallback_reason = "empty graph";
    return report;
  }
  const auto nodes = static_cast<std::size_t>(topo->num_nodes());

  if (options.placement == GraphPlacement::Interleave) {
#if defined(__linux__) && defined(__NR_mbind)
    if (topo->emulated) {
      report.fallback_reason =
          "emulated topology: interleave recorded, pages not migrated";
      report.applied = true;
      return report;
    }
    unsigned long mask = 0;
    for (const NumaNode& node : topo->nodes) {
      if (node.id >= 0 && node.id < 64) mask |= 1ul << node.id;
    }
    const bool a = mbind_range(offsets_.data(),
                               offsets_.size() * sizeof(EdgeId),
                               kMpolInterleave, mask);
    const bool b = mbind_range(dst_.data(), dst_.size() * sizeof(VertexId),
                               kMpolInterleave, mask);
    report.applied = a && b;
    if (!report.applied) {
      report.fallback_reason =
          std::string("mbind(interleave) failed: ") + std::strerror(errno);
    }
#else
    report.fallback_reason = "mbind unavailable on this platform";
#endif
    return report;
  }

  // Sharded: one edge-balanced vertex range per node; shard k's slice of
  // both arrays moves to node k.
  report.shard_bounds = edge_balanced_boundaries(offsets_, nodes);
  std::vector<std::pair<const void*, std::size_t>> shard_bytes;
  bool all_ok = true;
  bool any_mbind = false;
  for (std::size_t k = 0; k < nodes; ++k) {
    const VertexId v_beg = k == 0 ? 0 : report.shard_bounds[k - 1];
    const VertexId v_end = k + 1 == nodes
                               ? num_vertices()
                               : report.shard_bounds[k];
    if (v_beg >= v_end) continue;
    const EdgeId e_beg = offsets_[v_beg];
    const EdgeId e_end = offsets_[v_end];
    shard_bytes.emplace_back(
        dst_.data() + e_beg,
        static_cast<std::size_t>(e_end - e_beg) * sizeof(VertexId));
#if defined(__linux__) && defined(__NR_mbind)
    if (!topo->emulated) {
      const int id = topo->nodes[k].id;
      if (id < 0 || id >= 64) {
        all_ok = false;
        continue;
      }
      const unsigned long mask = 1ul << id;
      any_mbind = true;
      all_ok &= mbind_range(offsets_.data() + v_beg,
                            static_cast<std::size_t>(v_end - v_beg + 1) *
                                sizeof(EdgeId),
                            kMpolBind, mask);
      all_ok &= mbind_range(dst_.data() + e_beg,
                            static_cast<std::size_t>(e_end - e_beg) *
                                sizeof(VertexId),
                            kMpolBind, mask);
    }
#endif
  }
  if (topo->emulated) {
    // Synthetic nodes: nothing to migrate, but the warm pass still runs
    // one pinned thread per shard so the emulated lane exercises the same
    // shard structure the real path places.
    parallel_touch(*topo, shard_bytes);
    report.applied = true;
    report.fallback_reason =
        "emulated topology: shard split recorded, pages not migrated";
    return report;
  }
  if (any_mbind && all_ok) {
    report.applied = true;
  } else if (any_mbind) {
    report.fallback_reason =
        std::string("mbind(bind) failed: ") + std::strerror(errno);
  } else {
    // No syscall available: fall back to the pinned touch pass (real
    // first-touch for never-faulted pages, cache warmth otherwise).
    parallel_touch(*topo, shard_bytes);
    report.applied = true;
    report.fallback_reason = "mbind unavailable: used pinned touch pass";
  }
  return report;
}

}  // namespace ppscan
