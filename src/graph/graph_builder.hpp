// Builds a valid CsrGraph from an arbitrary undirected edge list:
// symmetrizes, strips self loops, deduplicates parallel edges, and sorts
// every neighbor list.
#pragma once

#include <utility>
#include <vector>

#include "graph/csr_graph.hpp"
#include "util/types.hpp"

namespace ppscan {

using EdgeList = std::vector<std::pair<VertexId, VertexId>>;

class GraphBuilder {
 public:
  /// `num_vertices` fixes the vertex-id space [0, num_vertices); pass 0 to
  /// infer it as max endpoint + 1.
  explicit GraphBuilder(VertexId num_vertices = 0)
      : num_vertices_(num_vertices) {}

  void add_edge(VertexId u, VertexId v) { edges_.emplace_back(u, v); }
  void add_edges(const EdgeList& edges);

  /// Consumes the accumulated edges and produces a validated CSR graph.
  [[nodiscard]] CsrGraph build();

  /// One-shot convenience: build directly from an edge list.
  static CsrGraph from_edges(const EdgeList& edges, VertexId num_vertices = 0);

 private:
  VertexId num_vertices_;
  EdgeList edges_;
};

/// Extracts the unique undirected edge list {u,v} with u < v from a graph —
/// the inverse of GraphBuilder, used by I/O and the tests.
EdgeList to_edge_list(const CsrGraph& graph);

}  // namespace ppscan
