// Incremental CSR payload validation.
//
// read_csr_binary must validate untrusted dst arrays without paying a
// second trip through memory, so validation runs on cache-hot chunks as
// they are read: a vectorized kernel walks the neighbor lists overlapping
// each chunk and checks, lane-parallel, that every list window is strictly
// ascending (sorted, duplicate-free), contains no element >= n, and does
// not contain its own vertex id (self loop). Those are exactly the CSR
// payload invariants, decided with three vector compares per 8/16
// elements instead of three branchy scalar ones per element.
//
// The kernel only reports valid / not valid; on the first bad chunk a
// serial rescan names the precise invariant, vertex, and dst index in the
// thrown GraphIoError — corrupt input is the cold path and can afford it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace ppscan {

namespace detail {

struct ChunkVerdict {
  bool ok;               // all list windows in the chunk hold the invariants
  VertexId next_cursor;  // first vertex whose list is not fully verified
};

/// Verifies every neighbor-list window overlapping dst positions
/// [chunk_begin, chunk_begin + count). `data` points at the chunk (global
/// position chunk_begin); `cursor` is the first vertex whose list is not
/// yet fully verified; `prev_last` is the dst value at chunk_begin - 1
/// (ignored for the first chunk). Offsets must already be verified
/// monotone with back() == total arcs.
ChunkVerdict verify_chunk_scalar(const VertexId* data, EdgeId chunk_begin,
                                 EdgeId count, const EdgeId* offsets,
                                 VertexId cursor, VertexId num_vertices,
                                 VertexId prev_last);
/// AVX2 / AVX-512 variants (csr_validate_avx2.cpp / _avx512.cpp); call
/// only when the CPU supports the ISA.
ChunkVerdict verify_chunk_avx2(const VertexId* data, EdgeId chunk_begin,
                               EdgeId count, const EdgeId* offsets,
                               VertexId cursor, VertexId num_vertices,
                               VertexId prev_last);
ChunkVerdict verify_chunk_avx512(const VertexId* data, EdgeId chunk_begin,
                                 EdgeId count, const EdgeId* offsets,
                                 VertexId cursor, VertexId num_vertices,
                                 VertexId prev_last);
/// Runtime-dispatched best available kernel.
ChunkVerdict verify_chunk(const VertexId* data, EdgeId chunk_begin,
                          EdgeId count, const EdgeId* offsets,
                          VertexId cursor, VertexId num_vertices,
                          VertexId prev_last);

/// Shared list-walk skeleton the per-ISA kernels instantiate. Visits every
/// list window overlapping the chunk, checks the window head and last
/// element (range, self loop, order against the previous element — which
/// may live in the previous chunk), and delegates positions 1..len-1 to
/// `body(w, len, u)`, which must verify w[i-1] < w[i] and w[i] != u. The
/// walk itself covers the range invariant: strict ascent means a window is
/// all in range iff its last element is, so the per-lane `< n` compare is
/// hoisted out of the kernels entirely.
template <class WindowBody>
inline ChunkVerdict verify_chunk_walk(const VertexId* data, EdgeId chunk_begin,
                                      EdgeId count, const EdgeId* offsets,
                                      VertexId cursor, VertexId num_vertices,
                                      VertexId prev_last, WindowBody&& body) {
  const EdgeId a = chunk_begin;
  const EdgeId b = a + count;
  VertexId u = cursor;
  EdgeId start = u < num_vertices ? offsets[u] : b;
  while (u < num_vertices && start < b) {
    const EdgeId end = offsets[u + 1];
    const EdgeId lo = start < a ? a : start;
    const EdgeId hi = end < b ? end : b;
    if (lo < hi) {
      const VertexId* w = data + (lo - a);
      const VertexId head = w[0];
      const EdgeId len = hi - lo;
      if (head == u || w[len - 1] >= num_vertices) return {false, u};
      if (lo > start) {
        // List continues from before this window; its previous element is
        // either the last value of the previous chunk or w[-1] (in range:
        // lo > a here whenever lo != a).
        const VertexId before = lo == a ? prev_last : *(w - 1);
        if (before >= head) return {false, u};
      }
      if (!body(w, len, u)) return {false, u};
    }
    if (end > b) break;  // list continues into the next chunk
    ++u;
    start = end;
  }
  return {true, u};
}

}  // namespace detail

/// Validates a CSR dst array fed as consecutive runs against a fixed
/// offset array. Usage: check_offsets() once, feed() every run of dst
/// values in order, finish() after the last one. Throws GraphIoError on
/// the first violated invariant. The offsets vector must outlive the
/// validator.
class CsrPayloadValidator {
 public:
  CsrPayloadValidator(const std::vector<EdgeId>& offsets, EdgeId num_arcs);

  /// Offsets invariants: start at 0, monotone, end at num_arcs. Call
  /// before the first feed(); feed() relies on them for safe indexing.
  void check_offsets() const;

  /// Validates the next `count` dst values. `data` is only read during
  /// the call.
  void feed(const VertexId* data, EdgeId count);

  /// Internal-consistency check that every arc announced by the offsets
  /// was fed.
  void finish() const;

 private:
  /// Serial per-element re-scan of one fed window that throws the precise
  /// typed error for the anomaly the kernel detected.
  [[noreturn]] void throw_precise(const VertexId* data, EdgeId window_begin,
                                  EdgeId count, VertexId prev_before) const;

  const std::vector<EdgeId>& offsets_;
  VertexId num_vertices_;
  EdgeId num_arcs_;
  EdgeId fed_ = 0;           // arcs consumed so far
  VertexId cursor_ = 0;      // first vertex whose list is not fully fed
  VertexId prev_last_ = 0;   // dst[fed_ - 1], for lists spanning chunks
};

}  // namespace ppscan
