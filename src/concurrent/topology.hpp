// NUMA topology detection for the work-stealing executor.
//
// The executor's steal order and the CSR placement policy (see
// graph/graph_placement.hpp) both key off a NumaTopology: the list of NUMA
// nodes with the CPUs each one owns. Detection is libnuma-free — the
// kernel's sysfs layout (/sys/devices/system/node/node*/cpulist) is the
// source of truth, intersected with the process affinity mask so a
// cpuset-restricted container never pins a worker onto a CPU it cannot run
// on.
//
// Detection NEVER fails: a single-socket box, a container with sysfs
// masked out, or an affinity mask that empties every node all degrade to
// the uniform single-node topology with `fallback_reason` recording why —
// the caller's behavior is then exactly the pre-NUMA executor. The
// PPSCAN_NUMA_NODES environment knob overrides detection with an emulated
// N-node split of the available CPUs so hierarchical stealing can be
// exercised (and CI-tested) on single-socket machines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ppscan {

/// User-facing NUMA policy (the CLI/bench `--numa=` flag).
///   Auto       — detect the topology, pin workers round-robin across
///                nodes, shard the graph with first-touch/mbind placement.
///   Off        — pre-NUMA behavior: uniform steal order, no pinning.
///   Interleave — no sharding/pinning, but interleave the CSR pages across
///                nodes (the classic bandwidth-over-locality baseline).
enum class NumaMode : std::uint8_t { Auto, Off, Interleave };

NumaMode parse_numa_mode(const std::string& name);
std::string to_string(NumaMode mode);

/// One NUMA node: its kernel id and the CPUs of the process affinity mask
/// that live on it.
struct NumaNode {
  int id = 0;
  std::vector<int> cpus;
};

struct NumaTopology {
  /// Nodes that own at least one usable CPU, ordered by kernel id. Never
  /// empty: the degraded/fallback topology is one node owning every CPU
  /// (possibly none, when even the affinity mask could not be read).
  std::vector<NumaNode> nodes;
  /// True for the PPSCAN_NUMA_NODES emulation: the node split is synthetic,
  /// so placement records shard boundaries but must not mbind pages.
  bool emulated = false;
  /// Where the topology came from: "sysfs", "env", or "fallback".
  std::string source;
  /// Non-empty when detection degraded to the uniform topology; the exact
  /// one-line reason the caller should surface (trace event / log line).
  std::string fallback_reason;

  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(nodes.size());
  }
  /// True when the topology carries no locality structure (<= 1 node); all
  /// NUMA machinery then degenerates to the uniform behavior.
  [[nodiscard]] bool uniform() const { return nodes.size() <= 1; }
};

/// Parses a kernel cpulist ("0-3,7,9-10") into sorted CPU ids. Returns
/// false (leaving `out` unspecified) on malformed text — reversed ranges,
/// non-numeric tokens — so a damaged sysfs never yields a bogus topology.
bool parse_cpu_list(const std::string& text, std::vector<int>* out);

/// Detects the machine topology:
///   1. PPSCAN_NUMA_NODES >= 1 set → emulated round-robin split of the
///      affinity-mask CPUs into that many nodes (capped at the CPU count).
///   2. sysfs node directories, each cpulist intersected with the process
///      affinity mask; nodes left with no CPU are dropped.
///   3. Anything unexpected → the uniform fallback with fallback_reason.
/// Never throws.
NumaTopology detect_topology();

/// Detection against a canned sysfs `node/` directory (test fixtures). No
/// affinity intersection — the fixture's cpulists are taken as-is.
NumaTopology detect_topology_from(const std::string& node_dir);

/// Synthetic topology: `cpus` split round-robin across `num_nodes` nodes
/// (marked emulated). num_nodes below 1 is treated as 1; with fewer CPUs
/// than nodes the surplus nodes share the whole CPU set — the requested
/// node count is always honored so emulation exercises the hierarchical
/// machinery even on a 1-CPU box.
NumaTopology emulated_topology(int num_nodes, const std::vector<int>& cpus);

/// CPUs of the calling process's affinity mask (sched_getaffinity); empty
/// when the mask cannot be read.
std::vector<int> affinity_cpus();

/// Pins the calling thread to `cpus`. Best effort: returns false (and
/// changes nothing) on an empty list, a non-Linux build, or a failed
/// syscall — a failed pin must never fail the run.
bool pin_thread_to_cpus(const std::vector<int>& cpus);

}  // namespace ppscan
