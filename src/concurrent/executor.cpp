#include "concurrent/executor.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "concurrent/run_governor.hpp"
#include "util/fault_point.hpp"

namespace ppscan {
namespace {

using Clock = std::chrono::steady_clock;

/// Consecutive empty scans a worker tolerates (with yields) before parking
/// on the futex. Small: phases are dense, so an empty scan usually means
/// the phase tail is draining and the next wake is the phase barrier.
constexpr int kSpinRounds = 64;

constexpr std::uint64_t kLow32 = 0xffffffffull;

std::uint64_t tag_of(std::uint64_t packed) { return packed >> 32; }

std::uint64_t elapsed_ns(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

// Identifies the calling thread as worker `t_index` of executor `t_owner`
// (set once per worker thread; foreign threads keep the nullptr default).
thread_local const Executor* t_owner = nullptr;
thread_local int t_index = -1;

}  // namespace

Executor::Executor(int num_threads)
    : Executor(num_threads, NumaTopology{}, /*pin_workers=*/false) {}

Executor::Executor(int num_threads, const NumaTopology& topology,
                   bool pin_workers)
    : num_workers_(num_threads) {
  if (num_threads < 1) {
    throw std::invalid_argument("Executor: need at least one thread");
  }
  // Clamp the node count to the worker count so every node shard has at
  // least one worker (threads < nodes would otherwise leave node windows
  // no initial segment covers). An empty/uniform topology degenerates to
  // one node = the pre-NUMA executor.
  num_nodes_ = std::clamp(topology.num_nodes(), 1, num_threads);
  const auto n = static_cast<std::size_t>(num_threads);
  worker_node_.resize(n);
  victim_order_.resize(n);
  same_node_victims_.resize(n);
  pin_cpus_.resize(n);
  for (int w = 0; w < num_threads; ++w) {
    const int node = w % num_nodes_;
    worker_node_[static_cast<std::size_t>(w)] = node;
    if (pin_workers && node < topology.num_nodes()) {
      pin_cpus_[static_cast<std::size_t>(w)] =
          topology.nodes[static_cast<std::size_t>(node)].cpus;
    }
  }
  // Hierarchical victim order: ring over the same-node workers first, then
  // ring over the remote ones — each victim exactly once, deterministic,
  // so the preferred-victim property is testable without racing.
  for (int w = 0; w < num_threads; ++w) {
    auto& order = victim_order_[static_cast<std::size_t>(w)];
    order.reserve(n - 1);
    const int my_node = worker_node_[static_cast<std::size_t>(w)];
    for (int d = 1; d < num_threads; ++d) {
      const int v = (w + d) % num_threads;
      if (worker_node_[static_cast<std::size_t>(v)] == my_node) {
        order.push_back(v);
      }
    }
    same_node_victims_[static_cast<std::size_t>(w)] = order.size();
    for (int d = 1; d < num_threads; ++d) {
      const int v = (w + d) % num_threads;
      if (worker_node_[static_cast<std::size_t>(v)] != my_node) {
        order.push_back(v);
      }
    }
  }
  workers_.reserve(n);
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (int i = 0; i < num_threads; ++i) {
    workers_[static_cast<std::size_t>(i)]->thread =
        std::thread([this, i] { worker_loop(i); });
  }
}

Executor::~Executor() {
  // The supervisor dereferences worker heartbeats; stop it before the
  // workers go away.
  if (supervisor_.joinable()) {
    supervisor_stop_.store(true, std::memory_order_release);
    {
      CheckedLock lock(supervisor_mutex_);
      ++supervisor_epoch_;
    }
    supervisor_cv_.notify_all();
    supervisor_.join();
  }
  stop_.store(true, std::memory_order_release);
  wake_workers();
  for (auto& w : workers_) w->thread.join();
}

int Executor::current_worker() const {
  return t_owner == this ? t_index : -1;
}

void Executor::install_governor(RunGovernor* governor) {
  governor_.store(governor, std::memory_order_seq_cst);
  if (governor != nullptr && governor->supervised()) {
    if (!supervisor_.joinable()) {
      supervisor_ = std::thread([this] { supervisor_loop(); });
    } else {
      // Wake a sleeping supervisor: its idle tick may be far longer than
      // this run's deadline, and the first poll must use the new governor.
      {
        CheckedLock lock(supervisor_mutex_);
        ++supervisor_epoch_;
      }
      supervisor_cv_.notify_all();
    }
  }
  // Grace period: a supervisor tick that loaded the *previous* pointer may
  // still be inside its critical section — wait it out so the caller can
  // retire the old governor immediately (the section is a few loads, so
  // this spin is microseconds at worst).
  while (supervisor_busy_.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
}

void Executor::supervisor_loop() {
  using std::chrono::milliseconds;
  // Adaptive tick: fine-grained only when a limit could fire soon. Every
  // supervisor wakeup preempts a worker on a saturated machine, so the
  // idle cadence is what governance costs an uncancelled run. Because
  // install_governor wakes the condvar for each new supervised run, the
  // cadence only has to serve the *current* governor's limits: a far
  // deadline halves its way in (remaining/2, so it fires within kTickMin
  // of the mark), the watchdog ticks at a quarter of its own window, and
  // kTickMax caps the destructor's join latency. kTickMin stops a near
  // deadline from busy-spinning the loop.
  // static so the clamp lambda can odr-use them without a capture.
  static constexpr auto kTickMin = milliseconds(1);
  static constexpr auto kTickMax = milliseconds(250);
  const auto clamp_tick = [](milliseconds t) {
    return std::clamp(t, kTickMin, kTickMax);
  };
  auto tick = kTickMin;  // first tick fast: a deadline may already be near
  std::uint64_t seen_epoch = 0;
  std::uint64_t last_sum = 0;
  auto last_progress = Clock::now();
  // One wake broadcast per trip: parked workers re-scan once, see the
  // tripped token at the claim boundary, and skip-drain their ranges.
  const RunGovernor* announced_for = nullptr;
  while (!supervisor_stop_.load(std::memory_order_acquire)) {
    {
      CheckedLock lock(supervisor_mutex_);
      // Explicit wait loop, not wait_for(lock, tick, pred): a predicate
      // lambda reading supervisor_epoch_ would not inherit this scope's
      // capability under -Wthread-safety (thread_safety.hpp, rule 3).
      const auto wake_at = Clock::now() + tick;
      while (!supervisor_stop_.load(std::memory_order_acquire) &&
             supervisor_epoch_ == seen_epoch) {
        if (supervisor_cv_.wait_until(lock.native(), wake_at) ==
            std::cv_status::timeout) {
          break;
        }
      }
      seen_epoch = supervisor_epoch_;
    }
    tick = kTickMax;
    // The store-then-load on busy_/governor_ pairs with the
    // store-then-load in install_governor (both seq_cst): either the
    // installer sees busy and waits, or this tick sees the new pointer.
    supervisor_busy_.store(1, std::memory_order_seq_cst);
    RunGovernor* gov = governor_.load(std::memory_order_seq_cst);
    if (gov == nullptr || !gov->supervised()) {
      supervisor_busy_.store(0, std::memory_order_release);
      announced_for = nullptr;
      continue;
    }
    gov->poll_deadline();
    if (gov->limits().deadline.count() > 0 && !gov->should_stop()) {
      const auto remaining =
          std::chrono::duration_cast<milliseconds>(
              gov->limits().deadline - (Clock::now() - gov->start_time()));
      tick = std::min(tick, clamp_tick(remaining / 2));
    }
    if (gov->watchdog_enabled()) {
      tick = std::min(tick, clamp_tick(gov->limits().stall_timeout / 4));
      const auto now = Clock::now();
      if (pending_.load(std::memory_order_acquire) == 0) {
        // Between phases nothing is supposed to progress; keep the stall
        // clock parked at "just made progress".
        last_sum = heartbeat_sum();
        last_progress = now;
      } else {
        const std::uint64_t sum = heartbeat_sum();
        if (sum != last_sum) {
          last_sum = sum;
          last_progress = now;
        } else if (!gov->should_stop() &&
                   now - last_progress >= gov->limits().stall_timeout) {
          // No claim, completion, or skip anywhere for a full stall window
          // while tasks remain: either a worker is wedged inside a body
          // (odd heartbeat) or the runtime lost a wakeup (-1). Trip and
          // report.
          gov->record_stall(find_stuck_worker());
        }
      }
    }
    if (gov->should_stop() && announced_for != gov) {
      announced_for = gov;
#if PPSCAN_TRACE_ENABLED
      // The supervisor has its own single-writer slot: a trip landing in
      // the timeline shows when the drain started relative to the worker
      // spans it cut short.
      if (obs::TraceCollector* tc = trace_.load(std::memory_order_acquire);
          tc != nullptr) {
        tc->emit(tc->supervisor_slot(), obs::TraceEventKind::GovernorTrip,
                 "governor-trip",
                 static_cast<std::uint64_t>(gov->abort_info().reason));
      }
#endif
      wake_workers();
    }
    supervisor_busy_.store(0, std::memory_order_release);
  }
}

void Executor::begin_phase(RangeFn fn, void* ctx) {
  fn_ = fn;
  ctx_ = ctx;
  tasks_ = nullptr;
  // Publishing the new phase tag invalidates every segment cursor (their
  // tags are now stale) and makes fn_/ctx_ visible to any worker that
  // acquires phase_ or pops a range pushed after this store.
  phase_.store(phase_.load(std::memory_order_relaxed) + 1,
               std::memory_order_release);
}

void Executor::run(const TaskRange* tasks, std::size_t count, RangeFn fn,
                   void* ctx) {
  fn_ = fn;
  ctx_ = ctx;
  tasks_ = tasks;
  const std::uint32_t p = phase_.load(std::memory_order_relaxed) + 1;
  if (count > 0) {
    pending_.fetch_add(static_cast<std::uint32_t>(count),
                       std::memory_order_relaxed);
    // Contiguous per-worker segments of the flat task array: worker w owns
    // [count*w/W, count*(w+1)/W). Claims are CASes on the tagged cursors,
    // so exhausted workers drain neighbors' segments with the same
    // one-CAS operation (= stealing).
    const auto total = static_cast<std::uint64_t>(count);
    const auto workers = static_cast<std::uint64_t>(num_workers_);
    for (std::uint64_t w = 0; w < workers; ++w) {
      const std::uint64_t beg = total * w / workers;
      const std::uint64_t end = total * (w + 1) / workers;
      Worker& worker = *workers_[static_cast<std::size_t>(w)];
      worker.segment_end.store((static_cast<std::uint64_t>(p) << 32) | end,
                               std::memory_order_relaxed);
      worker.cursor.store((static_cast<std::uint64_t>(p) << 32) | beg,
                          std::memory_order_relaxed);
    }
  }
  phase_.store(p, std::memory_order_release);
  if (count > 0) wake_workers();
  wait_idle();
}

void Executor::run_sharded(const TaskRange* tasks, std::size_t count,
                           const std::size_t* node_task_begin, RangeFn fn,
                           void* ctx) {
  if (num_nodes_ <= 1) {
    // Uniform topology: one node window == the whole array; plain run()
    // produces the identical segmentation.
    run(tasks, count, fn, ctx);
    return;
  }
  fn_ = fn;
  ctx_ = ctx;
  tasks_ = tasks;
  const std::uint32_t p = phase_.load(std::memory_order_relaxed) + 1;
  if (count > 0) {
    pending_.fetch_add(static_cast<std::uint32_t>(count),
                       std::memory_order_relaxed);
    // Same tagged-segment machinery as run(), but the split is two-level:
    // node k owns the caller's window [node_task_begin[k],
    // node_task_begin[k+1]); the node's workers (w = k, k + N, k + 2N, …)
    // split that window evenly. Stealing still reaches every segment —
    // the node windows only bias who claims a task first.
    const auto nodes = static_cast<std::uint64_t>(num_nodes_);
    for (int w = 0; w < num_workers_; ++w) {
      const auto node =
          static_cast<std::size_t>(worker_node_[static_cast<std::size_t>(w)]);
      const auto lo = static_cast<std::uint64_t>(node_task_begin[node]);
      const auto hi = static_cast<std::uint64_t>(node_task_begin[node + 1]);
      const std::uint64_t span = hi - lo;
      const auto rank = static_cast<std::uint64_t>(w) / nodes;
      const std::uint64_t members =
          (static_cast<std::uint64_t>(num_workers_) - node - 1) / nodes + 1;
      const std::uint64_t beg = lo + span * rank / members;
      const std::uint64_t end = lo + span * (rank + 1) / members;
      Worker& worker = *workers_[static_cast<std::size_t>(w)];
      worker.segment_end.store((static_cast<std::uint64_t>(p) << 32) | end,
                               std::memory_order_relaxed);
      worker.cursor.store((static_cast<std::uint64_t>(p) << 32) | beg,
                          std::memory_order_relaxed);
    }
  }
  phase_.store(p, std::memory_order_release);
  if (count > 0) wake_workers();
  wait_idle();
}

void Executor::submit(TaskRange range) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  const int w = current_worker();
  if (w >= 0) {
    workers_[static_cast<std::size_t>(w)]->deque.push(pack(range));
  } else {
    // Master thread (the only permitted non-worker submitter).
    injector_.push(pack(range));
  }
  wake_workers();
}

void Executor::record_task_failure(RunGovernor* gov) {
  const std::exception_ptr failure = std::current_exception();
  if (gov != nullptr) {
    // Governed run: the exception becomes a classified abort, first trip
    // wins exactly like a deadline or budget trip. Re-raise to recover the
    // typed what() — this catch never escapes.
    try {
      std::rethrow_exception(failure);
    } catch (const std::exception& e) {
      gov->record_exception(e.what());
    } catch (...) {
      gov->record_exception("non-std exception");
    }
    return;
  }
  {
    CheckedLock lock(failure_mutex_);
    if (!first_failure_) first_failure_ = failure;
  }
  task_failed_.store(true, std::memory_order_release);
}

void Executor::wait_idle() {
  // Plain futex park even under governance: deadline/watchdog supervision
  // lives on the dedicated supervisor thread, so the master adds no
  // periodic wakeups (and no barrier-latency quantization) to governed
  // runs.
  std::uint32_t outstanding = pending_.load(std::memory_order_acquire);
  while (outstanding != 0) {
    pending_.wait(outstanding, std::memory_order_acquire);
    outstanding = pending_.load(std::memory_order_acquire);
  }
  // Ungoverned firewall delivery: every task has finished (the check above
  // drained), so siblings of the failing task ran to completion; now the
  // first captured exception surfaces on the master. Cleared so the
  // executor stays reusable for the next phase.
  if (task_failed_.load(std::memory_order_acquire)) {
    std::exception_ptr failure;
    {
      CheckedLock lock(failure_mutex_);
      failure = first_failure_;
      first_failure_ = nullptr;
    }
    // Release keeps the clear inside the protocol's store set; the next
    // failing worker's acquire-free CAS-less publish path only needs the
    // flag itself, so the ordering is free correctness margin, not cost —
    // this runs once per failed phase, never per task.
    task_failed_.store(false, std::memory_order_release);
    if (failure) std::rethrow_exception(failure);
  }
}

std::uint64_t Executor::heartbeat_sum() const {
  std::uint64_t sum = 0;
  for (const auto& w : workers_) {
    sum += w->heartbeat.load(std::memory_order_relaxed);
  }
  return sum;
}

int Executor::find_stuck_worker() const {
  for (int i = 0; i < num_workers_; ++i) {
    const std::uint64_t hb = workers_[static_cast<std::size_t>(i)]
                                 ->heartbeat.load(std::memory_order_relaxed);
    if ((hb & 1u) != 0) return i;
  }
  return -1;
}

void Executor::wake_workers() {
  epoch_.fetch_add(1, std::memory_order_release);
  // libstdc++ tracks waiters per futex word and skips the syscall when no
  // worker is parked, so this is cheap on the submit-heavy path.
  epoch_.notify_all();
}

void Executor::finish_one_task() {
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Phase drained: wake the master (pending_) and any worker parked
    // mid-phase (epoch_) so it can close its idle stopwatch.
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    pending_.notify_all();
  }
}

bool Executor::claim_from_segment(int victim, std::uint32_t tag,
                                  std::uint32_t* out) {
  Worker& w = *workers_[static_cast<std::size_t>(victim)];
  const std::uint64_t end_packed =
      w.segment_end.load(std::memory_order_relaxed);
  if (tag_of(end_packed) != tag) return false;
  const std::uint64_t end = end_packed & kLow32;
  std::uint64_t cur = w.cursor.load(std::memory_order_relaxed);
  while (tag_of(cur) == tag && (cur & kLow32) < end) {
    // Same-tag increment never carries into the tag bits: index < end.
    if (w.cursor.compare_exchange_weak(cur, cur + 1,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
      *out = static_cast<std::uint32_t>(cur & kLow32);
      return true;
    }
  }
  return false;
}

bool Executor::try_claim(int self, TaskRange* out) {
  // Visibility: this acquire pairs with the release store in run() /
  // begin_phase(), so a tag-validated claim below implies fn_/ctx_/tasks_
  // of that phase are visible.
  const auto p = phase_.load(std::memory_order_acquire);
  Worker& me = *workers_[static_cast<std::size_t>(self)];
  std::uint32_t index;
  if (claim_from_segment(self, p, &index)) {
    *out = tasks_[index];
    return true;
  }
  std::uint64_t packed;
  if (me.deque.pop(&packed)) {
    *out = unpack(packed);
    return true;
  }
  // Hierarchical scan: victim_order_ lists every same-node victim before
  // any remote one, so on a multi-node topology work leaves a node only
  // once the node is drained. A successful claim past the same-node prefix
  // is a remote steal AND a remote miss (the whole same-node group — own
  // segment, own deque, same-node victims — was empty this scan).
  const std::vector<int>& order = victim_order_[static_cast<std::size_t>(self)];
  const std::size_t same = same_node_victims_[static_cast<std::size_t>(self)];
  for (std::size_t i = 0; i < order.size(); ++i) {
    const int victim = order[i];
    const bool remote = i >= same;
    if (claim_from_segment(victim, p, &index)) {
      me.steals.fetch_add(1, std::memory_order_relaxed);
      if (remote) {
        me.steals_remote.fetch_add(1, std::memory_order_relaxed);
        me.remote_misses.fetch_add(1, std::memory_order_relaxed);
      }
      record_steal(self, victim);
      *out = tasks_[index];
      return true;
    }
    if (workers_[static_cast<std::size_t>(victim)]->deque.steal(&packed)) {
      me.steals.fetch_add(1, std::memory_order_relaxed);
      if (remote) {
        me.steals_remote.fetch_add(1, std::memory_order_relaxed);
        me.remote_misses.fetch_add(1, std::memory_order_relaxed);
      }
      record_steal(self, victim);
      *out = unpack(packed);
      return true;
    }
  }
  // Master-submitted ranges are not counted as steals: the injector deque
  // has no owning worker to steal from. On a multi-node topology the claim
  // still left the node's group empty-handed, so it counts as a miss.
  if (injector_.steal(&packed)) {
    if (num_nodes_ > 1) {
      me.remote_misses.fetch_add(1, std::memory_order_relaxed);
    }
    *out = unpack(packed);
    return true;
  }
  return false;
}

void Executor::execute(TaskRange range, Worker& self, int self_index) {
  // Claim boundary: heartbeat odd while inside the body, token poll every
  // claim (one relaxed load, so the cancellation drain costs one claim +
  // one counter per remaining task, no locks), and the deadline clock read
  // strided — the supervisor thread already bounds deadline latency to its
  // tick, the claim-side poll only sharpens it for short tasks.
  self.heartbeat.fetch_add(1, std::memory_order_relaxed);
  RunGovernor* gov = governor_.load(std::memory_order_acquire);
  const bool stop =
      gov != nullptr &&
      (gov->should_stop() ||
       ((++self.deadline_poll_tick % kDeadlinePollStride) == 0 &&
        gov->poll_deadline()));
  if (stop) {
    self.skipped.fetch_add(1, std::memory_order_relaxed);
#if PPSCAN_TRACE_ENABLED
    if (obs::TraceCollector* tc = trace_.load(std::memory_order_acquire);
        tc != nullptr && tc->task_events()) {
      tc->emit(self_index, obs::TraceEventKind::TaskSkip, tc->phase_name(),
               range.beg);
    }
#endif
  } else {
    const auto t0 = Clock::now();
    // Exception firewall: the task boundary is the containment line. A
    // throwing body never unwinds the worker loop — it is caught here,
    // classified (governed → AbortReason::Exception trip, which makes the
    // rest of the phase skip-drain; ungoverned → captured for wait_idle's
    // master-side rethrow), and the worker keeps claiming.
    bool ok = true;
    try {
      PPSCAN_FAULT_POINT("executor.task");
      fn_(ctx_, range.beg, range.end);
    } catch (...) {
      ok = false;
      record_task_failure(gov);
    }
    const auto t1 = Clock::now();
    self.busy_ns.fetch_add(elapsed_ns(t0, t1), std::memory_order_relaxed);
    if (ok) {
      self.executed.fetch_add(1, std::memory_order_relaxed);
    } else {
      self.failed.fetch_add(1, std::memory_order_relaxed);
    }
#if PPSCAN_TRACE_ENABLED
    // Reuses the busy-stopwatch clock reads, so tracing adds no extra
    // Clock::now() per task — only the record() when a collector is
    // installed and per-task events are on.
    if (obs::TraceCollector* tc = trace_.load(std::memory_order_acquire);
        tc != nullptr && tc->task_events()) {
      if (ok) {
        tc->buffer(self_index)
            .record(obs::TraceEventKind::TaskRun, tc->phase_name(),
                    tc->since_epoch_ns(t0), elapsed_ns(t0, t1), range.beg);
      } else {
        tc->emit(self_index, obs::TraceEventKind::Mark, "task-exception",
                 range.beg);
      }
    }
#endif
  }
#if !PPSCAN_TRACE_ENABLED
  (void)self_index;
#endif
  self.heartbeat.fetch_add(1, std::memory_order_relaxed);
  finish_one_task();
}

void Executor::worker_loop(int index) {
  t_owner = this;
  t_index = index;
  Worker& self = *workers_[static_cast<std::size_t>(index)];
  // Best-effort NUMA pin: an empty CPU list (uniform topology, pinning
  // disabled) or a failed syscall leaves the worker free-floating.
  pin_thread_to_cpus(pin_cpus_[static_cast<std::size_t>(index)]);

  // Idle stopwatch: runs from the first failed scan while a phase is in
  // flight until the next claim (or the phase barrier), so it measures load
  // imbalance rather than master-side serial gaps between phases.
  bool idling = false;
  Clock::time_point idle_start;
  const auto flush_idle = [&] {
    if (idling) {
      self.idle_ns.fetch_add(elapsed_ns(idle_start, Clock::now()),
                             std::memory_order_relaxed);
      idling = false;
    }
  };

  int failures = 0;
  TaskRange range;
  for (;;) {
    const std::uint32_t seen = epoch_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_relaxed) &&
        pending_.load(std::memory_order_relaxed) == 0) {
      // Drain-before-exit: stop_ alone is not enough, submitted work must
      // finish (parity with the legacy pool's destructor contract).
      flush_idle();
      return;
    }
    if (try_claim(index, &range)) {
      flush_idle();
      failures = 0;
      execute(range, self, index);
      continue;
    }
    if (pending_.load(std::memory_order_relaxed) != 0) {
      if (!idling) {
        idling = true;
        idle_start = Clock::now();
      }
      if (++failures < kSpinRounds) {
        std::this_thread::yield();
        continue;
      }
    } else {
      flush_idle();
    }
    failures = 0;
    // epoch_ was read before the scan, so any work published after that
    // read makes this wait return immediately — no missed wakeup.
    epoch_.wait(seen, std::memory_order_acquire);
  }
}

ExecutorStats Executor::stats() const {
  ExecutorStats s;
  s.per_node.resize(static_cast<std::size_t>(num_nodes_));
  for (int n = 0; n < num_nodes_; ++n) {
    s.per_node[static_cast<std::size_t>(n)].node =
        static_cast<std::uint64_t>(n);
  }
  bool first = true;
  int index = 0;
  for (const auto& w : workers_) {
    s.tasks_executed += w->executed.load(std::memory_order_relaxed);
    s.tasks_skipped += w->skipped.load(std::memory_order_relaxed);
    s.tasks_failed += w->failed.load(std::memory_order_relaxed);
    const std::uint64_t steals = w->steals.load(std::memory_order_relaxed);
    const std::uint64_t remote =
        w->steals_remote.load(std::memory_order_relaxed);
    const std::uint64_t misses =
        w->remote_misses.load(std::memory_order_relaxed);
    s.steals += steals;
    s.steals_remote += remote;
    s.remote_misses += misses;
    obs::NodeCounters& row = s.per_node[static_cast<std::size_t>(
        worker_node_[static_cast<std::size_t>(index)])];
    row.workers += 1;
    row.steals_same_node += steals - remote;
    row.steals_remote += remote;
    row.remote_misses += misses;
    ++index;
    const double busy =
        static_cast<double>(w->busy_ns.load(std::memory_order_relaxed)) *
        1e-9;
    s.busy_seconds += busy;
    s.idle_seconds +=
        static_cast<double>(w->idle_ns.load(std::memory_order_relaxed)) *
        1e-9;
    s.max_worker_busy_seconds =
        first ? busy : std::max(s.max_worker_busy_seconds, busy);
    s.min_worker_busy_seconds =
        first ? busy : std::min(s.min_worker_busy_seconds, busy);
    first = false;
  }
  s.steals_same_node = s.steals - s.steals_remote;
  return s;
}

}  // namespace ppscan
