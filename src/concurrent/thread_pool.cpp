#include "concurrent/thread_pool.hpp"

#include <stdexcept>

namespace ppscan {
namespace {

thread_local const ThreadPool* t_pool = nullptr;
thread_local int t_pool_index = -1;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) {
    throw std::invalid_argument("ThreadPool: need at least one thread");
  }
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

int ThreadPool::current_worker() const {
  return t_pool == this ? t_pool_index : -1;
}

ThreadPool::~ThreadPool() {
  {
    CheckedLock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    CheckedLock lock(mutex_);
    queue_.push_back(std::move(task));
    ++unfinished_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  // Explicit wait loops here and in worker_loop, not predicate lambdas: a
  // lambda reading the guarded fields would not inherit this scope's
  // capability under -Wthread-safety (thread_safety.hpp, rule 3).
  CheckedLock lock(mutex_);
  while (unfinished_ != 0) all_idle_.wait(lock.native());
}

void ThreadPool::worker_loop(int index) {
  t_pool = this;
  t_pool_index = index;
  for (;;) {
    std::function<void()> task;
    {
      CheckedLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_available_.wait(lock.native());
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      CheckedLock lock(mutex_);
      if (--unfinished_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace ppscan
