#include "concurrent/thread_pool.hpp"

#include <stdexcept>

namespace ppscan {
namespace {

thread_local const ThreadPool* t_pool = nullptr;
thread_local int t_pool_index = -1;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) {
    throw std::invalid_argument("ThreadPool: need at least one thread");
  }
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

int ThreadPool::current_worker() const {
  return t_pool == this ? t_pool_index : -1;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    ++unfinished_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_idle_.wait(lock, [this] { return unfinished_ == 0; });
}

void ThreadPool::worker_loop(int index) {
  t_pool = this;
  t_pool_index = index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--unfinished_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace ppscan
