#include "concurrent/union_find.hpp"

#include <utility>

namespace ppscan {

void UnionFind::reset(VertexId n) {
  parent_.resize(n);
  rank_.assign(n, 0);
  for (VertexId i = 0; i < n; ++i) parent_[i] = i;
}

VertexId UnionFind::find(VertexId x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

VertexId UnionFind::find_counted(VertexId x, std::uint64_t* steps) {
  std::uint64_t hops = 0;
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
    ++hops;
  }
  *steps += hops;
  return x;
}

bool UnionFind::unite(VertexId x, VertexId y) {
  VertexId rx = find(x);
  VertexId ry = find(y);
  if (rx == ry) return false;
  if (rank_[rx] < rank_[ry]) std::swap(rx, ry);
  parent_[ry] = rx;
  if (rank_[rx] == rank_[ry]) ++rank_[rx];
  return true;
}

void ParallelUnionFind::reset(VertexId n) {
  parent_.assign(n);
  rank_.assign(n, 0);
  for (VertexId i = 0; i < n; ++i) parent_.store(i, i);
}

VertexId ParallelUnionFind::find(VertexId x) {
  for (;;) {
    const VertexId p = parent_.load(x);
    if (p == x) return x;
    const VertexId gp = parent_.load(p);
    if (p != gp) {
      // Path halving: hop x over p. A failed CAS just means someone else
      // already shortened this path — retry from where we are.
      VertexId expected = p;
      parent_.compare_exchange(x, expected, gp);
    }
    x = gp;
  }
}

VertexId ParallelUnionFind::find_counted(VertexId x, std::uint64_t* steps) {
  std::uint64_t hops = 0;
  for (;;) {
    const VertexId p = parent_.load(x);
    if (p == x) {
      *steps += hops;
      return x;
    }
    const VertexId gp = parent_.load(p);
    if (p != gp) {
      VertexId expected = p;
      parent_.compare_exchange(x, expected, gp);
    }
    x = gp;
    ++hops;
  }
}

bool ParallelUnionFind::unite(VertexId x, VertexId y) {
  for (;;) {
    VertexId rx = find(x);
    VertexId ry = find(y);
    if (rx == ry) return false;
    // Link the lower-rank root under the higher-rank one; break rank ties by
    // id so the link direction is deterministic under races.
    const std::uint8_t kx = rank_.load(rx);
    const std::uint8_t ky = rank_.load(ry);
    if (kx < ky || (kx == ky && rx > ry)) std::swap(rx, ry);
    // The CAS only succeeds while ry is still a root, which makes the link
    // atomic; losing the race restarts with fresh roots.
    VertexId expected = ry;
    if (parent_.compare_exchange(ry, expected, rx)) {
      if (kx == ky) {
        // Benign rank race: rank is a heuristic; an occasional lost update
        // only costs tree depth, never correctness.
        rank_.store(rx, static_cast<std::uint8_t>(kx + 1));
      }
      return true;
    }
  }
}

bool ParallelUnionFind::same_set(VertexId x, VertexId y) {
  for (;;) {
    const VertexId rx = find(x);
    const VertexId ry = find(y);
    if (rx == ry) return true;
    // rx is stale if someone re-parented it meanwhile; only then retry.
    if (parent_.load(rx) == rx) return false;
  }
}

}  // namespace ppscan
