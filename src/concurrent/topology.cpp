#include "concurrent/topology.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/env.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ppscan {
namespace {

/// Largest node directory index probed under a sysfs node dir. Real
/// machines top out far below this; the bound only caps the fixture scan.
constexpr int kMaxNodeScan = 1024;

NumaTopology fallback_topology(std::string reason, std::vector<int> cpus) {
  NumaTopology topo;
  topo.nodes.push_back({0, std::move(cpus)});
  topo.source = "fallback";
  topo.fallback_reason = std::move(reason);
  return topo;
}

bool read_first_line(const std::string& path, std::string* out) {
  std::ifstream stream(path);
  if (!stream) return false;
  std::getline(stream, *out);
  return true;
}

}  // namespace

NumaMode parse_numa_mode(const std::string& name) {
  if (name == "auto") return NumaMode::Auto;
  if (name == "off") return NumaMode::Off;
  if (name == "interleave") return NumaMode::Interleave;
  throw std::invalid_argument("unknown numa mode: " + name +
                              " (expected auto|off|interleave)");
}

std::string to_string(NumaMode mode) {
  switch (mode) {
    case NumaMode::Auto: return "auto";
    case NumaMode::Off: return "off";
    case NumaMode::Interleave: return "interleave";
  }
  return "?";
}

bool parse_cpu_list(const std::string& text, std::vector<int>* out) {
  out->clear();
  // Trim trailing whitespace/newline; an all-blank list is valid and empty.
  std::string body = text;
  while (!body.empty() &&
         std::isspace(static_cast<unsigned char>(body.back())) != 0) {
    body.pop_back();
  }
  if (body.empty()) return true;
  std::stringstream ss(body);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) return false;
    std::size_t dash = token.find('-');
    try {
      std::size_t used = 0;
      if (dash == std::string::npos) {
        const int cpu = std::stoi(token, &used);
        if (used != token.size() || cpu < 0) return false;
        out->push_back(cpu);
      } else {
        const std::string lo_text = token.substr(0, dash);
        const std::string hi_text = token.substr(dash + 1);
        if (lo_text.empty() || hi_text.empty()) return false;
        const int lo = std::stoi(lo_text, &used);
        if (used != lo_text.size()) return false;
        const int hi = std::stoi(hi_text, &used);
        if (used != hi_text.size()) return false;
        if (lo < 0 || hi < lo) return false;
        for (int cpu = lo; cpu <= hi; ++cpu) out->push_back(cpu);
      }
    } catch (const std::exception&) {
      return false;
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return true;
}

std::vector<int> affinity_cpus() {
  std::vector<int> cpus;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
      if (CPU_ISSET(cpu, &set)) cpus.push_back(cpu);
    }
  }
#endif
  return cpus;
}

NumaTopology emulated_topology(int num_nodes, const std::vector<int>& cpus) {
  NumaTopology topo;
  topo.emulated = true;
  topo.source = "env";
  const int n = std::max(1, num_nodes);
  topo.nodes.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    topo.nodes[static_cast<std::size_t>(i)].id = i;
  }
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    topo.nodes[i % static_cast<std::size_t>(n)].cpus.push_back(cpus[i]);
  }
  // Fewer CPUs than requested nodes (a 1-CPU CI container emulating two
  // sockets): the split is synthetic anyway, so surplus nodes share the
  // whole CPU set — the node *structure* is what emulation exists to
  // exercise, and pinning stays a harmless no-op.
  for (NumaNode& node : topo.nodes) {
    if (node.cpus.empty()) node.cpus = cpus;
  }
  return topo;
}

NumaTopology detect_topology_from(const std::string& node_dir) {
  NumaTopology topo;
  topo.source = "sysfs";
  for (int id = 0; id < kMaxNodeScan; ++id) {
    const std::string cpulist =
        node_dir + "/node" + std::to_string(id) + "/cpulist";
    std::string line;
    if (!read_first_line(cpulist, &line)) {
      // Node ids are dense; the first gap ends the scan.
      break;
    }
    std::vector<int> cpus;
    if (!parse_cpu_list(line, &cpus)) {
      return fallback_topology(
          "malformed cpulist for node" + std::to_string(id) + ": '" + line +
              "'",
          affinity_cpus());
    }
    if (!cpus.empty()) topo.nodes.push_back({id, std::move(cpus)});
  }
  if (topo.nodes.empty()) {
    return fallback_topology("no sysfs NUMA nodes under " + node_dir,
                             affinity_cpus());
  }
  return topo;
}

NumaTopology detect_topology() {
  // Emulation override first: PPSCAN_NUMA_NODES=N splits the available
  // CPUs into N synthetic nodes (N=1 is the explicit uniform topology).
  const std::uint64_t emulate = env_u64("PPSCAN_NUMA_NODES", 0);
  std::vector<int> usable = affinity_cpus();
  if (usable.empty()) {
    // Affinity unreadable (non-Linux, odd seccomp profile): synthesize ids
    // [0, hardware_concurrency) so emulation and pinning-free detection
    // still have CPUs to reason about.
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    for (unsigned cpu = 0; cpu < hw; ++cpu) {
      usable.push_back(static_cast<int>(cpu));
    }
  }
  if (emulate >= 1) {
    return emulated_topology(static_cast<int>(std::min<std::uint64_t>(
                                 emulate, 1u << 10)),
                             usable);
  }
  NumaTopology topo = detect_topology_from("/sys/devices/system/node");
  if (!topo.fallback_reason.empty()) {
    topo.nodes[0].cpus = usable;
    return topo;
  }
  // Restrict each node to the CPUs this process may actually run on; a
  // cpuset that empties a node drops the node.
  std::vector<NumaNode> kept;
  for (NumaNode& node : topo.nodes) {
    std::vector<int> both;
    std::set_intersection(node.cpus.begin(), node.cpus.end(), usable.begin(),
                          usable.end(), std::back_inserter(both));
    if (!both.empty()) {
      node.cpus = std::move(both);
      kept.push_back(std::move(node));
    }
  }
  if (kept.empty()) {
    return fallback_topology(
        "affinity mask shares no CPU with any sysfs node", usable);
  }
  topo.nodes = std::move(kept);
  return topo;
}

bool pin_thread_to_cpus(const std::vector<int>& cpus) {
  if (cpus.empty()) return false;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int cpu : cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &set);
  }
  if (CPU_COUNT(&set) == 0) return false;
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

}  // namespace ppscan
