#include "concurrent/run_governor.hpp"

namespace ppscan {

const char* to_string(AbortReason reason) {
  switch (reason) {
    case AbortReason::None: return "none";
    case AbortReason::UserCancelled: return "user-cancelled";
    case AbortReason::DeadlineExpired: return "deadline-expired";
    case AbortReason::BudgetExceeded: return "budget-exceeded";
    case AbortReason::Stalled: return "stalled";
    case AbortReason::Exception: return "exception";
  }
  return "?";
}

std::string RunAborted::describe() const {
  if (reason == AbortReason::None) return "completed";
  std::string text = to_string(reason);
  if (!phase.empty()) text += " in phase " + phase;
  if (reason == AbortReason::BudgetExceeded && bytes > 0) {
    text += " (" + std::to_string(bytes) + " bytes requested)";
  }
  if (reason == AbortReason::Stalled && worker >= 0) {
    text += " (worker " + std::to_string(worker) + " made no progress)";
  }
  if (reason == AbortReason::Exception && !detail.empty()) {
    text += " (" + detail + ")";
  }
  return text;
}

RunGovernor::RunGovernor(const RunLimits& limits, CancelToken* external)
    : limits_(limits),
      token_(external != nullptr ? external : &owned_token_),
      start_(std::chrono::steady_clock::now()) {}

bool RunGovernor::poll_deadline() {
  if (limits_.deadline.count() > 0 && !token_->cancelled() &&
      std::chrono::steady_clock::now() - start_ >= limits_.deadline) {
    if (token_->trip(AbortReason::DeadlineExpired)) {
      abort_phase_.store(phase_name_.load(std::memory_order_acquire),
                         std::memory_order_release);
    }
  }
  return should_stop();
}

bool RunGovernor::checkpoint() {
  if (limits_.deadline.count() > 0 &&
      (checkpoint_ops_.fetch_add(1, std::memory_order_relaxed) %
       kCheckpointStride) == 0) {
    return poll_deadline();
  }
  return should_stop();
}

bool RunGovernor::try_charge(std::uint64_t bytes, const char* what) {
  const std::uint64_t total =
      bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (total > peak && !peak_bytes_.compare_exchange_weak(
                             peak, total, std::memory_order_relaxed)) {
  }
  if (limits_.memory_budget_bytes > 0 &&
      total > limits_.memory_budget_bytes) {
    bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    record_alloc_failure(bytes, what);
    return false;
  }
  return true;
}

void RunGovernor::uncharge(std::uint64_t bytes) {
  bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

void RunGovernor::record_alloc_failure(std::uint64_t bytes,
                                       const char* what) {
  (void)what;  // the phase label already locates the failure
  if (token_->trip(AbortReason::BudgetExceeded)) {
    abort_bytes_.store(bytes, std::memory_order_relaxed);
    abort_phase_.store(phase_name_.load(std::memory_order_acquire),
                       std::memory_order_release);
  }
}

void RunGovernor::record_exception(const char* what) {
  if (token_->trip(AbortReason::Exception)) {
    if (what != nullptr) {
      std::size_t i = 0;
      for (; i + 1 < kExceptionWhatCap && what[i] != '\0'; ++i) {
        exception_what_[i] = what[i];
      }
      exception_what_[i] = '\0';
    }
    abort_phase_.store(phase_name_.load(std::memory_order_acquire),
                       std::memory_order_release);
  }
}

void RunGovernor::enter_phase(const char* name) {
  const int ordinal =
      phase_ordinal_.fetch_add(1, std::memory_order_relaxed) + 1;
  phase_name_.store(name, std::memory_order_release);
  if (limits_.cancel_at_phase >= 0 && ordinal >= limits_.cancel_at_phase) {
    if (token_->trip(AbortReason::UserCancelled)) {
      abort_phase_.store(name, std::memory_order_release);
    }
  }
}

void RunGovernor::finish_phase() {
  phases_completed_.fetch_add(1, std::memory_order_relaxed);
}

void RunGovernor::record_stall(int worker) {
  if (token_->trip(AbortReason::Stalled)) {
    stalled_worker_.store(worker, std::memory_order_relaxed);
    abort_phase_.store(phase_name_.load(std::memory_order_acquire),
                       std::memory_order_release);
  }
}

RunAborted RunGovernor::abort_info() const {
  RunAborted info;
  info.reason = token_->reason();
  if (info.reason == AbortReason::None) return info;
  const char* phase = abort_phase_.load(std::memory_order_acquire);
  if (phase == nullptr) {
    // Externally tripped token (signal handler): the trip site could not
    // record a phase, so the phase active now is the best label.
    phase = phase_name_.load(std::memory_order_acquire);
  }
  if (phase != nullptr) info.phase = phase;
  info.bytes = abort_bytes_.load(std::memory_order_relaxed);
  info.worker = stalled_worker_.load(std::memory_order_relaxed);
  if (info.reason == AbortReason::Exception) {
    info.detail = exception_what_;
  }
  return info;
}

}  // namespace ppscan
