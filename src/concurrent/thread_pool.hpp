// Fixed-size worker pool with a join barrier.
//
// ppSCAN's master thread streams degree-bundled tasks into the pool
// (Algorithm 5) and calls wait_idle() as the barrier between phases; the
// pool itself is phase-agnostic and reusable across the whole run, so thread
// creation cost is paid once per clustering call.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_safety.hpp"

namespace ppscan {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task) PPSCAN_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished. The pool remains usable
  /// afterwards — this is the inter-phase barrier.
  void wait_idle() PPSCAN_EXCLUDES(mutex_);

  [[nodiscard]] int num_threads() const {
    return static_cast<int>(workers_.size());
  }

  /// Index of the calling thread if it is a worker of *this* pool, -1
  /// otherwise. Lets per-worker buffers (e.g. phase-7 membership lists)
  /// work on both execution runtimes.
  [[nodiscard]] int current_worker() const;

 private:
  void worker_loop(int index);

  std::vector<std::thread> workers_;
  // guards: queue_, unfinished_, stopping_ — the whole submit/drain state.
  CheckedMutex mutex_;
  std::deque<std::function<void()>> queue_ PPSCAN_GUARDED_BY(mutex_);
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  /// Queued + currently executing.
  std::size_t unfinished_ PPSCAN_GUARDED_BY(mutex_) = 0;
  bool stopping_ PPSCAN_GUARDED_BY(mutex_) = false;
};

}  // namespace ppscan
