// Fixed-size worker pool with a join barrier.
//
// ppSCAN's master thread streams degree-bundled tasks into the pool
// (Algorithm 5) and calls wait_idle() as the barrier between phases; the
// pool itself is phase-agnostic and reusable across the whole run, so thread
// creation cost is paid once per clustering call.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ppscan {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. The pool remains usable
  /// afterwards — this is the inter-phase barrier.
  void wait_idle();

  [[nodiscard]] int num_threads() const {
    return static_cast<int>(workers_.size());
  }

  /// Index of the calling thread if it is a worker of *this* pool, -1
  /// otherwise. Lets per-worker buffers (e.g. phase-7 membership lists)
  /// work on both execution runtimes.
  [[nodiscard]] int current_worker() const;

 private:
  void worker_loop(int index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::size_t unfinished_ = 0;  // queued + currently executing
  bool stopping_ = false;
};

}  // namespace ppscan
