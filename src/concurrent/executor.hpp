// Lock-free work-stealing execution runtime for the phase-structured
// algorithms (ppSCAN, SCAN-XP, anySCAN, GS*-Index construction).
//
// The seed ThreadPool funnels every task through one mutex/condvar-protected
// std::deque<std::function>: each degree-bundled task pays a heap allocation,
// a global lock on submit and a second on completion. This executor drives
// that overhead to near zero:
//
//   * Persistent workers — spawned once, parked on a futex (C++20
//     std::atomic::wait) between phases, no condvar and no mutex anywhere.
//   * Flat-array phase fast path — the master precomputes the task
//     boundaries of a phase into a flat TaskRange array; each worker owns a
//     contiguous segment of task indices and claims them one CAS at a time
//     from a per-worker (phase-tagged) cursor. When its segment drains it
//     claims from neighbors' cursors instead: stealing is the same one-CAS
//     operation, so load balance costs nothing extra.
//   * Inline task storage — a task is the POD pair {beg, end} (packed into
//     one uint64); the per-phase body is installed once as a plain function
//     pointer + context. The per-task hot path performs zero allocations
//     and acquires zero mutexes.
//   * Chase–Lev deques — each worker (plus one injector slot for the master
//     thread) owns a lock-free deque of packed ranges for dynamically
//     submitted work: streamed phases, nested submits from inside tasks.
//     Owner pushes/pops the bottom; thieves CAS the top.
//   * wait_idle() — an atomic outstanding-task counter; the master parks on
//     it with a futex wait and is woken by the worker whose decrement
//     reaches zero.
//
// Per-worker counters (tasks executed, steals, busy/idle nanoseconds) are
// accumulated with relaxed atomics and aggregated by stats() at a barrier,
// feeding the scheduler-ablation and scalability harnesses.
//
// Run governance (install_governor): with a RunGovernor installed, workers
// poll the cancel token at every claim boundary — a tripped run drains in
// O(one task) per worker, each remaining claimed range counted as skipped
// instead of executed — piggyback the wall-clock deadline check on the
// claim, and bump a per-worker heartbeat around every task. A governor
// with a deadline or stall timeout additionally arms a dedicated
// supervisor thread (spawned lazily, ~1ms tick) that polls the deadline
// and watches the heartbeats for a no-progress stall even while every
// worker is wedged inside a long task body; the master's wait_idle() stays
// on the plain futex park either way, so supervision adds no barrier
// latency and no master-side wakeups to the uncancelled path. Without a
// governor every governed branch is a single null-pointer test on the
// claim path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "concurrent/topology.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/thread_safety.hpp"
#include "util/types.hpp"

namespace ppscan {

class RunGovernor;

/// One task: a half-open vertex range. POD, packed into a single uint64 in
/// every queue so the hot path never allocates.
struct TaskRange {
  VertexId beg;
  VertexId end;
};

/// Per-phase task body, type-erased without allocation.
using RangeFn = void (*)(void* ctx, VertexId beg, VertexId end);

/// Aggregate runtime counters since construction (ppSCAN constructs one
/// executor per clustering call, so these are per-run numbers).
struct ExecutorStats {
  std::uint64_t tasks_executed = 0;  ///< ranges claimed and run by workers
  std::uint64_t tasks_skipped = 0;   ///< ranges drained by a cancelled run
  /// Ranges whose body threw: the exception firewall caught it at the task
  /// boundary, classified it (governor → AbortReason::Exception; no
  /// governor → rethrown from the master's wait_idle), and the worker
  /// carried on. Disjoint from tasks_executed.
  std::uint64_t tasks_failed = 0;
  std::uint64_t steals = 0;          ///< claims taken from another worker
  /// Steal locality split (steals == steals_same_node + steals_remote; all
  /// steals are same-node on a single-node topology).
  std::uint64_t steals_same_node = 0;
  std::uint64_t steals_remote = 0;
  /// Claims satisfied outside the thief's node (remote victim or the
  /// injector) after its whole same-node group — own segment, own deque,
  /// every same-node victim — came up empty. The locality-miss signal of
  /// the hierarchical steal order; always zero on a single-node topology.
  std::uint64_t remote_misses = 0;
  double busy_seconds = 0;           ///< summed in-task time over workers
  double idle_seconds = 0;           ///< summed mid-phase scan/park time
  double max_worker_busy_seconds = 0;
  double min_worker_busy_seconds = 0;
  /// One row per topology node (single row on the uniform topology).
  std::vector<obs::NodeCounters> per_node;
};

namespace detail {

/// Chase–Lev work-stealing deque of packed uint64 ranges (Chase & Lev,
/// SPAA'05; memory orderings after Lê et al., PPoPP'13, with the standalone
/// fences replaced by seq_cst operations on top_/bottom_ so ThreadSanitizer
/// — which does not model fences — can verify the executor).
class RangeDeque {
 public:
  RangeDeque() : array_(new Array(kInitialCapacity)) {}
  ~RangeDeque() {
    delete array_.load(std::memory_order_relaxed);
    for (Array* a : retired_) delete a;
  }
  RangeDeque(const RangeDeque&) = delete;
  RangeDeque& operator=(const RangeDeque&) = delete;

  /// Owner only. Grows (amortized, cold path) when full.
  void push(std::uint64_t value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t > a->capacity - 1) a = grow(a, b, t);
    a->put(b, value);
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only.
  bool pop(std::uint64_t* out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    bool taken = false;
    if (t <= b) {
      *out = a->get(b);
      taken = true;
      if (t == b) {
        // Last element: race against thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          taken = false;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return taken;
  }

  /// Any thread.
  bool steal(std::uint64_t* out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    Array* a = array_.load(std::memory_order_acquire);
    const std::uint64_t value = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;  // lost the race; caller retries elsewhere
    }
    *out = value;
    return true;
  }

  [[nodiscard]] bool maybe_nonempty() const {
    return top_.load(std::memory_order_relaxed) <
           bottom_.load(std::memory_order_relaxed);
  }

 private:
  struct Array {
    explicit Array(std::int64_t cap)
        : capacity(cap),
          mask(cap - 1),
          slots(std::make_unique<std::atomic<std::uint64_t>[]>(
              static_cast<std::size_t>(cap))) {}
    void put(std::int64_t i, std::uint64_t v) {
      slots[static_cast<std::size_t>(i & mask)].store(
          v, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i & mask)].load(
          std::memory_order_relaxed);
    }
    std::int64_t capacity;
    std::int64_t mask;
    // protocol: relaxed-guarded — slot payloads; ordering is provided by
    // the release/acquire and seq_cst edges on bottom_/top_/array_.
    std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
  };

  Array* grow(Array* old, std::int64_t b, std::int64_t t) {
    auto* bigger = new Array(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    // Thieves may still be reading `old`; retire it until destruction
    // instead of freeing (the memory cost is bounded by 2x the peak size).
    retired_.push_back(old);
    array_.store(bigger, std::memory_order_release);
    return bigger;
  }

  static constexpr std::int64_t kInitialCapacity = 256;  // power of two

  // protocol: chase-lev-top — thief index; claimed by seq_cst CAS,
  // publisher=thieves+owner(pop tail race), consumers=everyone.
  std::atomic<std::int64_t> top_{0};
  // protocol: chase-lev-bottom — owner index; publisher=owner (push release
  // / pop seq_cst), consumers=thieves (seq_cst load).
  std::atomic<std::int64_t> bottom_{0};
  // protocol: release-acquire — grown array pointer; publisher=owner in
  // grow(), consumers=thieves (acquire in steal), owner reads relaxed.
  std::atomic<Array*> array_;
  std::vector<Array*> retired_;  // owner-only, freed in the destructor
};

}  // namespace detail

class Executor {
 public:
  /// Spawns `num_threads` persistent workers (>= 1) on the uniform
  /// single-node topology: ring steal order, no pinning — the pre-NUMA
  /// behavior, bit for bit.
  explicit Executor(int num_threads);

  /// Topology-aware executor: workers are assigned round-robin across the
  /// topology's nodes (node of worker w = w mod effective_nodes, where
  /// effective_nodes = min(topology nodes, num_threads) so every node with
  /// workers has at least one) and each worker's steal order visits all
  /// same-node victims before any remote one. With `pin_workers`, each
  /// worker pins itself to its node's CPU set (best effort — a failed or
  /// impossible pin is ignored).
  Executor(int num_threads, const NumaTopology& topology, bool pin_workers);

  /// Drains outstanding work (parity with the legacy pool), then joins.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  [[nodiscard]] int num_threads() const { return num_workers_; }

  /// Fast path: runs `fn(ctx, r.beg, r.end)` for every range in
  /// [tasks, tasks + count) plus any ranges submitted by the tasks
  /// themselves, then returns (full barrier). The array must stay alive for
  /// the duration of the call; it is claimed in place — nothing is copied,
  /// allocated, or locked per task.
  void run(const TaskRange* tasks, std::size_t count, RangeFn fn, void* ctx);

  /// Same, with any callable `body(VertexId beg, VertexId end)`.
  template <typename Body>
  void run(const TaskRange* tasks, std::size_t count, Body&& body) {
    using B = std::remove_reference_t<Body>;
    run(tasks, count,
        [](void* ctx, VertexId beg, VertexId end) {
          (*static_cast<B*>(ctx))(beg, end);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(body))));
  }

  /// Shard-aligned variant of run(): the flat task array is grouped by
  /// topology node — node k owns task indices [node_task_begin[k],
  /// node_task_begin[k + 1]) — and each node's window is segmented among
  /// that node's workers only, so a worker's initial segment (and its
  /// preferred same-node victims) covers tasks whose data its node placed.
  /// `node_task_begin` must have num_nodes() + 1 entries ending at `count`.
  /// Identical to run() on a single-node topology.
  void run_sharded(const TaskRange* tasks, std::size_t count,
                   const std::size_t* node_task_begin, RangeFn fn, void* ctx);

  template <typename Body>
  void run_sharded(const TaskRange* tasks, std::size_t count,
                   const std::size_t* node_task_begin, Body&& body) {
    using B = std::remove_reference_t<Body>;
    run_sharded(
        tasks, count, node_task_begin,
        [](void* ctx, VertexId beg, VertexId end) {
          (*static_cast<B*>(ctx))(beg, end);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(body))));
  }

  /// Topology shape: number of nodes workers are assigned to (1 on the
  /// uniform executor) and the node of one worker.
  [[nodiscard]] int num_nodes() const { return num_nodes_; }
  [[nodiscard]] int worker_node(int worker) const {
    return worker_node_[static_cast<std::size_t>(worker)];
  }

  /// The deterministic victim scan order of `worker` (every other worker
  /// exactly once). The first same_node_victims(worker) entries are the
  /// worker's same-node victims — the property test_executor_numa pins.
  [[nodiscard]] const std::vector<int>& steal_order(int worker) const {
    return victim_order_[static_cast<std::size_t>(worker)];
  }
  [[nodiscard]] std::size_t same_node_victims(int worker) const {
    return same_node_victims_[static_cast<std::size_t>(worker)];
  }

  /// Streaming mode: installs the phase body so ranges can be submit()ted
  /// incrementally (overlapping master-side bundling with execution).
  /// Terminate the phase with wait_idle(). Must not be called while a
  /// previous phase is still in flight.
  void begin_phase(RangeFn fn, void* ctx);

  /// Enqueues one range for the current phase. Callable from the master
  /// thread (injector deque) or from inside a task (owner deque → enables
  /// nested parallelism). Never blocks; allocation only on deque growth.
  void submit(TaskRange range);

  /// Blocks until every outstanding range has finished; futex park, no
  /// mutex. The executor remains usable afterwards — this is the
  /// inter-phase barrier.
  ///
  /// Exception firewall: a task body that throws never unwinds a worker —
  /// the worker catches at the task boundary, counts the range as failed,
  /// and keeps claiming. With a governor installed the exception becomes a
  /// classified trip (AbortReason::Exception, detail = e.what()) and the
  /// rest of the phase skip-drains like any other cancellation; without
  /// one, the FIRST exception is captured and rethrown *here*, on the
  /// master, after every other in-flight task has finished — so sibling
  /// tasks always complete and the executor stays reusable either way.
  void wait_idle();

  /// Index of the calling thread if it is a worker of *this* executor,
  /// -1 otherwise (master / foreign threads). Worker-local data structures
  /// (e.g. the phase-7 membership buffers) key on this.
  [[nodiscard]] int current_worker() const;

  /// Aggregated counters; call at a barrier for exact numbers.
  [[nodiscard]] ExecutorStats stats() const;

  /// Installs (or clears, with nullptr) the run governor. Master only, at a
  /// barrier — not while a phase is in flight. The governor must outlive
  /// every subsequent run()/wait_idle() until replaced.
  void install_governor(RunGovernor* governor);
  [[nodiscard]] RunGovernor* governor() const {
    return governor_.load(std::memory_order_acquire);
  }

  /// Installs (or clears, with nullptr) the trace collector. Master only,
  /// at a barrier, same lifetime contract as install_governor: the
  /// collector must outlive every subsequent run()/wait_idle() until
  /// replaced. Workers record TaskRun/TaskSkip/Steal events into their own
  /// slot, the supervisor records GovernorTrip into its dedicated slot.
  /// A no-op (beyond the pointer swap) when tracing is compiled out.
  void install_trace(obs::TraceCollector* trace) {
    trace_.store(trace, std::memory_order_release);
  }
  [[nodiscard]] obs::TraceCollector* trace() const {
    return trace_.load(std::memory_order_acquire);
  }

 private:
  /// Claims between clock reads on the per-claim deadline poll. The trip
  /// itself is supervisor-driven; this only affects how fast a worker
  /// notices a deadline between supervisor ticks, so a coarse stride is
  /// fine and keeps the armed-but-idle overhead under the 2% target.
  static constexpr std::uint32_t kDeadlinePollStride = 64;

  // One cache line per worker: the phase-tagged claim cursor plus the
  // owner-written counters. The Chase–Lev deque and the thread handle live
  // alongside (they have their own internal layout).
  struct alignas(64) Worker {
    /// (phase_tag << 32) | next_task_index. Claims CAS the low half up; a
    /// tag mismatch means the slot belongs to another phase and is empty.
    /// protocol: relaxed-guarded — visibility of the tasks array comes from
    /// the phase_ release/acquire pair; the tag check rejects stale claims.
    std::atomic<std::uint64_t> cursor{0};
    /// (phase_tag << 32) | one_past_last_task_index. Tagged like cursor so
    /// a stale cursor can never be validated against a fresh end (the
    /// cross-phase claim race): a claim needs tag(cursor) == tag(end) ==
    /// the phase the claimer read.
    /// protocol: relaxed-guarded — same phase-tag protocol as cursor.
    std::atomic<std::uint64_t> segment_end{0};
    detail::RangeDeque deque;
    std::atomic<std::uint64_t> executed{0};  // protocol: relaxed-counter
    std::atomic<std::uint64_t> skipped{0};   // protocol: relaxed-counter
    /// Task bodies that threw (caught by the exception firewall).
    std::atomic<std::uint64_t> failed{0};    // protocol: relaxed-counter
    /// Bumped on task entry and exit (odd = inside a task body). The
    /// watchdog's progress signal: a stall is "no heartbeat moved while
    /// tasks were pending"; an odd, frozen heartbeat names the stuck
    /// worker.
    /// protocol: relaxed-counter — the watchdog only needs eventual
    /// movement, never an exact snapshot.
    std::atomic<std::uint64_t> heartbeat{0};
    std::atomic<std::uint64_t> steals{0};   // protocol: relaxed-counter
    /// Of `steals`, how many came from a victim on another node.
    std::atomic<std::uint64_t> steals_remote{0};  // protocol: relaxed-counter
    /// Claims this worker satisfied remotely (remote victim or injector)
    /// after exhausting its same-node group; see ExecutorStats.
    std::atomic<std::uint64_t> remote_misses{0};  // protocol: relaxed-counter
    std::atomic<std::uint64_t> busy_ns{0};  // protocol: relaxed-counter
    std::atomic<std::uint64_t> idle_ns{0};  // protocol: relaxed-counter
    /// Owner-only stride counter for the per-claim deadline poll: the
    /// clock is read every kDeadlinePollStride-th claim — the supervisor
    /// thread bounds deadline latency, the claim-side poll only sharpens
    /// it, so it need not pay a clock read per task.
    std::uint32_t deadline_poll_tick = 0;
    std::thread thread;
  };

  void worker_loop(int index);
  /// Body of the governance supervisor thread: an adaptive tick loop
  /// polling the installed governor's deadline and heartbeat progress.
  /// Runs for the executor's remaining lifetime once any supervised
  /// governor has been installed; ticks are a few loads when nothing is
  /// armed, and install_governor wakes it whenever a new run's limits
  /// need a finer cadence than the idle one.
  void supervisor_loop();
  /// Claims one range: own segment, own deque, then every victim in
  /// victim_order_[self] (segments and deques; all same-node victims come
  /// first), then the injector. Counts steals — and, past the same-node
  /// group, the remote split — on `self`.
  bool try_claim(int self, TaskRange* out);
  /// CAS-claims one task index from `victim`'s segment for phase `tag`.
  bool claim_from_segment(int victim, std::uint32_t tag, std::uint32_t* out);
  void execute(TaskRange range, Worker& self, int self_index);
  /// Firewall sink, called from execute()'s catch block (so
  /// std::current_exception() is live). Governor installed → classified
  /// trip; none → capture the first exception_ptr for wait_idle's rethrow.
  void record_task_failure(RunGovernor* gov);
  /// Trace hook for a successful steal (compiled out with PPSCAN_TRACE=OFF;
  /// the relaxed steals counter is unconditional either way).
  void record_steal(int self, int victim) {
#if PPSCAN_TRACE_ENABLED
    if (obs::TraceCollector* tc = trace_.load(std::memory_order_acquire);
        tc != nullptr && tc->task_events()) {
      tc->emit(self, obs::TraceEventKind::Steal, "steal",
               static_cast<std::uint64_t>(victim));
    }
#else
    (void)self;
    (void)victim;
#endif
  }
  void finish_one_task();
  void wake_workers();
  [[nodiscard]] std::uint64_t heartbeat_sum() const;
  /// First worker currently inside a task body (odd heartbeat), -1 if none
  /// — the stall report's culprit once progress has provably stopped.
  [[nodiscard]] int find_stuck_worker() const;

  static std::uint64_t pack(TaskRange r) {
    return (static_cast<std::uint64_t>(r.beg) << 32) | r.end;
  }
  static TaskRange unpack(std::uint64_t v) {
    return {static_cast<VertexId>(v >> 32),
            static_cast<VertexId>(v & 0xffffffffu)};
  }

  const int num_workers_;
  std::vector<std::unique_ptr<Worker>> workers_;
  detail::RangeDeque injector_;  // owned by the master thread

  // Topology shape, fixed at construction and read-only afterwards (so
  // workers read it without synchronization): worker→node assignment, the
  // per-worker victim scan order with its same-node prefix length, and the
  // CPU set each worker pins itself to (empty = no pinning).
  int num_nodes_ = 1;
  std::vector<int> worker_node_;
  std::vector<std::vector<int>> victim_order_;
  std::vector<std::size_t> same_node_victims_;
  std::vector<std::vector<int>> pin_cpus_;

  // Phase state: written by the master between barriers, published by the
  // release store to phase_ and read by workers after the matching acquire.
  RangeFn fn_ = nullptr;
  void* ctx_ = nullptr;
  const TaskRange* tasks_ = nullptr;
  // protocol: release-acquire — phase tag publishing fn_/ctx_/tasks_;
  // publisher=master (release store), consumers=workers (acquire in
  // try_claim); the master's own reads are relaxed.
  std::atomic<std::uint32_t> phase_{0};

  // protocol: completion-count — outstanding (unfinished) tasks; doubles as
  // the master's futex word, acq_rel on the final decrement.
  std::atomic<std::uint32_t> pending_{0};
  // protocol: futex-epoch — bumped on new work; workers' futex word.
  std::atomic<std::uint32_t> epoch_{0};
  // protocol: release-acquire — shutdown flag; workers read it relaxed
  // because the epoch_ acquire in the same scan provides the edge.
  std::atomic<bool> stop_{false};
  // Written by the master at barriers, read by workers per claim; atomic so
  // a worker spinning between phases never races the install.
  // protocol: seqcst-handshake — paired with supervisor_busy_ (see
  // install_governor); workers' read-only poll is the acquire load.
  std::atomic<RunGovernor*> governor_{nullptr};

  // Trace collector, installed by the master at a barrier like governor_
  // (but never touched by the supervisor handshake: the supervisor only
  // reads it inside a tick that already holds supervisor_busy_ for the
  // governor, and the collector outlives the run by contract).
  // protocol: release-acquire — publisher=master in install_trace (release
  // store), consumers=workers/supervisor (acquire load per use).
  std::atomic<obs::TraceCollector*> trace_{nullptr};

  // Ungoverned-run exception firewall: first_failure_ holds the first
  // exception a task body threw (workers race for it under failure_mutex_;
  // losers are dropped, matching "first trip wins" on the governed path)
  // and wait_idle() rethrows it on the master. task_failed_ lets the
  // master skip the mutex entirely on the clean path.
  // protocol: release-acquire — publisher=failing worker (release store
  // after filling first_failure_), consumer=master in wait_idle (acquire
  // load after pending_ hit zero, which already orders the write).
  std::atomic<bool> task_failed_{false};
  // guards: first_failure_ — workers race to fill it, master swaps it out.
  CheckedMutex failure_mutex_;
  std::exception_ptr first_failure_ PPSCAN_GUARDED_BY(failure_mutex_);

  // Governance supervisor thread (lazily spawned by install_governor).
  // supervisor_busy_ is the grace-period handshake: the supervisor raises
  // it around each use of the governor pointer, and install_governor spins
  // until it drops after swapping the pointer — so the caller may destroy
  // the old governor the moment install_governor returns.
  // The tick sleep is a condvar wait so install_governor can wake the
  // supervisor instantly for a fresh run's (possibly much nearer) deadline
  // — which in turn lets the idle cadence stretch far beyond any single
  // run's latency needs. supervisor_epoch_ guards against a notify landing
  // before the wait.
  std::thread supervisor_;
  // protocol: release-acquire — supervisor shutdown flag (destructor).
  std::atomic<bool> supervisor_stop_{false};
  // protocol: seqcst-handshake — store-then-load vs governor_ so either the
  // installer sees busy and waits, or the tick sees the new pointer.
  std::atomic<int> supervisor_busy_{0};
  // guards: supervisor_epoch_ — the notify-vs-wait race word for the
  // supervisor's condvar tick.
  CheckedMutex supervisor_mutex_;
  std::condition_variable supervisor_cv_;
  std::uint64_t supervisor_epoch_ PPSCAN_GUARDED_BY(supervisor_mutex_) = 0;
};

}  // namespace ppscan
