// Run governance for the execution runtime: cooperative cancellation,
// wall-clock deadlines, memory budgets and watchdog supervision.
//
// Every clustering call used to run to completion or not at all: a run that
// blew past a wall-clock deadline could not be stopped, a similarity array
// on a web-scale graph could exhaust memory and kill the process, and a
// hung worker parked the master in wait_idle() forever. The RunGovernor
// turns all of those into a *labeled partial result*:
//
//   * CancelToken — a single atomic word encoding
//     {running, user-cancelled, deadline-expired, budget-exceeded, stalled}.
//     Tripping is one CAS (first reason wins) and is async-signal-safe, so
//     a SIGINT handler can trip it directly. Polling is one relaxed load.
//     Workers poll at task-claim boundaries and phase bodies poll at range
//     granularity, so a cancelled run drains in O(one task) without locks.
//   * RunLimits.deadline — a monotonic-clock check piggybacked on the
//     executor's claim loop (and polled by its supervisor thread), so the
//     deadline fires even while every worker is inside a long range.
//   * RunLimits.memory_budget_bytes — a counting hook the algorithms charge
//     before each big phase allocation (similarity arrays, membership
//     slots, union-find, reverse index). Overshoot — or an actual
//     std::bad_alloc — trips the token with BudgetExceeded instead of
//     crashing; the run returns a partial result labeled with the phase
//     and the attempted byte count.
//   * RunLimits.stall_timeout — the watchdog: each executor worker bumps a
//     heartbeat on every claim; the executor's supervisor thread trips
//     Stalled when no worker makes progress for the timeout while tasks
//     remain, naming the stuck phase and worker.
//
// Cooperation contract: governance is *cooperative*. A task body that never
// returns and never polls the token cannot be reclaimed safely (killing a
// thread that may hold arbitrary state is worse than reporting); the
// watchdog converts such a hang from a silent deadlock into a detected,
// labeled abort, and every phase body in this library polls the token so
// in-tree runs always drain.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace ppscan {

/// Why a governed run stopped early. None = ran to completion.
enum class AbortReason : std::uint8_t {
  None = 0,
  UserCancelled = 1,    // external trip (SIGINT/SIGTERM, caller request)
  DeadlineExpired = 2,  // RunLimits::deadline
  BudgetExceeded = 3,   // RunLimits::memory_budget_bytes (or bad_alloc)
  Stalled = 4,          // watchdog: no worker progress for stall_timeout
  Exception = 5,        // a phase/task body threw; the firewall classified it
};

const char* to_string(AbortReason reason);

/// The single atomic word of the governance layer. 0 = running; any other
/// value is the AbortReason that tripped it. First trip wins; later trips
/// (e.g. the deadline firing after a SIGINT) are ignored so the recorded
/// reason is the root cause.
class CancelToken {
 public:
  /// One CAS; returns true when this call performed the trip. Lock-free
  /// and allocation-free, therefore safe from a signal handler.
  bool trip(AbortReason reason) {
    std::uint32_t expected = 0;
    return state_.compare_exchange_strong(
        expected, static_cast<std::uint32_t>(reason),
        std::memory_order_acq_rel, std::memory_order_acquire);
  }

  /// Hot-path poll: one relaxed load of one word.
  [[nodiscard]] bool cancelled() const {
    return state_.load(std::memory_order_relaxed) != 0;
  }

  [[nodiscard]] AbortReason reason() const {
    return static_cast<AbortReason>(state_.load(std::memory_order_acquire));
  }

  /// Re-arm for another run. Caller must be at a barrier (no concurrent
  /// pollers that still care about the previous run).
  void reset() { state_.store(0, std::memory_order_release); }

 private:
  // protocol: cancel-token — 0 = running, else the AbortReason; first-trip-
  // wins acq_rel CAS, relaxed hot-path polls, release store only in reset().
  std::atomic<std::uint32_t> state_{0};
};

/// Resource limits of one governed run. Zero values mean "unlimited" — a
/// default-constructed RunLimits governs nothing and costs (almost) nothing.
struct RunLimits {
  /// Wall-clock budget from RunGovernor construction. 0 = none.
  std::chrono::milliseconds deadline{0};
  /// Byte budget for the big phase allocations. 0 = none.
  std::uint64_t memory_budget_bytes = 0;
  /// Watchdog: abort when no worker heartbeat advances for this long while
  /// tasks are outstanding. 0 = watchdog off.
  std::chrono::milliseconds stall_timeout{0};
  /// Deterministic test hook: trip UserCancelled when the run *enters* the
  /// phase with this 1-based ordinal (so phases < N complete, phase N and
  /// later never execute). -1 = off.
  int cancel_at_phase = -1;

  [[nodiscard]] bool any_set() const {
    return deadline.count() > 0 || memory_budget_bytes > 0 ||
           stall_timeout.count() > 0 || cancel_at_phase >= 0;
  }
};

/// Typed description of an aborted run, recorded into RunStats and printed
/// by the CLI. reason == None means the run completed.
struct RunAborted {
  AbortReason reason = AbortReason::None;
  std::string phase;        // phase active when the trip happened
  std::uint64_t bytes = 0;  // attempted charge for BudgetExceeded
  int worker = -1;          // stuck worker index for Stalled
  std::string detail;       // e.what() (truncated) for Exception

  [[nodiscard]] std::string describe() const;
};

/// Per-run governance state shared by the master, the workers and (via a
/// pointer) an external canceller such as a signal handler. One governor
/// per clustering call; thread-safe for the operations the hot paths use
/// (token polls, deadline polls, charges, heartbeat reads).
class RunGovernor {
 public:
  /// Ungoverned: no limits, owns its token. should_stop() stays false
  /// unless someone trips the token explicitly.
  RunGovernor() : RunGovernor(RunLimits{}, nullptr) {}

  /// `external` (optional) supplies the token — the caller keeps ownership
  /// and may trip it from outside (signal handlers, other threads). The
  /// governor never outlives a run, the token may.
  explicit RunGovernor(const RunLimits& limits,
                       CancelToken* external = nullptr);

  RunGovernor(const RunGovernor&) = delete;
  RunGovernor& operator=(const RunGovernor&) = delete;

  [[nodiscard]] CancelToken& token() { return *token_; }
  [[nodiscard]] const CancelToken& token() const { return *token_; }
  [[nodiscard]] const RunLimits& limits() const { return limits_; }

  /// Hot-path poll: one relaxed load.
  [[nodiscard]] bool should_stop() const { return token_->cancelled(); }

  /// Reads the monotonic clock and trips DeadlineExpired when the budget is
  /// spent. No-op (no clock read) without a deadline. Returns should_stop().
  bool poll_deadline();

  /// Sequential-loop checkpoint: polls the token every call and the
  /// deadline every `kCheckpointStride` calls, so tight per-vertex loops
  /// pay a clock read only occasionally. Returns should_stop().
  bool checkpoint();

  /// Memory budget: charge `bytes` before performing a big allocation.
  /// Returns false — and trips BudgetExceeded, recording the attempted
  /// size and `what` — when the charge would overshoot the budget.
  bool try_charge(std::uint64_t bytes, const char* what);
  void uncharge(std::uint64_t bytes);
  [[nodiscard]] std::uint64_t bytes_charged() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }

  /// Converts a caught std::bad_alloc into a BudgetExceeded trip (the
  /// "would-be crash" path when no explicit budget is set).
  void record_alloc_failure(std::uint64_t bytes, const char* what);

  /// Exception firewall: converts a caught exception escaping a phase or
  /// task body into an Exception trip, recording a truncated copy of
  /// `what` for abort_info().detail. First trip wins, like every other
  /// reason — a deadline that already fired keeps its classification.
  void record_exception(const char* what);

  /// Phase bookkeeping. `enter_phase` bumps the 1-based ordinal, publishes
  /// the name for the watchdog/abort report, and applies the
  /// cancel_at_phase test hook. `finish_phase` counts a completed phase —
  /// call it only when the phase ran to its barrier uncancelled.
  void enter_phase(const char* name);
  void finish_phase();
  [[nodiscard]] const char* current_phase() const {
    const char* name = phase_name_.load(std::memory_order_acquire);
    return name != nullptr ? name : "";
  }
  [[nodiscard]] int phase_ordinal() const {
    return phase_ordinal_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int phases_completed() const {
    return phases_completed_.load(std::memory_order_relaxed);
  }

  /// Watchdog bookkeeping (called by the executor's supervisor thread).
  void record_stall(int worker);
  [[nodiscard]] bool supervised() const {
    return limits_.deadline.count() > 0 || limits_.stall_timeout.count() > 0;
  }
  [[nodiscard]] bool watchdog_enabled() const {
    return limits_.stall_timeout.count() > 0;
  }

  [[nodiscard]] std::chrono::steady_clock::time_point start_time() const {
    return start_;
  }

  /// Snapshot of why/where the run aborted (reason None when it did not).
  [[nodiscard]] RunAborted abort_info() const;

 private:
  static constexpr std::uint64_t kCheckpointStride = 1024;

  RunLimits limits_;
  CancelToken owned_token_;
  CancelToken* token_;
  std::chrono::steady_clock::time_point start_;

  // protocol: relaxed-counter — charge ledger; exactness comes from the
  // fetch_add return values, reads are barrier-side reporting.
  std::atomic<std::uint64_t> bytes_{0};
  // protocol: relaxed-counter — monotone CAS-max of bytes_.
  std::atomic<std::uint64_t> peak_bytes_{0};
  // protocol: relaxed-counter — attempted charge recorded at the trip; read
  // only after the run has drained.
  std::atomic<std::uint64_t> abort_bytes_{0};
  // protocol: relaxed-counter — checkpoint stride clock.
  std::atomic<std::uint64_t> checkpoint_ops_{0};

  // Phase names are string literals (static storage), so publishing the
  // pointer is enough — the watchdog thread may read it at any time.
  // protocol: release-acquire — publisher=master in enter_phase,
  // consumers=supervisor/abort reporting.
  std::atomic<const char*> phase_name_{nullptr};
  // protocol: release-acquire — phase active when the trip happened.
  std::atomic<const char*> abort_phase_{nullptr};
  // protocol: relaxed-counter — 1-based phase ordinal (master-written).
  std::atomic<int> phase_ordinal_{0};
  // protocol: relaxed-counter — phases that reached their barrier.
  std::atomic<int> phases_completed_{0};
  // protocol: relaxed-counter — stuck worker index, written once at the
  // stall trip, read after the drain.
  std::atomic<int> stalled_worker_{-1};

  // Exception detail. Plain storage, not atomic: only the thread that WINS
  // the Exception trip CAS writes it (record_exception), and abort_info()
  // readers run strictly after the run has drained — the executor's
  // completion barrier (or the delivered future) already orders the write
  // before any read, the same argument RunStats itself relies on.
  static constexpr std::size_t kExceptionWhatCap = 160;
  char exception_what_[kExceptionWhatCap] = {};
};

}  // namespace ppscan
