// Degree-based dynamic task scheduling (paper Algorithm 5).
//
// The master thread sweeps the vertex range, accumulating the degrees of
// vertices that still need work; once the accumulated degree sum exceeds a
// threshold (paper default 32768) the pending range [beg, u+1) becomes one
// task. Workers re-test the per-vertex predicate inside the task, so a
// vertex whose role was settled between bundling and execution is skipped
// for free. Degree sum is a good workload proxy because every vertex
// computation in SCAN touches each neighbor at most a constant number of
// times, and consecutive vertex ranges keep the edge-array accesses of a
// task contiguous.
//
// Two execution runtimes are provided:
//   * Executor (default) — the lock-free work-stealing runtime: the master
//     precomputes the task boundaries of the whole phase into a flat
//     TaskRange array (reusable scratch, so steady-state phases allocate
//     nothing) and workers claim/steal indices with single CAS operations.
//     No std::function, no mutex, no per-task allocation.
//   * ThreadPool — the seed centralized mutex/condvar queue, kept as the
//     measured baseline of bench_ablation_scheduler.
//
// Alternative bundling policies for the scheduler ablation bench: static
// (equal vertex ranges, one per thread) and fixed vertex-count chunks, plus
// OpenMP `schedule(dynamic)` as the off-the-shelf alternative.
#pragma once

#include <omp.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "concurrent/executor.hpp"
#include "concurrent/run_governor.hpp"
#include "concurrent/thread_pool.hpp"
#include "util/types.hpp"

namespace ppscan {

enum class SchedulerKind : std::uint8_t {
  DegreeSum,   // Algorithm 5
  StaticRange, // one equal-width range per thread
  FixedChunk,  // fixed vertex count per task
  OmpDynamic,  // OpenMP `schedule(dynamic)` — the off-the-shelf alternative
};

inline SchedulerKind parse_scheduler_kind(const std::string& name) {
  if (name == "degree") return SchedulerKind::DegreeSum;
  if (name == "static") return SchedulerKind::StaticRange;
  if (name == "chunk") return SchedulerKind::FixedChunk;
  if (name == "omp") return SchedulerKind::OmpDynamic;
  throw std::invalid_argument("unknown scheduler kind: " + name);
}

inline std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::DegreeSum: return "degree";
    case SchedulerKind::StaticRange: return "static";
    case SchedulerKind::FixedChunk: return "chunk";
    case SchedulerKind::OmpDynamic: return "omp";
  }
  return "?";
}

/// Execution runtime the bundled tasks run on.
enum class RuntimeKind : std::uint8_t {
  WorkSteal,  // lock-free work-stealing Executor (default)
  MutexPool,  // seed mutex/condvar ThreadPool — the ablation baseline
};

inline RuntimeKind parse_runtime_kind(const std::string& name) {
  if (name == "worksteal") return RuntimeKind::WorkSteal;
  if (name == "mutex") return RuntimeKind::MutexPool;
  throw std::invalid_argument("unknown runtime kind: " + name);
}

inline std::string to_string(RuntimeKind kind) {
  switch (kind) {
    case RuntimeKind::WorkSteal: return "worksteal";
    case RuntimeKind::MutexPool: return "mutex";
  }
  return "?";
}

struct SchedulerOptions {
  SchedulerKind kind = SchedulerKind::DegreeSum;
  RuntimeKind runtime = RuntimeKind::WorkSteal;
  std::uint64_t degree_threshold = 32768;  // paper's tuned value
  VertexId chunk_size = 4096;              // for FixedChunk
  /// Run governance (cancellation/deadline/budget/watchdog). When set, the
  /// scheduled bodies poll the cancel token every kGovernorPollStride
  /// vertices on every runtime (executor, mutex pool, OpenMP) so even a
  /// single huge range drains promptly after a trip. Not owned; must
  /// outlive the scheduled phases. nullptr = ungoverned (zero overhead).
  RunGovernor* governor = nullptr;
  /// StaticRange only: split by equal *degree sums* instead of equal
  /// vertex counts, so static partitions align with work on skewed
  /// degree distributions (the similarity phases' cost is degree-shaped).
  bool edge_balanced_static = false;
  /// Interior vertex boundaries no task may cross (NUMA node shards,
  /// from edge_balanced_boundaries). When set with the WorkSteal runtime
  /// and an executor whose num_nodes() matches, bundled tasks are grouped
  /// by shard and dispatched with Executor::run_sharded so node k's
  /// workers start on shard k — the range their node's CSR pages were
  /// placed for. Not owned; must outlive the scheduled phases.
  const std::vector<VertexId>* shard_bounds = nullptr;
};

/// Vertices between cancel-token polls inside a scheduled range. Power of
/// two; one relaxed atomic load per stride on the governed path.
inline constexpr VertexId kGovernorPollStride = 64;

/// Statistics of one scheduled phase, for the load-balance ablation.
struct ScheduleStats {
  std::uint64_t tasks_submitted = 0;
};

namespace detail {

/// Bundles the sub-range [lo, hi) according to `options`. `num_threads` is
/// the thread share this sub-range is expected to run on (the whole pool
/// without sharding, one node's share with it).
template <typename DegreeOf, typename NeedsWork>
void bundle_subrange(std::vector<TaskRange>& ranges, VertexId lo, VertexId hi,
                     int num_threads, DegreeOf&& degree_of,
                     NeedsWork&& needs_work, const SchedulerOptions& options) {
  if (lo >= hi) return;
  const auto push = [&](VertexId beg, VertexId end) {
    if (beg < end) ranges.push_back({beg, end});
  };
  switch (options.kind) {
    case SchedulerKind::DegreeSum: {
      std::uint64_t deg_sum = 0;
      VertexId beg = lo;
      for (VertexId u = lo; u < hi; ++u) {
        if (!needs_work(u)) continue;
        deg_sum += degree_of(u);
        if (deg_sum > options.degree_threshold) {
          push(beg, u + 1);
          deg_sum = 0;
          beg = u + 1;
        }
      }
      push(beg, hi);
      break;
    }
    case SchedulerKind::StaticRange: {
      const auto t = static_cast<VertexId>(std::max(1, num_threads));
      if (options.edge_balanced_static) {
        // Degree-weighted split: part i ends at the first vertex whose
        // degree prefix crosses i/t of the sub-range's total, so every
        // static partition carries a near-equal edge count instead of a
        // near-equal vertex count.
        std::uint64_t total = 0;
        for (VertexId u = lo; u < hi; ++u) total += degree_of(u);
        if (total == 0) {
          push(lo, hi);
          break;
        }
        std::uint64_t prefix = 0;
        VertexId beg = lo;
        VertexId part = 1;
        for (VertexId u = lo; u < hi && part < t; ++u) {
          prefix += degree_of(u);
          if (prefix * t >= total * part) {
            push(beg, u + 1);
            beg = u + 1;
            ++part;
          }
        }
        push(beg, hi);
      } else {
        const VertexId width = std::max<VertexId>(1, (hi - lo + t - 1) / t);
        for (VertexId beg = lo; beg < hi; beg += width) {
          push(beg, std::min<VertexId>(beg + width, hi));
        }
      }
      break;
    }
    case SchedulerKind::FixedChunk: {
      const VertexId width = std::max<VertexId>(1, options.chunk_size);
      for (VertexId beg = lo; beg < hi; beg += width) {
        push(beg, std::min<VertexId>(beg + width, hi));
      }
      break;
    }
    case SchedulerKind::OmpDynamic:
      break;  // handled by the callers (no bundling)
  }
}

/// Bundles [0, n) into TaskRange boundaries according to `options`,
/// appending to `ranges` (not cleared). Vertices failing `needs_work` still
/// land inside some range under non-degree policies; the worker-side
/// re-test skips them. Returns the number of ranges appended.
///
/// With `options.shard_bounds`, no range crosses a shard boundary and the
/// bundling runs shard by shard; `shard_task_begin` (when given) receives
/// the per-shard task offsets — shards + 1 entries, relative to the ranges
/// appended by THIS call — in the exact shape Executor::run_sharded takes.
///
/// Guards the degenerate inputs (n == 0, n < num_threads, zero-width
/// ranges) that made the seed StaticRange math hazardous.
template <typename DegreeOf, typename NeedsWork>
std::uint64_t bundle_ranges(std::vector<TaskRange>& ranges, VertexId n,
                            int num_threads, DegreeOf&& degree_of,
                            NeedsWork&& needs_work,
                            const SchedulerOptions& options,
                            std::vector<std::size_t>* shard_task_begin =
                                nullptr) {
  const std::size_t before = ranges.size();
  std::vector<VertexId> cuts{0};
  if (options.shard_bounds != nullptr) {
    for (const VertexId b : *options.shard_bounds) {
      cuts.push_back(std::clamp(b, cuts.back(), n));
    }
  }
  cuts.push_back(n);
  const std::size_t shards = cuts.size() - 1;
  // With sharding, each shard is bundled for its share of the pool so a
  // static split still yields ~num_threads tasks overall.
  const int share =
      shards > 1 ? std::max(1, num_threads / static_cast<int>(shards))
                 : num_threads;
  if (shard_task_begin != nullptr) shard_task_begin->clear();
  for (std::size_t s = 0; s < shards; ++s) {
    if (shard_task_begin != nullptr) {
      shard_task_begin->push_back(ranges.size() - before);
    }
    bundle_subrange(ranges, cuts[s], cuts[s + 1], share, degree_of,
                    needs_work, options);
  }
  if (shard_task_begin != nullptr) {
    shard_task_begin->push_back(ranges.size() - before);
  }
  return ranges.size() - before;
}

template <typename NeedsWork, typename Work>
void run_omp_dynamic(int num_threads, VertexId n, NeedsWork&& needs_work,
                     Work&& work, RunGovernor* governor = nullptr) {
  const std::int64_t count = n;
  const CancelToken* token = governor != nullptr ? &governor->token() : nullptr;
#pragma omp parallel for schedule(dynamic, 256) num_threads(num_threads)
  for (std::int64_t u = 0; u < count; ++u) {
    // OpenMP loops cannot break; a tripped token reduces each remaining
    // iteration to one relaxed load per stride.
    if (token != nullptr && (u & (kGovernorPollStride - 1)) == 0 &&
        token->cancelled()) {
      continue;
    }
    if (needs_work(static_cast<VertexId>(u))) {
      work(static_cast<VertexId>(u));
    }
  }
}

/// Wraps the per-range body with the governed poll: one relaxed token load
/// every kGovernorPollStride vertices, so a cancelled run abandons even a
/// huge range in O(stride) work.
template <typename NeedsWork, typename Work>
auto make_range_body(NeedsWork& needs_work, Work& work,
                     RunGovernor* governor) {
  const CancelToken* token = governor != nullptr ? &governor->token() : nullptr;
  return [&needs_work, &work, token](VertexId beg, VertexId end) {
    for (VertexId u = beg; u < end; ++u) {
      if (token != nullptr && ((u - beg) & (kGovernorPollStride - 1)) == 0 &&
          token->cancelled()) {
        return;
      }
      if (needs_work(u)) work(u);
    }
  };
}

}  // namespace detail

/// Runs `work(u)` for every u in [0, n) with `needs_work(u)` true on the
/// work-stealing executor, bundling vertices into ranges according to
/// `options`. `degree_of(u)` feeds the degree-sum policy. Blocks until all
/// tasks finish (executor barrier).
///
/// `scratch`, when given, is reused for the flat boundary array so
/// steady-state phases perform zero allocations end to end (the per-task
/// path never allocates either way).
///
/// NeedsWork and Work must be safe to invoke concurrently from worker
/// threads; NeedsWork is additionally evaluated on the master while
/// bundling (degree policy only).
template <typename DegreeOf, typename NeedsWork, typename Work>
ScheduleStats schedule_vertex_tasks(Executor& executor, VertexId n,
                                    DegreeOf&& degree_of,
                                    NeedsWork&& needs_work, Work&& work,
                                    const SchedulerOptions& options = {},
                                    std::vector<TaskRange>* scratch =
                                        nullptr) {
  ScheduleStats stats;
  if (options.governor != nullptr && options.governor->should_stop()) {
    return stats;  // cancelled before bundling: the whole phase is skipped
  }
  if (options.kind == SchedulerKind::OmpDynamic) {
    detail::run_omp_dynamic(executor.num_threads(), n, needs_work, work,
                            options.governor);
    return stats;  // bypasses the executor entirely
  }
  std::vector<TaskRange> local;
  std::vector<TaskRange>& ranges = scratch != nullptr ? *scratch : local;
  ranges.clear();
  // Shard-aligned dispatch only when the executor's node count matches the
  // shard count — anything else (uniform executor, stale bounds) falls
  // back to the plain even split, which is always correct.
  const bool sharded =
      options.shard_bounds != nullptr &&
      executor.num_nodes() ==
          static_cast<int>(options.shard_bounds->size()) + 1 &&
      executor.num_nodes() > 1;
  std::vector<std::size_t> shard_task_begin;
  stats.tasks_submitted = detail::bundle_ranges(
      ranges, n, executor.num_threads(), degree_of, needs_work, options,
      sharded ? &shard_task_begin : nullptr);
  const auto body = detail::make_range_body(needs_work, work,
                                            options.governor);
  if (sharded) {
    executor.run_sharded(ranges.data(), ranges.size(),
                         shard_task_begin.data(), body);
  } else {
    executor.run(ranges.data(), ranges.size(), body);
  }
  return stats;
}

/// Legacy overload on the seed mutex-queue ThreadPool; identical semantics,
/// kept as the measured baseline for the scheduler/runtime ablation.
template <typename DegreeOf, typename NeedsWork, typename Work>
ScheduleStats schedule_vertex_tasks(ThreadPool& pool, VertexId n,
                                    DegreeOf&& degree_of,
                                    NeedsWork&& needs_work, Work&& work,
                                    const SchedulerOptions& options = {}) {
  ScheduleStats stats;
  if (options.governor != nullptr && options.governor->should_stop()) {
    return stats;  // cancelled before bundling: the whole phase is skipped
  }
  if (options.kind == SchedulerKind::OmpDynamic) {
    detail::run_omp_dynamic(pool.num_threads(), n, needs_work, work,
                            options.governor);
    return stats;  // no pool tasks were submitted
  }
  std::vector<TaskRange> ranges;
  stats.tasks_submitted = detail::bundle_ranges(
      ranges, n, pool.num_threads(), degree_of, needs_work, options);
  RunGovernor* governor = options.governor;
  for (const TaskRange r : ranges) {
    pool.submit([r, &needs_work, &work, governor] {
      // Same governed poll as the executor path: the token at task entry
      // (so a cancelled queue drains fast) and every stride inside.
      if (governor != nullptr && governor->checkpoint()) return;
      const CancelToken* token =
          governor != nullptr ? &governor->token() : nullptr;
      for (VertexId u = r.beg; u < r.end; ++u) {
        if (token != nullptr &&
            ((u - r.beg) & (kGovernorPollStride - 1)) == 0 &&
            token->cancelled()) {
          return;
        }
        if (needs_work(u)) work(u);
      }
    });
  }
  pool.wait_idle();
  return stats;
}

}  // namespace ppscan
