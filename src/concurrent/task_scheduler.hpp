// Degree-based dynamic task scheduling (paper Algorithm 5).
//
// The master thread sweeps the vertex range, accumulating the degrees of
// vertices that still need work; once the accumulated degree sum exceeds a
// threshold (paper default 32768) the pending range [beg, u+1) is submitted
// as one task. Workers re-test the per-vertex predicate inside the task, so
// a vertex whose role was settled between submission and execution is
// skipped for free. Degree sum is a good workload proxy because every vertex
// computation in SCAN touches each neighbor at most a constant number of
// times, and consecutive vertex ranges keep the edge-array accesses of a
// task contiguous.
//
// Two alternative policies are provided for the scheduler ablation bench:
// static (equal vertex ranges, one per thread) and fixed vertex-count chunks.
#pragma once

#include <omp.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "concurrent/thread_pool.hpp"
#include "util/types.hpp"

namespace ppscan {

enum class SchedulerKind : std::uint8_t {
  DegreeSum,   // Algorithm 5
  StaticRange, // one equal-width range per thread
  FixedChunk,  // fixed vertex count per task
  OmpDynamic,  // OpenMP `schedule(dynamic)` — the off-the-shelf alternative
};

inline SchedulerKind parse_scheduler_kind(const std::string& name) {
  if (name == "degree") return SchedulerKind::DegreeSum;
  if (name == "static") return SchedulerKind::StaticRange;
  if (name == "chunk") return SchedulerKind::FixedChunk;
  if (name == "omp") return SchedulerKind::OmpDynamic;
  throw std::invalid_argument("unknown scheduler kind: " + name);
}

inline std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::DegreeSum: return "degree";
    case SchedulerKind::StaticRange: return "static";
    case SchedulerKind::FixedChunk: return "chunk";
    case SchedulerKind::OmpDynamic: return "omp";
  }
  return "?";
}

struct SchedulerOptions {
  SchedulerKind kind = SchedulerKind::DegreeSum;
  std::uint64_t degree_threshold = 32768;  // paper's tuned value
  VertexId chunk_size = 4096;              // for FixedChunk
};

/// Statistics of one scheduled phase, for the load-balance ablation.
struct ScheduleStats {
  std::uint64_t tasks_submitted = 0;
};

/// Runs `work(u)` for every u in [0, n) with `needs_work(u)` true, bundling
/// vertices into pool tasks according to `options`. `degree_of(u)` feeds the
/// degree-sum policy. Blocks until all tasks finish (pool barrier).
///
/// NeedsWork and Work must be safe to invoke concurrently from pool threads;
/// NeedsWork is additionally evaluated on the master thread while bundling.
template <typename DegreeOf, typename NeedsWork, typename Work>
ScheduleStats schedule_vertex_tasks(ThreadPool& pool, VertexId n,
                                    DegreeOf&& degree_of,
                                    NeedsWork&& needs_work, Work&& work,
                                    const SchedulerOptions& options = {}) {
  ScheduleStats stats;
  auto submit_range = [&](VertexId beg, VertexId end) {
    if (beg >= end) return;
    ++stats.tasks_submitted;
    pool.submit([beg, end, &needs_work, &work] {
      for (VertexId u = beg; u < end; ++u) {
        if (needs_work(u)) work(u);
      }
    });
  };

  switch (options.kind) {
    case SchedulerKind::DegreeSum: {
      std::uint64_t deg_sum = 0;
      VertexId beg = 0;
      for (VertexId u = 0; u < n; ++u) {
        if (!needs_work(u)) continue;
        deg_sum += degree_of(u);
        if (deg_sum > options.degree_threshold) {
          submit_range(beg, u + 1);
          deg_sum = 0;
          beg = u + 1;
        }
      }
      submit_range(beg, n);
      break;
    }
    case SchedulerKind::StaticRange: {
      const auto t = static_cast<VertexId>(pool.num_threads());
      const VertexId width = (n + t - 1) / t;
      for (VertexId beg = 0; beg < n; beg += width) {
        submit_range(beg, std::min<VertexId>(beg + width, n));
      }
      break;
    }
    case SchedulerKind::FixedChunk: {
      const VertexId width = std::max<VertexId>(1, options.chunk_size);
      for (VertexId beg = 0; beg < n; beg += width) {
        submit_range(beg, std::min<VertexId>(beg + width, n));
      }
      break;
    }
    case SchedulerKind::OmpDynamic: {
      // Bypasses the thread pool entirely: the off-the-shelf baseline the
      // paper's custom scheduler is measured against.
      const std::int64_t count = n;
#pragma omp parallel for schedule(dynamic, 256) \
    num_threads(pool.num_threads())
      for (std::int64_t u = 0; u < count; ++u) {
        if (needs_work(static_cast<VertexId>(u))) {
          work(static_cast<VertexId>(u));
        }
      }
      return stats;  // no pool tasks were submitted
    }
  }

  pool.wait_idle();
  return stats;
}

}  // namespace ppscan
