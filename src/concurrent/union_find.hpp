// Disjoint-set structures for core clustering.
//
// UnionFind — the sequential structure pSCAN uses (path halving + union by
// rank).
//
// ParallelUnionFind — the wait-free variant ppSCAN uses (paper §4.1, after
// Anderson & Woll 1991): find() uses CAS-assisted path halving; unite() CAS-
// links one root under the other, retrying on contention. same_set() may
// return a stale `false` under concurrency (sets only ever merge), which is
// exactly the semantics the union-find *pruning* needs: a false negative
// only costs a redundant similarity check, never correctness.
#pragma once

#include <vector>

#include "util/atomic_array.hpp"
#include "util/types.hpp"

namespace ppscan {

class UnionFind {
 public:
  /// Empty structure; call reset() before use (deferred allocation, see
  /// ParallelUnionFind).
  UnionFind() = default;
  explicit UnionFind(VertexId n) { reset(n); }

  /// (Re)allocates n singleton sets.
  void reset(VertexId n);

  VertexId find(VertexId x);
  /// find() that also adds the number of parent hops walked to *steps —
  /// the observability layer's path-length signal (obs::AlgoCounters
  /// uf_find_steps). Identical set semantics to find().
  VertexId find_counted(VertexId x, std::uint64_t* steps);
  /// Returns true when two distinct sets were merged.
  bool unite(VertexId x, VertexId y);
  bool same_set(VertexId x, VertexId y) { return find(x) == find(y); }
  [[nodiscard]] VertexId size() const {
    return checked_vertex_cast(parent_.size());
  }

 private:
  std::vector<VertexId> parent_;
  std::vector<std::uint8_t> rank_;
};

class ParallelUnionFind {
 public:
  /// Empty structure; call reset() before use. Lets callers defer the
  /// allocation until after a memory-budget charge.
  ParallelUnionFind() = default;
  explicit ParallelUnionFind(VertexId n) { reset(n); }

  /// (Re)allocates n singleton sets. Not thread-safe.
  void reset(VertexId n);

  /// Thread-safe root lookup with path halving.
  VertexId find(VertexId x);
  /// Thread-safe find() that also adds the parent hops walked to *steps
  /// (caller-owned, single-writer — pass a worker-local counter). The
  /// observability layer's path-length signal.
  VertexId find_counted(VertexId x, std::uint64_t* steps);
  /// Thread-safe merge; returns true when this call performed the link.
  bool unite(VertexId x, VertexId y);
  /// Thread-safe; false may be stale (see header comment), true is exact.
  bool same_set(VertexId x, VertexId y);
  [[nodiscard]] VertexId size() const {
    return checked_vertex_cast(parent_.size());
  }

 private:
  // protocol: relaxed-guarded — Anderson-Woll links: the CAS succeeds only
  // while the target is still a root, which is what makes a link atomic;
  // readers tolerate staleness by construction (same_set's false may be
  // stale, see the class comment), so no publication edge is needed.
  AtomicArray<VertexId> parent_;
  // protocol: relaxed-guarded — rank is a depth heuristic; a lost update
  // costs tree height, never correctness.
  AtomicArray<std::uint8_t> rank_;
};

}  // namespace ppscan
