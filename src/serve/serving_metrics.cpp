#include "serve/serving_metrics.hpp"

namespace ppscan::serve {

obs::LatencyHistogramMetrics latency_metrics(
    const LatencyHistogram& histogram) {
  obs::LatencyHistogramMetrics out;
  out.count = histogram.total;
  out.p50_ms = histogram.quantile_ms(0.50);
  out.p90_ms = histogram.quantile_ms(0.90);
  out.p99_ms = histogram.quantile_ms(0.99);
  out.max_ms = histogram.max_ms;
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (histogram.counts[i] == 0) continue;
    out.buckets.push_back({LatencyHistogram::bucket_le_us(i),
                           histogram.counts[i]});
  }
  return out;
}

obs::MetricsReport make_serving_report(const std::string& tool,
                                       const std::string& dataset,
                                       const std::string& eps,
                                       const CsrGraph& graph,
                                       const ServiceSnapshot& snapshot,
                                       double total_seconds) {
  obs::MetricsReport report;
  report.tool = tool;
  report.algorithm = "GsIndex-serve";
  report.dataset = dataset;
  report.eps = eps;
  report.mu = 0;  // mixed workload; per-query µ lives in queries[]
  report.threads = static_cast<std::uint64_t>(snapshot.num_threads);
  report.kernel = "index";  // queries reuse stored similarities, no kernel
  report.runtime_kind = "worksteal";
  report.num_vertices = graph.num_vertices();
  report.num_edges = graph.num_edges();
  report.total_seconds = total_seconds;
  report.numa_mode = snapshot.numa_mode;
  report.numa_nodes = snapshot.numa_nodes;
  // Cluster/core counts are per-query quantities for a mixed workload; the
  // row-level fields stay 0 and queries[] carries the real values.
  report.abort_reason = "none";
  report.counters = snapshot.counters;
  report.queries.reserve(snapshot.recent.size());
  for (const QueryRecord& q : snapshot.recent) {
    obs::QueryRowMetrics row;
    row.id = q.id;
    row.eps = q.eps;
    row.mu = q.mu;
    row.latency_ms = q.latency_ms;
    row.num_clusters = q.num_clusters;
    row.num_cores = q.num_cores;
    row.abort_reason = to_string(q.abort_reason);
    row.cache_hit = q.cache_hit;
    row.degraded = q.degraded;
    report.queries.push_back(std::move(row));
  }
  report.latency = latency_metrics(snapshot.latency);
  report.has_resilience = true;
  report.resilience.exceptions = snapshot.exceptions;
  report.resilience.shed_queue_full = snapshot.shed_queue_full;
  report.resilience.shed_overload = snapshot.shed_overload;
  report.resilience.shed_breaker = snapshot.shed_breaker;
  report.resilience.retries_advised = snapshot.retries_advised;
  report.resilience.breaker_transitions = snapshot.breaker_transitions;
  report.resilience.breaker_state = snapshot.breaker_state;
  report.resilience.degraded_hits = snapshot.degraded_hits;
  return report;
}

}  // namespace ppscan::serve
